package statebench_test

import (
	"strings"
	"testing"

	"statebench/internal/experiments"
	"statebench/internal/obs/metrics"
)

// renderAll runs every experiment with the given worker count and
// renders the reports to one byte string, the way cmd/statebench does.
func renderAll(t *testing.T, o experiments.Options, workers int) string {
	t.Helper()
	o.Workers = workers
	reports, err := experiments.All(o)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, r := range reports {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestAllIsDeterministicAcrossWorkerCounts is the cross-run determinism
// guarantee behind the parallel campaign scheduler: the full experiment
// suite rendered twice sequentially and once through the worker pool
// must produce byte-identical output, because every campaign seed
// derives from Options.Seed alone, never from scheduling order.
func TestAllIsDeterministicAcrossWorkerCounts(t *testing.T) {
	o := experiments.QuickOptions()
	if testing.Short() || raceEnabled {
		// Same property, smoke scale: -short keeps local edit loops
		// fast and the race detector's 10-20x slowdown would push the
		// quick-scale triple run past the package timeout.
		o = experiments.Options{Iters: 3, ColdHours: 3, VideoIters: 1, Fig14Target: 200, Seed: 42}
	}

	seq1 := renderAll(t, o, 1)
	seq2 := renderAll(t, o, 1)
	if seq1 != seq2 {
		t.Fatal("two sequential runs differ: the suite itself is nondeterministic")
	}
	par := renderAll(t, o, 4)
	if par != seq1 {
		for i := 0; i < len(par) && i < len(seq1); i++ {
			if par[i] != seq1[i] {
				lo := i - 120
				if lo < 0 {
					lo = 0
				}
				t.Fatalf("parallel output diverges from sequential at byte %d:\nsequential: %q\nparallel:   %q",
					i, seq1[lo:min(i+120, len(seq1))], par[lo:min(i+120, len(par))])
			}
		}
		t.Fatalf("parallel output length %d != sequential %d", len(par), len(seq1))
	}
}

// TestTracingPreservesDeterminism is the observability contract: with
// the span tracer and a shared metrics registry enabled, (a) every
// report stays byte-identical to the untraced run, at any worker count,
// and (b) the metrics registry's Prometheus export is itself
// byte-identical across worker counts (all writes are commutative).
func TestTracingPreservesDeterminism(t *testing.T) {
	o := experiments.Options{Iters: 3, ColdHours: 3, VideoIters: 1, Fig14Target: 200, Seed: 42}
	if raceEnabled {
		// The race detector makes each full-suite render ~10x slower;
		// shrink the campaigns so the remaining two renders fit the
		// package timeout while still exercising every experiment.
		o = experiments.Options{Iters: 2, ColdHours: 2, VideoIters: 1, Fig14Target: 100, Seed: 42}
	}

	renderTraced := func(workers int) (string, string) {
		reg := metrics.NewRegistry()
		traced := o
		traced.Metrics = reg
		out := renderAll(t, traced, workers)
		var buf strings.Builder
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return out, buf.String()
	}

	out1, prom1 := renderTraced(1)
	out4, prom4 := renderTraced(4)
	if out4 != out1 {
		t.Fatal("traced report output differs across worker counts")
	}
	if prom1 != prom4 {
		t.Fatal("metrics export differs across worker counts")
	}
	if !strings.Contains(prom1, "statebench_spans_total") {
		t.Fatalf("metrics export missing span counters:\n%.400s", prom1)
	}

	if !raceEnabled {
		// Tracing must also not change the results themselves. Under
		// -race this third render is skipped for time; the same property
		// is covered at Measure granularity by internal/core's
		// TestTracingDoesNotChangeResults.
		if baseline := renderAll(t, o, 1); out1 != baseline {
			t.Fatal("tracing+metrics changed report output")
		}
	}
}
