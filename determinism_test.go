package statebench_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"statebench/internal/chaos"
	"statebench/internal/core"
	"statebench/internal/experiments"
	"statebench/internal/obs/metrics"
	"statebench/internal/obs/span"
	"statebench/internal/workloads/mlpipe"
	"statebench/internal/workloads/mltrain"
)

// renderAll runs every experiment with the given worker count and
// renders the reports to one byte string, the way cmd/statebench does.
func renderAll(t *testing.T, o experiments.Options, workers int) string {
	t.Helper()
	o.Workers = workers
	reports, err := experiments.All(o)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, r := range reports {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestAllIsDeterministicAcrossWorkerCounts is the cross-run determinism
// guarantee behind the parallel campaign scheduler: the full experiment
// suite rendered twice sequentially and once through the worker pool
// must produce byte-identical output, because every campaign seed
// derives from Options.Seed alone, never from scheduling order.
func TestAllIsDeterministicAcrossWorkerCounts(t *testing.T) {
	o := experiments.QuickOptions()
	if testing.Short() || raceEnabled {
		// Same property, smoke scale: -short keeps local edit loops
		// fast and the race detector's 10-20x slowdown would push the
		// quick-scale triple run past the package timeout.
		o = experiments.Options{Iters: 3, ColdHours: 3, VideoIters: 1, Fig14Target: 200, Seed: 42}
	}

	seq1 := renderAll(t, o, 1)
	seq2 := renderAll(t, o, 1)
	if seq1 != seq2 {
		t.Fatal("two sequential runs differ: the suite itself is nondeterministic")
	}
	par := renderAll(t, o, 4)
	if par != seq1 {
		for i := 0; i < len(par) && i < len(seq1); i++ {
			if par[i] != seq1[i] {
				lo := i - 120
				if lo < 0 {
					lo = 0
				}
				t.Fatalf("parallel output diverges from sequential at byte %d:\nsequential: %q\nparallel:   %q",
					i, seq1[lo:min(i+120, len(seq1))], par[lo:min(i+120, len(par))])
			}
		}
		t.Fatalf("parallel output length %d != sequential %d", len(par), len(seq1))
	}
}

// TestTracingPreservesDeterminism is the observability contract: with
// the span tracer and a shared metrics registry enabled, (a) every
// report stays byte-identical to the untraced run, at any worker count,
// and (b) the metrics registry's Prometheus export is itself
// byte-identical across worker counts (all writes are commutative).
func TestTracingPreservesDeterminism(t *testing.T) {
	o := experiments.Options{Iters: 3, ColdHours: 3, VideoIters: 1, Fig14Target: 200, Seed: 42}
	if raceEnabled {
		// The race detector makes each full-suite render ~10x slower;
		// shrink the campaigns so the remaining two renders fit the
		// package timeout while still exercising every experiment.
		o = experiments.Options{Iters: 2, ColdHours: 2, VideoIters: 1, Fig14Target: 100, Seed: 42}
	}

	renderTraced := func(workers int) (string, string) {
		reg := metrics.NewRegistry()
		traced := o
		traced.Metrics = reg
		out := renderAll(t, traced, workers)
		var buf strings.Builder
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return out, buf.String()
	}

	out1, prom1 := renderTraced(1)
	out4, prom4 := renderTraced(4)
	if out4 != out1 {
		t.Fatal("traced report output differs across worker counts")
	}
	if prom1 != prom4 {
		t.Fatal("metrics export differs across worker counts")
	}
	if !strings.Contains(prom1, "statebench_spans_total") {
		t.Fatalf("metrics export missing span counters:\n%.400s", prom1)
	}

	if !raceEnabled {
		// Tracing must also not change the results themselves. Under
		// -race this third render is skipped for time; the same property
		// is covered at Measure granularity by internal/core's
		// TestTracingDoesNotChangeResults.
		if baseline := renderAll(t, o, 1); out1 != baseline {
			t.Fatal("tracing+metrics changed report output")
		}
	}
}

// TestChaosPreservesDeterminism is the chaos golden guarantee: one
// seed plus one fault plan fixes the entire campaign — measured series,
// fault statistics, Chrome trace JSON, and Prometheus export are all
// byte-identical across repeated runs and across worker counts. Fault
// schedules are stateless hashes of (seed, site, invocation index), so
// scheduling order can never shift them.
func TestChaosPreservesDeterminism(t *testing.T) {
	iters := 5
	if testing.Short() || raceEnabled {
		iters = 3
	}
	wf := mltrain.New(mlpipe.Small)

	render := func(workers int) string {
		reg := metrics.NewRegistry()
		opt := core.DefaultMeasureOptions()
		opt.Iters = iters
		opt.Seed = 7
		opt.Workers = workers
		opt.Tracing = true
		opt.Metrics = reg
		opt.Chaos = chaos.DefaultPlan(0.2)
		series, err := core.MeasureAll(wf, opt)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		var injected int64
		for _, impl := range wf.Impls() {
			s := series[impl]
			injected += s.Faults.Injected
			fmt.Fprintf(&sb, "%s ok=%.4f err=%d faults=%+v p50=%v p99=%v bill=%.9f txns=%.3f\n",
				impl, s.SuccessRate, s.Errors, s.Faults, s.E2E.Median(), s.E2E.P99(),
				s.MeanBill.Total(), s.MeanTxns)
			var buf bytes.Buffer
			if err := span.WriteChromeTrace(&buf, s.Trace.Spans()); err != nil {
				t.Fatal(err)
			}
			sb.Write(buf.Bytes())
			sb.WriteByte('\n')
		}
		if injected == 0 {
			t.Fatal("rate-0.2 plan injected no faults; the campaign exercised nothing")
		}
		if err := reg.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}

	seq := render(1)
	if !strings.Contains(seq, "statebench_chaos_faults_total") {
		t.Fatal("metrics export missing chaos fault counters")
	}
	if render(1) != seq {
		t.Fatal("two sequential chaos runs differ: the fault schedule is nondeterministic")
	}
	if render(8) != seq {
		t.Fatal("chaos output differs across worker counts")
	}
}
