// costexplorer projects monthly costs for the video workload across
// request rates on both clouds, separating computation from stateful
// charges — the decision the paper's §V-C helps a tenant make.
//
//	go run ./examples/costexplorer
package main

import (
	"fmt"
	"os"
	"time"

	"statebench/internal/core"
	"statebench/internal/obs"
	"statebench/internal/pricing"
	"statebench/internal/sim"
	"statebench/internal/workloads/videoproc"
)

func main() {
	rates := []int{1, 4, 24} // runs per day
	tbl := obs.Table{Header: []string{"runs/day", "AWS-Step total", "AWS stateful", "Az-Dorch total", "Az stateful", "cheaper"}}
	for _, perDay := range rates {
		aws, err := project(core.AWSStep, perDay)
		if err != nil {
			fail(err)
		}
		az, err := project(core.AzDorch, perDay)
		if err != nil {
			fail(err)
		}
		cheaper := "AWS"
		if az.Total() < aws.Total() {
			cheaper = "Azure"
		}
		tbl.AddRow(fmt.Sprintf("%d", perDay),
			fmt.Sprintf("$%.4f", aws.Total()), fmt.Sprintf("%.1f%%", aws.StatefulShare()*100),
			fmt.Sprintf("$%.4f", az.Total()), fmt.Sprintf("%.1f%%", az.StatefulShare()*100),
			cheaper)
	}
	fmt.Println("projected monthly cost, video processing with 20 workers:")
	fmt.Println(tbl.String())
	fmt.Println("Azure's stateful share grows as usage drops: the task hub")
	fmt.Println("polls its queues even when no workflow is running.")
}

// project simulates a 12h window at the given rate and scales to 30 days.
func project(impl core.Impl, runsPerDay int) (pricing.Bill, error) {
	window := 12 * time.Hour
	interval := 24 * time.Hour / time.Duration(runsPerDay)
	runs := int(window / interval)
	if runs < 1 {
		runs = 1
	}
	env := core.NewEnv(11)
	dep, err := videoproc.New(20).Deploy(env, impl)
	if err != nil {
		return pricing.Bill{}, err
	}
	var runErr error
	env.K.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < runs; i++ {
			if _, err := dep.Runner.Invoke(p, nil); err != nil {
				runErr = err
				return
			}
			p.Sleep(interval)
		}
	})
	env.K.RunUntil(window)
	env.Stop()
	env.K.Run()
	if runErr != nil {
		return pricing.Bill{}, runErr
	}
	scale := float64(30*24*time.Hour) / float64(window)
	return env.BookFor(impl).Bill(env.UsageFor(impl)).Scale(scale), nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "costexplorer:", err)
	os.Exit(1)
}
