// videoanalytics runs the paper's video pipeline with REAL data end to
// end: it generates a synthetic video with planted faces, deploys the
// split → parallel-face-detect → merge workflow on the simulated AWS
// platform (Step Functions Map state over Lambda workers), executes the
// actual detector inside the simulated functions, and verifies the
// detections against ground truth.
//
//	go run ./examples/videoanalytics [-workers 8]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"statebench/internal/aws/lambda"
	"statebench/internal/aws/sfn"
	"statebench/internal/core"
	"statebench/internal/sim"
	"statebench/internal/video"
)

func main() {
	workers := flag.Int("workers", 8, "parallel face-detection workers")
	flag.Parse()

	// Real input: 96 frames of 160x120 with 3 moving faces.
	opt := video.DefaultGenerateOptions()
	opt.NumFrames = 96
	clip, truth := video.Generate(opt)
	encoded := video.Encode(clip)
	model := video.DefaultModel(1 << 20) // ~1 MB, like the paper's
	modelBytes, err := video.EncodeModel(model)
	if err != nil {
		fail(err)
	}
	fmt.Printf("input video: %d frames, %d KB encoded; detector model %d KB\n",
		len(clip.Frames), len(encoded)/1024, len(modelBytes)/1024)

	env := core.NewEnv(3)
	s3 := env.AWS.S3
	s3.Preload("videos/input", encoded)
	s3.Preload("models/face", modelBytes)

	// Split: decode, chunk, store each chunk.
	env.AWS.Lambda.MustRegister(lambda.Config{
		Name: "split", MemoryMB: 2048, ConsumedMemMB: 700,
		Handler: func(ctx *lambda.Context, payload []byte) ([]byte, error) {
			p := ctx.Proc()
			data, err := s3.Get(p, "videos/input")
			if err != nil {
				return nil, err
			}
			v, err := video.Decode(data)
			if err != nil {
				return nil, err
			}
			chunks, err := v.Split(*workers)
			if err != nil {
				return nil, err
			}
			v.Release() // chunks hold deep copies
			keys := make([]any, len(chunks))
			var buf []byte // Put copies, so one encode buffer serves all chunks
			for i, c := range chunks {
				key := fmt.Sprintf("chunks/%03d", i)
				buf = video.AppendEncode(buf[:0], c)
				s3.Put(p, key, buf)
				c.Release()
				keys[i] = key
			}
			return json.Marshal(map[string]any{"chunks": keys})
		},
	})

	// Detect: fetch chunk + model, run the REAL detector, store results.
	env.AWS.Lambda.MustRegister(lambda.Config{
		Name: "detect", MemoryMB: 2048, ConsumedMemMB: 900,
		Handler: func(ctx *lambda.Context, payload []byte) ([]byte, error) {
			var key string
			if err := json.Unmarshal(payload, &key); err != nil {
				return nil, err
			}
			p := ctx.Proc()
			data, err := s3.Get(p, key)
			if err != nil {
				return nil, err
			}
			mBytes, err := s3.Get(p, "models/face")
			if err != nil {
				return nil, err
			}
			m, err := video.DecodeModel(mBytes)
			if err != nil {
				return nil, err
			}
			chunk, err := video.Decode(data)
			if err != nil {
				return nil, err
			}
			dets := m.DetectVideo(chunk)
			chunk.Release()
			out, err := json.Marshal(dets)
			if err != nil {
				return nil, err
			}
			resultKey := key + ".dets"
			s3.Put(p, resultKey, out)
			return json.Marshal(resultKey)
		},
	})

	// Merge: gather per-chunk detections in order.
	env.AWS.Lambda.MustRegister(lambda.Config{
		Name: "merge", MemoryMB: 2048, ConsumedMemMB: 760,
		Handler: func(ctx *lambda.Context, payload []byte) ([]byte, error) {
			var in struct {
				Results []string `json:"results"`
			}
			if err := json.Unmarshal(payload, &in); err != nil {
				return nil, err
			}
			p := ctx.Proc()
			var all [][]video.Detection
			for _, key := range in.Results {
				data, err := s3.Get(p, key)
				if err != nil {
					return nil, err
				}
				var dets [][]video.Detection
				if err := json.Unmarshal(data, &dets); err != nil {
					return nil, err
				}
				all = append(all, dets...)
			}
			return json.Marshal(all)
		},
	})

	machine := &sfn.StateMachine{
		StartAt: "Split",
		States: map[string]*sfn.State{
			"Split": {Type: sfn.TypeTask, Resource: "split", Next: "Detect"},
			"Detect": {Type: sfn.TypeMap, ItemsPath: "$.chunks", ResultPath: "$.results", Next: "Merge",
				Iterator: &sfn.StateMachine{StartAt: "D", States: map[string]*sfn.State{
					"D": {Type: sfn.TypeTask, Resource: "detect", End: true},
				}}},
			"Merge": {Type: sfn.TypeTask, Resource: "merge", End: true},
		},
	}
	if err := env.AWS.SFN.CreateStateMachine("video", machine); err != nil {
		fail(err)
	}

	var exec *sfn.Execution
	env.K.Spawn("client", func(p *sim.Proc) {
		defer env.Stop()
		var err error
		exec, err = env.AWS.SFN.StartExecution(p, "video", map[string]any{})
		if err != nil {
			fail(err)
		}
	})
	env.K.Run()
	if exec.Err != nil {
		fail(exec.Err)
	}

	// Validate against ground truth.
	outJSON, _ := json.Marshal(exec.Output)
	var dets [][]video.Detection
	if err := json.Unmarshal(outJSON, &dets); err != nil {
		fail(err)
	}
	precision, recall := video.Evaluate(dets, truth, 0.3)
	fmt.Printf("workflow: %d transitions, simulated e2e %v\n", exec.Transitions, exec.Duration())
	fmt.Printf("detections across %d frames: precision %.2f, recall %.2f (IoU 0.3)\n",
		len(dets), precision, recall)
	if recall < 0.6 {
		fail(fmt.Errorf("recall %.2f too low — pipeline broken", recall))
	}
	fmt.Println("parallel chunked detection matches the paper's Fig 5 pipeline.")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "videoanalytics:", err)
	os.Exit(1)
}
