// mlpipeline runs the paper's machine-learning training workflow in all
// six Table II implementation styles (plus the inference workflow in
// its three styles) on the small dataset and prints the latency/cost
// comparison — a miniature of the paper's §V-A.
//
//	go run ./examples/mlpipeline
package main

import (
	"fmt"
	"os"

	"statebench/internal/core"
	"statebench/internal/obs"
	"statebench/internal/workloads/mlinfer"
	"statebench/internal/workloads/mlpipe"
	"statebench/internal/workloads/mltrain"
)

func main() {
	opt := core.DefaultMeasureOptions()
	opt.Iters = 10

	fmt.Println("training the real pipeline once (encoder, scaler, PCA, models)...")
	arts, err := mlpipe.Train(mlpipe.Small)
	if err != nil {
		fail(err)
	}
	fmt.Printf("best fit: %s (validation MSE %.3e), model %d KB\n\n",
		arts.BestName, arts.BestMSE, len(arts.ModelBytes[arts.BestName])/1024)

	train := mltrain.New(mlpipe.Small)
	tbl := obs.Table{Header: []string{"impl", "median E2E", "p99 E2E", "GB-s/run", "txns/run", "cost/run"}}
	for _, impl := range train.Impls() {
		s, err := core.Measure(train, impl, opt)
		if err != nil {
			fail(err)
		}
		tbl.AddRow(string(impl),
			obs.FormatDuration(s.E2E.Median()),
			obs.FormatDuration(s.E2E.P99()),
			fmt.Sprintf("%.2f", s.MeanGBs),
			fmt.Sprintf("%.0f", s.MeanTxns),
			fmt.Sprintf("$%.6f", s.MeanBill.Total()))
	}
	fmt.Println("ML training workflow (small dataset, 10 warm iterations):")
	fmt.Println(tbl.String())

	infer := mlinfer.New(mlpipe.Small)
	tbl2 := obs.Table{Header: []string{"impl", "median E2E", "p99 E2E"}}
	for _, impl := range infer.Impls() {
		s, err := core.Measure(infer, impl, opt)
		if err != nil {
			fail(err)
		}
		tbl2.AddRow(string(impl), obs.FormatDuration(s.E2E.Median()), obs.FormatDuration(s.E2E.P99()))
	}
	fmt.Println("ML inference workflow:")
	fmt.Println(tbl2.String())
	fmt.Println("note: on the small dataset the winning model is tiny, so AWS's")
	fmt.Println("per-run model fetch+deserialize penalty vanishes and AWS wins.")
	fmt.Println("Run `statebench fig9` (large dataset, ~MB model) for the paper's")
	fmt.Println("result: Azure ~2x faster because entities hold the model warm.")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mlpipeline:", err)
	os.Exit(1)
}
