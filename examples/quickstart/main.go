// Quickstart: deploy one three-step workflow on both simulated clouds
// — as an AWS Step Functions state machine and as an Azure Durable
// orchestration — run it, and compare latency and cost.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	"statebench/internal/aws/lambda"
	"statebench/internal/aws/sfn"
	"statebench/internal/azure/durable"
	"statebench/internal/azure/functions"
	"statebench/internal/core"
	"statebench/internal/pricing"
	"statebench/internal/sim"
)

// The workflow: validate -> transform -> store, each ~200 ms of compute.
const stepCost = 200 * time.Millisecond

func main() {
	env := core.NewEnv(7)

	// --- AWS deployment: three Lambdas chained by a state machine.
	for _, name := range []string{"validate", "transform", "store"} {
		env.AWS.Lambda.MustRegister(lambda.Config{
			Name: name, MemoryMB: 512, ConsumedMemMB: 200,
			Handler: func(ctx *lambda.Context, payload []byte) ([]byte, error) {
				ctx.Busy(stepCost)
				return payload, nil
			},
		})
	}
	machine := &sfn.StateMachine{
		StartAt: "Validate",
		States: map[string]*sfn.State{
			"Validate":  {Type: sfn.TypeTask, Resource: "validate", Next: "Transform"},
			"Transform": {Type: sfn.TypeTask, Resource: "transform", Next: "Store"},
			"Store":     {Type: sfn.TypeTask, Resource: "store", End: true},
		},
	}
	if err := env.AWS.SFN.CreateStateMachine("quickstart", machine); err != nil {
		fail(err)
	}

	// --- Azure deployment: three activities chained by an orchestrator.
	hub := env.Azure.Hub
	for _, name := range []string{"validate", "transform", "store"} {
		if err := hub.RegisterActivity(name, 200, func(ctx *functions.Context, payload []byte) ([]byte, error) {
			ctx.Busy(stepCost)
			return payload, nil
		}); err != nil {
			fail(err)
		}
	}
	if err := hub.RegisterOrchestrator("quickstart", 150, func(ctx *durable.OrchestrationContext, input []byte) ([]byte, error) {
		v, err := ctx.CallActivity("validate", input).Await()
		if err != nil {
			return nil, err
		}
		t, err := ctx.CallActivity("transform", v).Await()
		if err != nil {
			return nil, err
		}
		return ctx.CallActivity("store", t).Await()
	}); err != nil {
		fail(err)
	}

	// --- Run both and compare.
	var awsExec *sfn.Execution
	var azHandle *durable.Handle
	env.K.Spawn("client", func(p *sim.Proc) {
		defer env.Stop()
		var err error
		awsExec, err = env.AWS.SFN.StartExecution(p, "quickstart", map[string]any{"order": float64(42)})
		if err != nil {
			fail(err)
		}
		_, azHandle, err = env.Azure.Client.Run(p, "quickstart", []byte(`{"order":42}`))
		if err != nil {
			fail(err)
		}
	})
	env.K.Run()

	awsMeter := env.AWS.Lambda.TotalMeter()
	azMeter := env.Azure.Host.TotalMeter()
	awsBill := pricing.DefaultAWS().AWSBill(awsMeter.BilledGBs, awsMeter.Invocations, env.AWS.SFN.TotalTransitions, 0)
	azBill := pricing.DefaultAzure().AzureBill(azMeter.BilledGBs, azMeter.Invocations, env.Azure.StorageTransactions(), 0)

	fmt.Println("three-step workflow, one run on each cloud:")
	fmt.Printf("  AWS Step Functions: %-10v (%d transitions)  %v\n", awsExec.Duration(), awsExec.Transitions, awsBill)
	fmt.Printf("  Azure Durable:      %-10v (cold start %v)    %v\n", azHandle.E2E(), azHandle.ColdStart(), azBill)
	fmt.Println()
	fmt.Println("the Azure bill includes the task hub's queue polling — the")
	fmt.Println("stateful cost component the paper characterizes.")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "quickstart:", err)
	os.Exit(1)
}
