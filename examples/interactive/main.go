// interactive demonstrates the human-in-the-loop pattern the paper
// notes AWS built Step Functions for ("the ability to make it
// interactive with the customers"): a durable purchase-approval
// orchestration that fans work out, waits for an external approval
// event with a timeout, and reacts to whichever comes first.
//
//	go run ./examples/interactive [-approveAfter 2m] [-timeout 10m]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"statebench/internal/azure/durable"
	"statebench/internal/azure/functions"
	"statebench/internal/core"
	"statebench/internal/sim"
)

func main() {
	approveAfter := flag.Duration("approveAfter", 2*time.Minute, "when the (simulated) human approves")
	timeout := flag.Duration("timeout", 10*time.Minute, "approval deadline")
	flag.Parse()

	env := core.NewEnv(17)
	hub := env.Azure.Hub

	if err := hub.RegisterActivity("prepare-order", 192, func(ctx *functions.Context, in []byte) ([]byte, error) {
		ctx.Busy(3 * time.Second)
		return []byte(`{"order":"#1042","total":"$1,299"}`), nil
	}); err != nil {
		fail(err)
	}
	if err := hub.RegisterActivity("fulfil", 192, func(ctx *functions.Context, in []byte) ([]byte, error) {
		ctx.Busy(5 * time.Second)
		return []byte("shipped"), nil
	}); err != nil {
		fail(err)
	}

	deadline := *timeout
	if err := hub.RegisterOrchestrator("purchase", 150, func(ctx *durable.OrchestrationContext, input []byte) ([]byte, error) {
		order, err := ctx.CallActivity("prepare-order", input).Await()
		if err != nil {
			return nil, err
		}
		// Race the human against the deadline — the canonical durable
		// interaction pattern.
		approval := ctx.WaitForExternalEvent("ManagerApproval")
		timer := ctx.CreateTimer(deadline)
		if ctx.WaitAny(approval, timer) == 1 {
			return []byte("order expired: no approval before the deadline"), nil
		}
		decision, err := approval.Await()
		if err != nil {
			return nil, err
		}
		if string(decision) != "approve" {
			return []byte("order rejected by manager"), nil
		}
		if _, err := ctx.CallActivity("fulfil", order).Await(); err != nil {
			return nil, err
		}
		return []byte("order approved and shipped"), nil
	}); err != nil {
		fail(err)
	}

	var outcome []byte
	var hd *durable.Handle
	env.K.Spawn("client", func(p *sim.Proc) {
		defer env.Stop()
		var err error
		hd, err = env.Azure.Client.StartOrchestration(p, "purchase", nil)
		if err != nil {
			fail(err)
		}
		// The "human": approves after a while (or never, if the
		// deadline is shorter).
		p.Sleep(*approveAfter)
		if hd.Status() == durable.StatusRunning {
			if err := env.Azure.Client.RaiseEvent(p, hd.ID, "ManagerApproval", []byte("approve")); err != nil {
				fmt.Fprintln(os.Stderr, "raise:", err)
			}
		}
		outcome, err = hd.Wait(p)
		if err != nil {
			fail(err)
		}
	})
	env.K.Run()

	fmt.Printf("outcome: %s\n", outcome)
	fmt.Printf("end-to-end: %v (approval raised at %v, deadline %v)\n", hd.E2E(), *approveAfter, deadline)
	fmt.Printf("orchestrator episodes (replays): %d\n", hub.EpisodeCount)
	fmt.Println()
	fmt.Println("while the orchestration waited, the task hub kept polling its")
	fmt.Printf("queues: %d billable storage transactions accrued.\n", hub.StorageTransactions())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "interactive:", err)
	os.Exit(1)
}
