module statebench

go 1.22
