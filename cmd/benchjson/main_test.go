package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseLineStandard(t *testing.T) {
	r, ok := parseLine("BenchmarkKernel-8  1000  1234 ns/op  56 B/op  7 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if r.Name != "BenchmarkKernel-8" || r.Iterations != 1000 || r.NsPerOp != 1234 {
		t.Fatalf("parsed %+v", r)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 56 || r.AllocsPerOp == nil || *r.AllocsPerOp != 7 {
		t.Fatalf("mem stats %+v", r)
	}
	if len(r.Metrics) != 0 {
		t.Fatalf("unexpected metrics %v", r.Metrics)
	}
}

func TestParseLineCustomMetrics(t *testing.T) {
	// b.ReportMetric emits floats; they must land in Metrics, not be
	// dropped by integer parsing.
	r, ok := parseLine("BenchmarkTraffic-8  3  400000000 ns/op  2500000.5 events/op  120 peak-RSS-MB  16 B/op  2 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if r.Metrics["events/op"] != 2500000.5 || r.Metrics["peak-RSS-MB"] != 120 {
		t.Fatalf("metrics = %v", r.Metrics)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 16 {
		t.Fatalf("B/op lost: %+v", r)
	}
	// events/sec = events/op ÷ sec/op = 2500000.5 / 0.4
	if got := r.EventsPerSec(); got < 6.25e6-1 || got > 6.25e6+2 {
		t.Fatalf("events/sec = %v", got)
	}
}

func TestParseLineRejectsNonBench(t *testing.T) {
	if _, ok := parseLine("BenchmarkBroken-8 something"); ok {
		t.Fatal("parsed garbage")
	}
}

// writeDoc marshals a bare Document baseline for compare tests.
func writeDoc(t *testing.T, dir, name string, results []Result) string {
	t.Helper()
	b, err := json.Marshal(Document{Results: results})
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCompareAddedRemovedAndEvents runs the built binary in -compare
// mode over baselines with an added, a removed, and a changed
// benchmark, the latter carrying the events/op metric.
func TestCompareAddedRemovedAndEvents(t *testing.T) {
	dir := t.TempDir()
	oldP := writeDoc(t, dir, "old.json", []Result{
		{Name: "BenchmarkShared-8", Iterations: 10, NsPerOp: 2e8, Metrics: map[string]float64{"events/op": 1e6}},
		{Name: "BenchmarkGone-8", Iterations: 10, NsPerOp: 5e5},
	})
	newP := writeDoc(t, dir, "new.json", []Result{
		{Name: "BenchmarkShared-8", Iterations: 10, NsPerOp: 1e8, Metrics: map[string]float64{"events/op": 1e6}},
		{Name: "BenchmarkFresh-8", Iterations: 10, NsPerOp: 3e5},
	})

	bin := filepath.Join(dir, "benchjson")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	out, err := exec.Command(bin, "-compare", oldP, newP).CombinedOutput()
	if err != nil {
		t.Fatalf("compare errored: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{
		"(new)", "(removed)", "BenchmarkFresh-8", "BenchmarkGone-8",
		"events/s", // column present because events/op exists
		"5.0M",     // old: 1e6 events / 0.2s
		"10.0M",    // new: 1e6 events / 0.1s
		"+100.0%",  // events/sec delta
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("compare output missing %q:\n%s", want, s)
		}
	}
}

// TestCompareWithoutEventsKeepsLayout: plain baselines must not grow
// the events columns.
func TestCompareWithoutEventsKeepsLayout(t *testing.T) {
	dir := t.TempDir()
	oldP := writeDoc(t, dir, "old.json", []Result{{Name: "BenchmarkA-8", Iterations: 1, NsPerOp: 100}})
	newP := writeDoc(t, dir, "new.json", []Result{{Name: "BenchmarkA-8", Iterations: 1, NsPerOp: 90}})
	bin := filepath.Join(dir, "benchjson")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	out, err := exec.Command(bin, "-compare", oldP, newP).CombinedOutput()
	if err != nil {
		t.Fatalf("compare errored: %v\n%s", err, out)
	}
	if strings.Contains(string(out), "events/s") {
		t.Fatalf("events column leaked into plain compare:\n%s", out)
	}
}
