// Command benchjson converts `go test -bench -benchmem` text output
// into a stable JSON document, so benchmark baselines can be committed
// and diffed across PRs (see BENCH_PR1.json).
//
// Usage:
//
//	go test -run - -bench . -benchmem ./internal/sim/ | go run ./cmd/benchjson
//	go run ./cmd/benchjson -label pr1 < bench.txt
//
// Lines that are not benchmark results (goos/pkg headers, PASS/ok) are
// folded into the document's metadata or ignored.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
}

// Document is the full parsed run.
type Document struct {
	Label  string `json:"label,omitempty"`
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	Pkg    string `json:"pkg,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// Commit is the abbreviated git commit the run was taken at
	// (best-effort; empty outside a git checkout).
	Commit string `json:"commit,omitempty"`
	// GoMaxProcs records the scheduler width of the benchmarking
	// process, since parallel-suite numbers depend on it.
	GoMaxProcs int      `json:"gomaxprocs,omitempty"`
	Results    []Result `json:"results"`
}

// gitCommit returns the short commit hash, or "" when unavailable.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func main() {
	label := flag.String("label", "", "optional label stored in the JSON document")
	flag.Parse()

	doc := Document{Label: *label, Commit: gitCommit(), GoMaxProcs: runtime.GOMAXPROCS(0)}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				doc.Results = append(doc.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses one result line of the form
//
//	BenchmarkName-8  1000  1234 ns/op  56 B/op  7 allocs/op
//
// The -N GOMAXPROCS suffix is kept as part of the name.
func parseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || f[3] != "ns/op" {
		return Result{}, false
	}
	iters, err1 := strconv.ParseInt(f[1], 10, 64)
	ns, err2 := strconv.ParseFloat(f[2], 64)
	if err1 != nil || err2 != nil {
		return Result{}, false
	}
	r := Result{Name: f[0], Iterations: iters, NsPerOp: ns}
	for i := 4; i+1 < len(f); i += 2 {
		v, err := strconv.ParseInt(f[i], 10, 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "B/op":
			b := v
			r.BytesPerOp = &b
		case "allocs/op":
			a := v
			r.AllocsPerOp = &a
		}
	}
	return r, true
}
