// Command benchjson converts `go test -bench -benchmem` text output
// into a stable JSON document, so benchmark baselines can be committed
// and diffed across PRs (see BENCH_PR1.json).
//
// Usage:
//
//	go test -run - -bench . -benchmem ./internal/sim/ | go run ./cmd/benchjson
//	go run ./cmd/benchjson -label pr1 < bench.txt
//	go run ./cmd/benchjson -compare BENCH_PR4.json BENCH_PR5.json
//
// Lines that are not benchmark results (goos/pkg headers, PASS/ok) are
// folded into the document's metadata or ignored. The -compare mode
// prints per-benchmark time and allocation deltas between two committed
// baselines instead of parsing stdin.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric units (e.g. "events/op",
	// "peak-RSS-MB"), keyed by unit string.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// EventsPerSec derives throughput from the "events/op" custom metric:
// events per op over seconds per op. Returns 0 when absent.
func (r Result) EventsPerSec() float64 {
	ev, ok := r.Metrics["events/op"]
	if !ok || r.NsPerOp <= 0 {
		return 0
	}
	return ev / (r.NsPerOp / 1e9)
}

// Document is the full parsed run.
type Document struct {
	Label  string `json:"label,omitempty"`
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	Pkg    string `json:"pkg,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// Commit is the abbreviated git commit the run was taken at
	// (best-effort; empty outside a git checkout).
	Commit string `json:"commit,omitempty"`
	// GoMaxProcs records the scheduler width of the benchmarking
	// process, since parallel-suite numbers depend on it.
	GoMaxProcs int      `json:"gomaxprocs,omitempty"`
	Results    []Result `json:"results"`
}

// gitCommit returns the short commit hash, or "" when unavailable.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func main() {
	label := flag.String("label", "", "optional label stored in the JSON document")
	compare := flag.Bool("compare", false, "compare two benchjson files: benchjson -compare old.json new.json")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -compare old.json new.json")
			os.Exit(2)
		}
		if err := runCompare(flag.Arg(0), flag.Arg(1)); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	doc := Document{Label: *label, Commit: gitCommit(), GoMaxProcs: runtime.GOMAXPROCS(0)}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				doc.Results = append(doc.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// baselineFile is the committed BENCH_*.json shape: a note plus one
// Document per labelled `make bench` invocation. A bare Document (as
// emitted by this tool) is also accepted.
type baselineFile struct {
	Note string     `json:"note,omitempty"`
	Runs []Document `json:"runs,omitempty"`
}

// readResults loads a baseline and flattens its runs into one result
// list. When a benchmark name recurs across runs the fastest entry
// wins, matching how the committed baselines compare minima.
func readResults(path string) ([]Result, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf baselineFile
	if err := json.Unmarshal(b, &bf); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	docs := bf.Runs
	if len(docs) == 0 {
		var doc Document
		if err := json.Unmarshal(b, &doc); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		docs = []Document{doc}
	}
	var out []Result
	index := make(map[string]int)
	for _, doc := range docs {
		for _, r := range doc.Results {
			if i, ok := index[r.Name]; ok {
				if r.NsPerOp < out[i].NsPerOp {
					out[i] = r
				}
				continue
			}
			index[r.Name] = len(out)
			out = append(out, r)
		}
	}
	return out, nil
}

// runCompare prints per-benchmark deltas between two baselines, matched
// by benchmark name (including the -N GOMAXPROCS suffix). Benchmarks
// present in only one document are listed as added or removed.
func runCompare(oldPath, newPath string) error {
	oldResults, err := readResults(oldPath)
	if err != nil {
		return err
	}
	newResults, err := readResults(newPath)
	if err != nil {
		return err
	}
	oldBy := make(map[string]Result, len(oldResults))
	for _, r := range oldResults {
		oldBy[r.Name] = r
	}
	// The events/sec columns appear only when either side carries the
	// "events/op" custom metric, so plain baselines render unchanged.
	events := false
	for _, r := range append(append([]Result{}, oldResults...), newResults...) {
		if r.EventsPerSec() > 0 {
			events = true
			break
		}
	}

	w := tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
	fmt.Fprintf(w, "benchmark\told time/op\tnew time/op\tdelta\tspeedup\told allocs/op\tnew allocs/op\tdelta")
	if events {
		fmt.Fprintf(w, "\told events/s\tnew events/s\tdelta")
	}
	fmt.Fprintln(w)
	row := func(name string, or, nr *Result) {
		switch {
		case or == nil:
			fmt.Fprintf(w, "%s\t-\t%s\t(new)\t-\t-\t%s\t(new)",
				name, fmtNs(nr.NsPerOp), fmtAllocs(nr.AllocsPerOp))
			if events {
				fmt.Fprintf(w, "\t-\t%s\t(new)", fmtEvents(nr.EventsPerSec()))
			}
		case nr == nil:
			fmt.Fprintf(w, "%s\t%s\t-\t(removed)\t-\t%s\t-\t(removed)",
				name, fmtNs(or.NsPerOp), fmtAllocs(or.AllocsPerOp))
			if events {
				fmt.Fprintf(w, "\t%s\t-\t(removed)", fmtEvents(or.EventsPerSec()))
			}
		default:
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s",
				name,
				fmtNs(or.NsPerOp), fmtNs(nr.NsPerOp), fmtDelta(or.NsPerOp, nr.NsPerOp),
				fmtSpeedup(or.NsPerOp, nr.NsPerOp),
				fmtAllocs(or.AllocsPerOp), fmtAllocs(nr.AllocsPerOp),
				fmtDeltaAllocs(or.AllocsPerOp, nr.AllocsPerOp))
			if events {
				fmt.Fprintf(w, "\t%s\t%s\t%s",
					fmtEvents(or.EventsPerSec()), fmtEvents(nr.EventsPerSec()),
					fmtDelta(or.EventsPerSec(), nr.EventsPerSec()))
			}
		}
		fmt.Fprintln(w)
	}
	seen := make(map[string]bool, len(newResults))
	for _, nr := range newResults {
		nr := nr
		seen[nr.Name] = true
		if or, ok := oldBy[nr.Name]; ok {
			row(nr.Name, &or, &nr)
		} else {
			row(nr.Name, nil, &nr)
		}
	}
	for _, or := range oldResults {
		or := or
		if !seen[or.Name] {
			row(or.Name, &or, nil)
		}
	}
	return w.Flush()
}

// fmtEvents renders an events/sec throughput ("-" when the benchmark
// reports no events/op metric).
func fmtEvents(v float64) string {
	switch {
	case v <= 0:
		return "-"
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

func fmtNs(ns float64) string {
	switch d := time.Duration(ns); {
	case d < time.Microsecond:
		return fmt.Sprintf("%.1fns", ns)
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fµs", ns/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", ns/1e6)
	default:
		return fmt.Sprintf("%.3fs", ns/1e9)
	}
}

func fmtAllocs(a *int64) string {
	if a == nil {
		return "-"
	}
	return strconv.FormatInt(*a, 10)
}

// fmtSpeedup renders old/new as a ratio ("4.00x" = the new side is
// four times faster), the natural reading for before/after pairs like
// the optimizer's cold-vs-shared sweep baselines, where a percentage
// delta compresses large wins.
func fmtSpeedup(old, new float64) string {
	if old <= 0 || new <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", old/new)
}

func fmtDelta(old, new float64) string {
	if old == 0 {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", (new-old)/old*100)
}

func fmtDeltaAllocs(old, new *int64) string {
	if old == nil || new == nil || *old == 0 {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", float64(*new-*old)/float64(*old)*100)
}

// parseLine parses one result line of the form
//
//	BenchmarkName-8  1000  1234 ns/op  56 B/op  7 allocs/op
//
// The -N GOMAXPROCS suffix is kept as part of the name.
func parseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || f[3] != "ns/op" {
		return Result{}, false
	}
	iters, err1 := strconv.ParseInt(f[1], 10, 64)
	ns, err2 := strconv.ParseFloat(f[2], 64)
	if err1 != nil || err2 != nil {
		return Result{}, false
	}
	r := Result{Name: f[0], Iterations: iters, NsPerOp: ns}
	for i := 4; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		switch unit := f[i+1]; unit {
		case "B/op":
			b := int64(v)
			r.BytesPerOp = &b
		case "allocs/op":
			a := int64(v)
			r.AllocsPerOp = &a
		default:
			// Custom b.ReportMetric units ("events/op", "peak-RSS-MB",
			// ...) land in the metrics map verbatim.
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}
