package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"statebench/internal/core"
	"statebench/internal/obs"
	"statebench/internal/obs/metrics"
	"statebench/internal/obs/span"
	"statebench/internal/obs/tseries"
	"statebench/internal/workloads/mapreduce"
	"statebench/internal/workloads/mlinfer"
	"statebench/internal/workloads/mlpipe"
	"statebench/internal/workloads/mltrain"
	"statebench/internal/workloads/videoproc"
)

// traceWorkflows maps the -workflow flag values to constructors (shared
// by the trace, chaos, and graph subcommands).
var traceWorkflows = map[string]func() core.Workflow{
	"ml-training-small": func() core.Workflow { return mltrain.New(mlpipe.Small) },
	"ml-training-large": func() core.Workflow { return mltrain.New(mlpipe.Large) },
	"ml-inference":      func() core.Workflow { return mlinfer.New(mlpipe.Small) },
	"video":             func() core.Workflow { return videoproc.New(20) },
	"mapreduce":         func() core.Workflow { return mapreduce.New() },
}

func traceWorkflowNames() string {
	names := make([]string, 0, len(traceWorkflows))
	for n := range traceWorkflows {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, "|")
}

// runTrace implements "statebench trace": run one workflow/style
// campaign with the span tracer on and export the span tree as a
// Chrome trace-event file (chrome://tracing, Perfetto).
func runTrace(args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	implFlag := fs.String("impl", string(core.AWSStep), "implementation style ("+styleList()+")")
	wfFlag := fs.String("workflow", "ml-training-small", "workflow ("+traceWorkflowNames()+")")
	runs := fs.Int("runs", 3, "measured runs to trace")
	seed := fs.Uint64("seed", 42, "simulation seed")
	out := fs.String("o", "trace.json", "output Chrome trace-event file")
	metricsOut := fs.String("metrics", "", "also write Prometheus text metrics to this file")
	_ = fs.Parse(args)

	build, ok := traceWorkflows[*wfFlag]
	if !ok {
		fmt.Fprintf(os.Stderr, "statebench trace: unknown workflow %q (want %s)\n", *wfFlag, traceWorkflowNames())
		os.Exit(1)
	}
	wf := build()
	impl := core.Impl(*implFlag)
	if !core.SupportsImpl(wf, impl) {
		fmt.Fprintf(os.Stderr, "statebench trace: workflow %s does not support style %q\n", wf.Name(), *implFlag)
		os.Exit(1)
	}

	opt := core.DefaultMeasureOptions()
	opt.Iters = *runs
	opt.Seed = *seed
	opt.Tracing = true
	// Windowed telemetry feeds the counter tracks ("ph":"C" events)
	// rendered above the span lanes in the trace viewer.
	opt.Timeline = tseries.NewCollector(0)
	var reg *metrics.Registry
	if *metricsOut != "" {
		reg = metrics.NewRegistry()
		opt.Metrics = reg
	}

	s, err := core.Measure(wf, impl, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "statebench trace:", err)
		os.Exit(1)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "statebench trace:", err)
		os.Exit(1)
	}
	if err := span.WriteChromeTraceWith(f, s.Trace.Spans(), s.Timeline.CounterTracks()); err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "statebench trace:", err)
		os.Exit(1)
	}
	if reg != nil {
		if err := writeMetricsFile(*metricsOut, reg); err != nil {
			fmt.Fprintln(os.Stderr, "statebench trace:", err)
			os.Exit(1)
		}
	}

	fmt.Printf("%s / %s: %d runs, %d spans -> %s\n", wf.Name(), impl, *runs, s.Trace.Len(), *out)
	fmt.Printf("  median E2E %v\n", obs.FormatDuration(s.E2E.Median()))
	printBreakdown("  snapshot breakdown", s.Breakdowns.Mean())
	printBreakdown("  span breakdown    ", s.SpanBreakdowns.Mean())
	kinds := span.TotalByKind(s.Trace.Spans(), 0)
	names := make([]string, 0, len(kinds))
	for k := range kinds {
		names = append(names, string(k))
	}
	sort.Strings(names)
	fmt.Println("  span time by kind (entire campaign, incl. warmup):")
	for _, n := range names {
		fmt.Printf("    %-14s %v\n", n, obs.FormatDuration(kinds[span.Kind(n)]))
	}
}

func printBreakdown(label string, b obs.Breakdown) {
	fmt.Printf("%s: cold %v, queue %v, exec %v, other %v\n", label,
		obs.FormatDuration(b.ColdStart), obs.FormatDuration(b.QueueTime),
		obs.FormatDuration(b.ExecTime), obs.FormatDuration(b.Other))
}

// writeMetricsFile renders a registry as Prometheus text exposition.
func writeMetricsFile(path string, reg *metrics.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WritePrometheus(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
