package main

import (
	"flag"
	"fmt"
	"os"

	"statebench/internal/core"
	"statebench/internal/experiments"
)

// runChaos implements "statebench chaos": run one workflow under a
// deterministic injected-fault schedule and print the reliability table
// (success rate, recovery activity, tail/cost inflation vs a fault-free
// baseline at the same seed). The schedule derives from -seed and
// -faultrate alone, so the output is byte-identical across runs and
// -parallel settings.
func runChaos(args []string) {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	implFlag := fs.String("impl", "all", "implementation style ("+styleList()+"|all)")
	wfFlag := fs.String("workflow", "ml-training-small", "workflow ("+traceWorkflowNames()+")")
	seed := fs.Uint64("seed", 42, "simulation seed")
	rate := fs.Float64("faultrate", experiments.DefaultFaultRate, "per-decision fault injection probability")
	iters := fs.Int("iters", 20, "measured runs per style")
	workers := fs.Int("parallel", 0, "campaign worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	csv := fs.Bool("csv", false, "emit CSV instead of a text table")
	_ = fs.Parse(args)

	build, ok := traceWorkflows[*wfFlag]
	if !ok {
		fmt.Fprintf(os.Stderr, "statebench chaos: unknown workflow %q (want %s)\n", *wfFlag, traceWorkflowNames())
		os.Exit(1)
	}
	wf := build()
	impls := wf.Impls()
	if *implFlag != "all" {
		impl := core.Impl(*implFlag)
		if !core.SupportsImpl(wf, impl) {
			fmt.Fprintf(os.Stderr, "statebench chaos: workflow %s does not support style %q\n", wf.Name(), *implFlag)
			os.Exit(1)
		}
		impls = []core.Impl{impl}
	}
	if *rate < 0 || *rate > 1 {
		fmt.Fprintln(os.Stderr, "statebench chaos: -faultrate must be in [0,1]")
		os.Exit(1)
	}

	o := experiments.QuickOptions()
	o.Iters = *iters
	o.Seed = *seed
	o.Workers = *workers

	r, err := experiments.ReliabilityFor(wf, impls, o, *rate)
	if err != nil {
		fmt.Fprintln(os.Stderr, "statebench chaos:", err)
		os.Exit(1)
	}
	r.Title = fmt.Sprintf("%s (workflow %s, %d iters, seed %d)", r.Title, wf.Name(), *iters, *seed)
	if *csv {
		fmt.Print(r.CSV())
	} else {
		fmt.Println(r)
	}
}
