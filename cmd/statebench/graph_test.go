package main

// Tests for the graph subcommand and the lowering determinism
// property: the compiled orchestration artifacts (ASL JSON, Workflows
// programs, registration plans) are pure functions of the IR. Goldens
// pin them across runs; within-run double-compilation pins them
// against accidental map-order or pointer-identity leaks. (-parallel
// cannot affect them: Program never touches an Env or a kernel.)
//
// Regenerate with:
//
//	STATEBENCH_GRAPH_REGEN=1 go test ./cmd/statebench -run TestGraph

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"statebench/internal/core"
	"statebench/internal/flow"
)

// flowDefOf resolves a trace-map workload's IR definition.
func flowDefOf(t *testing.T, name string) *flow.Definition {
	t.Helper()
	fd, ok := traceWorkflows[name]().(interface {
		FlowDef() (*flow.Definition, error)
	})
	if !ok {
		t.Fatalf("workload %q exposes no FlowDef", name)
	}
	def, err := fd.FlowDef()
	if err != nil {
		t.Fatalf("FlowDef(%s): %v", name, err)
	}
	return def
}

// checkGolden compares got against a golden file, regenerating it when
// STATEBENCH_GRAPH_REGEN=1.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("..", "..", "testdata", "golden", name)
	if os.Getenv("STATEBENCH_GRAPH_REGEN") == "1" {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", path)
		return
	}
	if want := golden(t, name); got != want {
		t.Fatalf("%s drifted\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestGraphDOTGolden(t *testing.T) {
	checkGolden(t, "graph_mapreduce.dot", flow.DOT(flowDefOf(t, "mapreduce")))
}

func TestGraphSummaryGolden(t *testing.T) {
	var buf bytes.Buffer
	writeLoweringSummary(&buf, flowDefOf(t, "mapreduce"))
	checkGolden(t, "graph_mapreduce_summary.txt", buf.String())
}

// TestGraphProgramsGolden pins every style's compiled program for the
// mapreduce workload, separated by headers, as one golden file.
func TestGraphProgramsGolden(t *testing.T) {
	def := flowDefOf(t, "mapreduce")
	var buf bytes.Buffer
	for _, impl := range core.RegisteredImpls() {
		l, ok := flow.LowererFor(impl)
		if !ok || !flow.Supports(def, impl) {
			continue
		}
		prog, err := l.Program(def)
		if err != nil {
			t.Fatalf("%s: Program: %v", impl, err)
		}
		fmt.Fprintf(&buf, "==== %s ====\n%s\n", impl, prog)
	}
	checkGolden(t, "programs_mapreduce.txt", buf.String())
}

// TestGraphLoweringIsDeterministic compiles every workload's IR twice
// per supported style and demands byte-identical programs.
func TestGraphLoweringIsDeterministic(t *testing.T) {
	names := make([]string, 0, len(traceWorkflows))
	for n := range traceWorkflows {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		def := flowDefOf(t, name)
		for _, impl := range core.RegisteredImpls() {
			l, ok := flow.LowererFor(impl)
			if !ok || !flow.Supports(def, impl) {
				continue
			}
			p1, err := l.Program(def)
			if err != nil {
				t.Fatalf("%s/%s: Program: %v", name, impl, err)
			}
			if p1 == "" {
				t.Fatalf("%s/%s: empty program", name, impl)
			}
			p2, err := l.Program(def)
			if err != nil {
				t.Fatalf("%s/%s: Program (second compile): %v", name, impl, err)
			}
			if p1 != p2 {
				t.Fatalf("%s/%s: two compilations of the same IR differ", name, impl)
			}
		}
	}
}

// TestGraphCommandRejectsUnknownWorkload covers the CLI error path.
func TestGraphCommandRenderedDOTParsesAsNonEmpty(t *testing.T) {
	for name := range traceWorkflows {
		dot := flow.DOT(flowDefOf(t, name))
		if len(dot) < 100 || dot[:8] != "digraph " {
			t.Fatalf("%s: DOT output looks wrong: %.60q", name, dot)
		}
	}
}
