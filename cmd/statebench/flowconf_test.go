package main

// Flow-conformance gate: pins the observable behaviour of every
// IR-defined workload on every registered style, byte for byte. The
// golden (testdata/golden/flowconf.txt) was generated from the
// pre-refactor per-provider deploy code, so these tests prove the
// rebase of mltrain/mlinfer/videoproc onto internal/flow changed
// nothing a campaign can see: latency distributions, cold starts,
// span-derived exec times, billing, fault recovery, and deployment
// metadata (function count, package size), at -parallel 1 and 8.
//
// Regenerate with:
//
//	STATEBENCH_FLOWCONF_REGEN=1 go test ./cmd/statebench -run TestFlowConformance
//
// Run via `make flow-conformance` (part of tier2).

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"statebench/internal/chaos"
	"statebench/internal/core"
	"statebench/internal/experiments"
	"statebench/internal/parallel"
	"statebench/internal/payload"
	"statebench/internal/workloads/mlinfer"
	"statebench/internal/workloads/mlpipe"
	"statebench/internal/workloads/mltrain"
	"statebench/internal/workloads/videoproc"
)

const flowconfGolden = "flowconf.txt"

type confCampaign struct {
	wf    core.Workflow
	impl  core.Impl
	iters int
}

// confCampaigns enumerates workload x style exactly like the
// crosscloud experiment does: from the provider registry, so a style
// added by any provider package lands in the gate automatically.
func confCampaigns() []confCampaign {
	var out []confCampaign
	add := func(wf core.Workflow, iters int) {
		for _, impl := range core.RegisteredImpls() {
			if core.SupportsImpl(wf, impl) {
				out = append(out, confCampaign{wf, impl, iters})
			}
		}
	}
	add(mltrain.New(mlpipe.Small), 3)
	add(mlinfer.New(mlpipe.Small), 3)
	add(videoproc.New(4), 2)
	return out
}

// renderConformance measures every campaign under span tracing and the
// crosscloud fault schedule and renders one line per campaign. The
// worker count fans campaigns like the -parallel flag fans experiments;
// every campaign seeds its own environment, so output is byte-identical
// at any worker count.
func renderConformance(workers int) (string, error) {
	plan := chaos.DefaultPlan(experiments.DefaultFaultRate)
	campaigns := confCampaigns()
	eng := payload.NewEngine()
	rows, err := parallel.Map(workers, len(campaigns), func(i int) (string, error) {
		c := campaigns[i]

		// Deployment metadata from a throwaway env: pins function
		// count and code package size per style.
		menv := core.NewEnv(99)
		menv.Payload = eng
		d, err := c.wf.Deploy(menv, c.impl)
		if err != nil {
			return "", fmt.Errorf("%s/%s: deploy: %w", c.wf.Name(), c.impl, err)
		}
		menv.Stop()

		opt := core.MeasureOptions{
			Iters:        c.iters,
			Seed:         1234,
			Workers:      workers,
			Tracing:      true,
			Chaos:        plan,
			PayloadCache: eng,
		}
		s, err := core.Measure(c.wf, c.impl, opt)
		if err != nil {
			return "", fmt.Errorf("%s/%s: measure: %w", c.wf.Name(), c.impl, err)
		}
		sb := s.SpanBreakdowns.AtQuantile(0.5)
		return fmt.Sprintf("%s | %s | ok=%.4f p50=%s p99=%s cold=%s exec=%s cost=%.8f err=%d inj=%d | funcs=%d code=%.1fMB",
			c.wf.Name(), c.impl, s.SuccessRate,
			s.E2E.Median(), s.E2E.P99(), s.Cold.Median(), sb.ExecTime,
			s.MeanBill.Total(), s.Errors, s.Faults.Injected,
			d.FuncCount, d.CodeSizeMB), nil
	})
	if err != nil {
		return "", err
	}
	return strings.Join(rows, "\n") + "\n", nil
}

func TestFlowConformance(t *testing.T) {
	skipUnderRace(t)
	got, err := renderConformance(1)
	if err != nil {
		t.Fatal(err)
	}
	if os.Getenv("STATEBENCH_FLOWCONF_REGEN") == "1" {
		path := filepath.Join("..", "..", "testdata", "golden", flowconfGolden)
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", path)
		return
	}
	want := golden(t, flowconfGolden)
	if got != want {
		t.Fatalf("flow conformance drifted from pre-refactor baseline\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestFlowConformanceParallelInvariant(t *testing.T) {
	skipUnderRace(t)
	if os.Getenv("STATEBENCH_FLOWCONF_REGEN") == "1" {
		t.Skip("regen runs in TestFlowConformance")
	}
	got, err := renderConformance(8)
	if err != nil {
		t.Fatal(err)
	}
	want := golden(t, flowconfGolden)
	if got != want {
		t.Fatalf("flow conformance output varies with worker count\n--- got (workers=8) ---\n%s\n--- want ---\n%s", got, want)
	}
}
