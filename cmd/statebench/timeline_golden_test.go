package main

import (
	"bytes"
	"testing"

	"statebench/internal/experiments"
)

// renderTimeline reproduces `statebench -quick -parallel N timeline`:
// resolve the runner, run it through the same pool as the CLI, render
// the report.
func renderTimeline(t *testing.T, workers int) string {
	t.Helper()
	runner, err := experiments.Find("timeline")
	if err != nil {
		t.Fatal(err)
	}
	reports, err := experiments.RunAll([]experiments.Runner{runner}, quickOpts(workers))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, r := range reports {
		buf.WriteString(r.String())
		buf.WriteByte('\n')
	}
	return buf.String()
}

// TestTimelineQuickMatchesGolden pins the timeline experiment — window
// totals, every anomaly row (rule, window, magnitude, linked traces) —
// to the checked-in golden, at -parallel 1 and 8. This is the
// acceptance gate that the anomaly detector keeps flagging the known
// fan-out and burst pathologies, byte-for-byte, at any worker count.
func TestTimelineQuickMatchesGolden(t *testing.T) {
	skipUnderRace(t)
	want := golden(t, "timeline_quick.txt")
	if got := renderTimeline(t, 1); got != want {
		t.Fatalf("timeline output diverged from the golden (-parallel 1):\n%s", got)
	}
	if got := renderTimeline(t, 8); got != want {
		t.Fatal("timeline output at -parallel 8 diverged from the golden")
	}
}
