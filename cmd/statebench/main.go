// Command statebench regenerates the paper's tables and figures from
// the simulated measurement campaigns.
//
// Usage:
//
//	statebench [flags] [experiment...]
//	statebench trace -impl <style> -workflow <wf> [-runs N] [-o trace.json]
//	statebench chaos -impl <style>|all -workflow <wf> [-seed N] [-faultrate R]
//	statebench traffic [-tenants N] [-rate R] [-duration D] [-process P] [-shards S]
//	statebench graph [-o FILE] <workflow>
//	statebench optimize [-slo D] [-budget USD] [-csv FILE]
//	statebench providers
//
// With no arguments every experiment runs in paper order. Experiments:
// table1, table2, fig6, fig7, fig8, fig9, fig10, fig11, fig12, fig13,
// fig14, fig15, table3.
//
// The providers subcommand lists every registered cloud provider and
// its implementation styles. Providers self-register from package init,
// so the listing (and the -impl choices of trace/chaos) grows when a
// new provider package is linked in, with no CLI changes.
//
// The trace subcommand runs one workflow/style campaign with the span
// tracer enabled and writes a Chrome trace-event file loadable in
// chrome://tracing or Perfetto.
//
// The chaos subcommand runs one workflow under a deterministic injected
// fault schedule and prints the reliability table (success rate,
// retries, redeliveries, dead letters, tail/cost inflation).
//
// The graph subcommand renders a workflow's provider-neutral IR as
// Graphviz DOT plus a one-line-per-style lowering summary derived from
// the lowerer registry (compiled program size, provider caps, or the
// reason a style is excluded) and the static payload lint.
//
// The optimize subcommand runs the cross-cloud cost/latency optimizer:
// it sweeps every workload family's configuration space (style ×
// provider × memory tier × fan-out × chunking) on one shared payload
// engine — identical stage computations run once per sweep, and
// configurations that are provably indistinguishable (an unbilled
// memory tier, a fan-out a monolith ignores) share one measurement —
// and prints each family's Pareto frontier over (p50 latency, mean
// cost) with cheapest-under-SLO and fastest-under-budget picks. The
// full candidate record, including the dominated set and every
// statically excluded configuration with its reason, goes to -csv.
//
// The traffic subcommand drives open-loop arrival streams (Poisson,
// bursty MMPP, diurnal) over a large tenant population — a million by
// default — against every registered provider's serving model, and
// reports tail latency, cold-start rate, scale-controller backlog, and
// per-tenant cost. Rows are byte-identical at any -shards value.
//
// Flags:
//
//	-quick        use the fast smoke-scale campaign sizes
//	-csv          emit CSV instead of text tables
//	-iters N      override the per-style iteration count
//	-seed N       simulation master seed
//	-parallel N   campaign worker pool size (0 = GOMAXPROCS, 1 = sequential)
//	-metrics FILE collect runtime metrics, write Prometheus text to FILE
//	-timeline FILE collect windowed telemetry, write per-window CSV
//	              (JSON when FILE ends in .json) to FILE
//	-live ADDR    serve live telemetry (Prometheus /metrics, per-window
//	              /timeseries.csv, /progress) on ADDR while the run is up
//	-pprof MODE   write a runtime profile: cpu|heap|mutex
//	-payload-cache on|off  memoize workload payload computation (default on)
//	-list         list experiment IDs and exit
//
// Campaign seeds derive from -seed alone, so -parallel changes
// wall-clock time only: the rendered output is byte-identical at any
// worker count — including the contents of -metrics FILE and
// -timeline FILE, whose aggregation is commutative.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"statebench/internal/experiments"
	"statebench/internal/obs/metrics"
	"statebench/internal/obs/tseries"
	"statebench/internal/payload"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "trace" {
		runTrace(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "chaos" {
		runChaos(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "providers" {
		runProviders()
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "traffic" {
		runTraffic(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "graph" {
		runGraph(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "optimize" {
		runOptimize(os.Args[2:])
		return
	}

	quick := flag.Bool("quick", false, "use fast smoke-scale campaign sizes")
	iters := flag.Int("iters", 0, "override per-style iteration count")
	seed := flag.Uint64("seed", 42, "simulation master seed")
	workers := flag.Int("parallel", 0, "campaign worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	csv := flag.Bool("csv", false, "emit CSV instead of text tables")
	metricsOut := flag.String("metrics", "", "collect runtime metrics and write Prometheus text to this file")
	timelineOut := flag.String("timeline", "", "collect windowed telemetry and write per-window CSV (JSON when the name ends in .json) to this file")
	liveAddr := flag.String("live", "", "serve live telemetry on this address while the run is up (e.g. :8080 or 127.0.0.1:0)")
	pprofMode := flag.String("pprof", "", "write a runtime profile: cpu|heap|mutex (statebench.<mode>.pprof)")
	payloadCache := flag.String("payload-cache", "on", "memoize workload payload computation: on|off (off recomputes every payload; output is byte-identical either way)")
	flag.Parse()

	if *list {
		for _, r := range experiments.RegistryWithAblations() {
			fmt.Println(r.ID)
		}
		return
	}

	opts := experiments.DefaultOptions()
	if *quick {
		opts = experiments.QuickOptions()
	}
	if *iters > 0 {
		opts.Iters = *iters
	}
	opts.Seed = *seed
	opts.Workers = *workers
	switch *payloadCache {
	case "on":
		// Leave opts.PayloadCache nil: RunAll creates a fresh engine per
		// invocation, so the run is cache-cold but shares computations
		// across its impls, providers, and repetitions.
	case "off":
		opts.PayloadCache = payload.Disabled()
	default:
		fmt.Fprintf(os.Stderr, "statebench: -payload-cache must be on or off, got %q\n", *payloadCache)
		os.Exit(2)
	}
	var reg *metrics.Registry
	if *metricsOut != "" {
		reg = metrics.NewRegistry()
		opts.Metrics = reg
	}

	stopProfile, err := startProfile(*pprofMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "statebench:", err)
		os.Exit(2)
	}
	defer stopProfile()

	var tlc *tseries.Collector
	if *timelineOut != "" || *liveAddr != "" {
		tlc = tseries.NewCollector(0)
		opts.Timeline = tlc
	}
	if *liveAddr != "" {
		live, err := tseries.ServeLive(*liveAddr, tlc.Snapshot)
		if err != nil {
			fmt.Fprintln(os.Stderr, "statebench:", err)
			os.Exit(1)
		}
		defer live.Close()
		fmt.Fprintf(os.Stderr, "statebench: live telemetry on http://%s/\n", live.Addr())
	}

	flushMetrics := func() {
		if reg != nil {
			if err := writeMetricsFile(*metricsOut, reg); err != nil {
				fmt.Fprintln(os.Stderr, "statebench:", err)
				os.Exit(1)
			}
		}
		if tlc != nil && *timelineOut != "" {
			if err := writeTimelineFile(*timelineOut, tlc); err != nil {
				fmt.Fprintln(os.Stderr, "statebench:", err)
				os.Exit(1)
			}
		}
	}

	ids := flag.Args()
	if len(ids) == 0 {
		reports, err := experiments.All(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "statebench:", err)
			os.Exit(1)
		}
		for _, r := range reports {
			if *csv {
				fmt.Print(r.CSV())
			} else {
				fmt.Println(r)
			}
		}
		flushMetrics()
		return
	}
	// Resolve every requested ID first, then fan the selected
	// experiments out across the pool like a full run.
	runners := make([]experiments.Runner, 0, len(ids))
	for _, id := range ids {
		runner, err := experiments.Find(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "statebench:", err)
			os.Exit(1)
		}
		runners = append(runners, runner)
	}
	reports, err := experiments.RunAll(runners, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "statebench:", err)
		os.Exit(1)
	}
	for _, r := range reports {
		if *csv {
			fmt.Print(r.CSV())
		} else {
			fmt.Println(r)
		}
	}
	flushMetrics()
}

// writeTimelineFile renders the collector's merged per-window series,
// as CSV by default or JSON when the file name says so.
func writeTimelineFile(path string, c *tseries.Collector) error {
	s, _ := c.Snapshot()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := s.WriteCSV
	if strings.HasSuffix(path, ".json") {
		werr = s.WriteJSON
	}
	if err := werr(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
