// Command statebench regenerates the paper's tables and figures from
// the simulated measurement campaigns.
//
// Usage:
//
//	statebench [flags] [experiment...]
//
// With no arguments every experiment runs in paper order. Experiments:
// table1, table2, fig6, fig7, fig8, fig9, fig10, fig11, fig12, fig13,
// fig14, fig15, table3.
//
// Flags:
//
//	-quick     use the fast smoke-scale campaign sizes
//	-csv       emit CSV instead of text tables
//	-iters N   override the per-style iteration count
//	-seed N    simulation master seed
//	-list      list experiment IDs and exit
package main

import (
	"flag"
	"fmt"
	"os"

	"statebench/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "use fast smoke-scale campaign sizes")
	iters := flag.Int("iters", 0, "override per-style iteration count")
	seed := flag.Uint64("seed", 42, "simulation master seed")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	csv := flag.Bool("csv", false, "emit CSV instead of text tables")
	flag.Parse()

	if *list {
		for _, r := range experiments.RegistryWithAblations() {
			fmt.Println(r.ID)
		}
		return
	}

	opts := experiments.DefaultOptions()
	if *quick {
		opts = experiments.QuickOptions()
	}
	if *iters > 0 {
		opts.Iters = *iters
	}
	opts.Seed = *seed

	ids := flag.Args()
	if len(ids) == 0 {
		reports, err := experiments.All(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "statebench:", err)
			os.Exit(1)
		}
		for _, r := range reports {
			if *csv {
				fmt.Print(r.CSV())
			} else {
				fmt.Println(r)
			}
		}
		return
	}
	for _, id := range ids {
		runner, err := experiments.Find(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "statebench:", err)
			os.Exit(1)
		}
		reports, err := runner.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "statebench: %s: %v\n", id, err)
			os.Exit(1)
		}
		for _, r := range reports {
			if *csv {
				fmt.Print(r.CSV())
			} else {
				fmt.Println(r)
			}
		}
	}
}
