//go:build race

package main

// raceEnabled reports whether the race detector is compiled in; the
// golden replays skip under it (10-20x execution overhead on full
// quick-scale campaigns; tier2 covers determinism under race).
const raceEnabled = true
