package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// startProfile begins the profile selected by -pprof and returns the
// function that finalizes it at exit. Modes:
//
//	cpu    statebench.cpu.pprof, sampled for the whole run
//	heap   statebench.heap.pprof, an end-of-run allocation snapshot
//	mutex  statebench.mutex.pprof, contention sampled at 1/5
//
// The empty mode is the disabled fast path: no file, no sampling, and
// the returned stop is a no-op.
func startProfile(mode string) (stop func(), err error) {
	noop := func() {}
	switch mode {
	case "":
		return noop, nil
	case "cpu":
		f, err := os.Create("statebench.cpu.pprof")
		if err != nil {
			return noop, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return noop, err
		}
		return func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Fprintln(os.Stderr, "statebench: wrote statebench.cpu.pprof")
		}, nil
	case "heap":
		return func() {
			writeProfile("heap", "statebench.heap.pprof")
		}, nil
	case "mutex":
		runtime.SetMutexProfileFraction(5)
		return func() {
			writeProfile("mutex", "statebench.mutex.pprof")
			runtime.SetMutexProfileFraction(0)
		}, nil
	default:
		return noop, fmt.Errorf("-pprof must be cpu, heap, or mutex, got %q", mode)
	}
}

// writeProfile snapshots a named runtime profile to path.
func writeProfile(name, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "statebench:", err)
		return
	}
	defer f.Close()
	if name == "heap" {
		runtime.GC() // live objects, not a stale heap
	}
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintln(os.Stderr, "statebench:", err)
		return
	}
	fmt.Fprintf(os.Stderr, "statebench: wrote %s\n", path)
}
