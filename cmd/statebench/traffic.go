package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"statebench/internal/core"
	"statebench/internal/experiments"
	"statebench/internal/obs"
	"statebench/internal/obs/tseries"
	"statebench/internal/sim"
	"statebench/internal/traffic"
)

// runTraffic implements "statebench traffic": open-loop arrival
// streams over a large tenant population against every registered
// provider with a traffic profile, reporting tail latency, cold-start
// rate, scale-controller backlog, and per-tenant cost. Unlike the
// fixed-scale `traffic` experiment ID, this subcommand exposes the
// engine's knobs (population, rate, process shape, shard count) — the
// million-tenant runs in EXPERIMENTS.md go through here. Output rows
// are byte-identical at any -shards value; only wall-clock changes.
func runTraffic(args []string) {
	fs := flag.NewFlagSet("traffic", flag.ExitOnError)
	tenants := fs.Int("tenants", 1_000_000, "simulated tenant population")
	window := fs.Duration("duration", 2*time.Minute, "arrival window (virtual time); the run then drains")
	rate := fs.Float64("rate", 50_000, "mean aggregate arrival rate (req/s)")
	process := fs.String("process", "poisson", "arrival process: poisson|bursty|diurnal|all")
	providerFlag := fs.String("provider", "all", "provider name or all")
	shards := fs.Int("shards", 8, "kernel event partitions (results identical at any value)")
	seed := fs.Uint64("seed", 42, "simulation seed")
	codeMB := fs.Float64("codesize", 64, "deployment package size (MB), paid on per-request cold starts")
	csv := fs.Bool("csv", false, "emit CSV instead of a text table")
	timelineOut := fs.String("timeline", "", "record windowed telemetry and write per-window CSV (JSON when the name ends in .json) to this file")
	liveAddr := fs.String("live", "", "serve live telemetry on this address while the run is up; snapshots publish at every window boundary")
	_ = fs.Parse(args)

	// Windowed telemetry: each run records into a private series; the
	// live endpoint sees finished runs plus a rolling snapshot of the
	// current one, published at window boundaries by the engine's
	// OnWindow hook (outside the event order, so results are unchanged).
	var tlc *tseries.Collector
	var done *tseries.Series
	if *timelineOut != "" || *liveAddr != "" {
		tlc = tseries.NewCollector(0)
		done = tseries.New(tlc.Interval())
	}
	if *liveAddr != "" {
		live, err := tseries.ServeLive(*liveAddr, tlc.Snapshot)
		if err != nil {
			fmt.Fprintln(os.Stderr, "statebench traffic:", err)
			os.Exit(1)
		}
		defer live.Close()
		fmt.Fprintf(os.Stderr, "statebench traffic: live telemetry on http://%s/\n", live.Addr())
	}

	procs := map[string]func() traffic.ArrivalProcess{
		"poisson": func() traffic.ArrivalProcess { return traffic.Poisson{Rate: *rate} },
		"bursty": func() traffic.ArrivalProcess {
			// Dwell-weighted mean = (rate/2·20s + 3·rate·5s)/25s = rate.
			return &traffic.MMPP2{
				BaseRate: *rate / 2, BurstRate: 3 * *rate,
				BaseDwell: 20 * time.Second, BurstDwell: 5 * time.Second,
			}
		},
		"diurnal": func() traffic.ArrivalProcess {
			return traffic.Diurnal{Base: *rate, Amp: 0.6, Period: *window}
		},
	}
	procNames := []string{"poisson", "bursty", "diurnal"}
	if *process != "all" {
		if _, ok := procs[*process]; !ok {
			fmt.Fprintf(os.Stderr, "statebench traffic: unknown process %q (want poisson|bursty|diurnal|all)\n", *process)
			os.Exit(1)
		}
		procNames = []string{*process}
	}

	var specs []*core.ProviderSpec
	for _, spec := range core.Providers() {
		if spec.Traffic == nil {
			continue
		}
		if *providerFlag != "all" && !strings.EqualFold(spec.Name, *providerFlag) {
			continue
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		fmt.Fprintf(os.Stderr, "statebench traffic: no registered provider matches %q (see `statebench providers`)\n", *providerFlag)
		os.Exit(1)
	}

	r := &experiments.Report{
		ID: "traffic",
		Title: fmt.Sprintf("Open-loop traffic: %d tenants × %.0f req/s over %v, %d shards, seed %d",
			*tenants, *rate, *window, *shards, *seed),
	}
	r.Table.Header = []string{
		"provider", "serving", "process", "arrivals", "events", "Mev/s",
		"cold", "p50", "p99", "p99.9", "sched p99", "peak backlog",
		"tenant cost p99", "total cost",
	}
	var totalEvents uint64
	campaign := 0
	for _, spec := range specs {
		for _, name := range procNames {
			cfg := traffic.Config{
				Tenants:    *tenants,
				Duration:   *window,
				Process:    procs[name](),
				Profile:    spec.Traffic(),
				Book:       spec.DefaultBook(),
				CodeSizeMB: *codeMB,
				Shards:     *shards,
				Seed:       *seed + uint64(campaign),
			}
			if tlc != nil {
				tl := tseries.New(tlc.Interval())
				cfg.Timeline = tl
				runPhase := fmt.Sprintf("%s/%s", spec.Name, name)
				cfg.OnWindow = func(boundary sim.Time) {
					snap := done.Clone()
					snap.Merge(tl)
					tlc.Replace(snap)
					arr, comp, _, _ := snap.Totals()
					tlc.SetProgress(tseries.Progress{
						Phase:       runPhase,
						Done:        campaign,
						Total:       len(specs) * len(procNames),
						VirtualTime: boundary,
						VirtualEnd:  *window,
						Arrivals:    arr,
						Completions: comp,
					})
				}
			}
			campaign++
			start := time.Now()
			res := traffic.Run(cfg)
			wall := time.Since(start)
			if tlc != nil {
				done.Merge(cfg.Timeline)
				tlc.Replace(done.Clone())
			}
			res.Cloud = spec.Name
			totalEvents += res.Events
			mevs := float64(res.Events) / 1e6 / wall.Seconds()
			r.Table.AddRow(
				spec.Name,
				res.Style.String(),
				res.Process,
				fmt.Sprintf("%d", res.Arrivals),
				fmt.Sprintf("%d", res.Events),
				fmt.Sprintf("%.1f", mevs),
				fmt.Sprintf("%.1f%%", 100*res.ColdRate()),
				obs.FormatDuration(res.E2E.Median()),
				obs.FormatDuration(res.E2E.P99()),
				obs.FormatDuration(res.E2E.P999()),
				obs.FormatDuration(res.QueueWait.P999()),
				fmt.Sprintf("%d", res.PeakBacklog),
				fmt.Sprintf("$%.6f", float64(res.TenantCost.P99())/1e9),
				fmt.Sprintf("$%.2f", res.TotalBill.Total()),
			)
		}
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("%d kernel events total; Mev/s is wall-clock millions of events per second per run", totalEvents))
	if rss, ok := peakRSSMB(); ok {
		r.Notes = append(r.Notes, fmt.Sprintf("peak RSS %d MB", rss))
	}
	if *csv {
		fmt.Print(r.CSV())
	} else {
		fmt.Println(r)
	}
	if tlc != nil && *timelineOut != "" {
		if err := writeTimelineFile(*timelineOut, tlc); err != nil {
			fmt.Fprintln(os.Stderr, "statebench traffic:", err)
			os.Exit(1)
		}
	}
}

// peakRSSMB reads the process high-water resident set from
// /proc/self/status (Linux only; absence just drops the note).
func peakRSSMB() (int64, bool) {
	b, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, false
	}
	for _, line := range strings.Split(string(b), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return 0, false
		}
		kb, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			return 0, false
		}
		return kb / 1024, true
	}
	return 0, false
}
