package main

import (
	"bytes"
	"testing"

	"statebench/internal/experiments"
	"statebench/internal/optimizer"
	"statebench/internal/payload"
)

// optimizeOutputs runs the optimize sweep at quick scale and renders
// both artifacts the subcommand can emit: the report (frontier tables,
// picks, notes) and the full candidate CSV (frontier, dominated set,
// exclusions with reasons).
func optimizeOutputs(t *testing.T, workers int) (report, csv string) {
	t.Helper()
	o := quickOpts(workers)
	// A fresh engine per run, like the subcommand: without it the
	// second run would resolve every campaign from the first run's
	// memo on the process-global engine, proving nothing about
	// worker-count invariance.
	o.PayloadCache = payload.NewEngine()
	results, err := experiments.OptimizeResults(o)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := optimizer.WriteCSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	return experiments.OptimizeReport(results, 0, 0).String(), buf.String()
}

// TestOptimizeQuickMatchesGolden pins the frontier tables, the SLO and
// budget picks, the exclusion notes, and the complete candidate record
// for all five workload families at quick scale against checked-in
// goldens — and demands the same bytes at -parallel 1 and 8. Shared
// payload compute, config-level delta evaluation, and candidate
// scheduling must change wall-clock time only, never a byte of output.
func TestOptimizeQuickMatchesGolden(t *testing.T) {
	skipUnderRace(t)
	wantReport := golden(t, "optimize_quick.txt")
	wantCSV := golden(t, "optimize_quick.csv")
	for _, workers := range []int{1, 8} {
		report, csv := optimizeOutputs(t, workers)
		if report != wantReport {
			t.Fatalf("optimize report diverged from the golden at -parallel %d", workers)
		}
		if csv != wantCSV {
			t.Fatalf("optimize candidate CSV diverged from the golden at -parallel %d", workers)
		}
	}
}
