package main

import (
	"fmt"
	"strings"

	"statebench/internal/core"
)

// styleList renders every registered implementation style for flag help
// text, so new providers surface in the CLI without edits here.
func styleList() string {
	impls := core.RegisteredImpls()
	names := make([]string, len(impls))
	for i, impl := range impls {
		names[i] = string(impl)
	}
	return strings.Join(names, "|")
}

// runProviders implements "statebench providers": list every
// registered provider and its implementation styles. The listing is
// registry-driven — a provider package that calls core.RegisterProvider
// from init appears here with no CLI change.
func runProviders() {
	for _, spec := range core.Providers() {
		fmt.Printf("%s (kind %d)\n", spec.Name, spec.Kind)
		for _, st := range spec.Styles {
			stateful := "stateless"
			if st.Stateful {
				stateful = "stateful"
			}
			fmt.Printf("  %-10s %-9s %s\n", st.Impl, stateful, st.Description)
		}
	}
}
