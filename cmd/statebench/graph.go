package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"statebench/internal/core"
	"statebench/internal/flow"
)

// runGraph implements "statebench graph <workload>": render the
// workload's provider-neutral IR as Graphviz DOT, then one line per
// registered style summarizing how (or why not) the IR lowers to it,
// followed by the static payload lint. The style list comes from the
// lowerer registry, so a provider added later shows up with no edit
// here.
//
// The DOT goes to -o (stdout by default); the summary goes to stdout
// when -o is a file and to stderr otherwise, so `statebench graph X |
// dot -Tsvg` stays valid.
func runGraph(args []string) {
	fs := flag.NewFlagSet("graph", flag.ExitOnError)
	out := fs.String("o", "-", "DOT output file (- = stdout)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: statebench graph [-o FILE] <workload>\nworkloads: %s\n", traceWorkflowNames())
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}
	build, ok := traceWorkflows[fs.Arg(0)]
	if !ok {
		fmt.Fprintf(os.Stderr, "statebench graph: unknown workload %q (want %s)\n", fs.Arg(0), traceWorkflowNames())
		os.Exit(1)
	}
	fd, ok := build().(interface {
		FlowDef() (*flow.Definition, error)
	})
	if !ok {
		fmt.Fprintf(os.Stderr, "statebench graph: workload %q exposes no flow definition\n", fs.Arg(0))
		os.Exit(1)
	}
	def, err := fd.FlowDef()
	if err != nil {
		fmt.Fprintln(os.Stderr, "statebench graph:", err)
		os.Exit(1)
	}

	dot := flow.DOT(def)
	summary := os.Stdout
	if *out == "-" {
		fmt.Print(dot)
		summary = os.Stderr
	} else {
		if err := os.WriteFile(*out, []byte(dot), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "statebench graph:", err)
			os.Exit(1)
		}
		fmt.Fprintf(summary, "wrote %s\n", *out)
	}
	writeLoweringSummary(summary, def)
}

// writeLoweringSummary prints one line per registered style: its graph
// class, the provider caps it enforces, and either the size of the
// deterministic compiled program or the reason the style is excluded.
func writeLoweringSummary(w io.Writer, def *flow.Definition) {
	fmt.Fprintf(w, "lowering %s:\n", def.Name)
	for _, impl := range core.RegisteredImpls() {
		l, ok := flow.LowererFor(impl)
		if !ok {
			fmt.Fprintf(w, "  %-12s no lowerer registered\n", impl)
			continue
		}
		class := string(l.Class())
		if v := l.Variant(); v != "" {
			class += "/" + v
		}
		line := fmt.Sprintf("  %-12s %-13s caps[%s]", impl, class, capsLabel(l.Caps()))
		switch {
		case flow.Supports(def, impl):
			prog, err := l.Program(def)
			if err != nil {
				fmt.Fprintf(w, "%s program error: %v\n", line, err)
				continue
			}
			fmt.Fprintf(w, "%s program %d B\n", line, len(prog))
		default:
			fmt.Fprintf(w, "%s excluded (%s)\n", line, flow.ExcludeReason(def, impl))
		}
	}
	fmt.Fprint(w, "payload lint:\n")
	for _, fl := range strings.Split(strings.TrimSuffix(flow.LintReport(def), "\n"), "\n") {
		fmt.Fprintf(w, "  %s\n", fl)
	}
}

func capsLabel(c flow.Caps) string {
	payload := "payload -"
	if c.PayloadBytes > 0 {
		payload = fmt.Sprintf("payload %dKB", c.PayloadBytes/1024)
	}
	task := "task -"
	if c.MaxTaskSeconds > 0 {
		task = fmt.Sprintf("task %gs", c.MaxTaskSeconds)
	}
	return payload + ", " + task
}
