package main

import (
	"flag"
	"fmt"
	"os"

	"statebench/internal/experiments"
	"statebench/internal/obs/metrics"
	"statebench/internal/optimizer"
	"statebench/internal/payload"
)

// runOptimize implements "statebench optimize": sweep every workload
// family's configuration space (style × provider × memory × fan-out ×
// chunking) on one shared payload engine, and print each family's
// Pareto frontier with cheapest-under-SLO and fastest-under-budget
// picks. -csv FILE additionally writes the complete candidate record —
// frontier, dominated set, and statically excluded configurations with
// their reasons — for plotting pipelines. Output is byte-identical at
// any -parallel setting.
func runOptimize(args []string) {
	fs := flag.NewFlagSet("optimize", flag.ExitOnError)
	quick := fs.Bool("quick", false, "use fast smoke-scale campaign sizes")
	iters := fs.Int("iters", 0, "override per-candidate iteration count")
	seed := fs.Uint64("seed", 42, "simulation master seed")
	workers := fs.Int("parallel", 0, "candidate worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	slo := fs.Duration("slo", 0, "latency SLO for the cheapest-config pick (0 = each workload's median p50)")
	budget := fs.Float64("budget", 0, "per-run cost budget in USD for the fastest-config pick (0 = each workload's median cost)")
	csvOut := fs.String("csv", "", "write the full candidate record (frontier, dominated, excluded) as CSV to this file")
	metricsOut := fs.String("metrics", "", "collect runtime metrics and write Prometheus text to this file")
	_ = fs.Parse(args)

	o := experiments.DefaultOptions()
	if *quick {
		o = experiments.QuickOptions()
	}
	if *iters > 0 {
		o.Iters = *iters
	}
	o.Seed = *seed
	o.Workers = *workers
	// One engine for the whole sweep: cross-candidate payload reuse,
	// config-level delta evaluation, and — mirroring RunAll — a single
	// deterministic emission into the metrics registry afterwards.
	o.PayloadCache = payload.NewEngine()
	var reg *metrics.Registry
	if *metricsOut != "" {
		reg = metrics.NewRegistry()
		o.Metrics = reg
	}

	if *budget < 0 {
		fmt.Fprintln(os.Stderr, "statebench optimize: -budget must be >= 0")
		os.Exit(1)
	}
	if *slo < 0 {
		fmt.Fprintln(os.Stderr, "statebench optimize: -slo must be >= 0")
		os.Exit(1)
	}

	results, err := experiments.OptimizeResults(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "statebench optimize:", err)
		os.Exit(1)
	}
	r := experiments.OptimizeReport(results, *slo, *budget)
	fmt.Print(r.String())

	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "statebench optimize:", err)
			os.Exit(1)
		}
		if err := optimizer.WriteCSV(f, results); err != nil {
			fmt.Fprintln(os.Stderr, "statebench optimize:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "statebench optimize:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "statebench optimize: wrote %s\n", *csvOut)
	}
	if reg != nil {
		o.PayloadCache.EmitTo(reg)
		if err := writeMetricsFile(*metricsOut, reg); err != nil {
			fmt.Fprintln(os.Stderr, "statebench optimize:", err)
			os.Exit(1)
		}
	}
}
