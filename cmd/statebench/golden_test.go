package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"statebench/internal/experiments"
	"statebench/internal/obs/metrics"
	"statebench/internal/payload"
)

// golden reads a checked-in reference output captured from the
// pre-provider-registry tree. These files pin two invariants at once:
// the refactor (and any provider registered since) must not move a
// byte of the paper output, and -parallel must change wall-clock time
// only.
func golden(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "..", "testdata", "golden", name))
	if err != nil {
		t.Fatalf("missing golden file (regenerate with scripts in testdata/golden): %v", err)
	}
	return string(b)
}

// render reproduces the default command's output path: every paper
// experiment in order, text tables, one blank line between reports.
func render(t *testing.T, opts experiments.Options) string {
	t.Helper()
	reports, err := experiments.All(opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, r := range reports {
		buf.WriteString(r.String())
		buf.WriteByte('\n')
	}
	return buf.String()
}

func quickOpts(workers int) experiments.Options {
	o := experiments.QuickOptions()
	o.Seed = 42
	o.Workers = workers
	return o
}

// skipUnderRace keeps the golden replays out of -race runs: each one
// is a full quick-scale campaign suite (~10-20x slower under the
// detector), and tier2's determinism tests already cover racy
// interleavings. The byte-level golden pin runs in plain tier1.
func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("golden replay skipped under -race; run plain `go test` for the byte-level pin")
	}
}

func TestQuickOutputMatchesGolden(t *testing.T) {
	skipUnderRace(t)
	want := golden(t, "quick_p1.txt")
	if got := render(t, quickOpts(1)); got != want {
		t.Fatal("quick-scale output diverged from the pre-refactor golden (-parallel 1)")
	}
}

func TestQuickOutputParallelInvariant(t *testing.T) {
	skipUnderRace(t)
	want := golden(t, "quick_p8.txt")
	if got := render(t, quickOpts(8)); got != want {
		t.Fatal("quick-scale output at -parallel 8 diverged from the golden")
	}
}

func TestQuickMetricsMatchGolden(t *testing.T) {
	skipUnderRace(t)
	want := golden(t, "quick_metrics.prom")
	opts := quickOpts(1)
	reg := metrics.NewRegistry()
	opts.Metrics = reg
	if _, err := experiments.All(opts); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != want {
		t.Fatal("metrics exposition diverged from the golden")
	}
}

// TestQuickOutputCacheOffMatchesGolden replays the quick suite with the
// payload cache disabled and demands the same bytes as the cached run's
// goldens: the cache may change cost, never content. Gated behind
// STATEBENCH_CACHE_OFF=1 (`make golden-cache-off`, run by tier1.5) so
// plain tier1 does not pay for the recompute-everything pass twice.
func TestQuickOutputCacheOffMatchesGolden(t *testing.T) {
	if os.Getenv("STATEBENCH_CACHE_OFF") == "" {
		t.Skip("set STATEBENCH_CACHE_OFF=1 (or run `make golden-cache-off`) for the cache-off cross-check")
	}
	skipUnderRace(t)
	for _, workers := range []int{1, 8} {
		o := quickOpts(workers)
		o.PayloadCache = payload.Disabled()
		name := "quick_p1.txt"
		if workers == 8 {
			name = "quick_p8.txt"
		}
		if got := render(t, o); got != golden(t, name) {
			t.Fatalf("cache-off output diverged from the golden at -parallel %d", workers)
		}
	}
}

// TestDefaultOutputMatchesGolden replays the full paper-scale run; it
// is the strongest determinism check but takes minutes (and far longer
// under -race), so it only runs when explicitly requested via
// STATEBENCH_GOLDEN_FULL=1 — `make golden` does this. The quick-scale
// goldens above exercise the same code paths on every test run.
func TestDefaultOutputMatchesGolden(t *testing.T) {
	if os.Getenv("STATEBENCH_GOLDEN_FULL") == "" {
		t.Skip("set STATEBENCH_GOLDEN_FULL=1 (or run `make golden`) for the paper-scale replay")
	}
	want := golden(t, "default_p8.txt")
	o := experiments.DefaultOptions()
	o.Seed = 42
	o.Workers = 8
	if got := render(t, o); got != want {
		t.Fatal("default-scale output diverged from the pre-refactor golden")
	}
}
