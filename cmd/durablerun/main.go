// Command durablerun demonstrates the simulated Azure Durable Functions
// runtime: it deploys a fan-out/fan-in orchestration with a counter
// entity, runs it, and prints the latency metrics and billed storage
// transactions — including the replay episodes that make durable
// orchestrations cost what they cost.
//
// Usage:
//
//	durablerun [-workers 8] [-busy 500ms] [-seed 1]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"statebench/internal/azure/durable"
	"statebench/internal/azure/functions"
	"statebench/internal/platform"
	"statebench/internal/sim"
)

func main() {
	workers := flag.Int("workers", 8, "parallel activities to fan out")
	busy := flag.Duration("busy", 500*time.Millisecond, "simulated compute per activity")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	k := sim.NewKernel(*seed)
	host := functions.NewHost(k, "demo", platform.DefaultAzure())
	hub := durable.NewHub(k, host, "demo")
	client := durable.NewClient(hub)

	if err := hub.RegisterActivity("work", 256, func(ctx *functions.Context, input []byte) ([]byte, error) {
		ctx.Busy(*busy)
		var n int
		if err := json.Unmarshal(input, &n); err != nil {
			return nil, err
		}
		return json.Marshal(n * n)
	}); err != nil {
		fatal(err)
	}

	if err := hub.RegisterEntity("Sum", 128, func(ctx *durable.EntityContext, op string, input []byte) ([]byte, error) {
		var total int
		if ctx.HasState() {
			if err := json.Unmarshal(ctx.State(), &total); err != nil {
				return nil, err
			}
		}
		switch op {
		case "add":
			var v int
			if err := json.Unmarshal(input, &v); err != nil {
				return nil, err
			}
			total += v
			s, _ := json.Marshal(total)
			ctx.SetState(s)
			return nil, nil
		case "get":
			return json.Marshal(total)
		}
		return nil, fmt.Errorf("unknown op %q", op)
	}); err != nil {
		fatal(err)
	}

	n := *workers
	if err := hub.RegisterOrchestrator("fanout", 128, func(ctx *durable.OrchestrationContext, input []byte) ([]byte, error) {
		tasks := make([]*durable.Task, n)
		for i := 0; i < n; i++ {
			in, _ := json.Marshal(i + 1)
			tasks[i] = ctx.CallActivity("work", in)
		}
		outs, err := ctx.WaitAll(tasks...)
		if err != nil {
			return nil, err
		}
		sum := durable.EntityID{Name: "Sum", Key: "total"}
		for _, o := range outs {
			if _, err := ctx.CallEntity(sum, "add", o).Await(); err != nil {
				return nil, err
			}
		}
		return ctx.CallEntity(sum, "get", nil).Await()
	}); err != nil {
		fatal(err)
	}

	var out []byte
	var hd *durable.Handle
	var runErr error
	k.Spawn("client", func(p *sim.Proc) {
		out, hd, runErr = client.Run(p, "fanout", nil)
		host.Stop()
	})
	k.Run()
	if runErr != nil {
		fatal(runErr)
	}

	fmt.Printf("result (sum of squares 1..%d): %s\n", n, out)
	fmt.Printf("cold start (Pending->Running): %v\n", hd.ColdStart())
	fmt.Printf("end-to-end (Running->Completed): %v\n", hd.E2E())
	fmt.Printf("orchestrator episodes (replays): %d\n", hub.EpisodeCount)
	fmt.Printf("history events re-processed:     %d\n", hub.ReplayEvents)
	fmt.Printf("billed storage transactions:     %d\n", hub.StorageTransactions())
	fmt.Printf("billed GB-s across functions:    %.4f\n", host.TotalMeter().BilledGBs)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "durablerun:", err)
	os.Exit(1)
}
