// Command sfnrun executes an Amazon-States-Language state machine
// definition (JSON) against the simulated Step Functions service, with
// stub Lambda functions that echo their input after a configurable
// busy time. It demonstrates the ASL engine in isolation.
//
// Usage:
//
//	sfnrun -definition machine.json [-input '{"n":1}'] [-busy 100ms]
//
// Every Task state's Resource is auto-registered as an echo function.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"statebench/internal/aws/lambda"
	"statebench/internal/aws/sfn"
	"statebench/internal/platform"
	"statebench/internal/sim"
)

func main() {
	defPath := flag.String("definition", "", "path to ASL JSON definition (required)")
	inputJSON := flag.String("input", "{}", "execution input (JSON)")
	busy := flag.Duration("busy", 100*time.Millisecond, "simulated compute per task")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	if *defPath == "" {
		fmt.Fprintln(os.Stderr, "sfnrun: -definition is required")
		os.Exit(2)
	}
	data, err := os.ReadFile(*defPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sfnrun:", err)
		os.Exit(1)
	}
	machine, err := sfn.ParseDefinition(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sfnrun:", err)
		os.Exit(1)
	}
	var input any
	if err := json.Unmarshal([]byte(*inputJSON), &input); err != nil {
		fmt.Fprintln(os.Stderr, "sfnrun: bad -input:", err)
		os.Exit(2)
	}

	k := sim.NewKernel(*seed)
	params := platform.DefaultAWS()
	lsvc := lambda.New(k, params)
	svc := sfn.New(k, params, lsvc)

	// Register an echo function for every Task resource.
	registerTasks(machine, lsvc, *busy)
	if err := svc.CreateStateMachine("main", machine); err != nil {
		fmt.Fprintln(os.Stderr, "sfnrun:", err)
		os.Exit(1)
	}

	var exec *sfn.Execution
	k.Spawn("client", func(p *sim.Proc) {
		exec, err = svc.StartExecution(p, "main", input)
	})
	k.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sfnrun:", err)
		os.Exit(1)
	}
	out, _ := json.MarshalIndent(exec.Output, "", "  ")
	fmt.Printf("status:       %v\n", statusOf(exec))
	fmt.Printf("duration:     %v\n", exec.Duration())
	fmt.Printf("transitions:  %d\n", exec.Transitions)
	fmt.Printf("output:       %s\n", out)
	fmt.Println("history:")
	for _, ev := range exec.History {
		fmt.Printf("  %-12v %-20s %s\n", ev.At, ev.Type, ev.State)
	}
}

func statusOf(e *sfn.Execution) string {
	if e.Err != nil {
		return "FAILED: " + e.Err.Error()
	}
	return "SUCCEEDED"
}

// registerTasks walks the machine and registers an echo Lambda for each
// distinct Task resource.
func registerTasks(m *sfn.StateMachine, lsvc *lambda.Service, busy time.Duration) {
	for _, st := range m.States {
		if st.Type == sfn.TypeTask {
			name := st.Resource
			if _, exists := lsvc.Function(name); !exists {
				lsvc.MustRegister(lambda.Config{
					Name: name, MemoryMB: 512,
					Handler: func(ctx *lambda.Context, payload []byte) ([]byte, error) {
						ctx.Busy(busy)
						return payload, nil
					},
				})
			}
		}
		if st.Iterator != nil {
			registerTasks(st.Iterator, lsvc, busy)
		}
		for _, b := range st.Branches {
			registerTasks(b, lsvc, busy)
		}
	}
}
