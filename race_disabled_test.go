//go:build !race

package statebench_test

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
