// Package statebench's root benchmarks regenerate every table and
// figure of the paper's evaluation. Each benchmark runs the
// corresponding experiment at smoke scale per iteration; run
//
//	go test -bench=. -benchmem
//
// to regenerate all of them, or target one (e.g. -bench=Fig9). The
// reported metrics (ns/op) measure the harness itself; the scientific
// output is printed through -v or cmd/statebench.
package statebench_test

import (
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"statebench/internal/core"
	"statebench/internal/experiments"
	"statebench/internal/obs/tseries"
	"statebench/internal/sim"
	"statebench/internal/traffic"
)

// benchOpts keeps per-iteration work bounded.
func benchOpts() experiments.Options {
	o := experiments.QuickOptions()
	o.Iters = 5
	o.ColdHours = 6
	o.VideoIters = 1
	o.Fig14Target = 500
	return o
}

func runSingle(b *testing.B, fn func(experiments.Options) (*experiments.Report, error)) {
	b.Helper()
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		r, err := fn(o)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Table.Rows) == 0 {
			b.Fatal("empty report")
		}
	}
}

// runAll runs the whole registry with the given worker count; the pair
// below is the sequential-vs-parallel comparison committed to
// BENCH_PR1.json (on a single-CPU machine the two are expected to tie).
func runAll(b *testing.B, workers int) {
	b.Helper()
	o := benchOpts()
	o.Workers = workers
	for i := 0; i < b.N; i++ {
		rs, err := experiments.All(o)
		if err != nil {
			b.Fatal(err)
		}
		if len(rs) == 0 {
			b.Fatal("empty report set")
		}
	}
}

func BenchmarkSequentialAll(b *testing.B) { runAll(b, 1) }
func BenchmarkParallelAll(b *testing.B)   { runAll(b, 0) }

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := experiments.Table1(); len(r.Table.Rows) == 0 {
			b.Fatal("empty report")
		}
	}
}

func BenchmarkTable2(b *testing.B) { runSingle(b, experiments.Table2) }

func BenchmarkFig6(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		rs, err := experiments.Fig6(o)
		if err != nil {
			b.Fatal(err)
		}
		if len(rs) != 4 {
			b.Fatalf("fig6 produced %d reports", len(rs))
		}
	}
}

func BenchmarkFig7(b *testing.B)  { runSingle(b, experiments.Fig7) }
func BenchmarkFig8(b *testing.B)  { runSingle(b, experiments.Fig8) }
func BenchmarkFig9(b *testing.B)  { runSingle(b, experiments.Fig9) }
func BenchmarkFig10(b *testing.B) { runSingle(b, experiments.Fig10) }

func BenchmarkFig11(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		rs, err := experiments.Fig11(o)
		if err != nil {
			b.Fatal(err)
		}
		if len(rs) != 4 {
			b.Fatalf("fig11 produced %d reports", len(rs))
		}
	}
}

func BenchmarkFig12(b *testing.B)  { runSingle(b, experiments.Fig12) }
func BenchmarkFig13(b *testing.B)  { runSingle(b, experiments.Fig13) }
func BenchmarkFig14(b *testing.B)  { runSingle(b, experiments.Fig14) }
func BenchmarkFig15(b *testing.B)  { runSingle(b, experiments.Fig15) }
func BenchmarkTable3(b *testing.B) { runSingle(b, experiments.Table3) }

// kernelShardedBench is the traffic-shaped kernel workload behind the
// BENCH_PR6.json baseline: a large standing population of
// self-rescheduling timer events (every pop and push walks a heap
// holding the full population) plus a same-instant continuation
// cascade per firing (arrival -> record -> dispatch -> complete),
// mirroring the open-loop engine's event mix. Closures are
// preallocated per slot, as the traffic engine's arenas do, so the
// measured cost is the kernel's, not the allocator's. The event order
// — and thus the executed count — is byte-identical at every shard
// count; only the storage layout changes.
func kernelShardedBench(b *testing.B, shards int) {
	const (
		population = 1 << 21 // standing timers
		horizon    = 1500 * time.Millisecond
		meanDelay  = 500 * time.Millisecond
		cascade    = 4 // same-instant events per firing
	)
	var total uint64
	for i := 0; i < b.N; i++ {
		k := sim.NewKernelSharded(42, shards)
		rngs := make([]uint64, population)
		fires := make([]func(), population)
		noop := func() {}
		chain := make([]func(), cascade)
		chain[cascade-1] = noop
		for c := cascade - 2; c >= 0; c-- {
			next := chain[c+1]
			chain[c] = func() { k.At(k.Now(), next) }
		}
		for j := 0; j < population; j++ {
			j := j
			rngs[j] = uint64(j)*0x9e3779b97f4a7c15 + 1
			fires[j] = func() {
				// xorshift64: deterministic per-slot delay chain.
				x := rngs[j]
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				rngs[j] = x
				delay := sim.Time(1 + x%(2*uint64(meanDelay)))
				k.At(k.Now()+delay, fires[j])
				k.At(k.Now(), chain[0])
			}
		}
		for j := 0; j < population; j++ {
			x := rngs[j]
			k.At(sim.Time(1+x%(uint64(meanDelay))), fires[j])
		}
		if end := k.RunUntil(horizon); end <= 0 {
			b.Fatal("kernel did not advance")
		}
		total += k.Executed()
	}
	b.ReportMetric(float64(total)/float64(b.N), "events/op")
}

func BenchmarkKernelSharded1(b *testing.B)  { kernelShardedBench(b, 1) }
func BenchmarkKernelSharded4(b *testing.B)  { kernelShardedBench(b, 4) }
func BenchmarkKernelSharded16(b *testing.B) { kernelShardedBench(b, 16) }

// BenchmarkKernelSameInstantStorm measures the immediate-lane fast
// path against a large standing heap: every event schedules a
// same-instant follow-up (the wake(0)/After(0)/dispatch shape that
// dominates live simulations) while a million future timers sit in
// the shard heaps. On the pre-shard single-heap kernel each of these
// paid two full O(log n) heap walks through the standing set; the
// immediate lane serves them with an append and an index bump.
func BenchmarkKernelSameInstantStorm(b *testing.B) {
	const standing = 1 << 20
	k := sim.NewKernelSharded(42, 16)
	for j := 0; j < standing; j++ {
		k.At(time.Hour+sim.Time(j), func() {})
	}
	n := b.N
	i := 0
	var step func()
	step = func() {
		if i < n {
			i++
			k.At(k.Now(), step)
		}
	}
	k.At(0, step)
	b.ResetTimer()
	k.RunUntil(time.Minute)
	b.ReportMetric(1, "events/op")
}

// trafficMillionTenants is one full open-loop run (arrive, drain,
// bill) at acceptance scale: a one-million-tenant population under a
// Poisson stream, against the first registered provider with a traffic
// profile. timeline toggles windowed telemetry, so the plain/Timeline
// benchmark pair measures the instrumentation's overhead (the disabled
// nil-*Series fast path must stay within noise of the pre-telemetry
// engine).
func trafficMillionTenants(b *testing.B, timeline bool) {
	b.Helper()
	var spec *core.ProviderSpec
	for _, s := range core.Providers() {
		if s.Traffic != nil {
			spec = s
			break
		}
	}
	if spec == nil {
		b.Skip("no provider registers a traffic profile")
	}
	var events, windows uint64
	for i := 0; i < b.N; i++ {
		cfg := traffic.Config{
			Tenants:    1_000_000,
			Duration:   time.Minute,
			Process:    traffic.Poisson{Rate: 100_000},
			Profile:    spec.Traffic(),
			Book:       spec.DefaultBook(),
			CodeSizeMB: 64,
			Shards:     8,
			Seed:       42,
		}
		if timeline {
			cfg.Timeline = tseries.New(0)
		}
		res := traffic.Run(cfg)
		if res.Completions != res.Arrivals {
			b.Fatalf("dropped work: %d arrivals, %d completions", res.Arrivals, res.Completions)
		}
		events += res.Events
		windows += uint64(cfg.Timeline.Len())
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
	if timeline {
		b.ReportMetric(float64(windows)/float64(b.N), "windows/op")
	}
	if rss, ok := peakRSSMB(); ok {
		b.ReportMetric(float64(rss), "peak-RSS-MB")
	}
}

// One iteration is one full run, so size both with -benchtime 1x;
// events/op and peak-RSS-MB land in BENCH_PR*.json via cmd/benchjson.
func BenchmarkTrafficMillionTenants(b *testing.B)         { trafficMillionTenants(b, false) }
func BenchmarkTrafficMillionTenantsTimeline(b *testing.B) { trafficMillionTenants(b, true) }

// peakRSSMB reads the process high-water resident set from
// /proc/self/status (Linux only; absence just skips the metric).
func peakRSSMB() (int64, bool) {
	raw, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, false
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return 0, false
		}
		kb, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			return 0, false
		}
		return kb / 1024, true
	}
	return 0, false
}
