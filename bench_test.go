// Package statebench's root benchmarks regenerate every table and
// figure of the paper's evaluation. Each benchmark runs the
// corresponding experiment at smoke scale per iteration; run
//
//	go test -bench=. -benchmem
//
// to regenerate all of them, or target one (e.g. -bench=Fig9). The
// reported metrics (ns/op) measure the harness itself; the scientific
// output is printed through -v or cmd/statebench.
package statebench_test

import (
	"testing"

	"statebench/internal/experiments"
)

// benchOpts keeps per-iteration work bounded.
func benchOpts() experiments.Options {
	o := experiments.QuickOptions()
	o.Iters = 5
	o.ColdHours = 6
	o.VideoIters = 1
	o.Fig14Target = 500
	return o
}

func runSingle(b *testing.B, fn func(experiments.Options) (*experiments.Report, error)) {
	b.Helper()
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		r, err := fn(o)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Table.Rows) == 0 {
			b.Fatal("empty report")
		}
	}
}

// runAll runs the whole registry with the given worker count; the pair
// below is the sequential-vs-parallel comparison committed to
// BENCH_PR1.json (on a single-CPU machine the two are expected to tie).
func runAll(b *testing.B, workers int) {
	b.Helper()
	o := benchOpts()
	o.Workers = workers
	for i := 0; i < b.N; i++ {
		rs, err := experiments.All(o)
		if err != nil {
			b.Fatal(err)
		}
		if len(rs) == 0 {
			b.Fatal("empty report set")
		}
	}
}

func BenchmarkSequentialAll(b *testing.B) { runAll(b, 1) }
func BenchmarkParallelAll(b *testing.B)   { runAll(b, 0) }

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := experiments.Table1(); len(r.Table.Rows) == 0 {
			b.Fatal("empty report")
		}
	}
}

func BenchmarkTable2(b *testing.B) { runSingle(b, experiments.Table2) }

func BenchmarkFig6(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		rs, err := experiments.Fig6(o)
		if err != nil {
			b.Fatal(err)
		}
		if len(rs) != 4 {
			b.Fatalf("fig6 produced %d reports", len(rs))
		}
	}
}

func BenchmarkFig7(b *testing.B)  { runSingle(b, experiments.Fig7) }
func BenchmarkFig8(b *testing.B)  { runSingle(b, experiments.Fig8) }
func BenchmarkFig9(b *testing.B)  { runSingle(b, experiments.Fig9) }
func BenchmarkFig10(b *testing.B) { runSingle(b, experiments.Fig10) }

func BenchmarkFig11(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		rs, err := experiments.Fig11(o)
		if err != nil {
			b.Fatal(err)
		}
		if len(rs) != 4 {
			b.Fatalf("fig11 produced %d reports", len(rs))
		}
	}
}

func BenchmarkFig12(b *testing.B)  { runSingle(b, experiments.Fig12) }
func BenchmarkFig13(b *testing.B)  { runSingle(b, experiments.Fig13) }
func BenchmarkFig14(b *testing.B)  { runSingle(b, experiments.Fig14) }
func BenchmarkFig15(b *testing.B)  { runSingle(b, experiments.Fig15) }
func BenchmarkTable3(b *testing.B) { runSingle(b, experiments.Table3) }
