# statebench build/test entry points.
#
# tier1    — the gate every change must keep green.
# tier1.5  — adds static analysis and the race detector; the
#            determinism test self-downscales under -race.
# tier2    — tier1.5 plus the observability determinism gate: full
#            campaigns with tracing + metrics on must render and export
#            byte-identically at any worker count.
# bench    — kernel micro-benchmarks plus the sequential-vs-parallel
#            full-suite pair (the numbers behind BENCH_PR1.json and
#            BENCH_PR2.json).

GO ?= go

.PHONY: tier1 tier1.5 tier2 bench bench-kernel bench-all

tier1:
	$(GO) build ./... && $(GO) test ./...

tier1.5:
	$(GO) vet ./... && $(GO) test -race -timeout 20m ./...

tier2:
	$(GO) vet ./...
	$(GO) test -race -timeout 20m ./...
	$(GO) test -run 'TestTracingPreservesDeterminism|TestTracingDoesNotChangeResults' -count=1 . ./internal/core/

bench-kernel:
	$(GO) test -run - -bench 'Kernel|EventThroughput|ProcContextSwitch' -benchmem ./internal/sim/

bench-all:
	$(GO) test -run - -bench 'SequentialAll|ParallelAll' -benchtime 1x -benchmem .

bench: bench-kernel bench-all
