# statebench build/test entry points.
#
# tier1    — the gate every change must keep green: gofmt, vet,
#            build, and the full unit suite (including the quick-scale
#            output goldens).
# tier1.5  — adds static analysis and the race detector; the
#            determinism test self-downscales under -race.
# tier2    — tier1.5 plus the observability/chaos determinism gates,
#            the coverage floor, and short fuzz smoke runs: full
#            campaigns with tracing + metrics + fault injection on must
#            render and export byte-identically at any worker count.
# cover    — library-package coverage with a checked-in floor.
# fuzz     — short native-fuzzing smoke runs for the SFN JSONPath and
#            Choice evaluators.
# bench    — kernel micro-benchmarks, the payload alloc benchmarks,
#            the sequential-vs-parallel full-suite pair, the
#            sharded-kernel/traffic-engine suite, and the optimizer's
#            cold-vs-shared sweep pair (the numbers behind the
#            committed BENCH_*.json baselines).

GO ?= go
GOFMT ?= gofmt

# Minimum total statement coverage (percent) across ./internal/...;
# `make cover` fails below this.
COVER_FLOOR ?= 75

.PHONY: tier1 tier1.5 tier2 cover fuzz bench bench-kernel bench-payload bench-all bench-traffic bench-netherite bench-optimizer fmt-check golden golden-cache-off timeline-determinism netherite-determinism flow-conformance optimizer-determinism

# fmt-check fails (listing the offenders) if any file needs gofmt.
fmt-check:
	@out=$$($(GOFMT) -l .); \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

tier1: fmt-check
	$(GO) vet ./...
	$(GO) build ./... && $(GO) test ./...

# golden replays the full paper-scale campaign and compares it byte for
# byte against testdata/golden (quick-scale goldens run in plain tier1).
golden:
	STATEBENCH_GOLDEN_FULL=1 $(GO) test -run TestDefaultOutputMatchesGolden -count=1 -timeout 30m ./cmd/statebench/

tier1.5:
	$(GO) vet ./... && $(GO) test -race -timeout 20m ./...
	$(MAKE) golden-cache-off

# golden-cache-off replays the quick-scale suite with the payload cache
# disabled (-payload-cache=off path) and compares byte-for-byte against
# the same goldens the cached run must match: memoization can change
# cost, never output.
golden-cache-off:
	STATEBENCH_CACHE_OFF=1 $(GO) test -run TestQuickOutputCacheOffMatchesGolden -count=1 ./cmd/statebench/

tier2:
	$(GO) vet ./...
	$(GO) test -race -timeout 20m ./...
	$(GO) test -run 'TestTracingPreservesDeterminism|TestTracingDoesNotChangeResults|TestChaosPreservesDeterminism' -count=1 . ./internal/core/
	$(MAKE) timeline-determinism
	$(MAKE) netherite-determinism
	$(MAKE) flow-conformance
	$(MAKE) optimizer-determinism
	$(MAKE) fuzz
	$(MAKE) cover

# timeline-determinism is the windowed-telemetry gate: the per-window
# CSV must be byte-identical across kernel shard counts {1,4,16}
# (engine level), across -parallel {1,8} (campaign level, including the
# anomaly log pinned by the timeline golden), and the -live endpoints
# must serve the same bytes as the file exports.
timeline-determinism:
	$(GO) test -run 'TestTimelineShardInvariance|TestTimelineObservationOnly' -count=1 ./internal/traffic/
	$(GO) test -run 'TestTimelineWorkersInvariant|TestMergeCommutative' -count=1 ./internal/experiments/ ./internal/obs/tseries/
	$(GO) test -run 'TestTimelineQuickMatchesGolden' -count=1 ./cmd/statebench/
	$(GO) test -run 'TestServeLive' -count=1 ./internal/obs/tseries/

# netherite-determinism is the task-hub backend gate: every conformance
# scenario must produce identical results on the classic and Netherite
# hubs, and Netherite transcripts must be byte-identical across
# partition counts {1,4,8} (fault-free and under the default chaos
# plan), across repeated runs, and at -parallel {1,8} — including the
# campaign-level reports at any worker count.
netherite-determinism:
	$(GO) test -run 'TestConformanceAcrossHubs|TestByteIdenticalAcrossPartitionCounts|TestRepeatedRunsByteIdentical' -count=1 -parallel 1 ./internal/azure/netherite/
	$(GO) test -run 'TestConformanceAcrossHubs|TestByteIdenticalAcrossPartitionCounts|TestRepeatedRunsByteIdentical' -count=1 -parallel 8 ./internal/azure/netherite/
	$(GO) test -run 'TestNetheriteWorkersInvariant' -count=1 ./internal/experiments/

# flow-conformance is the workflow-IR gate: every IR-defined workload's
# observable behaviour on every registered style is pinned byte for
# byte against the pre-refactor baseline (testdata/golden/flowconf.txt)
# at -parallel 1 and 8, the lowered programs and graph-command output
# are pinned against their goldens, and the IR validation/lint suite
# runs — including the cross-style MapReduce answer-equality proof.
flow-conformance:
	$(GO) test -run 'TestFlowConformance|TestGraph' -count=1 ./cmd/statebench/
	$(GO) test -count=1 ./internal/flow/ ./internal/workloads/mapreduce/

# optimizer-determinism is the sweep-engine gate: the frontier tables,
# picks, and full candidate CSV for all five workload families must be
# byte-identical at -parallel {1,8} against the checked-in goldens; the
# shared-engine sweep must emit the exact bytes of the cold per-config
# baseline; the frontier must be invariant under enumeration order and
# shard splits; and the shared sweep must compute at most 0.35x the
# payloads of the cold baseline (the deterministic pin behind
# BENCH_PR10.json).
optimizer-determinism:
	$(GO) test -run 'TestOptimizeQuickMatchesGolden' -count=1 ./cmd/statebench/
	$(GO) test -run 'TestSweep|TestEnumerateCanonicalOrder|TestClassifyShardInvariance|TestNoSilentSkips|TestAdvisoriesFlowThrough|TestMemoSharesSeries|TestPicks' -count=1 ./internal/optimizer/

cover:
	$(GO) test -count=1 -coverprofile=cover.out ./internal/...
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {gsub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || \
	{ echo "FAIL: coverage $$total% is below the $(COVER_FLOOR)% floor"; exit 1; }

fuzz:
	$(GO) test -run - -fuzz FuzzJSONPath -fuzztime 10s ./internal/aws/sfn/
	$(GO) test -run - -fuzz FuzzChoiceEval -fuzztime 10s ./internal/aws/sfn/

bench-kernel:
	$(GO) test -run - -bench 'Kernel|EventThroughput|ProcContextSwitch' -benchmem ./internal/sim/

bench-payload:
	$(GO) test -run - -bench 'BenchmarkPayload' -benchmem ./internal/workloads/mlpipe/ ./internal/video/

bench-all:
	$(GO) test -run - -bench 'SequentialAll|ParallelAll' -benchtime 1x -benchmem .

# bench-traffic exercises the sharded kernel under the traffic-shaped
# standing-population workload plus one full million-tenant open-loop
# run; every benchmark reports events/op so cmd/benchjson -compare can
# derive events/sec across baselines.
# Three invocations on purpose: the storm needs the default benchtime
# to amortize its million-timer setup across iterations, and the
# traffic run must own the process so peak-RSS-MB is not inflated by
# the cascade benchmarks' high-water mark.
bench-traffic:
	$(GO) test -run - -bench 'KernelSharded[0-9]' -benchtime 1x -benchmem -timeout 60m .
	$(GO) test -run - -bench 'SameInstantStorm' -benchmem .
	$(GO) test -run - -bench 'TrafficMillionTenants' -benchtime 1x -benchmem -timeout 60m .

# bench-netherite is the classic-vs-Netherite episode-throughput pair
# behind BENCH_PR8.json: each benchmark reports episodes/vsec (virtual
# time, deterministic) alongside the simulator's own wall-clock cost,
# and TestNetheriteEpisodeThroughputTarget pins the >=5x target in CI.
bench-netherite:
	$(GO) test -run - -bench 'HubEpisodeThroughput' -benchmem ./internal/azure/netherite/

# bench-optimizer is the cold-vs-shared sweep pair behind
# BENCH_PR10.json: the same 220-config mltrain+mapreduce space swept
# with per-candidate private payload caches (first invocation) and with
# the sweep-shared engine plus delta evaluation (second). Both modes
# run under one benchmark name, so capturing each to a JSON with
# cmd/benchjson -label and diffing via cmd/benchjson -compare renders
# the speedup column; TestSweepSharedDoesLessWork pins the <=0.35x
# compute ratio deterministically in CI.
bench-optimizer:
	STATEBENCH_SWEEP_COLD=1 $(GO) test -run - -bench 'OptimizerSweep' -benchtime 1x -benchmem -timeout 30m ./internal/optimizer/
	$(GO) test -run - -bench 'OptimizerSweep' -benchtime 1x -benchmem -timeout 30m ./internal/optimizer/

bench: bench-kernel bench-payload bench-all bench-traffic bench-netherite bench-optimizer
