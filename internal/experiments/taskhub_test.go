package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func netheriteRun(t *testing.T, workers int) (closed, open *Report) {
	t.Helper()
	o := tiny()
	o.Workers = workers
	reports, err := NetheriteHubs(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("reports = %d, want 2 (closed-loop + open-loop)", len(reports))
	}
	return reports[0], reports[1]
}

// TestNetheriteCoversBothHubs is the registry seam's acceptance check
// for the task-hub comparison: the driver names no provider, yet both
// the classic Azure styles and the init-registered Netherite styles
// must appear, and the Netherite rows must show the group-commit
// transaction reduction.
func TestNetheriteCoversBothHubs(t *testing.T) {
	closed, open := netheriteRun(t, 0)

	txns := map[string]float64{}
	for _, row := range closed.Table.Rows {
		v, err := strconv.ParseFloat(row[6], 64)
		if err != nil {
			t.Fatalf("unparseable txns column in row %v: %v", row, err)
		}
		txns[row[1]] = v // style -> stateful txns/run
	}
	for _, style := range []string{"Az-Dorch", "Az-Dent", "Az-Dorch-N", "Az-Dent-N"} {
		if _, ok := txns[style]; !ok {
			t.Fatalf("closed-loop table missing style %s; got %v", style, txns)
		}
	}
	// The order-of-magnitude claim: group commits must cut stateful
	// transactions by far more than noise — at least 5x on both styles.
	if txns["Az-Dorch-N"]*5 > txns["Az-Dorch"] {
		t.Fatalf("orchestrator txns/run: netherite %.0f vs classic %.0f, want >= 5x reduction", txns["Az-Dorch-N"], txns["Az-Dorch"])
	}
	if txns["Az-Dent-N"]*5 > txns["Az-Dent"] {
		t.Fatalf("entity txns/run: netherite %.0f vs classic %.0f, want >= 5x reduction", txns["Az-Dent-N"], txns["Az-Dent"])
	}

	// Open loop: both hubs replay the identical arrival schedule, so
	// the rows must agree on arrivals and episodes while the classic
	// hub bills far more storage transactions.
	if len(open.Table.Rows) != 2 {
		t.Fatalf("open-loop rows = %d, want 2", len(open.Table.Rows))
	}
	classic, neth := open.Table.Rows[0], open.Table.Rows[1]
	if classic[0] != "Azure" || neth[0] != "Netherite" {
		t.Fatalf("unexpected hub order: %v / %v", classic[0], neth[0])
	}
	if classic[2] != neth[2] {
		t.Fatalf("arrival counts diverged (%s vs %s): the hubs did not replay the same schedule", classic[2], neth[2])
	}
	if classic[5] != neth[5] {
		t.Fatalf("episode counts diverged (%s vs %s): the hubs ran different work", classic[5], neth[5])
	}
	ct, _ := strconv.ParseInt(classic[6], 10, 64)
	nt, _ := strconv.ParseInt(neth[6], 10, 64)
	if ct == 0 || nt == 0 || nt*5 > ct {
		t.Fatalf("open-loop storage txns: netherite %d vs classic %d, want >= 5x reduction", nt, ct)
	}
}

// TestNetheriteWorkersInvariant is the campaign half of the
// netherite-determinism gate: the rendered reports are byte-identical
// at -parallel 1 and 8 (campaign seeds derive from position, never
// from scheduling).
func TestNetheriteWorkersInvariant(t *testing.T) {
	c1, o1 := netheriteRun(t, 1)
	c8, o8 := netheriteRun(t, 8)
	if c1.String() != c8.String() {
		t.Fatalf("closed-loop report diverged across workers:\n%s\nvs\n%s", c1.String(), c8.String())
	}
	if o1.String() != o8.String() {
		t.Fatalf("open-loop report diverged across workers:\n%s\nvs\n%s", o1.String(), o8.String())
	}
	if !strings.Contains(c1.String(), "Netherite") {
		t.Fatalf("report missing Netherite rows:\n%s", c1.String())
	}
}
