package experiments

import (
	"fmt"

	"statebench/internal/chaos"
	"statebench/internal/core"
	"statebench/internal/parallel"
	"statebench/internal/workloads/mlpipe"
	"statebench/internal/workloads/mltrain"
)

// This file holds the reliability experiment: the six implementation
// styles under an identical deterministic fault schedule, contrasting
// how each platform's recovery machinery (SFN Retry, queue redelivery,
// Durable replay) translates injected faults into tail latency, cost
// inflation, and lost runs.

// DefaultFaultRate is the per-decision injection probability the
// reliability table uses.
const DefaultFaultRate = 0.05

// ReliabilityFor measures wf under chaos.DefaultPlan(rate) for each
// style, next to a fault-free baseline at the same seed, and tabulates
// success rate, recovery activity, and tail/cost inflation.
func ReliabilityFor(wf core.Workflow, impls []core.Impl, o Options, rate float64) (*Report, error) {
	r := &Report{
		ID:    "reliability",
		Title: fmt.Sprintf("Reliability under injected faults (rate %.0f%%, seed-deterministic schedule)", rate*100),
	}
	r.Table.Header = []string{
		"style", "ok-rate", "faults", "retries", "redeliv", "DLQ",
		"p50", "p99", "p99 infl", "cost infl", "recovered",
	}
	rows, err := parallel.Map(o.Workers, len(impls), func(i int) ([]string, error) {
		impl := impls[i]
		base, err := core.Measure(wf, impl, measureOpts(o))
		if err != nil {
			return nil, err
		}
		opt := measureOpts(o)
		opt.Chaos = chaos.DefaultPlan(rate)
		s, err := core.Measure(wf, impl, opt)
		if err != nil {
			return nil, err
		}
		f := s.Faults
		recovered := 1.0
		if f.Injected > 0 {
			recovered = 1 - float64(s.Errors)/float64(f.Injected)
			if recovered < 0 {
				recovered = 0
			}
		}
		p99Infl := ratio(float64(s.E2E.P99()), float64(base.E2E.P99()))
		costInfl := ratio(s.MeanBill.Total(), base.MeanBill.Total())
		return []string{
			string(impl),
			fmtPct(s.SuccessRate),
			fmt.Sprintf("%d", f.Injected),
			fmt.Sprintf("%d", f.Retries),
			fmt.Sprintf("%d", f.Redeliveries+f.Redispatches),
			fmt.Sprintf("%d", f.DeadLetters),
			fmtDur(s.E2E.Median()),
			fmtDur(s.E2E.P99()),
			fmt.Sprintf("%.2fx", p99Infl),
			fmt.Sprintf("%.2fx", costInfl),
			fmtPct(recovered),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	r.Table.Rows = append(r.Table.Rows, rows...)
	r.Notes = append(r.Notes,
		"same seed drives the baseline and the chaos campaign: every latency delta is fault recovery, not sampling noise",
		"AWS-Lambda has no platform retry for synchronous invokes, so its ok-rate tracks 1-rate; SFN Retry and Durable replay absorb faults into tail latency instead")
	return r, nil
}

// ratio is a guarded a/b for inflation columns.
func ratio(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		return 0
	}
	return a / b
}

// Reliability runs the reliability table on the small ML training
// workflow across all six styles.
func Reliability(o Options) (*Report, error) {
	wf := mltrain.New(mlpipe.Small)
	return ReliabilityFor(wf, wf.Impls(), o, DefaultFaultRate)
}
