package experiments

import (
	"fmt"
	"time"

	"statebench/internal/core"
	"statebench/internal/obs"
	"statebench/internal/parallel"
	"statebench/internal/pricing"
	"statebench/internal/sim"
	"statebench/internal/workloads/videoproc"
)

// videoWorkerCounts is the Fig 12 sweep.
var videoWorkerCounts = []int{10, 20, 40, 80}

// videoMeasure runs the video workload with cold pools per iteration
// (the paper's fan-outs repeatedly hit cold scale-out on Azure).
func videoMeasure(o Options, impl core.Impl, workers, iters int) (*core.Series, error) {
	wf := videoproc.New(workers)
	opt := core.DefaultMeasureOptions()
	opt.Iters = iters
	opt.Seed = o.Seed
	opt.Warmup = 0
	opt.Gap = 20 * time.Minute // beyond the idle timeouts: cold pools
	applyObs(o, &opt)
	return core.Measure(wf, impl, opt)
}

// Fig12 reproduces Fig 12: end-to-end video latency vs worker count.
// The sweep is 2 monolith campaigns plus 2 styles × 4 worker counts,
// all independent; every campaign fans out across the pool.
func Fig12(o Options) (*Report, error) {
	r := &Report{ID: "fig12", Title: "Video processing end-to-end latency vs workers"}
	r.Table.Header = []string{"workers", string(core.AWSStep), string(core.AzDorch)}
	type campaign struct {
		impl    core.Impl
		workers int
	}
	campaigns := []campaign{{core.AWSLambda, 1}, {core.AzFunc, 1}}
	for _, n := range videoWorkerCounts {
		campaigns = append(campaigns, campaign{core.AWSStep, n}, campaign{core.AzDorch, n})
	}
	medians, err := parallel.Map(o.Workers, len(campaigns), func(i int) (time.Duration, error) {
		c := campaigns[i]
		s, err := videoMeasure(o, c.impl, c.workers, o.VideoIters)
		if err != nil {
			return 0, err
		}
		return s.E2E.Median(), nil
	})
	if err != nil {
		return nil, err
	}
	r.Table.AddRow("1 (monolith)", fmtDur(medians[0]), fmtDur(medians[1]))
	var aws80 float64
	awsMono50 := float64(medians[0])
	for i, n := range videoWorkerCounts {
		awsMed, azMed := medians[2+2*i], medians[3+2*i]
		if n == 80 {
			aws80 = float64(awsMed)
		}
		r.Table.AddRow(fmt.Sprintf("%d", n), fmtDur(awsMed), fmtDur(azMed))
	}
	r.Notes = append(r.Notes, fmt.Sprintf(
		"AWS 80-worker improvement over AWS-Lambda monolith: %.0f%% (paper: >80%%); Azure does not scale",
		(1-aws80/awsMono50)*100))
	return r, nil
}

// Fig13 reproduces Fig 13: the video latency breakdown, contrasting
// AWS-Step's small, stable cold start with the Azure orchestrator's
// wide-ranging start delays.
func Fig13(o Options) (*Report, error) {
	r := &Report{ID: "fig13", Title: "Video processing latency breakdown (20 workers)"}
	r.Table.Header = []string{"impl", "cold start (mean)", "cold start (max)", "queue+sched", "exec"}
	impls := []core.Impl{core.AWSStep, core.AzDorch}
	rows, err := parallel.Map(o.Workers, len(impls), func(i int) ([]string, error) {
		s, err := videoMeasure(o, impls[i], 20, o.VideoIters)
		if err != nil {
			return nil, err
		}
		b := s.Breakdowns.AtQuantile(0.5)
		return []string{string(impls[i]), fmtDur(s.Cold.Mean()), fmtDur(s.Cold.Max()), fmtDur(b.QueueTime), fmtDur(b.ExecTime)}, nil
	})
	if err != nil {
		return nil, err
	}
	r.Table.Rows = append(r.Table.Rows, rows...)
	r.Notes = append(r.Notes, "paper: AWS cold start 1-2s; Azure orchestrator start averages ~10s with a wide range")
	return r, nil
}

// Fig14 reproduces Fig 14: the scheduling-delay distribution across
// tens of thousands of Azure face-detection workers, collected (as the
// paper did) across repeated cold fan-outs at several widths.
func Fig14(o Options) (*Report, error) {
	var delays obs.Samples
	iter := 0
	for delays.Len() < o.Fig14Target {
		// One round = one cold fan-out per width. The campaigns are
		// independent (seed depends only on the campaign number), so a
		// round runs in parallel; shards are merged in campaign order
		// and consumption stops at the target, so the collected sample
		// set matches the sequential loop byte for byte.
		shards, err := parallel.Map(o.Workers, len(videoWorkerCounts), func(i int) (*obs.Samples, error) {
			wf := videoproc.New(videoWorkerCounts[i])
			opt := core.DefaultMeasureOptions()
			opt.Iters = 1 // cold scale-out, as each of the paper's fan-outs was
			opt.Warmup = 0
			opt.Gap = 30 * time.Second
			opt.Seed = o.Seed + uint64(iter+i)*977
			opt.KeepEnv = true // the drill-down below needs the Azure host stats
			applyObs(o, &opt)
			s, err := core.Measure(wf, core.AzDorch, opt)
			if err != nil {
				return nil, err
			}
			shard := &obs.Samples{}
			shard.AddAll(videoproc.WorkerSchedDelays(s.Env))
			return shard, nil
		})
		if err != nil {
			return nil, err
		}
		for _, shard := range shards {
			if delays.Len() >= o.Fig14Target {
				break
			}
			delays.Merge(shard)
			iter++
		}
	}
	r := &Report{ID: "fig14", Title: fmt.Sprintf("Scheduling delay CDF (%d workers observed)", delays.Len())}
	r.Table.Header = []string{"fraction", "delay"}
	for _, f := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99} {
		r.Table.AddRow(fmt.Sprintf("%.2f", f), fmtDur(delays.Quantile(f)))
	}
	r.Notes = append(r.Notes, fmt.Sprintf(
		"fraction waiting >=40s: %.0f%% (paper: ~50%%); fraction waiting >=270s: %.1f%% (paper: ~5%%)",
		(1-delays.FracBelow(40*time.Second))*100, (1-delays.FracBelow(270*time.Second))*100))
	return r, nil
}

// Fig15 reproduces Fig 15: the estimated monthly cost of running the
// 20-worker video workload on each style, including Azure's idle-time
// queue polling. A representative window is simulated (runs spread at
// the paper-like daily cadence) and scaled to 30 days.
func Fig15(o Options) (*Report, error) {
	// The paper's monthly estimate is idle-dominated: the workflow runs
	// every other day while the task hub polls its queues around the
	// clock. A 48 h window with one run is simulated and scaled to 30
	// days.
	const window = 48 * time.Hour
	interval := window
	runsInWindow := 1
	scale := float64(30*24*time.Hour) / float64(window)

	r := &Report{ID: "fig15", Title: "Estimated monthly cost, video processing (20 workers)"}
	r.Table.Header = []string{"impl", "compute", "stateful", "total", "stateful share"}
	impls := []core.Impl{core.AWSLambda, core.AWSStep, core.AzFunc, core.AzDorch}
	bills, err := parallel.Map(o.Workers, len(impls), func(i int) (pricing.Bill, error) {
		return monthlyBill(o, impls[i], window, interval, runsInWindow)
	})
	if err != nil {
		return nil, err
	}
	var azStateful, awsStateful float64
	for i, impl := range impls {
		monthly := bills[i].Scale(scale)
		if impl == core.AzDorch {
			azStateful = monthly.Stateful
		} else if impl == core.AWSStep {
			awsStateful = monthly.Stateful
		}
		r.Table.AddRow(string(impl), fmtUSD(monthly.Compute), fmtUSD(monthly.Stateful),
			fmtUSD(monthly.Total()), fmtPct(monthly.StatefulShare()))
	}
	if azStateful > 0 {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"AWS-Step transition cost is %.0f%% lower than Az-Dorch's transaction cost (paper: ~83%% lower)",
			(1-awsStateful/azStateful)*100))
	}
	return r, nil
}

// monthlyBill deploys the 20-worker workflow and simulates a window
// with periodic runs, pricing everything metered in the window
// (including idle polling between runs).
func monthlyBill(o Options, impl core.Impl, window, interval time.Duration, runs int) (pricing.Bill, error) {
	env := core.NewEnv(o.Seed)
	wf := videoproc.New(20)
	dep, err := wf.Deploy(env, impl)
	if err != nil {
		return pricing.Bill{}, err
	}
	var runErr error
	env.K.Spawn("monthly", func(p *sim.Proc) {
		for i := 0; i < runs; i++ {
			if _, err := dep.Runner.Invoke(p, nil); err != nil {
				runErr = err
				return
			}
			p.Sleep(interval)
		}
	})
	env.K.RunUntil(window)
	env.Stop()
	env.K.Run() // drain listeners
	if runErr != nil {
		return pricing.Bill{}, runErr
	}

	// Everything metered in the window is cumulative usage; the style's
	// registered backend and price book turn it into the monthly bill
	// without any per-cloud branching here.
	return env.BookFor(impl).Bill(env.UsageFor(impl)), nil
}
