// Package experiments contains one driver per table and figure of the
// paper's evaluation (§V): each builds the same rows/series the paper
// reports, from simulated measurement campaigns. The cmd/statebench CLI
// and the repository's benchmarks are thin wrappers over this package.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"statebench/internal/core"
	"statebench/internal/obs"
	"statebench/internal/obs/metrics"
	"statebench/internal/obs/tseries"
	"statebench/internal/payload"
)

// Report is one regenerated table or figure.
type Report struct {
	ID    string
	Title string
	Table obs.Table
	Notes []string
}

// String renders the report as text.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", r.ID, r.Title)
	sb.WriteString(r.Table.String())
	for _, n := range r.Notes {
		sb.WriteString("note: " + n + "\n")
	}
	return sb.String()
}

// CSV renders the report's table as RFC-4180-ish CSV with a leading
// comment line carrying the experiment ID, for plotting pipelines.
func (r *Report) CSV() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s: %s\n", r.ID, r.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			sb.WriteString(c)
		}
		sb.WriteByte('\n')
	}
	writeRow(r.Table.Header)
	for _, row := range r.Table.Rows {
		writeRow(row)
	}
	return sb.String()
}

// Options tunes campaign sizes. Defaults reproduce the paper's scale;
// tests and quick runs shrink them.
type Options struct {
	// Iters is the per-style iteration count (paper: 100+).
	Iters int
	// ColdHours is the cold-start campaign length in hours (paper: 4
	// days at one request per hour = 96).
	ColdHours int
	// VideoIters is the per-worker-count iteration count for the video
	// experiments (heavier; fewer iterations).
	VideoIters int
	// Fig14Target is the number of worker-scheduling observations to
	// collect (paper: 50,000).
	Fig14Target int
	Seed        uint64
	// Workers bounds the campaign fan-out: how many independent
	// campaigns (experiments, styles, sweep points) run concurrently.
	// 0 = GOMAXPROCS, 1 = strictly sequential. Campaign seeds derive
	// from Seed alone, so every worker count renders byte-identical
	// reports.
	Workers int
	// Metrics, when non-nil, turns on span tracing inside every
	// measurement campaign and aggregates counters/histograms into the
	// shared registry. Writes are commutative, so the registry contents
	// are deterministic at any Workers setting. Report output is
	// byte-identical with or without it.
	Metrics *metrics.Registry
	// Timeline, when non-nil, enables windowed telemetry inside every
	// measurement campaign: each campaign records per-window counters
	// and gauges into a private series and merges it into this shared
	// collector on completion. Merging is commutative, so collector
	// contents are deterministic at any Workers setting; report output
	// is byte-identical with or without it. The CLI's -live and
	// -timeline flags set it.
	Timeline *tseries.Collector
	// PayloadCache is the payload-compute memoization engine shared by
	// every campaign of the run. Nil makes RunAll create a fresh engine
	// per invocation, so each suite run is uniformly cache-cold inside
	// itself while still reusing each computation across its impls,
	// providers, and repetitions; payload.Disabled() turns memoization
	// off (the -payload-cache=off escape hatch). Either way the
	// rendered reports are byte-identical: cached results equal fresh
	// recomputes byte for byte.
	PayloadCache *payload.Engine
}

// DefaultOptions reproduces the paper's campaign sizes.
func DefaultOptions() Options {
	return Options{Iters: 100, ColdHours: 96, VideoIters: 10, Fig14Target: 50000, Seed: 42}
}

// QuickOptions is a fast smoke-scale configuration.
func QuickOptions() Options {
	return Options{Iters: 10, ColdHours: 12, VideoIters: 2, Fig14Target: 2000, Seed: 42}
}

func fmtDur(d time.Duration) string { return obs.FormatDuration(d) }

// sdur converts nanoseconds to a duration (tiny readability helper).
func sdur(ns int64) time.Duration { return time.Duration(ns) }

func fmtUSD(v float64) string { return fmt.Sprintf("$%.6f", v) }

func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// measureOpts builds the standard warm-path measurement options.
func measureOpts(o Options) core.MeasureOptions {
	m := core.DefaultMeasureOptions()
	m.Iters = o.Iters
	m.Seed = o.Seed
	m.Workers = o.Workers
	applyObs(o, &m)
	return m
}

// applyObs layers the shared observability settings onto campaign
// options built outside measureOpts (video sweeps, ablations, tables).
func applyObs(o Options, m *core.MeasureOptions) {
	if o.Metrics != nil {
		m.Metrics = o.Metrics
		m.Tracing = true
	}
	m.Timeline = o.Timeline
	m.PayloadCache = o.payloadCache()
}

// payloadCache returns the run's payload engine, falling back to the
// process-global one for drivers invoked with bare Options (tests
// calling an experiment function directly).
func (o Options) payloadCache() *payload.Engine {
	if o.PayloadCache != nil {
		return o.PayloadCache
	}
	return payload.Shared()
}
