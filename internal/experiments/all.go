package experiments

import (
	"fmt"

	"statebench/internal/parallel"
	"statebench/internal/payload"
)

// Runner is a named experiment entry point.
type Runner struct {
	ID  string
	Run func(Options) ([]*Report, error)
}

// single adapts a one-report driver.
func single(fn func(Options) (*Report, error)) func(Options) ([]*Report, error) {
	return func(o Options) ([]*Report, error) {
		r, err := fn(o)
		if err != nil {
			return nil, err
		}
		return []*Report{r}, nil
	}
}

// Registry lists every experiment in paper order.
func Registry() []Runner {
	return []Runner{
		{"table1", func(Options) ([]*Report, error) { return []*Report{Table1()}, nil }},
		{"table2", single(Table2)},
		{"fig6", Fig6},
		{"fig7", single(Fig7)},
		{"fig8", single(Fig8)},
		{"fig9", single(Fig9)},
		{"fig10", single(Fig10)},
		{"fig11", Fig11},
		{"fig12", single(Fig12)},
		{"fig13", single(Fig13)},
		{"fig14", single(Fig14)},
		{"fig15", single(Fig15)},
		{"table3", single(Table3)},
	}
}

// RegistryWithAblations appends the ablation studies and the
// cross-provider comparison to the paper experiments. The extras live
// here, not in Registry, so the default run's output never changes as
// studies (or providers) are added.
func RegistryWithAblations() []Runner {
	extra := append(Ablations(),
		Runner{"crosscloud", single(CrossCloud)},
		Runner{"traffic", single(TrafficSweep)},
		Runner{"timeline", single(Timeline)},
		Runner{"netherite", NetheriteHubs},
		Runner{"optimize", single(Optimize)},
	)
	return append(Registry(), extra...)
}

// Find returns the runner with the given ID (paper experiments and
// ablations).
func Find(id string) (Runner, error) {
	for _, r := range RegistryWithAblations() {
		if r.ID == id {
			return r, nil
		}
	}
	return Runner{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// RunAll executes the given runners, fanning the independent
// experiments across o.Workers goroutines, and concatenates the
// reports in runner order. Reports are slotted by runner index and
// every campaign seed derives from o.Seed, so the output is
// byte-identical to a sequential run at any worker count; on failure
// the lowest-numbered runner's error is reported.
func RunAll(runners []Runner, o Options) ([]*Report, error) {
	if o.PayloadCache == nil {
		// Fresh engine per run: every computation happens exactly once
		// inside this run and never leaks across runs, so benchmark
		// numbers don't depend on in-process call order.
		o.PayloadCache = payload.NewEngine()
	}
	results, err := parallel.Map(o.Workers, len(runners), func(i int) ([]*Report, error) {
		reports, err := runners[i].Run(o)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", runners[i].ID, err)
		}
		return reports, nil
	})
	if err != nil {
		return nil, err
	}
	// One emission per run, after every campaign has finished: totals
	// are worker-count-independent (misses = distinct keys, hits =
	// lookups - misses), unlike any per-campaign split.
	if o.Metrics != nil {
		o.PayloadCache.EmitTo(o.Metrics)
	}
	var out []*Report
	for _, reports := range results {
		out = append(out, reports...)
	}
	return out, nil
}

// All runs every experiment and returns the reports in paper order.
func All(o Options) ([]*Report, error) { return RunAll(Registry(), o) }
