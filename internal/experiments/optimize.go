package experiments

// This file holds the optimize experiment: the cross-cloud
// cost/latency optimizer run over every workload family's
// configuration space. Like crosscloud, it is registry-derived — the
// style dimension of every space comes from core.RegisteredImpls and
// the flow lowerer registry, so a provider registered tomorrow is
// swept with no edit here — and it is not part of the paper's output.
// Run it with `statebench optimize`.

import (
	"fmt"
	"sort"
	"time"

	"statebench/internal/core"
	"statebench/internal/flow"
	"statebench/internal/optimizer"
	"statebench/internal/payload"
	"statebench/internal/workloads/mapreduce"
	"statebench/internal/workloads/mlinfer"
	"statebench/internal/workloads/mlpipe"
	"statebench/internal/workloads/mltrain"
	"statebench/internal/workloads/videoproc"
)

// memTiers is the provisioned-memory dimension shared by the ML
// spaces: the default tier plus the sizes every registered provider
// accepts (GCP validates tiers against its discrete list at function
// registration, so only list-valid sizes may appear here).
var memTiers = []int{0, 512, 1024, 2048}

// OptimizeSpaces declares the five sweep spaces — one per workload
// family. Each space is pure data plus a constructor; everything about
// providers and styles is discovered from the registries at sweep
// time.
func OptimizeSpaces() []optimizer.Space {
	mlSpace := func(name string, build func(c optimizer.Config) core.Workflow) optimizer.Space {
		return optimizer.Space{Workload: name, Build: build, MemTiersMB: memTiers}
	}
	return []optimizer.Space{
		mlSpace("ml-training-small", func(c optimizer.Config) core.Workflow {
			w := mltrain.New(mlpipe.Small)
			w.MemMB = c.MemMB
			return w
		}),
		mlSpace("ml-training-large", func(c optimizer.Config) core.Workflow {
			w := mltrain.New(mlpipe.Large)
			w.MemMB = c.MemMB
			return w
		}),
		mlSpace("ml-inference-small", func(c optimizer.Config) core.Workflow {
			w := mlinfer.New(mlpipe.Small)
			w.MemMB = c.MemMB
			return w
		}),
		{
			// Video sweeps the fan-out (worker count) alongside memory.
			// No shape collapse is declared: the monolith's simulated
			// execution is genuinely shaped by the worker count's
			// absence, and the sweep proves rather than assumes
			// equivalences.
			Workload: "video-processing",
			Build: func(c optimizer.Config) core.Workflow {
				workers := c.FanOut
				if workers == 0 {
					workers = 10
				}
				w := videoproc.New(workers)
				w.MemMB = c.MemMB
				return w
			},
			MemTiersMB: []int{0, 2048},
			FanOuts:    []int{4, 8},
		},
		{
			Workload: "mapreduce",
			Build: func(c optimizer.Config) core.Workflow {
				w := mapreduce.New()
				w.MemMB = c.MemMB
				if c.FanOut > 0 {
					w.Mappers = c.FanOut
				}
				if c.Chunk > 0 {
					w.Reducers = c.Chunk
				}
				return w
			},
			MemTiersMB: []int{0, 1024, 2048},
			FanOuts:    []int{4, 8},
			Chunks:     []int{2, 4},
			// The monolith counts the whole corpus whatever the
			// mapper/reducer knobs say, so its shape dimensions
			// collapse into one evaluation.
			ShapeIrrelevantClasses: []flow.Class{flow.Mono},
		},
	}
}

// OptimizeResults sweeps every space on one shared payload engine (the
// run's engine, so suite-level cache totals and the Prometheus export
// pick the sweep's activity up automatically) and returns the full
// per-workload candidate records in declaration order.
func OptimizeResults(o Options) ([]*optimizer.Result, error) {
	spaces := OptimizeSpaces()
	results := make([]*optimizer.Result, len(spaces))
	for i, space := range spaces {
		opt := optimizer.Options{
			Iters:   o.Iters,
			Warmup:  1,
			Seed:    o.Seed,
			Workers: o.Workers,
			Engine:  o.payloadCache(),
			Metrics: o.Metrics,
		}
		if space.Workload == "video-processing" {
			opt.Iters = o.VideoIters
		}
		r, err := optimizer.Sweep(space, opt)
		if err != nil {
			return nil, err
		}
		results[i] = r
	}
	return results, nil
}

// Optimize runs the full sweep with per-workload automatic SLO and
// budget picks (see OptimizeWith).
func Optimize(o Options) (*Report, error) { return OptimizeWith(o, 0, 0) }

// OptimizeWith runs the sweep and reports each workload's Pareto
// frontier plus its cheapest-under-SLO and fastest-under-budget picks.
// An slo of 0 defaults each workload's SLO to the median measured p50;
// a budget of 0 defaults to the median measured cost — both derived
// from the sweep itself, so the defaults are deterministic. The CLI's
// -slo and -budget flags override them globally.
func OptimizeWith(o Options, slo time.Duration, budget float64) (*Report, error) {
	results, err := OptimizeResults(o)
	if err != nil {
		return nil, err
	}
	return OptimizeReport(results, slo, budget), nil
}

// OptimizeReport renders sweep results (see OptimizeResults) as the
// optimize report; slo and budget follow OptimizeWith's conventions.
// Split from the sweep so the CLI can render the report and dump the
// full candidate CSV from a single set of results.
func OptimizeReport(results []*optimizer.Result, slo time.Duration, budget float64) *Report {
	r := &Report{
		ID: "optimize",
		Title: fmt.Sprintf("Cross-cloud cost/latency frontier, %d registered providers (shared-compute sweep)",
			len(core.Providers())),
	}
	r.Table.Header = []string{"workload", "config", "p50", "mean cost", "delta of"}

	var payloadTotals payload.Stats
	for _, res := range results {
		for _, c := range res.Frontier() {
			delta := c.DeltaOf
			if delta == "" {
				delta = "-"
			}
			r.Table.AddRow(res.Workload, c.Config.Label(), fmtDur(c.Lat), fmtUSD(c.Cost), delta)
		}

		total, excluded, measured := len(res.Candidates), 0, 0
		reasons := map[string]int{}
		var order []string
		for i := range res.Candidates {
			c := &res.Candidates[i]
			if c.Status == optimizer.StatusExcluded {
				excluded++
				if reasons[c.Reason] == 0 {
					order = append(order, c.Reason)
				}
				reasons[c.Reason]++
			} else {
				measured++
			}
		}
		r.Notes = append(r.Notes, fmt.Sprintf(
			"%s: %d configs, %d excluded, %d measured via %d campaigns (delta evaluation saved %d)",
			res.Workload, total, excluded, measured, res.Evals, measured-res.Evals))
		for _, reason := range order {
			r.Notes = append(r.Notes, fmt.Sprintf("%s: excluded %d: %s", res.Workload, reasons[reason], reason))
		}

		wslo, wbudget := slo, budget
		if wslo == 0 {
			wslo = medianLat(res)
		}
		if wbudget == 0 {
			wbudget = medianCost(res)
		}
		if c := res.CheapestUnder(wslo); c != nil {
			r.Notes = append(r.Notes, fmt.Sprintf("%s: cheapest under %s SLO: %s (%s, %s)",
				res.Workload, fmtDur(wslo), c.Config.Label(), fmtDur(c.Lat), fmtUSD(c.Cost)))
		} else {
			r.Notes = append(r.Notes, fmt.Sprintf("%s: no config meets the %s SLO", res.Workload, fmtDur(wslo)))
		}
		if c := res.FastestUnder(wbudget); c != nil {
			r.Notes = append(r.Notes, fmt.Sprintf("%s: fastest under %s budget: %s (%s, %s)",
				res.Workload, fmtUSD(wbudget), c.Config.Label(), fmtDur(c.Lat), fmtUSD(c.Cost)))
		} else {
			r.Notes = append(r.Notes, fmt.Sprintf("%s: no config fits the %s budget", res.Workload, fmtUSD(wbudget)))
		}
		payloadTotals = payloadTotals.Merge(res.Payload)
	}
	r.Notes = append(r.Notes, fmt.Sprintf(
		"payload cache across all campaigns: %d lookups, %d computed, hit rate %s",
		payloadTotals.Lookups(), payloadTotals.Misses, fmtPct(payloadTotals.HitRate())))
	r.Notes = append(r.Notes, "full candidate record (frontier, dominated set, exclusions): statebench optimize -csv")
	return r
}

// medianLat returns the median measured p50 across a result's
// candidates (the deterministic default SLO).
func medianLat(r *optimizer.Result) time.Duration {
	var lats []time.Duration
	for i := range r.Candidates {
		if r.Candidates[i].Status != optimizer.StatusExcluded {
			lats = append(lats, r.Candidates[i].Lat)
		}
	}
	if len(lats) == 0 {
		return 0
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	return lats[len(lats)/2]
}

// medianCost returns the median measured mean cost (the deterministic
// default budget).
func medianCost(r *optimizer.Result) float64 {
	var costs []float64
	for i := range r.Candidates {
		if r.Candidates[i].Status != optimizer.StatusExcluded {
			costs = append(costs, r.Candidates[i].Cost)
		}
	}
	if len(costs) == 0 {
		return 0
	}
	sort.Float64s(costs)
	return costs[len(costs)/2]
}
