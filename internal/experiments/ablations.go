package experiments

import (
	"fmt"
	"time"

	"statebench/internal/aws/lambda"
	"statebench/internal/core"
	"statebench/internal/obs"
	"statebench/internal/parallel"
	"statebench/internal/platform"
	"statebench/internal/sim"
	"statebench/internal/workloads/mlpipe"
	"statebench/internal/workloads/mltrain"
	"statebench/internal/workloads/videoproc"
)

// This file holds the ablations DESIGN.md calls out: design choices the
// paper's discussion attributes effects to, each isolated with a knob.

// AblationMemory sweeps the AWS Lambda memory configuration for the
// monolithic ML training function. AWS allocates CPU proportionally to
// configured memory but bills the configured amount — the
// latency-vs-cost tradeoff the paper's §V-B discussion highlights
// ("the user is responsible to tune the memory configuration").
func AblationMemory(o Options) (*Report, error) {
	arts, err := mlpipe.TrainWith(o.payloadCache(), mlpipe.Small)
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "ablation-memory", Title: "AWS Lambda memory configuration sweep (ML training monolith)"}
	r.Table.Header = []string{"memory", "median E2E", "GB-s/run", "compute cost/run"}
	memories := []int{512, 1024, 1536, 2048, 3072}
	rows, err := parallel.Map(o.Workers, len(memories), func(idx int) ([]string, error) {
		memMB := memories[idx]
		env := core.NewEnv(o.Seed)
		s3 := env.AWS.S3
		// The dataset bytes are immutable pipeline artifacts; share them
		// across the sweep points instead of copying per configuration.
		s3.PreloadShared("dataset", arts.DatasetCSV)
		// CPU share scales with configured memory (1792 MB = 1 vCPU).
		speed := float64(memMB) / 1536
		costs := mlpipe.NewCosts(env.K, fmt.Sprintf("mem-%d", memMB), speed)
		fn := fmt.Sprintf("mono-%d", memMB)
		env.AWS.Lambda.MustRegister(lambda.Config{
			Name: fn, MemoryMB: memMB, ConsumedMemMB: mlpipe.MemMonolith,
			Handler: func(ctx *lambda.Context, payload []byte) ([]byte, error) {
				p := ctx.Proc()
				if _, err := s3.Get(p, "dataset"); err != nil {
					return nil, err
				}
				ctx.Busy(costs.MonolithTrain(mlpipe.Small))
				return nil, nil
			},
		})
		var samples obs.Samples
		env.K.Spawn("driver", func(p *sim.Proc) {
			defer env.Stop() // quiesce the idle Azure listeners
			for i := 0; i < o.Iters; i++ {
				inv, err := env.AWS.Lambda.Invoke(p, fn, nil)
				if err != nil {
					return
				}
				samples.Add(inv.Total)
				p.Sleep(30 * time.Second)
			}
		})
		env.K.Run()
		m := env.AWS.Lambda.TotalMeter()
		gbs := m.BilledGBs / float64(o.Iters)
		return []string{fmt.Sprintf("%d MB", memMB), fmtDur(samples.Median()),
			fmt.Sprintf("%.2f", gbs), fmtUSD(gbs * env.AWSPrices.LambdaGBs)}, nil
	})
	if err != nil {
		return nil, err
	}
	r.Table.Rows = append(r.Table.Rows, rows...)
	r.Notes = append(r.Notes, "CPU scales with configured memory, but so does the bill: past the workload's parallelism the extra GB-s buy nothing")
	return r, nil
}

// AblationKeepAlive sweeps the Lambda container keep-alive window and
// reports how many requests land cold at a fixed request interval —
// the mechanism behind every cold-start figure.
func AblationKeepAlive(o Options) (*Report, error) {
	r := &Report{ID: "ablation-keepalive", Title: "Cold-start rate vs container keep-alive (requests every 10 min)"}
	r.Table.Header = []string{"keep-alive", "cold fraction", "median cold delay"}
	wf := mltrain.New(mlpipe.Small)
	keeps := []time.Duration{2 * time.Minute, 8 * time.Minute, 15 * time.Minute, 30 * time.Minute}
	rows, err := parallel.Map(o.Workers, len(keeps), func(idx int) ([]string, error) {
		keep := keeps[idx]
		ap := platform.DefaultAWS()
		ap.KeepAlive = keep
		env := core.NewEnvWithParams(o.Seed, ap, platform.DefaultAzure())
		dep, err := wf.Deploy(env, core.AWSLambda)
		if err != nil {
			return nil, err
		}
		cold := 0
		var delays obs.Samples
		n := o.Iters
		env.K.Spawn("driver", func(p *sim.Proc) {
			defer env.Stop() // quiesce the idle Azure listeners
			for i := 0; i < n; i++ {
				stats, err := dep.Runner.Invoke(p, nil)
				if err != nil {
					return
				}
				if stats.ColdStart > 0 {
					cold++
					delays.Add(stats.ColdStart)
				}
				p.Sleep(10 * time.Minute)
			}
		})
		env.K.Run()
		return []string{fmtDur(keep), fmtPct(float64(cold) / float64(n)), fmtDur(delays.Median())}, nil
	})
	if err != nil {
		return nil, err
	}
	r.Table.Rows = append(r.Table.Rows, rows...)
	r.Notes = append(r.Notes, "keep-alive beyond the request interval eliminates cold starts entirely")
	return r, nil
}

// AblationMapConcurrency sweeps the AWS Map state's MaxConcurrency for
// the 40-worker video workload: the bounded fan-out the ASL forces a
// user to choose, against Azure's unbounded (but scheduler-throttled)
// fan-out.
func AblationMapConcurrency(o Options) (*Report, error) {
	r := &Report{ID: "ablation-mapconcurrency", Title: "AWS Map MaxConcurrency sweep (video, 40 chunks)"}
	r.Table.Header = []string{"MaxConcurrency", "median E2E"}
	concs := []int{1, 5, 10, 20, 0}
	rows, err := parallel.Map(o.Workers, len(concs), func(idx int) ([]string, error) {
		conc := concs[idx]
		wf := &videoproc.Workflow{Workers: 40, Spec: videoproc.DefaultSpec(), MapConcurrency: conc}
		opt := core.DefaultMeasureOptions()
		opt.Iters = o.VideoIters
		opt.Seed = o.Seed
		applyObs(o, &opt)
		s, err := core.Measure(wf, core.AWSStep, opt)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%d", conc)
		if conc == 0 {
			label = "unbounded"
		}
		return []string{label, fmtDur(s.E2E.Median())}, nil
	})
	if err != nil {
		return nil, err
	}
	r.Table.Rows = append(r.Table.Rows, rows...)
	r.Notes = append(r.Notes, "AWS fan-out latency is bounded by MaxConcurrency alone; there is no scale-controller penalty")
	return r, nil
}

// AblationEntityInference contrasts the two inference designs the
// paper discusses in §IV: running operations inside serialized entities
// versus fetching state with "get" and computing in stateless
// activities — Fig 9's Az-Dent vs Az-Dorch gap, isolated.
func AblationEntityInference(o Options) (*Report, error) {
	r, err := Fig9(o)
	if err != nil {
		return nil, err
	}
	r.ID = "ablation-entity-inference"
	r.Title = "Entity-op inference vs get-then-stateless-activity (paper §IV)"
	r.Notes = append(r.Notes,
		"Az-Dent runs feature engineering and prediction inside serialized entity operations; Az-Dorch reads state with 'get' and computes in activities")
	return r, nil
}

// Ablations lists the ablation experiments.
func Ablations() []Runner {
	return []Runner{
		{"ablation-memory", single(AblationMemory)},
		{"ablation-keepalive", single(AblationKeepAlive)},
		{"ablation-mapconcurrency", single(AblationMapConcurrency)},
		{"ablation-entity-inference", single(AblationEntityInference)},
		{"ablation-netherite", single(AblationNetherite)},
		{"reliability", single(Reliability)},
	}
}
