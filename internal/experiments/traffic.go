package experiments

import (
	"fmt"
	"time"

	"statebench/internal/core"
	"statebench/internal/parallel"
	"statebench/internal/traffic"
)

// This file holds the traffic experiment: open-loop arrival streams
// over a large tenant population against every registered provider
// that publishes a traffic profile (ProviderSpec.Traffic). Like
// crosscloud, the campaign list is registry-derived — a provider
// appears here by registering a profile, with no edit to this driver —
// and it is not part of the paper's output: run it with
// `statebench traffic` or as the `traffic` experiment ID.
//
// Where the closed-loop campaigns (core.Measure) send one request and
// wait, the open-loop engine keeps arrivals coming whether or not the
// platform keeps up, so cold-start amplification and scale-controller
// backlog become visible as tail latency rather than per-iteration
// means. All latency aggregates are streaming histograms; the report
// is byte-identical at any Workers setting and any kernel shard count.

// trafficShards is the kernel partition count used by the experiment's
// runs. Results are byte-identical at every value; this one just keeps
// the per-heap working set cache-sized at experiment scale.
const trafficShards = 8

// trafficProcesses builds the arrival-process grid for a mean rate.
// The burst/dwell and diurnal shapes are fixed so reports are
// comparable across providers and scales.
func trafficProcesses(rate float64, window time.Duration) []traffic.ArrivalProcess {
	return []traffic.ArrivalProcess{
		traffic.Poisson{Rate: rate},
		// Dwell-weighted mean = (rate/2·20s + 3·rate·5s)/25s = rate.
		&traffic.MMPP2{
			BaseRate: rate / 2, BurstRate: 3 * rate,
			BaseDwell: 20 * time.Second, BurstDwell: 5 * time.Second,
		},
		// One full "day" per window keeps the realized mean at rate.
		traffic.Diurnal{Base: rate, Amp: 0.6, Period: window},
	}
}

// TrafficSweep runs the arrival-process grid against every provider
// with a registered traffic profile and tabulates tail latency,
// cold-start rate, scheduling backlog, and tenant-level cost. Scale
// derives from o.Iters so -quick shrinks it like every other
// experiment: tenants = 200·Iters, mean rate = 40·Iters per second
// over a fixed two-minute window.
func TrafficSweep(o Options) (*Report, error) {
	tenants := 200 * o.Iters
	rate := 40 * float64(o.Iters)
	window := 2 * time.Minute

	type campaign struct {
		provider string
		cfg      traffic.Config
	}
	var campaigns []campaign
	for _, spec := range core.Providers() {
		if spec.Traffic == nil {
			continue
		}
		for _, proc := range trafficProcesses(rate, window) {
			campaigns = append(campaigns, campaign{
				provider: spec.Name,
				cfg: traffic.Config{
					Tenants:    tenants,
					Duration:   window,
					Process:    proc,
					Profile:    spec.Traffic(),
					Book:       spec.DefaultBook(),
					CodeSizeMB: 64,
					Shards:     trafficShards,
					// Campaign seeds derive from o.Seed and the grid
					// position alone, so Workers never changes results.
					Seed: o.Seed + uint64(len(campaigns)),
				},
			})
		}
	}

	r := &Report{
		ID: "traffic",
		Title: fmt.Sprintf("Open-loop traffic, %d tenants × %.0f req/s over %v (%d providers with profiles)",
			tenants, rate, window, len(campaigns)/3),
	}
	r.Table.Header = []string{
		"provider", "serving", "process", "arrivals", "cold",
		"p50", "p99", "p99.9", "sched p99", "peak backlog",
		"tenant cost p99", "total cost",
	}
	rows, err := parallel.Map(o.Workers, len(campaigns), func(i int) ([]string, error) {
		c := campaigns[i]
		res := traffic.Run(c.cfg)
		res.Cloud = c.provider
		if res.Completions != res.Arrivals {
			return nil, fmt.Errorf("traffic: %s/%s leaked %d invocations",
				c.provider, res.Process, res.Arrivals-res.Completions)
		}
		return []string{
			c.provider,
			res.Style.String(),
			res.Process,
			fmt.Sprintf("%d", res.Arrivals),
			fmtPct(res.ColdRate()),
			fmtDur(res.E2E.Median()),
			fmtDur(res.E2E.P99()),
			fmtDur(res.E2E.P999()),
			fmtDur(res.QueueWait.P999()),
			fmt.Sprintf("%d", res.PeakBacklog),
			fmtUSD(float64(res.TenantCost.P99()) / 1e9),
			fmtUSD(res.TotalBill.Total()),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	r.Table.Rows = append(r.Table.Rows, rows...)
	r.Notes = append(r.Notes,
		"open-loop: arrivals keep coming whether or not the platform keeps up, so cold starts and controller backlog surface as tail latency",
		"latency aggregates are streaming histograms (≤0.8% relative error); rows are byte-identical at any -parallel and kernel shard count",
		"campaign list is registry-derived: providers appear by publishing a traffic profile in their ProviderSpec")
	return r, nil
}
