package experiments

import (
	"strings"
	"testing"
	"time"
)

// tiny keeps experiment smoke tests fast.
func tiny() Options {
	return Options{Iters: 3, ColdHours: 3, VideoIters: 1, Fig14Target: 200, Seed: 42}
}

func TestTable1HasBothClouds(t *testing.T) {
	r := Table1()
	if len(r.Table.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Table.Rows))
	}
	out := r.String()
	if !strings.Contains(out, "AWS") || !strings.Contains(out, "Azure") {
		t.Fatal("missing cloud rows")
	}
}

func TestTable2MatchesPaperInventory(t *testing.T) {
	r, err := Table2(tiny())
	if err != nil {
		t.Fatal(err)
	}
	out := r.String()
	for _, want := range []string{"AWS-Step", "4 λ - 271.2 MB", "3 λ - 214.8 MB", "Az-Dent", "7 λ - 304.0 MB"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table2 missing %q:\n%s", want, out)
		}
	}
	// Az-Queue and Az-Dent have no video column entries (paper gaps).
	for _, row := range r.Table.Rows {
		if row[0] == "Az-Queue" && row[3] != "-" {
			t.Fatal("Az-Queue should have no video implementation")
		}
	}
}

func TestFig6ShapesHold(t *testing.T) {
	reports, err := Fig6(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 4 {
		t.Fatalf("reports = %d", len(reports))
	}
	for _, r := range reports {
		if len(r.Table.Rows) == 0 {
			t.Fatalf("%s empty", r.ID)
		}
	}
}

func TestFig9RatioNote(t *testing.T) {
	r, err := Fig9(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Notes) == 0 || !strings.Contains(r.Notes[0], "AWS-Step / Az-Dorch") {
		t.Fatalf("missing ratio note: %v", r.Notes)
	}
}

func TestFig10ColdStartOrdering(t *testing.T) {
	r, err := Fig10(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// Az-Queue row must show a bigger median than the durable rows.
	med := map[string]string{}
	for _, row := range r.Table.Rows {
		med[row[0]] = row[1]
	}
	parse := func(s string) time.Duration {
		d, err := time.ParseDuration(strings.ReplaceAll(s, "m", "m0s"))
		if err != nil {
			// FormatDuration emits e.g. "14.20s" or "1.5m"; fall back.
			t.Fatalf("cannot parse %q: %v", s, err)
		}
		return d
	}
	if parse(med["Az-Queue"]) <= parse(med["Az-Dorch"]) {
		t.Fatalf("Az-Queue median %s not above Az-Dorch %s", med["Az-Queue"], med["Az-Dorch"])
	}
}

func TestFig14CDF(t *testing.T) {
	r, err := Fig14(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Table.Rows) != 7 {
		t.Fatalf("cdf rows = %d", len(r.Table.Rows))
	}
	if !strings.Contains(r.Notes[0], ">=40s") {
		t.Fatalf("note = %v", r.Notes)
	}
}

func TestFig15IncludesIdleCharges(t *testing.T) {
	r, err := Fig15(tiny())
	if err != nil {
		t.Fatal(err)
	}
	var azShare string
	for _, row := range r.Table.Rows {
		if row[0] == "Az-Dorch" {
			azShare = row[4]
		}
	}
	if azShare == "" || azShare == "0.0%" {
		t.Fatalf("Az-Dorch stateful share = %q, idle polling missing", azShare)
	}
}

func TestRegistryAndFind(t *testing.T) {
	reg := Registry()
	if len(reg) != 13 {
		t.Fatalf("registry size = %d", len(reg))
	}
	if _, err := Find("fig12"); err != nil {
		t.Fatal(err)
	}
	if _, err := Find("fig99"); err == nil {
		t.Fatal("bogus experiment found")
	}
}
