package experiments

import (
	"testing"

	"statebench/internal/core"
	"statebench/internal/workloads/mlpipe"
	"statebench/internal/workloads/mltrain"
)

func TestReliabilityRecoversWithRetries(t *testing.T) {
	o := tiny()
	o.Iters = 8
	wf := mltrain.New(mlpipe.Small)
	r, err := ReliabilityFor(wf, []core.Impl{core.AWSLambda, core.AWSStep}, o, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Table.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(r.Table.Rows))
	}
	if len(r.Table.Header) != len(r.Table.Rows[0]) {
		t.Fatalf("header has %d columns, rows have %d", len(r.Table.Header), len(r.Table.Rows[0]))
	}
	lambda, step := r.Table.Rows[0], r.Table.Rows[1]
	if lambda[0] != "AWS-Lambda" || step[0] != "AWS-Step" {
		t.Fatalf("row order = %q, %q", lambda[0], step[0])
	}
	// At a 20% rate over 8 iterations faults are near-certain for the
	// 10-task Step campaign; its Retry policy must absorb all of them.
	if step[1] != "100.0%" {
		t.Fatalf("AWS-Step ok-rate = %s, want 100.0%% (Retry recovers injected task failures)", step[1])
	}
	if step[10] != "100.0%" {
		t.Fatalf("AWS-Step recovered = %s, want 100.0%%", step[10])
	}
	if step[3] == "0" {
		t.Fatal("AWS-Step shows zero retries under a 20% fault rate")
	}
	// The monolithic Lambda has no platform retry: any injected fault is
	// a lost run, so it can never beat the Step style's success rate.
	if lambda[1] == "100.0%" && lambda[2] != "0" {
		t.Fatalf("AWS-Lambda ok-rate = %s with %s faults injected; there is no retry path", lambda[1], lambda[2])
	}
}

func TestReliabilityDeterministic(t *testing.T) {
	o := tiny()
	a, err := Reliability(o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Reliability(o)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two reliability runs at the same seed differ")
	}
	if len(a.Table.Rows) != 6 {
		t.Fatalf("rows = %d, want all six styles", len(a.Table.Rows))
	}
}
