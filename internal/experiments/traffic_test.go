package experiments

import (
	"testing"
)

// trafficOpts is a small but non-degenerate sweep: 1000 tenants at
// 200 req/s over the fixed two-minute window, every registered
// provider, all three arrival processes.
func trafficOpts(workers int) Options {
	o := QuickOptions()
	o.Iters = 5
	o.Workers = workers
	return o
}

// TestTrafficWorkersInvariance is the experiment-level half of the
// determinism gate: the rendered traffic report is byte-identical at
// -parallel 1 and 8 (campaign seeds derive from Seed and grid position
// alone; each run's kernel is itself shard-invariant).
func TestTrafficWorkersInvariance(t *testing.T) {
	ref, err := TrafficSweep(trafficOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := TrafficSweep(trafficOpts(8))
	if err != nil {
		t.Fatal(err)
	}
	if ref.String() != got.String() {
		t.Fatalf("traffic report diverges across worker counts:\n--- workers=1\n%s\n--- workers=8\n%s", ref, got)
	}
	if len(ref.Table.Rows) == 0 || len(ref.Table.Rows)%3 != 0 {
		t.Fatalf("row count %d, want 3 processes per provider", len(ref.Table.Rows))
	}
}

// TestTrafficRegistered: the experiment is reachable by ID without
// touching the paper registry (goldens pin the default output).
func TestTrafficRegistered(t *testing.T) {
	if _, err := Find("traffic"); err != nil {
		t.Fatal(err)
	}
	for _, r := range Registry() {
		if r.ID == "traffic" {
			t.Fatal("traffic leaked into the paper registry")
		}
	}
}
