package experiments

import (
	"fmt"
	"time"

	"statebench/internal/chaos"
	"statebench/internal/core"
	"statebench/internal/obs/span"
	"statebench/internal/obs/tseries"
	"statebench/internal/parallel"
	"statebench/internal/traffic"
	"statebench/internal/workloads/mlpipe"
	"statebench/internal/workloads/mltrain"
	"statebench/internal/workloads/videoproc"
)

// This file holds the timeline experiment: three scenarios chosen to
// re-create the transient pathologies the paper reads off its figures —
// the Az-Queue scheduling delays behind Fig 8's queue-time bars, the
// repeated cold fan-outs behind Fig 13's orchestrator start delays, and
// scale-controller backlog under bursty open-loop load — each recorded
// into a virtual-time windowed series and run through the deterministic
// anomaly detector. The report is the anomaly log: which windows the
// rules flag, against what baseline, cross-linked to the span trees
// that evidence them. Like crosscloud and traffic it is not part of the
// paper's output: run it with the `timeline` experiment ID.

// timelineShards is the kernel partition count of the open-loop
// scenario; results are byte-identical at every value (the determinism
// test replays the scenario at 1 and 16).
const timelineShards = 8

// timelineScenario is one recorded run: a window series to detect
// over, the spans to cross-link (nil for span-free producers), and the
// scenario's detector tuning.
type timelineScenario struct {
	name   string
	series *tseries.Series
	spans  []span.Span
	cfg    tseries.DetectorConfig
}

// timelineMeasure runs one workflow campaign with windowed telemetry
// and tracing on, recording into the shared collector when the run has
// one (the -live path) or a private one otherwise.
func timelineMeasure(o Options, wf core.Workflow, impl core.Impl, tune func(*core.MeasureOptions)) (*core.Series, error) {
	opt := measureOpts(o)
	opt.Tracing = true
	if opt.Timeline == nil {
		opt.Timeline = tseries.NewCollector(0)
	}
	if tune != nil {
		tune(&opt)
	}
	return core.Measure(wf, impl, opt)
}

// Timeline records the three scenarios and tabulates every anomaly the
// detector flags. Scale derives from o.Iters / o.VideoIters so -quick
// shrinks it like every other experiment.
func Timeline(o Options) (*Report, error) {
	runs := []func(Options) (timelineScenario, error){
		timelineQueueScenario,
		timelineFanoutScenario,
		timelineBurstScenario,
	}
	scenarios, err := parallel.Map(o.Workers, len(runs), func(i int) (timelineScenario, error) {
		return runs[i](o)
	})
	if err != nil {
		return nil, err
	}

	r := &Report{
		ID:    "timeline",
		Title: "Windowed telemetry anomalies (1s virtual windows, deterministic detector)",
	}
	r.Table.Header = []string{"scenario", "rule", "window", "span", "value", "baseline", "traces", "detail"}
	for _, sc := range scenarios {
		anoms := tseries.Detect(sc.series, sc.cfg)
		tseries.LinkSpans(anoms, sc.spans, 3)
		for _, a := range anoms {
			r.Table.AddRow(
				sc.name,
				a.Rule,
				fmt.Sprintf("%d", a.Window),
				fmt.Sprintf("%d", a.Windows),
				fmt.Sprintf("%.2f", a.Value),
				fmt.Sprintf("%.2f", a.Baseline),
				fmt.Sprintf("%d", len(a.TraceIDs)),
				a.Detail,
			)
		}
		arr, comp, colds, faults := sc.series.Totals()
		r.Notes = append(r.Notes, fmt.Sprintf(
			"%s: %d windows, %d arrivals, %d completions, %d colds, %d faults",
			sc.name, sc.series.Len(), arr, comp, colds, faults))
	}
	r.Notes = append(r.Notes,
		"rules: cold-surge and sched-spike flag vs a 30-window trailing median; backlog-growth flags sustained queue-depth climbs; slo-burn flags windows burning >=10x error budget",
		"windows, anomalies, and trace links are byte-identical at any -parallel and kernel shard count")
	return r, nil
}

// timelineQueueScenario is the Fig 8 pathology: the large-dataset ML
// training workflow on Az-Queue under a deterministic fault schedule,
// whose queue hand-offs and redeliveries surface as scheduling-delay
// and fault windows.
func timelineQueueScenario(o Options) (timelineScenario, error) {
	s, err := timelineMeasure(o, mltrain.New(mlpipe.Large), core.AzQueue, func(m *core.MeasureOptions) {
		m.Chaos = chaos.DefaultPlan(DefaultFaultRate)
	})
	if err != nil {
		return timelineScenario{}, err
	}
	return timelineScenario{
		name:   "mltrain-large/Az-Queue",
		series: s.Timeline,
		spans:  s.Trace.Spans(),
		cfg:    tseries.DetectorConfig{},
	}, nil
}

// timelineFanoutScenario is the Fig 13 pathology: repeated cold video
// fan-outs on the Azure orchestrator. The 20-minute gap outlasts every
// idle timeout, so each iteration provisions the whole worker set cold
// — a cold-start storm against an idle trailing baseline.
func timelineFanoutScenario(o Options) (timelineScenario, error) {
	iters := o.VideoIters
	if iters < 2 {
		iters = 2
	}
	s, err := timelineMeasure(o, videoproc.New(20), core.AzDorch, func(m *core.MeasureOptions) {
		m.Iters = iters
		m.Warmup = 0
		m.Gap = 20 * time.Minute
	})
	if err != nil {
		return timelineScenario{}, err
	}
	return timelineScenario{
		name:   "video-20/Az-Dorch",
		series: s.Timeline,
		spans:  s.Trace.Spans(),
		cfg:    tseries.DetectorConfig{},
	}, nil
}

// timelineBurstScenario is the open-loop pathology: a bursty MMPP
// arrival stream over a tenant population on the Azure serving model,
// where burst onsets outrun the scale controller — backlog growth,
// scheduling spikes, and SLO burn during the ramp.
func timelineBurstScenario(o Options) (timelineScenario, error) {
	spec, ok := core.Provider(core.Azure)
	if !ok || spec.Traffic == nil {
		return timelineScenario{}, fmt.Errorf("timeline: Azure provider has no traffic profile")
	}
	rate := 20 * float64(o.Iters)
	tl := tseries.New(o.Timeline.Interval())
	cfg := traffic.Config{
		Tenants:  100 * o.Iters,
		Duration: 90 * time.Second,
		Process: &traffic.MMPP2{
			BaseRate: rate / 2, BurstRate: 3 * rate,
			BaseDwell: 20 * time.Second, BurstDwell: 5 * time.Second,
		},
		Profile:    spec.Traffic(),
		Book:       spec.DefaultBook(),
		CodeSizeMB: 64,
		Shards:     timelineShards,
		Seed:       o.Seed,
		Timeline:   tl,
	}
	traffic.Run(cfg)
	if o.Timeline != nil {
		o.Timeline.Merge(tl)
		o.Timeline.AddDone(0)
	}
	return timelineScenario{
		name:   "burst/Azure-traffic",
		series: tl,
		cfg:    tseries.DetectorConfig{SLOTarget: 2 * time.Second},
	}, nil
}
