package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestAblationMemorySweep(t *testing.T) {
	o := tiny()
	r, err := AblationMemory(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Table.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Table.Rows))
	}
	// More memory => lower latency but GB-s should grow at the top end
	// (billing on configured memory).
	first := r.Table.Rows[0]
	last := r.Table.Rows[len(r.Table.Rows)-1]
	fGBs, _ := strconv.ParseFloat(first[2], 64)
	lGBs, _ := strconv.ParseFloat(last[2], 64)
	if lGBs <= fGBs {
		t.Fatalf("3072MB GB-s %.2f not above 512MB %.2f", lGBs, fGBs)
	}
}

func TestAblationKeepAlive(t *testing.T) {
	o := tiny()
	o.Iters = 6
	r, err := AblationKeepAlive(o)
	if err != nil {
		t.Fatal(err)
	}
	// 2-minute keep-alive with 10-minute gaps: everything cold.
	if !strings.Contains(r.Table.Rows[0][1], "100") {
		t.Fatalf("short keep-alive cold fraction = %s, want 100%%", r.Table.Rows[0][1])
	}
	// 30-minute keep-alive: only the first request cold.
	lastRow := r.Table.Rows[len(r.Table.Rows)-1]
	if lastRow[1] == "100.0%" {
		t.Fatalf("long keep-alive still fully cold: %v", lastRow)
	}
}

func TestAblationMapConcurrency(t *testing.T) {
	o := tiny()
	r, err := AblationMapConcurrency(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Table.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Table.Rows))
	}
	if r.Table.Rows[len(r.Table.Rows)-1][0] != "unbounded" {
		t.Fatalf("last row = %v", r.Table.Rows[len(r.Table.Rows)-1])
	}
}

func TestRegistryWithAblations(t *testing.T) {
	if len(RegistryWithAblations()) != 24 {
		t.Fatalf("size = %d", len(RegistryWithAblations()))
	}
	if _, err := Find("ablation-memory"); err != nil {
		t.Fatal(err)
	}
	if _, err := Find("optimize"); err != nil {
		t.Fatal(err)
	}
	if _, err := Find("reliability"); err != nil {
		t.Fatal(err)
	}
	if _, err := Find("netherite"); err != nil {
		t.Fatal(err)
	}
}

func TestAblationNetherite(t *testing.T) {
	o := tiny()
	r, err := AblationNetherite(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Table.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Table.Rows))
	}
	if r.Table.Rows[0][0] == r.Table.Rows[1][0] {
		t.Fatal("duplicate rows")
	}
}
