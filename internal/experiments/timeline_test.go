package experiments

import (
	"bytes"
	"strings"
	"testing"

	"statebench/internal/obs/tseries"
)

func timelineRun(t *testing.T, workers int) (string, string) {
	t.Helper()
	o := tiny()
	o.Workers = workers
	c := tseries.NewCollector(0)
	o.Timeline = c
	r, err := Timeline(o)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := c.Snapshot()
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return r.String(), buf.String()
}

// TestTimelineWorkersInvariant is the campaign-level half of the
// windowed determinism gate: the rendered report AND the collector's
// merged per-window CSV are byte-identical at -parallel 1 and 8 (the
// scenarios merge commutatively into the shared collector).
func TestTimelineWorkersInvariant(t *testing.T) {
	rep1, csv1 := timelineRun(t, 1)
	rep8, csv8 := timelineRun(t, 8)
	if rep1 != rep8 {
		t.Fatalf("timeline report diverged across workers:\n%s\nvs\n%s", rep1, rep8)
	}
	if csv1 != csv8 {
		t.Fatal("collector CSV diverged across workers")
	}
	if len(strings.Split(strings.TrimSpace(csv1), "\n")) < 10 {
		t.Fatalf("suspiciously small merged timeline:\n%s", csv1)
	}
}

// The detector must re-find the paper's pathologies at tiny scale: the
// fan-out scenario's scheduling-delay spike (the Fig 13 controller-lag
// signature) and the burst scenario's cold-surge/backlog anomalies,
// each cross-linked to at least one trace.
func TestTimelineFlagsKnownPathologies(t *testing.T) {
	rep, _ := timelineRun(t, 0)
	if !strings.Contains(rep, tseries.RuleSchedSpike) {
		t.Fatalf("no sched-spike row in:\n%s", rep)
	}
	if !strings.Contains(rep, "cold-surge") {
		t.Fatalf("no cold-surge row in:\n%s", rep)
	}
	if !strings.Contains(rep, "video-20/Az-Dorch") || !strings.Contains(rep, "burst/Azure-traffic") {
		t.Fatalf("missing scenario rows in:\n%s", rep)
	}
}

// Timeline runs without a collector too (opt.Timeline nil): the
// scenarios fall back to a private collector and still report.
func TestTimelineWithoutCollector(t *testing.T) {
	r, err := Timeline(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Table.Rows) == 0 {
		t.Fatal("no rows without a collector")
	}
}
