package experiments

import (
	"fmt"

	"statebench/internal/core"
	"statebench/internal/obs"
	"statebench/internal/parallel"
	"statebench/internal/workloads/mlinfer"
	"statebench/internal/workloads/mlpipe"
	"statebench/internal/workloads/mltrain"
)

// azureImpls and awsImpls are the per-cloud style groups of Fig 6/11.
var (
	azureImpls = []core.Impl{core.AzFunc, core.AzQueue, core.AzDorch, core.AzDent}
	awsImpls   = []core.Impl{core.AWSLambda, core.AWSStep}
)

// trainSeries runs the ML training campaign for every style and both
// dataset sizes; the result feeds Fig 6, 7, 8, and 11. The two sizes
// fan out in parallel, and MeasureAll fans the styles under each.
func trainSeries(o Options) (map[mlpipe.DatasetSize]map[core.Impl]*core.Series, error) {
	sizes := []mlpipe.DatasetSize{mlpipe.Small, mlpipe.Large}
	results, err := parallel.Map(o.Workers, len(sizes), func(i int) (map[core.Impl]*core.Series, error) {
		return core.MeasureAll(mltrain.New(sizes[i]), measureOpts(o))
	})
	if err != nil {
		return nil, err
	}
	out := make(map[mlpipe.DatasetSize]map[core.Impl]*core.Series, len(sizes))
	for i, size := range sizes {
		out[size] = results[i]
	}
	return out, nil
}

// Fig6 reproduces Fig 6a–d: median and 99ile end-to-end latency of the
// ML training workflow on each cloud, for both dataset sizes.
func Fig6(o Options) ([]*Report, error) {
	series, err := trainSeries(o)
	if err != nil {
		return nil, err
	}
	mk := func(id, title string, impls []core.Impl, q float64) *Report {
		r := &Report{ID: id, Title: title}
		r.Table.Header = []string{"impl", "small", "large"}
		for _, impl := range impls {
			r.Table.AddRow(string(impl),
				fmtDur(series[mlpipe.Small][impl].E2E.Quantile(q)),
				fmtDur(series[mlpipe.Large][impl].E2E.Quantile(q)))
		}
		return r
	}
	// Pre-sort the shared sample sets so the fanned-out sub-report
	// builders perform pure reads (lazy quantile sorting would race).
	for _, bySize := range series {
		for _, s := range bySize {
			s.E2E.Sort()
		}
	}
	subs := []func() *Report{
		func() *Report { return mk("fig6a", "ML training median latency, Azure", azureImpls, 0.5) },
		func() *Report { return mk("fig6b", "ML training median latency, AWS", awsImpls, 0.5) },
		func() *Report { return mk("fig6c", "ML training 99ile latency, Azure", azureImpls, 0.99) },
		func() *Report { return mk("fig6d", "ML training 99ile latency, AWS", awsImpls, 0.99) },
	}
	return parallel.Map(o.Workers, len(subs), func(i int) (*Report, error) { return subs[i](), nil })
}

// Fig7 reproduces Fig 7: the CDF of end-to-end latency on the large
// dataset for the durable Azure styles vs AWS-Step.
func Fig7(o Options) (*Report, error) {
	wf := mltrain.New(mlpipe.Large)
	r := &Report{ID: "fig7", Title: "CDF of end-to-end latency, ML training (large dataset)"}
	r.Table.Header = []string{"fraction", string(core.AzDorch), string(core.AzDent), string(core.AWSStep)}
	impls := []core.Impl{core.AzDorch, core.AzDent, core.AWSStep}
	curves, err := parallel.Map(o.Workers, len(impls), func(i int) ([]obs.CDFPoint, error) {
		s, err := core.Measure(wf, impls[i], measureOpts(o))
		if err != nil {
			return nil, err
		}
		return s.E2E.CDF(11), nil
	})
	if err != nil {
		return nil, err
	}
	cdfs := map[core.Impl][]obs.CDFPoint{}
	for i, impl := range impls {
		cdfs[impl] = curves[i]
	}
	for i := 0; i < 11; i++ {
		r.Table.AddRow(
			fmt.Sprintf("%.1f", cdfs[core.AzDorch][i].Frac),
			fmtDur(cdfs[core.AzDorch][i].Value),
			fmtDur(cdfs[core.AzDent][i].Value),
			fmtDur(cdfs[core.AWSStep][i].Value))
	}
	r.Notes = append(r.Notes, "paper: AWS-Step CDF is sharp; Azure durable styles show a long tail")
	return r, nil
}

// Fig8 reproduces Fig 8: the 99ile latency breakdown (queue time vs
// execution time) of the Azure ML training styles on the large dataset.
func Fig8(o Options) (*Report, error) {
	wf := mltrain.New(mlpipe.Large)
	r := &Report{ID: "fig8", Title: "ML training 99ile latency breakdown (large dataset)"}
	r.Table.Header = []string{"impl", "queue time", "exec time"}
	breakdowns, err := parallel.Map(o.Workers, len(azureImpls), func(i int) (obs.Breakdown, error) {
		s, err := core.Measure(wf, azureImpls[i], measureOpts(o))
		if err != nil {
			return obs.Breakdown{}, err
		}
		return s.Breakdowns.AtQuantile(0.99), nil
	})
	if err != nil {
		return nil, err
	}
	for i, impl := range azureImpls {
		b := breakdowns[i]
		// The paper's "Queue Time" is the total delay of queue polling
		// and data transfer in the chain — trigger waits included.
		r.Table.AddRow(string(impl), fmtDur(b.QueueTime+b.ColdStart), fmtDur(b.ExecTime))
	}
	r.Notes = append(r.Notes,
		"paper: Az-Queue queue time ~30s; durable queue time <1s; durable exec time higher (replay)")
	return r, nil
}

// Fig9 reproduces Fig 9: end-to-end latency of the ML inference
// workflow (large dataset's trained model).
func Fig9(o Options) (*Report, error) {
	wf := mlinfer.New(mlpipe.Large)
	r := &Report{ID: "fig9", Title: "ML inference end-to-end latency"}
	r.Table.Header = []string{"impl", "median", "99ile"}
	series, err := core.MeasureAll(wf, measureOpts(o))
	if err != nil {
		return nil, err
	}
	meds := map[core.Impl]float64{}
	for _, impl := range wf.Impls() {
		s := series[impl]
		meds[impl] = float64(s.E2E.Median())
		r.Table.AddRow(string(impl), fmtDur(s.E2E.Median()), fmtDur(s.E2E.P99()))
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("AWS-Step / Az-Dorch = %.2fx (paper: ~2x); Az-Dent / Az-Dorch = %.2fx (paper: ~1.24x)",
			meds[core.AWSStep]/meds[core.AzDorch], meds[core.AzDent]/meds[core.AzDorch]))
	return r, nil
}

// Fig10 reproduces Fig 10: cold-start delay of each style, measured as
// the paper does (one request per hour over ColdHours hours).
func Fig10(o Options) (*Report, error) {
	wf := mltrain.New(mlpipe.Small)
	r := &Report{ID: "fig10", Title: "ML training cold-start delay (1 req/hour campaign)"}
	r.Table.Header = []string{"impl", "median", "p90", "max"}
	impls := []core.Impl{core.AzQueue, core.AWSStep, core.AWSLambda, core.AzDorch, core.AzDent}
	// The per-style cold-start sweeps are day-scale virtual campaigns;
	// fan them out one style per worker.
	perStyle, err := parallel.Map(o.Workers, len(impls), func(i int) (*obs.Samples, error) {
		return core.ColdStartCampaignCached(wf, impls[i], o.ColdHours, o.Seed, nil, o.payloadCache())
	})
	if err != nil {
		return nil, err
	}
	for i, impl := range impls {
		samples := perStyle[i]
		r.Table.AddRow(string(impl), fmtDur(samples.Median()), fmtDur(samples.Quantile(0.9)), fmtDur(samples.Max()))
	}
	r.Notes = append(r.Notes,
		"paper: Azure durable <2s, AWS-Step 3-5s, Az-Queue 10-20s")
	return r, nil
}

// Fig11 reproduces Fig 11a–d: the computation cost (GB-s) and the
// stateful transaction/transition cost share per run.
func Fig11(o Options) ([]*Report, error) {
	series, err := trainSeries(o)
	if err != nil {
		return nil, err
	}
	gbs := func(id, title string, impls []core.Impl) *Report {
		r := &Report{ID: id, Title: title}
		r.Table.Header = []string{"impl", "small GB-s", "large GB-s"}
		for _, impl := range impls {
			r.Table.AddRow(string(impl),
				fmt.Sprintf("%.2f", series[mlpipe.Small][impl].MeanGBs),
				fmt.Sprintf("%.2f", series[mlpipe.Large][impl].MeanGBs))
		}
		return r
	}
	share := func(id, title string, impls []core.Impl) *Report {
		r := &Report{ID: id, Title: title}
		r.Table.Header = []string{"impl", "small txns/run", "small share", "large txns/run", "large share", "large cost/run"}
		for _, impl := range impls {
			s, l := series[mlpipe.Small][impl], series[mlpipe.Large][impl]
			r.Table.AddRow(string(impl),
				fmt.Sprintf("%.0f", s.MeanTxns), fmtPct(s.MeanBill.StatefulShare()),
				fmt.Sprintf("%.0f", l.MeanTxns), fmtPct(l.MeanBill.StatefulShare()),
				fmtUSD(l.MeanBill.Total()))
		}
		return r
	}
	awsL := series[mlpipe.Large][core.AWSStep].MeanBill.Total()
	azDorchL := series[mlpipe.Large][core.AzDorch].MeanBill.Total()
	azDentL := series[mlpipe.Large][core.AzDent].MeanBill.Total()
	// The sub-reports only read the series' mean cost fields (no lazy
	// sample sorting), so they fan out without pre-sorting.
	subs := []func() *Report{
		func() *Report { return gbs("fig11a", "Azure computation cost (GB-s per run)", azureImpls) },
		func() *Report { return gbs("fig11b", "AWS computation cost (GB-s per run)", awsImpls) },
		func() *Report { return share("fig11c", "Azure stateful transaction cost", azureImpls) },
		func() *Report { return share("fig11d", "AWS stateful transition cost", awsImpls) },
	}
	reports, err := parallel.Map(o.Workers, len(subs), func(i int) (*Report, error) { return subs[i](), nil })
	if err != nil {
		return nil, err
	}
	reports[3].Notes = append(reports[3].Notes,
		fmt.Sprintf("AWS-Step total cost vs Az-Dorch: %.2fx, vs Az-Dent: %.2fx (paper headline: AWS ~1.89x Azure)",
			awsL/azDorchL, awsL/azDentL))
	return reports, nil
}
