package experiments

import (
	"fmt"

	"statebench/internal/chaos"
	"statebench/internal/core"
	"statebench/internal/parallel"
	"statebench/internal/workloads/mapreduce"
	"statebench/internal/workloads/mlinfer"
	"statebench/internal/workloads/mlpipe"
	"statebench/internal/workloads/mltrain"
	"statebench/internal/workloads/videoproc"
)

// This file holds the crosscloud experiment: every workload measured on
// every registered provider that hosts it — the paper's two clouds plus
// any provider registered from outside core (internal/gcp today). The
// driver never names a provider: the campaign list is derived from the
// registry (core.RegisteredImpls + core.SupportsImpl), so a fourth
// provider would appear in this table by registering itself, with no
// edit here. It is not part of the paper's output (AllImpls and the
// figure drivers are untouched); run it with `statebench crosscloud`.

// CrossCloud measures each workload across all registered providers
// under span tracing and a deterministic fault schedule, tabulating
// latency, cost, and recovery side by side.
func CrossCloud(o Options) (*Report, error) {
	rate := DefaultFaultRate
	// DefaultPlan already carries every provider's injection sites
	// (extra providers' rules are appended after the paper clouds', so
	// the AWS/Azure schedules match the reliability experiment's).
	plan := chaos.DefaultPlan(rate)

	type campaign struct {
		wf    core.Workflow
		impl  core.Impl
		iters int
	}
	var campaigns []campaign
	add := func(wf core.Workflow, iters int) {
		for _, impl := range core.RegisteredImpls() {
			if core.SupportsImpl(wf, impl) {
				campaigns = append(campaigns, campaign{wf, impl, iters})
			}
		}
	}
	add(mltrain.New(mlpipe.Small), o.Iters)
	add(mlinfer.New(mlpipe.Small), o.Iters)
	add(videoproc.New(10), o.VideoIters)
	// MapReduce is IR-only (no paper styles): every style it lands on
	// here was discovered from the lowerer registry via ExtraImpls.
	add(mapreduce.New(), o.Iters)

	r := &Report{
		ID: "crosscloud",
		Title: fmt.Sprintf("Cross-provider comparison, %d registered providers (chaos rate %.0f%%, spans on)",
			len(core.Providers()), rate*100),
	}
	r.Table.Header = []string{
		"workload", "provider", "style", "ok-rate", "p50", "p99",
		"cold p50", "exec p50 (spans)", "mean cost", "recovered",
	}
	rows, err := parallel.Map(o.Workers, len(campaigns), func(i int) ([]string, error) {
		c := campaigns[i]
		opt := measureOpts(o)
		opt.Iters = c.iters
		opt.Tracing = true
		opt.Chaos = plan
		s, err := core.Measure(c.wf, c.impl, opt)
		if err != nil {
			return nil, err
		}
		provider := "?"
		if info, ok := core.StyleOf(c.impl); ok {
			if spec, ok := core.Provider(info.Kind); ok {
				provider = spec.Name
			}
		}
		recovered := 1.0
		if s.Faults.Injected > 0 {
			recovered = 1 - float64(s.Errors)/float64(s.Faults.Injected)
			if recovered < 0 {
				recovered = 0
			}
		}
		sb := s.SpanBreakdowns.AtQuantile(0.5)
		return []string{
			c.wf.Name(),
			provider,
			string(c.impl),
			fmtPct(s.SuccessRate),
			fmtDur(s.E2E.Median()),
			fmtDur(s.E2E.P99()),
			fmtDur(s.Cold.Median()),
			fmtDur(sb.ExecTime),
			fmtUSD(s.MeanBill.Total()),
			fmtPct(recovered),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	r.Table.Rows = append(r.Table.Rows, rows...)
	r.Notes = append(r.Notes,
		"campaign list is registry-derived: a new provider appears here by calling core.RegisterProvider, with no edit to this driver",
		"every style runs through the same core.Measure path with span tracing and a seed-deterministic fault schedule")
	return r, nil
}
