package experiments

import (
	"fmt"
	"time"

	"statebench/internal/core"
	"statebench/internal/obs"
	"statebench/internal/parallel"
	"statebench/internal/platform"
	"statebench/internal/workloads/mlpipe"
	"statebench/internal/workloads/mltrain"
	"statebench/internal/workloads/videoproc"
)

// Table1 reproduces Table I: the serverless platform configuration.
func Table1() *Report {
	aws := platform.DefaultAWS()
	az := platform.DefaultAzure()
	r := &Report{ID: "table1", Title: "Serverless platform configuration"}
	r.Table.Header = []string{"", "RunTime", "Region", "Memory", "TimeLimit", "Payload"}
	r.Table.AddRow("AWS", "Py 3.7 (modeled)", "West US 2",
		"configurable (128 MB steps)", fmtDur(aws.TimeLimit), fmt.Sprintf("%dKB", aws.PayloadLimit/1024))
	r.Table.AddRow("Azure", "Py 3.7 (modeled)", "US East",
		fmt.Sprintf("%dMB cap, billed observed", az.MemoryLimitMB), fmtDur(az.TimeLimit),
		fmt.Sprintf("%dKB (durable)", az.DurablePayloadLimit/1024))
	return r
}

// Table2 reproduces Table II: the implementation inventory, taken from
// the live deployments' metadata.
func Table2(o Options) (*Report, error) {
	r := &Report{ID: "table2", Title: "Different implementations of the workloads"}
	r.Table.Header = []string{"Graph Reference", "Stateful", "ML #Func-Code", "Video #Func-Code"}
	mlWf := mltrain.New(mlpipe.Small)
	vidWf := videoproc.New(4)
	for _, impl := range core.AllImpls() {
		ml := "-"
		if core.SupportsImpl(mlWf, impl) {
			env := core.NewEnv(o.Seed)
			dep, err := mlWf.Deploy(env, impl)
			if err != nil {
				return nil, err
			}
			ml = fmt.Sprintf("%d λ - %.1f MB", dep.FuncCount, dep.CodeSizeMB)
		}
		vid := "-"
		if core.SupportsImpl(vidWf, impl) {
			env := core.NewEnv(o.Seed)
			dep, err := vidWf.Deploy(env, impl)
			if err != nil {
				return nil, err
			}
			vid = fmt.Sprintf("%d λ - %.1f MB", dep.FuncCount, dep.CodeSizeMB)
		}
		stateful := "No"
		if impl.Stateful() {
			stateful = "Yes"
		}
		r.Table.AddRow(string(impl), stateful, ml, vid)
	}
	return r, nil
}

// Table3 reproduces Table III: finish-time percentiles for the
// 80-worker video fan-out on Azure, per worker and for the whole
// fan-out (makespan).
func Table3(o Options) (*Report, error) {
	perWorker, makespans, err := videoFanoutFinishTimes(o, 80, o.VideoIters)
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "table3", Title: "Finish time for the large fan-out (80 workers, Az-Dorch)"}
	r.Table.Header = []string{"", "50%ile", "95%ile", "99%ile"}
	r.Table.AddRow("One worker", fmtDur(perWorker.Quantile(0.5)), fmtDur(perWorker.Quantile(0.95)), fmtDur(perWorker.Quantile(0.99)))
	r.Table.AddRow("All workers", fmtDur(makespans.Quantile(0.5)), fmtDur(makespans.Quantile(0.95)), fmtDur(makespans.Quantile(0.99)))
	r.Notes = append(r.Notes, fmt.Sprintf("%d per-worker observations over %d cold fan-outs", perWorker.Len(), makespans.Len()))
	return r, nil
}

// videoFanoutFinishTimes runs cold Az-Dorch fan-outs and collects each
// worker's finish time (relative to workflow start) and each run's
// makespan. Each fan-out is an isolated campaign with its own seed, so
// the iterations run across the worker pool; shards are combined in
// iteration order.
func videoFanoutFinishTimes(o Options, workers, iters int) (perWorker, makespans *obs.Samples, err error) {
	wf := videoproc.New(workers)
	shards, err := parallel.Map(o.Workers, iters, func(i int) ([]time.Duration, error) {
		// Fresh environment per run: the paper's large fan-outs hit
		// cold scale-out every time.
		opt := core.DefaultMeasureOptions()
		opt.Iters = 1
		opt.Warmup = 0
		opt.Seed = o.Seed + uint64(i)*1000
		opt.KeepEnv = true // finish times live in the Env's scratch space
		applyObs(o, &opt)
		s, err := core.Measure(wf, core.AzDorch, opt)
		if err != nil {
			return nil, err
		}
		return videoproc.WorkerFinishTimes(s.Env), nil
	})
	if err != nil {
		return nil, nil, err
	}
	perWorker = &obs.Samples{}
	makespans = &obs.Samples{}
	for _, finishes := range shards {
		perWorker.AddAll(finishes)
		var max int64
		for _, f := range finishes {
			if int64(f) > max {
				max = int64(f)
			}
		}
		makespans.Add(sdur(max))
	}
	return perWorker, makespans, nil
}
