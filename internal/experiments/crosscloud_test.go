package experiments

import (
	"strings"
	"testing"

	"statebench/internal/chaos"
	"statebench/internal/core"
	"statebench/internal/gcp"
	"statebench/internal/workloads/mlinfer"
	"statebench/internal/workloads/mlpipe"
	"statebench/internal/workloads/mltrain"
	"statebench/internal/workloads/videoproc"
)

// TestCrossCloudCoversEveryProvider is the registry seam's acceptance
// check: the crosscloud driver (which never imports a provider package)
// must produce rows for every registered provider, including GCP, all
// through the same core.Measure path with spans and chaos enabled.
func TestCrossCloudCoversEveryProvider(t *testing.T) {
	r, err := CrossCloud(tiny())
	if err != nil {
		t.Fatal(err)
	}
	providers := map[string]bool{}
	styles := map[string]bool{}
	for _, row := range r.Table.Rows {
		providers[row[1]] = true
		styles[row[2]] = true
	}
	for _, want := range []string{"AWS", "Azure", "GCP"} {
		if !providers[want] {
			t.Fatalf("crosscloud missing provider %s; got %v", want, providers)
		}
	}
	// GCP hosts ml-training and ml-inference as GCP-Wflow and the
	// training monolith as GCP-Func; video offers only the workflow.
	for _, want := range []string{"GCP-Func", "GCP-Wflow"} {
		if !styles[want] {
			t.Fatalf("crosscloud missing style %s; got %v", want, styles)
		}
	}
	for _, row := range r.Table.Rows {
		if row[3] == "" || row[4] == "" || row[8] == "" {
			t.Fatalf("incomplete row: %v", row)
		}
	}
	out := r.String()
	if !strings.Contains(out, "crosscloud") {
		t.Fatalf("report ID missing:\n%s", out)
	}
}

// TestGCPStylesRunAllWorkloadsThroughMeasure drives each workload's GCP
// styles individually through core.Measure with tracing and chaos on,
// asserting the measurements are live: spans recorded exec time, the
// workflow styles billed steps, and runs completed.
func TestGCPStylesRunAllWorkloadsThroughMeasure(t *testing.T) {
	cases := []struct {
		wf    core.Workflow
		impl  core.Impl
		iters int
	}{
		{mltrain.New(mlpipe.Small), gcp.Func, 3},
		{mltrain.New(mlpipe.Small), gcp.Wflow, 3},
		{mlinfer.New(mlpipe.Small), gcp.Wflow, 3},
		{videoproc.New(10), gcp.Wflow, 1},
	}
	for _, c := range cases {
		t.Run(c.wf.Name()+"/"+string(c.impl), func(t *testing.T) {
			if !core.SupportsImpl(c.wf, c.impl) {
				t.Fatalf("%s does not support %s", c.wf.Name(), c.impl)
			}
			o := tiny()
			opt := measureOpts(o)
			opt.Iters = c.iters
			opt.Tracing = true
			opt.Chaos = chaos.DefaultPlan(DefaultFaultRate)
			s, err := core.Measure(c.wf, c.impl, opt)
			if err != nil {
				t.Fatal(err)
			}
			if s.SuccessRate <= 0 {
				t.Fatalf("no successful runs (errors=%d)", s.Errors)
			}
			if s.E2E.Median() <= 0 {
				t.Fatal("median E2E is zero")
			}
			sb := s.SpanBreakdowns.AtQuantile(0.5)
			if sb.ExecTime <= 0 {
				t.Fatal("span breakdown recorded no exec time — tracer not wired")
			}
			if s.MeanBill.Total() <= 0 {
				t.Fatal("zero mean bill")
			}
			if c.impl == gcp.Wflow && s.MeanTxns <= 0 {
				t.Fatal("workflow style billed no steps")
			}
		})
	}
}
