package experiments

import (
	"fmt"
	"time"

	"statebench/internal/azure/durable"
	"statebench/internal/azure/functions"
	"statebench/internal/azure/netherite"
	"statebench/internal/chaos"
	"statebench/internal/core"
	"statebench/internal/obs"
	"statebench/internal/parallel"
	"statebench/internal/platform"
	"statebench/internal/sim"
	"statebench/internal/traffic"
	"statebench/internal/workloads/mlpipe"
	"statebench/internal/workloads/mltrain"
)

// This file holds the `netherite` experiment: the classic Azure Storage
// task hub measured head-to-head against the Netherite backend
// (internal/azure/netherite) behind the same Durable Task hub. Two
// sections: a closed-loop campaign at paper scale under the default
// fault schedule, and an open-loop Poisson arrival stream that exposes
// the queue-bound episode-throughput gap the closed-loop means hide.
// Like crosscloud, the closed-loop campaign list is registry-derived —
// the Netherite styles appear because internal/azure/netherite
// registered them, with no provider named here — and the experiment is
// not part of the paper's output: run it with `statebench netherite`.

// taskHubProviders are the providers whose stateful styles share the
// Durable Task hub and differ only in the Store behind it.
var taskHubProviders = map[string]bool{"Azure": true, "Netherite": true}

// NetheriteHubs produces the classic-vs-Netherite comparison reports.
func NetheriteHubs(o Options) ([]*Report, error) {
	closed, err := netheriteClosedLoop(o)
	if err != nil {
		return nil, err
	}
	open, err := netheriteOpenLoop(o)
	if err != nil {
		return nil, err
	}
	return []*Report{closed, open}, nil
}

// netheriteClosedLoop measures the ML training workload on every
// registered task-hub style under the default chaos plan (which since
// PR 8 carries the netherite commit-crash and transport-duplicate
// rules), contrasting latency, cost, storage transactions, and wasted
// speculative work.
func netheriteClosedLoop(o Options) (*Report, error) {
	rate := DefaultFaultRate
	plan := chaos.DefaultPlan(rate)
	wf := mltrain.New(mlpipe.Small)

	type campaign struct {
		impl     core.Impl
		provider string
	}
	var campaigns []campaign
	for _, impl := range core.RegisteredImpls() {
		info, ok := core.StyleOf(impl)
		if !ok || !info.Stateful || !core.SupportsImpl(wf, impl) {
			continue
		}
		spec, ok := core.Provider(info.Kind)
		if !ok || !taskHubProviders[spec.Name] {
			continue
		}
		campaigns = append(campaigns, campaign{impl, spec.Name})
	}

	r := &Report{
		ID: "netherite",
		Title: fmt.Sprintf("Task-hub backends: classic storage queues vs Netherite commit logs (ML training, chaos rate %.0f%%)",
			rate*100),
	}
	r.Table.Header = []string{
		"task hub", "style", "ok-rate", "p50", "p99",
		"mean cost", "stateful txns/run", "wasted specs", "recovered",
	}
	rows, err := parallel.Map(o.Workers, len(campaigns), func(i int) ([]string, error) {
		c := campaigns[i]
		opt := measureOpts(o)
		opt.Chaos = plan
		s, err := core.Measure(wf, c.impl, opt)
		if err != nil {
			return nil, err
		}
		recovered := 1.0
		if s.Faults.Injected > 0 {
			recovered = 1 - float64(s.Errors)/float64(s.Faults.Injected)
			if recovered < 0 {
				recovered = 0
			}
		}
		return []string{
			c.provider,
			string(c.impl),
			fmtPct(s.SuccessRate),
			fmtDur(s.E2E.Median()),
			fmtDur(s.E2E.P99()),
			fmtUSD(s.MeanBill.Total()),
			fmt.Sprintf("%.0f", s.MeanTxns),
			fmt.Sprintf("%d", s.Faults.WastedWork),
			fmtPct(recovered),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	r.Table.Rows = append(r.Table.Rows, rows...)
	r.Notes = append(r.Notes,
		"campaign list is registry-derived: the Netherite styles appear because internal/azure/netherite registered them, with no provider named in this driver",
		"stateful txns/run contrasts per-operation queue+table traffic against group commits (one billed append per non-empty commit window)",
		"wasted specs counts speculative history records discarded by chaos-injected commit-batch loss (statebench_chaos_wasted_speculation_total)")
	return r, nil
}

// netheriteOpenLoop drives a Poisson arrival stream of dense micro
// chains into each hub: open-loop, so episode-throughput limits surface
// as completion backlog instead of stretching a closed-loop mean. This
// is the regime where push delivery and group commits beat adaptive
// polling — the ≥5x episode-throughput target bench-netherite pins.
func netheriteOpenLoop(o Options) (*Report, error) {
	rate := float64(o.Iters)   // arrivals/sec
	window := 30 * time.Second // arrival window (virtual)
	const steps, perStep = 3, 20 * time.Millisecond

	type campaign struct {
		hub     string
		process traffic.ArrivalProcess
	}
	campaigns := []campaign{
		{"Azure", traffic.Poisson{Rate: rate}},
		{"Netherite", traffic.Poisson{Rate: rate}},
	}

	r := &Report{
		ID: "netherite-openloop",
		Title: fmt.Sprintf("Open-loop Poisson %.0f req/s × %v, %d-step micro-chains (%d ms/step), classic vs Netherite",
			rate, window, steps, perStep/time.Millisecond),
	}
	r.Table.Header = []string{
		"task hub", "process", "arrivals", "p50", "p99",
		"episodes", "storage txns", "txns/orch",
	}
	rows, err := parallel.Map(o.Workers, len(campaigns), func(i int) ([]string, error) {
		c := campaigns[i]
		// Same seed for every hub: both replay the identical arrival
		// schedule, so the rows differ only by task-hub behavior.
		res, err := runOpenLoopChains(o.Seed, c.hub == "Netherite", c.process, window, steps, perStep)
		if err != nil {
			return nil, err
		}
		return []string{
			c.hub,
			c.process.String(),
			fmt.Sprintf("%d", res.arrivals),
			fmtDur(res.e2e.Median()),
			fmtDur(res.e2e.P99()),
			fmt.Sprintf("%d", res.episodes),
			fmt.Sprintf("%d", res.txns),
			fmt.Sprintf("%.1f", float64(res.txns)/float64(res.arrivals)),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	r.Table.Rows = append(r.Table.Rows, rows...)
	r.Notes = append(r.Notes,
		"open-loop: arrivals keep coming whether or not the hub keeps up; a polling transport's dispatch latency compounds into tail backlog",
		"txns/orch is the paper's stateful-transaction cost per workflow — group commits amortize it across every orchestration active in the same 20 ms window")
	return r, nil
}

type openLoopResult struct {
	arrivals int
	episodes int64
	txns     int64
	e2e      obs.Samples
}

// runOpenLoopChains fires process-timed StartOrchestration calls at a
// hub for window, then drains every in-flight chain and reports
// completion latency and storage-transaction totals.
func runOpenLoopChains(seed uint64, useNetherite bool, process traffic.ArrivalProcess, window time.Duration, steps int, perStep time.Duration) (*openLoopResult, error) {
	k := sim.NewKernel(seed)
	params := platform.DefaultAzure()
	host := functions.NewHost(k, "openloop-app", params)
	var hub *durable.Hub
	if useNetherite {
		hub = durable.NewHubWithStore(k, host, "openloop-hub",
			netherite.NewStore(k, "openloop-hub", netherite.DefaultPartitions))
	} else {
		hub = durable.NewHub(k, host, "openloop-hub")
	}
	client := durable.NewClient(hub)

	if err := hub.RegisterActivity("step", 128, func(ctx *functions.Context, in []byte) ([]byte, error) {
		ctx.Busy(perStep)
		return in, nil
	}); err != nil {
		return nil, err
	}
	if err := hub.RegisterOrchestrator("chain", 128, func(ctx *durable.OrchestrationContext, input []byte) ([]byte, error) {
		v := input
		for i := 0; i < steps; i++ {
			out, err := ctx.CallActivity("step", v).Await()
			if err != nil {
				return nil, err
			}
			v = out
		}
		return v, nil
	}); err != nil {
		return nil, err
	}

	res := &openLoopResult{}
	var runErr error
	done := 0
	k.Spawn("arrivals", func(p *sim.Proc) {
		rng := k.Stream("openloop/arrivals")
		for {
			next := process.Next(rng, p.Now())
			if next > sim.Time(window) {
				break
			}
			p.Sleep(time.Duration(next - p.Now()))
			// Open loop: the start itself runs on its own proc, so hub
			// backpressure (instance saturation, submit latency) never
			// throttles the arrival schedule — it surfaces as latency.
			n := res.arrivals
			res.arrivals++
			k.Spawn(fmt.Sprintf("starter-%d", n), func(sp *sim.Proc) {
				hd, err := client.StartOrchestration(sp, "chain", []byte("x"))
				if err != nil {
					if runErr == nil {
						runErr = err
					}
					done++
					return
				}
				if _, err := hd.Wait(sp); err != nil && runErr == nil {
					runErr = err
				}
				res.e2e.Add(hd.E2E())
				done++
			})
		}
		// Drain: every started chain must complete before the hub stops.
		for done < res.arrivals {
			p.Sleep(time.Second)
		}
		host.Stop()
	})
	k.Run()
	if runErr != nil {
		return nil, runErr
	}
	res.episodes = hub.EpisodeCount
	res.txns = hub.StorageTransactions()
	return res, nil
}
