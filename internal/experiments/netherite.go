package experiments

import (
	"fmt"
	"time"

	"statebench/internal/azure/durable"
	"statebench/internal/azure/functions"
	"statebench/internal/obs"
	"statebench/internal/platform"
	"statebench/internal/sim"
)

// AblationNetherite quantifies the execution-model improvements the
// paper's related work attributes to Netherite (Burckhardt et al.):
// commit orchestration state to fast storage instead of per-event
// table writes, and poll aggressively — modeled as faster history
// replay, sub-100 ms poll ceilings, and cheap state I/O.
//
// The workload is a fine-grained 20-step activity chain (100 ms of
// compute per step): exactly the dense-workflow regime where the
// paper says Azure's execution model needs improving, because the
// framework overhead (queue hops, history round trips, replay)
// dominates the useful work.
func AblationNetherite(o Options) (*Report, error) {
	base := platform.DefaultAzure()

	fast := platform.DefaultAzure()
	fast.DurableMaxPoll = 50 * time.Millisecond
	fast.HistoryReplayPerEvent = 500 * time.Microsecond
	fast.EntityStateRTT = sim.Fixed{D: time.Millisecond}
	fast.EntityOpOverhead = sim.Fixed{D: 2 * time.Millisecond}

	r := &Report{ID: "ablation-netherite",
		Title: "Durable execution model vs a Netherite-style fast path (20-step micro-chain, 100 ms/step)"}
	r.Table.Header = []string{"execution model", "median E2E", "p99 E2E", "overhead vs pure compute"}
	const steps, perStep = 20, 100 * time.Millisecond
	pure := time.Duration(steps) * perStep
	var medians []time.Duration
	for _, cfg := range []struct {
		name   string
		params platform.AzureParams
	}{
		{"durable (paper-era DTFx)", base},
		{"netherite-style fast path", fast},
	} {
		e2e, err := runMicroChain(o, cfg.params, steps, perStep)
		if err != nil {
			return nil, err
		}
		med := e2e.Median()
		medians = append(medians, med)
		r.Table.AddRow(cfg.name, fmtDur(med), fmtDur(e2e.P99()),
			fmt.Sprintf("%.1fx", float64(med)/float64(pure)))
	}
	if len(medians) == 2 && medians[1] > 0 {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"fast path cuts median end-to-end latency by %.0f%% on dense workflows",
			(1-float64(medians[1])/float64(medians[0]))*100))
	}
	r.Notes = append(r.Notes,
		"paper §VI: Netherite 'introduces optimizations such as partitioning ... and committing the recovery logs into high performance devices'")
	return r, nil
}

// runMicroChain measures a dense sequential orchestration under the
// given Azure calibration.
func runMicroChain(o Options, zp platform.AzureParams, steps int, perStep time.Duration) (*obs.Samples, error) {
	k := sim.NewKernel(o.Seed)
	host := functions.NewHost(k, "micro", zp)
	hub := durable.NewHub(k, host, "micro")
	client := durable.NewClient(hub)

	if err := hub.RegisterActivity("step", 192, func(ctx *functions.Context, in []byte) ([]byte, error) {
		ctx.Busy(perStep)
		return in, nil
	}); err != nil {
		return nil, err
	}
	if err := hub.RegisterOrchestrator("chain", 150, func(ctx *durable.OrchestrationContext, input []byte) ([]byte, error) {
		v := input
		for i := 0; i < steps; i++ {
			out, err := ctx.CallActivity("step", v).Await()
			if err != nil {
				return nil, err
			}
			v = out
		}
		return v, nil
	}); err != nil {
		return nil, err
	}

	var e2e obs.Samples
	var runErr error
	iters := o.Iters
	k.Spawn("driver", func(p *sim.Proc) {
		defer host.Stop()
		for i := 0; i < iters; i++ {
			_, hd, err := client.Run(p, "chain", []byte("x"))
			if err != nil {
				runErr = err
				return
			}
			e2e.Add(hd.E2E())
			p.Sleep(30 * time.Second)
		}
	})
	k.Run()
	if runErr != nil {
		return nil, runErr
	}
	return &e2e, nil
}
