package azureflow

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"statebench/internal/azure/durable"
	"statebench/internal/azure/functions"
	"statebench/internal/cloud/blob"
	"statebench/internal/core"
	"statebench/internal/flow"
	"statebench/internal/sim"
)

// DurableTarget selects the task hub a durable lowering deploys onto.
// The classic Azure hub and the Netherite hub expose identical
// registration surfaces, so the same lowering serves both — only the
// target differs.
type DurableTarget struct {
	Hub    *durable.Hub
	Client *durable.Client
	Blob   *blob.Store
}

// ClassicTarget resolves the storage-backed task hub the paper's
// Az-Dorch / Az-Dent styles run on.
func ClassicTarget(env *core.Env) DurableTarget {
	return DurableTarget{Hub: env.Azure.Hub, Client: env.Azure.Client, Blob: env.Azure.Blob}
}

// durableLowerer compiles a Durable-class graph into orchestrator,
// activity, and entity registrations on a task hub, with a generic
// orchestrator interpreting the graph deterministically.
type durableLowerer struct {
	impl     core.Impl
	class    flow.Class
	variant  string
	provider string
	target   func(env *core.Env) DurableTarget
}

// NewDurableLowerer builds a durable lowering for one style. nethflow
// reuses it with the Netherite hub target and variant "n".
func NewDurableLowerer(impl core.Impl, class flow.Class, variant, provider string, target func(env *core.Env) DurableTarget) flow.Lowerer {
	return &durableLowerer{impl: impl, class: class, variant: variant, provider: provider, target: target}
}

func (l *durableLowerer) Impl() core.Impl   { return l.impl }
func (l *durableLowerer) Class() flow.Class { return l.class }
func (l *durableLowerer) Variant() string   { return l.variant }
func (l *durableLowerer) Caps() flow.Caps {
	return flow.Caps{PayloadBytes: payloadCapBytes, MaxTaskSeconds: maxTaskSeconds}
}

func (l *durableLowerer) Lower(env *core.Env, def *flow.Definition) (*core.Deployment, error) {
	g := def.Graphs[l.class]
	tgt := l.target(env)
	flow.ApplyPreloads(tgt.Blob, g)
	st, err := def.Bind(flow.Binding{
		Env: env, Blob: tgt.Blob, Impl: l.impl, Provider: l.provider, Class: l.class, Variant: l.variant,
	})
	if err != nil {
		return nil, err
	}
	rs := &flow.RunState{}
	if def.FinishScratchKey != "" {
		env.Scratch[def.FinishScratchKey] = &rs.Finishes
	}
	for _, decl := range g.Entities {
		if err := l.registerEntity(tgt, st, def, decl); err != nil {
			return nil, err
		}
	}
	seen := make(map[string]bool)
	for _, n := range g.Nodes {
		if err := l.registerWork(tgt, st, def, n, rs, seen); err != nil {
			return nil, err
		}
	}
	orch := def.MachineNameFor(g, l.provider)
	if err := tgt.Hub.RegisterOrchestrator(orch, g.OrchConsumedMemMB, func(ctx *durable.OrchestrationContext, input []byte) ([]byte, error) {
		return runGraph(ctx, g, st, input)
	}); err != nil {
		return nil, err
	}
	class := l.class
	return &core.Deployment{
		Runner: &durableRunner{
			client: tgt.Client,
			orch:   orch,
			entry:  func(run int64) []byte { return def.Entry(class, run) },
			rs:     rs,
		},
		FuncCount:  g.FuncCount,
		CodeSizeMB: g.DeployCodeSizeMB(l.provider),
	}, nil
}

// registerEntity installs one declared durable entity: declared ops
// dispatch to bound stages (the EntityContext is the stage's StateAct),
// plus the optional built-in state-read op, plus optional preloaded
// durable state on hubs that expose an instances table.
func (l *durableLowerer) registerEntity(tgt DurableTarget, st *flow.Stages, def *flow.Definition, decl flow.EntityDecl) error {
	stages := make(map[string]flow.StageFn, len(decl.Ops))
	for op, stage := range decl.Ops {
		fn, err := st.Task(stage)
		if err != nil {
			return err
		}
		stages[op] = fn
	}
	err := tgt.Hub.RegisterEntity(decl.Name, decl.ConsumedMemMB, func(ctx *durable.EntityContext, op string, input []byte) ([]byte, error) {
		if fn, ok := stages[op]; ok {
			return fn(ctx, input)
		}
		if op == decl.GetOp && decl.GetOp != "" {
			if decl.GetErr != "" && !ctx.HasState() {
				return nil, fmt.Errorf("%s", decl.GetErr)
			}
			return ctx.State(), nil
		}
		return nil, fmt.Errorf("%s: %s: unknown op %q", def.ErrPrefix, decl.Name, op)
	})
	if err != nil {
		return err
	}
	if decl.PreloadKey != "" {
		if tbl := tgt.Hub.InstancesTable(); tbl != nil {
			tbl.Preload("@"+decl.Name+"@"+decl.PreloadKey, "state", decl.PreloadState)
		}
	}
	return nil
}

// registerWork walks a node and installs every activity and
// sub-orchestrator it needs, in node order (entity calls and pure
// transforms register nothing). seen dedupes activities shared between
// nodes.
func (l *durableLowerer) registerWork(tgt DurableTarget, st *flow.Stages, def *flow.Definition, n *flow.Node, rs *flow.RunState, seen map[string]bool) error {
	switch n.Kind {
	case flow.KindTask:
		if n.Pure || n.Entity != "" || seen[n.Fn] {
			return nil
		}
		seen[n.Fn] = true
		stage, err := st.Task(n.Stage)
		if err != nil {
			return err
		}
		return tgt.Hub.RegisterActivity(n.Fn, n.ConsumedMemMB, func(ctx *functions.Context, input []byte) ([]byte, error) {
			return stage(&actCtx{Context: ctx, rs: rs}, input)
		})
	case flow.KindMap:
		return l.registerWork(tgt, st, def, n.Iter, rs, seen)
	case flow.KindParallel:
		for _, b := range n.Branches {
			if err := l.registerWork(tgt, st, def, b, rs, seen); err != nil {
				return err
			}
		}
		return nil
	case flow.KindSub:
		sub := n.SubGraph
		for _, sn := range sub.Nodes {
			if err := l.registerWork(tgt, st, def, sn, rs, seen); err != nil {
				return err
			}
		}
		return tgt.Hub.RegisterOrchestrator(sub.MachineName, sub.OrchConsumedMemMB, func(ctx *durable.OrchestrationContext, input []byte) ([]byte, error) {
			return runGraph(ctx, sub, st, input)
		})
	}
	return nil
}

// Program renders the deterministic registration plan: entities in
// declaration order (ops sorted), then activities and
// sub-orchestrators in node order, then the root orchestrator.
func (l *durableLowerer) Program(def *flow.Definition) (string, error) {
	g := def.Graphs[l.class]
	var sb strings.Builder
	for _, decl := range g.Entities {
		ops := make([]string, 0, len(decl.Ops))
		for op := range decl.Ops {
			ops = append(ops, op)
		}
		sort.Strings(ops)
		if decl.GetOp != "" {
			ops = append(ops, decl.GetOp)
		}
		fmt.Fprintf(&sb, "entity %s consumed=%dMB ops=[%s]\n", decl.Name, decl.ConsumedMemMB, strings.Join(ops, " "))
	}
	for _, n := range g.Nodes {
		programWork(&sb, n)
	}
	fmt.Fprintf(&sb, "orchestrator %s consumed=%dMB nodes=%d\n",
		def.MachineNameFor(g, l.provider), g.OrchConsumedMemMB, len(g.Nodes))
	return sb.String(), nil
}

func programWork(sb *strings.Builder, n *flow.Node) {
	switch n.Kind {
	case flow.KindTask:
		if n.Pure || n.Entity != "" {
			return
		}
		fmt.Fprintf(sb, "activity %s consumed=%dMB stage=%s\n", n.Fn, n.ConsumedMemMB, n.Stage)
	case flow.KindMap:
		programWork(sb, n.Iter)
	case flow.KindParallel:
		for _, b := range n.Branches {
			programWork(sb, b)
		}
	case flow.KindSub:
		for _, sn := range n.SubGraph.Nodes {
			programWork(sb, sn)
		}
		fmt.Fprintf(sb, "orchestrator %s consumed=%dMB nodes=%d\n",
			n.SubGraph.MachineName, n.SubGraph.OrchConsumedMemMB, len(n.SubGraph.Nodes))
	}
}

// actCtx wraps an activity's function context with the deployment's
// RunState so stages can record per-branch finish times.
type actCtx struct {
	*functions.Context
	rs *flow.RunState
}

// FlowRunState exposes the RunState to flow.RunStateOf.
func (c *actCtx) FlowRunState() *flow.RunState { return c.rs }

// issueTask starts one task-shaped node (activity, entity op, or
// sub-orchestrator) without awaiting it.
func issueTask(ctx *durable.OrchestrationContext, n *flow.Node, input []byte) *durable.Task {
	switch {
	case n.Kind == flow.KindSub:
		return ctx.CallSubOrchestrator(n.SubGraph.MachineName, input)
	case n.Entity != "":
		return ctx.CallEntity(durable.EntityID{Name: n.Entity, Key: n.EntityKey}, n.Op, input)
	}
	return ctx.CallActivity(n.Fn, input)
}

// runGraph interprets a durable graph inside an orchestrator: the same
// deterministic walk every durable workload hand-coded before the IR.
func runGraph(ctx *durable.OrchestrationContext, g *flow.Graph, st *flow.Stages, entry []byte) ([]byte, error) {
	cur := entry
	for name := g.Start; name != ""; {
		n := g.Node(name)
		in := flow.InputFor(n, cur, entry)
		switch n.Kind {
		case flow.KindTask, flow.KindSub:
			if n.Pure {
				stage, err := st.Task(n.Stage)
				if err != nil {
					return nil, err
				}
				out, err := stage(nil, in)
				if err != nil {
					return nil, err
				}
				cur = out
				break
			}
			out, err := issueTask(ctx, n, in).Await()
			if err != nil {
				return nil, err
			}
			cur = out
		case flow.KindMap:
			items, err := flow.Items(n, st, in)
			if err != nil {
				return nil, err
			}
			if len(items) > flow.MaxFanOut {
				return nil, fmt.Errorf("flow: %s: fan-out %d exceeds limit %d", n.Name, len(items), flow.MaxFanOut)
			}
			outs := make([][]byte, len(items))
			if n.Serial {
				for i, it := range items {
					out, err := issueTask(ctx, n.Iter, it).Await()
					if err != nil {
						return nil, err
					}
					outs[i] = out
				}
			} else {
				tasks := make([]*durable.Task, len(items))
				for i, it := range items {
					tasks[i] = issueTask(ctx, n.Iter, it)
				}
				outs, err = ctx.WaitAll(tasks...)
				if err != nil {
					return nil, err
				}
			}
			cur, err = flow.JoinOutputs(n, outs, cur)
			if err != nil {
				return nil, err
			}
		case flow.KindParallel:
			tasks := make([]*durable.Task, len(n.Branches))
			for i, b := range n.Branches {
				tasks[i] = issueTask(ctx, b, flow.InputFor(b, cur, entry))
			}
			outs, err := ctx.WaitAll(tasks...)
			if err != nil {
				return nil, err
			}
			cur, err = flow.JoinOutputs(n, outs, cur)
			if err != nil {
				return nil, err
			}
		case flow.KindChoice:
			next, err := flow.EvalChoice(n, in)
			if err != nil {
				return nil, err
			}
			name = next
			continue
		case flow.KindWait:
			if _, err := ctx.CreateTimer(time.Duration(n.WaitSeconds * float64(time.Second))).Await(); err != nil {
				return nil, err
			}
		}
		name = n.Next
	}
	return cur, nil
}

// durableRunner starts one orchestration per run and reads the paper's
// metrics off the client handle.
type durableRunner struct {
	client  *durable.Client
	orch    string
	entry   func(run int64) []byte
	rs      *flow.RunState
	nextRun int64
}

// Invoke implements core.Runner.
func (r *durableRunner) Invoke(p *sim.Proc, _ []byte) (core.RunStats, error) {
	r.nextRun++
	r.rs.CurStart = p.Now()
	out, hd, err := r.client.Run(p, r.orch, r.entry(r.nextRun))
	stats := core.RunStats{Output: out, Err: err}
	if hd != nil {
		stats.E2E = hd.E2E()
		stats.ColdStart = hd.ColdStart()
	}
	if hd == nil && err != nil {
		return stats, err
	}
	return stats, nil
}
