// Package azureflow lowers provider-neutral flow definitions to Azure:
// the Mono class becomes a single HTTP-triggered function, the Queue
// class becomes a hand-rolled storage-queue chain (HTTP-triggered head,
// queue-triggered tail), and the Durable classes become orchestrator /
// entity registrations on a task hub. The durable lowering is generic
// over the hub target, so the Netherite variant (nethflow) reuses it
// against a different store.
package azureflow

import (
	"fmt"
	"strings"
	"time"

	"statebench/internal/azure/functions"
	"statebench/internal/cloud/queue"
	"statebench/internal/core"
	"statebench/internal/flow"
	"statebench/internal/sim"
)

// providerName is the registered Azure provider display name.
const providerName = "Azure"

// azureCaps: Azure storage queues and Durable messages share the 64 KB
// payload cap the paper measures; the premium-plan execution ceiling
// is 1800 s.
const (
	payloadCapBytes = 64 * 1024
	maxTaskSeconds  = 1800
)

func init() {
	flow.RegisterLowerer(monoLowerer{})
	flow.RegisterLowerer(queueLowerer{})
	flow.RegisterLowerer(NewDurableLowerer(core.AzDorch, flow.DurableOrch, "", providerName, ClassicTarget))
	flow.RegisterLowerer(NewDurableLowerer(core.AzDent, flow.DurableEnt, "", providerName, ClassicTarget))
}

// --- Mono: single HTTP-triggered function (Az-Func) ---

type monoLowerer struct{}

func (monoLowerer) Impl() core.Impl   { return core.AzFunc }
func (monoLowerer) Class() flow.Class { return flow.Mono }
func (monoLowerer) Variant() string   { return "" }
func (monoLowerer) Caps() flow.Caps   { return flow.Caps{MaxTaskSeconds: maxTaskSeconds} }

func (monoLowerer) Lower(env *core.Env, def *flow.Definition) (*core.Deployment, error) {
	g := def.Graphs[flow.Mono]
	flow.ApplyPreloads(env.Azure.Blob, g)
	st, err := def.Bind(flow.Binding{
		Env: env, Blob: env.Azure.Blob, Impl: core.AzFunc, Provider: providerName, Class: flow.Mono,
	})
	if err != nil {
		return nil, err
	}
	n := g.Node(g.Start)
	stage, err := st.Task(n.Stage)
	if err != nil {
		return nil, err
	}
	if _, err := env.Azure.Host.Register(functions.Config{
		Name:          n.Fn,
		ConsumedMemMB: n.ConsumedMemMB,
		Handler: func(ctx *functions.Context, input []byte) ([]byte, error) {
			return stage(ctx, input)
		},
	}); err != nil {
		return nil, err
	}
	return &core.Deployment{
		Runner:     &azFuncRunner{env: env, fn: n.Fn},
		FuncCount:  g.FuncCount,
		CodeSizeMB: g.DeployCodeSizeMB(providerName),
	}, nil
}

func (monoLowerer) Program(def *flow.Definition) (string, error) {
	g := def.Graphs[flow.Mono]
	n := g.Node(g.Start)
	return fmt.Sprintf("function %s consumed=%dMB stage=%s (http)\n", n.Fn, n.ConsumedMemMB, n.Stage), nil
}

// azFuncRunner drives one HTTP-triggered Azure function.
type azFuncRunner struct {
	env *core.Env
	fn  string
}

// Invoke implements core.Runner.
func (r *azFuncRunner) Invoke(p *sim.Proc, _ []byte) (core.RunStats, error) {
	start := p.Now()
	res, err := r.env.Azure.Host.InvokeHTTP(p, r.fn, nil)
	if err != nil {
		return core.RunStats{}, err
	}
	cold := time.Duration(0)
	if res.Cold {
		cold = res.SchedDelay
	}
	return core.RunStats{
		E2E:       p.Now() - start,
		ColdStart: cold,
		ExecTime:  res.ExecTime,
		Output:    res.Output,
		Err:       res.Err,
	}, nil
}

// --- Queue: storage-queue chain (Az-Queue) ---

type queueLowerer struct{}

func (queueLowerer) Impl() core.Impl   { return core.AzQueue }
func (queueLowerer) Class() flow.Class { return flow.Queue }
func (queueLowerer) Variant() string   { return "" }
func (queueLowerer) Caps() flow.Caps {
	return flow.Caps{PayloadBytes: payloadCapBytes, MaxTaskSeconds: maxTaskSeconds}
}

// chainOf linearizes a queue graph: the Start node followed by its
// Next successors. Queue graphs are plain chains; anything else is a
// lowering error.
func chainOf(g *flow.Graph) ([]*flow.Node, error) {
	var chain []*flow.Node
	for name := g.Start; name != ""; {
		n := g.Node(name)
		if n.Kind != flow.KindTask {
			return nil, fmt.Errorf("azureflow: queue chain node %q: kind %s not lowerable to a queue trigger", n.Name, n.Kind)
		}
		chain = append(chain, n)
		name = n.Next
	}
	return chain, nil
}

func (queueLowerer) Lower(env *core.Env, def *flow.Definition) (*core.Deployment, error) {
	g := def.Graphs[flow.Queue]
	flow.ApplyPreloads(env.Azure.Blob, g)
	st, err := def.Bind(flow.Binding{
		Env: env, Blob: env.Azure.Blob, Impl: core.AzQueue, Provider: providerName, Class: flow.Queue,
	})
	if err != nil {
		return nil, err
	}
	chain, err := chainOf(g)
	if err != nil {
		return nil, err
	}
	d := &queueDeploy{
		env:    env,
		def:    def,
		headFn: chain[0].Fn,
		runs:   make(map[int64]*queueRun),
	}
	// Create every queue before any registration (the order the legacy
	// deployments used).
	queues := make([]*queue.Queue, len(chain))
	for i, n := range chain {
		if n.QueueName != "" {
			queues[i] = env.Azure.NewQueue(n.QueueName)
		}
	}
	host := env.Azure.Host
	for i, n := range chain {
		stage, err := st.Task(n.Stage)
		if err != nil {
			return nil, err
		}
		var next *queue.Queue
		if i+1 < len(chain) {
			next = queues[i+1]
		}
		h := d.wrap(stage, next, i == 0, i == 1)
		if _, err := host.Register(functions.Config{Name: n.Fn, ConsumedMemMB: n.ConsumedMemMB, Handler: h}); err != nil {
			return nil, err
		}
		if queues[i] != nil {
			if err := host.QueueTrigger(queues[i], n.Fn); err != nil {
				return nil, err
			}
		}
	}
	return &core.Deployment{
		Runner:     d,
		FuncCount:  g.FuncCount,
		CodeSizeMB: g.DeployCodeSizeMB(providerName),
	}, nil
}

func (queueLowerer) Program(def *flow.Definition) (string, error) {
	g := def.Graphs[flow.Queue]
	chain, err := chainOf(g)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	for i, n := range chain {
		trigger := "http"
		if n.QueueName != "" {
			trigger = "queue " + n.QueueName
		}
		fmt.Fprintf(&sb, "function %s consumed=%dMB stage=%s (%s)", n.Fn, n.ConsumedMemMB, n.Stage, trigger)
		if i+1 < len(chain) {
			fmt.Fprintf(&sb, " -> %s", chain[i+1].QueueName)
		}
		sb.WriteByte('\n')
	}
	return sb.String(), nil
}

// queueRun tracks one in-flight chained run.
type queueRun struct {
	start      sim.Time
	enqueuedAt sim.Time // when the head handed off to the first queue
	firstExec  sim.Time // when the first queue-triggered stage began
	haveFirst  bool
	done       *sim.Future[[]byte]
}

// queueDeploy is the queue-chained deployment state.
type queueDeploy struct {
	env    *core.Env
	def    *flow.Definition
	headFn string

	nextRun int64
	runs    map[int64]*queueRun
}

func (d *queueDeploy) track(run int64) *queueRun { return d.runs[run] }

func (d *queueDeploy) noteFirst(run int64, now sim.Time) {
	if t := d.runs[run]; t != nil && !t.haveFirst {
		t.haveFirst = true
		t.firstExec = now
	}
}

// wrap adapts a stage to its position in the chain: the head records
// the handoff time and enqueues, the first queue-triggered stage marks
// the paper's Az-Queue cold-start point, middle stages enqueue, and the
// tail completes the run's future (idempotently, for duplicated queue
// messages under chaos).
func (d *queueDeploy) wrap(stage flow.StageFn, next *queue.Queue, head, first bool) functions.Handler {
	return func(ctx *functions.Context, input []byte) ([]byte, error) {
		if first {
			d.noteFirst(d.def.RunIDOf(input), ctx.Proc().Now())
		}
		out, err := stage(ctx, input)
		if err != nil {
			return nil, err
		}
		p := ctx.Proc()
		if next != nil {
			if head {
				if t := d.track(d.def.RunIDOf(input)); t != nil {
					t.enqueuedAt = p.Now()
				}
			}
			return nil, next.Enqueue(p, out)
		}
		if t := d.track(d.def.RunIDOf(input)); t != nil && !t.done.Done() {
			t.done.Complete(out, nil)
		}
		return nil, nil
	}
}

// Invoke implements core.Runner: trigger the head over HTTP, await the
// completion signalled by the tail. The paper measures this style from
// the trigger timestamp until the last function finishes.
func (d *queueDeploy) Invoke(p *sim.Proc, _ []byte) (core.RunStats, error) {
	d.nextRun++
	run := d.nextRun
	t := &queueRun{start: p.Now(), done: sim.NewFuture[[]byte](d.env.K)}
	d.runs[run] = t
	if _, err := d.env.Azure.Host.InvokeHTTPAsync(p, d.headFn, d.def.Entry(flow.Queue, run)); err != nil {
		return core.RunStats{}, err
	}
	out, err := t.done.Await(p)
	delete(d.runs, run)
	if err != nil {
		return core.RunStats{}, err
	}
	stats := core.RunStats{E2E: p.Now() - t.start, Output: out}
	if !t.haveFirst {
		return stats, fmt.Errorf("%s: queue chain never started", d.def.ErrPrefix)
	}
	// The paper's Az-Queue cold-start metric is the wait of the first
	// queue-triggered stage ("queuing of requests on a static pool of
	// containers"): time from handoff into the queue to execution.
	stats.ColdStart = t.firstExec - t.enqueuedAt
	return stats, nil
}
