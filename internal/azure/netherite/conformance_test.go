package netherite_test

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"statebench/internal/azure/durable"
	"statebench/internal/azure/functions"
	"statebench/internal/azure/netherite"
	"statebench/internal/sim"
)

// scenario is one Durable workload run identically against the classic
// and Netherite task hubs. The conformance test asserts both hubs
// produce the same orchestration output and the same final entity
// state: the store seam may change latency and billing, never results.
type scenario struct {
	name     string
	register func(t *testing.T, hub *durable.Hub)
	run      func(t *testing.T, p *sim.Proc, c *durable.Client) []byte
	want     string
	// entity, when set, is read back after run; its final state must
	// match wantState and agree across hubs.
	entity    *durable.EntityID
	wantState string
}

func mustRegActivity(t *testing.T, hub *durable.Hub, name string, fn func(ctx *functions.Context, in []byte) ([]byte, error)) {
	t.Helper()
	if err := hub.RegisterActivity(name, 128, fn); err != nil {
		t.Fatal(err)
	}
}

func mustRegOrch(t *testing.T, hub *durable.Hub, name string, fn func(ctx *durable.OrchestrationContext, input []byte) ([]byte, error)) {
	t.Helper()
	if err := hub.RegisterOrchestrator(name, 128, fn); err != nil {
		t.Fatal(err)
	}
}

func mustRegEntity(t *testing.T, hub *durable.Hub, name string, fn func(ctx *durable.EntityContext, op string, input []byte) ([]byte, error)) {
	t.Helper()
	if err := hub.RegisterEntity(name, 128, fn); err != nil {
		t.Fatal(err)
	}
}

// runOrch is the common "start, await, check status" driver.
func runOrch(name string, input []byte) func(t *testing.T, p *sim.Proc, c *durable.Client) []byte {
	return func(t *testing.T, p *sim.Proc, c *durable.Client) []byte {
		out, hd, err := c.Run(p, name, input)
		if err != nil {
			t.Errorf("run %s: %v", name, err)
			return nil
		}
		if hd.Status() != durable.StatusCompleted {
			t.Errorf("%s status = %s, want Completed", name, hd.Status())
		}
		return out
	}
}

func registerAdd1(t *testing.T, hub *durable.Hub) {
	mustRegActivity(t, hub, "add1", func(ctx *functions.Context, in []byte) ([]byte, error) {
		ctx.Busy(50 * time.Millisecond)
		var n int
		if err := json.Unmarshal(in, &n); err != nil {
			return nil, err
		}
		return json.Marshal(n + 1)
	})
}

func registerCounter(t *testing.T, hub *durable.Hub) {
	mustRegEntity(t, hub, "Counter", func(ctx *durable.EntityContext, op string, input []byte) ([]byte, error) {
		var n int
		if ctx.HasState() {
			if err := json.Unmarshal(ctx.State(), &n); err != nil {
				return nil, err
			}
		}
		switch op {
		case "add":
			var d int
			if err := json.Unmarshal(input, &d); err != nil {
				return nil, err
			}
			n += d
			s, _ := json.Marshal(n)
			ctx.SetState(s)
			return nil, nil
		case "get":
			return json.Marshal(n)
		}
		return nil, fmt.Errorf("unknown op %q", op)
	})
}

// conformanceScenarios is the shared table: every Durable feature the
// repo's scenarios exercise, once per hub.
func conformanceScenarios() []scenario {
	return []scenario{
		{
			name: "activity-chain",
			register: func(t *testing.T, hub *durable.Hub) {
				registerAdd1(t, hub)
				mustRegOrch(t, hub, "chain", func(ctx *durable.OrchestrationContext, input []byte) ([]byte, error) {
					v := input
					for i := 0; i < 3; i++ {
						out, err := ctx.CallActivity("add1", v).Await()
						if err != nil {
							return nil, err
						}
						v = out
					}
					return v, nil
				})
			},
			run:  runOrch("chain", []byte("0")),
			want: "3",
		},
		{
			name: "fan-out-fan-in",
			register: func(t *testing.T, hub *durable.Hub) {
				mustRegActivity(t, hub, "work", func(ctx *functions.Context, in []byte) ([]byte, error) {
					ctx.Busy(100 * time.Millisecond)
					return in, nil
				})
				mustRegOrch(t, hub, "fan", func(ctx *durable.OrchestrationContext, input []byte) ([]byte, error) {
					var tasks []*durable.Task
					for i := 0; i < 8; i++ {
						tasks = append(tasks, ctx.CallActivity("work", []byte(fmt.Sprintf("%d", i))))
					}
					outs, err := ctx.WaitAll(tasks...)
					if err != nil {
						return nil, err
					}
					return []byte(fmt.Sprintf("%d", len(outs))), nil
				})
			},
			run:  runOrch("fan", nil),
			want: "8",
		},
		{
			name: "wait-any-vs-timer",
			register: func(t *testing.T, hub *durable.Hub) {
				mustRegActivity(t, hub, "work", func(ctx *functions.Context, in []byte) ([]byte, error) {
					ctx.Busy(100 * time.Millisecond)
					return []byte("work"), nil
				})
				mustRegOrch(t, hub, "withTimeout", func(ctx *durable.OrchestrationContext, input []byte) ([]byte, error) {
					work := ctx.CallActivity("work", nil)
					timeout := ctx.CreateTimer(10 * time.Minute)
					if ctx.WaitAny(work, timeout) == 1 {
						return []byte("timeout"), nil
					}
					return work.Await()
				})
			},
			run:  runOrch("withTimeout", nil),
			want: "work",
		},
		{
			name: "durable-timer",
			register: func(t *testing.T, hub *durable.Hub) {
				mustRegOrch(t, hub, "sleepy", func(ctx *durable.OrchestrationContext, input []byte) ([]byte, error) {
					if _, err := ctx.CreateTimer(time.Minute).Await(); err != nil {
						return nil, err
					}
					return []byte("woke"), nil
				})
			},
			run:  runOrch("sleepy", nil),
			want: "woke",
		},
		{
			name: "external-event",
			register: func(t *testing.T, hub *durable.Hub) {
				mustRegOrch(t, hub, "approval", func(ctx *durable.OrchestrationContext, input []byte) ([]byte, error) {
					decision, err := ctx.WaitForExternalEvent("Approve").Await()
					if err != nil {
						return nil, err
					}
					return append([]byte("decided:"), decision...), nil
				})
			},
			run: func(t *testing.T, p *sim.Proc, c *durable.Client) []byte {
				hd, err := c.StartOrchestration(p, "approval", nil)
				if err != nil {
					t.Errorf("start: %v", err)
					return nil
				}
				p.Sleep(time.Minute)
				if err := c.RaiseEvent(p, hd.ID, "Approve", []byte("yes")); err != nil {
					t.Errorf("raise: %v", err)
					return nil
				}
				out, err := hd.Wait(p)
				if err != nil {
					t.Errorf("wait: %v", err)
				}
				return out
			},
			want: "decided:yes",
		},
		{
			name: "entity-signals",
			register: func(t *testing.T, hub *durable.Hub) {
				mustRegEntity(t, hub, "Log", func(ctx *durable.EntityContext, op string, input []byte) ([]byte, error) {
					ctx.SetState(append(ctx.State(), input...))
					return nil, nil
				})
			},
			run: func(t *testing.T, p *sim.Proc, c *durable.Client) []byte {
				id := durable.EntityID{Name: "Log", Key: "l"}
				for _, s := range []string{"x", "y"} {
					if err := c.SignalEntity(p, id, "append", []byte(s)); err != nil {
						t.Errorf("signal: %v", err)
						return nil
					}
				}
				p.Sleep(10 * time.Second)
				state, ok := c.ReadEntityState(p, id)
				if !ok {
					t.Error("entity has no state")
				}
				return state
			},
			want:      "xy",
			entity:    &durable.EntityID{Name: "Log", Key: "l"},
			wantState: "xy",
		},
		{
			name: "orchestrated-entity",
			register: func(t *testing.T, hub *durable.Hub) {
				registerCounter(t, hub)
				mustRegOrch(t, hub, "useCounter", func(ctx *durable.OrchestrationContext, input []byte) ([]byte, error) {
					id := durable.EntityID{Name: "Counter", Key: "c1"}
					if _, err := ctx.CallEntity(id, "add", []byte("5")).Await(); err != nil {
						return nil, err
					}
					if _, err := ctx.CallEntity(id, "add", []byte("7")).Await(); err != nil {
						return nil, err
					}
					return ctx.CallEntity(id, "get", nil).Await()
				})
			},
			run:       runOrch("useCounter", nil),
			want:      "12",
			entity:    &durable.EntityID{Name: "Counter", Key: "c1"},
			wantState: "12",
		},
		{
			name: "sub-orchestration",
			register: func(t *testing.T, hub *durable.Hub) {
				mustRegActivity(t, hub, "leaf", func(ctx *functions.Context, in []byte) ([]byte, error) {
					ctx.Busy(10 * time.Millisecond)
					return []byte(strings.ToUpper(string(in))), nil
				})
				mustRegOrch(t, hub, "child", func(ctx *durable.OrchestrationContext, input []byte) ([]byte, error) {
					return ctx.CallActivity("leaf", input).Await()
				})
				mustRegOrch(t, hub, "parent", func(ctx *durable.OrchestrationContext, input []byte) ([]byte, error) {
					a := ctx.CallSubOrchestrator("child", []byte("ab"))
					b := ctx.CallSubOrchestrator("child", []byte("cd"))
					outs, err := ctx.WaitAll(a, b)
					if err != nil {
						return nil, err
					}
					return []byte(string(outs[0]) + string(outs[1])), nil
				})
			},
			run:  runOrch("parent", nil),
			want: "ABCD",
		},
		{
			name: "continue-as-new",
			register: func(t *testing.T, hub *durable.Hub) {
				mustRegActivity(t, hub, "tick", func(ctx *functions.Context, in []byte) ([]byte, error) {
					ctx.Busy(10 * time.Millisecond)
					return in, nil
				})
				mustRegOrch(t, hub, "countdown", func(ctx *durable.OrchestrationContext, input []byte) ([]byte, error) {
					var n int
					if err := json.Unmarshal(input, &n); err != nil {
						return nil, err
					}
					if _, err := ctx.CallActivity("tick", input).Await(); err != nil {
						return nil, err
					}
					if n > 0 {
						next, _ := json.Marshal(n - 1)
						ctx.ContinueAsNew(next)
					}
					return []byte("done"), nil
				})
			},
			run:  runOrch("countdown", []byte("3")),
			want: "done",
		},
	}
}

// runScenario executes sc on e and returns the orchestration output and
// (if the scenario tracks one) the final entity state.
func runScenario(t *testing.T, e *env, sc scenario) (out, state []byte) {
	t.Helper()
	sc.register(t, e.hub)
	e.drive(func(p *sim.Proc) {
		out = sc.run(t, p, e.client)
		if sc.entity != nil {
			st, ok := e.client.ReadEntityState(p, *sc.entity)
			if !ok {
				t.Errorf("entity %s/%s has no final state", sc.entity.Name, sc.entity.Key)
			}
			state = st
		}
	})
	return out, state
}

// TestConformanceAcrossHubs runs every scenario against the classic
// storage task hub and against Netherite hubs at one and at the default
// partition count, asserting identical orchestration outputs and final
// entity state everywhere.
func TestConformanceAcrossHubs(t *testing.T) {
	for _, sc := range conformanceScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			cOut, cState := runScenario(t, classicEnv(1, nil), sc)
			if string(cOut) != sc.want {
				t.Fatalf("classic output = %q, want %q", cOut, sc.want)
			}
			for _, parts := range []int{1, netherite.DefaultPartitions} {
				ne := netheriteEnv(1, parts, nil)
				nOut, nState := runScenario(t, ne, sc)
				if string(nOut) != string(cOut) {
					t.Fatalf("netherite(p=%d) output = %q, classic = %q: hubs diverged", parts, nOut, cOut)
				}
				if sc.entity != nil {
					if string(nState) != sc.wantState {
						t.Fatalf("netherite(p=%d) entity state = %q, want %q", parts, nState, sc.wantState)
					}
					if string(nState) != string(cState) {
						t.Fatalf("entity state diverged: netherite(p=%d) %q vs classic %q", parts, nState, cState)
					}
				}
				if ne.store.Transactions() == 0 {
					t.Fatalf("netherite(p=%d) billed no group commits; the store was bypassed", parts)
				}
			}
		})
	}
}
