package netherite_test

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"statebench/internal/azure/durable"
	"statebench/internal/chaos"
	"statebench/internal/sim"
)

// runTranscript runs a mixed Durable workload (activity chain plus
// entity signal folds) on a Netherite hub and renders everything
// observable — outputs, handle timings, billed commits, log and chaos
// accounting — into one string. Byte-equality of transcripts is the
// determinism property the tier-2 gate enforces.
func runTranscript(t *testing.T, seed uint64, partitions int, plan *chaos.Plan) string {
	t.Helper()
	e := netheriteEnv(seed, partitions, plan)
	registerChain(t, e.hub)
	registerCounter(t, e.hub)

	var b strings.Builder
	e.drive(func(p *sim.Proc) {
		out, hd, err := e.client.Run(p, "chain", []byte("0"))
		if err != nil {
			t.Errorf("chain: %v", err)
			return
		}
		fmt.Fprintf(&b, "chain out=%s status=%s cold=%v e2e=%v\n", out, hd.Status(), hd.ColdStart(), hd.E2E())

		id := durable.EntityID{Name: "Counter", Key: "c1"}
		for _, v := range []int{5, 7, 11} {
			in, _ := json.Marshal(v)
			if err := e.client.SignalEntity(p, id, "add", in); err != nil {
				t.Errorf("signal: %v", err)
				return
			}
			p.Sleep(50 * time.Millisecond)
		}
		p.Sleep(2 * time.Minute) // past any chaos redelivery window
		state, ok := e.client.ReadEntityState(p, id)
		fmt.Fprintf(&b, "entity state=%s ok=%v now=%v\n", state, ok, p.Now())
	})

	fmt.Fprintf(&b, "store txns=%d appended=%d lost=%d droppedDup=%d\n",
		e.store.Transactions(), e.store.AppendedRecords(), e.store.LostRecords(), e.store.DroppedDuplicates())
	var total int64
	for _, n := range e.store.PartitionRecords() {
		total += n
	}
	fmt.Fprintf(&b, "log total=%d\n", total)
	if e.inj != nil {
		st := e.inj.Stats()
		fmt.Fprintf(&b, "chaos injected=%d crashes=%d dups=%d wasted=%d recovery=%v\n",
			st.Injected, st.Crashes, st.Duplicates, st.WastedWork, st.RecoveryDelay)
	}
	return b.String()
}

// netheritePlan is DefaultPlan at paper rate, which since PR 8 includes
// the netherite commit-crash and transport-duplicate rules.
func netheritePlan() *chaos.Plan { return chaos.DefaultPlan(0.05) }

// TestByteIdenticalAcrossPartitionCounts is the tentpole determinism
// property: for any seed, partition counts 1, 4, and 8 must produce
// byte-identical transcripts — partitioning shards the log, it never
// changes results, timings, or billing.
func TestByteIdenticalAcrossPartitionCounts(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			ref := runTranscript(t, seed, 1, nil)
			for _, parts := range []int{4, 8} {
				got := runTranscript(t, seed, parts, nil)
				if got != ref {
					t.Fatalf("partitions=%d diverged from partitions=1:\n--- p=1 ---\n%s--- p=%d ---\n%s", parts, ref, parts, got)
				}
			}
		})
	}
}

// TestByteIdenticalAcrossPartitionCountsUnderChaos repeats the property
// with the full default fault plan active: chaos decisions key on
// instance and orchestrator names, never partition identity, so even
// fault schedules are partition-count invariant.
func TestByteIdenticalAcrossPartitionCountsUnderChaos(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			ref := runTranscript(t, seed, 1, netheritePlan())
			if !strings.Contains(ref, "chaos injected=") {
				t.Fatal("chaos transcript missing injector stats")
			}
			for _, parts := range []int{4, 8} {
				got := runTranscript(t, seed, parts, netheritePlan())
				if got != ref {
					t.Fatalf("under chaos, partitions=%d diverged from partitions=1:\n--- p=1 ---\n%s--- p=%d ---\n%s", parts, ref, parts, got)
				}
			}
		})
	}
}

// TestRepeatedRunsByteIdentical pins run-to-run determinism at a fixed
// partition count — the property that makes the cross-partition
// comparisons above meaningful. The parallel subtests also make the
// suite itself exercise -parallel sensitivity: transcripts computed
// concurrently must equal transcripts computed alone.
func TestRepeatedRunsByteIdentical(t *testing.T) {
	for _, parts := range []int{1, 4, 8} {
		parts := parts
		t.Run(fmt.Sprintf("partitions-%d", parts), func(t *testing.T) {
			t.Parallel()
			a := runTranscript(t, 9, parts, netheritePlan())
			b := runTranscript(t, 9, parts, netheritePlan())
			if a != b {
				t.Fatalf("same seed, same partitions, different transcripts:\n--- run 1 ---\n%s--- run 2 ---\n%s", a, b)
			}
		})
	}
}
