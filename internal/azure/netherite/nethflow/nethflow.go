// Package nethflow registers the Netherite variants of the Durable
// lowerings: the same generic orchestrator/entity compilation as
// azureflow, targeted at the Netherite task hub's partitioned commit
// log instead of the classic storage-backed hub. Registering here (not
// in azureflow) keeps the classic Azure build free of the Netherite
// backend unless a campaign links it in.
package nethflow

import (
	"statebench/internal/azure/azureflow"
	"statebench/internal/azure/netherite"
	"statebench/internal/core"
	"statebench/internal/flow"
)

// providerName is the registered Netherite provider display name.
const providerName = "Netherite"

func init() {
	flow.RegisterLowerer(azureflow.NewDurableLowerer(netherite.Dorch, flow.DurableOrch, "n", providerName, target))
	flow.RegisterLowerer(azureflow.NewDurableLowerer(netherite.Dent, flow.DurableEnt, "n", providerName, target))
}

// target resolves the Netherite hub backend lazily, so campaigns that
// never deploy a Netherite style never construct it.
func target(env *core.Env) azureflow.DurableTarget {
	nc := netherite.FromEnv(env)
	return azureflow.DurableTarget{Hub: nc.Hub, Client: nc.Client, Blob: nc.Blob}
}
