package netherite

import (
	"statebench/internal/azure/durable"
	"statebench/internal/azure/functions"
	"statebench/internal/chaos"
	"statebench/internal/cloud/blob"
	"statebench/internal/core"
	"statebench/internal/obs/span"
	"statebench/internal/obs/tseries"
	"statebench/internal/platform"
	"statebench/internal/pricing"
	"statebench/internal/sim"
)

// Kind identifies the Netherite task hub in the core registry. Like
// internal/gcp, the constant lives here: registering the provider must
// not require editing any core source.
const Kind core.CloudKind = 3

// The Netherite implementation styles. They ride on ExtendedWorkflow's
// ExtraImpls, never on core.AllImpls, so paper output is unaffected.
const (
	// Dorch is the Durable-orchestrator style on a Netherite task hub.
	Dorch core.Impl = "Az-Dorch-N"
	// Dent is the Durable-entities style on a Netherite task hub.
	Dent core.Impl = "Az-Dent-N"
)

// Cloud is one simulated Azure subscription whose function app runs
// the Durable extension on a Netherite task hub instead of the classic
// Azure Storage one. Same host, same orchestration semantics, same
// price book — only the Store behind the hub differs, which is what
// makes classic-vs-Netherite a controlled comparison.
type Cloud struct {
	Params platform.AzureParams
	Host   *functions.Host
	Hub    *durable.Hub
	Client *durable.Client
	Blob   *blob.Store
	Store  *Store
}

// New builds a Cloud whose task hub runs on a Netherite store with
// partitions partitions (DefaultPartitions if <= 0).
func New(k *sim.Kernel, params platform.AzureParams, partitions int) *Cloud {
	host := functions.NewHost(k, "netherite-app", params)
	store := NewStore(k, "netherite-hub", partitions)
	hub := durable.NewHubWithStore(k, host, "netherite-hub", store)
	return &Cloud{
		Params: params,
		Host:   host,
		Hub:    hub,
		Client: durable.NewClient(hub),
		Blob:   blob.New(k, "netherite-blob", blob.DefaultParams()),
		Store:  store,
	}
}

// FromEnv returns the Env's Netherite backend, constructing it on
// first use. Deployment code uses this the way it uses env.Azure.
func FromEnv(env *core.Env) *Cloud { return env.Backend(Kind).(*Cloud) }

// SetTracer enables span emission on the host and hub transport.
func (c *Cloud) SetTracer(tr *span.Tracer) {
	c.Host.Tracer = tr
	c.Hub.SetTracer(tr)
}

// SetChaos enables fault injection on the host and the commit path.
func (c *Cloud) SetChaos(inj *chaos.Injector) {
	c.Host.Chaos = inj
	c.Hub.SetChaos(inj)
}

// SetTimeline enables per-window telemetry gauges on the function app.
func (c *Cloud) SetTimeline(s *tseries.Series) {
	c.Host.SetTimeline(s)
}

// ResetMeters zeroes compute meters and storage transaction counters.
func (c *Cloud) ResetMeters() {
	c.Host.ResetMeters()
	c.Hub.ResetStorageStats()
	c.Blob.ResetStats()
}

// Stop terminates the scale controller so a finished kernel can drain
// (the Netherite store itself runs no listeners).
func (c *Cloud) Stop() { c.Host.Stop() }

// Usage reports cumulative billable consumption (the core.Backend
// seam). Both Netherite styles are stateful; group commits land in
// StatefulTxns where the classic hub books its queue and table
// traffic, so the transaction contrast reads off the same column.
func (c *Cloud) Usage(stateful bool) pricing.Usage {
	m := c.Host.TotalMeter()
	txns := c.Hub.StorageTransactions()
	statefulTxns := txns
	if !stateful {
		statefulTxns = 0
	}
	return pricing.Usage{
		GBs:          m.BilledGBs,
		Requests:     m.Invocations,
		StatefulTxns: statefulTxns,
		AllTxns:      txns,
		BlobTxns:     c.Blob.Stats().Transactions(),
		Exec:         m.ExecTime,
	}
}

func init() {
	core.RegisterProvider(core.ProviderSpec{
		Kind: Kind,
		Name: "Netherite",
		Styles: []core.StyleInfo{
			{Impl: Dorch, Stateful: true, Description: "Durable orchestrators on a Netherite task hub: partitioned, group-committed, speculative commit logs instead of storage queues."},
			{Impl: Dent, Stateful: true, Description: "Durable entities on a Netherite task hub; entity state lives in the partition logs."},
		},
		NewBackend:  func(e *core.Env) core.Backend { return New(e.K, platform.DefaultAzure(), DefaultPartitions) },
		DefaultBook: func() pricing.Book { return pricing.DefaultAzure() },
		// No Traffic profile: the traffic experiment's provider sweep is
		// calibrated per cloud, not per task-hub backend; the netherite
		// experiment drives its own open-loop comparison instead.
	})
}
