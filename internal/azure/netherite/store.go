// Package netherite simulates the Netherite backend for the Durable
// Task Framework ("Serverless Workflows with Durable Functions and
// Netherite", Burckhardt et al.): the vendor's shipped replacement for
// the classic Azure Storage task hub. Instead of billed queues polled
// by listeners and a history table written per episode, work is routed
// to N partitions, each partition appends events to a commit log whose
// writes are batched — group commits amortize one storage round trip
// over every event that arrived in the same commit window — and
// execution is speculative: episodes run against uncommitted state and
// are deterministically aborted and replayed if a crash loses an
// uncommitted batch.
//
// Determinism contract (the property the tier-2 gate enforces): the
// store draws NOTHING from the kernel's RNG streams and all latencies
// are fixed constants, so results are byte-identical for a given seed.
// Stronger, they are byte-identical across partition counts: delivery
// latency is partition-independent, commit windows are global
// wall-clock-aligned (one group commit per window hub-wide, modeling
// the shared storage-account batch ingress), and chaos decisions key on
// instance/orchestrator names — never on partition identity. Partition
// count changes how records are sharded across logs, not when anything
// happens or what anything costs.
package netherite

import (
	"hash/fnv"
	"time"

	"statebench/internal/azure/durable"
	"statebench/internal/chaos"
	"statebench/internal/obs/span"
	"statebench/internal/sim"
)

// Fixed latency model. No RNG: every constant below is exact.
const (
	// CommitInterval is the group-commit cadence: appends accumulated in
	// one window become durable together at the window boundary.
	CommitInterval = 20 * time.Millisecond
	// AppendRTT is the storage round trip of one group commit — paid
	// once per non-empty window, not once per event.
	AppendRTT = 2 * time.Millisecond
	// DeliverLatency is the intra-hub push delivery time of one
	// envelope (EventHubs-style transport, no polling).
	DeliverLatency = 1 * time.Millisecond
	// SubmitLatency is the send cost charged to a client process.
	SubmitLatency = 200 * time.Microsecond
	// StateAccessLatency is the in-memory (partition-cached) entity
	// state and history access cost.
	StateAccessLatency = 100 * time.Microsecond
)

// DefaultPartitions matches the Netherite paper's default task-hub
// layout. Any count yields byte-identical results (see package doc).
const DefaultPartitions = 8

// partition is one commit log. Envelope routing, history records, and
// entity state shard across partitions by instance key; the per-
// partition fields exist for structural accounting (logs, dedup
// tables), never for timing.
type partition struct {
	// nextSeq stamps outbound envelopes for exactly-once delivery.
	nextSeq int64
	// applied records delivered sequence numbers: a redelivered ghost
	// with a seen seq is dropped, which is why Netherite needs no
	// MaxDequeueCount/poison-message carve-out.
	applied map[int64]bool
	// records counts log records appended (committed) to this partition.
	records int64
}

// Store implements durable.Store as a partitioned, group-committed,
// speculative commit log.
type Store struct {
	k          *sim.Kernel
	name       string
	hub        *durable.Hub
	partitions []*partition

	// hist and entState are the speculative materialized state: reads
	// see appended-but-uncommitted records, which is what lets episodes
	// progress ahead of durability.
	hist     map[string][]durable.Record
	entState map[string][]byte

	// Hub-wide commit-window accounting (partition-count invariant).
	lastWindow int64 // last window index with a billed group commit
	txns       int64 // billed storage transactions (group commits)
	appended   int64 // committed records across all partitions
	lost       int64 // records discarded by lost batches
	droppedDup int64 // ghost deliveries dropped by seq dedup

	tracer *span.Tracer
	chaos  *chaos.Injector
}

// NewStore builds a Netherite store with n partitions
// (DefaultPartitions if n <= 0). Pass it to durable.NewHubWithStore.
func NewStore(k *sim.Kernel, name string, n int) *Store {
	if n <= 0 {
		n = DefaultPartitions
	}
	s := &Store{
		k:        k,
		name:     name,
		hist:     make(map[string][]durable.Record),
		entState: make(map[string][]byte),
	}
	for i := 0; i < n; i++ {
		s.partitions = append(s.partitions, &partition{applied: make(map[int64]bool)})
	}
	return s
}

// Start implements durable.Store. Delivery is push-based: no listener
// processes, no polling transactions.
func (s *Store) Start(h *durable.Hub) { s.hub = h }

// Kick implements durable.Store: a push transport has no poll back-off.
func (s *Store) Kick() {}

// Partitions returns the partition count (structural accounting).
func (s *Store) Partitions() int { return len(s.partitions) }

// partitionOf shards an instance onto a partition (same FNV routing as
// the classic store's control-queue partitioning).
func (s *Store) partitionOf(instance string) *partition {
	f := fnv.New32a()
	_, _ = f.Write([]byte(instance))
	return s.partitions[int(f.Sum32())%len(s.partitions)]
}

// SendControl implements durable.Store: push the envelope to its
// partition after the fixed transport latency.
func (s *Store) SendControl(m durable.Envelope) error {
	s.transport(m, false)
	return nil
}

// SendControlFromProc implements durable.Store, charging the submit
// cost to the sending process.
func (s *Store) SendControlFromProc(p *sim.Proc, m durable.Envelope) error {
	p.Sleep(SubmitLatency)
	s.transport(m, false)
	return nil
}

// SendWork implements durable.Store: activity work items ride the same
// partitioned transport.
func (s *Store) SendWork(m durable.Envelope) error {
	s.transport(m, true)
	return nil
}

// transport stamps the envelope with a partition sequence number and
// schedules delivery. Chaos can inject a duplicate ghost: the same
// envelope, same seq, redelivered after the visibility window — the
// dedup table drops it on arrival. Fault decisions key on the instance
// name, so schedules are partition-count independent.
func (s *Store) transport(m durable.Envelope, work bool) {
	part := s.partitionOf(m.Instance)
	seq := part.nextSeq
	part.nextSeq++
	start := s.k.Now()
	s.deliver(DeliverLatency, part, seq, m, work, start)
	if s.chaos != nil {
		if flt, ok := s.chaos.Next(m.TraceCtx(), "netherite-transport", m.Instance); ok && flt.Kind == chaos.Duplicate {
			s.deliver(DeliverLatency+s.chaos.RedeliveryDelay(), part, seq, m, work, start)
		}
	}
}

// deliver routes one (possibly duplicate) envelope copy into the hub
// after delay, dropping it if its sequence number was already applied.
func (s *Store) deliver(delay time.Duration, part *partition, seq int64, m durable.Envelope, work bool, start sim.Time) {
	s.k.After(delay, func() {
		if part.applied[seq] {
			s.droppedDup++
			return
		}
		part.applied[seq] = true
		if s.tracer.Enabled() {
			s.tracer.Emit(span.KindHop, "netherite/"+s.name, start, s.k.Now(), m.TraceCtx())
		}
		if work {
			s.hub.DeliverWork(m)
		} else {
			s.hub.DeliverControl(m)
		}
	})
}

// LoadHistory implements durable.Store: an in-memory partition-cache
// read — speculative records included — at fixed cost.
func (s *Store) LoadHistory(p *sim.Proc, instance string) []durable.Record {
	p.Sleep(StateAccessLatency)
	recs := s.hist[instance]
	out := make([]durable.Record, len(recs))
	copy(out, recs)
	return out
}

// CommitEpisode implements durable.Store. The episode's new records
// are appended to the partition log and become immediately visible to
// subsequent episodes (speculation); durability arrives at the next
// global commit-window boundary plus one append round trip, which is
// the settle delay the hub applies to client-visible completion. One
// group commit is billed per non-empty window hub-wide.
//
// Chaos injects the two crash windows at the commit point. A Crash
// loses the uncommitted batch — the just-appended records are rolled
// back, counted as wasted speculative work, and the hub aborts and
// replays the episode from durable state. A CrashAfterPersist crashes
// the partition after the batch committed; because the commit log
// integrates state AND message cursors, the triggering messages were
// acknowledged atomically with the batch, so nothing redelivers — the
// crash costs one partition-rehydration delay on the settle path
// instead of the classic hub's redeliver-and-deduplicate replay. That
// asymmetry is the design point the dead-letter audit pins down:
// exactly-once falls out of the log, not out of visibility-timeout or
// poison-message machinery.
func (s *Store) CommitEpisode(p *sim.Proc, instance, orchestrator string, tctx sim.TraceContext, recs []durable.Record) (durable.CommitVerdict, time.Duration) {
	if len(recs) == 0 {
		return durable.CommitOK, 0
	}
	if s.chaos != nil {
		if flt, ok := s.chaos.Next(tctx, "netherite", orchestrator); ok {
			switch flt.Kind {
			case chaos.Crash:
				s.lost += int64(len(recs))
				s.chaos.NoteWastedWork(len(recs))
				return durable.CommitLost, 0
			case chaos.CrashAfterPersist:
				s.append(instance, recs)
				// The partition is down until it rehydrates from the
				// committed log; the episode's worker stalls with it, so
				// the delay propagates to every downstream dispatch.
				rehydrate := s.chaos.RedeliveryDelay()
				s.chaos.NoteRecovery(rehydrate)
				p.Sleep(rehydrate)
				_, settle := s.commitWindow(p.Now())
				return durable.CommitOK, settle
			}
		}
	}
	s.append(instance, recs)
	_, settle := s.commitWindow(p.Now())
	return durable.CommitOK, settle
}

// append materializes recs into the speculative history and partition
// log.
func (s *Store) append(instance string, recs []durable.Record) {
	s.hist[instance] = append(s.hist[instance], recs...)
	part := s.partitionOf(instance)
	part.records += int64(len(recs))
	s.appended += int64(len(recs))
}

// commitWindow bills the group commit covering virtual time now and
// returns the window index plus the settle delay until the batch is
// durable (next global boundary + append round trip).
func (s *Store) commitWindow(now sim.Time) (int64, time.Duration) {
	window := int64(now/sim.Time(CommitInterval)) + 1
	if window != s.lastWindow {
		s.lastWindow = window
		s.txns++
	}
	boundary := sim.Time(window) * sim.Time(CommitInterval)
	return window, time.Duration(boundary-now) + AppendRTT
}

// PurgeHistory implements durable.Store (ContinueAsNew).
func (s *Store) PurgeHistory(p *sim.Proc, instance string) {
	p.Sleep(StateAccessLatency)
	delete(s.hist, instance)
}

// ReadEntityState implements durable.Store: a partition-cache read.
func (s *Store) ReadEntityState(p *sim.Proc, instance string) ([]byte, bool) {
	p.Sleep(StateAccessLatency)
	data, ok := s.entState[instance]
	return data, ok
}

// WriteEntityState implements durable.Store: the new state is one log
// record, group-committed with everything else in its window.
func (s *Store) WriteEntityState(p *sim.Proc, instance string, data []byte) {
	s.entState[instance] = data
	part := s.partitionOf(instance)
	part.records++
	s.appended++
	s.commitWindow(p.Now())
}

// QueryEntityState implements durable.Store (client status query).
func (s *Store) QueryEntityState(p *sim.Proc, instance string) ([]byte, bool) {
	p.Sleep(StateAccessLatency)
	data, ok := s.entState[instance]
	return data, ok
}

// PeekEntityState implements durable.Store (unbilled inspection).
func (s *Store) PeekEntityState(instance string) ([]byte, bool) {
	data, ok := s.entState[instance]
	return data, ok
}

// Transactions implements durable.Store: group commits billed so far —
// the order-of-magnitude reduction vs. the classic hub's per-operation
// queue and table traffic.
func (s *Store) Transactions() int64 { return s.txns }

// ResetStats implements durable.Store.
func (s *Store) ResetStats() {
	s.txns = 0
	s.appended = 0
	s.lost = 0
	s.droppedDup = 0
	for _, part := range s.partitions {
		part.records = 0
	}
}

// AppendedRecords returns committed log records across all partitions.
func (s *Store) AppendedRecords() int64 { return s.appended }

// LostRecords returns speculative records discarded by lost batches.
func (s *Store) LostRecords() int64 { return s.lost }

// DroppedDuplicates returns ghost deliveries dropped by seq dedup —
// the mechanism that replaces the classic queues' visibility-timeout/
// MaxDequeueCount machinery.
func (s *Store) DroppedDuplicates() int64 { return s.droppedDup }

// History returns a copy of the materialized history for instance —
// an inspection seam for tests proving abort+replay converges on the
// same record sequence a fault-free run produces.
func (s *Store) History(instance string) []durable.Record {
	recs := s.hist[instance]
	out := make([]durable.Record, len(recs))
	copy(out, recs)
	return out
}

// PartitionRecords returns the committed record count per partition.
func (s *Store) PartitionRecords() []int64 {
	out := make([]int64, len(s.partitions))
	for i, part := range s.partitions {
		out[i] = part.records
	}
	return out
}

// SetTracer implements durable.Store: transport hops emit hop spans.
func (s *Store) SetTracer(tr *span.Tracer) { s.tracer = tr }

// SetChaos implements durable.Store: enables commit-batch loss and
// duplicate ghost injection.
func (s *Store) SetChaos(inj *chaos.Injector) { s.chaos = inj }
