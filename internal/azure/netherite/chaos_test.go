package netherite_test

import (
	"encoding/json"
	"testing"
	"time"

	"statebench/internal/azure/durable"
	"statebench/internal/chaos"
	"statebench/internal/obs/metrics"
	"statebench/internal/sim"
)

// registerChain installs the 3-step add1 chain — the same workload the
// classic hub's chaos tests recover, rerun here against speculative
// commits.
func registerChain(t *testing.T, hub *durable.Hub) {
	t.Helper()
	registerAdd1(t, hub)
	mustRegOrch(t, hub, "chain", func(ctx *durable.OrchestrationContext, input []byte) ([]byte, error) {
		v := input
		for i := 0; i < 3; i++ {
			out, err := ctx.CallActivity("add1", v).Await()
			if err != nil {
				return nil, err
			}
			v = out
		}
		return v, nil
	})
}

// runChain drives the chain to completion and returns its output,
// handle, and the instance's final materialized history as JSON.
func runChain(t *testing.T, e *env) (string, *durable.Handle, []byte) {
	t.Helper()
	registerChain(t, e.hub)
	var out []byte
	var hd *durable.Handle
	e.drive(func(p *sim.Proc) {
		var err error
		out, hd, err = e.client.Run(p, "chain", []byte("0"))
		if err != nil {
			t.Errorf("run: %v", err)
		}
	})
	hist, err := json.Marshal(e.store.History(hd.ID))
	if err != nil {
		t.Fatalf("marshal history: %v", err)
	}
	return string(out), hd, hist
}

// TestCrashBeforeCommitAbortsAndReplays injects a crash that loses one
// uncommitted batch: the speculative records must be rolled back and
// counted as wasted work, the episode deterministically aborted and
// replayed, and the final output and committed history byte-identical
// to a fault-free run.
func TestCrashBeforeCommitAbortsAndReplays(t *testing.T) {
	faultFreeOut, faultFreeHd, faultFreeHist := runChain(t, netheriteEnv(1, 4, nil))
	if faultFreeOut != "3" {
		t.Fatalf("fault-free output = %q, want 3", faultFreeOut)
	}

	e := netheriteEnv(1, 4, &chaos.Plan{
		RedeliveryDelay: 2 * time.Second,
		Rules: []chaos.Rule{
			{Component: "netherite", Kind: chaos.Crash, Rate: 1, MaxFaults: 1},
		},
	})
	reg := metrics.NewRegistry()
	e.inj.Metrics = reg
	out, hd, hist := runChain(t, e)

	if out != "3" {
		t.Fatalf("output = %q, want 3 (abort+replay must recover the lost batch)", out)
	}
	if hd.Status() != durable.StatusCompleted {
		t.Fatalf("status = %s", hd.Status())
	}
	st := e.inj.Stats()
	if st.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", st.Crashes)
	}
	if e.store.LostRecords() == 0 {
		t.Fatal("no speculative records were lost; the crash window missed the commit path")
	}
	if st.WastedWork != e.store.LostRecords() {
		t.Fatalf("WastedWork = %d but store lost %d records; speculation accounting diverged", st.WastedWork, e.store.LostRecords())
	}
	if got := reg.CounterValue("statebench_chaos_wasted_speculation_total"); got != float64(st.WastedWork) {
		t.Fatalf("wasted-speculation metric = %v, want %d", got, st.WastedWork)
	}
	// The replayed instance converges on exactly the history a fault-free
	// run commits: nothing lost, nothing duplicated.
	if hd.ID != faultFreeHd.ID {
		t.Fatalf("instance IDs diverged (%s vs %s); same seed must name the same instance", hd.ID, faultFreeHd.ID)
	}
	if string(hist) != string(faultFreeHist) {
		t.Fatalf("history after abort+replay diverged from fault-free run:\n  chaos:      %s\n  fault-free: %s", hist, faultFreeHist)
	}
}

// TestCrashAfterCommitRehydratesWithoutRedelivery injects a crash
// after the batch committed. The commit log integrates state and
// message cursors, so the triggering messages were acknowledged
// atomically with the batch: nothing redelivers, no replay dedup runs,
// history stays byte-identical to the fault-free run, and the crash
// surfaces purely as partition-rehydration recovery delay. (The
// classic hub, by contrast, re-inboxes the unacknowledged messages and
// leans on TaskID-keyed replay to absorb the re-folded rows.)
func TestCrashAfterCommitRehydratesWithoutRedelivery(t *testing.T) {
	_, ffHd, faultFreeHist := runChain(t, netheriteEnv(1, 4, nil))

	e := netheriteEnv(1, 4, &chaos.Plan{
		RedeliveryDelay: 2 * time.Second,
		Rules: []chaos.Rule{
			{Component: "netherite", Kind: chaos.CrashAfterPersist, Rate: 1, MaxFaults: 1},
		},
	})
	out, hd, hist := runChain(t, e)

	if out != "3" {
		t.Fatalf("output = %q, want 3", out)
	}
	if hd.Status() != durable.StatusCompleted {
		t.Fatalf("status = %s", hd.Status())
	}
	st := e.inj.Stats()
	if st.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", st.Crashes)
	}
	if e.store.LostRecords() != 0 || st.WastedWork != 0 {
		t.Fatalf("lost = %d, wasted = %d: a post-commit crash must lose nothing", e.store.LostRecords(), st.WastedWork)
	}
	if string(hist) != string(faultFreeHist) {
		t.Fatalf("history after post-commit crash diverged from fault-free run:\n  chaos:      %s\n  fault-free: %s", hist, faultFreeHist)
	}
	if st.RecoveryDelay != 2*time.Second {
		t.Fatalf("RecoveryDelay = %v, want 2s: one partition rehydration, no redeliveries", st.RecoveryDelay)
	}
	if hd.E2E() <= ffHd.E2E() {
		t.Fatalf("E2E with rehydration (%v) <= fault-free (%v); the crash must cost client-visible latency", hd.E2E(), ffHd.E2E())
	}
}

// TestTransportDuplicatesDroppedBySeqDedup proves the partition
// sequence-number dedup replaces the classic queues' MaxDequeueCount
// machinery: every injected ghost is dropped on arrival, nothing is
// dead-lettered, no recovery delay is booked, and the result is
// exactly-once.
func TestTransportDuplicatesDroppedBySeqDedup(t *testing.T) {
	e := netheriteEnv(1, 4, &chaos.Plan{
		RedeliveryDelay: time.Second,
		Rules: []chaos.Rule{
			{Component: "netherite-transport", Kind: chaos.Duplicate, Rate: 0.5},
		},
	})
	out, hd, _ := runChain(t, e)

	if out != "3" {
		t.Fatalf("output = %q, want 3 (duplicates must not double-apply)", out)
	}
	if hd.Status() != durable.StatusCompleted {
		t.Fatalf("status = %s", hd.Status())
	}
	st := e.inj.Stats()
	if st.Duplicates == 0 {
		t.Fatal("no duplicates injected; the test exercised nothing")
	}
	if e.store.DroppedDuplicates() != st.Duplicates {
		t.Fatalf("dropped %d ghosts but injected %d: every duplicate must die in the dedup table", e.store.DroppedDuplicates(), st.Duplicates)
	}
	if st.DeadLetters != 0 {
		t.Fatalf("dead letters = %d, want 0: Netherite has no poison-message machinery to trip", st.DeadLetters)
	}
	if st.RecoveryDelay != 0 {
		t.Fatalf("RecoveryDelay = %v, want 0: dropped ghosts delay nobody", st.RecoveryDelay)
	}
}

// TestSpeculationWastesRealWork pins the cost model of speculation: the
// aborted episode's compute was real and billed. Under a lost batch the
// host's billed GB-s must exceed the fault-free run's — the waste the
// statebench_chaos_wasted_speculation_total metric prices.
func TestSpeculationWastesRealWork(t *testing.T) {
	billedGBs := func(plan *chaos.Plan) float64 {
		e := netheriteEnv(1, 4, plan)
		out, _, _ := runChain(t, e)
		if out != "3" {
			t.Fatalf("output = %q, want 3", out)
		}
		var total float64
		for _, name := range []string{"chain", "add1"} {
			if f, ok := e.host.Function(name); ok {
				total += f.Meter.BilledGBs
			}
		}
		return total
	}
	clean := billedGBs(nil)
	crashed := billedGBs(&chaos.Plan{
		RedeliveryDelay: 2 * time.Second,
		Rules: []chaos.Rule{
			{Component: "netherite", Kind: chaos.Crash, Rate: 1, MaxFaults: 1},
		},
	})
	if crashed <= clean {
		t.Fatalf("billed GB-s with a lost batch (%.6f) <= fault-free (%.6f); the replayed episode's work should be billed twice", crashed, clean)
	}
}
