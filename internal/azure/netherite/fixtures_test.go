package netherite_test

import (
	"time"

	"statebench/internal/azure/durable"
	"statebench/internal/azure/functions"
	"statebench/internal/azure/netherite"
	"statebench/internal/chaos"
	"statebench/internal/platform"
	"statebench/internal/sim"
)

// env is one simulated function app with a Durable hub on either the
// classic storage task hub or a Netherite store — the same shape the
// conformance table runs every scenario against twice.
type env struct {
	k      *sim.Kernel
	host   *functions.Host
	hub    *durable.Hub
	client *durable.Client
	store  *netherite.Store // nil on the classic hub
	inj    *chaos.Injector  // nil without a plan
}

// testParams mirrors the durable package's test fixture: all fixed
// distributions, so every scenario is deterministic for a given seed.
func testParams() platform.AzureParams {
	params := platform.DefaultAzure()
	params.HTTPTriggerRTT = sim.Fixed{D: 10 * time.Millisecond}
	params.InstanceColdStart = sim.Fixed{D: 500 * time.Millisecond}
	params.Dispatch = sim.Fixed{D: 5 * time.Millisecond}
	params.ScaleEvalInterval = 2 * time.Second
	params.ScaleOutStep = 2
	params.MaxInstances = 20
	params.IdleInstanceTimeout = 10 * time.Minute
	params.EntityOpOverhead = sim.Fixed{D: 20 * time.Millisecond}
	params.EntityStateRTT = sim.Fixed{D: 20 * time.Millisecond}
	params.HistoryReplayPerEvent = 5 * time.Millisecond
	return params
}

func newEnv(seed uint64, plan *chaos.Plan, mkHub func(k *sim.Kernel, h *functions.Host) (*durable.Hub, *netherite.Store)) *env {
	return newEnvParams(seed, plan, testParams(), mkHub)
}

func newEnvParams(seed uint64, plan *chaos.Plan, params platform.AzureParams, mkHub func(k *sim.Kernel, h *functions.Host) (*durable.Hub, *netherite.Store)) *env {
	k := sim.NewKernel(seed)
	host := functions.NewHost(k, "app", params)
	hub, store := mkHub(k, host)
	e := &env{k: k, host: host, hub: hub, client: durable.NewClient(hub), store: store}
	if plan != nil {
		e.inj = chaos.NewInjector(k, plan)
		host.Chaos = e.inj
		hub.SetChaos(e.inj)
	}
	return e
}

// classicEnv builds the hub on the classic Azure Storage task hub.
func classicEnv(seed uint64, plan *chaos.Plan) *env {
	return newEnv(seed, plan, func(k *sim.Kernel, h *functions.Host) (*durable.Hub, *netherite.Store) {
		return durable.NewHub(k, h, "hub"), nil
	})
}

// netheriteEnv builds the hub on a Netherite store with the given
// partition count.
func netheriteEnv(seed uint64, partitions int, plan *chaos.Plan) *env {
	return newEnv(seed, plan, func(k *sim.Kernel, h *functions.Host) (*durable.Hub, *netherite.Store) {
		store := netherite.NewStore(k, "hub", partitions)
		return durable.NewHubWithStore(k, h, "hub", store), store
	})
}

// drive runs fn on a client proc, stops the host, and runs the kernel
// to completion.
func (e *env) drive(fn func(p *sim.Proc)) {
	e.k.Spawn("client", func(p *sim.Proc) {
		fn(p)
		e.host.Stop()
	})
	e.k.Run()
}
