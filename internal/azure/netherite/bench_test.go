package netherite_test

import (
	"encoding/json"
	"testing"
	"time"

	"statebench/internal/azure/durable"
	"statebench/internal/azure/functions"
	"statebench/internal/azure/netherite"
	"statebench/internal/platform"
	"statebench/internal/sim"
)

// benchParams is the queue-bound calibration: costs both backends pay
// identically — orchestrator replay CPU, host dispatch, the HTTP
// trigger round trip — are shrunk to near zero so what remains per
// episode is exactly what the stores differ on (queue hops and polling
// versus push delivery and group commits).
func benchParams() platform.AzureParams {
	params := testParams()
	params.HistoryReplayPerEvent = 0
	params.Dispatch = sim.Fixed{D: time.Millisecond}
	params.HTTPTriggerRTT = sim.Fixed{D: time.Millisecond}
	return params
}

func benchClassicEnv() *env {
	return newEnvParams(1, nil, benchParams(), func(k *sim.Kernel, h *functions.Host) (*durable.Hub, *netherite.Store) {
		return durable.NewHub(k, h, "hub"), nil
	})
}

func benchNetheriteEnv() *env {
	return newEnvParams(1, nil, benchParams(), func(k *sim.Kernel, h *functions.Host) (*durable.Hub, *netherite.Store) {
		store := netherite.NewStore(k, "hub", netherite.DefaultPartitions)
		return durable.NewHubWithStore(k, h, "hub", store), store
	})
}

// registerTrainShape installs the mltrain durable-orchestrator DAG —
// prep, dimred, a three-way training fan-out joined with WaitAll, then
// select — with 1 ms of compute per activity, so the orchestration is
// queue-bound: framework transport, not the modeled ML work, dominates.
func registerTrainShape(tb testing.TB, hub *durable.Hub) {
	tb.Helper()
	act := func(ctx *functions.Context, in []byte) ([]byte, error) {
		ctx.Busy(time.Millisecond)
		return in, nil
	}
	for _, name := range []string{"bench-prep", "bench-dimred", "bench-train", "bench-select"} {
		if err := hub.RegisterActivity(name, 128, act); err != nil {
			tb.Fatal(err)
		}
	}
	if err := hub.RegisterOrchestrator("bench-mltrain", 128, func(ctx *durable.OrchestrationContext, input []byte) ([]byte, error) {
		enc, err := ctx.CallActivity("bench-prep", input).Await()
		if err != nil {
			return nil, err
		}
		proj, err := ctx.CallActivity("bench-dimred", enc).Await()
		if err != nil {
			return nil, err
		}
		var tasks []*durable.Task
		for i := 0; i < 3; i++ {
			in, _ := json.Marshal(i)
			tasks = append(tasks, ctx.CallActivity("bench-train", in))
		}
		if _, err := ctx.WaitAll(tasks...); err != nil {
			return nil, err
		}
		return ctx.CallActivity("bench-select", proj).Await()
	}); err != nil {
		tb.Fatal(err)
	}
}

// episodeThroughput runs back-to-back mltrain-shaped orchestrations and
// returns the hub's episode throughput in episodes per virtual second,
// measured from after a warmup run so cold start is excluded.
func episodeThroughput(tb testing.TB, mk func() *env) float64 {
	tb.Helper()
	const runs = 10
	e := mk()
	registerTrainShape(tb, e.hub)
	var elapsed time.Duration
	var episodes int64
	e.drive(func(p *sim.Proc) {
		if _, _, err := e.client.Run(p, "bench-mltrain", nil); err != nil { // warmup
			tb.Errorf("warmup: %v", err)
			return
		}
		start := p.Now()
		episodesAtStart := e.hub.EpisodeCount
		for i := 0; i < runs; i++ {
			if _, _, err := e.client.Run(p, "bench-mltrain", nil); err != nil {
				tb.Errorf("run: %v", err)
				return
			}
		}
		elapsed = time.Duration(p.Now() - start)
		episodes = e.hub.EpisodeCount - episodesAtStart
	})
	if elapsed <= 0 || episodes == 0 {
		tb.Fatalf("no work measured: elapsed=%v episodes=%d", elapsed, episodes)
	}
	return float64(episodes) / elapsed.Seconds()
}

// TestNetheriteEpisodeThroughputTarget pins the PR's performance
// acceptance target in virtual time (fully deterministic, so it can
// gate CI): on the queue-bound mltrain orchestration, push delivery
// plus group commits must sustain at least 5x the classic hub's
// episode throughput.
func TestNetheriteEpisodeThroughputTarget(t *testing.T) {
	classic := episodeThroughput(t, benchClassicEnv)
	neth := episodeThroughput(t, benchNetheriteEnv)
	t.Logf("episodes/vsec: classic=%.1f netherite=%.1f (%.1fx)", classic, neth, neth/classic)
	if neth < 5*classic {
		t.Fatalf("netherite episode throughput %.1f/vsec < 5x classic %.1f/vsec", neth, classic)
	}
}

// The bench pair behind BENCH_PR8.json: wall-clock cost of simulating
// each hub, with virtual episode throughput as a custom metric so the
// model-level speedup is tracked alongside the simulator's own cost.
func benchHub(b *testing.B, mk func() *env) {
	var tput float64
	for i := 0; i < b.N; i++ {
		tput = episodeThroughput(b, mk)
	}
	b.ReportMetric(tput, "episodes/vsec")
}

func BenchmarkClassicHubEpisodeThroughput(b *testing.B) {
	benchHub(b, benchClassicEnv)
}

func BenchmarkNetheriteHubEpisodeThroughput(b *testing.B) {
	benchHub(b, benchNetheriteEnv)
}
