// Package azure assembles the simulated Azure deployment used by the
// benchmarks: a consumption-plan function app, a durable task hub with
// client, blob storage, and factory helpers for manually managed
// storage queues (the Az-Queue implementation style).
package azure

import (
	"statebench/internal/azure/durable"
	"statebench/internal/azure/functions"
	"statebench/internal/chaos"
	"statebench/internal/cloud/blob"
	"statebench/internal/cloud/queue"
	"statebench/internal/obs/span"
	"statebench/internal/obs/tseries"
	"statebench/internal/platform"
	"statebench/internal/pricing"
	"statebench/internal/sim"
)

// Cloud is one simulated Azure subscription/region.
type Cloud struct {
	Params platform.AzureParams
	Host   *functions.Host
	Hub    *durable.Hub
	Client *durable.Client
	Blob   *blob.Store

	k *sim.Kernel
	// ManualQueues tracks queues created with NewQueue so their
	// transactions can be summed into the stateful bill.
	ManualQueues []*queue.Queue
	tracer       *span.Tracer
	chaos        *chaos.Injector
}

// New builds a Cloud with the given calibration parameters.
func New(k *sim.Kernel, params platform.AzureParams) *Cloud {
	host := functions.NewHost(k, "app", params)
	hub := durable.NewHub(k, host, "hub")
	return &Cloud{
		Params: params,
		Host:   host,
		Hub:    hub,
		Client: durable.NewClient(hub),
		Blob:   blob.New(k, "azblob", blob.DefaultParams()),
		k:      k,
	}
}

// SetTracer enables span emission across the host, the task hub, and
// every manual queue (existing and future).
func (c *Cloud) SetTracer(tr *span.Tracer) {
	c.tracer = tr
	c.Host.Tracer = tr
	c.Hub.SetTracer(tr)
	for _, q := range c.ManualQueues {
		q.Tracer = tr
	}
}

// SetChaos enables fault injection across the host, the task hub, and
// every manual queue (existing and future).
func (c *Cloud) SetChaos(inj *chaos.Injector) {
	c.chaos = inj
	c.Host.Chaos = inj
	c.Hub.SetChaos(inj)
	for _, q := range c.ManualQueues {
		q.Chaos = inj
	}
}

// SetTimeline enables per-window telemetry gauges on the function app:
// dispatch-queue depth and ready-instance occupancy.
func (c *Cloud) SetTimeline(s *tseries.Series) {
	c.Host.SetTimeline(s)
}

// NewQueue creates a manually managed storage queue (Az-Queue style)
// whose transactions are tracked for billing.
func (c *Cloud) NewQueue(name string) *queue.Queue {
	qp := queue.DefaultParams()
	qp.MaxPayload = c.Params.QueuePayloadLimit
	q := queue.New(c.k, name, qp)
	q.Tracer = c.tracer
	q.Chaos = c.chaos
	c.ManualQueues = append(c.ManualQueues, q)
	return q
}

// StorageTransactions sums billable storage transactions across the
// task hub and all manual queues.
func (c *Cloud) StorageTransactions() int64 {
	return c.Hub.StorageTransactions() + c.ManualQueueTransactions()
}

// ManualQueueTransactions sums transactions of manually managed queues
// only (what a deployment without the durable extension is billed for).
func (c *Cloud) ManualQueueTransactions() int64 {
	var total int64
	for _, q := range c.ManualQueues {
		total += q.Stats().Transactions()
	}
	return total
}

// ResetMeters zeroes compute meters and storage transaction counters.
func (c *Cloud) ResetMeters() {
	c.Host.ResetMeters()
	c.Hub.ResetStorageStats()
	for _, q := range c.ManualQueues {
		q.ResetStats()
	}
	c.Blob.ResetStats()
}

// Stop terminates listeners and the scale controller so a finished
// simulation's kernel can drain.
func (c *Cloud) Stop() { c.Host.Stop() }

// Usage reports cumulative billable consumption (the core.Backend
// seam). Deployments without the durable extension are billed only for
// their manually managed queues, not the task hub's storage traffic;
// AllTxns always carries the full transaction count for the paper's
// transactions-per-run metric.
func (c *Cloud) Usage(stateful bool) pricing.Usage {
	m := c.Host.TotalMeter()
	txns := c.StorageTransactions()
	statefulTxns := txns
	if !stateful {
		statefulTxns = c.ManualQueueTransactions()
	}
	return pricing.Usage{
		GBs:          m.BilledGBs,
		Requests:     m.Invocations,
		StatefulTxns: statefulTxns,
		AllTxns:      txns,
		BlobTxns:     c.Blob.Stats().Transactions(),
		Exec:         m.ExecTime,
	}
}
