package azure

import (
	"testing"

	"statebench/internal/azure/functions"
	"statebench/internal/platform"
	"statebench/internal/sim"
)

func TestCloudAssembly(t *testing.T) {
	k := sim.NewKernel(1)
	c := New(k, platform.DefaultAzure())
	if c.Host == nil || c.Hub == nil || c.Client == nil || c.Blob == nil {
		t.Fatal("cloud incomplete")
	}
	q := c.NewQueue("manual")
	c.Host.MustRegister(functions.Config{Name: "f", Handler: func(ctx *functions.Context, p []byte) ([]byte, error) {
		return p, nil
	}})
	k.Spawn("t", func(p *sim.Proc) {
		if _, err := c.Host.InvokeHTTP(p, "f", nil); err != nil {
			t.Errorf("invoke: %v", err)
		}
		if err := q.Enqueue(p, []byte("m")); err != nil {
			t.Errorf("enqueue: %v", err)
		}
		if _, ok := q.TryDequeue(p); !ok {
			t.Error("dequeue failed")
		}
		c.Stop()
	})
	k.Run()
	if c.ManualQueueTransactions() != 3 {
		t.Fatalf("manual txns = %d, want 3", c.ManualQueueTransactions())
	}
	if c.StorageTransactions() < c.ManualQueueTransactions() {
		t.Fatal("hub transactions missing from total")
	}
	c.ResetMeters()
	if c.StorageTransactions() != 0 || c.Host.TotalMeter().Invocations != 0 {
		t.Fatal("reset incomplete")
	}
}
