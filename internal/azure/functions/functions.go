// Package functions simulates an Azure Functions app on the consumption
// plan: a pool of worker instances fed by an internal dispatch queue and
// grown by a rate-limited scale controller. The controller's gradual
// instance allocation is the mechanism behind the paper's Azure fan-out
// scheduling delays (Fig 14), and queue-triggered listeners' poll phase
// is the mechanism behind Az-Queue cold starts (Fig 10).
package functions

import (
	"fmt"
	"sort"
	"time"

	"statebench/internal/chaos"
	"statebench/internal/cloud/queue"
	"statebench/internal/obs/span"
	"statebench/internal/obs/tseries"
	"statebench/internal/platform"
	"statebench/internal/sim"
	"statebench/internal/trace"
)

// Handler is a function body. Compute is modeled with ctx.Busy; I/O by
// calling simulated services with ctx.Proc().
type Handler func(ctx *Context, payload []byte) ([]byte, error)

// Context is passed to executing handlers.
type Context struct {
	p    *sim.Proc
	host *Host
	fn   *Function
}

// Proc returns the simulation process executing this invocation.
func (c *Context) Proc() *sim.Proc { return c.p }

// Busy consumes d of virtual compute time.
func (c *Context) Busy(d time.Duration) { c.p.Sleep(d) }

// FunctionName returns the executing function's name.
func (c *Context) FunctionName() string { return c.fn.cfg.Name }

// Host returns the function app hosting this execution.
func (c *Context) Host() *Host { return c.host }

// Config describes one function in the app.
type Config struct {
	Name string
	// ConsumedMemMB models observed memory usage; Azure bills this
	// (rounded up to 128 MB), not a configured value.
	ConsumedMemMB int
	Handler       Handler
}

// Function is a registered function with its billing meter.
type Function struct {
	cfg   Config
	Meter platform.Meter
	// Execs counts completed executions; Errors counts handler errors.
	Execs  int64
	Errors int64
}

// Config returns the function's configuration.
func (f *Function) Config() Config { return f.cfg }

// Result is the outcome of one execution.
type Result struct {
	Output []byte
	Err    error
	// SchedDelay is submit-to-handler-start time (queueing + scale-out).
	SchedDelay time.Duration
	// Cold reports whether a fresh instance had to start for this work.
	Cold bool
	// ExecTime is the handler's wall time.
	ExecTime time.Duration
}

// workItem is one queued execution request. ctx is the submitter's
// trace context; the scheduling-delay and exec spans parent to it.
type workItem struct {
	fn        string
	payload   []byte
	submitted sim.Time
	cold      bool
	done      *sim.Future[Result]
	ctx       sim.TraceContext
}

// Stats aggregates host-level scheduling behavior.
type Stats struct {
	Submitted   int64
	Completed   int64
	ColdStarts  int64
	SchedDelays []time.Duration
	// MaxReady is the peak simultaneous ready instances.
	MaxReady int
}

// Host is one function app (deployment unit). All functions in an app
// share its instance pool, exactly as on the consumption plan.
type Host struct {
	k      *sim.Kernel
	rng    *sim.RNG
	name   string
	params platform.AzureParams

	fns     map[string]*Function
	pending []*workItem
	// pool holds the worker-instance lifecycle (idle tracking,
	// provisioning counters, reaping, cold-start stats); this package
	// keeps the scale-controller policy that drives it.
	pool  platform.Pool
	stats Stats

	// onHTTPActivity lets layered components (durable task hub) reset
	// their queue-poll back-off when an HTTP trigger proves the app is
	// active.
	onHTTPActivity []func()
	// onActivity fires on every Submit: an active app's listeners are
	// scheduled eagerly, so queue-trigger pollers reset their back-off.
	onActivity []func()

	// Logs, when non-nil, receives an Application-Insights-style
	// record per execution, cold start, and error.
	Logs *trace.Collector

	// Tracer, when non-nil, emits spans per execution: scheduling
	// delay (queue or coldstart) plus handler exec.
	Tracer *span.Tracer

	// Chaos, when non-nil, can recycle the worker instance as it picks
	// up a work item: the instance dies, the item is re-queued, and a
	// fresh (possibly cold) instance retries it.
	Chaos *chaos.Injector

	// timeline, when non-nil, receives dispatch-queue depth and (via the
	// instance pool) ready-instance occupancy gauges (pure observation).
	timeline *tseries.Series

	// scaledFromZeroAt records when the app last left the
	// scaled-to-zero state; queue listeners activating shortly after
	// pay the ColdPollPhase.
	scaledFromZeroAt sim.Time
	everScaled       bool

	// controllerArmed tracks whether a scale-controller tick is queued;
	// ticks are scheduled lazily so an idle app generates no events and
	// Kernel.Run terminates.
	controllerArmed bool
	stopped         bool
	stop            *sim.Future[struct{}]
}

// NewHost creates an app named name, scaled to zero.
func NewHost(k *sim.Kernel, name string, params platform.AzureParams) *Host {
	h := &Host{
		k:      k,
		rng:    k.Stream("azure/host/" + name),
		name:   name,
		params: params,
		fns:    make(map[string]*Function),
		stop:   sim.NewFuture[struct{}](k),
	}
	return h
}

// Name returns the app name.
func (h *Host) Name() string { return h.name }

// Params returns the calibration parameters.
func (h *Host) Params() platform.AzureParams { return h.params }

// Kernel returns the simulation kernel.
func (h *Host) Kernel() *sim.Kernel { return h.k }

// Stats returns a snapshot of scheduling statistics, merging the
// host's submission counters with the instance pool's lifecycle stats.
func (h *Host) Stats() Stats {
	s := h.stats
	ps := h.pool.Stats()
	s.ColdStarts = ps.ColdStarts
	s.MaxReady = ps.MaxReady
	return s
}

// SetTimeline enables per-window telemetry gauges: dispatch-queue depth
// on every Submit/requeue, plus the instance pool's ready-instance
// occupancy. Pure observation — no events, no RNG draws.
func (h *Host) SetTimeline(tl *tseries.Series) {
	h.timeline = tl
	h.pool.Timeline = tl
}

// ReadyInstances returns the number of started instances.
func (h *Host) ReadyInstances() int { return h.pool.Ready() }

// PendingWork returns the dispatch-queue length.
func (h *Host) PendingWork() int { return len(h.pending) }

// Register adds a function to the app.
func (h *Host) Register(cfg Config) (*Function, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("functions: name required")
	}
	if _, dup := h.fns[cfg.Name]; dup {
		return nil, fmt.Errorf("functions: %q already registered", cfg.Name)
	}
	if cfg.Handler == nil {
		return nil, fmt.Errorf("functions: %q has no handler", cfg.Name)
	}
	if cfg.ConsumedMemMB <= 0 {
		cfg.ConsumedMemMB = 128
	}
	if cfg.ConsumedMemMB > h.params.MemoryLimitMB {
		return nil, fmt.Errorf("functions: %q consumed memory %d exceeds plan limit %d", cfg.Name, cfg.ConsumedMemMB, h.params.MemoryLimitMB)
	}
	f := &Function{cfg: cfg}
	h.fns[cfg.Name] = f
	return f, nil
}

// MustRegister is Register that panics on error.
func (h *Host) MustRegister(cfg Config) *Function {
	f, err := h.Register(cfg)
	if err != nil {
		panic(err)
	}
	return f
}

// Function returns a registered function.
func (h *Host) Function(name string) (*Function, bool) {
	f, ok := h.fns[name]
	return f, ok
}

// OnHTTPActivity registers a callback fired whenever an HTTP trigger
// reaches the app (used by the durable extension to reset poll back-off).
func (h *Host) OnHTTPActivity(fn func()) { h.onHTTPActivity = append(h.onHTTPActivity, fn) }

// OnActivity registers a callback fired on every execution submission.
func (h *Host) OnActivity(fn func()) { h.onActivity = append(h.onActivity, fn) }

// Submit enqueues an execution of fn and returns a future for its
// result. It may be called from kernel or process context. Submitting
// to an idle app triggers immediate scale-out of one instance (the
// HTTP-style activation path); further growth is up to the controller.
func (h *Host) Submit(fn string, payload []byte) (*sim.Future[Result], error) {
	return h.SubmitCtx(fn, payload, sim.TraceContext{})
}

// SubmitCtx is Submit with an explicit trace context for the execution's
// spans, for callers that have one to propagate (HTTP triggers, queue
// listeners, the durable task hub). Submit may be called from kernel
// context, where there is no process to read the context from.
func (h *Host) SubmitCtx(fn string, payload []byte, ctx sim.TraceContext) (*sim.Future[Result], error) {
	if _, ok := h.fns[fn]; !ok {
		return nil, fmt.Errorf("functions: no such function %q", fn)
	}
	wi := &workItem{fn: fn, payload: payload, submitted: h.k.Now(), done: sim.NewFuture[Result](h.k), ctx: ctx}
	h.stats.Submitted++
	for _, cb := range h.onActivity {
		cb()
	}
	h.pending = append(h.pending, wi)
	h.timeline.ObserveQueueDepth(h.k.Now(), int64(len(h.pending)))
	h.dispatch()
	if h.pool.Provisioning() == 0 {
		h.startInstance()
	}
	h.armController()
	return wi.done, nil
}

// InvokeHTTP is the HTTP-trigger entry: front-end RTT, then submit and
// wait for the result.
func (h *Host) InvokeHTTP(p *sim.Proc, fn string, payload []byte) (Result, error) {
	fut, err := h.InvokeHTTPAsync(p, fn, payload)
	if err != nil {
		return Result{}, err
	}
	res, _ := fut.Await(p)
	return res, nil
}

// InvokeHTTPAsync is InvokeHTTP without waiting for the execution to
// finish (HTTP 202-style), used by chains whose completion is observed
// elsewhere.
func (h *Host) InvokeHTTPAsync(p *sim.Proc, fn string, payload []byte) (*sim.Future[Result], error) {
	p.Sleep(h.params.HTTPTriggerRTT.Sample(h.rng))
	for _, cb := range h.onHTTPActivity {
		cb()
	}
	return h.SubmitCtx(fn, payload, p.TraceCtx)
}

// dispatch pairs pending work with idle instances.
func (h *Host) dispatch() {
	for len(h.pending) > 0 {
		inst, ok := h.pool.PopIdle()
		if !ok {
			return
		}
		wi := h.pending[0]
		h.pending = h.pending[1:]
		h.run(inst, wi)
	}
}

// run executes one work item on an instance, then returns the instance
// to the pool (or hands it the next pending item).
func (h *Host) run(inst *platform.Container, wi *workItem) {
	f := h.fns[wi.fn]
	h.k.Spawn(fmt.Sprintf("%s/%s", h.name, wi.fn), func(p *sim.Proc) {
		sched := p.Now() - wi.submitted
		h.stats.SchedDelays = append(h.stats.SchedDelays, sched)
		if sched > 0 {
			// Emitted in hindsight: cold if a fresh instance was
			// provisioned for this item, plain scheduling wait otherwise.
			k, n := span.KindQueue, "func/sched/"+wi.fn
			if wi.cold {
				k, n = span.KindCold, "func/cold/"+wi.fn
			}
			h.Tracer.Emit(k, n, wi.submitted, p.Now(), wi.ctx)
		}
		p.Sleep(h.params.Dispatch.Sample(h.rng))

		if h.Chaos != nil {
			if flt, ok := h.Chaos.Next(wi.ctx, "azfunc", wi.fn); ok {
				// Host recycle: the instance dies before the handler
				// starts. The burnt ramp-up time is billed, the work
				// item goes back on the dispatch queue (its result
				// future stays open), and a surviving or fresh instance
				// retries it — possibly behind a new cold start.
				crashStart := p.Now()
				p.Sleep(flt.Delay)
				f.Meter.RecordAzure(p.Now()-crashStart, f.cfg.ConsumedMemMB)
				h.pool.Retire(inst)
				h.Chaos.NoteRedispatch()
				wi.cold = false
				h.pending = append(h.pending, wi)
				h.timeline.ObserveQueueDepth(p.Now(), int64(len(h.pending)))
				h.dispatch()
				if h.pool.Provisioning() == 0 {
					h.startInstance()
				}
				h.armController()
				return
			}
		}

		execStart := p.Now()
		execSpan := h.Tracer.Start(execStart, span.KindExec, "func/exec/"+wi.fn, wi.ctx)
		p.TraceCtx = execSpan.Context()
		out, err := f.cfg.Handler(&Context{p: p, host: h, fn: f}, wi.payload)
		p.TraceCtx = wi.ctx
		exec := p.Now() - execStart
		if exec > h.params.TimeLimit {
			exec = h.params.TimeLimit
			err = fmt.Errorf("functions: %s exceeded %v time limit", wi.fn, h.params.TimeLimit)
			out = nil
		}
		// Span end matches the billed (clamped) duration, like the meter.
		execSpan.End(execStart + exec)
		f.Meter.RecordAzure(exec, f.cfg.ConsumedMemMB)
		f.Execs++
		if err != nil {
			f.Errors++
		}
		if h.Logs != nil {
			h.Logs.Invocation(p.Now(), wi.fn, exec)
			if wi.cold {
				h.Logs.ColdStart(p.Now(), wi.fn, sched)
			}
			if err != nil {
				h.Logs.Error(p.Now(), wi.fn, err.Error())
			}
		}
		h.stats.Completed++
		wi.done.Complete(Result{Output: out, Err: err, SchedDelay: sched, Cold: wi.cold, ExecTime: exec}, nil)

		// Instance picks up the next item or goes idle.
		if inst.Stopped {
			return
		}
		if len(h.pending) > 0 {
			next := h.pending[0]
			h.pending = h.pending[1:]
			h.run(inst, next)
			return
		}
		h.pool.PushIdle(inst, p.Now())
		h.armController() // idle instances must eventually be reaped
	})
}

// startInstance begins provisioning a new worker.
func (h *Host) startInstance() {
	if h.pool.Provisioning() >= h.params.MaxInstances {
		return
	}
	if h.pool.Provisioning() == 0 {
		h.scaledFromZeroAt = h.k.Now()
		h.everScaled = true
	}
	h.pool.BeginStart()
	// The controller binds a queued item to the starting instance at
	// launch time (message prefetch); if this instance start stalls,
	// that item waits out the stall — the Fig 14 tail mechanism.
	var reserved *workItem
	if len(h.pending) > 0 {
		reserved = h.pending[0]
		h.pending = h.pending[1:]
		reserved.cold = true
	}
	delay := h.params.InstanceColdStart.Sample(h.rng)
	h.k.After(delay, func() {
		inst := h.pool.FinishStart(h.k.Now())
		if reserved != nil {
			h.run(inst, reserved)
			return
		}
		if len(h.pending) > 0 {
			wi := h.pending[0]
			h.pending = h.pending[1:]
			wi.cold = true
			h.run(inst, wi)
			return
		}
		h.pool.PushIdle(inst, h.k.Now())
		h.armController()
	})
}

// armController schedules the next scale-controller tick if one is not
// already queued and there is anything for it to do.
func (h *Host) armController() {
	if h.controllerArmed || h.stopped {
		return
	}
	if len(h.pending) == 0 && h.pool.IdleCount() == 0 && h.pool.Starting() == 0 {
		return
	}
	h.controllerArmed = true
	h.k.After(h.params.ScaleEvalInterval, h.controllerTick)
}

// controllerTick is one scale-controller evaluation: scale out while
// work is queued, reap instances idle past the timeout, re-arm if more
// work remains.
func (h *Host) controllerTick() {
	h.controllerArmed = false
	if h.stopped {
		return
	}
	if len(h.pending) > 0 {
		for i := 0; i < h.params.ScaleOutStep; i++ {
			h.startInstance()
		}
	}
	h.pool.ReapIdle(h.k.Now() - h.params.IdleInstanceTimeout)
	h.armController()
}

// Stop halts the scale controller and all queue-trigger listeners (so a
// Kernel.Run over a finished workload terminates).
func (h *Host) Stop() {
	h.stopped = true
	if !h.stop.Done() {
		h.stop.Complete(struct{}{}, nil)
	}
}

// StopSignal exposes the host's stop future for layered listeners.
func (h *Host) StopSignal() *sim.Future[struct{}] { return h.stop }

// TotalMeter sums billing across all functions in the app.
func (h *Host) TotalMeter() platform.Meter {
	// Sum in sorted name order: float accumulation must not depend on
	// map iteration order, or two identical campaigns can disagree in
	// the last ULP of the billed GB-s.
	names := make([]string, 0, len(h.fns))
	for name := range h.fns {
		names = append(names, name)
	}
	sort.Strings(names)
	var m platform.Meter
	for _, name := range names {
		m.Add(h.fns[name].Meter)
	}
	return m
}

// ResetMeters zeroes meters, execution counters, and scheduling stats.
func (h *Host) ResetMeters() {
	for _, f := range h.fns {
		f.Meter.Reset()
		f.Execs, f.Errors = 0, 0
	}
	h.stats = Stats{}
	h.pool.ResetStats()
}

// QueueTrigger binds fn to a billed storage queue: a listener polls q
// with adaptive back-off (every poll is a billed transaction) and
// submits each message for execution. If the app is scaled to zero when
// a message is found, the scale-controller activation phase
// (ColdPollPhase) is charged before execution — the Az-Queue cold-start
// mechanism.
func (h *Host) QueueTrigger(q *queue.Queue, fn string) error {
	if _, ok := h.fns[fn]; !ok {
		return fmt.Errorf("functions: no such function %q", fn)
	}
	kick := sim.NewFuture[struct{}](h.k)
	h.OnActivity(func() {
		if !kick.Done() {
			kick.Complete(struct{}{}, nil)
		}
	})
	qp := q // capture
	h.k.Spawn(fmt.Sprintf("%s/listener/%s", h.name, q.Name()), func(p *sim.Proc) {
		interval := 100 * time.Millisecond
		maxPoll := h.params.TriggerMaxPoll
		if maxPoll <= 0 {
			maxPoll = 30 * time.Second
		}
		for {
			if h.stop.Done() {
				return
			}
			if m, ok := qp.TryDequeue(p); ok {
				interval = 100 * time.Millisecond
				coldApp := h.pool.Provisioning() == 0 ||
					(h.everScaled && p.Now()-h.scaledFromZeroAt < time.Minute)
				if coldApp {
					// Scale-from-zero listener activation (the
					// Az-Queue cold-start mechanism, Fig 10).
					actStart := p.Now()
					p.Sleep(h.params.ColdPollPhase.Sample(h.rng))
					h.Tracer.Emit(span.KindCold, "func/activation/"+fn, actStart, p.Now(), m.Ctx)
				}
				if _, err := h.SubmitCtx(fn, m.Body, m.Ctx); err != nil {
					continue
				}
				continue
			}
			// Back off while idle; reset when the app shows activity
			// (listeners are scheduled eagerly on a busy app).
			if _, _, kicked := kick.AwaitTimeout(p, interval); kicked {
				kick = sim.NewFuture[struct{}](h.k)
				interval = 100 * time.Millisecond
			} else {
				interval *= 2
				if interval > maxPoll {
					interval = maxPoll
				}
			}
		}
	})
	return nil
}
