package functions

import (
	"testing"
	"time"

	"statebench/internal/cloud/queue"
	"statebench/internal/platform"
	"statebench/internal/sim"
)

// fixedParams makes the host deterministic for exact assertions.
func fixedParams() platform.AzureParams {
	p := platform.DefaultAzure()
	p.HTTPTriggerRTT = sim.Fixed{D: 10 * time.Millisecond}
	p.InstanceColdStart = sim.Fixed{D: time.Second}
	p.Dispatch = sim.Fixed{D: 5 * time.Millisecond}
	p.ScaleEvalInterval = 2 * time.Second
	p.ScaleOutStep = 1
	p.MaxInstances = 4
	p.IdleInstanceTimeout = time.Minute
	p.ColdPollPhase = sim.Fixed{D: 10 * time.Second}
	return p
}

func busyFn(d time.Duration) Handler {
	return func(ctx *Context, payload []byte) ([]byte, error) {
		ctx.Busy(d)
		return payload, nil
	}
}

func TestRegisterValidation(t *testing.T) {
	k := sim.NewKernel(1)
	h := NewHost(k, "app", fixedParams())
	if _, err := h.Register(Config{Name: "", Handler: busyFn(0)}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := h.Register(Config{Name: "f"}); err == nil {
		t.Fatal("nil handler accepted")
	}
	if _, err := h.Register(Config{Name: "f", Handler: busyFn(0), ConsumedMemMB: 9999}); err == nil {
		t.Fatal("over-limit memory accepted")
	}
	if _, err := h.Register(Config{Name: "f", Handler: busyFn(0)}); err != nil {
		t.Fatalf("valid register failed: %v", err)
	}
	if _, err := h.Register(Config{Name: "f", Handler: busyFn(0)}); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestHTTPInvokeColdThenWarm(t *testing.T) {
	k := sim.NewKernel(1)
	h := NewHost(k, "app", fixedParams())
	h.MustRegister(Config{Name: "f", ConsumedMemMB: 256, Handler: busyFn(100 * time.Millisecond)})
	var first, second Result
	k.Spawn("client", func(p *sim.Proc) {
		var err error
		first, err = h.InvokeHTTP(p, "f", []byte("x"))
		if err != nil {
			t.Errorf("invoke: %v", err)
		}
		second, err = h.InvokeHTTP(p, "f", []byte("y"))
		if err != nil {
			t.Errorf("invoke: %v", err)
		}
	})
	h.Stop()
	k.Run()
	if !first.Cold {
		t.Fatal("first invoke should be cold")
	}
	if first.SchedDelay != time.Second {
		t.Fatalf("first sched delay = %v, want 1s instance cold start", first.SchedDelay)
	}
	if second.Cold || second.SchedDelay != 0 {
		t.Fatalf("second invoke should be warm immediate, got %+v", second)
	}
	if string(second.Output) != "y" {
		t.Fatalf("output = %q", second.Output)
	}
}

func TestScaleControllerAddsInstancesGradually(t *testing.T) {
	k := sim.NewKernel(1)
	h := NewHost(k, "app", fixedParams()) // step 1 per 2s, max 4
	h.MustRegister(Config{Name: "slow", Handler: busyFn(20 * time.Second)})
	futs := make([]*sim.Future[Result], 4)
	k.Spawn("client", func(p *sim.Proc) {
		for i := range futs {
			f, err := h.Submit("slow", nil)
			if err != nil {
				t.Errorf("submit: %v", err)
				return
			}
			futs[i] = f
		}
		for _, f := range futs {
			if _, err := f.Await(p); err != nil {
				t.Errorf("await: %v", err)
			}
		}
	})
	k.Run()
	delays := h.Stats().SchedDelays
	if len(delays) != 4 {
		t.Fatalf("got %d sched delays", len(delays))
	}
	// First instance starts immediately (1s cold). Controller adds one
	// instance per 2s tick afterwards: delays must be strictly staggered.
	if delays[0] != time.Second {
		t.Fatalf("first delay = %v", delays[0])
	}
	for i := 1; i < 4; i++ {
		if delays[i] <= delays[i-1] {
			t.Fatalf("delays not staggered by gradual scale-out: %v", delays)
		}
	}
	if h.Stats().MaxReady != 4 {
		t.Fatalf("max ready = %d, want 4", h.Stats().MaxReady)
	}
}

func TestMaxInstancesCap(t *testing.T) {
	k := sim.NewKernel(1)
	p := fixedParams()
	p.MaxInstances = 2
	h := NewHost(k, "app", p)
	h.MustRegister(Config{Name: "slow", Handler: busyFn(5 * time.Second)})
	k.Spawn("client", func(pr *sim.Proc) {
		var futs []*sim.Future[Result]
		for i := 0; i < 6; i++ {
			f, _ := h.Submit("slow", nil)
			futs = append(futs, f)
		}
		for _, f := range futs {
			if _, err := f.Await(pr); err != nil {
				t.Errorf("await: %v", err)
			}
		}
	})
	k.Run()
	if h.Stats().MaxReady > 2 {
		t.Fatalf("max ready = %d, exceeds cap 2", h.Stats().MaxReady)
	}
	// 6 jobs, 2 instances, 5s each => at least 3 serial rounds.
	if got := h.Stats().Completed; got != 6 {
		t.Fatalf("completed = %d", got)
	}
}

func TestInstanceReuseDrainsQueueWithoutNewColdStarts(t *testing.T) {
	k := sim.NewKernel(1)
	p := fixedParams()
	p.ScaleEvalInterval = time.Hour // controller effectively off
	h := NewHost(k, "app", p)
	h.MustRegister(Config{Name: "f", Handler: busyFn(100 * time.Millisecond)})
	done := 0
	k.Spawn("client", func(pr *sim.Proc) {
		var futs []*sim.Future[Result]
		for i := 0; i < 5; i++ {
			f, _ := h.Submit("f", nil)
			futs = append(futs, f)
		}
		for _, f := range futs {
			r, _ := f.Await(pr)
			if r.Err == nil {
				done++
			}
		}
	})
	k.RunUntil(time.Hour / 2)
	if done != 5 {
		t.Fatalf("done = %d, want 5 (single instance should drain the queue)", done)
	}
	if h.Stats().ColdStarts != 1 {
		t.Fatalf("cold starts = %d, want 1", h.Stats().ColdStarts)
	}
}

func TestIdleInstancesReaped(t *testing.T) {
	k := sim.NewKernel(1)
	h := NewHost(k, "app", fixedParams()) // idle timeout 1 min
	h.MustRegister(Config{Name: "f", Handler: busyFn(10 * time.Millisecond)})
	k.Spawn("client", func(p *sim.Proc) {
		if _, err := h.InvokeHTTP(p, "f", nil); err != nil {
			t.Errorf("invoke: %v", err)
		}
	})
	k.Run() // runs until idle reaping completes and no events remain
	if h.ReadyInstances() != 0 {
		t.Fatalf("ready = %d after idle timeout, want 0", h.ReadyInstances())
	}
}

func TestAzureBillingOnConsumedMemory(t *testing.T) {
	k := sim.NewKernel(1)
	h := NewHost(k, "app", fixedParams())
	f := h.MustRegister(Config{Name: "f", ConsumedMemMB: 300, Handler: busyFn(2 * time.Second)})
	k.Spawn("client", func(p *sim.Proc) {
		if _, err := h.InvokeHTTP(p, "f", nil); err != nil {
			t.Errorf("invoke: %v", err)
		}
	})
	h.Stop()
	k.Run()
	want := 2 * 384.0 / 1024 // 2s at 300->384 MB
	if d := f.Meter.BilledGBs - want; d > 1e-9 || d < -1e-9 {
		t.Fatalf("BilledGBs = %v, want %v", f.Meter.BilledGBs, want)
	}
	if f.Execs != 1 {
		t.Fatalf("execs = %d", f.Execs)
	}
}

func TestQueueTriggerExecutesAndBillsPolls(t *testing.T) {
	k := sim.NewKernel(1)
	h := NewHost(k, "app", fixedParams())
	var got []byte
	h.MustRegister(Config{Name: "f", Handler: func(ctx *Context, payload []byte) ([]byte, error) {
		got = payload
		return nil, nil
	}})
	qp := queue.DefaultParams()
	qp.MaxPoll = time.Second
	q := queue.New(k, "trigger", qp)
	if err := h.QueueTrigger(q, "f"); err != nil {
		t.Fatal(err)
	}
	k.At(5*time.Second, func() {
		if err := q.EnqueueFromKernel([]byte("msg")); err != nil {
			t.Error(err)
		}
	})
	k.At(40*time.Second, func() { h.Stop() })
	k.Run()
	if string(got) != "msg" {
		t.Fatalf("queue trigger did not run: %q", got)
	}
	if q.Stats().EmptyPolls < 3 {
		t.Fatalf("empty polls = %d; idle polling must be metered", q.Stats().EmptyPolls)
	}
}

func TestQueueTriggerColdPollPhase(t *testing.T) {
	k := sim.NewKernel(1)
	h := NewHost(k, "app", fixedParams()) // ColdPollPhase fixed 10s
	var ranAt time.Duration
	h.MustRegister(Config{Name: "f", Handler: func(ctx *Context, payload []byte) ([]byte, error) {
		ranAt = ctx.Proc().Now()
		return nil, nil
	}})
	q := queue.New(k, "trigger", queue.DefaultParams())
	if err := h.QueueTrigger(q, "f"); err != nil {
		t.Fatal(err)
	}
	k.At(time.Second, func() {
		if err := q.EnqueueFromKernel([]byte("m")); err != nil {
			t.Error(err)
		}
	})
	k.At(2*time.Minute, func() { h.Stop() })
	k.Run()
	// Cold path: poll finds message, + 10s activation + 1s instance start.
	if ranAt < 12*time.Second {
		t.Fatalf("ran at %v; cold-poll activation phase missing", ranAt)
	}
}

func TestStopTerminatesListeners(t *testing.T) {
	k := sim.NewKernel(1)
	h := NewHost(k, "app", fixedParams())
	h.MustRegister(Config{Name: "f", Handler: busyFn(0)})
	q := queue.New(k, "trigger", queue.DefaultParams())
	if err := h.QueueTrigger(q, "f"); err != nil {
		t.Fatal(err)
	}
	k.At(time.Minute, func() { h.Stop() })
	end := k.Run() // must terminate
	if end > 2*time.Minute {
		t.Fatalf("kernel ran to %v after Stop", end)
	}
}

func TestResetMeters(t *testing.T) {
	k := sim.NewKernel(1)
	h := NewHost(k, "app", fixedParams())
	h.MustRegister(Config{Name: "f", Handler: busyFn(time.Second)})
	k.Spawn("client", func(p *sim.Proc) {
		if _, err := h.InvokeHTTP(p, "f", nil); err != nil {
			t.Errorf("invoke: %v", err)
		}
	})
	h.Stop()
	k.Run()
	if h.TotalMeter().Invocations != 1 {
		t.Fatal("meter empty before reset")
	}
	h.ResetMeters()
	if h.TotalMeter().Invocations != 0 || len(h.Stats().SchedDelays) != 0 {
		t.Fatal("reset incomplete")
	}
}
