package durable

import (
	"encoding/json"
	"fmt"
	"time"

	"statebench/internal/azure/functions"
	"statebench/internal/obs/span"
	"statebench/internal/sim"
)

// Status is an orchestration lifecycle state, matching the states the
// paper's latency methodology observes ('Pending' → 'Running' →
// 'Completed'/'Failed').
type Status string

// Orchestration statuses.
const (
	StatusPending   Status = "Pending"
	StatusRunning   Status = "Running"
	StatusCompleted Status = "Completed"
	StatusFailed    Status = "Failed"
)

// Handle tracks one orchestration instance from the client's view.
type Handle struct {
	ID string
	// CreatedAt is when the client scheduled the orchestration.
	CreatedAt sim.Time
	// RunningAt is when the first episode began (Pending → Running).
	RunningAt sim.Time
	// CompletedAt is when the orchestration finished.
	CompletedAt sim.Time

	status Status
	output []byte
	err    error
	done   *sim.Future[[]byte]
}

func newHandle(h *Hub, id string, created sim.Time) *Handle {
	return &Handle{ID: id, CreatedAt: created, status: StatusPending, done: sim.NewFuture[[]byte](h.k)}
}

// Status returns the current lifecycle state.
func (hd *Handle) Status() Status { return hd.status }

// markRunning transitions Pending → Running (idempotent).
func (hd *Handle) markRunning(now sim.Time) {
	if hd.status == StatusPending {
		hd.status = StatusRunning
		hd.RunningAt = now
	}
}

// complete finishes the orchestration.
func (hd *Handle) complete(now sim.Time, out []byte, err error) {
	hd.CompletedAt = now
	hd.output = out
	hd.err = err
	if err != nil {
		hd.status = StatusFailed
	} else {
		hd.status = StatusCompleted
	}
	hd.done.Complete(out, err)
}

// Wait blocks until the orchestration completes and returns its output.
func (hd *Handle) Wait(p *sim.Proc) ([]byte, error) { return hd.done.Await(p) }

// ColdStart returns the Pending→Running delay — the paper's durable
// cold-start metric.
func (hd *Handle) ColdStart() time.Duration { return hd.RunningAt - hd.CreatedAt }

// E2E returns the Running→Completed latency — the paper's end-to-end
// metric for durable workflows.
func (hd *Handle) E2E() time.Duration { return hd.CompletedAt - hd.RunningAt }

// Total returns the client-observed Pending→Completed time.
func (hd *Handle) Total() time.Duration { return hd.CompletedAt - hd.CreatedAt }

// starterFunction is the HTTP-triggered client function that schedules
// orchestrations (a real, billed function execution, as in Azure).
const starterFunction = "__DurableStarter"

// EnsureStarter registers the HTTP starter function; NewClient calls it.
func (h *Hub) ensureStarter() {
	if _, ok := h.host.Function(starterFunction); ok {
		return
	}
	h.host.MustRegister(functions.Config{
		Name:          starterFunction,
		ConsumedMemMB: 128,
		Handler: func(fctx *functions.Context, payload []byte) ([]byte, error) {
			var m message
			if err := json.Unmarshal(payload, &m); err != nil {
				return nil, err
			}
			if err := h.sendFromProc(fctx.Proc(), m); err != nil {
				return nil, err
			}
			return []byte(m.Instance), nil
		},
	})
}

// Client schedules orchestrations and signals entities from outside the
// task hub (the HTTP-trigger path of the paper's deployments).
type Client struct {
	hub *Hub
}

// NewClient returns a client bound to hub.
func NewClient(hub *Hub) *Client {
	hub.ensureStarter()
	return &Client{hub: hub}
}

// StartOrchestration schedules orchestrator name with input and returns
// a handle. The call models the HTTP trigger: front-end RTT, a billed
// starter-function execution, and an ExecutionStarted control message.
func (c *Client) StartOrchestration(p *sim.Proc, name string, input []byte) (*Handle, error) {
	h := c.hub
	if _, ok := h.orchestrators[name]; !ok {
		return nil, fmt.Errorf("durable: no such orchestrator %q", name)
	}
	if limit := h.params.DurablePayloadLimit; limit > 0 && len(input) > limit {
		return nil, &PayloadTooLargeError{What: "orchestration input", Size: len(input), Limit: limit}
	}
	id := h.newInstanceID(name)
	st := &orchState{id: id, name: name, handle: newHandle(h, id, p.Now())}
	st.orchSpan = h.Tracer.Start(p.Now(), span.KindOrchestration, "durable/"+name, p.TraceCtx)
	st.tctx = st.orchSpan.Context()
	h.orchs[id] = st

	body, err := json.Marshal(stamped(message{Kind: kindExecutionStarted, Instance: id, Input: input}, st.tctx))
	if err != nil {
		return nil, err
	}
	res, err := h.host.InvokeHTTP(p, starterFunction, body)
	if err != nil {
		return nil, err
	}
	if res.Err != nil {
		return nil, res.Err
	}
	return st.handle, nil
}

// Run starts an orchestration and waits for completion, returning its
// output and handle.
func (c *Client) Run(p *sim.Proc, name string, input []byte) ([]byte, *Handle, error) {
	hd, err := c.StartOrchestration(p, name, input)
	if err != nil {
		return nil, nil, err
	}
	out, err := hd.Wait(p)
	return out, hd, err
}

// RaiseEvent delivers a named external event to a running
// orchestration (matched with WaitForExternalEvent by name, buffered if
// the orchestration is not waiting yet).
func (c *Client) RaiseEvent(p *sim.Proc, instanceID, name string, payload []byte) error {
	h := c.hub
	if limit := h.params.DurablePayloadLimit; limit > 0 && len(payload) > limit {
		return &PayloadTooLargeError{What: "external event " + name, Size: len(payload), Limit: limit}
	}
	if _, ok := h.orchs[instanceID]; !ok {
		return fmt.Errorf("durable: no such instance %q", instanceID)
	}
	return h.sendFromProc(p, message{Kind: kindEventRaised, Instance: instanceID, Name: name, Input: payload})
}

// SignalEntity sends a one-way operation to an entity from the client.
func (c *Client) SignalEntity(p *sim.Proc, e EntityID, op string, input []byte) error {
	h := c.hub
	if limit := h.params.DurablePayloadLimit; limit > 0 && len(input) > limit {
		return &PayloadTooLargeError{What: "entity signal", Size: len(input), Limit: limit}
	}
	return h.sendFromProc(p, message{Kind: kindEntityOp, Instance: e.instanceID(), Op: op, Input: input, Signal: true})
}

// ReadEntityState calls the built-in "get"-style read: it routes a
// two-way operation through a transient orchestration-free response
// path. For simplicity and determinism the client reads the persisted
// state directly with a billed table read, mirroring the status-query
// API cost.
func (c *Client) ReadEntityState(p *sim.Proc, e EntityID) ([]byte, bool) {
	return c.hub.store.QueryEntityState(p, e.instanceID())
}

// Handle returns the handle for an instance ID, if known.
func (c *Client) Handle(id string) (*Handle, bool) {
	st, ok := c.hub.orchs[id]
	if !ok {
		return nil, false
	}
	return st.handle, true
}
