package durable

import (
	"fmt"
	"time"
)

// histEvent is one event-sourcing history record. The full event list
// for an orchestration instance is stored in the history table and
// re-read on every episode, exactly like the Durable Task Framework.
type histEvent struct {
	Seq    int    `json:"seq"`
	Kind   string `json:"kind"`
	TaskID int    `json:"taskId,omitempty"`
	Name   string `json:"name,omitempty"`
	Op     string `json:"op,omitempty"`
	Data   []byte `json:"data,omitempty"`
	Error  string `json:"error,omitempty"`
}

// History event kinds.
const (
	evExecutionStarted   = "ExecutionStarted"
	evTaskScheduled      = "TaskScheduled"
	evTaskCompleted      = "TaskCompleted"
	evTaskFailed         = "TaskFailed"
	evTimerCreated       = "TimerCreated"
	evTimerFired         = "TimerFired"
	evEntityCalled       = "EntityCalled"
	evEntityResponded    = "EntityResponded"
	evSubOrchCreated     = "SubOrchCreated"
	evSubOrchCompleted   = "SubOrchCompleted"
	evSubOrchFailed      = "SubOrchFailed"
	evExecutionCompleted = "ExecutionCompleted"
	evExecutionFailed    = "ExecutionFailed"
	evEventWaited        = "EventWaited"
	evEventRaised        = "EventRaised"
)

// pendingSentinel is panicked by awaits on incomplete tasks: it ends the
// episode so the orchestrator is unloaded until new results arrive —
// the replay execution model.
type pendingSentinel struct{}

// orchFailure wraps a user-visible orchestration failure raised from
// inside context calls (payload limits, nondeterminism).
type orchFailure struct{ err error }

// continueAsNew restarts the orchestration with fresh history.
type continueAsNew struct{ input []byte }

// EntityID addresses a durable entity instance (class name + key).
type EntityID struct {
	Name string
	Key  string
}

// instanceID returns the task-hub instance string for the entity.
func (e EntityID) instanceID() string { return "@" + e.Name + "@" + e.Key }

// String implements fmt.Stringer.
func (e EntityID) String() string { return e.instanceID() }

// actionKind enumerates side effects recorded during an episode.
type actionKind int

const (
	actActivity actionKind = iota
	actTimer
	actEntity
	actSubOrch
	actEventWait
)

// action is one side effect to perform after the episode persists.
type action struct {
	kind   actionKind
	taskID int
	name   string
	op     string
	input  []byte
	entity EntityID
	delay  time.Duration
	signal bool
}

// Task is a durable task handle (activity call, entity call, timer, or
// sub-orchestration) created by an OrchestrationContext.
type Task struct {
	ctx *OrchestrationContext
	id  int
}

// Await returns the task's result. If the result has not arrived yet,
// the episode ends (the orchestrator unloads) and the function will be
// replayed when it does — callers just see Await return on a later
// replay.
func (t *Task) Await() ([]byte, error) {
	if ev, ok := t.ctx.results[t.id]; ok {
		if ev.Error != "" {
			return nil, fmt.Errorf("durable: task %d (%s): %s", t.id, ev.Name, ev.Error)
		}
		return ev.Data, nil
	}
	panic(pendingSentinel{})
}

// Done reports whether the task has completed (never unloads).
func (t *Task) Done() bool {
	_, ok := t.ctx.results[t.id]
	return ok
}

// OrchestrationContext is the API surface available to orchestrator
// functions. All scheduling goes through it so that replays are
// deterministic.
type OrchestrationContext struct {
	hub      *Hub
	instance string

	input     []byte
	counter   int
	scheduled map[int]histEvent // by task ID, from history or this episode
	results   map[int]histEvent // completions by task ID
	actions   []action
	replayed  bool // true if prior episodes existed (IsReplaying)
	// raisedPool holds external events not yet claimed by a waiter,
	// queued per name in arrival order.
	raisedPool map[string][]histEvent
}

func newOrchContext(h *Hub, instance string, events []histEvent) *OrchestrationContext {
	ctx := &OrchestrationContext{
		hub:       h,
		instance:  instance,
		scheduled: make(map[int]histEvent),
		results:   make(map[int]histEvent),
	}
	// External events are matched by NAME in arrival order: raised
	// events queue up per name and waiter tasks claim them in creation
	// order, exactly like the Durable Task Framework's buffered events.
	ctx.raisedPool = map[string][]histEvent{}
	raised := ctx.raisedPool
	var waiters []histEvent
	for _, ev := range events {
		switch ev.Kind {
		case evExecutionStarted:
			ctx.input = ev.Data
		case evTaskScheduled, evTimerCreated, evEntityCalled, evSubOrchCreated:
			ctx.scheduled[ev.TaskID] = ev
			ctx.replayed = true
		case evEventWaited:
			ctx.scheduled[ev.TaskID] = ev
			ctx.replayed = true
			waiters = append(waiters, ev)
		case evEventRaised:
			raised[ev.Name] = append(raised[ev.Name], ev)
		case evTaskCompleted, evTaskFailed, evTimerFired, evEntityResponded, evSubOrchCompleted, evSubOrchFailed:
			ctx.results[ev.TaskID] = ev
		}
	}
	for _, w := range waiters {
		if q := raised[w.Name]; len(q) > 0 {
			ev := q[0]
			raised[w.Name] = q[1:]
			ctx.results[w.TaskID] = histEvent{Kind: evEventRaised, TaskID: w.TaskID, Name: w.Name, Data: ev.Data}
		}
	}
	return ctx
}

// InstanceID returns this orchestration's instance ID.
func (c *OrchestrationContext) InstanceID() string { return c.instance }

// IsReplaying reports whether any prior episode has run; user code uses
// it to suppress duplicated side effects such as logging.
func (c *OrchestrationContext) IsReplaying() bool { return c.replayed }

// fail aborts the orchestration with err (recovered by the episode
// runner and recorded as ExecutionFailed).
func (c *OrchestrationContext) fail(err error) {
	panic(orchFailure{err: err})
}

// nextID allocates the deterministic task sequence number and checks
// replay consistency against history.
func (c *OrchestrationContext) nextID(kind, name string) (int, bool) {
	id := c.counter
	c.counter++
	if ev, ok := c.scheduled[id]; ok {
		if ev.Kind != kind || ev.Name != name {
			c.fail(fmt.Errorf("durable: non-deterministic orchestrator: history has %s(%s) at %d, code asked %s(%s)",
				ev.Kind, ev.Name, id, kind, name))
		}
		return id, true
	}
	return id, false
}

// checkPayload enforces the durable 64 KB cross-function payload limit.
func (c *OrchestrationContext) checkPayload(what string, size int) {
	if limit := c.hub.params.DurablePayloadLimit; limit > 0 && size > limit {
		c.fail(&PayloadTooLargeError{What: what, Size: size, Limit: limit})
	}
}

// CallActivity schedules a stateless activity and returns its task.
func (c *OrchestrationContext) CallActivity(name string, input []byte) *Task {
	c.checkPayload("activity "+name+" input", len(input))
	id, inHistory := c.nextID(evTaskScheduled, name)
	if !inHistory {
		ev := histEvent{Kind: evTaskScheduled, TaskID: id, Name: name, Data: input}
		c.scheduled[id] = ev
		c.actions = append(c.actions, action{kind: actActivity, taskID: id, name: name, input: input})
	}
	return &Task{ctx: c, id: id}
}

// CallEntity schedules a two-way entity operation and returns its task.
func (c *OrchestrationContext) CallEntity(entity EntityID, op string, input []byte) *Task {
	c.checkPayload("entity "+entity.String()+" op "+op, len(input))
	id, inHistory := c.nextID(evEntityCalled, entity.instanceID())
	if !inHistory {
		ev := histEvent{Kind: evEntityCalled, TaskID: id, Name: entity.instanceID(), Op: op, Data: input}
		c.scheduled[id] = ev
		c.actions = append(c.actions, action{kind: actEntity, taskID: id, entity: entity, op: op, input: input})
	}
	return &Task{ctx: c, id: id}
}

// SignalEntity sends a one-way entity operation (fire and forget).
func (c *OrchestrationContext) SignalEntity(entity EntityID, op string, input []byte) {
	c.checkPayload("entity "+entity.String()+" signal "+op, len(input))
	id, inHistory := c.nextID(evEntityCalled, entity.instanceID())
	if !inHistory {
		ev := histEvent{Kind: evEntityCalled, TaskID: id, Name: entity.instanceID(), Op: op, Data: input}
		c.scheduled[id] = ev
		// A signal is immediately "completed" — nothing to await.
		c.results[id] = histEvent{Kind: evEntityResponded, TaskID: id}
		c.actions = append(c.actions, action{kind: actEntity, taskID: id, entity: entity, op: op, input: input, signal: true})
	}
}

// CallSubOrchestrator starts a child orchestration and returns its task.
func (c *OrchestrationContext) CallSubOrchestrator(name string, input []byte) *Task {
	c.checkPayload("sub-orchestration "+name+" input", len(input))
	id, inHistory := c.nextID(evSubOrchCreated, name)
	if !inHistory {
		ev := histEvent{Kind: evSubOrchCreated, TaskID: id, Name: name, Data: input}
		c.scheduled[id] = ev
		c.actions = append(c.actions, action{kind: actSubOrch, taskID: id, name: name, input: input})
	}
	return &Task{ctx: c, id: id}
}

// CreateTimer schedules a durable timer that fires after d.
func (c *OrchestrationContext) CreateTimer(d time.Duration) *Task {
	id, inHistory := c.nextID(evTimerCreated, "")
	if !inHistory {
		ev := histEvent{Kind: evTimerCreated, TaskID: id}
		c.scheduled[id] = ev
		c.actions = append(c.actions, action{kind: actTimer, taskID: id, delay: d})
	}
	return &Task{ctx: c, id: id}
}

// WaitForExternalEvent returns a task that completes when the named
// event is raised on this instance (via Client.RaiseEvent) — the
// human-interaction / callback pattern. Events raised before the wait
// are buffered and matched by name in arrival order.
func (c *OrchestrationContext) WaitForExternalEvent(name string) *Task {
	id, inHistory := c.nextID(evEventWaited, name)
	if !inHistory {
		ev := histEvent{Kind: evEventWaited, TaskID: id, Name: name}
		c.scheduled[id] = ev
		c.actions = append(c.actions, action{kind: actEventWait, taskID: id, name: name})
	}
	// Claim a buffered event (raised before this wait was declared).
	if _, done := c.results[id]; !done {
		if q := c.raisedPool[name]; len(q) > 0 {
			ev := q[0]
			c.raisedPool[name] = q[1:]
			c.results[id] = histEvent{Kind: evEventRaised, TaskID: id, Name: name, Data: ev.Data}
		}
	}
	return &Task{ctx: c, id: id}
}

// ContinueAsNew restarts this orchestration from scratch with the given
// input, discarding its history — the eternal-orchestration pattern
// that keeps replay cost bounded. It does not return.
func (c *OrchestrationContext) ContinueAsNew(input []byte) {
	c.checkPayload("continue-as-new input", len(input))
	panic(continueAsNew{input: input})
}

// WaitAll awaits every task (fan-in barrier) and returns their payloads
// in order. If any is incomplete the episode ends and resumes on replay.
// The first task error (by position) is returned after all complete.
func (c *OrchestrationContext) WaitAll(tasks ...*Task) ([][]byte, error) {
	for _, t := range tasks {
		if _, ok := c.results[t.id]; !ok {
			panic(pendingSentinel{})
		}
	}
	out := make([][]byte, len(tasks))
	var firstErr error
	for i, t := range tasks {
		ev := c.results[t.id]
		if ev.Error != "" && firstErr == nil {
			firstErr = fmt.Errorf("durable: task %d (%s): %s", t.id, ev.Name, ev.Error)
		}
		out[i] = ev.Data
	}
	return out, firstErr
}

// WaitAny returns the index of a completed task, unloading until at
// least one completes.
func (c *OrchestrationContext) WaitAny(tasks ...*Task) int {
	for i, t := range tasks {
		if _, ok := c.results[t.id]; ok {
			return i
		}
	}
	panic(pendingSentinel{})
}
