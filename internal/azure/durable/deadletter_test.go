package durable

import (
	"encoding/json"
	"testing"
	"time"

	"statebench/internal/chaos"
	"statebench/internal/platform"
	"statebench/internal/sim"
)

// These tests pin down the task-hub dead-letter audit: the Durable Task
// Framework redelivers its own control and work-item messages forever —
// MaxDequeueCount stays 0 on task-hub queues — because a dead-lettered
// control message would strand its orchestration. The Netherite
// counterpart (internal/azure/netherite) needs no such carve-out at
// all: its transport deduplicates by partition sequence number, so
// there is no visibility-timeout/poison-message machinery to disable.

// TestTaskHubQueuesDisableDeadLettering pins the liveness carve-out
// itself: every queue the hub builds must redeliver without limit.
func TestTaskHubQueuesDisableDeadLettering(t *testing.T) {
	qp := durableQueueParams(platform.DefaultAzure())
	if qp.MaxDequeueCount != 0 {
		t.Fatalf("task-hub MaxDequeueCount = %d, want 0 (unlimited redelivery; dead-lettering a control message strands its orchestration)", qp.MaxDequeueCount)
	}
}

// TestChainSurvivesHeavyRedeliveryWithoutDeadLetters drives the chain
// through a redelivery storm heavy enough to exhaust the storage-queue
// default MaxDequeueCount several times over. With the carve-out, no
// message is ever poisoned and the orchestration completes with the
// fault-free result.
func TestChainSurvivesHeavyRedeliveryWithoutDeadLetters(t *testing.T) {
	k, host, hub, client, inj := chaosFixture(2, &chaos.Plan{
		RedeliveryDelay: time.Second,
		Rules: []chaos.Rule{
			{Component: "queue", Kind: chaos.Redeliver, Rate: 0.6, MaxFaults: 10},
		},
	})
	registerChain(t, hub)
	var out []byte
	var hd *Handle
	drive(k, host, func(p *sim.Proc) {
		var err error
		out, hd, err = client.Run(p, "chain", []byte("0"))
		if err != nil {
			t.Errorf("run: %v", err)
		}
	})
	if string(out) != "3" {
		t.Fatalf("output = %s, want 3", out)
	}
	if hd.Status() != StatusCompleted {
		t.Fatalf("status = %s", hd.Status())
	}
	if inj.Stats().Redeliveries == 0 {
		t.Fatal("no redeliveries injected; the storm exercised nothing")
	}
	var deadLettered int64
	for _, q := range hub.ControlQueues() {
		deadLettered += q.Stats().DeadLettered
	}
	deadLettered += hub.WorkItemQueue().Stats().DeadLettered
	if deadLettered != 0 || inj.Stats().DeadLetters != 0 {
		t.Fatalf("dead-lettered = %d (injector %d), want 0: task-hub messages must redeliver forever", deadLettered, inj.Stats().DeadLetters)
	}
}

// TestDuplicateControlGhostsBookNoRecoveryDelay is the durable-level
// regression for the RecoveryDelay accounting fix: duplicated queue
// deliveries (the ghost copies the entity-convergence test folds) are
// successful deliveries, so they must contribute zero recovery delay —
// only failed attempts wait out the visibility timeout.
func TestDuplicateControlGhostsBookNoRecoveryDelay(t *testing.T) {
	k, host, hub, client, inj := chaosFixture(4, &chaos.Plan{Rules: []chaos.Rule{
		{Component: "queue", Kind: chaos.Duplicate, Rate: 0.5},
	}})
	if err := hub.RegisterEntity("Max", 128, func(ctx *EntityContext, op string, input []byte) ([]byte, error) {
		var v, cur int
		if err := json.Unmarshal(input, &v); err != nil {
			return nil, err
		}
		if ctx.HasState() {
			if err := json.Unmarshal(ctx.State(), &cur); err != nil {
				return nil, err
			}
		}
		if v > cur {
			cur = v
		}
		s, _ := json.Marshal(cur)
		ctx.SetState(s)
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	drive(k, host, func(p *sim.Proc) {
		id := EntityID{Name: "Max", Key: "m"}
		for _, v := range []int{3, 9, 5} {
			in, _ := json.Marshal(v)
			if err := client.SignalEntity(p, id, "fold", in); err != nil {
				t.Errorf("signal: %v", err)
				return
			}
			p.Sleep(100 * time.Millisecond)
		}
		p.Sleep(2 * time.Minute) // let ghosts re-deliver and fold
		state, ok := client.ReadEntityState(p, id)
		if !ok || string(state) != "9" {
			t.Errorf("state = %s ok=%v, want 9", state, ok)
		}
	})
	st := inj.Stats()
	if st.Duplicates == 0 {
		t.Fatal("no duplicates injected; the test exercised nothing")
	}
	if st.RecoveryDelay != 0 {
		t.Fatalf("RecoveryDelay = %v, want 0: every injected fault was a successfully delivered duplicate", st.RecoveryDelay)
	}
}
