package durable

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"statebench/internal/azure/functions"
	"statebench/internal/platform"
	"statebench/internal/sim"
)

// fixture builds a deterministic kernel + host + hub + client.
func fixture() (*sim.Kernel, *functions.Host, *Hub, *Client) {
	k := sim.NewKernel(1)
	params := platform.DefaultAzure()
	params.HTTPTriggerRTT = sim.Fixed{D: 10 * time.Millisecond}
	params.InstanceColdStart = sim.Fixed{D: 500 * time.Millisecond}
	params.Dispatch = sim.Fixed{D: 5 * time.Millisecond}
	params.ScaleEvalInterval = 2 * time.Second
	params.ScaleOutStep = 2
	params.MaxInstances = 20
	params.IdleInstanceTimeout = 10 * time.Minute
	params.EntityOpOverhead = sim.Fixed{D: 20 * time.Millisecond}
	params.EntityStateRTT = sim.Fixed{D: 20 * time.Millisecond}
	params.HistoryReplayPerEvent = 5 * time.Millisecond
	h := functions.NewHost(k, "app", params)
	hub := NewHub(k, h, "hub")
	return k, h, hub, NewClient(hub)
}

// drive runs fn on a client proc and then the kernel to completion,
// stopping the host so listeners terminate.
func drive(k *sim.Kernel, h *functions.Host, fn func(p *sim.Proc)) {
	k.Spawn("client", func(p *sim.Proc) {
		fn(p)
		h.Stop()
	})
	k.Run()
}

func TestActivityChainOrchestration(t *testing.T) {
	k, host, hub, client := fixture()
	if err := hub.RegisterActivity("add1", 128, func(ctx *functions.Context, in []byte) ([]byte, error) {
		ctx.Busy(50 * time.Millisecond)
		var n int
		if err := json.Unmarshal(in, &n); err != nil {
			return nil, err
		}
		return json.Marshal(n + 1)
	}); err != nil {
		t.Fatal(err)
	}
	if err := hub.RegisterOrchestrator("chain", 128, func(ctx *OrchestrationContext, input []byte) ([]byte, error) {
		v := input
		for i := 0; i < 3; i++ {
			out, err := ctx.CallActivity("add1", v).Await()
			if err != nil {
				return nil, err
			}
			v = out
		}
		return v, nil
	}); err != nil {
		t.Fatal(err)
	}
	var out []byte
	var hd *Handle
	drive(k, host, func(p *sim.Proc) {
		var err error
		out, hd, err = client.Run(p, "chain", []byte("0"))
		if err != nil {
			t.Errorf("run: %v", err)
		}
	})
	if string(out) != "3" {
		t.Fatalf("output = %s, want 3", out)
	}
	if hd.Status() != StatusCompleted {
		t.Fatalf("status = %s", hd.Status())
	}
	if hd.ColdStart() <= 0 || hd.E2E() <= 0 {
		t.Fatalf("timings: cold=%v e2e=%v", hd.ColdStart(), hd.E2E())
	}
	// Replay model: 3 awaits -> at least 4 episodes (start + one per result).
	if hub.EpisodeCount < 4 {
		t.Fatalf("episodes = %d, want >= 4 (replay per completion)", hub.EpisodeCount)
	}
	// History persisted: ExecutionStarted + 3x(Scheduled+Completed) + ExecutionCompleted.
	if hub.HistoryTable().Len() != 8 {
		t.Fatalf("history rows = %d, want 8", hub.HistoryTable().Len())
	}
}

func TestReplayInflatesOrchestratorBilling(t *testing.T) {
	// An orchestrator with N sequential activities replays O(N) times,
	// re-processing a growing history each time, so the total number of
	// re-processed history events grows quadratically and billed GB-s
	// grows faster than the activity count. This is the Fig 11a
	// mechanism.
	episodeGBs := func(nActs int) (float64, int64) {
		k, host, hub, client := fixture()
		if err := hub.RegisterActivity("quick", 128, func(ctx *functions.Context, in []byte) ([]byte, error) {
			ctx.Busy(10 * time.Millisecond)
			return in, nil
		}); err != nil {
			t.Fatal(err)
		}
		if err := hub.RegisterOrchestrator("o", 512, func(ctx *OrchestrationContext, input []byte) ([]byte, error) {
			for i := 0; i < nActs; i++ {
				if _, err := ctx.CallActivity("quick", []byte("x")).Await(); err != nil {
					return nil, err
				}
			}
			return nil, nil
		}); err != nil {
			t.Fatal(err)
		}
		drive(k, host, func(p *sim.Proc) {
			if _, _, err := client.Run(p, "o", nil); err != nil {
				t.Errorf("run: %v", err)
			}
		})
		f, _ := host.Function("o")
		return f.Meter.BilledGBs, hub.ReplayEvents
	}
	g2, r2 := episodeGBs(2)
	g8, r8 := episodeGBs(8)
	// 4x the activities must cost more than 4x the orchestrator GB-s
	// would if each activity were a constant-cost await (episodes scale
	// with activities AND each replays a longer history).
	if g8 < 3*g2 {
		t.Fatalf("orchestrator GB-s for 8 acts (%.4f) vs 2 acts (%.4f): replay inflation missing", g8, g2)
	}
	// The re-processed event count is the quadratic signature of replay.
	if r8 < 8*r2 {
		t.Fatalf("replayed events %d (8 acts) vs %d (2 acts): want quadratic growth", r8, r2)
	}
}

func TestFanOutFanIn(t *testing.T) {
	k, host, hub, client := fixture()
	if err := hub.RegisterActivity("work", 128, func(ctx *functions.Context, in []byte) ([]byte, error) {
		ctx.Busy(time.Second)
		return in, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := hub.RegisterOrchestrator("fan", 128, func(ctx *OrchestrationContext, input []byte) ([]byte, error) {
		var tasks []*Task
		for i := 0; i < 8; i++ {
			tasks = append(tasks, ctx.CallActivity("work", []byte(fmt.Sprintf("%d", i))))
		}
		outs, err := ctx.WaitAll(tasks...)
		if err != nil {
			return nil, err
		}
		return []byte(fmt.Sprintf("%d", len(outs))), nil
	}); err != nil {
		t.Fatal(err)
	}
	var out []byte
	var hd *Handle
	drive(k, host, func(p *sim.Proc) {
		var err error
		out, hd, err = client.Run(p, "fan", nil)
		if err != nil {
			t.Errorf("run: %v", err)
		}
	})
	if string(out) != "8" {
		t.Fatalf("out = %s", out)
	}
	// With scale controller adding 2 instances per 2s, 8 parallel 1s
	// tasks cannot finish in 1s — scheduling delay must appear.
	if hd.E2E() < 2*time.Second {
		t.Fatalf("fan-out E2E = %v; expected scale-controller induced delay", hd.E2E())
	}
	if host.Stats().MaxReady < 2 {
		t.Fatalf("scale-out never happened: max ready = %d", host.Stats().MaxReady)
	}
}

func TestEntityStatePersistsAcrossOperations(t *testing.T) {
	k, host, hub, client := fixture()
	if err := hub.RegisterEntity("Counter", 128, func(ctx *EntityContext, op string, input []byte) ([]byte, error) {
		var n int
		if ctx.HasState() {
			if err := json.Unmarshal(ctx.State(), &n); err != nil {
				return nil, err
			}
		}
		switch op {
		case "add":
			var d int
			if err := json.Unmarshal(input, &d); err != nil {
				return nil, err
			}
			n += d
			s, _ := json.Marshal(n)
			ctx.SetState(s)
			return nil, nil
		case "get":
			return json.Marshal(n)
		}
		return nil, fmt.Errorf("unknown op %q", op)
	}); err != nil {
		t.Fatal(err)
	}
	if err := hub.RegisterOrchestrator("useCounter", 128, func(ctx *OrchestrationContext, input []byte) ([]byte, error) {
		id := EntityID{Name: "Counter", Key: "c1"}
		if _, err := ctx.CallEntity(id, "add", []byte("5")).Await(); err != nil {
			return nil, err
		}
		if _, err := ctx.CallEntity(id, "add", []byte("7")).Await(); err != nil {
			return nil, err
		}
		return ctx.CallEntity(id, "get", nil).Await()
	}); err != nil {
		t.Fatal(err)
	}
	var out []byte
	drive(k, host, func(p *sim.Proc) {
		var err error
		out, _, err = client.Run(p, "useCounter", nil)
		if err != nil {
			t.Errorf("run: %v", err)
		}
	})
	if string(out) != "12" {
		t.Fatalf("counter = %s, want 12", out)
	}
	if hub.EntityStateSize(EntityID{Name: "Counter", Key: "c1"}) <= 0 {
		t.Fatal("entity state not persisted")
	}
}

func TestEntityOperationsSerialized(t *testing.T) {
	// Two orchestrations hammer the same entity; ops must apply one at
	// a time (final count exact) even with concurrent callers.
	k, host, hub, client := fixture()
	if err := hub.RegisterEntity("Acc", 128, func(ctx *EntityContext, op string, input []byte) ([]byte, error) {
		var n int
		if ctx.HasState() {
			if err := json.Unmarshal(ctx.State(), &n); err != nil {
				return nil, err
			}
		}
		ctx.Busy(50 * time.Millisecond) // long op to force overlap pressure
		n++
		s, _ := json.Marshal(n)
		ctx.SetState(s)
		return s, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := hub.RegisterOrchestrator("bump", 128, func(ctx *OrchestrationContext, input []byte) ([]byte, error) {
		id := EntityID{Name: "Acc", Key: "shared"}
		for i := 0; i < 3; i++ {
			if _, err := ctx.CallEntity(id, "inc", nil).Await(); err != nil {
				return nil, err
			}
		}
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	drive(k, host, func(p *sim.Proc) {
		h1, err := client.StartOrchestration(p, "bump", nil)
		if err != nil {
			t.Errorf("start: %v", err)
			return
		}
		h2, err := client.StartOrchestration(p, "bump", nil)
		if err != nil {
			t.Errorf("start: %v", err)
			return
		}
		if _, err := h1.Wait(p); err != nil {
			t.Errorf("h1: %v", err)
		}
		if _, err := h2.Wait(p); err != nil {
			t.Errorf("h2: %v", err)
		}
		state, ok := client.ReadEntityState(p, EntityID{Name: "Acc", Key: "shared"})
		if !ok || string(state) != "6" {
			t.Errorf("entity state = %s (ok=%v), want 6", state, ok)
		}
	})
}

func TestSubOrchestration(t *testing.T) {
	k, host, hub, client := fixture()
	if err := hub.RegisterActivity("leaf", 128, func(ctx *functions.Context, in []byte) ([]byte, error) {
		ctx.Busy(10 * time.Millisecond)
		return []byte(strings.ToUpper(string(in))), nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := hub.RegisterOrchestrator("child", 128, func(ctx *OrchestrationContext, input []byte) ([]byte, error) {
		return ctx.CallActivity("leaf", input).Await()
	}); err != nil {
		t.Fatal(err)
	}
	if err := hub.RegisterOrchestrator("parent", 128, func(ctx *OrchestrationContext, input []byte) ([]byte, error) {
		a := ctx.CallSubOrchestrator("child", []byte("ab"))
		b := ctx.CallSubOrchestrator("child", []byte("cd"))
		outs, err := ctx.WaitAll(a, b)
		if err != nil {
			return nil, err
		}
		return []byte(string(outs[0]) + string(outs[1])), nil
	}); err != nil {
		t.Fatal(err)
	}
	var out []byte
	drive(k, host, func(p *sim.Proc) {
		var err error
		out, _, err = client.Run(p, "parent", nil)
		if err != nil {
			t.Errorf("run: %v", err)
		}
	})
	if string(out) != "ABCD" {
		t.Fatalf("out = %s", out)
	}
}

func TestDurableTimer(t *testing.T) {
	k, host, hub, client := fixture()
	if err := hub.RegisterOrchestrator("sleepy", 128, func(ctx *OrchestrationContext, input []byte) ([]byte, error) {
		if _, err := ctx.CreateTimer(time.Minute).Await(); err != nil {
			return nil, err
		}
		return []byte("woke"), nil
	}); err != nil {
		t.Fatal(err)
	}
	var hd *Handle
	drive(k, host, func(p *sim.Proc) {
		var err error
		_, hd, err = client.Run(p, "sleepy", nil)
		if err != nil {
			t.Errorf("run: %v", err)
		}
	})
	if hd.E2E() < time.Minute {
		t.Fatalf("E2E = %v, want >= 1m timer", hd.E2E())
	}
}

func TestIdlePollingBillsTransactionsDuringTimer(t *testing.T) {
	// While the orchestrator sleeps on a 10-minute timer the hub's
	// pollers keep hitting the queues — billable idle transactions, the
	// Azure charge the paper criticizes.
	k, host, hub, client := fixture()
	if err := hub.RegisterOrchestrator("idle", 128, func(ctx *OrchestrationContext, input []byte) ([]byte, error) {
		if _, err := ctx.CreateTimer(10 * time.Minute).Await(); err != nil {
			return nil, err
		}
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	drive(k, host, func(p *sim.Proc) {
		if _, _, err := client.Run(p, "idle", nil); err != nil {
			t.Errorf("run: %v", err)
		}
	})
	var emptyPolls int64
	for _, q := range hub.ControlQueues() {
		emptyPolls += q.Stats().EmptyPolls
	}
	emptyPolls += hub.WorkItemQueue().Stats().EmptyPolls
	// 10 min idle at 30s max poll across 5 listeners => >= ~80 polls.
	if emptyPolls < 50 {
		t.Fatalf("idle empty polls = %d, want >= 50", emptyPolls)
	}
}

func TestPayloadLimitFailsOrchestration(t *testing.T) {
	k, host, hub, client := fixture()
	if err := hub.RegisterActivity("a", 128, func(ctx *functions.Context, in []byte) ([]byte, error) {
		return in, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := hub.RegisterOrchestrator("big", 128, func(ctx *OrchestrationContext, input []byte) ([]byte, error) {
		return ctx.CallActivity("a", make([]byte, 65*1024)).Await()
	}); err != nil {
		t.Fatal(err)
	}
	var runErr error
	var hd *Handle
	drive(k, host, func(p *sim.Proc) {
		_, hd, runErr = client.Run(p, "big", nil)
	})
	if runErr == nil || !strings.Contains(runErr.Error(), "exceeds") {
		t.Fatalf("err = %v, want payload limit failure", runErr)
	}
	if hd.Status() != StatusFailed {
		t.Fatalf("status = %s", hd.Status())
	}
}

func TestOversizedActivityResultFailsTask(t *testing.T) {
	k, host, hub, client := fixture()
	if err := hub.RegisterActivity("bloat", 128, func(ctx *functions.Context, in []byte) ([]byte, error) {
		return make([]byte, 100*1024), nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := hub.RegisterOrchestrator("o", 128, func(ctx *OrchestrationContext, input []byte) ([]byte, error) {
		return ctx.CallActivity("bloat", nil).Await()
	}); err != nil {
		t.Fatal(err)
	}
	var runErr error
	drive(k, host, func(p *sim.Proc) { _, _, runErr = client.Run(p, "o", nil) })
	if runErr == nil || !strings.Contains(runErr.Error(), "exceeds") {
		t.Fatalf("err = %v, want oversized-result task failure", runErr)
	}
}

func TestActivityErrorPropagates(t *testing.T) {
	k, host, hub, client := fixture()
	if err := hub.RegisterActivity("boom", 128, func(ctx *functions.Context, in []byte) ([]byte, error) {
		return nil, fmt.Errorf("kaput")
	}); err != nil {
		t.Fatal(err)
	}
	if err := hub.RegisterOrchestrator("o", 128, func(ctx *OrchestrationContext, input []byte) ([]byte, error) {
		return ctx.CallActivity("boom", nil).Await()
	}); err != nil {
		t.Fatal(err)
	}
	var runErr error
	drive(k, host, func(p *sim.Proc) { _, _, runErr = client.Run(p, "o", nil) })
	if runErr == nil || !strings.Contains(runErr.Error(), "kaput") {
		t.Fatalf("err = %v", runErr)
	}
}

func TestNondeterministicOrchestratorDetected(t *testing.T) {
	k, host, hub, client := fixture()
	if err := hub.RegisterActivity("a", 128, func(ctx *functions.Context, in []byte) ([]byte, error) { return in, nil }); err != nil {
		t.Fatal(err)
	}
	if err := hub.RegisterActivity("b", 128, func(ctx *functions.Context, in []byte) ([]byte, error) { return in, nil }); err != nil {
		t.Fatal(err)
	}
	episode := 0
	if err := hub.RegisterOrchestrator("flaky", 128, func(ctx *OrchestrationContext, input []byte) ([]byte, error) {
		episode++
		name := "a"
		if episode > 1 {
			name = "b" // differs on replay: nondeterminism
		}
		return ctx.CallActivity(name, nil).Await()
	}); err != nil {
		t.Fatal(err)
	}
	var runErr error
	drive(k, host, func(p *sim.Proc) { _, _, runErr = client.Run(p, "flaky", nil) })
	if runErr == nil || !strings.Contains(runErr.Error(), "non-deterministic") {
		t.Fatalf("err = %v, want nondeterminism detection", runErr)
	}
}

func TestSignalEntityFireAndForget(t *testing.T) {
	k, host, hub, client := fixture()
	if err := hub.RegisterEntity("Log", 128, func(ctx *EntityContext, op string, input []byte) ([]byte, error) {
		ctx.SetState(append(ctx.State(), input...))
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	drive(k, host, func(p *sim.Proc) {
		if err := client.SignalEntity(p, EntityID{Name: "Log", Key: "l"}, "append", []byte("x")); err != nil {
			t.Errorf("signal: %v", err)
		}
		if err := client.SignalEntity(p, EntityID{Name: "Log", Key: "l"}, "append", []byte("y")); err != nil {
			t.Errorf("signal: %v", err)
		}
		p.Sleep(10 * time.Second)
		state, ok := client.ReadEntityState(p, EntityID{Name: "Log", Key: "l"})
		if !ok || string(state) != "xy" {
			t.Errorf("state = %q ok=%v", state, ok)
		}
	})
}

func TestColdStartUnderTwoSecondsWarmPath(t *testing.T) {
	// The paper's Fig 10: durable orchestrator cold start is under ~2s.
	k, host, hub, client := fixture()
	if err := hub.RegisterOrchestrator("quick", 128, func(ctx *OrchestrationContext, input []byte) ([]byte, error) {
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	var hd *Handle
	drive(k, host, func(p *sim.Proc) {
		var err error
		_, hd, err = client.Run(p, "quick", nil)
		if err != nil {
			t.Errorf("run: %v", err)
		}
	})
	if hd.ColdStart() > 2*time.Second {
		t.Fatalf("cold start = %v, want < 2s", hd.ColdStart())
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	runOnce := func() (time.Duration, int64) {
		k, host, hub, client := fixture()
		if err := hub.RegisterActivity("w", 128, func(ctx *functions.Context, in []byte) ([]byte, error) {
			ctx.Busy(100 * time.Millisecond)
			return in, nil
		}); err != nil {
			t.Fatal(err)
		}
		if err := hub.RegisterOrchestrator("o", 128, func(ctx *OrchestrationContext, input []byte) ([]byte, error) {
			t1 := ctx.CallActivity("w", []byte("1"))
			t2 := ctx.CallActivity("w", []byte("2"))
			_, err := ctx.WaitAll(t1, t2)
			return nil, err
		}); err != nil {
			t.Fatal(err)
		}
		var hd *Handle
		drive(k, host, func(p *sim.Proc) {
			_, hd, _ = client.Run(p, "o", nil)
		})
		return hd.E2E(), hub.StorageTransactions()
	}
	e1, tx1 := runOnce()
	e2, tx2 := runOnce()
	if e1 != e2 || tx1 != tx2 {
		t.Fatalf("nondeterministic: (%v,%d) vs (%v,%d)", e1, tx1, e2, tx2)
	}
}
