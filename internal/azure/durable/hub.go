// Package durable simulates the Azure Durable Functions extension (the
// Durable Task Framework): orchestrator functions executed by event-
// sourcing replay over a history table, stateless activities dispatched
// through a work-item queue, durable entities with serialized
// operations, sub-orchestrations, and durable timers — all connected by
// billed control queues on a task hub.
//
// The cost anomalies the paper measures emerge mechanistically here:
// orchestrator replays inflate GB-s (Fig 11a), constant control/work-
// item queue polling bills transactions even when idle (Fig 11c, 15),
// and every activity execution rides the function app's rate-limited
// scale controller (Fig 12/14).
package durable

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"time"

	"statebench/internal/azure/functions"
	"statebench/internal/chaos"
	"statebench/internal/cloud/queue"
	"statebench/internal/cloud/table"
	"statebench/internal/obs/span"
	"statebench/internal/platform"
	"statebench/internal/sim"
)

// OrchestratorFn is a user orchestrator. It must be deterministic: it is
// re-executed (replayed) from the start on every wake-up, exactly like a
// real Durable orchestrator.
type OrchestratorFn func(ctx *OrchestrationContext, input []byte) ([]byte, error)

// ActivityFn is a stateless activity body.
type ActivityFn func(ctx *functions.Context, input []byte) ([]byte, error)

// EntityFn handles one operation on a durable entity.
type EntityFn func(ctx *EntityContext, op string, input []byte) ([]byte, error)

// message is a task-hub queue message. Messages are serialized to JSON
// on the billed queues so payload limits act on realistic sizes.
type message struct {
	Kind     string `json:"kind"`
	Instance string `json:"instance"`
	TaskID   int    `json:"taskId,omitempty"`
	Name     string `json:"name,omitempty"`
	Op       string `json:"op,omitempty"`
	Input    []byte `json:"input,omitempty"`
	Result   []byte `json:"result,omitempty"`
	Error    string `json:"error,omitempty"`
	// Caller routing for entity calls and sub-orchestrations.
	Caller     string `json:"caller,omitempty"`
	CallerTask int    `json:"callerTask,omitempty"`
	// Signal marks one-way entity messages (no response).
	Signal bool `json:"signal,omitempty"`
	// TraceID/SpanID propagate span causality across queue hops, the
	// way X-Ray trace headers ride real messages. Zero (omitted) when
	// tracing is disabled, so payload sizes are unchanged then.
	TraceID uint64 `json:"traceId,omitempty"`
	SpanID  uint64 `json:"spanId,omitempty"`
}

// traceCtx extracts the message's propagated span context.
func (m message) traceCtx() sim.TraceContext {
	return sim.TraceContext{TraceID: m.TraceID, SpanID: m.SpanID}
}

// stamped returns m carrying ctx, unless m already has a context.
func stamped(m message, ctx sim.TraceContext) message {
	if m.TraceID == 0 {
		m.TraceID, m.SpanID = ctx.TraceID, ctx.SpanID
	}
	return m
}

// Message kinds.
const (
	kindExecutionStarted = "ExecutionStarted"
	kindTaskCompleted    = "TaskCompleted"
	kindTaskFailed       = "TaskFailed"
	kindTimerFired       = "TimerFired"
	kindEntityOp         = "EntityOp"
	kindEntityResponse   = "EntityResponse"
	kindSubOrchCompleted = "SubOrchCompleted"
	kindSubOrchFailed    = "SubOrchFailed"
	kindEventRaised      = "EventRaised"
)

// PayloadTooLargeError reports a durable message body over the 64 KB
// cross-function limit; callers must stage large data in blob storage,
// as the paper's workloads do.
type PayloadTooLargeError struct {
	What  string
	Size  int
	Limit int
}

func (e *PayloadTooLargeError) Error() string {
	return fmt.Sprintf("durable: %s payload %d bytes exceeds %d limit", e.What, e.Size, e.Limit)
}

// orchState is the in-memory runtime record of one orchestration.
type orchState struct {
	id         string
	name       string
	inbox      []message
	active     bool // an episode is queued/running
	done       bool
	handle     *Handle
	parent     string // parent instance for sub-orchestrations
	parentTask int

	// orchSpan covers the whole orchestration (created at start, ended
	// at completion); tctx is its context, the parent of every episode,
	// activity, timer, and entity op the orchestration causes.
	orchSpan span.Active
	tctx     sim.TraceContext
}

// entityState is the runtime record of one entity (its durable state
// lives in the instances table; this tracks the operation queue).
type entityState struct {
	id     string
	name   string
	key    string
	inbox  []message
	active bool
}

// Hub is a simulated task hub bound to one function app.
type Hub struct {
	k      *sim.Kernel
	rng    *sim.RNG
	host   *functions.Host
	params platform.AzureParams

	control   []*queue.Queue
	workItems *queue.Queue
	history   *table.Table
	instances *table.Table

	orchestrators map[string]OrchestratorFn
	activities    map[string]string // activity name -> host function name
	entities      map[string]EntityFn

	orchs map[string]*orchState
	ents  map[string]*entityState

	kickers []*kicker
	wiKick  *kicker

	nextInstance int64

	// Stats.
	EpisodeCount int64
	ReplayEvents int64

	// Tracer, when non-nil, emits orchestration/episode/entity-op spans
	// (queue hops are emitted by the queues themselves).
	Tracer *span.Tracer

	// Chaos, when non-nil, can crash orchestrator episodes before or
	// after history persistence; the triggering control messages are
	// then redelivered and event-sourcing replay recovers the run.
	Chaos *chaos.Injector
}

// NewHub creates a task hub on host, wiring its control and work-item
// queues, history table, and listeners.
func NewHub(k *sim.Kernel, host *functions.Host, name string) *Hub {
	params := host.Params()
	h := &Hub{
		k:             k,
		rng:           k.Stream("durable/" + name),
		host:          host,
		params:        params,
		workItems:     queue.New(k, name+"-workitems", durableQueueParams(params)),
		history:       table.New(k, name+"-history", table.DefaultParams()),
		instances:     table.New(k, name+"-instances", table.DefaultParams()),
		orchestrators: make(map[string]OrchestratorFn),
		activities:    make(map[string]string),
		entities:      make(map[string]EntityFn),
		orchs:         make(map[string]*orchState),
		ents:          make(map[string]*entityState),
	}
	for i := 0; i < params.ControlQueuePartitions; i++ {
		h.control = append(h.control, queue.New(k, fmt.Sprintf("%s-control-%02d", name, i), durableQueueParams(params)))
		h.kickers = append(h.kickers, newKicker(k))
	}
	h.wiKick = newKicker(k)
	host.OnHTTPActivity(h.KickAll)
	h.startListeners()
	return h
}

func durableQueueParams(p platform.AzureParams) queue.Params {
	qp := queue.DefaultParams()
	qp.MaxPayload = p.QueuePayloadLimit
	// The Durable Task Framework never poisons its own control or
	// work-item messages — it redelivers until the episode succeeds —
	// so dead-lettering is disabled on task-hub queues (liveness:
	// a dead-lettered control message would strand its orchestration).
	qp.MaxDequeueCount = 0
	return qp
}

// SetTracer enables span emission on the hub and its queues. Call
// before running workloads (core.Env.EnableTracing does).
func (h *Hub) SetTracer(tr *span.Tracer) {
	h.Tracer = tr
	h.workItems.Tracer = tr
	for _, q := range h.control {
		q.Tracer = tr
	}
}

// SetChaos enables fault injection on the hub's episode execution and
// on its queues. Call before running workloads (core.Env.EnableChaos
// does).
func (h *Hub) SetChaos(inj *chaos.Injector) {
	h.Chaos = inj
	h.workItems.Chaos = inj
	for _, q := range h.control {
		q.Chaos = inj
	}
}

// Host returns the function app this hub runs on.
func (h *Hub) Host() *functions.Host { return h.host }

// HistoryTable exposes the history table (for transaction accounting).
func (h *Hub) HistoryTable() *table.Table { return h.history }

// InstancesTable exposes the instances table.
func (h *Hub) InstancesTable() *table.Table { return h.instances }

// ControlQueues exposes the control queues (for transaction accounting).
func (h *Hub) ControlQueues() []*queue.Queue { return h.control }

// WorkItemQueue exposes the work-item queue.
func (h *Hub) WorkItemQueue() *queue.Queue { return h.workItems }

// StorageTransactions sums billable storage transactions across the
// hub's queues and tables — the stateful cost component of Azure.
func (h *Hub) StorageTransactions() int64 {
	total := h.workItems.Stats().Transactions()
	for _, q := range h.control {
		total += q.Stats().Transactions()
	}
	total += h.history.Stats().Transactions()
	total += h.instances.Stats().Transactions()
	return total
}

// ResetStorageStats zeroes queue and table transaction counters.
func (h *Hub) ResetStorageStats() {
	h.workItems.ResetStats()
	for _, q := range h.control {
		q.ResetStats()
	}
	h.history.ResetStats()
	h.instances.ResetStats()
}

// KickAll resets all listener poll back-offs (called on HTTP activity).
func (h *Hub) KickAll() {
	for _, kk := range h.kickers {
		kk.Kick()
	}
	h.wiKick.Kick()
}

// RegisterOrchestrator adds an orchestrator function. Episodes are
// billed as executions of a host function with the same name.
func (h *Hub) RegisterOrchestrator(name string, consumedMemMB int, fn OrchestratorFn) error {
	if _, dup := h.orchestrators[name]; dup {
		return fmt.Errorf("durable: orchestrator %q already registered", name)
	}
	if _, err := h.host.Register(functions.Config{
		Name:          name,
		ConsumedMemMB: consumedMemMB,
		Handler:       h.episodeHandler(name),
	}); err != nil {
		return err
	}
	h.orchestrators[name] = fn
	return nil
}

// RegisterActivity adds a stateless activity, hosted as a function.
func (h *Hub) RegisterActivity(name string, consumedMemMB int, fn ActivityFn) error {
	if _, dup := h.activities[name]; dup {
		return fmt.Errorf("durable: activity %q already registered", name)
	}
	if _, err := h.host.Register(functions.Config{
		Name:          name,
		ConsumedMemMB: consumedMemMB,
		Handler:       functions.Handler(fn),
	}); err != nil {
		return err
	}
	h.activities[name] = name
	return nil
}

// RegisterEntity adds a durable entity class. Operations on each entity
// key are serialized; the handler is billed as a host function.
func (h *Hub) RegisterEntity(name string, consumedMemMB int, fn EntityFn) error {
	if _, dup := h.entities[name]; dup {
		return fmt.Errorf("durable: entity %q already registered", name)
	}
	if _, err := h.host.Register(functions.Config{
		Name:          "entity:" + name,
		ConsumedMemMB: consumedMemMB,
		Handler:       h.entityEpisodeHandler(name),
	}); err != nil {
		return err
	}
	h.entities[name] = fn
	return nil
}

// partitionOf maps an instance ID onto a control-queue partition.
func (h *Hub) partitionOf(instance string) int {
	f := fnv.New32a()
	_, _ = f.Write([]byte(instance))
	return int(f.Sum32()) % len(h.control)
}

// send enqueues a control message (from kernel or callback context) and
// kicks the partition's listener. The hop span parents to the context
// stamped on the message.
func (h *Hub) send(m message) error {
	body, err := json.Marshal(m)
	if err != nil {
		return err
	}
	p := h.partitionOf(m.Instance)
	if err := h.control[p].EnqueueFromKernelCtx(body, m.traceCtx()); err != nil {
		return err
	}
	h.kickers[p].Kick()
	return nil
}

// sendFromProc enqueues a control message, charging queue latency to p.
// Unstamped messages pick up p's ambient trace context.
func (h *Hub) sendFromProc(p *sim.Proc, m message) error {
	m = stamped(m, p.TraceCtx)
	body, err := json.Marshal(m)
	if err != nil {
		return err
	}
	part := h.partitionOf(m.Instance)
	if err := h.control[part].Enqueue(p, body); err != nil {
		return err
	}
	h.kickers[part].Kick()
	return nil
}

// sendWorkItem enqueues an activity work item.
func (h *Hub) sendWorkItem(m message) error {
	body, err := json.Marshal(m)
	if err != nil {
		return err
	}
	if err := h.workItems.EnqueueFromKernelCtx(body, m.traceCtx()); err != nil {
		return err
	}
	h.wiKick.Kick()
	return nil
}

// kicker lets a polling listener be woken early when a message is
// enqueued locally, while idle polling still happens (and is billed) at
// the adaptive interval.
type kicker struct {
	k   *sim.Kernel
	fut *sim.Future[struct{}]
}

func newKicker(k *sim.Kernel) *kicker {
	return &kicker{k: k, fut: sim.NewFuture[struct{}](k)}
}

// Kick wakes the current waiter (or makes the next wait return
// immediately).
func (kk *kicker) Kick() {
	if !kk.fut.Done() {
		kk.fut.Complete(struct{}{}, nil)
	}
}

// Wait blocks up to d, returning true if kicked early.
func (kk *kicker) Wait(p *sim.Proc, d time.Duration) bool {
	_, _, kicked := kk.fut.AwaitTimeout(p, d)
	if kicked {
		kk.fut = sim.NewFuture[struct{}](kk.k)
	}
	return kicked
}

// startListeners launches the control-queue and work-item pollers. They
// poll with adaptive back-off — every poll is a billed transaction, the
// idle-cost mechanism the paper highlights — and stop with the host.
func (h *Hub) startListeners() {
	stop := h.host.StopSignal()
	for i := range h.control {
		i := i
		h.k.Spawn(fmt.Sprintf("durable/control-%d", i), func(p *sim.Proc) {
			h.pollLoop(p, h.control[i], h.kickers[i], stop, h.handleControlMessage)
		})
	}
	h.k.Spawn("durable/workitems", func(p *sim.Proc) {
		h.pollLoop(p, h.workItems, h.wiKick, stop, h.handleWorkItem)
	})
}

// pollLoop drains q, backing off while idle, waking early on kicks.
func (h *Hub) pollLoop(p *sim.Proc, q *queue.Queue, kk *kicker, stop *sim.Future[struct{}], handle func(*sim.Proc, message)) {
	interval := 100 * time.Millisecond
	maxPoll := h.params.DurableMaxPoll
	if maxPoll <= 0 {
		maxPoll = 30 * time.Second
	}
	for {
		if stop.Done() {
			return
		}
		if m, ok := q.TryDequeue(p); ok {
			interval = 100 * time.Millisecond
			var msg message
			if err := json.Unmarshal(m.Body, &msg); err == nil {
				handle(p, msg)
			}
			continue
		}
		if kk.Wait(p, interval) {
			interval = 100 * time.Millisecond
		} else {
			interval *= 2
			if interval > maxPoll {
				interval = maxPoll
			}
		}
	}
}
