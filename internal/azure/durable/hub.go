// Package durable simulates the Azure Durable Functions extension (the
// Durable Task Framework): orchestrator functions executed by event-
// sourcing replay over a history table, stateless activities dispatched
// through a work-item queue, durable entities with serialized
// operations, sub-orchestrations, and durable timers — all connected by
// billed control queues on a task hub.
//
// The cost anomalies the paper measures emerge mechanistically here:
// orchestrator replays inflate GB-s (Fig 11a), constant control/work-
// item queue polling bills transactions even when idle (Fig 11c, 15),
// and every activity execution rides the function app's rate-limited
// scale controller (Fig 12/14).
//
// Storage and transport live behind the Store seam (store.go): the
// classic Azure Storage task hub above is the default, and
// internal/azure/netherite plugs in a partitioned, group-committed,
// speculative log behind the same orchestration semantics.
package durable

import (
	"fmt"
	"time"

	"statebench/internal/azure/functions"
	"statebench/internal/chaos"
	"statebench/internal/cloud/queue"
	"statebench/internal/cloud/table"
	"statebench/internal/obs/span"
	"statebench/internal/platform"
	"statebench/internal/sim"
)

// OrchestratorFn is a user orchestrator. It must be deterministic: it is
// re-executed (replayed) from the start on every wake-up, exactly like a
// real Durable orchestrator.
type OrchestratorFn func(ctx *OrchestrationContext, input []byte) ([]byte, error)

// ActivityFn is a stateless activity body.
type ActivityFn func(ctx *functions.Context, input []byte) ([]byte, error)

// EntityFn handles one operation on a durable entity.
type EntityFn func(ctx *EntityContext, op string, input []byte) ([]byte, error)

// message is a task-hub queue message. Messages are serialized to JSON
// on the billed queues so payload limits act on realistic sizes.
type message struct {
	Kind     string `json:"kind"`
	Instance string `json:"instance"`
	TaskID   int    `json:"taskId,omitempty"`
	Name     string `json:"name,omitempty"`
	Op       string `json:"op,omitempty"`
	Input    []byte `json:"input,omitempty"`
	Result   []byte `json:"result,omitempty"`
	Error    string `json:"error,omitempty"`
	// Caller routing for entity calls and sub-orchestrations.
	Caller     string `json:"caller,omitempty"`
	CallerTask int    `json:"callerTask,omitempty"`
	// Signal marks one-way entity messages (no response).
	Signal bool `json:"signal,omitempty"`
	// TraceID/SpanID propagate span causality across queue hops, the
	// way X-Ray trace headers ride real messages. Zero (omitted) when
	// tracing is disabled, so payload sizes are unchanged then.
	TraceID uint64 `json:"traceId,omitempty"`
	SpanID  uint64 `json:"spanId,omitempty"`
}

// traceCtx extracts the message's propagated span context.
func (m message) traceCtx() sim.TraceContext {
	return sim.TraceContext{TraceID: m.TraceID, SpanID: m.SpanID}
}

// TraceCtx is the exported form of traceCtx for Store implementations.
func (m message) TraceCtx() sim.TraceContext { return m.traceCtx() }

// stamped returns m carrying ctx, unless m already has a context.
func stamped(m message, ctx sim.TraceContext) message {
	if m.TraceID == 0 {
		m.TraceID, m.SpanID = ctx.TraceID, ctx.SpanID
	}
	return m
}

// Message kinds.
const (
	kindExecutionStarted = "ExecutionStarted"
	kindTaskCompleted    = "TaskCompleted"
	kindTaskFailed       = "TaskFailed"
	kindTimerFired       = "TimerFired"
	kindEntityOp         = "EntityOp"
	kindEntityResponse   = "EntityResponse"
	kindSubOrchCompleted = "SubOrchCompleted"
	kindSubOrchFailed    = "SubOrchFailed"
	kindEventRaised      = "EventRaised"
)

// PayloadTooLargeError reports a durable message body over the 64 KB
// cross-function limit; callers must stage large data in blob storage,
// as the paper's workloads do.
type PayloadTooLargeError struct {
	What  string
	Size  int
	Limit int
}

func (e *PayloadTooLargeError) Error() string {
	return fmt.Sprintf("durable: %s payload %d bytes exceeds %d limit", e.What, e.Size, e.Limit)
}

// orchState is the in-memory runtime record of one orchestration.
type orchState struct {
	id         string
	name       string
	inbox      []message
	active     bool // an episode is queued/running
	done       bool
	handle     *Handle
	parent     string // parent instance for sub-orchestrations
	parentTask int

	// orchSpan covers the whole orchestration (created at start, ended
	// at completion); tctx is its context, the parent of every episode,
	// activity, timer, and entity op the orchestration causes.
	orchSpan span.Active
	tctx     sim.TraceContext
}

// entityState is the runtime record of one entity (its durable state
// lives in the store; this tracks the operation queue).
type entityState struct {
	id     string
	name   string
	key    string
	inbox  []message
	active bool
}

// Hub is a simulated task hub bound to one function app. Its storage
// and transport are a pluggable Store; orchestration semantics
// (episodes, replay, entities, clients) are shared across stores.
type Hub struct {
	k      *sim.Kernel
	rng    *sim.RNG
	host   *functions.Host
	params platform.AzureParams

	store Store

	orchestrators map[string]OrchestratorFn
	activities    map[string]string // activity name -> host function name
	entities      map[string]EntityFn

	orchs map[string]*orchState
	ents  map[string]*entityState

	nextInstance int64

	// Stats.
	EpisodeCount int64
	ReplayEvents int64

	// Tracer, when non-nil, emits orchestration/episode/entity-op spans
	// (queue hops are emitted by the queues themselves).
	Tracer *span.Tracer

	// Chaos, when non-nil, can crash orchestrator episodes before or
	// after history persistence; the triggering control messages are
	// then redelivered and event-sourcing replay recovers the run.
	Chaos *chaos.Injector
}

// NewHub creates a task hub on host with the classic Azure Storage
// store: billed control/work-item queues, history table, and polling
// listeners.
func NewHub(k *sim.Kernel, host *functions.Host, name string) *Hub {
	return NewHubWithStore(k, host, name, newClassicStore(k, name, host.Params()))
}

// NewHubWithStore creates a task hub on host backed by an arbitrary
// Store implementation (the Netherite backend plugs in here).
func NewHubWithStore(k *sim.Kernel, host *functions.Host, name string, store Store) *Hub {
	h := &Hub{
		k:             k,
		rng:           k.Stream("durable/" + name),
		host:          host,
		params:        host.Params(),
		store:         store,
		orchestrators: make(map[string]OrchestratorFn),
		activities:    make(map[string]string),
		entities:      make(map[string]EntityFn),
		orchs:         make(map[string]*orchState),
		ents:          make(map[string]*entityState),
	}
	host.OnHTTPActivity(h.KickAll)
	store.Start(h)
	return h
}

// SetTracer enables span emission on the hub and its store. Call
// before running workloads (core.Env.EnableTracing does).
func (h *Hub) SetTracer(tr *span.Tracer) {
	h.Tracer = tr
	h.store.SetTracer(tr)
}

// SetChaos enables fault injection on the hub's episode execution and
// on its store. Call before running workloads (core.Env.EnableChaos
// does).
func (h *Hub) SetChaos(inj *chaos.Injector) {
	h.Chaos = inj
	h.store.SetChaos(inj)
}

// Host returns the function app this hub runs on.
func (h *Hub) Host() *functions.Host { return h.host }

// Kernel returns the simulation kernel the hub runs on.
func (h *Hub) Kernel() *sim.Kernel { return h.k }

// Params returns the hub's platform calibration.
func (h *Hub) Params() platform.AzureParams { return h.params }

// Store returns the hub's storage/transport backend.
func (h *Hub) Store() Store { return h.store }

// classic returns the classic store, or nil when the hub runs on a
// different Store implementation (the table/queue accessors below are
// classic-only surfaces kept for transaction-accounting tests).
func (h *Hub) classic() *classicStore {
	cs, _ := h.store.(*classicStore)
	return cs
}

// HistoryTable exposes the classic store's history table (for
// transaction accounting); nil for non-classic stores.
func (h *Hub) HistoryTable() *table.Table {
	if cs := h.classic(); cs != nil {
		return cs.history
	}
	return nil
}

// InstancesTable exposes the classic store's instances table; nil for
// non-classic stores.
func (h *Hub) InstancesTable() *table.Table {
	if cs := h.classic(); cs != nil {
		return cs.instances
	}
	return nil
}

// ControlQueues exposes the classic store's control queues (for
// transaction accounting); nil for non-classic stores.
func (h *Hub) ControlQueues() []*queue.Queue {
	if cs := h.classic(); cs != nil {
		return cs.control
	}
	return nil
}

// WorkItemQueue exposes the classic store's work-item queue; nil for
// non-classic stores.
func (h *Hub) WorkItemQueue() *queue.Queue {
	if cs := h.classic(); cs != nil {
		return cs.workItems
	}
	return nil
}

// StorageTransactions sums billable storage transactions across the
// hub's store — the stateful cost component of Azure.
func (h *Hub) StorageTransactions() int64 { return h.store.Transactions() }

// ResetStorageStats zeroes the store's transaction counters.
func (h *Hub) ResetStorageStats() { h.store.ResetStats() }

// KickAll resets all listener poll back-offs (called on HTTP activity).
func (h *Hub) KickAll() { h.store.Kick() }

// RegisterOrchestrator adds an orchestrator function. Episodes are
// billed as executions of a host function with the same name.
func (h *Hub) RegisterOrchestrator(name string, consumedMemMB int, fn OrchestratorFn) error {
	if _, dup := h.orchestrators[name]; dup {
		return fmt.Errorf("durable: orchestrator %q already registered", name)
	}
	if _, err := h.host.Register(functions.Config{
		Name:          name,
		ConsumedMemMB: consumedMemMB,
		Handler:       h.episodeHandler(name),
	}); err != nil {
		return err
	}
	h.orchestrators[name] = fn
	return nil
}

// RegisterActivity adds a stateless activity, hosted as a function.
func (h *Hub) RegisterActivity(name string, consumedMemMB int, fn ActivityFn) error {
	if _, dup := h.activities[name]; dup {
		return fmt.Errorf("durable: activity %q already registered", name)
	}
	if _, err := h.host.Register(functions.Config{
		Name:          name,
		ConsumedMemMB: consumedMemMB,
		Handler:       functions.Handler(fn),
	}); err != nil {
		return err
	}
	h.activities[name] = name
	return nil
}

// RegisterEntity adds a durable entity class. Operations on each entity
// key are serialized; the handler is billed as a host function.
func (h *Hub) RegisterEntity(name string, consumedMemMB int, fn EntityFn) error {
	if _, dup := h.entities[name]; dup {
		return fmt.Errorf("durable: entity %q already registered", name)
	}
	if _, err := h.host.Register(functions.Config{
		Name:          "entity:" + name,
		ConsumedMemMB: consumedMemMB,
		Handler:       h.entityEpisodeHandler(name),
	}); err != nil {
		return err
	}
	h.entities[name] = fn
	return nil
}

// send enqueues a control message (from kernel or callback context).
func (h *Hub) send(m message) error { return h.store.SendControl(m) }

// sendFromProc enqueues a control message, charging send latency to p.
// Unstamped messages pick up p's ambient trace context.
func (h *Hub) sendFromProc(p *sim.Proc, m message) error {
	return h.store.SendControlFromProc(p, stamped(m, p.TraceCtx))
}

// sendWorkItem enqueues an activity work item.
func (h *Hub) sendWorkItem(m message) error { return h.store.SendWork(m) }

// kicker lets a polling listener be woken early when a message is
// enqueued locally, while idle polling still happens (and is billed) at
// the adaptive interval.
type kicker struct {
	k   *sim.Kernel
	fut *sim.Future[struct{}]
}

func newKicker(k *sim.Kernel) *kicker {
	return &kicker{k: k, fut: sim.NewFuture[struct{}](k)}
}

// Kick wakes the current waiter (or makes the next wait return
// immediately).
func (kk *kicker) Kick() {
	if !kk.fut.Done() {
		kk.fut.Complete(struct{}{}, nil)
	}
}

// Wait blocks up to d, returning true if kicked early.
func (kk *kicker) Wait(p *sim.Proc, d time.Duration) bool {
	_, _, kicked := kk.fut.AwaitTimeout(p, d)
	if kicked {
		kk.fut = sim.NewFuture[struct{}](kk.k)
	}
	return kicked
}
