package durable

import (
	"time"

	"statebench/internal/chaos"
	"statebench/internal/obs/span"
	"statebench/internal/sim"
)

// This file defines the Store seam: the boundary between the Durable
// Task Framework's execution model (episodes, replay, entities,
// clients — everything else in this package) and the storage/transport
// layer that moves its messages and persists its history. The classic
// store (classic.go) is the paper's Azure Storage task hub: billed
// control/work-item queues with polling listeners and per-episode
// history-table round trips. internal/azure/netherite implements the
// same interface as a partitioned, group-committed, speculative log —
// the vendor's shipped fix for exactly the per-operation storage costs
// the paper measures. The orchestration semantics above the seam are
// shared, which is what makes the two backends conformance-comparable.

// Envelope is a task-hub message as it travels between the client,
// orchestrations, activities, and entities. It is an alias of the
// package's internal message type so Store implementations in other
// packages can transport it without this package re-wrapping payloads.
type Envelope = message

// Record is one event-sourcing history record as persisted by a Store.
// Alias of the internal history event type for the same reason.
type Record = histEvent

// Exported message-kind constants for Store implementations that need
// to inspect envelopes (e.g. to dedup redelivered ExecutionStarted
// messages).
const (
	KindExecutionStarted = kindExecutionStarted
	KindTaskCompleted    = kindTaskCompleted
	KindTimerFired       = kindTimerFired
	KindEntityOp         = kindEntityOp
	KindEventRaised      = kindEventRaised
)

// CommitVerdict is the outcome of persisting one episode's new history
// records.
type CommitVerdict int

const (
	// CommitOK: the batch is (or will deterministically become)
	// durable; the episode proceeds to dispatch and completion.
	CommitOK CommitVerdict = iota
	// CommitLost: a chaos-injected crash lost the uncommitted batch.
	// The episode's speculative work is void: the hub discards its
	// results, re-inboxes the triggering messages, and replays the
	// episode from the last durable state.
	CommitLost
	// CommitCrashAfter: the batch is durable but the host crashed
	// before acknowledging the triggering messages. Actions dispatch,
	// then the messages redeliver and replay deduplicates the re-folded
	// events against the persisted history.
	CommitCrashAfter
)

// Store is the storage/transport backend of a task hub. Implementations
// must be deterministic: same kernel seed, same chaos plan, same
// behavior — byte for byte.
type Store interface {
	// Start binds the store to its hub and launches any background
	// listeners (the classic store's pollers). Called once from NewHub
	// before any traffic.
	Start(h *Hub)
	// Kick resets listener poll back-offs on external activity; a
	// push-based store ignores it.
	Kick()

	// SendControl enqueues a control envelope from kernel/callback
	// context and wakes its consumer.
	SendControl(m Envelope) error
	// SendControlFromProc enqueues a control envelope, charging the
	// send latency to p.
	SendControlFromProc(p *sim.Proc, m Envelope) error
	// SendWork enqueues an activity work item.
	SendWork(m Envelope) error

	// LoadHistory returns the instance's persisted history in sequence
	// order, charging any read cost to p.
	LoadHistory(p *sim.Proc, instance string) []Record
	// CommitEpisode persists one episode's new records and returns the
	// commit verdict plus the settle delay: how long after now the
	// commit becomes externally visible (zero for a synchronous store).
	// The hub defers client-visible completion by the settle delay;
	// internal progress is speculative and proceeds immediately.
	CommitEpisode(p *sim.Proc, instance, orchestrator string, tctx sim.TraceContext, recs []Record) (CommitVerdict, time.Duration)
	// PurgeHistory deletes the instance's history (ContinueAsNew).
	PurgeHistory(p *sim.Proc, instance string)

	// ReadEntityState rehydrates an entity's persisted state at the
	// start of an operation batch, including the store's state-access
	// latency.
	ReadEntityState(p *sim.Proc, instance string) ([]byte, bool)
	// WriteEntityState persists an entity's state after a dirty batch.
	WriteEntityState(p *sim.Proc, instance string, data []byte)
	// QueryEntityState is the client's status-query read path.
	QueryEntityState(p *sim.Proc, instance string) ([]byte, bool)
	// PeekEntityState inspects state without billing (tests/reports).
	PeekEntityState(instance string) ([]byte, bool)

	// Transactions sums billable storage transactions so far.
	Transactions() int64
	// ResetStats zeroes the transaction counters.
	ResetStats()

	// SetTracer enables span emission on the store's transports.
	SetTracer(tr *span.Tracer)
	// SetChaos enables fault injection on the store's transports and
	// commit path.
	SetChaos(inj *chaos.Injector)
}

// DeliverControl routes a control envelope into the hub from kernel
// context — the delivery half of a Store's transport. Exported for
// Store implementations outside this package.
func (h *Hub) DeliverControl(m Envelope) { h.handleControlMessage(m) }

// DeliverWork executes an activity work item — the work-item delivery
// half of a Store's transport.
func (h *Hub) DeliverWork(m Envelope) { h.handleWorkItem(m) }
