package durable

import (
	"fmt"
	"strconv"
	"time"

	"statebench/internal/azure/functions"
	"statebench/internal/chaos"
	"statebench/internal/obs/span"
	"statebench/internal/sim"
)

// This file implements orchestration episodes: each time messages
// arrive for an instance, the orchestrator function is executed *from
// the beginning* on a host instance, consulting the history store to
// skip completed work (replay). Awaiting an incomplete task ends the
// episode — the orchestrator is unloaded until results arrive.

// activateOrch queues an episode for instance st if none is in flight.
func (h *Hub) activateOrch(st *orchState) {
	if st.active || st.done {
		return
	}
	st.active = true
	if _, err := h.host.SubmitCtx(st.name, []byte(st.id), st.tctx); err != nil {
		st.active = false
	}
}

// handleControlMessage routes one control-queue message, activating the
// target orchestration or entity.
func (h *Hub) handleControlMessage(m message) {
	if len(m.Instance) > 0 && m.Instance[0] == '@' {
		h.handleEntityMessage(m)
		return
	}
	st, ok := h.orchs[m.Instance]
	if !ok || st.done {
		return // late message for a finished/unknown instance
	}
	st.inbox = append(st.inbox, m)
	h.activateOrch(st)
}

// handleWorkItem executes one activity work item on the function app
// and posts the completion back to the orchestration's control queue.
func (h *Hub) handleWorkItem(m message) {
	fnName, ok := h.activities[m.Name]
	if !ok {
		_ = h.send(message{Kind: kindTaskFailed, Instance: m.Instance, TaskID: m.TaskID, Name: m.Name,
			Error: fmt.Sprintf("unknown activity %q", m.Name)})
		return
	}
	mctx := m.traceCtx()
	fut, err := h.host.SubmitCtx(fnName, m.Input, mctx)
	if err != nil {
		_ = h.send(stamped(message{Kind: kindTaskFailed, Instance: m.Instance, TaskID: m.TaskID, Name: m.Name, Error: err.Error()}, mctx))
		return
	}
	inst, taskID, name := m.Instance, m.TaskID, m.Name
	fut.OnComplete(func(res functions.Result, _ error) {
		if res.Err != nil {
			_ = h.send(stamped(message{Kind: kindTaskFailed, Instance: inst, TaskID: taskID, Name: name, Error: res.Err.Error()}, mctx))
			return
		}
		if limit := h.params.DurablePayloadLimit; limit > 0 && len(res.Output) > limit {
			_ = h.send(stamped(message{Kind: kindTaskFailed, Instance: inst, TaskID: taskID, Name: name,
				Error: (&PayloadTooLargeError{What: "activity " + name + " result", Size: len(res.Output), Limit: limit}).Error()}, mctx))
			return
		}
		_ = h.send(stamped(message{Kind: kindTaskCompleted, Instance: inst, TaskID: taskID, Name: name, Result: res.Output}, mctx))
	})
}

// episodeHandler returns the host-function body that runs orchestration
// episodes for orchestrator name. The episode's execution time (history
// load, replay CPU, persistence) is billed as a normal function
// execution — the source of the durable GB-s inflation in Fig 11a.
func (h *Hub) episodeHandler(name string) functions.Handler {
	return func(fctx *functions.Context, payload []byte) ([]byte, error) {
		instance := string(payload)
		st, ok := h.orchs[instance]
		if !ok {
			return nil, fmt.Errorf("durable: unknown instance %q", instance)
		}
		p := fctx.Proc()

		msgs := st.inbox
		st.inbox = nil
		if len(msgs) == 0 || st.done {
			st.active = false
			return nil, nil
		}
		h.EpisodeCount++

		// The episode span (replay + user code) closes on every exit
		// path; replayed is set once the history has been loaded.
		epStart := p.Now()
		replayed := 0
		defer func() {
			if h.Tracer != nil {
				h.Tracer.Emit(span.KindEpisode, "durable/episode/"+name, epStart, p.Now(), st.tctx,
					span.A("replayEvents", strconv.Itoa(replayed)))
			}
		}()

		// One fault decision per episode. A plain Crash kills the host
		// before any history is persisted; CrashAfterPersist arms a
		// crash between persistence and message acknowledgment (the
		// window that forces replay to deduplicate history rows).
		crashAfter := false
		if h.Chaos != nil {
			if flt, ok := h.Chaos.Next(st.tctx, "durable", name); ok {
				if flt.Kind == chaos.CrashAfterPersist {
					crashAfter = true
				} else {
					// The consumed control messages were never
					// acknowledged: put them back and redeliver the
					// episode after the visibility timeout.
					p.Sleep(flt.Delay)
					st.inbox = append(msgs, st.inbox...)
					h.redeliverEpisode(st)
					return nil, &chaos.FaultError{Kind: flt.Kind, Component: "durable", Name: name}
				}
			}
		}

		// 1. Load persisted history (a billed table query per episode on
		// the classic store; an in-memory read on Netherite).
		events := h.store.LoadHistory(p, instance)
		h.ReplayEvents += int64(len(events))
		replayed = len(events)

		// 2. Fold arrived messages into new history events.
		var newEvents []histEvent
		addEvent := func(ev histEvent) {
			ev.Seq = len(events)
			events = append(events, ev)
			newEvents = append(newEvents, ev)
		}
		for _, m := range msgs {
			switch m.Kind {
			case kindExecutionStarted:
				addEvent(histEvent{Kind: evExecutionStarted, Data: m.Input})
				st.handle.markRunning(p.Now())
			case kindTaskCompleted:
				addEvent(histEvent{Kind: evTaskCompleted, TaskID: m.TaskID, Name: m.Name, Data: m.Result})
			case kindTaskFailed:
				addEvent(histEvent{Kind: evTaskFailed, TaskID: m.TaskID, Name: m.Name, Error: m.Error})
			case kindTimerFired:
				addEvent(histEvent{Kind: evTimerFired, TaskID: m.TaskID})
			case kindEntityResponse:
				addEvent(histEvent{Kind: evEntityResponded, TaskID: m.TaskID, Error: m.Error, Data: m.Result})
			case kindSubOrchCompleted:
				addEvent(histEvent{Kind: evSubOrchCompleted, TaskID: m.TaskID, Name: m.Name, Data: m.Result})
			case kindSubOrchFailed:
				addEvent(histEvent{Kind: evSubOrchFailed, TaskID: m.TaskID, Name: m.Name, Error: m.Error})
			case kindEventRaised:
				addEvent(histEvent{Kind: evEventRaised, Name: m.Name, Data: m.Input})
			}
		}

		// 3. Replay cost: the function re-executes from the start,
		// processing the whole event list.
		p.Sleep(5*time.Millisecond + h.params.HistoryReplayPerEvent*time.Duration(len(events)))

		// 4. Run the orchestrator with replay semantics.
		octx := newOrchContext(h, instance, events)
		var out []byte
		var runErr error
		completed := true
		restarted := false
		var restartInput []byte
		func() {
			defer func() {
				r := recover()
				switch f := r.(type) {
				case nil:
				case pendingSentinel:
					completed = false
				case orchFailure:
					runErr = f.err
				case continueAsNew:
					completed = false
					restarted = true
					restartInput = f.input
				default:
					panic(r)
				}
			}()
			out, runErr = h.orchestrators[name](octx, octx.input)
		}()

		// ContinueAsNew: purge history, restart with fresh input.
		if restarted {
			h.store.PurgeHistory(p, instance)
			st.inbox = append([]message{stamped(message{Kind: kindExecutionStarted, Instance: instance, Input: restartInput}, st.tctx)}, st.inbox...)
			if _, err := h.host.SubmitCtx(st.name, []byte(st.id), st.tctx); err != nil {
				st.active = false
			}
			return nil, nil
		}

		// 5. Persist this episode's new events (messages + schedules).
		for _, act := range octx.actions {
			switch act.kind {
			case actActivity:
				addEvent(histEvent{Kind: evTaskScheduled, TaskID: act.taskID, Name: act.name, Data: act.input})
			case actTimer:
				addEvent(histEvent{Kind: evTimerCreated, TaskID: act.taskID})
			case actEntity:
				addEvent(histEvent{Kind: evEntityCalled, TaskID: act.taskID, Name: act.entity.instanceID(), Op: act.op, Data: act.input})
			case actEventWait:
				addEvent(histEvent{Kind: evEventWaited, TaskID: act.taskID, Name: act.name})
			case actSubOrch:
				addEvent(histEvent{Kind: evSubOrchCreated, TaskID: act.taskID, Name: act.name, Data: act.input})
			}
		}
		if completed {
			if runErr != nil {
				addEvent(histEvent{Kind: evExecutionFailed, Error: runErr.Error()})
			} else {
				addEvent(histEvent{Kind: evExecutionCompleted, Data: out})
			}
		}
		verdict, settle := h.store.CommitEpisode(p, instance, name, st.tctx, newEvents)
		if verdict == CommitLost {
			// A chaos-injected crash lost the uncommitted batch: every
			// speculative result of this episode is void. Nothing was
			// dispatched yet, so abort is a pure discard — re-inbox the
			// unacknowledged messages and replay from durable state.
			st.inbox = append(msgs, st.inbox...)
			h.redeliverEpisode(st)
			return nil, &chaos.FaultError{Kind: chaos.Crash, Component: "netherite", Name: name}
		}

		// 6. Execute side effects for newly scheduled work. On a
		// speculative store this happens before the batch is externally
		// durable — downstream episodes run against uncommitted state.
		for _, act := range octx.actions {
			h.dispatchAction(instance, act)
		}

		if crashAfter || verdict == CommitCrashAfter {
			// Crash after history persistence and action dispatch, but
			// before the triggering messages are acknowledged: they
			// redeliver, the episode re-runs, and replay deduplicates
			// the re-folded messages against the persisted history
			// (results and schedules are keyed by TaskID). Completion
			// bookkeeping below never ran, so the redelivered episode
			// performs it exactly once.
			st.inbox = append(msgs, st.inbox...)
			h.redeliverEpisode(st)
			return nil, &chaos.FaultError{Kind: chaos.CrashAfterPersist, Component: "durable", Name: name}
		}

		// 7. Completion or continuation.
		if completed {
			st.done = true
			st.active = false
			h.completeOrch(st, p.Now(), settle, name, out, runErr)
			return nil, nil
		}
		if len(st.inbox) > 0 {
			// New messages arrived during the episode: run again.
			if _, err := h.host.SubmitCtx(st.name, []byte(st.id), st.tctx); err != nil {
				st.active = false
			}
			return nil, nil
		}
		st.active = false
		return nil, nil
	}
}

// completeOrch performs completion bookkeeping for a finished
// orchestration. The parent notification is speculative — it flows
// immediately, so downstream orchestrations progress against
// uncommitted state — while the client-visible handle settles only
// after the store's commit becomes durable (settle is zero on the
// classic store, where WriteBatch is synchronous).
func (h *Hub) completeOrch(st *orchState, now sim.Time, settle time.Duration, name string, out []byte, runErr error) {
	if settle <= 0 {
		st.handle.complete(now, out, runErr)
	} else {
		h.k.After(settle, func() {
			st.handle.complete(h.k.Now(), out, runErr)
		})
	}
	if st.orchSpan.Live() {
		attrs := []span.Attr{}
		if runErr != nil {
			attrs = append(attrs, span.A("error", runErr.Error()))
		}
		st.orchSpan.End(now, attrs...)
	}
	if st.parent != "" {
		kind, errStr := kindSubOrchCompleted, ""
		if runErr != nil {
			kind, errStr = kindSubOrchFailed, runErr.Error()
		}
		// Completion hops route back under the parent's span.
		pctx := sim.TraceContext{}
		if pst, ok := h.orchs[st.parent]; ok {
			pctx = pst.tctx
		}
		_ = h.send(stamped(message{Kind: kind, Instance: st.parent, TaskID: st.parentTask, Name: name, Result: out, Error: errStr}, pctx))
	}
}

// redeliverEpisode re-activates a crashed episode's orchestration
// after the control-queue visibility timeout, modeling redelivery of
// its unacknowledged messages (already back in st.inbox).
func (h *Hub) redeliverEpisode(st *orchState) {
	delay := h.Chaos.RedeliveryDelay()
	h.Chaos.NoteRecovery(delay)
	h.k.After(delay, func() {
		st.active = false
		h.activateOrch(st)
	})
}

// dispatchAction performs one scheduled side effect after an episode.
// Outbound messages carry the orchestration's trace context.
func (h *Hub) dispatchAction(instance string, act action) {
	var octx sim.TraceContext
	if st, ok := h.orchs[instance]; ok {
		octx = st.tctx
	}
	switch act.kind {
	case actActivity:
		_ = h.sendWorkItem(stamped(message{Kind: "Activity", Instance: instance, TaskID: act.taskID, Name: act.name, Input: act.input}, octx))
	case actTimer:
		taskID := act.taskID
		h.k.After(act.delay, func() {
			_ = h.send(stamped(message{Kind: kindTimerFired, Instance: instance, TaskID: taskID}, octx))
		})
	case actEntity:
		_ = h.send(stamped(message{
			Kind: kindEntityOp, Instance: act.entity.instanceID(), Op: act.op, Input: act.input,
			Caller: instance, CallerTask: act.taskID, Signal: act.signal,
		}, octx))
	case actEventWait:
		// Waiting is passive: the event arrives via Client.RaiseEvent.
	case actSubOrch:
		child := h.newInstanceID(act.name)
		st := &orchState{id: child, name: act.name, parent: instance, parentTask: act.taskID,
			handle: newHandle(h, child, h.k.Now())}
		st.orchSpan = h.Tracer.Start(h.k.Now(), span.KindOrchestration, "durable/"+act.name, octx)
		st.tctx = st.orchSpan.Context()
		h.orchs[child] = st
		_ = h.send(stamped(message{Kind: kindExecutionStarted, Instance: child, Input: act.input}, st.tctx))
	}
}

// newInstanceID mints a unique orchestration instance ID.
func (h *Hub) newInstanceID(name string) string {
	h.nextInstance++
	return fmt.Sprintf("%s-%06d", name, h.nextInstance)
}
