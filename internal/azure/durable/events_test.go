package durable

import (
	"encoding/json"
	"testing"
	"time"

	"statebench/internal/azure/functions"
	"statebench/internal/sim"
)

func TestWaitForExternalEvent(t *testing.T) {
	k, host, hub, client := fixture()
	if err := hub.RegisterOrchestrator("approval", 128, func(ctx *OrchestrationContext, input []byte) ([]byte, error) {
		decision, err := ctx.WaitForExternalEvent("Approve").Await()
		if err != nil {
			return nil, err
		}
		return append([]byte("decided:"), decision...), nil
	}); err != nil {
		t.Fatal(err)
	}
	var out []byte
	var hd *Handle
	drive(k, host, func(p *sim.Proc) {
		var err error
		hd, err = client.StartOrchestration(p, "approval", nil)
		if err != nil {
			t.Errorf("start: %v", err)
			return
		}
		p.Sleep(time.Minute) // the approver takes a while
		if err := client.RaiseEvent(p, hd.ID, "Approve", []byte("yes")); err != nil {
			t.Errorf("raise: %v", err)
			return
		}
		out, err = hd.Wait(p)
		if err != nil {
			t.Errorf("wait: %v", err)
		}
	})
	if string(out) != "decided:yes" {
		t.Fatalf("out = %s", out)
	}
	if hd.E2E() < time.Minute {
		t.Fatalf("orchestration finished before the event: %v", hd.E2E())
	}
}

func TestExternalEventBufferedBeforeWait(t *testing.T) {
	// The event arrives while the orchestrator is still busy with an
	// activity; it must be buffered and matched when the wait appears.
	k, host, hub, client := fixture()
	if err := hub.RegisterActivity("slow", 128, func(ctx *functions.Context, in []byte) ([]byte, error) {
		ctx.Busy(30 * time.Second)
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := hub.RegisterOrchestrator("buffered", 128, func(ctx *OrchestrationContext, input []byte) ([]byte, error) {
		if _, err := ctx.CallActivity("slow", nil).Await(); err != nil {
			return nil, err
		}
		return ctx.WaitForExternalEvent("Go").Await()
	}); err != nil {
		t.Fatal(err)
	}
	var out []byte
	drive(k, host, func(p *sim.Proc) {
		hd, err := client.StartOrchestration(p, "buffered", nil)
		if err != nil {
			t.Errorf("start: %v", err)
			return
		}
		p.Sleep(2 * time.Second) // well before the activity completes
		if err := client.RaiseEvent(p, hd.ID, "Go", []byte("early")); err != nil {
			t.Errorf("raise: %v", err)
			return
		}
		out, err = hd.Wait(p)
		if err != nil {
			t.Errorf("wait: %v", err)
		}
	})
	if string(out) != "early" {
		t.Fatalf("buffered event lost: %q", out)
	}
}

func TestMultipleEventsMatchInOrder(t *testing.T) {
	k, host, hub, client := fixture()
	if err := hub.RegisterOrchestrator("seq", 128, func(ctx *OrchestrationContext, input []byte) ([]byte, error) {
		a, err := ctx.WaitForExternalEvent("E").Await()
		if err != nil {
			return nil, err
		}
		b, err := ctx.WaitForExternalEvent("E").Await()
		if err != nil {
			return nil, err
		}
		return append(append([]byte{}, a...), b...), nil
	}); err != nil {
		t.Fatal(err)
	}
	var out []byte
	drive(k, host, func(p *sim.Proc) {
		hd, err := client.StartOrchestration(p, "seq", nil)
		if err != nil {
			t.Errorf("start: %v", err)
			return
		}
		p.Sleep(5 * time.Second)
		if err := client.RaiseEvent(p, hd.ID, "E", []byte("1")); err != nil {
			t.Error(err)
		}
		p.Sleep(5 * time.Second)
		if err := client.RaiseEvent(p, hd.ID, "E", []byte("2")); err != nil {
			t.Error(err)
		}
		out, err = hd.Wait(p)
		if err != nil {
			t.Errorf("wait: %v", err)
		}
	})
	if string(out) != "12" {
		t.Fatalf("events out of order: %q", out)
	}
}

func TestRaiseEventUnknownInstance(t *testing.T) {
	k, host, _, client := fixture()
	drive(k, host, func(p *sim.Proc) {
		if err := client.RaiseEvent(p, "ghost-000001", "E", nil); err == nil {
			t.Error("raise on unknown instance succeeded")
		}
	})
}

func TestContinueAsNewResetsHistory(t *testing.T) {
	// An eternal-style orchestration counts down through ContinueAsNew;
	// each generation starts with fresh history, so the history table
	// stays bounded.
	k, host, hub, client := fixture()
	if err := hub.RegisterActivity("tick", 128, func(ctx *functions.Context, in []byte) ([]byte, error) {
		ctx.Busy(10 * time.Millisecond)
		return in, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := hub.RegisterOrchestrator("countdown", 128, func(ctx *OrchestrationContext, input []byte) ([]byte, error) {
		var n int
		if err := json.Unmarshal(input, &n); err != nil {
			return nil, err
		}
		if _, err := ctx.CallActivity("tick", input).Await(); err != nil {
			return nil, err
		}
		if n > 0 {
			next, _ := json.Marshal(n - 1)
			ctx.ContinueAsNew(next)
		}
		return []byte("done"), nil
	}); err != nil {
		t.Fatal(err)
	}
	var out []byte
	drive(k, host, func(p *sim.Proc) {
		start, _ := json.Marshal(3)
		var err error
		out, _, err = client.Run(p, "countdown", start)
		if err != nil {
			t.Errorf("run: %v", err)
		}
	})
	if string(out) != "done" {
		t.Fatalf("out = %s", out)
	}
	// After completion, history holds only the LAST generation:
	// ExecutionStarted + TaskScheduled + TaskCompleted + ExecutionCompleted.
	if got := hub.HistoryTable().Len(); got != 4 {
		t.Fatalf("history rows = %d, want 4 (fresh per generation)", got)
	}
}
