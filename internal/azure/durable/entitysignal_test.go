package durable

import (
	"testing"
	"time"

	"statebench/internal/sim"
)

func TestEntityToEntitySignal(t *testing.T) {
	// A Producer entity signals an Auditor entity on every write —
	// the entity-to-entity communication the paper's §II-B describes.
	k, host, hub, client := fixture()
	if err := hub.RegisterEntity("Producer", 128, func(ctx *EntityContext, op string, input []byte) ([]byte, error) {
		switch op {
		case "put":
			ctx.SetState(input)
			if err := ctx.Signal(EntityID{Name: "Auditor", Key: "log"}, "record", input); err != nil {
				return nil, err
			}
			return nil, nil
		}
		return ctx.State(), nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := hub.RegisterEntity("Auditor", 128, func(ctx *EntityContext, op string, input []byte) ([]byte, error) {
		ctx.SetState(append(ctx.State(), input...))
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}

	drive(k, host, func(p *sim.Proc) {
		if err := client.SignalEntity(p, EntityID{Name: "Producer", Key: "p"}, "put", []byte("a")); err != nil {
			t.Errorf("signal: %v", err)
		}
		p.Sleep(5 * time.Second)
		if err := client.SignalEntity(p, EntityID{Name: "Producer", Key: "p"}, "put", []byte("b")); err != nil {
			t.Errorf("signal: %v", err)
		}
		p.Sleep(10 * time.Second)
		state, ok := client.ReadEntityState(p, EntityID{Name: "Auditor", Key: "log"})
		if !ok || string(state) != "ab" {
			t.Errorf("auditor state = %q ok=%v, want \"ab\"", state, ok)
		}
	})
}

func TestEntitySelfSignalRejected(t *testing.T) {
	k, host, hub, client := fixture()
	var sigErr error
	if err := hub.RegisterEntity("Loop", 128, func(ctx *EntityContext, op string, input []byte) ([]byte, error) {
		sigErr = ctx.Signal(EntityID{Name: "Loop", Key: "x"}, "again", nil)
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	drive(k, host, func(p *sim.Proc) {
		if err := client.SignalEntity(p, EntityID{Name: "Loop", Key: "x"}, "go", nil); err != nil {
			t.Errorf("signal: %v", err)
		}
		p.Sleep(5 * time.Second)
	})
	if sigErr == nil {
		t.Fatal("self-signal was not rejected")
	}
}
