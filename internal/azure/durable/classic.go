package durable

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"time"

	"statebench/internal/chaos"
	"statebench/internal/cloud/queue"
	"statebench/internal/cloud/table"
	"statebench/internal/obs/span"
	"statebench/internal/platform"
	"statebench/internal/sim"
)

// classicStore is the Azure Storage task hub of the paper: partitioned
// control queues and a work-item queue polled by billed listeners, a
// history table queried and appended per episode, and an instances
// table for entity state. Every round trip is a billed storage
// transaction — the per-operation cost structure whose anomalies the
// paper measures (Fig 11a/11c/15) and which the Netherite store exists
// to amortize away.
type classicStore struct {
	k      *sim.Kernel
	h      *Hub
	params platform.AzureParams

	control   []*queue.Queue
	workItems *queue.Queue
	history   *table.Table
	instances *table.Table

	kickers []*kicker
	wiKick  *kicker
}

// newClassicStore builds the storage-queue backend. Construction order
// (work-item queue, history, instances, control partitions) is part of
// the determinism contract with pre-seam builds: every named RNG
// stream and kernel allocation happens in the same sequence.
func newClassicStore(k *sim.Kernel, name string, params platform.AzureParams) *classicStore {
	s := &classicStore{
		k:         k,
		params:    params,
		workItems: queue.New(k, name+"-workitems", durableQueueParams(params)),
		history:   table.New(k, name+"-history", table.DefaultParams()),
		instances: table.New(k, name+"-instances", table.DefaultParams()),
	}
	for i := 0; i < params.ControlQueuePartitions; i++ {
		s.control = append(s.control, queue.New(k, fmt.Sprintf("%s-control-%02d", name, i), durableQueueParams(params)))
		s.kickers = append(s.kickers, newKicker(k))
	}
	s.wiKick = newKicker(k)
	return s
}

func durableQueueParams(p platform.AzureParams) queue.Params {
	qp := queue.DefaultParams()
	qp.MaxPayload = p.QueuePayloadLimit
	// The Durable Task Framework never poisons its own control or
	// work-item messages — it redelivers until the episode succeeds —
	// so dead-lettering is disabled on task-hub queues (liveness:
	// a dead-lettered control message would strand its orchestration).
	qp.MaxDequeueCount = 0
	return qp
}

// Start implements Store: bind the hub and launch the polling
// listeners. They poll with adaptive back-off — every poll is a billed
// transaction, the idle-cost mechanism the paper highlights — and stop
// with the host.
func (s *classicStore) Start(h *Hub) {
	s.h = h
	stop := h.host.StopSignal()
	for i := range s.control {
		i := i
		s.k.Spawn(fmt.Sprintf("durable/control-%d", i), func(p *sim.Proc) {
			s.pollLoop(p, s.control[i], s.kickers[i], stop, h.handleControlMessage)
		})
	}
	s.k.Spawn("durable/workitems", func(p *sim.Proc) {
		s.pollLoop(p, s.workItems, s.wiKick, stop, h.handleWorkItem)
	})
}

// Kick implements Store: reset all listener poll back-offs.
func (s *classicStore) Kick() {
	for _, kk := range s.kickers {
		kk.Kick()
	}
	s.wiKick.Kick()
}

// partitionOf maps an instance ID onto a control-queue partition.
func (s *classicStore) partitionOf(instance string) int {
	f := fnv.New32a()
	_, _ = f.Write([]byte(instance))
	return int(f.Sum32()) % len(s.control)
}

// SendControl implements Store: enqueue a control message from kernel
// or callback context and kick the partition's listener. The hop span
// parents to the context stamped on the message.
func (s *classicStore) SendControl(m Envelope) error {
	body, err := json.Marshal(m)
	if err != nil {
		return err
	}
	p := s.partitionOf(m.Instance)
	if err := s.control[p].EnqueueFromKernelCtx(body, m.traceCtx()); err != nil {
		return err
	}
	s.kickers[p].Kick()
	return nil
}

// SendControlFromProc implements Store: enqueue a control message,
// charging queue latency to p.
func (s *classicStore) SendControlFromProc(p *sim.Proc, m Envelope) error {
	body, err := json.Marshal(m)
	if err != nil {
		return err
	}
	part := s.partitionOf(m.Instance)
	if err := s.control[part].Enqueue(p, body); err != nil {
		return err
	}
	s.kickers[part].Kick()
	return nil
}

// SendWork implements Store: enqueue an activity work item.
func (s *classicStore) SendWork(m Envelope) error {
	body, err := json.Marshal(m)
	if err != nil {
		return err
	}
	if err := s.workItems.EnqueueFromKernelCtx(body, m.traceCtx()); err != nil {
		return err
	}
	s.wiKick.Kick()
	return nil
}

// LoadHistory implements Store: a billed table query every episode.
func (s *classicStore) LoadHistory(p *sim.Proc, instance string) []Record {
	rows := s.history.Query(p, instance)
	events := make([]Record, 0, len(rows))
	for _, r := range rows {
		var ev Record
		if err := json.Unmarshal(r.Data, &ev); err == nil {
			events = append(events, ev)
		}
	}
	return events
}

// CommitEpisode implements Store: one synchronous billed batch write;
// the classic hub never loses a written batch, and the write is
// durable the moment WriteBatch returns (zero settle delay).
func (s *classicStore) CommitEpisode(p *sim.Proc, instance, orchestrator string, tctx sim.TraceContext, recs []Record) (CommitVerdict, time.Duration) {
	if len(recs) == 0 {
		return CommitOK, 0
	}
	ents := make([]table.Entity, len(recs))
	for i, ev := range recs {
		data, err := json.Marshal(ev)
		if err != nil {
			continue
		}
		ents[i] = table.Entity{PK: instance, RK: fmt.Sprintf("%06d", ev.Seq), Data: data}
	}
	s.history.WriteBatch(p, instance, ents)
	return CommitOK, 0
}

// PurgeHistory implements Store (ContinueAsNew).
func (s *classicStore) PurgeHistory(p *sim.Proc, instance string) {
	s.history.DeletePartition(p, instance)
}

// ReadEntityState implements Store: a billed table read plus the
// calibrated state-access latency.
func (s *classicStore) ReadEntityState(p *sim.Proc, instance string) ([]byte, bool) {
	row, ok := s.instances.Read(p, instance, "state")
	p.Sleep(s.params.EntityStateRTT.Sample(s.h.rng))
	return row, ok
}

// WriteEntityState implements Store: a billed table write.
func (s *classicStore) WriteEntityState(p *sim.Proc, instance string, data []byte) {
	s.instances.Write(p, instance, "state", data)
}

// QueryEntityState implements Store: the client's status-query read,
// a billed table read without the executor's rehydration latency.
func (s *classicStore) QueryEntityState(p *sim.Proc, instance string) ([]byte, bool) {
	return s.instances.Read(p, instance, "state")
}

// PeekEntityState implements Store: unbilled inspection.
func (s *classicStore) PeekEntityState(instance string) ([]byte, bool) {
	return s.instances.Peek(instance, "state")
}

// Transactions implements Store: billable storage transactions across
// the hub's queues and tables — the stateful cost component of Azure.
func (s *classicStore) Transactions() int64 {
	total := s.workItems.Stats().Transactions()
	for _, q := range s.control {
		total += q.Stats().Transactions()
	}
	total += s.history.Stats().Transactions()
	total += s.instances.Stats().Transactions()
	return total
}

// ResetStats implements Store.
func (s *classicStore) ResetStats() {
	s.workItems.ResetStats()
	for _, q := range s.control {
		q.ResetStats()
	}
	s.history.ResetStats()
	s.instances.ResetStats()
}

// SetTracer implements Store: queue hops emit their own spans.
func (s *classicStore) SetTracer(tr *span.Tracer) {
	s.workItems.Tracer = tr
	for _, q := range s.control {
		q.Tracer = tr
	}
}

// SetChaos implements Store: at-least-once delivery faults
// (redelivery, duplicates) inject at the queues.
func (s *classicStore) SetChaos(inj *chaos.Injector) {
	s.workItems.Chaos = inj
	for _, q := range s.control {
		q.Chaos = inj
	}
}

// pollLoop drains q, backing off while idle, waking early on kicks.
func (s *classicStore) pollLoop(p *sim.Proc, q *queue.Queue, kk *kicker, stop *sim.Future[struct{}], handle func(Envelope)) {
	interval := 100 * time.Millisecond
	maxPoll := s.params.DurableMaxPoll
	if maxPoll <= 0 {
		maxPoll = 30 * time.Second
	}
	for {
		if stop.Done() {
			return
		}
		if m, ok := q.TryDequeue(p); ok {
			interval = 100 * time.Millisecond
			var msg message
			if err := json.Unmarshal(m.Body, &msg); err == nil {
				handle(msg)
			}
			continue
		}
		if kk.Wait(p, interval) {
			interval = 100 * time.Millisecond
		} else {
			interval *= 2
			if interval > maxPoll {
				interval = maxPoll
			}
		}
	}
}
