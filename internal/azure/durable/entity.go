package durable

import (
	"fmt"
	"time"

	"statebench/internal/azure/functions"
	"statebench/internal/obs/span"
	"statebench/internal/sim"
)

// EntityContext is the API surface available to entity operation
// handlers. State is a byte payload (typically JSON or gob) persisted
// in the instances table between operation batches.
type EntityContext struct {
	hub    *Hub
	fctx   *functions.Context
	id     EntityID
	state  []byte
	exists bool
	dirty  bool
}

// Proc returns the simulation process executing this operation.
func (c *EntityContext) Proc() *sim.Proc { return c.fctx.Proc() }

// Busy consumes d of virtual compute time.
func (c *EntityContext) Busy(d time.Duration) { c.fctx.Busy(d) }

// ID returns the entity's identity.
func (c *EntityContext) ID() EntityID { return c.id }

// HasState reports whether the entity has been initialized.
func (c *EntityContext) HasState() bool { return c.exists }

// State returns the entity's current state payload (nil if unset).
func (c *EntityContext) State() []byte { return c.state }

// SetState replaces the entity's state payload; it is persisted when
// the operation batch finishes.
func (c *EntityContext) SetState(s []byte) {
	c.state = s
	c.exists = true
	c.dirty = true
}

// Signal sends a one-way operation to another entity (paper §II-B:
// "one entity can invoke an operation on another entity"). Signals are
// fire-and-forget, the only entity-to-entity communication the Durable
// Task Framework allows without deadlocking the serialized executors.
func (c *EntityContext) Signal(target EntityID, op string, input []byte) error {
	if limit := c.hub.params.DurablePayloadLimit; limit > 0 && len(input) > limit {
		return &PayloadTooLargeError{What: "entity signal " + op, Size: len(input), Limit: limit}
	}
	if target.instanceID() == c.id.instanceID() {
		return fmt.Errorf("durable: entity %s cannot signal itself", c.id)
	}
	return c.hub.sendFromProc(c.fctx.Proc(), message{
		Kind: kindEntityOp, Instance: target.instanceID(), Op: op, Input: input, Signal: true,
	})
}

// handleEntityMessage queues an operation on the target entity and
// activates its executor. Operations on one entity key are strictly
// serialized — the property that makes entities a bottleneck for
// high-throughput read paths (paper §IV).
func (h *Hub) handleEntityMessage(m message) {
	name, key, ok := splitEntityInstance(m.Instance)
	if !ok {
		return
	}
	if _, known := h.entities[name]; !known {
		if !m.Signal {
			_ = h.send(message{Kind: kindEntityResponse, Instance: m.Caller, TaskID: m.CallerTask,
				Error: fmt.Sprintf("unknown entity class %q", name)})
		}
		return
	}
	est, found := h.ents[m.Instance]
	if !found {
		est = &entityState{id: m.Instance, name: name, key: key}
		h.ents[m.Instance] = est
	}
	est.inbox = append(est.inbox, m)
	h.activateEntity(est)
}

// activateEntity queues an executor batch if none is in flight. The
// batch's spans parent to the first queued operation's context.
func (h *Hub) activateEntity(est *entityState) {
	if est.active {
		return
	}
	est.active = true
	var ctx sim.TraceContext
	if len(est.inbox) > 0 {
		ctx = est.inbox[0].traceCtx()
	}
	if _, err := h.host.SubmitCtx("entity:"+est.name, []byte(est.id), ctx); err != nil {
		est.active = false
	}
}

// entityEpisodeHandler returns the host-function body that executes one
// batch of serialized operations on an entity instance: load state,
// apply operations in arrival order, respond to two-way callers,
// persist state.
func (h *Hub) entityEpisodeHandler(name string) functions.Handler {
	return func(fctx *functions.Context, payload []byte) ([]byte, error) {
		id := string(payload)
		est, ok := h.ents[id]
		if !ok {
			return nil, fmt.Errorf("durable: unknown entity instance %q", id)
		}
		ops := est.inbox
		est.inbox = nil
		if len(ops) == 0 {
			est.active = false
			return nil, nil
		}
		p := fctx.Proc()
		fn := h.entities[name]

		// Rehydrate state (store-specific read cost + access latency).
		stateRow, exists := h.store.ReadEntityState(p, id)

		ectx := &EntityContext{hub: h, fctx: fctx, id: EntityID{Name: est.name, Key: est.key}, state: stateRow, exists: exists}
		for _, m := range ops {
			// Entity operations carry serialization/rehydration overhead
			// compared to plain activities (paper: entity ops ~8% slower).
			opStart := p.Now()
			p.Sleep(h.params.EntityOpOverhead.Sample(h.rng))
			out, err := fn(ectx, m.Op, m.Input)
			h.Tracer.Emit(span.KindEntityOp, "entity/"+est.name+"."+m.Op, opStart, p.Now(), m.traceCtx())
			if m.Signal {
				continue
			}
			errStr := ""
			if err != nil {
				errStr = err.Error()
				out = nil
			} else if limit := h.params.DurablePayloadLimit; limit > 0 && len(out) > limit {
				errStr = (&PayloadTooLargeError{What: "entity " + id + " op " + m.Op + " result", Size: len(out), Limit: limit}).Error()
				out = nil
			}
			if sendErr := h.sendFromProc(p, stamped(message{
				Kind: kindEntityResponse, Instance: m.Caller, TaskID: m.CallerTask, Result: out, Error: errStr,
			}, m.traceCtx())); sendErr != nil {
				return nil, sendErr
			}
		}

		// Persist state if modified.
		if ectx.dirty {
			h.store.WriteEntityState(p, id, ectx.state)
		}

		if len(est.inbox) > 0 {
			if _, err := h.host.SubmitCtx("entity:"+est.name, []byte(est.id), est.inbox[0].traceCtx()); err != nil {
				est.active = false
			}
			return nil, nil
		}
		est.active = false
		return nil, nil
	}
}

// splitEntityInstance parses "@Name@key" into its parts.
func splitEntityInstance(id string) (name, key string, ok bool) {
	if len(id) < 3 || id[0] != '@' {
		return "", "", false
	}
	for i := 1; i < len(id); i++ {
		if id[i] == '@' {
			return id[1:i], id[i+1:], true
		}
	}
	return "", "", false
}

// EntityStateSize returns the persisted state size of an entity, or -1
// if the entity has no state. Control-plane helper for tests/reports.
func (h *Hub) EntityStateSize(e EntityID) int {
	row, ok := h.store.PeekEntityState(e.instanceID())
	if !ok {
		return -1
	}
	return len(row)
}
