package durable

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"statebench/internal/azure/functions"
	"statebench/internal/chaos"
	"statebench/internal/platform"
	"statebench/internal/sim"
)

// chaosFixture is fixture() with a seed and a wired fault injector.
func chaosFixture(seed uint64, plan *chaos.Plan) (*sim.Kernel, *functions.Host, *Hub, *Client, *chaos.Injector) {
	k := sim.NewKernel(seed)
	params := platform.DefaultAzure()
	params.HTTPTriggerRTT = sim.Fixed{D: 10 * time.Millisecond}
	params.InstanceColdStart = sim.Fixed{D: 500 * time.Millisecond}
	params.Dispatch = sim.Fixed{D: 5 * time.Millisecond}
	params.ScaleEvalInterval = 2 * time.Second
	params.ScaleOutStep = 2
	params.MaxInstances = 20
	params.IdleInstanceTimeout = 10 * time.Minute
	params.EntityOpOverhead = sim.Fixed{D: 20 * time.Millisecond}
	params.EntityStateRTT = sim.Fixed{D: 20 * time.Millisecond}
	params.HistoryReplayPerEvent = 5 * time.Millisecond
	h := functions.NewHost(k, "app", params)
	hub := NewHub(k, h, "hub")
	inj := chaos.NewInjector(k, plan)
	h.Chaos = inj
	hub.SetChaos(inj)
	return k, h, hub, NewClient(hub), inj
}

// registerChain installs the add1 activity and a 3-step chain
// orchestrator (the durable_test.go workload, reused under faults).
func registerChain(t *testing.T, hub *Hub) {
	t.Helper()
	if err := hub.RegisterActivity("add1", 128, func(ctx *functions.Context, in []byte) ([]byte, error) {
		ctx.Busy(50 * time.Millisecond)
		var n int
		if err := json.Unmarshal(in, &n); err != nil {
			return nil, err
		}
		return json.Marshal(n + 1)
	}); err != nil {
		t.Fatal(err)
	}
	if err := hub.RegisterOrchestrator("chain", 128, func(ctx *OrchestrationContext, input []byte) ([]byte, error) {
		v := input
		for i := 0; i < 3; i++ {
			out, err := ctx.CallActivity("add1", v).Await()
			if err != nil {
				return nil, err
			}
			v = out
		}
		return v, nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestOrchestrationSurvivesHostRecycle crashes the function host twice
// mid-dispatch (pre-handler): the work items redeliver and the
// orchestration must complete with the fault-free result.
func TestOrchestrationSurvivesHostRecycle(t *testing.T) {
	k, host, hub, client, inj := chaosFixture(1, &chaos.Plan{Rules: []chaos.Rule{
		{Component: "azfunc", Kind: chaos.Crash, Rate: 1, MaxFaults: 2},
	}})
	registerChain(t, hub)
	var out []byte
	var hd *Handle
	drive(k, host, func(p *sim.Proc) {
		var err error
		out, hd, err = client.Run(p, "chain", []byte("0"))
		if err != nil {
			t.Errorf("run: %v", err)
		}
	})
	if string(out) != "3" {
		t.Fatalf("output = %s, want 3 (host recycles must not lose work)", out)
	}
	if hd.Status() != StatusCompleted {
		t.Fatalf("status = %s", hd.Status())
	}
	st := inj.Stats()
	if st.Crashes != 2 || st.Redispatches != 2 {
		t.Fatalf("stats = %+v, want 2 crashes and 2 redispatches", st)
	}
}

// TestReplayRecoversEpisodeCrashes crashes one orchestrator episode
// before history persistence and another after it (but before message
// acknowledgment). Replay must recover both: the redelivered messages
// re-fold, history dedup by TaskID absorbs the already-persisted rows,
// and the result is byte-identical to the fault-free run.
func TestReplayRecoversEpisodeCrashes(t *testing.T) {
	k, host, hub, client, inj := chaosFixture(1, &chaos.Plan{
		RedeliveryDelay: 2 * time.Second,
		Rules: []chaos.Rule{
			{Component: "durable", Kind: chaos.Crash, Rate: 1, MaxFaults: 1},
			{Component: "durable", Kind: chaos.CrashAfterPersist, Rate: 1, MaxFaults: 1},
		},
	})
	registerChain(t, hub)
	var out []byte
	var hd *Handle
	drive(k, host, func(p *sim.Proc) {
		var err error
		out, hd, err = client.Run(p, "chain", []byte("0"))
		if err != nil {
			t.Errorf("run: %v", err)
		}
	})
	if string(out) != "3" {
		t.Fatalf("output = %s, want 3 (replay must recover both crash windows)", out)
	}
	if hd.Status() != StatusCompleted {
		t.Fatalf("status = %s", hd.Status())
	}
	st := inj.Stats()
	if st.Crashes != 2 {
		t.Fatalf("injected crashes = %d, want 2 (before and after persist)", st.Crashes)
	}
	if st.RecoveryDelay < 4*time.Second {
		t.Fatalf("recovery delay = %v, want >= 2 redeliveries x 2s", st.RecoveryDelay)
	}
	// The crash-after-persist episode persisted its rows; the re-run must
	// not have duplicated completion bookkeeping (E2E would be bogus).
	if hd.E2E() <= 0 {
		t.Fatalf("E2E = %v", hd.E2E())
	}
}

// TestWaitForExternalEventUnderChaos is the satellite coverage for the
// external-event path under host crashes plus duplicated control
// messages: the raised event must survive redelivery and the
// orchestration must complete exactly once with the right decision.
func TestWaitForExternalEventUnderChaos(t *testing.T) {
	k, host, hub, client, inj := chaosFixture(3, &chaos.Plan{
		RedeliveryDelay: 2 * time.Second,
		Rules: []chaos.Rule{
			{Component: "durable", Kind: chaos.Crash, Rate: 1, MaxFaults: 1},
			{Component: "azfunc", Kind: chaos.Crash, Rate: 0.3, MaxFaults: 2},
			{Component: "queue", Kind: chaos.Duplicate, Rate: 0.3},
		},
	})
	if err := hub.RegisterOrchestrator("approval", 128, func(ctx *OrchestrationContext, input []byte) ([]byte, error) {
		decision, err := ctx.WaitForExternalEvent("Approve").Await()
		if err != nil {
			return nil, err
		}
		return append([]byte("decided:"), decision...), nil
	}); err != nil {
		t.Fatal(err)
	}
	var out []byte
	var hd *Handle
	drive(k, host, func(p *sim.Proc) {
		var err error
		hd, err = client.StartOrchestration(p, "approval", nil)
		if err != nil {
			t.Errorf("start: %v", err)
			return
		}
		p.Sleep(time.Minute)
		if err := client.RaiseEvent(p, hd.ID, "Approve", []byte("yes")); err != nil {
			t.Errorf("raise: %v", err)
			return
		}
		out, err = hd.Wait(p)
		if err != nil {
			t.Errorf("wait: %v", err)
		}
	})
	if string(out) != "decided:yes" {
		t.Fatalf("out = %s, want decided:yes", out)
	}
	if hd.Status() != StatusCompleted {
		t.Fatalf("status = %s", hd.Status())
	}
	if inj.Stats().Injected == 0 {
		t.Fatal("no faults injected; the test exercised nothing")
	}
}

// TestWaitAnyUnderChaos races a fast activity against a long timer
// while the host recycles and episodes crash: recovery delays must not
// flip the outcome, and the completion must fire exactly once.
func TestWaitAnyUnderChaos(t *testing.T) {
	k, host, hub, client, inj := chaosFixture(5, &chaos.Plan{
		RedeliveryDelay: 2 * time.Second,
		Rules: []chaos.Rule{
			{Component: "azfunc", Kind: chaos.Crash, Rate: 0.5, MaxFaults: 3},
			{Component: "durable", Kind: chaos.CrashAfterPersist, Rate: 1, MaxFaults: 1},
		},
	})
	if err := hub.RegisterActivity("work", 128, func(ctx *functions.Context, in []byte) ([]byte, error) {
		ctx.Busy(100 * time.Millisecond)
		return []byte("work"), nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := hub.RegisterOrchestrator("withTimeout", 128, func(ctx *OrchestrationContext, input []byte) ([]byte, error) {
		work := ctx.CallActivity("work", nil)
		timeout := ctx.CreateTimer(10 * time.Minute)
		if ctx.WaitAny(work, timeout) == 1 {
			return []byte("timeout"), nil
		}
		return work.Await()
	}); err != nil {
		t.Fatal(err)
	}
	var out []byte
	drive(k, host, func(p *sim.Proc) {
		var err error
		out, _, err = client.Run(p, "withTimeout", nil)
		if err != nil {
			t.Errorf("run: %v", err)
		}
	})
	if string(out) != "work" {
		t.Fatalf("out = %s, want work (recovery delays are far below the timer)", out)
	}
	if inj.Stats().Crashes == 0 {
		t.Fatal("no crashes injected; the test exercised nothing")
	}
}

// TestEntityConvergenceUnderDuplicates is the satellite property: a
// monotonic entity operation (max) signaled through duplicated queue
// deliveries must converge to the same state as a fault-free run —
// at-least-once delivery with an idempotent fold.
func TestEntityConvergenceUnderDuplicates(t *testing.T) {
	values := []int{3, 1, 4, 1, 5, 9, 2, 6}
	totalDups := int64(0)
	for seed := uint64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			k, host, hub, client, inj := chaosFixture(seed, &chaos.Plan{Rules: []chaos.Rule{
				{Component: "queue", Kind: chaos.Duplicate, Rate: 0.5},
			}})
			if err := hub.RegisterEntity("Max", 128, func(ctx *EntityContext, op string, input []byte) ([]byte, error) {
				ctx.Busy(5 * time.Millisecond)
				var v, cur int
				if err := json.Unmarshal(input, &v); err != nil {
					return nil, err
				}
				if ctx.HasState() {
					if err := json.Unmarshal(ctx.State(), &cur); err != nil {
						return nil, err
					}
				}
				if v > cur {
					cur = v
				}
				s, _ := json.Marshal(cur)
				ctx.SetState(s)
				return nil, nil
			}); err != nil {
				t.Fatal(err)
			}
			var got int
			var ok bool
			drive(k, host, func(p *sim.Proc) {
				id := EntityID{Name: "Max", Key: "m"}
				for _, v := range values {
					in, _ := json.Marshal(v)
					if err := client.SignalEntity(p, id, "fold", in); err != nil {
						t.Errorf("signal: %v", err)
						return
					}
					p.Sleep(100 * time.Millisecond)
				}
				// Wait past the visibility timeout so duplicate ghosts
				// have re-delivered and folded before we read.
				p.Sleep(2 * time.Minute)
				var state []byte
				state, ok = client.ReadEntityState(p, id)
				if ok {
					if err := json.Unmarshal(state, &got); err != nil {
						t.Errorf("state: %v", err)
					}
				}
			})
			if !ok {
				t.Fatal("entity has no state")
			}
			if got != 9 {
				t.Fatalf("entity state = %d, want 9 (max must converge despite duplicates)", got)
			}
			totalDups += inj.Stats().Duplicates
		})
	}
	if totalDups == 0 {
		t.Fatal("no duplicate deliveries injected across any seed")
	}
}
