package durable

import (
	"encoding/json"
	"testing"
	"time"

	"statebench/internal/azure/functions"
	"statebench/internal/sim"
)

func TestWaitAnyRace(t *testing.T) {
	k, host, hub, client := fixture()
	mk := func(name string, d time.Duration) {
		if err := hub.RegisterActivity(name, 128, func(ctx *functions.Context, in []byte) ([]byte, error) {
			ctx.Busy(d)
			return []byte(name), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	mk("fast", 100*time.Millisecond)
	mk("slow", 10*time.Second)
	if err := hub.RegisterOrchestrator("race", 128, func(ctx *OrchestrationContext, input []byte) ([]byte, error) {
		a := ctx.CallActivity("slow", nil)
		b := ctx.CallActivity("fast", nil)
		idx := ctx.WaitAny(a, b)
		out, _ := json.Marshal(idx)
		return out, nil
	}); err != nil {
		t.Fatal(err)
	}
	var out []byte
	drive(k, host, func(p *sim.Proc) {
		var err error
		out, _, err = client.Run(p, "race", nil)
		if err != nil {
			t.Errorf("run: %v", err)
		}
	})
	if string(out) != "1" {
		t.Fatalf("WaitAny picked %s, want index 1 (fast)", out)
	}
}

func TestTimerRacesActivity(t *testing.T) {
	// The canonical durable timeout pattern: activity vs timer.
	k, host, hub, client := fixture()
	if err := hub.RegisterActivity("slowwork", 128, func(ctx *functions.Context, in []byte) ([]byte, error) {
		ctx.Busy(5 * time.Minute)
		return []byte("done"), nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := hub.RegisterOrchestrator("withTimeout", 128, func(ctx *OrchestrationContext, input []byte) ([]byte, error) {
		work := ctx.CallActivity("slowwork", nil)
		timeout := ctx.CreateTimer(30 * time.Second)
		if ctx.WaitAny(work, timeout) == 1 {
			return []byte("timed out"), nil
		}
		return work.Await()
	}); err != nil {
		t.Fatal(err)
	}
	var out []byte
	var hd *Handle
	drive(k, host, func(p *sim.Proc) {
		var err error
		out, hd, err = client.Run(p, "withTimeout", nil)
		if err != nil {
			t.Errorf("run: %v", err)
		}
	})
	if string(out) != "timed out" {
		t.Fatalf("out = %s", out)
	}
	if hd.E2E() >= 5*time.Minute {
		t.Fatalf("orchestration waited for the slow activity: %v", hd.E2E())
	}
}

func TestTaskDone(t *testing.T) {
	k, host, hub, client := fixture()
	if err := hub.RegisterActivity("a", 128, func(ctx *functions.Context, in []byte) ([]byte, error) {
		ctx.Busy(time.Second)
		return in, nil
	}); err != nil {
		t.Fatal(err)
	}
	sawNotDone := false
	if err := hub.RegisterOrchestrator("o", 128, func(ctx *OrchestrationContext, input []byte) ([]byte, error) {
		task := ctx.CallActivity("a", nil)
		if !task.Done() {
			sawNotDone = true
		}
		return task.Await()
	}); err != nil {
		t.Fatal(err)
	}
	drive(k, host, func(p *sim.Proc) {
		if _, _, err := client.Run(p, "o", nil); err != nil {
			t.Errorf("run: %v", err)
		}
	})
	if !sawNotDone {
		t.Fatal("Done() never reported pending")
	}
}
