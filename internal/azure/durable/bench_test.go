package durable

import (
	"testing"
	"time"

	"statebench/internal/azure/functions"
	"statebench/internal/sim"
)

// BenchmarkOrchestrationChain measures a full 3-activity durable
// orchestration including replays, history persistence, and queue
// polling — the per-run cost of the simulated DTFx machinery.
func BenchmarkOrchestrationChain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k, host, hub, client := fixture()
		if err := hub.RegisterActivity("w", 128, func(ctx *functions.Context, in []byte) ([]byte, error) {
			ctx.Busy(10 * time.Millisecond)
			return in, nil
		}); err != nil {
			b.Fatal(err)
		}
		if err := hub.RegisterOrchestrator("o", 128, func(ctx *OrchestrationContext, input []byte) ([]byte, error) {
			for j := 0; j < 3; j++ {
				if _, err := ctx.CallActivity("w", input).Await(); err != nil {
					return nil, err
				}
			}
			return nil, nil
		}); err != nil {
			b.Fatal(err)
		}
		k.Spawn("client", func(p *sim.Proc) {
			defer host.Stop()
			if _, _, err := client.Run(p, "o", nil); err != nil {
				b.Error(err)
			}
		})
		k.Run()
	}
}
