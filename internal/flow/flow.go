// Package flow is the provider-neutral workflow intermediate
// representation. A workload describes its orchestration once — a typed
// DAG of task, map/fan-out, parallel, choice, wait, and sub-workflow
// nodes, each task naming a payload-cacheable compute stage plus
// declared input/output payload estimates — and one compiler per
// backend (internal/aws/awsflow, internal/azure/azureflow,
// internal/gcp/gcpflow, internal/azure/netherite/nethflow) lowers the
// same definition to its vendor's orchestration format: SFN
// Amazon-States-Language machines, Azure storage-queue chains, Durable
// orchestrator code on either task-hub store, or GCP Workflows
// programs.
//
// The IR deliberately separates structure from calibration: the DAG,
// resource names, and memory tiers are declarative, while the simulated
// work inside each task is a workload-owned stage closure bound per
// deployment (Definition.Bind). That is what lets one definition
// reproduce byte-identical output with the per-provider code it
// replaced — every irregularity the paper measured (per-provider cost
// scopes, speeds, span layouts) lives in the workload's stage
// functions, and everything structural is compiled.
package flow

import (
	"encoding/json"
	"fmt"
	"time"

	"statebench/internal/cloud/blob"
	"statebench/internal/core"
	"statebench/internal/sim"
)

// Class names a lowering family. A definition carries one graph per
// class it supports; each registered Lowerer consumes exactly one
// class.
type Class string

const (
	// Mono is the single-function monolith (AWS-Lambda, Az-Func,
	// GCP-Func).
	Mono Class = "mono"
	// Machine is the managed state-machine family (AWS-Step's ASL
	// machine, GCP-Wflow's Workflows program).
	Machine Class = "machine"
	// Queue is the hand-rolled storage-queue chain (Az-Queue).
	Queue Class = "queue"
	// DurableOrch is the Durable-orchestrator style (Az-Dorch and its
	// Netherite variant).
	DurableOrch Class = "dorch"
	// DurableEnt is the Durable-entities style (Az-Dent and its
	// Netherite variant).
	DurableEnt Class = "dent"
)

// Kind is a node's structural type.
type Kind int

const (
	// KindTask is a single unit of work: a platform function, a durable
	// activity, an entity operation (Entity != ""), or an inline pure
	// transform (Pure).
	KindTask Kind = iota
	// KindMap fans one input out over a dynamic or static item list and
	// joins the results (SFN Map state, Durable WaitAll, GCP parallel).
	KindMap
	// KindParallel runs a fixed set of heterogeneous branches
	// concurrently and joins the results.
	KindParallel
	// KindChoice branches on the current payload.
	KindChoice
	// KindWait pauses the workflow for a fixed duration.
	KindWait
	// KindSub invokes a sub-workflow (Durable sub-orchestrator).
	KindSub
)

// String implements fmt.Stringer for diagnostics and DOT output.
func (k Kind) String() string {
	switch k {
	case KindTask:
		return "task"
	case KindMap:
		return "map"
	case KindParallel:
		return "parallel"
	case KindChoice:
		return "choice"
	case KindWait:
		return "wait"
	case KindSub:
		return "sub"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// InputMode selects what a node receives as its input payload.
type InputMode int

const (
	// InputPrev (the default) feeds the previous node's output.
	InputPrev InputMode = iota
	// InputEntry feeds the workflow's entry payload.
	InputEntry
	// InputNone feeds nil.
	InputNone
)

// JoinMode selects how a fan-out node's branch outputs are combined
// into the node's output payload.
type JoinMode int

const (
	// JoinArray emits the raw branch outputs as a JSON array, in branch
	// order.
	JoinArray JoinMode = iota
	// JoinEnvelope wraps the array in a one-field object named by the
	// node's ResultField (SFN's ResultPath convention).
	JoinEnvelope
	// JoinDiscard drops the branch outputs; the current payload passes
	// through unchanged.
	JoinDiscard
)

// ChoiceCase is one declarative branch condition of a KindChoice node.
// Conditions are a small JSONPath-style subset that lowers directly to
// ASL choice rules and evaluates inline on every other backend.
type ChoiceCase struct {
	// Var is the payload field the condition reads ("$.field").
	Var string
	// Exactly one comparison must be set.
	NumLT  *float64
	NumGTE *float64
	StrEq  *string
	// To is the node executed when the condition holds.
	To string
}

// Node is one vertex of a workflow graph.
type Node struct {
	// Name is the node's unique display/state name within its graph.
	Name string
	Kind Kind
	// Next names the successor node; "" ends the workflow.
	Next string
	// Input selects this node's input payload (tasks, maps, subs).
	Input InputMode

	// Task fields.
	//
	// Fn is the platform resource name (Lambda/function/activity);
	// Stage names the bound compute closure; MemMB is the provisioned
	// memory tier (0 = the lowering provider's default);
	// ConsumedMemMB/CodeSizeMB feed the platform's billing and
	// cold-start models.
	Fn            string
	Stage         string
	MemMB         int
	ConsumedMemMB int
	CodeSizeMB    float64
	// Entity/EntityKey/Op make the task a durable entity call.
	Entity    string
	EntityKey string
	// Op is the entity operation invoked.
	Op string
	// Pure marks an inline transform executed in the orchestrator with
	// no platform resource (and therefore no simulated time): the
	// stage must not touch its Act.
	Pure bool
	// QueueName is the storage queue feeding this node in a queue-chain
	// graph ("" = the HTTP-triggered head).
	QueueName string

	// Declared payload estimates for the static lint (bytes on the
	// node's input and output edges) and the declared execution
	// estimate (seconds at the definition's reference speed) for
	// provider execution-limit gating.
	InEst      int
	OutEst     int
	EstSeconds float64

	// Map fields. Items come from exactly one of: Fan (a bound fan
	// closure producing the item payloads), ItemsField (a JSON array
	// field of the node's input, SFN's ItemsPath), or — when both are
	// empty — the node's input itself parsed as a JSON array.
	Fan        string
	ItemsField string
	// ResultField names the envelope field for JoinEnvelope (SFN's
	// ResultPath).
	ResultField string
	// MaxConcurrency bounds the platform's fan-out parallelism
	// (0 = unbounded).
	MaxConcurrency int
	// Serial runs the fan-out's branches one at a time (a foreach).
	Serial bool
	Join   JoinMode
	// Iter describes the iterated work: a task-shaped node applied to
	// each item (its Next is ignored). For KindParallel, Branches
	// holds one task-shaped node per branch instead.
	Iter     *Node
	Branches []*Node

	// IterName is the state name of the Map iterator (SFN).
	IterName string

	// Choice fields.
	Cases   []ChoiceCase
	Default string

	// Wait fields.
	WaitSeconds float64

	// Sub fields.
	SubGraph *Graph
}

// EntityDecl declares a durable entity a graph owns: its operations
// map to bound stages, with an optional built-in state-read op and
// optional preloaded durable state.
type EntityDecl struct {
	Name          string
	ConsumedMemMB int
	// Ops maps operation names to stage names.
	Ops map[string]string
	// GetOp, when non-empty, names a built-in op returning the entity's
	// raw state.
	GetOp string
	// GetErr, when non-empty, is returned as an error from GetOp while
	// the entity has no state yet.
	GetErr string
	// PreloadKey/PreloadState seed the entity's durable state at
	// deploy time (classic task-hub store only).
	PreloadKey   string
	PreloadState []byte
}

// Preload stages one blob object at deploy time.
type Preload struct {
	Key  string
	Data []byte
	// Shared marks the object content-shared (blob.PreloadShared).
	Shared bool
}

// Graph is one lowering class's DAG plus its class-specific metadata.
type Graph struct {
	Class Class
	// Variants lists the allowed lowerer variants (nil = [""], the
	// classic backend only). The Durable graphs of a workload that
	// should also deploy on Netherite hubs list "" and "n".
	Variants []string
	// Start names the entry node.
	Start string
	// Nodes holds the graph's vertices in registration order: lowerers
	// register platform resources in exactly this order.
	Nodes []*Node
	// MachineName names the compiled artifact (state machine,
	// orchestrator, or workflow program). Empty = the definition name.
	MachineName string
	// MachineNameByProvider overrides MachineName per provider name
	// (the paper's GCP video program is named "video-processing" while
	// the SFN machine is "video-<N>w").
	MachineNameByProvider map[string]string
	// Comment annotates the compiled machine (ASL Comment field).
	Comment string
	// RetryAttempts > 0 attaches an ASL States.ALL retry policy with
	// that attempt budget to every task state of a Machine lowering.
	RetryAttempts int
	// OrchConsumedMemMB is the orchestrator function's consumed memory
	// (Durable lowerings).
	OrchConsumedMemMB int
	// FuncCount/CodeSizeMB are the deployment's Table II metadata.
	FuncCount  int
	CodeSizeMB float64
	// CodeSizeMBByProvider overrides CodeSizeMB per provider name
	// (e.g. the monolith ships 63.1 MB on AWS but 304 MB on Azure).
	CodeSizeMBByProvider map[string]float64
	// Entities declares the graph's durable entities in registration
	// order.
	Entities []EntityDecl
	// Preloads stages blob objects before registration.
	Preloads []Preload
}

// Node returns the named node, or nil.
func (g *Graph) Node(name string) *Node {
	for _, n := range g.Nodes {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// DeployCodeSizeMB resolves the deployment package size for a provider.
func (g *Graph) DeployCodeSizeMB(provider string) float64 {
	if v, ok := g.CodeSizeMBByProvider[provider]; ok {
		return v
	}
	return g.CodeSizeMB
}

// Act is the execution context a stage runs under: the simulated
// process plus the platform's busy-loop accounting. Every provider's
// function context satisfies it structurally.
type Act interface {
	Proc() *sim.Proc
	Busy(d time.Duration)
}

// StateAct extends Act with durable entity state access; entity-op
// stages type-assert their Act to it.
type StateAct interface {
	Act
	State() []byte
	SetState([]byte)
	HasState() bool
}

// StageFn is one bound compute stage. Its input and output are the
// payloads on the node's edges; all simulated work goes through the
// Act.
type StageFn func(a Act, input []byte) ([]byte, error)

// FanFn produces a fan-out's item payloads from the map node's input.
type FanFn func(input []byte) ([][]byte, error)

// Stages is the set of closures a definition binds for one deployment.
type Stages struct {
	Tasks map[string]StageFn
	Fans  map[string]FanFn
}

// Task resolves a stage name.
func (s *Stages) Task(name string) (StageFn, error) {
	if fn, ok := s.Tasks[name]; ok {
		return fn, nil
	}
	return nil, fmt.Errorf("flow: unbound stage %q", name)
}

// Fan resolves a fan name.
func (s *Stages) Fan(name string) (FanFn, error) {
	if fn, ok := s.Fans[name]; ok {
		return fn, nil
	}
	return nil, fmt.Errorf("flow: unbound fan %q", name)
}

// Binding tells a definition which deployment its stages are being
// bound for.
type Binding struct {
	Env *core.Env
	// Blob is the lowering provider's object store (S3, Azure Blob,
	// GCS, or the Netherite hub's store).
	Blob *blob.Store
	// Impl is the style being lowered.
	Impl core.Impl
	// Provider is the registered provider's display name ("AWS",
	// "Azure", "GCP", "Netherite").
	Provider string
	Class    Class
	// Variant is the lowerer variant ("" classic, "n" Netherite).
	Variant string
}

// RunState carries per-run bookkeeping a runner shares with its
// stages: the current run's start time and per-branch finish times
// (Table III's per-worker metric).
type RunState struct {
	CurStart sim.Time
	Finishes []time.Duration
}

// RecordFinish appends now-relative-to-run-start to Finishes.
func (r *RunState) RecordFinish(now sim.Time) {
	r.Finishes = append(r.Finishes, now-r.CurStart)
}

// runStateCarrier is implemented by lowerer contexts that expose a
// RunState to stages.
type runStateCarrier interface{ FlowRunState() *RunState }

// RunStateOf returns the deployment's RunState when the lowering
// exposes one (Durable activities), and nil otherwise — so a stage can
// record per-branch metrics only on the styles that surface them.
func RunStateOf(a Act) *RunState {
	if c, ok := a.(runStateCarrier); ok {
		return c.FlowRunState()
	}
	return nil
}

// Definition is one workload's provider-neutral description.
type Definition struct {
	// Name is the workflow name (core.Workflow.Name).
	Name string
	// ErrPrefix namespaces runtime error messages ("mltrain").
	ErrPrefix string
	// Graphs holds one DAG per supported lowering class.
	Graphs map[Class]*Graph
	// Bind builds the deployment's stage closures.
	Bind func(b Binding) (*Stages, error)
	// Entry produces the first payload for lowerings that drive the
	// workflow with raw bytes (queue chains, durable orchestrations,
	// Workflows programs).
	Entry func(class Class, run int64) []byte
	// EntryMap produces the execution input for lowerings that drive
	// the workflow with a JSON document (SFN, GCP Workflows
	// executions).
	EntryMap func(run int64) map[string]any
	// Finish converts the terminal payload of a GCP Workflows program
	// into the execution output. Nil = parse the payload as a JSON
	// object.
	Finish func(last []byte) (map[string]any, error)
	// RunOf extracts the run id from a payload (queue-chain run
	// tracking). Nil = parse a {"run": N} field.
	RunOf func(payload []byte) int64
	// FinishScratchKey, when non-empty, exposes the durable
	// deployment's RunState.Finishes in Env.Scratch under this key.
	FinishScratchKey string
	// Speeds maps provider names to the workload's calibrated relative
	// speed (reference 1.0); used to gate provider execution limits
	// against node EstSeconds. Missing entries default to 1.0.
	Speeds map[string]float64
}

// SpeedFor returns the calibrated speed for a provider name.
func (d *Definition) SpeedFor(provider string) float64 {
	if v, ok := d.Speeds[provider]; ok && v > 0 {
		return v
	}
	return 1.0
}

// RunIDOf applies RunOf or its default.
func (d *Definition) RunIDOf(payload []byte) int64 {
	if d.RunOf != nil {
		return d.RunOf(payload)
	}
	var m struct {
		Run int64 `json:"run"`
	}
	_ = json.Unmarshal(payload, &m)
	return m.Run
}

// MachineNameFor resolves a graph's artifact name for a provider.
func (d *Definition) MachineNameFor(g *Graph, provider string) string {
	if v, ok := g.MachineNameByProvider[provider]; ok {
		return v
	}
	if g.MachineName != "" {
		return g.MachineName
	}
	return d.Name
}

// OverrideMemMB sets the provisioned memory tier of every platform
// task node in every graph of the definition — the single knob the
// cost/latency optimizer sweeps. memMB <= 0 leaves the definition
// untouched (each node keeps its declared tier or the lowering
// provider's default). Pure transforms and entity operations run in
// the orchestrator or the entity host, not in their own provisioned
// function, so they are skipped; whether the tier actually shapes the
// bill is the provider's ProviderSpec.BillsConfiguredMem, not the
// definition's concern.
func OverrideMemMB(d *Definition, memMB int) {
	if memMB <= 0 || d == nil {
		return
	}
	for _, g := range d.Graphs {
		for _, n := range allNodes(g) {
			if n.Kind == KindTask && n.Fn != "" && !n.Pure && n.Entity == "" {
				n.MemMB = memMB
			}
		}
	}
}

// InputFor resolves a node's input payload from the current and entry
// payloads.
func InputFor(n *Node, cur, entry []byte) []byte {
	switch n.Input {
	case InputEntry:
		return entry
	case InputNone:
		return nil
	}
	return cur
}

// Items resolves a map node's fan-out item payloads: a bound fan
// closure, a JSON array field of the input, or the input itself as a
// JSON array. Raw item bytes are preserved exactly.
func Items(n *Node, st *Stages, input []byte) ([][]byte, error) {
	if n.Fan != "" {
		fan, err := st.Fan(n.Fan)
		if err != nil {
			return nil, err
		}
		return fan(input)
	}
	raw := json.RawMessage(input)
	if n.ItemsField != "" {
		var env map[string]json.RawMessage
		if err := json.Unmarshal(input, &env); err != nil {
			return nil, fmt.Errorf("flow: %s: items envelope: %w", n.Name, err)
		}
		field, ok := env[n.ItemsField]
		if !ok {
			return nil, fmt.Errorf("flow: %s: input has no %q field", n.Name, n.ItemsField)
		}
		raw = field
	}
	var items []json.RawMessage
	if err := json.Unmarshal(raw, &items); err != nil {
		return nil, fmt.Errorf("flow: %s: items: %w", n.Name, err)
	}
	out := make([][]byte, len(items))
	for i, it := range items {
		out[i] = []byte(it)
	}
	return out, nil
}

// JoinOutputs combines branch outputs per the node's JoinMode. Raw
// branch bytes are embedded verbatim, so the result is byte-identical
// to marshalling the parsed structs (JSON re-marshal of these payloads
// is stable).
func JoinOutputs(n *Node, outs [][]byte, cur []byte) ([]byte, error) {
	switch n.Join {
	case JoinDiscard:
		return cur, nil
	case JoinEnvelope:
		raws := make([]json.RawMessage, len(outs))
		for i, o := range outs {
			raws[i] = json.RawMessage(o)
		}
		return json.Marshal(map[string]any{n.ResultField: raws})
	}
	raws := make([]json.RawMessage, len(outs))
	for i, o := range outs {
		raws[i] = json.RawMessage(o)
	}
	return json.Marshal(raws)
}

// EvalChoice returns the name of the node a choice's payload selects.
func EvalChoice(n *Node, payload []byte) (string, error) {
	var doc map[string]any
	if err := json.Unmarshal(payload, &doc); err != nil {
		return "", fmt.Errorf("flow: %s: choice payload: %w", n.Name, err)
	}
	for _, c := range n.Cases {
		field := c.Var
		if len(field) > 2 && field[:2] == "$." {
			field = field[2:]
		}
		v, ok := doc[field]
		if !ok {
			continue
		}
		switch {
		case c.NumLT != nil:
			if f, ok := v.(float64); ok && f < *c.NumLT {
				return c.To, nil
			}
		case c.NumGTE != nil:
			if f, ok := v.(float64); ok && f >= *c.NumGTE {
				return c.To, nil
			}
		case c.StrEq != nil:
			if s, ok := v.(string); ok && s == *c.StrEq {
				return c.To, nil
			}
		}
	}
	if n.Default == "" {
		return "", fmt.Errorf("flow: %s: no choice case matched and no default", n.Name)
	}
	return n.Default, nil
}

// ApplyPreloads stages a graph's blob objects.
func ApplyPreloads(store *blob.Store, g *Graph) {
	for _, p := range g.Preloads {
		if p.Shared {
			store.PreloadShared(p.Key, p.Data)
		} else {
			store.Preload(p.Key, p.Data)
		}
	}
}
