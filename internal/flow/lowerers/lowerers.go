// Package lowerers links every per-provider flow compiler into a
// binary. Workload packages that define themselves in the IR import it
// blank — the same one-line opt-in the core provider registry uses —
// so adding a backend never touches workload code.
package lowerers

import (
	_ "statebench/internal/aws/awsflow"
	_ "statebench/internal/azure/azureflow"
	_ "statebench/internal/azure/netherite/nethflow"
	_ "statebench/internal/gcp/gcpflow"
)
