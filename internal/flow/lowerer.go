package flow

import (
	"fmt"

	"statebench/internal/core"
)

// Caps are the provider limits a lowerer enforces: the orchestration
// payload cap the paper measures (256 KB on SFN, 64 KB on Durable and
// storage queues) and the platform's function execution ceiling.
type Caps struct {
	// PayloadBytes is the maximum inter-state payload (0 = unlimited,
	// e.g. blob-passing monoliths).
	PayloadBytes int
	// MaxTaskSeconds is the function execution time limit in seconds
	// (0 = unlimited). Checked against node EstSeconds scaled by the
	// definition's provider speed.
	MaxTaskSeconds float64
}

// Lowerer compiles one class of IR graph to one implementation style.
// Each lives in its provider's package and self-registers from init,
// discovered the same way core.ProviderSpec styles are: the flow layer
// never imports a provider.
type Lowerer interface {
	// Impl is the implementation style this lowerer produces.
	Impl() core.Impl
	// Class is the graph class it consumes.
	Class() Class
	// Variant distinguishes backend variants of one class ("" classic,
	// "n" Netherite); a graph opts into variants via Graph.Variants.
	Variant() string
	// Caps reports the provider limits the lowering is subject to.
	Caps() Caps
	// Lower compiles the definition's graph for this class into a
	// deployed workflow on env.
	Lower(env *core.Env, def *Definition) (*core.Deployment, error)
	// Program renders the compiled orchestration artifact as text (ASL
	// JSON, a Workflows program, a registration plan) without an Env.
	// It must be deterministic: same definition, same bytes.
	Program(def *Definition) (string, error)
}

var (
	lowererRegistry = map[core.Impl]Lowerer{}
	lowererOrder    []core.Impl
)

// RegisterLowerer adds a lowerer to the registry; called from provider
// package inits, so a duplicate is a programming error.
func RegisterLowerer(l Lowerer) {
	impl := l.Impl()
	if _, dup := lowererRegistry[impl]; dup {
		panic(fmt.Sprintf("flow: lowerer for %s registered twice", impl))
	}
	lowererRegistry[impl] = l
	lowererOrder = append(lowererOrder, impl)
}

// LowererFor returns the registered lowerer for a style.
func LowererFor(impl core.Impl) (Lowerer, bool) {
	l, ok := lowererRegistry[impl]
	return l, ok
}

// variantAllowed reports whether a graph opts into a lowerer variant.
func variantAllowed(g *Graph, variant string) bool {
	if g.Variants == nil {
		return variant == ""
	}
	for _, v := range g.Variants {
		if v == variant {
			return true
		}
	}
	return false
}

// graphFor resolves the definition graph a lowerer would consume, or
// nil when the definition does not support the style.
func graphFor(def *Definition, l Lowerer) *Graph {
	g, ok := def.Graphs[l.Class()]
	if !ok || !variantAllowed(g, l.Variant()) {
		return nil
	}
	return g
}

// Supports reports whether a definition can lower to a style: a
// lowerer is registered, the definition carries a graph of its class
// that allows its variant, and every node's declared execution
// estimate fits the provider's execution ceiling at the workload's
// calibrated speed. (The payload lint, by contrast, only warns — the
// paper deliberately measures what happens at the caps.)
func Supports(def *Definition, impl core.Impl) bool {
	l, ok := lowererRegistry[impl]
	if !ok {
		return false
	}
	g := graphFor(def, l)
	if g == nil {
		return false
	}
	caps := l.Caps()
	if caps.MaxTaskSeconds <= 0 {
		return true
	}
	info, ok := core.StyleOf(impl)
	if !ok {
		return false
	}
	speed := 1.0
	if spec, ok := core.Provider(info.Kind); ok {
		speed = def.SpeedFor(spec.Name)
	}
	for _, n := range allNodes(g) {
		if n.EstSeconds > 0 && n.EstSeconds/speed > caps.MaxTaskSeconds {
			return false
		}
	}
	return true
}

// ExcludeReason explains why Supports(def, impl) said no, in the
// wording the graph-command summary pins: missing graph class, a
// variant the graph does not opt into, or an execution-estimate
// ceiling at the workload's calibrated provider speed. Returns "" when
// the style is in fact supported, so callers (the optimizer's
// dominated-set CSV, the graph summary) can never silently skip a
// config: a skip either carries a reason or did not happen.
func ExcludeReason(def *Definition, impl core.Impl) string {
	l, ok := lowererRegistry[impl]
	if !ok {
		return "no lowerer registered"
	}
	if Supports(def, impl) {
		return ""
	}
	g, ok := def.Graphs[l.Class()]
	if !ok {
		return fmt.Sprintf("no %s graph", l.Class())
	}
	if !variantAllowed(g, l.Variant()) {
		return fmt.Sprintf("graph does not opt into variant %q", l.Variant())
	}
	speed := def.SpeedFor(ProviderNameOf(impl))
	return fmt.Sprintf("an execution estimate exceeds %gs at speed %.2f", l.Caps().MaxTaskSeconds, speed)
}

// Deploy lowers a definition to one style, dispatching through the
// lowerer registry. It is the single Deploy body every IR-defined
// workload shares.
func Deploy(env *core.Env, def *Definition, impl core.Impl) (*core.Deployment, error) {
	l, ok := lowererRegistry[impl]
	if !ok {
		return nil, &core.UnsupportedImplError{Workflow: def.Name, Impl: impl}
	}
	if graphFor(def, l) == nil {
		return nil, &core.UnsupportedImplError{Workflow: def.Name, Impl: impl}
	}
	return l.Lower(env, def)
}

// Extras derives a workload's ExtraImpls: every registered style the
// definition lowers to that is not already in the workload's paper
// list. Provider packages registered after the workload was written
// show up automatically — the IR version of the "zero core edits"
// registry contract.
func Extras(def *Definition, paper []core.Impl) []core.Impl {
	inPaper := make(map[core.Impl]bool, len(paper))
	for _, impl := range paper {
		inPaper[impl] = true
	}
	var out []core.Impl
	for _, impl := range core.RegisteredImpls() {
		if !inPaper[impl] && Supports(def, impl) {
			out = append(out, impl)
		}
	}
	return out
}

// ProviderNameOf resolves a style's registered provider display name.
func ProviderNameOf(impl core.Impl) string {
	if info, ok := core.StyleOf(impl); ok {
		if spec, ok := core.Provider(info.Kind); ok {
			return spec.Name
		}
	}
	return ""
}
