package flow

import (
	"strings"
	"testing"
)

// task returns a minimal valid task node.
func task(name, next string) *Node {
	return &Node{Name: name, Kind: KindTask, Fn: "fn-" + name, Stage: "stage", Next: next}
}

// defWith wraps one mono graph in a definition.
func defWith(g *Graph) *Definition {
	return &Definition{Name: "t", Graphs: map[Class]*Graph{Mono: g}}
}

func wantInvalid(t *testing.T, def *Definition, frag string) {
	t.Helper()
	err := Validate(def)
	if err == nil {
		t.Fatalf("Validate accepted a definition that should fail with %q", frag)
	}
	if _, ok := err.(*ValidationError); !ok {
		t.Fatalf("Validate returned %T, want *ValidationError", err)
	}
	if !strings.Contains(err.Error(), frag) {
		t.Fatalf("Validate error %q does not mention %q", err, frag)
	}
}

func TestValidateAcceptsAMinimalGraph(t *testing.T) {
	def := defWith(&Graph{Class: Mono, Start: "A", Nodes: []*Node{task("A", "")}})
	if err := Validate(def); err != nil {
		t.Fatalf("Validate rejected a minimal graph: %v", err)
	}
}

func TestValidateRejectsCycles(t *testing.T) {
	wantInvalid(t, defWith(&Graph{Class: Mono, Start: "A", Nodes: []*Node{
		task("A", "B"), task("B", "A"),
	}}), "cycle detected")
	// Self-loop.
	wantInvalid(t, defWith(&Graph{Class: Mono, Start: "A", Nodes: []*Node{
		task("A", "A"),
	}}), "cycle detected")
}

func TestValidateRejectsUnreachableNodes(t *testing.T) {
	wantInvalid(t, defWith(&Graph{Class: Mono, Start: "A", Nodes: []*Node{
		task("A", ""), task("Orphan", ""),
	}}), "unreachable")
}

func TestValidateRejectsFanOutBeyondBound(t *testing.T) {
	iter := task("Each", "")
	wantInvalid(t, defWith(&Graph{Class: Mono, Start: "M", Nodes: []*Node{{
		Name: "M", Kind: KindMap, Iter: iter, MaxConcurrency: MaxFanOut + 1,
	}}}), "exceeds limit")

	branches := make([]*Node, MaxFanOut+1)
	for i := range branches {
		branches[i] = task("B"+strings.Repeat("x", i%3)+string(rune('a'+i%26)), "")
	}
	wantInvalid(t, defWith(&Graph{Class: Mono, Start: "P", Nodes: []*Node{{
		Name: "P", Kind: KindParallel, Branches: branches,
	}}}), "exceeds limit")

	wantInvalid(t, defWith(&Graph{Class: Mono, Start: "M", Nodes: []*Node{{
		Name: "M", Kind: KindMap, Iter: iter, MaxConcurrency: -1,
	}}}), "negative fan-out")
}

func TestValidateRejectsDanglingAndMalformedShapes(t *testing.T) {
	cases := []struct {
		name string
		def  *Definition
		frag string
	}{
		{"no name", &Definition{Graphs: map[Class]*Graph{}}, "no name"},
		{"no graphs", &Definition{Name: "t"}, "no graphs"},
		{"class mismatch", &Definition{Name: "t", Graphs: map[Class]*Graph{
			Mono: {Class: Machine, Start: "A", Nodes: []*Node{task("A", "")}},
		}}, "declares class"},
		{"no nodes", defWith(&Graph{Class: Mono, Start: "A"}), "no nodes"},
		{"no start", defWith(&Graph{Class: Mono, Nodes: []*Node{task("A", "")}}), "no start"},
		{"missing start", defWith(&Graph{Class: Mono, Start: "Z", Nodes: []*Node{task("A", "")}}), "does not exist"},
		{"duplicate names", defWith(&Graph{Class: Mono, Start: "A", Nodes: []*Node{
			task("A", "B"), task("B", ""), task("B", ""),
		}}), "duplicate"},
		{"dangling edge", defWith(&Graph{Class: Mono, Start: "A", Nodes: []*Node{
			task("A", "Gone"),
		}}), "unknown node"},
		{"task without fn", defWith(&Graph{Class: Mono, Start: "A", Nodes: []*Node{
			{Name: "A", Kind: KindTask, Stage: "s"},
		}}), "no function name"},
		{"task without stage", defWith(&Graph{Class: Mono, Start: "A", Nodes: []*Node{
			{Name: "A", Kind: KindTask, Fn: "f"},
		}}), "no stage"},
		{"map without iter", defWith(&Graph{Class: Mono, Start: "M", Nodes: []*Node{
			{Name: "M", Kind: KindMap},
		}}), "no iterator"},
		{"parallel without branches", defWith(&Graph{Class: Mono, Start: "P", Nodes: []*Node{
			{Name: "P", Kind: KindParallel},
		}}), "no branches"},
		{"choice with two comparisons", defWith(&Graph{Class: Mono, Start: "C", Nodes: []*Node{
			{Name: "C", Kind: KindChoice, Cases: []ChoiceCase{{
				Var: "x", To: "A", NumLT: f64(1), NumGTE: f64(2),
			}}, Default: "A"},
			task("A", ""),
		}}), "exactly one comparison"},
		{"non-positive wait", defWith(&Graph{Class: Mono, Start: "W", Nodes: []*Node{
			{Name: "W", Kind: KindWait, WaitSeconds: 0},
		}}), "must be positive"},
		{"bad sub-graph", defWith(&Graph{Class: Mono, Start: "S", Nodes: []*Node{
			{Name: "S", Kind: KindSub, SubGraph: &Graph{Class: Mono, Start: "X", Nodes: []*Node{
				task("X", "X"),
			}}},
		}}), "cycle detected"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { wantInvalid(t, c.def, c.frag) })
	}
}

// TestValidateFindsDefectsInsideIterators proves shape checks recurse
// into nested nodes, where most real mistakes hide.
func TestValidateFindsDefectsInsideIterators(t *testing.T) {
	wantInvalid(t, defWith(&Graph{Class: Mono, Start: "M", Nodes: []*Node{{
		Name: "M", Kind: KindMap,
		Iter: &Node{Name: "Each", Kind: KindTask, Fn: "f"}, // no stage
	}}}), "no stage")
}

func f64(v float64) *float64 { return &v }
