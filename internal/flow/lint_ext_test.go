package flow_test

// External test: links the real provider lowerers so the payload lint
// runs against the registered caps (256 KB on SFN, 64 KB on Durable
// and storage queues) rather than stand-ins.

import (
	"testing"

	"statebench/internal/flow"
	_ "statebench/internal/flow/lowerers"
)

// lintDef builds a definition whose machine graph carries a 300 KB
// edge (over SFN's 256 KB cap, under GCP Workflows' 512 KB cap) and
// whose queue and durable graphs carry a 70 KB edge (over the Azure
// 64 KB cap) — plus edges sitting exactly AT each cap, which must not
// be flagged: the lint bounds strictly-over estimates only, because
// riding the cap is exactly the regime the paper measures.
func lintDef() *flow.Definition {
	node := func(name, next string, in, out int) *flow.Node {
		return &flow.Node{
			Name: name, Kind: flow.KindTask, Fn: "fn-" + name, Stage: "s",
			Next: next, InEst: in, OutEst: out,
		}
	}
	def := &flow.Definition{
		Name: "lint-probe",
		Graphs: map[flow.Class]*flow.Graph{
			flow.Machine: {
				Class: flow.Machine, Start: "A",
				Nodes: []*flow.Node{
					node("A", "B", 0, 300_000),
					node("B", "AtCap", 300_000, 0),
					node("AtCap", "", 256<<10, 256<<10),
				},
			},
			flow.Queue: {
				Class: flow.Queue, Start: "Q1",
				Nodes: []*flow.Node{
					node("Q1", "Q2", 0, 70_000),
					node("Q2", "Q3", 70_000, 0),
					node("Q3", "", 64<<10, 64<<10),
				},
			},
			flow.DurableOrch: {
				Class: flow.DurableOrch, Start: "D1",
				Variants: []string{"", "n"},
				Nodes: []*flow.Node{
					node("D1", "D2", 0, 70_000),
					node("D2", "", 70_000, 0),
				},
			},
		},
	}
	return def
}

// TestLintReportGolden pins the lint output byte for byte: which
// styles flag which edges, in registry order, with the 256 KB and
// 64 KB caps spelled out — and silence for the at-cap edges.
func TestLintReportGolden(t *testing.T) {
	def := lintDef()
	if err := flow.Validate(def); err != nil {
		t.Fatalf("probe definition is invalid: %v", err)
	}
	want := `AWS-Step [machine]: edge A -> carries ~300000 B, provider cap 262144 B
AWS-Step [machine]: edge -> B carries ~300000 B, provider cap 262144 B
Az-Queue [queue]: edge Q1 -> carries ~70000 B, provider cap 65536 B
Az-Queue [queue]: edge -> Q2 carries ~70000 B, provider cap 65536 B
Az-Dorch [dorch]: edge D1 -> carries ~70000 B, provider cap 65536 B
Az-Dorch [dorch]: edge -> D2 carries ~70000 B, provider cap 65536 B
Az-Dorch-N [dorch]: edge D1 -> carries ~70000 B, provider cap 65536 B
Az-Dorch-N [dorch]: edge -> D2 carries ~70000 B, provider cap 65536 B
`
	if got := flow.LintReport(def); got != want {
		t.Fatalf("lint report drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestLintIsAdvisory: an over-cap estimate must not block lowering —
// Supports and Deploy ignore the lint (the paper deliberately measures
// behaviour at the caps).
func TestLintIsAdvisory(t *testing.T) {
	def := lintDef()
	if !flow.Supports(def, "AWS-Step") {
		t.Fatal("a lint finding blocked Supports; the lint must stay advisory")
	}
}

func TestLintCleanDefinitionReportsClean(t *testing.T) {
	def := lintDef()
	for _, g := range def.Graphs {
		for _, n := range g.Nodes {
			n.InEst, n.OutEst = 0, 0
		}
	}
	if got := flow.LintReport(def); got != "(payload lint clean)\n" {
		t.Fatalf("clean definition produced findings:\n%s", got)
	}
}
