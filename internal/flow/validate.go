package flow

import (
	"fmt"
)

// MaxFanOut bounds a single fan-out's width: the widest managed map
// state the simulated providers accept. Validation rejects static
// fan-outs beyond it, and lowerers clamp nothing — a data-dependent
// fan that exceeds it fails at run time with a graph error.
const MaxFanOut = 1024

// ValidationError reports a structural defect found at registration
// time.
type ValidationError struct {
	Def   string
	Graph Class
	Node  string
	Msg   string
}

func (e *ValidationError) Error() string {
	where := fmt.Sprintf("flow: %s/%s", e.Def, e.Graph)
	if e.Node != "" {
		where += "/" + e.Node
	}
	return where + ": " + e.Msg
}

// Validate checks a definition's graphs at registration time: name
// uniqueness, dangling references, cycles, reachability, fan-out
// bounds, and task completeness. Workloads call it from New, and the
// graph subcommand calls it before rendering, so a malformed IR never
// reaches a lowerer.
func Validate(def *Definition) error {
	if def.Name == "" {
		return &ValidationError{Def: "?", Msg: "definition has no name"}
	}
	if len(def.Graphs) == 0 {
		return &ValidationError{Def: def.Name, Msg: "definition has no graphs"}
	}
	for _, class := range classOrder {
		g, ok := def.Graphs[class]
		if !ok {
			continue
		}
		if g.Class != class {
			return &ValidationError{Def: def.Name, Graph: class, Msg: fmt.Sprintf("graph registered under class %q declares class %q", class, g.Class)}
		}
		if err := validateGraph(def.Name, g); err != nil {
			return err
		}
	}
	return nil
}

// classOrder fixes the iteration order over a definition's graphs for
// every deterministic consumer (validation, lint, DOT).
var classOrder = []Class{Mono, Machine, Queue, DurableOrch, DurableEnt}

func validateGraph(defName string, g *Graph) error {
	fail := func(node, format string, args ...any) error {
		return &ValidationError{Def: defName, Graph: g.Class, Node: node, Msg: fmt.Sprintf(format, args...)}
	}
	if len(g.Nodes) == 0 {
		return fail("", "graph has no nodes")
	}
	byName := make(map[string]*Node, len(g.Nodes))
	for _, n := range g.Nodes {
		if n.Name == "" {
			return fail("", "node with empty name")
		}
		if _, dup := byName[n.Name]; dup {
			return fail(n.Name, "duplicate node name")
		}
		byName[n.Name] = n
	}
	if g.Start == "" {
		return fail("", "graph has no start node")
	}
	if _, ok := byName[g.Start]; !ok {
		return fail("", "start node %q does not exist", g.Start)
	}

	// Per-node shape checks, including nested iterator/branch/sub
	// nodes (which live outside the top-level namespace).
	for _, n := range g.Nodes {
		if err := validateNode(defName, g, n, byName); err != nil {
			return err
		}
	}

	// Reachability and cycle detection over the top-level successor
	// edges (Next, choice cases, choice default).
	const (
		white = 0 // unvisited
		grey  = 1 // on the DFS stack
		black = 2 // finished
	)
	color := make(map[string]int, len(g.Nodes))
	var visit func(name string, from string) error
	visit = func(name, from string) error {
		n, ok := byName[name]
		if !ok {
			return fail(from, "edge to unknown node %q", name)
		}
		switch color[name] {
		case grey:
			return fail(name, "cycle detected through %q", name)
		case black:
			return nil
		}
		color[name] = grey
		for _, succ := range successors(n) {
			if err := visit(succ, name); err != nil {
				return err
			}
		}
		color[name] = black
		return nil
	}
	if err := visit(g.Start, ""); err != nil {
		return err
	}
	for _, n := range g.Nodes {
		if color[n.Name] == white {
			return fail(n.Name, "unreachable from start node %q", g.Start)
		}
	}
	return nil
}

// successors lists a node's top-level outgoing edges.
func successors(n *Node) []string {
	var out []string
	if n.Next != "" {
		out = append(out, n.Next)
	}
	for _, c := range n.Cases {
		if c.To != "" {
			out = append(out, c.To)
		}
	}
	if n.Default != "" {
		out = append(out, n.Default)
	}
	return out
}

func validateNode(defName string, g *Graph, n *Node, byName map[string]*Node) error {
	fail := func(format string, args ...any) error {
		return &ValidationError{Def: defName, Graph: g.Class, Node: n.Name, Msg: fmt.Sprintf(format, args...)}
	}
	switch n.Kind {
	case KindTask:
		switch {
		case n.Pure:
			if n.Stage == "" {
				return fail("pure task has no stage")
			}
		case n.Entity != "":
			if n.Op == "" {
				return fail("entity task has no op")
			}
		default:
			if n.Fn == "" {
				return fail("task has no function name")
			}
			if n.Stage == "" {
				return fail("task has no stage")
			}
		}
	case KindMap:
		if n.Iter == nil {
			return fail("map has no iterator node")
		}
		if n.MaxConcurrency < 0 {
			return fail("negative fan-out bound %d", n.MaxConcurrency)
		}
		if n.MaxConcurrency > MaxFanOut {
			return fail("fan-out bound %d exceeds limit %d", n.MaxConcurrency, MaxFanOut)
		}
		if err := validateNode(defName, g, n.Iter, byName); err != nil {
			return err
		}
	case KindParallel:
		if len(n.Branches) == 0 {
			return fail("parallel has no branches")
		}
		if len(n.Branches) > MaxFanOut {
			return fail("static fan-out %d exceeds limit %d", len(n.Branches), MaxFanOut)
		}
		for _, b := range n.Branches {
			if err := validateNode(defName, g, b, byName); err != nil {
				return err
			}
		}
	case KindChoice:
		if len(n.Cases) == 0 {
			return fail("choice has no cases")
		}
		for _, c := range n.Cases {
			if c.To == "" {
				return fail("choice case has no target")
			}
			set := 0
			if c.NumLT != nil {
				set++
			}
			if c.NumGTE != nil {
				set++
			}
			if c.StrEq != nil {
				set++
			}
			if set != 1 {
				return fail("choice case on %q must set exactly one comparison", c.Var)
			}
		}
	case KindWait:
		if n.WaitSeconds <= 0 {
			return fail("wait duration must be positive, got %v", n.WaitSeconds)
		}
	case KindSub:
		if n.SubGraph == nil {
			return fail("sub node has no sub-graph")
		}
		if err := validateGraph(defName, n.SubGraph); err != nil {
			return err
		}
	default:
		return fail("unknown node kind %d", int(n.Kind))
	}
	return nil
}

// allNodes flattens a graph — top-level nodes plus map iterators,
// parallel branches, and sub-graph nodes — in deterministic order.
func allNodes(g *Graph) []*Node {
	var out []*Node
	var add func(n *Node)
	add = func(n *Node) {
		out = append(out, n)
		if n.Iter != nil {
			add(n.Iter)
		}
		for _, b := range n.Branches {
			add(b)
		}
		if n.SubGraph != nil {
			for _, sn := range n.SubGraph.Nodes {
				add(sn)
			}
		}
	}
	for _, n := range g.Nodes {
		add(n)
	}
	return out
}
