package flow

import (
	"fmt"
	"strings"

	"statebench/internal/core"
)

// LintFinding flags one edge whose declared payload estimate exceeds a
// registered lowerer's payload cap — the 256 KB SFN and 64 KB Durable
// limits the paper measures. The lint is static (estimates, not
// runtime payloads) and advisory: a workload may deliberately ride the
// cap, which is exactly the regime the paper studies.
type LintFinding struct {
	Impl  core.Impl
	Class Class
	// Edge names the flagged edge: "-> Node" (input) or "Node ->"
	// (output).
	Edge  string
	Bytes int
	Cap   int
}

func (f LintFinding) String() string {
	return fmt.Sprintf("%s [%s]: edge %s carries ~%d B, provider cap %d B",
		f.Impl, f.Class, f.Edge, f.Bytes, f.Cap)
}

// LintPayloads checks every registered lowerer's payload cap against
// the declared input/output estimates of the definition's graphs.
// Findings are ordered by lowerer registration order, then node order.
func LintPayloads(def *Definition) []LintFinding {
	var out []LintFinding
	for _, impl := range lowererOrder {
		l := lowererRegistry[impl]
		cap := l.Caps().PayloadBytes
		if cap <= 0 {
			continue
		}
		g := graphFor(def, l)
		if g == nil {
			continue
		}
		for _, n := range allNodes(g) {
			if n.InEst > cap {
				out = append(out, LintFinding{Impl: impl, Class: g.Class, Edge: "-> " + n.Name, Bytes: n.InEst, Cap: cap})
			}
			if n.OutEst > cap {
				out = append(out, LintFinding{Impl: impl, Class: g.Class, Edge: n.Name + " ->", Bytes: n.OutEst, Cap: cap})
			}
		}
	}
	return out
}

// LintReport renders findings one per line ("(payload lint clean)"
// when empty) for goldens and the graph subcommand.
func LintReport(def *Definition) string {
	findings := LintPayloads(def)
	if len(findings) == 0 {
		return "(payload lint clean)\n"
	}
	var sb strings.Builder
	for _, f := range findings {
		sb.WriteString(f.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
