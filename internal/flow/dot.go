package flow

import (
	"fmt"
	"strings"
)

// DOT renders a definition's graphs as a single Graphviz digraph, one
// cluster per lowering class, deterministically (fixed class order,
// node order as registered). Task nodes show their platform function
// or entity operation; fan-out nodes show their iterator as a dashed
// expansion edge.
func DOT(def *Definition) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", def.Name)
	sb.WriteString("  rankdir=LR;\n")
	sb.WriteString("  node [fontname=\"Helvetica\", shape=box];\n")
	for _, class := range classOrder {
		g, ok := def.Graphs[class]
		if !ok {
			continue
		}
		fmt.Fprintf(&sb, "  subgraph \"cluster_%s\" {\n", class)
		label := string(class)
		if len(g.Variants) > 1 {
			label += " (variants: " + strings.Join(g.Variants, ",") + ")"
		}
		fmt.Fprintf(&sb, "    label=%q;\n", label)
		writeDotGraph(&sb, string(class), g, "    ")
		sb.WriteString("  }\n")
	}
	sb.WriteString("}\n")
	return sb.String()
}

func dotID(prefix, name string) string {
	return prefix + "/" + name
}

func writeDotGraph(sb *strings.Builder, prefix string, g *Graph, indent string) {
	for _, n := range g.Nodes {
		writeDotNode(sb, prefix, n, indent)
	}
	// Entry marker.
	fmt.Fprintf(sb, "%s%q [shape=point];\n", indent, dotID(prefix, "@start"))
	fmt.Fprintf(sb, "%s%q -> %q;\n", indent, dotID(prefix, "@start"), dotID(prefix, g.Start))
	for _, n := range g.Nodes {
		if n.Next != "" {
			fmt.Fprintf(sb, "%s%q -> %q;\n", indent, dotID(prefix, n.Name), dotID(prefix, n.Next))
		}
		for _, c := range n.Cases {
			fmt.Fprintf(sb, "%s%q -> %q [label=%q];\n", indent, dotID(prefix, n.Name), dotID(prefix, c.To), caseLabel(c))
		}
		if n.Default != "" {
			fmt.Fprintf(sb, "%s%q -> %q [label=\"default\"];\n", indent, dotID(prefix, n.Name), dotID(prefix, n.Default))
		}
	}
}

func writeDotNode(sb *strings.Builder, prefix string, n *Node, indent string) {
	id := dotID(prefix, n.Name)
	switch n.Kind {
	case KindTask:
		label := n.Name
		switch {
		case n.Pure:
			label += "\\n(pure " + n.Stage + ")"
		case n.Entity != "":
			label += "\\n" + n.Entity + "." + n.Op
		default:
			label += "\\n" + n.Fn
		}
		shape := "box"
		if n.Entity != "" {
			shape = "cylinder"
		}
		fmt.Fprintf(sb, "%s%q [label=%q, shape=%s];\n", indent, id, label, shape)
	case KindMap:
		width := "N"
		if n.MaxConcurrency > 0 {
			width = fmt.Sprintf("N (max %d)", n.MaxConcurrency)
		}
		if n.Serial {
			width += " serial"
		}
		fmt.Fprintf(sb, "%s%q [label=%q, shape=box3d];\n", indent, id, n.Name+"\\nmap x "+width)
		writeDotNode(sb, prefix, n.Iter, indent)
		fmt.Fprintf(sb, "%s%q -> %q [style=dashed, label=\"each\"];\n", indent, id, dotID(prefix, n.Iter.Name))
	case KindParallel:
		fmt.Fprintf(sb, "%s%q [label=%q, shape=box3d];\n", indent, id, fmt.Sprintf("%s\\nparallel x %d", n.Name, len(n.Branches)))
		for _, b := range n.Branches {
			writeDotNode(sb, prefix, b, indent)
			fmt.Fprintf(sb, "%s%q -> %q [style=dashed];\n", indent, id, dotID(prefix, b.Name))
		}
	case KindChoice:
		fmt.Fprintf(sb, "%s%q [label=%q, shape=diamond];\n", indent, id, n.Name)
	case KindWait:
		fmt.Fprintf(sb, "%s%q [label=%q, shape=circle];\n", indent, id, fmt.Sprintf("%s\\nwait %gs", n.Name, n.WaitSeconds))
	case KindSub:
		fmt.Fprintf(sb, "%s%q [label=%q, shape=folder];\n", indent, id, n.Name+"\\nsub")
		sub := prefix + "/" + n.Name
		writeDotGraph(sb, sub, n.SubGraph, indent)
		fmt.Fprintf(sb, "%s%q -> %q [style=dotted];\n", indent, id, dotID(sub, "@start"))
	}
}

func caseLabel(c ChoiceCase) string {
	switch {
	case c.NumLT != nil:
		return fmt.Sprintf("%s < %g", c.Var, *c.NumLT)
	case c.NumGTE != nil:
		return fmt.Sprintf("%s >= %g", c.Var, *c.NumGTE)
	case c.StrEq != nil:
		return fmt.Sprintf("%s == %q", c.Var, *c.StrEq)
	}
	return c.Var
}
