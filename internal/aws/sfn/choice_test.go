package sfn

import "testing"

func doc2() map[string]any {
	return map[string]any{"n": float64(7), "s": "go", "ok": true}
}

func fp(v float64) *float64 { return &v }
func sp(v string) *string   { return &v }
func bp(v bool) *bool       { return &v }

func TestChoiceComparisons(t *testing.T) {
	cases := []struct {
		rule ChoiceRule
		want bool
	}{
		{ChoiceRule{Variable: "$.n", NumericEquals: fp(7)}, true},
		{ChoiceRule{Variable: "$.n", NumericEquals: fp(8)}, false},
		{ChoiceRule{Variable: "$.n", NumericLessThan: fp(8)}, true},
		{ChoiceRule{Variable: "$.n", NumericGreaterThan: fp(7)}, false},
		{ChoiceRule{Variable: "$.n", NumericGreaterThanEquals: fp(7)}, true},
		{ChoiceRule{Variable: "$.n", NumericLessThanEquals: fp(6)}, false},
		{ChoiceRule{Variable: "$.s", StringEquals: sp("go")}, true},
		{ChoiceRule{Variable: "$.s", StringEquals: sp("no")}, false},
		{ChoiceRule{Variable: "$.ok", BooleanEquals: bp(true)}, true},
		{ChoiceRule{Variable: "$.missing", IsPresent: bp(false)}, true},
		{ChoiceRule{Variable: "$.n", IsPresent: bp(true)}, true},
	}
	for i, c := range cases {
		got, err := evalRule(&c.rule, doc2())
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != c.want {
			t.Errorf("case %d = %v, want %v", i, got, c.want)
		}
	}
}

func TestChoiceBooleanComposition(t *testing.T) {
	and := ChoiceRule{And: []ChoiceRule{
		{Variable: "$.n", NumericGreaterThan: fp(5)},
		{Variable: "$.s", StringEquals: sp("go")},
	}}
	if got, _ := evalRule(&and, doc2()); !got {
		t.Fatal("And should match")
	}
	or := ChoiceRule{Or: []ChoiceRule{
		{Variable: "$.n", NumericGreaterThan: fp(100)},
		{Variable: "$.ok", BooleanEquals: bp(true)},
	}}
	if got, _ := evalRule(&or, doc2()); !got {
		t.Fatal("Or should match")
	}
	not := ChoiceRule{Not: &ChoiceRule{Variable: "$.n", NumericEquals: fp(7)}}
	if got, _ := evalRule(&not, doc2()); got {
		t.Fatal("Not should not match")
	}
	nested := ChoiceRule{And: []ChoiceRule{
		{Not: &ChoiceRule{Variable: "$.s", StringEquals: sp("no")}},
		{Or: []ChoiceRule{
			{Variable: "$.n", NumericLessThan: fp(0)},
			{Variable: "$.n", NumericGreaterThan: fp(5)},
		}},
	}}
	if got, _ := evalRule(&nested, doc2()); !got {
		t.Fatal("nested composition should match")
	}
}

func TestChoiceTypeMismatchesAreFalse(t *testing.T) {
	r := ChoiceRule{Variable: "$.s", NumericEquals: fp(1)}
	if got, _ := evalRule(&r, doc2()); got {
		t.Fatal("string compared as number matched")
	}
	r2 := ChoiceRule{Variable: "$.n", StringEquals: sp("7")}
	if got, _ := evalRule(&r2, doc2()); got {
		t.Fatal("number compared as string matched")
	}
}

func TestChoiceMissingVariableErrors(t *testing.T) {
	r := ChoiceRule{Variable: "$.ghost", NumericEquals: fp(1)}
	if _, err := evalRule(&r, doc2()); err == nil {
		t.Fatal("missing variable did not error")
	}
}

func TestChoiceNoComparisonErrors(t *testing.T) {
	r := ChoiceRule{Variable: "$.n"}
	if _, err := evalRule(&r, doc2()); err == nil {
		t.Fatal("comparison-free rule did not error")
	}
}
