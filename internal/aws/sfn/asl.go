// Package sfn simulates AWS Step Functions: state machines written in
// a subset of the Amazon States Language (Task, Map, Parallel, Choice,
// Pass, Wait, Succeed, Fail with InputPath/ResultPath/OutputPath),
// executed against the simulated Lambda service with per-transition
// billing — the stateful cost component of AWS in the paper.
package sfn

import (
	"encoding/json"
	"fmt"
)

// StateType enumerates the supported ASL state types.
type StateType string

// Supported state types.
const (
	TypeTask     StateType = "Task"
	TypeMap      StateType = "Map"
	TypeParallel StateType = "Parallel"
	TypeChoice   StateType = "Choice"
	TypePass     StateType = "Pass"
	TypeWait     StateType = "Wait"
	TypeSucceed  StateType = "Succeed"
	TypeFail     StateType = "Fail"
)

// StateMachine is an ASL state machine (or a Map iterator / Parallel
// branch, which share the structure).
type StateMachine struct {
	Comment string            `json:"Comment,omitempty"`
	StartAt string            `json:"StartAt"`
	States  map[string]*State `json:"States"`
}

// State is one ASL state. Fields apply according to Type, mirroring the
// ASL JSON schema so definitions round-trip through encoding/json.
type State struct {
	Type    StateType `json:"Type"`
	Comment string    `json:"Comment,omitempty"`

	// Flow control.
	Next string `json:"Next,omitempty"`
	End  bool   `json:"End,omitempty"`

	// I/O processing.
	InputPath  string `json:"InputPath,omitempty"`
	ResultPath string `json:"ResultPath,omitempty"`
	OutputPath string `json:"OutputPath,omitempty"`

	// Task.
	Resource string `json:"Resource,omitempty"`

	// Map.
	ItemsPath      string        `json:"ItemsPath,omitempty"`
	MaxConcurrency int           `json:"MaxConcurrency,omitempty"`
	Iterator       *StateMachine `json:"Iterator,omitempty"`

	// Parallel.
	Branches []*StateMachine `json:"Branches,omitempty"`

	// Choice.
	Choices []ChoiceRule `json:"Choices,omitempty"`
	Default string       `json:"Default,omitempty"`

	// Wait.
	Seconds     float64 `json:"Seconds,omitempty"`
	SecondsPath string  `json:"SecondsPath,omitempty"`

	// Pass.
	Result any `json:"Result,omitempty"`

	// Fail.
	Error string `json:"Error,omitempty"`
	Cause string `json:"Cause,omitempty"`

	// Error handling (Task/Map/Parallel).
	Retry []RetryPolicy `json:"Retry,omitempty"`
	Catch []Catcher     `json:"Catch,omitempty"`
}

// RetryPolicy is an ASL retrier: exponential backoff on matching errors.
type RetryPolicy struct {
	// ErrorEquals matches error names; "States.ALL" matches anything.
	ErrorEquals []string `json:"ErrorEquals"`
	// IntervalSeconds is the first retry delay (default 1).
	IntervalSeconds float64 `json:"IntervalSeconds,omitempty"`
	// MaxAttempts bounds retries (default 3; 0 in the JSON means the
	// field is absent and the default applies).
	MaxAttempts int `json:"MaxAttempts,omitempty"`
	// BackoffRate multiplies the delay each attempt (default 2).
	BackoffRate float64 `json:"BackoffRate,omitempty"`
}

// Catcher is an ASL catcher: route matching errors to a recovery state.
type Catcher struct {
	ErrorEquals []string `json:"ErrorEquals"`
	// ResultPath places the error info into the input for the catch
	// target (default "$").
	ResultPath string `json:"ResultPath,omitempty"`
	Next       string `json:"Next"`
}

// matchesError reports whether the error-name list matches name.
func matchesError(patterns []string, name string) bool {
	for _, p := range patterns {
		if p == "States.ALL" || p == name {
			return true
		}
	}
	return false
}

// ChoiceRule is one ASL choice, supporting the comparison operators the
// workloads need plus boolean composition.
type ChoiceRule struct {
	Variable string `json:"Variable,omitempty"`

	StringEquals             *string  `json:"StringEquals,omitempty"`
	NumericEquals            *float64 `json:"NumericEquals,omitempty"`
	NumericLessThan          *float64 `json:"NumericLessThan,omitempty"`
	NumericGreaterThan       *float64 `json:"NumericGreaterThan,omitempty"`
	NumericGreaterThanEquals *float64 `json:"NumericGreaterThanEquals,omitempty"`
	NumericLessThanEquals    *float64 `json:"NumericLessThanEquals,omitempty"`
	BooleanEquals            *bool    `json:"BooleanEquals,omitempty"`
	IsPresent                *bool    `json:"IsPresent,omitempty"`

	And []ChoiceRule `json:"And,omitempty"`
	Or  []ChoiceRule `json:"Or,omitempty"`
	Not *ChoiceRule  `json:"Not,omitempty"`

	Next string `json:"Next,omitempty"`
}

// Validate checks structural well-formedness: StartAt exists, every
// Next/Default/Choice target exists, terminal states terminate, and
// nested machines validate recursively.
func (sm *StateMachine) Validate() error {
	if sm.StartAt == "" {
		return fmt.Errorf("sfn: StartAt required")
	}
	if _, ok := sm.States[sm.StartAt]; !ok {
		return fmt.Errorf("sfn: StartAt %q not in States", sm.StartAt)
	}
	for name, st := range sm.States {
		if err := st.validate(name, sm); err != nil {
			return err
		}
	}
	return nil
}

func (sm *StateMachine) hasState(name string) bool {
	_, ok := sm.States[name]
	return ok
}

func (st *State) validate(name string, sm *StateMachine) error {
	terminal := st.Type == TypeSucceed || st.Type == TypeFail || st.Type == TypeChoice
	if !terminal {
		if st.Next == "" && !st.End {
			return fmt.Errorf("sfn: state %q must have Next or End", name)
		}
		if st.Next != "" && st.End {
			return fmt.Errorf("sfn: state %q has both Next and End", name)
		}
	}
	if st.Next != "" && !sm.hasState(st.Next) {
		return fmt.Errorf("sfn: state %q Next %q not found", name, st.Next)
	}
	for _, c := range st.Catch {
		if c.Next == "" || !sm.hasState(c.Next) {
			return fmt.Errorf("sfn: state %q Catch Next %q not found", name, c.Next)
		}
		if len(c.ErrorEquals) == 0 {
			return fmt.Errorf("sfn: state %q Catch requires ErrorEquals", name)
		}
	}
	for _, r := range st.Retry {
		if len(r.ErrorEquals) == 0 {
			return fmt.Errorf("sfn: state %q Retry requires ErrorEquals", name)
		}
	}
	switch st.Type {
	case TypeTask:
		if st.Resource == "" {
			return fmt.Errorf("sfn: Task %q requires Resource", name)
		}
	case TypeMap:
		if st.Iterator == nil {
			return fmt.Errorf("sfn: Map %q requires Iterator", name)
		}
		if err := st.Iterator.Validate(); err != nil {
			return fmt.Errorf("sfn: Map %q iterator: %w", name, err)
		}
	case TypeParallel:
		if len(st.Branches) == 0 {
			return fmt.Errorf("sfn: Parallel %q requires Branches", name)
		}
		for i, b := range st.Branches {
			if err := b.Validate(); err != nil {
				return fmt.Errorf("sfn: Parallel %q branch %d: %w", name, i, err)
			}
		}
	case TypeChoice:
		if len(st.Choices) == 0 {
			return fmt.Errorf("sfn: Choice %q requires Choices", name)
		}
		for _, c := range st.Choices {
			if c.Next == "" {
				return fmt.Errorf("sfn: Choice %q has rule without Next", name)
			}
			if !sm.hasState(c.Next) {
				return fmt.Errorf("sfn: Choice %q rule Next %q not found", name, c.Next)
			}
		}
		if st.Default != "" && !sm.hasState(st.Default) {
			return fmt.Errorf("sfn: Choice %q Default %q not found", name, st.Default)
		}
	case TypeWait:
		if st.Seconds < 0 {
			return fmt.Errorf("sfn: Wait %q negative Seconds", name)
		}
	case TypePass, TypeSucceed, TypeFail:
	default:
		return fmt.Errorf("sfn: state %q has unsupported Type %q", name, st.Type)
	}
	return nil
}

// ParseDefinition decodes an ASL JSON document and validates it.
func ParseDefinition(data []byte) (*StateMachine, error) {
	var sm StateMachine
	if err := json.Unmarshal(data, &sm); err != nil {
		return nil, fmt.Errorf("sfn: parse definition: %w", err)
	}
	if err := sm.Validate(); err != nil {
		return nil, err
	}
	return &sm, nil
}

// Definition encodes the machine back to ASL JSON.
func (sm *StateMachine) Definition() ([]byte, error) {
	return json.MarshalIndent(sm, "", "  ")
}

// evalRule evaluates a choice rule against the state input document.
func evalRule(rule *ChoiceRule, doc any) (bool, error) {
	switch {
	case len(rule.And) > 0:
		for i := range rule.And {
			ok, err := evalRule(&rule.And[i], doc)
			if err != nil || !ok {
				return false, err
			}
		}
		return true, nil
	case len(rule.Or) > 0:
		for i := range rule.Or {
			ok, err := evalRule(&rule.Or[i], doc)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	case rule.Not != nil:
		ok, err := evalRule(rule.Not, doc)
		return !ok, err
	}

	if rule.IsPresent != nil {
		_, err := GetPath(doc, rule.Variable)
		return (err == nil) == *rule.IsPresent, nil
	}
	v, err := GetPath(doc, rule.Variable)
	if err != nil {
		return false, err
	}
	switch {
	case rule.StringEquals != nil:
		s, ok := v.(string)
		return ok && s == *rule.StringEquals, nil
	case rule.BooleanEquals != nil:
		b, ok := v.(bool)
		return ok && b == *rule.BooleanEquals, nil
	case rule.NumericEquals != nil:
		f, ok := asFloat(v)
		return ok && f == *rule.NumericEquals, nil
	case rule.NumericLessThan != nil:
		f, ok := asFloat(v)
		return ok && f < *rule.NumericLessThan, nil
	case rule.NumericGreaterThan != nil:
		f, ok := asFloat(v)
		return ok && f > *rule.NumericGreaterThan, nil
	case rule.NumericGreaterThanEquals != nil:
		f, ok := asFloat(v)
		return ok && f >= *rule.NumericGreaterThanEquals, nil
	case rule.NumericLessThanEquals != nil:
		f, ok := asFloat(v)
		return ok && f <= *rule.NumericLessThanEquals, nil
	}
	return false, fmt.Errorf("sfn: choice rule on %q has no comparison", rule.Variable)
}

func asFloat(v any) (float64, bool) {
	switch n := v.(type) {
	case float64:
		return n, true
	case int:
		return float64(n), true
	case int64:
		return float64(n), true
	case json.Number:
		f, err := n.Float64()
		return f, err == nil
	}
	return 0, false
}
