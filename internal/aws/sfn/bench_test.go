package sfn

import (
	"testing"
	"time"

	"statebench/internal/aws/lambda"
	"statebench/internal/sim"
)

// BenchmarkStateMachineRun measures a chain + Map execution through the
// simulated Step Functions engine.
func BenchmarkStateMachineRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k, lsvc, s := fixture()
		lsvc.MustRegister(lambda.Config{Name: "w", MemoryMB: 128, Handler: func(ctx *lambda.Context, p []byte) ([]byte, error) {
			ctx.Busy(10 * time.Millisecond)
			return p, nil
		}})
		sm := &StateMachine{StartAt: "A", States: map[string]*State{
			"A": {Type: TypeTask, Resource: "w", Next: "M"},
			"M": {Type: TypeMap, ItemsPath: "$.items", End: true,
				Iterator: &StateMachine{StartAt: "I", States: map[string]*State{
					"I": {Type: TypeTask, Resource: "w", End: true},
				}}},
		}}
		if err := s.CreateStateMachine("m", sm); err != nil {
			b.Fatal(err)
		}
		k.Spawn("client", func(p *sim.Proc) {
			items := []any{float64(1), float64(2), float64(3), float64(4)}
			if _, err := s.StartExecution(p, "m", map[string]any{"items": items}); err != nil {
				b.Error(err)
			}
		})
		k.Run()
	}
}
