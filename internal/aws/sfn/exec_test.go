package sfn

import (
	"encoding/json"
	"errors"
	"testing"
	"time"

	"statebench/internal/aws/lambda"
	"statebench/internal/platform"
	"statebench/internal/sim"
)

// fixture builds a kernel + lambda + sfn with deterministic latencies.
func fixture() (*sim.Kernel, *lambda.Service, *Service) {
	k := sim.NewKernel(1)
	params := platform.DefaultAWS()
	params.InvokeRTT = sim.Fixed{D: time.Millisecond}
	params.ColdStartBase = sim.Fixed{D: 100 * time.Millisecond}
	params.CodeFetchBW = 0
	params.WarmStart = sim.Fixed{D: time.Millisecond}
	params.StepTransition = sim.Fixed{D: 10 * time.Millisecond}
	params.StepTaskDispatch = sim.Fixed{D: 20 * time.Millisecond}
	lsvc := lambda.New(k, params)
	return k, lsvc, New(k, params, lsvc)
}

// regDouble registers a lambda that doubles {"n": x}.
func regDouble(lsvc *lambda.Service, name string, busy time.Duration) {
	lsvc.MustRegister(lambda.Config{Name: name, MemoryMB: 128, Handler: func(ctx *lambda.Context, payload []byte) ([]byte, error) {
		var in map[string]any
		if err := json.Unmarshal(payload, &in); err != nil {
			return nil, err
		}
		ctx.Busy(busy)
		n, _ := in["n"].(float64)
		return json.Marshal(map[string]any{"n": n * 2})
	}})
}

func run(k *sim.Kernel, s *Service, machine string, input any) (*Execution, error) {
	var exec *Execution
	var err error
	k.Spawn("client", func(p *sim.Proc) { exec, err = s.StartExecution(p, machine, input) })
	k.Run()
	return exec, err
}

func TestTaskChain(t *testing.T) {
	k, lsvc, s := fixture()
	regDouble(lsvc, "double", 50*time.Millisecond)
	sm := &StateMachine{
		StartAt: "A",
		States: map[string]*State{
			"A": {Type: TypeTask, Resource: "double", Next: "B"},
			"B": {Type: TypeTask, Resource: "double", End: true},
		},
	}
	if err := s.CreateStateMachine("chain", sm); err != nil {
		t.Fatal(err)
	}
	exec, err := run(k, s, "chain", map[string]any{"n": float64(3)})
	if err != nil || exec.Err != nil {
		t.Fatalf("execution failed: %v %v", err, exec.Err)
	}
	out := exec.Output.(map[string]any)
	if out["n"] != float64(12) {
		t.Fatalf("output = %v, want n=12", out)
	}
	if exec.Transitions != 2 {
		t.Fatalf("transitions = %d, want 2", exec.Transitions)
	}
	if exec.Duration() <= 0 {
		t.Fatal("no duration recorded")
	}
}

func TestFirstTaskDelayIsColdStartMetric(t *testing.T) {
	k, lsvc, s := fixture()
	regDouble(lsvc, "double", 50*time.Millisecond)
	sm := &StateMachine{StartAt: "A", States: map[string]*State{
		"A": {Type: TypeTask, Resource: "double", End: true},
	}}
	if err := s.CreateStateMachine("m", sm); err != nil {
		t.Fatal(err)
	}
	exec, _ := run(k, s, "m", map[string]any{"n": float64(1)})
	// transition 10ms + dispatch 20ms + RTT 1ms + cold 100ms = 131ms.
	if exec.FirstTaskDelay != 131*time.Millisecond {
		t.Fatalf("FirstTaskDelay = %v, want 131ms", exec.FirstTaskDelay)
	}
}

func TestMapFanOutAndOrder(t *testing.T) {
	k, lsvc, s := fixture()
	lsvc.MustRegister(lambda.Config{Name: "inc", MemoryMB: 128, Handler: func(ctx *lambda.Context, payload []byte) ([]byte, error) {
		var n float64
		if err := json.Unmarshal(payload, &n); err != nil {
			return nil, err
		}
		// Larger items take longer, so completion order is reversed —
		// results must still come back in item order.
		ctx.Busy(time.Duration(100-int(n)) * time.Millisecond)
		return json.Marshal(n + 1)
	}})
	sm := &StateMachine{StartAt: "M", States: map[string]*State{
		"M": {
			Type: TypeMap, ItemsPath: "$.items", End: true,
			Iterator: &StateMachine{StartAt: "I", States: map[string]*State{
				"I": {Type: TypeTask, Resource: "inc", End: true},
			}},
		},
	}}
	if err := s.CreateStateMachine("map", sm); err != nil {
		t.Fatal(err)
	}
	exec, _ := run(k, s, "map", map[string]any{"items": []any{float64(1), float64(2), float64(3)}})
	if exec.Err != nil {
		t.Fatal(exec.Err)
	}
	out := exec.Output.([]any)
	want := []float64{2, 3, 4}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
	// 1 Map state + 3 iterator Task states.
	if exec.Transitions != 4 {
		t.Fatalf("transitions = %d, want 4", exec.Transitions)
	}
}

func TestMapMaxConcurrencyLimitsParallelism(t *testing.T) {
	k, lsvc, s := fixture()
	lsvc.MustRegister(lambda.Config{Name: "sleep1s", MemoryMB: 128, Handler: func(ctx *lambda.Context, payload []byte) ([]byte, error) {
		ctx.Busy(time.Second)
		return []byte("1"), nil
	}})
	mkMachine := func(conc int) *StateMachine {
		return &StateMachine{StartAt: "M", States: map[string]*State{
			"M": {Type: TypeMap, ItemsPath: "$.items", MaxConcurrency: conc, End: true,
				Iterator: &StateMachine{StartAt: "I", States: map[string]*State{
					"I": {Type: TypeTask, Resource: "sleep1s", End: true},
				}}},
		}}
	}
	if err := s.CreateStateMachine("unbounded", mkMachine(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateStateMachine("serial", mkMachine(1)); err != nil {
		t.Fatal(err)
	}
	items := make([]any, 4)
	for i := range items {
		items[i] = float64(i)
	}
	e1, _ := run(k, s, "unbounded", map[string]any{"items": items})
	k2, lsvc2, s2 := fixture()
	lsvc2.MustRegister(lambda.Config{Name: "sleep1s", MemoryMB: 128, Handler: func(ctx *lambda.Context, payload []byte) ([]byte, error) {
		ctx.Busy(time.Second)
		return []byte("1"), nil
	}})
	if err := s2.CreateStateMachine("serial", mkMachine(1)); err != nil {
		t.Fatal(err)
	}
	e2, _ := run(k2, s2, "serial", map[string]any{"items": items})
	if e1.Duration() >= e2.Duration() {
		t.Fatalf("unbounded (%v) not faster than serial (%v)", e1.Duration(), e2.Duration())
	}
	if e2.Duration() < 4*time.Second {
		t.Fatalf("serial map finished in %v, should be >= 4s", e2.Duration())
	}
}

func TestParallelBranches(t *testing.T) {
	k, lsvc, s := fixture()
	regDouble(lsvc, "double", 10*time.Millisecond)
	sm := &StateMachine{StartAt: "P", States: map[string]*State{
		"P": {Type: TypeParallel, End: true, Branches: []*StateMachine{
			{StartAt: "B1", States: map[string]*State{"B1": {Type: TypeTask, Resource: "double", End: true}}},
			{StartAt: "B2", States: map[string]*State{"B2": {Type: TypePass, Result: "fixed", End: true}}},
		}},
	}}
	if err := s.CreateStateMachine("par", sm); err != nil {
		t.Fatal(err)
	}
	exec, _ := run(k, s, "par", map[string]any{"n": float64(5)})
	out := exec.Output.([]any)
	if out[0].(map[string]any)["n"] != float64(10) || out[1] != "fixed" {
		t.Fatalf("parallel out = %v", out)
	}
}

func TestChoiceAndWait(t *testing.T) {
	k, _, s := fixture()
	big := 10.0
	sm := &StateMachine{StartAt: "C", States: map[string]*State{
		"C": {Type: TypeChoice,
			Choices: []ChoiceRule{{Variable: "$.n", NumericGreaterThan: &big, Next: "Big"}},
			Default: "Small"},
		"Big":       {Type: TypePass, Result: "big", End: true},
		"Small":     {Type: TypeWait, Seconds: 2, Next: "SmallDone"},
		"SmallDone": {Type: TypePass, Result: "small", End: true},
	}}
	if err := s.CreateStateMachine("choice", sm); err != nil {
		t.Fatal(err)
	}
	e1, _ := run(k, s, "choice", map[string]any{"n": float64(99)})
	if e1.Output != "big" {
		t.Fatalf("out = %v", e1.Output)
	}
	k2, _, s2 := fixture()
	if err := s2.CreateStateMachine("choice", sm); err != nil {
		t.Fatal(err)
	}
	e2, _ := run(k2, s2, "choice", map[string]any{"n": float64(1)})
	if e2.Output != "small" {
		t.Fatalf("out = %v", e2.Output)
	}
	if e2.Duration() < 2*time.Second {
		t.Fatalf("Wait state did not wait: %v", e2.Duration())
	}
}

func TestFailState(t *testing.T) {
	k, _, s := fixture()
	sm := &StateMachine{StartAt: "F", States: map[string]*State{
		"F": {Type: TypeFail, Error: "Custom.Error", Cause: "because"},
	}}
	if err := s.CreateStateMachine("fail", sm); err != nil {
		t.Fatal(err)
	}
	exec, _ := run(k, s, "fail", nil)
	var ee *ExecutionError
	if !errors.As(exec.Err, &ee) || ee.ErrorName != "Custom.Error" {
		t.Fatalf("err = %v", exec.Err)
	}
}

func TestResultPathMergesIntoInput(t *testing.T) {
	k, lsvc, s := fixture()
	regDouble(lsvc, "double", time.Millisecond)
	sm := &StateMachine{StartAt: "A", States: map[string]*State{
		"A": {Type: TypeTask, Resource: "double", InputPath: "$.req", ResultPath: "$.resp", End: true},
	}}
	if err := s.CreateStateMachine("rp", sm); err != nil {
		t.Fatal(err)
	}
	exec, _ := run(k, s, "rp", map[string]any{"req": map[string]any{"n": float64(4)}, "keep": "me"})
	out := exec.Output.(map[string]any)
	if out["keep"] != "me" {
		t.Fatalf("ResultPath dropped original input: %v", out)
	}
	if out["resp"].(map[string]any)["n"] != float64(8) {
		t.Fatalf("resp = %v", out["resp"])
	}
}

func TestPayloadLimitFailsExecution(t *testing.T) {
	k, lsvc, s := fixture()
	regDouble(lsvc, "double", time.Millisecond)
	sm := &StateMachine{StartAt: "A", States: map[string]*State{
		"A": {Type: TypeTask, Resource: "double", End: true},
	}}
	if err := s.CreateStateMachine("m", sm); err != nil {
		t.Fatal(err)
	}
	big := make([]any, 0, 50000)
	for i := 0; i < 50000; i++ {
		big = append(big, "xxxxxxxxxx")
	}
	exec, _ := run(k, s, "m", map[string]any{"n": float64(1), "bulk": big})
	var ee *ExecutionError
	if !errors.As(exec.Err, &ee) || ee.ErrorName != "States.DataLimitExceeded" {
		t.Fatalf("err = %v, want DataLimitExceeded", exec.Err)
	}
}

func TestDefinitionRoundTrip(t *testing.T) {
	gt := 5.0
	sm := &StateMachine{
		Comment: "demo",
		StartAt: "C",
		States: map[string]*State{
			"C": {Type: TypeChoice, Choices: []ChoiceRule{{Variable: "$.n", NumericGreaterThan: &gt, Next: "T"}}, Default: "S"},
			"T": {Type: TypeTask, Resource: "fn", End: true},
			"S": {Type: TypeSucceed},
		},
	}
	data, err := sm.Definition()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseDefinition(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.StartAt != "C" || len(back.States) != 3 {
		t.Fatalf("round trip lost structure: %+v", back)
	}
	if *back.States["C"].Choices[0].NumericGreaterThan != 5 {
		t.Fatal("choice rule lost")
	}
}

func TestValidateCatchesBadMachines(t *testing.T) {
	bad := []*StateMachine{
		{States: map[string]*State{"A": {Type: TypePass, End: true}}},                          // no StartAt
		{StartAt: "X", States: map[string]*State{"A": {Type: TypePass, End: true}}},            // StartAt missing
		{StartAt: "A", States: map[string]*State{"A": {Type: TypePass}}},                       // no Next/End
		{StartAt: "A", States: map[string]*State{"A": {Type: TypeTask, End: true}}},            // Task without Resource
		{StartAt: "A", States: map[string]*State{"A": {Type: TypePass, Next: "ghost"}}},        // dangling Next
		{StartAt: "A", States: map[string]*State{"A": {Type: TypeMap, End: true}}},             // Map without Iterator
		{StartAt: "A", States: map[string]*State{"A": {Type: TypeChoice}}},                     // Choice without rules
		{StartAt: "A", States: map[string]*State{"A": {Type: "Weird", End: true}}},             // unknown type
		{StartAt: "A", States: map[string]*State{"A": {Type: TypePass, Next: "A", End: true}}}, // Next+End
	}
	for i, sm := range bad {
		if err := sm.Validate(); err == nil {
			t.Errorf("case %d validated, want error", i)
		}
	}
}

func TestTransitionsBilledAcrossNestedMachines(t *testing.T) {
	k, lsvc, s := fixture()
	regDouble(lsvc, "double", time.Millisecond)
	sm := &StateMachine{StartAt: "M", States: map[string]*State{
		"M": {Type: TypeMap, ItemsPath: "$.items", Next: "After",
			Iterator: &StateMachine{StartAt: "I", States: map[string]*State{
				"I": {Type: TypeTask, Resource: "double", End: true},
			}}},
		"After": {Type: TypeSucceed},
	}}
	if err := s.CreateStateMachine("m", sm); err != nil {
		t.Fatal(err)
	}
	items := []any{map[string]any{"n": float64(1)}, map[string]any{"n": float64(2)}}
	exec, _ := run(k, s, "m", map[string]any{"items": items})
	// Map + 2 iterations + Succeed = 4 transitions.
	if exec.Transitions != 4 {
		t.Fatalf("transitions = %d, want 4", exec.Transitions)
	}
	if s.TotalTransitions != 4 {
		t.Fatalf("service total = %d", s.TotalTransitions)
	}
}
