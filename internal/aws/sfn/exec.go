package sfn

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"statebench/internal/aws/lambda"
	"statebench/internal/chaos"
	"statebench/internal/obs/span"
	"statebench/internal/platform"
	"statebench/internal/sim"
)

// Service is the simulated Step Functions control plane. Task states
// invoke functions on the attached Lambda service.
type Service struct {
	k        *sim.Kernel
	rng      *sim.RNG
	params   platform.AWSParams
	lambda   *lambda.Service
	machines map[string]*StateMachine
	// TotalTransitions aggregates billable transitions across all
	// executions since the last reset.
	TotalTransitions int64
	// Tracer, when non-nil, emits an orchestration span per execution
	// and a transition span per billable state transition.
	Tracer *span.Tracer
	// Chaos, when non-nil, can fail Task states with retriable
	// "States.TaskFailed" errors, driving the Retry/Catch machinery.
	Chaos *chaos.Injector
}

// New creates a Step Functions service bound to a Lambda service.
func New(k *sim.Kernel, params platform.AWSParams, lsvc *lambda.Service) *Service {
	return &Service{k: k, rng: k.Stream("aws/sfn"), params: params, lambda: lsvc, machines: make(map[string]*StateMachine)}
}

// CreateStateMachine validates and registers a machine under name.
func (s *Service) CreateStateMachine(name string, sm *StateMachine) error {
	if name == "" {
		return fmt.Errorf("sfn: machine name required")
	}
	if _, dup := s.machines[name]; dup {
		return fmt.Errorf("sfn: machine %q already exists", name)
	}
	if err := sm.Validate(); err != nil {
		return err
	}
	s.machines[name] = sm
	return nil
}

// Machine returns a registered machine.
func (s *Service) Machine(name string) (*StateMachine, bool) {
	m, ok := s.machines[name]
	return m, ok
}

// ResetMeters zeroes the aggregate transition counter.
func (s *Service) ResetMeters() { s.TotalTransitions = 0 }

// HistoryEvent is one recorded execution event.
type HistoryEvent struct {
	At    sim.Time
	Type  string // StateEntered, TaskSucceeded, TaskFailed, ExecutionSucceeded, ExecutionFailed
	State string
}

// ExecutionError reports a failed execution (Fail state or task error).
type ExecutionError struct {
	ErrorName string
	Cause     string
}

func (e *ExecutionError) Error() string {
	return fmt.Sprintf("sfn: execution failed: %s (%s)", e.ErrorName, e.Cause)
}

// Execution records one state-machine run.
type Execution struct {
	Machine   string
	StartedAt sim.Time
	EndedAt   sim.Time
	// Transitions is the billable state-transition count.
	Transitions int64
	// FirstTaskDelay is the time from execution start until the first
	// Task handler began executing — the paper's AWS-Step cold-start
	// metric. Negative means no task ran.
	FirstTaskDelay time.Duration
	History        []HistoryEvent
	Output         any
	Err            error

	svc          *Service
	firstTaskAt  sim.Time
	sawFirstTask bool
}

// Duration returns the end-to-end execution latency ('Start' to 'End').
func (e *Execution) Duration() time.Duration { return e.EndedAt - e.StartedAt }

// StartExecution runs machine name with the given JSON-like input,
// blocking process p until the execution reaches a terminal state.
func (s *Service) StartExecution(p *sim.Proc, name string, input any) (*Execution, error) {
	sm, ok := s.machines[name]
	if !ok {
		return nil, fmt.Errorf("sfn: no such state machine %q", name)
	}
	exec := &Execution{Machine: name, StartedAt: p.Now(), FirstTaskDelay: -1, svc: s}
	caller := p.TraceCtx
	execSpan := s.Tracer.Start(p.Now(), span.KindOrchestration, "sfn/"+name, caller)
	p.TraceCtx = execSpan.Context()
	out, err := s.runMachine(p, exec, sm, input)
	p.TraceCtx = caller
	exec.EndedAt = p.Now()
	exec.Output = out
	exec.Err = err
	if err != nil {
		exec.record(p, "ExecutionFailed", "")
	} else {
		exec.record(p, "ExecutionSucceeded", "")
	}
	if exec.sawFirstTask {
		exec.FirstTaskDelay = exec.firstTaskAt - exec.StartedAt
	}
	if execSpan.Live() {
		execSpan.End(p.Now(), span.A("transitions", fmt.Sprintf("%d", exec.Transitions)))
	}
	return exec, nil
}

func (e *Execution) record(p *sim.Proc, typ, state string) {
	e.History = append(e.History, HistoryEvent{At: p.Now(), Type: typ, State: state})
}

// transition meters one billable state transition and applies the
// state-machine scheduling overhead.
func (e *Execution) transition(p *sim.Proc, state string) {
	e.Transitions++
	e.svc.TotalTransitions++
	tStart := p.Now()
	p.Sleep(e.svc.params.StepTransition.Sample(e.svc.rng))
	e.svc.Tracer.Emit(span.KindTransition, "sfn/state/"+state, tStart, p.Now(), p.TraceCtx)
	e.record(p, "StateEntered", state)
}

// noteTaskStart tracks the earliest Task handler start for the
// cold-start metric. handlerStart is the absolute virtual time the
// handler began.
func (e *Execution) noteTaskStart(handlerStart sim.Time) {
	if !e.sawFirstTask || handlerStart < e.firstTaskAt {
		e.firstTaskAt = handlerStart
		e.sawFirstTask = true
	}
}

// runMachine executes sm (a top-level machine, Map iterator, or
// Parallel branch) on process p with the given input document.
func (s *Service) runMachine(p *sim.Proc, exec *Execution, sm *StateMachine, input any) (any, error) {
	stateName := sm.StartAt
	doc := input
	for {
		st, ok := sm.States[stateName]
		if !ok {
			return nil, fmt.Errorf("sfn: missing state %q", stateName)
		}
		exec.transition(p, stateName)

		effIn, err := applyPath(doc, st.InputPath)
		if err != nil {
			return nil, err
		}

		var result any
		haveResult := false
		switch st.Type {
		case TypeTask, TypeMap, TypeParallel:
			result, err = s.runWithRetry(p, exec, st, effIn)
			if err != nil {
				// Catchers route matching errors to a recovery state
				// with the error info merged at their ResultPath.
				next, newDoc, caught, cerr := applyCatch(st, doc, err)
				if cerr != nil {
					return nil, cerr
				}
				if caught {
					exec.record(p, "CatchMatched", stateName)
					doc = newDoc
					stateName = next
					continue
				}
				return nil, err
			}
			haveResult = true

		case TypePass:
			if st.Result != nil {
				result = st.Result
			} else {
				result = effIn
			}
			haveResult = true

		case TypeWait:
			secs := st.Seconds
			if st.SecondsPath != "" {
				v, err := GetPath(effIn, st.SecondsPath)
				if err != nil {
					return nil, err
				}
				f, ok := asFloat(v)
				if !ok {
					return nil, fmt.Errorf("sfn: Wait %q SecondsPath is not numeric", stateName)
				}
				secs = f
			}
			p.Sleep(time.Duration(secs * float64(time.Second)))
			result = effIn
			haveResult = true

		case TypeChoice:
			next := st.Default
			for i := range st.Choices {
				match, err := evalRule(&st.Choices[i], effIn)
				if err != nil {
					return nil, err
				}
				if match {
					next = st.Choices[i].Next
					break
				}
			}
			if next == "" {
				return nil, &ExecutionError{ErrorName: "States.NoChoiceMatched", Cause: stateName}
			}
			stateName = next
			continue

		case TypeSucceed:
			out, err := applyPath(effIn, st.OutputPath)
			if err != nil {
				return nil, err
			}
			return out, nil

		case TypeFail:
			return nil, &ExecutionError{ErrorName: st.Error, Cause: st.Cause}
		}

		// ResultPath merges the result into the raw input; OutputPath
		// then filters what flows to the next state.
		next := doc
		if haveResult {
			rp := st.ResultPath
			if rp == "" {
				rp = "$"
			}
			next, err = SetPath(doc, rp, result)
			if err != nil {
				return nil, err
			}
		}
		out, err := applyPath(next, st.OutputPath)
		if err != nil {
			return nil, err
		}
		doc = out

		if st.End {
			return doc, nil
		}
		stateName = st.Next
	}
}

// runWithRetry executes a Task/Map/Parallel state body under the
// state's Retry policies: ASL retriers with exponential backoff.
func (s *Service) runWithRetry(p *sim.Proc, exec *Execution, st *State, effIn any) (any, error) {
	attempts := make([]int, len(st.Retry))
	for {
		var result any
		var err error
		switch st.Type {
		case TypeTask:
			result, err = s.runTask(p, exec, st, effIn)
		case TypeMap:
			result, err = s.runMap(p, exec, st, effIn)
		case TypeParallel:
			result, err = s.runParallel(p, exec, st, effIn)
		}
		if err == nil {
			return result, nil
		}
		ri := matchRetrier(st.Retry, errorName(err))
		if ri < 0 {
			return nil, err
		}
		r := st.Retry[ri]
		maxAttempts := r.MaxAttempts
		if maxAttempts == 0 {
			maxAttempts = 3
		}
		if attempts[ri] >= maxAttempts {
			return nil, err
		}
		interval := r.IntervalSeconds
		if interval <= 0 {
			interval = 1
		}
		rate := r.BackoffRate
		if rate <= 0 {
			rate = 2
		}
		delay := interval * pow(rate, attempts[ri])
		attempts[ri]++
		exec.record(p, "RetryScheduled", st.Resource)
		s.Chaos.NoteRetry(time.Duration(delay * float64(time.Second)))
		p.Sleep(time.Duration(delay * float64(time.Second)))
	}
}

// pow is a small float power for backoff computation.
func pow(base float64, exp int) float64 {
	out := 1.0
	for i := 0; i < exp; i++ {
		out *= base
	}
	return out
}

// matchRetrier returns the index of the first retrier matching name.
func matchRetrier(retries []RetryPolicy, name string) int {
	for i, r := range retries {
		if matchesError(r.ErrorEquals, name) {
			return i
		}
	}
	return -1
}

// errorName extracts the ASL error name from an execution error.
func errorName(err error) string {
	var ee *ExecutionError
	if errors.As(err, &ee) && ee.ErrorName != "" {
		return ee.ErrorName
	}
	return "States.TaskFailed"
}

// applyCatch finds the first matching catcher and builds the recovery
// state's input (error info merged at the catcher's ResultPath).
func applyCatch(st *State, doc any, err error) (next string, newDoc any, caught bool, fatal error) {
	name := errorName(err)
	for _, c := range st.Catch {
		if !matchesError(c.ErrorEquals, name) {
			continue
		}
		info := map[string]any{"Error": name, "Cause": err.Error()}
		rp := c.ResultPath
		if rp == "" {
			rp = "$"
		}
		merged, serr := SetPath(doc, rp, info)
		if serr != nil {
			return "", nil, false, serr
		}
		return c.Next, merged, true, nil
	}
	return "", nil, false, nil
}

// runTask marshals the effective input, invokes the Lambda function
// named by Resource, and unmarshals its output. Oversized payloads fail
// the execution, matching the 256 KB service limit the paper works
// around by staging data in S3.
func (s *Service) runTask(p *sim.Proc, exec *Execution, st *State, effIn any) (any, error) {
	payload, err := json.Marshal(effIn)
	if err != nil {
		return nil, fmt.Errorf("sfn: marshal task input: %w", err)
	}
	if s.params.PayloadLimit > 0 && len(payload) > s.params.PayloadLimit {
		return nil, &ExecutionError{
			ErrorName: "States.DataLimitExceeded",
			Cause:     fmt.Sprintf("payload %d bytes exceeds %d", len(payload), s.params.PayloadLimit),
		}
	}
	dStart := p.Now()
	p.Sleep(s.params.StepTaskDispatch.Sample(s.rng))
	s.Tracer.Emit(span.KindTransition, "sfn/dispatch/"+st.Resource, dStart, p.Now(), p.TraceCtx)
	if s.Chaos != nil {
		if flt, ok := s.Chaos.Next(p.TraceCtx, "sfn", st.Resource); ok {
			// The task fails at the service boundary (worker lost,
			// throttle, transient 5xx) after Delay of wasted wall time.
			// Surfacing it as States.TaskFailed drives Retry/Catch.
			p.Sleep(flt.Delay)
			exec.record(p, "TaskFailed", st.Resource)
			ferr := &chaos.FaultError{Kind: flt.Kind, Component: "sfn", Name: st.Resource}
			return nil, &ExecutionError{ErrorName: "States.TaskFailed", Cause: ferr.Error()}
		}
	}
	inv, err := s.lambda.Invoke(p, st.Resource, payload)
	if err != nil {
		return nil, err
	}
	exec.noteTaskStart(p.Now() - inv.ExecTime)
	if inv.Err != nil {
		exec.record(p, "TaskFailed", st.Resource)
		return nil, &ExecutionError{ErrorName: "States.TaskFailed", Cause: inv.Err.Error()}
	}
	exec.record(p, "TaskSucceeded", st.Resource)
	if len(inv.Output) == 0 {
		return nil, nil
	}
	var out any
	if err := json.Unmarshal(inv.Output, &out); err != nil {
		return nil, fmt.Errorf("sfn: unmarshal task output: %w", err)
	}
	return out, nil
}

// runMap fans the items at ItemsPath out through the Iterator machine,
// bounded by MaxConcurrency (0 = unbounded), and collects outputs in
// item order.
func (s *Service) runMap(p *sim.Proc, exec *Execution, st *State, effIn any) (any, error) {
	itemsVal, err := applyPath(effIn, st.ItemsPath)
	if err != nil {
		return nil, err
	}
	items, ok := itemsVal.([]any)
	if !ok {
		return nil, fmt.Errorf("sfn: Map ItemsPath %q is not an array", st.ItemsPath)
	}
	return s.fanOut(p, exec, len(items), st.MaxConcurrency, func(i int) (*StateMachine, any) {
		return st.Iterator, items[i]
	})
}

// runParallel executes every branch concurrently with the same input.
func (s *Service) runParallel(p *sim.Proc, exec *Execution, st *State, effIn any) (any, error) {
	return s.fanOut(p, exec, len(st.Branches), 0, func(i int) (*StateMachine, any) {
		return st.Branches[i], effIn
	})
}

// fanOut runs n sub-machines concurrently and gathers their outputs.
func (s *Service) fanOut(p *sim.Proc, exec *Execution, n, maxConc int, pick func(i int) (*StateMachine, any)) (any, error) {
	if n == 0 {
		return []any{}, nil
	}
	k := p.Kernel()
	var sem *sim.Resource
	if maxConc > 0 {
		sem = sim.NewResource(k, maxConc)
	}
	futures := make([]*sim.Future[any], n)
	branchCtx := p.TraceCtx
	for i := 0; i < n; i++ {
		i := i
		machine, input := pick(i)
		f := sim.NewFuture[any](k)
		futures[i] = f
		k.Spawn(fmt.Sprintf("sfn-branch-%d", i), func(bp *sim.Proc) {
			bp.TraceCtx = branchCtx
			if sem != nil {
				sem.Acquire(bp)
				defer sem.Release()
			}
			out, err := s.runMachine(bp, exec, machine, input)
			f.Complete(out, err)
		})
	}
	outs, err := sim.AwaitAll(p, futures)
	if err != nil {
		return nil, err
	}
	res := make([]any, n)
	copy(res, outs)
	return res, nil
}
