package sfn

import (
	"fmt"
	"strconv"
	"strings"
)

// This file implements the minimal JSONPath subset the Amazon States
// Language uses for InputPath/ResultPath/OutputPath/ItemsPath/Variable:
// "$" (whole document) and dotted field access with optional numeric
// indexing, e.g. "$.detail.items[2].id".

// pathSegments splits "$.a.b[2]" into []seg{{field:a},{field:b},{index:2}}.
type seg struct {
	field string
	index int // -1 if field access
}

func parsePath(path string) ([]seg, error) {
	if path == "" || path == "$" {
		return nil, nil
	}
	if !strings.HasPrefix(path, "$.") && !strings.HasPrefix(path, "$[") {
		return nil, fmt.Errorf("sfn: invalid path %q (must start with $)", path)
	}
	var segs []seg
	rest := path[1:]
	for len(rest) > 0 {
		switch {
		case rest[0] == '.':
			rest = rest[1:]
			end := strings.IndexAny(rest, ".[")
			if end == -1 {
				end = len(rest)
			}
			if end == 0 {
				return nil, fmt.Errorf("sfn: invalid path %q (empty field)", path)
			}
			segs = append(segs, seg{field: rest[:end], index: -1})
			rest = rest[end:]
		case rest[0] == '[':
			close := strings.IndexByte(rest, ']')
			if close == -1 {
				return nil, fmt.Errorf("sfn: invalid path %q (unclosed index)", path)
			}
			idx, err := strconv.Atoi(rest[1:close])
			if err != nil {
				return nil, fmt.Errorf("sfn: invalid path %q: %v", path, err)
			}
			segs = append(segs, seg{index: idx})
			rest = rest[close+1:]
		default:
			return nil, fmt.Errorf("sfn: invalid path %q near %q", path, rest)
		}
	}
	return segs, nil
}

// GetPath extracts the value at path from a JSON-like document
// (map[string]any / []any / scalars). Path "$" returns doc itself.
func GetPath(doc any, path string) (any, error) {
	segs, err := parsePath(path)
	if err != nil {
		return nil, err
	}
	cur := doc
	for _, s := range segs {
		if s.index >= 0 {
			arr, ok := cur.([]any)
			if !ok {
				return nil, fmt.Errorf("sfn: path %q: indexing non-array", path)
			}
			if s.index >= len(arr) {
				return nil, fmt.Errorf("sfn: path %q: index %d out of range", path, s.index)
			}
			cur = arr[s.index]
			continue
		}
		m, ok := cur.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("sfn: path %q: field %q of non-object", path, s.field)
		}
		v, ok := m[s.field]
		if !ok {
			return nil, fmt.Errorf("sfn: path %q: field %q absent", path, s.field)
		}
		cur = v
	}
	return cur, nil
}

// SetPath returns doc with val placed at path, creating intermediate
// objects as needed (ResultPath semantics). Path "$" replaces the
// document. The input document is shallow-copied along the touched
// spine so callers' documents are not mutated.
func SetPath(doc any, path string, val any) (any, error) {
	segs, err := parsePath(path)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		return val, nil
	}
	return setSegs(doc, segs, val, path)
}

func setSegs(doc any, segs []seg, val any, full string) (any, error) {
	s := segs[0]
	if s.index >= 0 {
		arr, ok := doc.([]any)
		if !ok {
			return nil, fmt.Errorf("sfn: ResultPath %q: indexing non-array", full)
		}
		if s.index >= len(arr) {
			return nil, fmt.Errorf("sfn: ResultPath %q: index out of range", full)
		}
		cp := make([]any, len(arr))
		copy(cp, arr)
		if len(segs) == 1 {
			cp[s.index] = val
			return cp, nil
		}
		sub, err := setSegs(cp[s.index], segs[1:], val, full)
		if err != nil {
			return nil, err
		}
		cp[s.index] = sub
		return cp, nil
	}
	var m map[string]any
	switch d := doc.(type) {
	case map[string]any:
		m = make(map[string]any, len(d)+1)
		for k, v := range d {
			m[k] = v
		}
	case nil:
		m = make(map[string]any, 1)
	default:
		// ResultPath onto a scalar replaces it with an object.
		m = make(map[string]any, 1)
	}
	if len(segs) == 1 {
		m[s.field] = val
		return m, nil
	}
	sub, err := setSegs(m[s.field], segs[1:], val, full)
	if err != nil {
		return nil, err
	}
	m[s.field] = sub
	return m, nil
}

// applyPath is GetPath treating an empty path as "$".
func applyPath(doc any, path string) (any, error) {
	if path == "" {
		return doc, nil
	}
	return GetPath(doc, path)
}
