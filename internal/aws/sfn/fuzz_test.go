package sfn

import (
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzJSONPath drives GetPath/SetPath with arbitrary paths and JSON
// documents. Invariants: never panic, and any path GetPath resolves
// must round-trip — SetPath of the same value at the same path followed
// by GetPath returns that value.
func FuzzJSONPath(f *testing.F) {
	// Seed corpus from the jsonpath_test.go cases.
	f.Add(`{"detail":{"items":[{"id":1},{"id":2}]}}`, "$.detail.items[1].id")
	f.Add(`{"a":{"b":2}}`, "$.a.b")
	f.Add(`{"n":7}`, "$")
	f.Add(`[1,2,3]`, "$[2]")
	f.Add(`{"a":1}`, "$.missing")
	f.Add(`{"a":[true,null]}`, "$.a[0]")
	f.Add(`{}`, "$.")
	f.Add(`{}`, "$[")
	f.Add(`{}`, "$.a[99]")
	f.Add(`5`, "no-dollar")
	f.Fuzz(func(t *testing.T, docJSON, path string) {
		var doc any
		if err := json.Unmarshal([]byte(docJSON), &doc); err != nil {
			return
		}
		got, err := GetPath(doc, path)
		if err != nil {
			// Invalid path or miss; SetPath must not panic either.
			_, _ = SetPath(doc, path, "x")
			return
		}
		// Round-trip: writing the read value back and re-reading it
		// must reproduce it.
		doc2, err := SetPath(doc, path, got)
		if err != nil {
			t.Fatalf("GetPath succeeded but SetPath failed: doc=%s path=%q err=%v", docJSON, path, err)
		}
		got2, err := GetPath(doc2, path)
		if err != nil {
			t.Fatalf("round-trip GetPath failed: doc=%s path=%q err=%v", docJSON, path, err)
		}
		if !reflect.DeepEqual(got, got2) {
			t.Fatalf("round-trip mismatch: doc=%s path=%q got=%v re-got=%v", docJSON, path, got, got2)
		}
		// The untouched original must still resolve identically
		// (SetPath promises not to mutate the caller's document).
		got3, err := GetPath(doc, path)
		if err != nil || !reflect.DeepEqual(got, got3) {
			t.Fatalf("SetPath mutated the input document: doc=%s path=%q", docJSON, path)
		}
	})
}

// FuzzChoiceEval decodes an arbitrary ChoiceRule and document from JSON
// and evaluates the rule. Invariant: evalRule never panics, whatever
// operator combination or document shape the fuzzer invents.
func FuzzChoiceEval(f *testing.F) {
	// Seed corpus from the choice_test.go cases.
	f.Add(`{"Variable":"$.n","NumericEquals":7}`, `{"n":7,"s":"go","ok":true}`)
	f.Add(`{"Variable":"$.s","StringEquals":"go"}`, `{"s":"go"}`)
	f.Add(`{"Variable":"$.ok","BooleanEquals":true}`, `{"ok":true}`)
	f.Add(`{"Variable":"$.missing","IsPresent":false}`, `{}`)
	f.Add(`{"And":[{"Variable":"$.n","NumericGreaterThan":1},{"Variable":"$.n","NumericLessThan":10}]}`, `{"n":7}`)
	f.Add(`{"Or":[{"Variable":"$.n","NumericEquals":1}]}`, `{"n":7}`)
	f.Add(`{"Not":{"Variable":"$.n","NumericEquals":7}}`, `{"n":7}`)
	f.Add(`{"Variable":"$.n","NumericEquals":7,"Next":"Done"}`, `{"n":"not-a-number"}`)
	f.Add(`{"Not":{"Not":{"Not":{"Variable":"$[0]","IsPresent":true}}}}`, `[1]`)
	f.Fuzz(func(t *testing.T, ruleJSON, docJSON string) {
		var rule ChoiceRule
		if err := json.Unmarshal([]byte(ruleJSON), &rule); err != nil {
			return
		}
		var doc any
		if err := json.Unmarshal([]byte(docJSON), &doc); err != nil {
			return
		}
		// Must return cleanly (true/false or an error), never panic.
		_, _ = evalRule(&rule, doc)
	})
}
