package sfn

import (
	"reflect"
	"testing"
)

func doc() map[string]any {
	return map[string]any{
		"a": map[string]any{"b": float64(7)},
		"items": []any{
			map[string]any{"id": "x"},
			map[string]any{"id": "y"},
		},
		"flag": true,
	}
}

func TestGetPathRoot(t *testing.T) {
	d := doc()
	v, err := GetPath(d, "$")
	if err != nil || !reflect.DeepEqual(v, d) {
		t.Fatalf("root get: %v %v", v, err)
	}
}

func TestGetPathNested(t *testing.T) {
	v, err := GetPath(doc(), "$.a.b")
	if err != nil || v != float64(7) {
		t.Fatalf("got %v, %v", v, err)
	}
}

func TestGetPathIndexed(t *testing.T) {
	v, err := GetPath(doc(), "$.items[1].id")
	if err != nil || v != "y" {
		t.Fatalf("got %v, %v", v, err)
	}
}

func TestGetPathErrors(t *testing.T) {
	cases := []string{"a.b", "$.missing", "$.a.b.c", "$.items[9]", "$.items[x]", "$.", "$.flag[0]"}
	for _, path := range cases {
		if _, err := GetPath(doc(), path); err == nil {
			t.Errorf("GetPath(%q) succeeded, want error", path)
		}
	}
}

func TestSetPathRootReplaces(t *testing.T) {
	v, err := SetPath(doc(), "$", "replaced")
	if err != nil || v != "replaced" {
		t.Fatalf("got %v, %v", v, err)
	}
}

func TestSetPathCreatesSpine(t *testing.T) {
	v, err := SetPath(map[string]any{}, "$.x.y", float64(1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := GetPath(v, "$.x.y")
	if err != nil || got != float64(1) {
		t.Fatalf("round trip = %v, %v", got, err)
	}
}

func TestSetPathDoesNotMutateInput(t *testing.T) {
	d := doc()
	if _, err := SetPath(d, "$.a.b", float64(99)); err != nil {
		t.Fatal(err)
	}
	if v, _ := GetPath(d, "$.a.b"); v != float64(7) {
		t.Fatalf("input mutated: a.b = %v", v)
	}
}

func TestSetPathIntoArray(t *testing.T) {
	d := doc()
	v, err := SetPath(d, "$.items[0].id", "z")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := GetPath(v, "$.items[0].id")
	if got != "z" {
		t.Fatalf("set into array = %v", got)
	}
	// Original untouched.
	if orig, _ := GetPath(d, "$.items[0].id"); orig != "x" {
		t.Fatalf("original mutated: %v", orig)
	}
}

func TestSetPathOntoNilCreatesObject(t *testing.T) {
	v, err := SetPath(nil, "$.result", float64(5))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := GetPath(v, "$.result")
	if got != float64(5) {
		t.Fatalf("got %v", got)
	}
}
