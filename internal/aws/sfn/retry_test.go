package sfn

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"statebench/internal/aws/lambda"
)

// flakyLambda fails the first n invocations, then succeeds.
func regFlaky(lsvc *lambda.Service, name string, failures int) *int {
	calls := 0
	lsvc.MustRegister(lambda.Config{Name: name, MemoryMB: 128, Handler: func(ctx *lambda.Context, payload []byte) ([]byte, error) {
		calls++
		ctx.Busy(10 * time.Millisecond)
		if calls <= failures {
			return nil, fmt.Errorf("transient %d", calls)
		}
		return []byte(`"recovered"`), nil
	}})
	return &calls
}

func TestRetryRecoversTransientFailure(t *testing.T) {
	k, lsvc, s := fixture()
	calls := regFlaky(lsvc, "flaky", 2)
	sm := &StateMachine{StartAt: "A", States: map[string]*State{
		"A": {Type: TypeTask, Resource: "flaky", End: true,
			Retry: []RetryPolicy{{ErrorEquals: []string{"States.ALL"}, IntervalSeconds: 1, MaxAttempts: 3, BackoffRate: 2}}},
	}}
	if err := s.CreateStateMachine("m", sm); err != nil {
		t.Fatal(err)
	}
	exec, _ := run(k, s, "m", nil)
	if exec.Err != nil {
		t.Fatalf("execution failed: %v", exec.Err)
	}
	if *calls != 3 {
		t.Fatalf("calls = %d, want 3", *calls)
	}
	if exec.Output != "recovered" {
		t.Fatalf("output = %v", exec.Output)
	}
	// Backoff: 1s + 2s between attempts.
	if exec.Duration() < 3*time.Second {
		t.Fatalf("duration %v missing backoff delays", exec.Duration())
	}
}

func TestRetryExhaustionFails(t *testing.T) {
	k, lsvc, s := fixture()
	calls := regFlaky(lsvc, "alwaysFail", 100)
	sm := &StateMachine{StartAt: "A", States: map[string]*State{
		"A": {Type: TypeTask, Resource: "alwaysFail", End: true,
			Retry: []RetryPolicy{{ErrorEquals: []string{"States.TaskFailed"}, MaxAttempts: 2}}},
	}}
	if err := s.CreateStateMachine("m", sm); err != nil {
		t.Fatal(err)
	}
	exec, _ := run(k, s, "m", nil)
	if exec.Err == nil {
		t.Fatal("exhausted retries did not fail")
	}
	// Initial + 2 retries.
	if *calls != 3 {
		t.Fatalf("calls = %d, want 3", *calls)
	}
}

func TestRetryUnmatchedErrorSkipsRetry(t *testing.T) {
	k, lsvc, s := fixture()
	calls := regFlaky(lsvc, "f", 100)
	sm := &StateMachine{StartAt: "A", States: map[string]*State{
		"A": {Type: TypeTask, Resource: "f", End: true,
			Retry: []RetryPolicy{{ErrorEquals: []string{"SomeOther.Error"}}}},
	}}
	if err := s.CreateStateMachine("m", sm); err != nil {
		t.Fatal(err)
	}
	exec, _ := run(k, s, "m", nil)
	if exec.Err == nil || *calls != 1 {
		t.Fatalf("err=%v calls=%d, want immediate failure", exec.Err, *calls)
	}
}

func TestCatchRoutesToRecoveryState(t *testing.T) {
	k, lsvc, s := fixture()
	regFlaky(lsvc, "boom", 100)
	sm := &StateMachine{StartAt: "A", States: map[string]*State{
		"A": {Type: TypeTask, Resource: "boom", End: true,
			Catch: []Catcher{{ErrorEquals: []string{"States.ALL"}, ResultPath: "$.error", Next: "Recover"}}},
		"Recover": {Type: TypePass, End: true},
	}}
	if err := s.CreateStateMachine("m", sm); err != nil {
		t.Fatal(err)
	}
	exec, _ := run(k, s, "m", map[string]any{"keep": "me"})
	if exec.Err != nil {
		t.Fatalf("catch did not recover: %v", exec.Err)
	}
	out := exec.Output.(map[string]any)
	if out["keep"] != "me" {
		t.Fatalf("catch lost original input: %v", out)
	}
	info := out["error"].(map[string]any)
	if info["Error"] != "States.TaskFailed" {
		t.Fatalf("error info = %v", info)
	}
}

func TestRetryThenCatch(t *testing.T) {
	k, lsvc, s := fixture()
	calls := regFlaky(lsvc, "f", 100)
	sm := &StateMachine{StartAt: "A", States: map[string]*State{
		"A": {Type: TypeTask, Resource: "f", End: true,
			Retry: []RetryPolicy{{ErrorEquals: []string{"States.ALL"}, MaxAttempts: 1, IntervalSeconds: 1}},
			Catch: []Catcher{{ErrorEquals: []string{"States.ALL"}, Next: "Fallback"}}},
		"Fallback": {Type: TypePass, Result: "fallback", End: true},
	}}
	if err := s.CreateStateMachine("m", sm); err != nil {
		t.Fatal(err)
	}
	exec, _ := run(k, s, "m", nil)
	if exec.Err != nil || exec.Output != "fallback" {
		t.Fatalf("out=%v err=%v", exec.Output, exec.Err)
	}
	if *calls != 2 {
		t.Fatalf("calls = %d, want 2 (original + 1 retry)", *calls)
	}
}

func TestCatchOnFailStateDoesNotApply(t *testing.T) {
	// Fail states terminate; Catch belongs to Task/Map/Parallel.
	k, _, s := fixture()
	sm := &StateMachine{StartAt: "F", States: map[string]*State{
		"F": {Type: TypeFail, Error: "E", Cause: "c"},
	}}
	if err := s.CreateStateMachine("m", sm); err != nil {
		t.Fatal(err)
	}
	exec, _ := run(k, s, "m", nil)
	var ee *ExecutionError
	if !errors.As(exec.Err, &ee) {
		t.Fatalf("err = %v", exec.Err)
	}
}

func TestValidateCatchTargets(t *testing.T) {
	sm := &StateMachine{StartAt: "A", States: map[string]*State{
		"A": {Type: TypeTask, Resource: "f", End: true,
			Catch: []Catcher{{ErrorEquals: []string{"States.ALL"}, Next: "ghost"}}},
	}}
	if err := sm.Validate(); err == nil {
		t.Fatal("dangling catch target validated")
	}
	sm2 := &StateMachine{StartAt: "A", States: map[string]*State{
		"A": {Type: TypeTask, Resource: "f", End: true,
			Retry: []RetryPolicy{{}}},
	}}
	if err := sm2.Validate(); err == nil {
		t.Fatal("retrier without ErrorEquals validated")
	}
}

func TestMatchesError(t *testing.T) {
	if !matchesError([]string{"States.ALL"}, "Anything") {
		t.Fatal("States.ALL should match")
	}
	if !matchesError([]string{"A", "B"}, "B") {
		t.Fatal("exact match failed")
	}
	if matchesError([]string{"A"}, "B") {
		t.Fatal("mismatch matched")
	}
}
