// Package aws assembles the simulated AWS deployment used by the
// benchmarks: a Lambda service, a Step Functions service on top of it,
// and an S3-like object store for data too large for service payloads.
package aws

import (
	"statebench/internal/aws/lambda"
	"statebench/internal/aws/sfn"
	"statebench/internal/chaos"
	"statebench/internal/cloud/blob"
	"statebench/internal/obs/span"
	"statebench/internal/obs/tseries"
	"statebench/internal/platform"
	"statebench/internal/pricing"
	"statebench/internal/sim"
)

// Cloud is one simulated AWS region/account.
type Cloud struct {
	Params platform.AWSParams
	Lambda *lambda.Service
	SFN    *sfn.Service
	S3     *blob.Store
}

// New builds a Cloud with the given calibration parameters.
func New(k *sim.Kernel, params platform.AWSParams) *Cloud {
	lsvc := lambda.New(k, params)
	return &Cloud{
		Params: params,
		Lambda: lsvc,
		SFN:    sfn.New(k, params, lsvc),
		S3:     blob.New(k, "s3", blob.DefaultParams()),
	}
}

// SetTracer enables span emission on Lambda and Step Functions.
func (c *Cloud) SetTracer(tr *span.Tracer) {
	c.Lambda.Tracer = tr
	c.SFN.Tracer = tr
}

// SetChaos enables fault injection on Lambda and Step Functions.
func (c *Cloud) SetChaos(inj *chaos.Injector) {
	c.Lambda.Chaos = inj
	c.SFN.Chaos = inj
}

// SetTimeline enables per-window warm-pool occupancy gauges on the
// Lambda container pools (Step Functions holds no instances).
func (c *Cloud) SetTimeline(s *tseries.Series) {
	c.Lambda.SetTimeline(s)
}

// ResetMeters zeroes billing meters and storage stats across services,
// keeping deployed functions and warm containers.
func (c *Cloud) ResetMeters() {
	c.Lambda.ResetMeters()
	c.SFN.ResetMeters()
	c.S3.ResetStats()
}

// Usage reports cumulative billable consumption (the core.Backend
// seam). AWS bills Step transitions whether or not the style is
// stateful — a stateless deployment simply produces none.
func (c *Cloud) Usage(stateful bool) pricing.Usage {
	m := c.Lambda.TotalMeter()
	return pricing.Usage{
		GBs:          m.BilledGBs,
		Requests:     m.Invocations,
		StatefulTxns: c.SFN.TotalTransitions,
		AllTxns:      c.SFN.TotalTransitions,
		BlobTxns:     c.S3.Stats().Transactions(),
		Exec:         m.ExecTime,
	}
}

// Stop implements core.Backend; the AWS services run no background
// listeners, so there is nothing to halt.
func (c *Cloud) Stop() {}
