// Package awsflow lowers provider-neutral flow definitions to AWS: the
// Mono class becomes a single Lambda function, the Machine class
// becomes per-state Lambdas orchestrated by a Step Functions state
// machine compiled from the graph (Amazon States Language). Both
// lowerers self-register with the flow registry from init, the same
// discovery pattern the core provider registry uses.
package awsflow

import (
	"encoding/json"
	"fmt"

	"statebench/internal/aws/lambda"
	"statebench/internal/aws/sfn"
	"statebench/internal/core"
	"statebench/internal/flow"
	"statebench/internal/sim"
)

// providerName is the registered AWS provider display name.
const providerName = "AWS"

// defaultMemoryMB is the provisioned tier used when a node does not
// pin one — the paper's Lambda configurations default to 1536 MB.
const defaultMemoryMB = 1536

func init() {
	flow.RegisterLowerer(monoLowerer{})
	flow.RegisterLowerer(machineLowerer{})
}

// memoryMB resolves a node's provisioned memory tier.
func memoryMB(n *flow.Node) int {
	if n.MemMB > 0 {
		return n.MemMB
	}
	return defaultMemoryMB
}

// bind resolves a definition's stage closures for one AWS lowering.
func bind(env *core.Env, def *flow.Definition, impl core.Impl, class flow.Class) (*flow.Stages, error) {
	return def.Bind(flow.Binding{
		Env:      env,
		Blob:     env.AWS.S3,
		Impl:     impl,
		Provider: providerName,
		Class:    class,
	})
}

// registerTask installs one task node as a Lambda wrapping its bound
// stage.
func registerTask(env *core.Env, st *flow.Stages, n *flow.Node) error {
	stage, err := st.Task(n.Stage)
	if err != nil {
		return err
	}
	_, err = env.AWS.Lambda.Register(lambda.Config{
		Name:          n.Fn,
		MemoryMB:      memoryMB(n),
		ConsumedMemMB: n.ConsumedMemMB,
		CodeSizeMB:    n.CodeSizeMB,
		Handler: func(ctx *lambda.Context, input []byte) ([]byte, error) {
			return stage(ctx, input)
		},
	})
	return err
}

// --- Mono: single-Lambda monolith (AWS-Lambda) ---

type monoLowerer struct{}

func (monoLowerer) Impl() core.Impl   { return core.AWSLambda }
func (monoLowerer) Class() flow.Class { return flow.Mono }
func (monoLowerer) Variant() string   { return "" }

// Caps: a monolith passes state through blobs, so no payload cap
// applies; Lambda's execution ceiling is 900 s.
func (monoLowerer) Caps() flow.Caps { return flow.Caps{MaxTaskSeconds: 900} }

func (monoLowerer) Lower(env *core.Env, def *flow.Definition) (*core.Deployment, error) {
	g := def.Graphs[flow.Mono]
	flow.ApplyPreloads(env.AWS.S3, g)
	st, err := bind(env, def, core.AWSLambda, flow.Mono)
	if err != nil {
		return nil, err
	}
	n := g.Node(g.Start)
	if err := registerTask(env, st, n); err != nil {
		return nil, err
	}
	return &core.Deployment{
		Runner:     &lambdaRunner{env: env, fn: n.Fn},
		FuncCount:  g.FuncCount,
		CodeSizeMB: g.DeployCodeSizeMB(providerName),
	}, nil
}

func (monoLowerer) Program(def *flow.Definition) (string, error) {
	g := def.Graphs[flow.Mono]
	n := g.Node(g.Start)
	return fmt.Sprintf("lambda %s memory=%dMB consumed=%dMB code=%.1fMB stage=%s\n",
		n.Fn, memoryMB(n), n.ConsumedMemMB, n.CodeSizeMB, n.Stage), nil
}

// lambdaRunner invokes a single Lambda synchronously.
type lambdaRunner struct {
	env *core.Env
	fn  string
}

// Invoke implements core.Runner.
func (r *lambdaRunner) Invoke(p *sim.Proc, _ []byte) (core.RunStats, error) {
	inv, err := r.env.AWS.Lambda.Invoke(p, r.fn, nil)
	if err != nil {
		return core.RunStats{}, err
	}
	return core.RunStats{
		E2E:       inv.Total,
		ColdStart: inv.ColdStartDelay,
		ExecTime:  inv.ExecTime,
		Output:    inv.Output,
		Err:       inv.Err,
	}, nil
}

// --- Machine: Step Functions state machine (AWS-Step) ---

type machineLowerer struct{}

func (machineLowerer) Impl() core.Impl   { return core.AWSStep }
func (machineLowerer) Class() flow.Class { return flow.Machine }
func (machineLowerer) Variant() string   { return "" }

// Caps: SFN's 256 KB inter-state payload limit and Lambda's 900 s
// execution ceiling — the two AWS numbers the paper measures against.
func (machineLowerer) Caps() flow.Caps {
	return flow.Caps{PayloadBytes: 256 * 1024, MaxTaskSeconds: 900}
}

func (machineLowerer) Lower(env *core.Env, def *flow.Definition) (*core.Deployment, error) {
	g := def.Graphs[flow.Machine]
	flow.ApplyPreloads(env.AWS.S3, g)
	st, err := bind(env, def, core.AWSStep, flow.Machine)
	if err != nil {
		return nil, err
	}
	// Register the graph's Lambdas in node order (map iterators and
	// parallel branches inline where their parent appears).
	if err := registerGraph(env, st, g); err != nil {
		return nil, err
	}
	machine, err := buildASL(g)
	if err != nil {
		return nil, err
	}
	name := def.MachineNameFor(g, providerName)
	if err := env.AWS.SFN.CreateStateMachine(name, machine); err != nil {
		return nil, err
	}
	return &core.Deployment{
		Runner:     &stepRunner{env: env, machine: name, entry: def.EntryMap},
		FuncCount:  g.FuncCount,
		CodeSizeMB: g.DeployCodeSizeMB(providerName),
	}, nil
}

// Program renders the compiled state machine as ASL JSON.
func (machineLowerer) Program(def *flow.Definition) (string, error) {
	machine, err := buildASL(def.Graphs[flow.Machine])
	if err != nil {
		return "", err
	}
	data, err := machine.Definition()
	if err != nil {
		return "", err
	}
	return string(data) + "\n", nil
}

// registerGraph installs every task Lambda of a machine graph in node
// order.
func registerGraph(env *core.Env, st *flow.Stages, g *flow.Graph) error {
	for _, n := range g.Nodes {
		switch n.Kind {
		case flow.KindTask:
			if err := registerTask(env, st, n); err != nil {
				return err
			}
		case flow.KindMap:
			if err := registerTask(env, st, n.Iter); err != nil {
				return err
			}
		case flow.KindParallel:
			for _, b := range n.Branches {
				if err := registerTask(env, st, b); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// buildASL compiles a machine graph to an ASL state machine.
func buildASL(g *flow.Graph) (*sfn.StateMachine, error) {
	var retry []sfn.RetryPolicy
	if g.RetryAttempts > 0 {
		retry = []sfn.RetryPolicy{{ErrorEquals: []string{"States.ALL"}, MaxAttempts: g.RetryAttempts}}
	}
	states := make(map[string]*sfn.State, len(g.Nodes))
	for _, n := range g.Nodes {
		st, err := buildState(n, retry)
		if err != nil {
			return nil, err
		}
		states[n.Name] = st
	}
	return &sfn.StateMachine{
		Comment: g.Comment,
		StartAt: g.Start,
		States:  states,
	}, nil
}

// taskState builds the Task state for a task-shaped node (top-level,
// iterator, or branch). Terminal iterator/branch states set End.
func taskState(n *flow.Node, retry []sfn.RetryPolicy, end bool) *sfn.State {
	st := &sfn.State{Type: sfn.TypeTask, Resource: n.Fn, Retry: retry}
	if end {
		st.End = true
	}
	return st
}

func buildState(n *flow.Node, retry []sfn.RetryPolicy) (*sfn.State, error) {
	var st *sfn.State
	switch n.Kind {
	case flow.KindTask:
		st = taskState(n, retry, n.Next == "")
		if n.Next != "" {
			st.Next = n.Next
		}
		return st, nil
	case flow.KindMap:
		iterName := n.IterName
		if iterName == "" {
			iterName = n.Iter.Name
		}
		st = &sfn.State{
			Type:           sfn.TypeMap,
			ItemsPath:      "$." + n.ItemsField,
			ResultPath:     "$." + n.ResultField,
			MaxConcurrency: n.MaxConcurrency,
			Iterator: &sfn.StateMachine{
				StartAt: iterName,
				States:  map[string]*sfn.State{iterName: taskState(n.Iter, retry, true)},
			},
		}
	case flow.KindParallel:
		branches := make([]*sfn.StateMachine, len(n.Branches))
		for i, b := range n.Branches {
			branches[i] = &sfn.StateMachine{
				StartAt: b.Name,
				States:  map[string]*sfn.State{b.Name: taskState(b, retry, true)},
			}
		}
		st = &sfn.State{Type: sfn.TypeParallel, Branches: branches}
	case flow.KindChoice:
		rules := make([]sfn.ChoiceRule, len(n.Cases))
		for i, c := range n.Cases {
			rules[i] = sfn.ChoiceRule{
				Variable:                 c.Var,
				NumericLessThan:          c.NumLT,
				NumericGreaterThanEquals: c.NumGTE,
				StringEquals:             c.StrEq,
				Next:                     c.To,
			}
		}
		return &sfn.State{Type: sfn.TypeChoice, Choices: rules, Default: n.Default}, nil
	case flow.KindWait:
		st = &sfn.State{Type: sfn.TypeWait, Seconds: n.WaitSeconds}
	default:
		return nil, fmt.Errorf("awsflow: node %q: kind %s has no ASL lowering", n.Name, n.Kind)
	}
	if n.Next != "" {
		st.Next = n.Next
	} else {
		st.End = true
	}
	return st, nil
}

// stepRunner executes a Step Functions state machine per run.
type stepRunner struct {
	env     *core.Env
	machine string
	entry   func(run int64) map[string]any
	nextRun int64
}

// Invoke implements core.Runner.
func (r *stepRunner) Invoke(p *sim.Proc, _ []byte) (core.RunStats, error) {
	r.nextRun++
	exec, err := r.env.AWS.SFN.StartExecution(p, r.machine, r.entry(r.nextRun))
	if err != nil {
		return core.RunStats{}, err
	}
	var out []byte
	if exec.Err == nil {
		out, _ = json.Marshal(exec.Output)
	}
	cold := exec.FirstTaskDelay
	if cold < 0 {
		cold = 0
	}
	return core.RunStats{
		E2E:       exec.Duration(),
		ColdStart: cold,
		Output:    out,
		Err:       exec.Err,
	}, nil
}
