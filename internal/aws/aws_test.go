package aws

import (
	"testing"
	"time"

	"statebench/internal/aws/lambda"
	"statebench/internal/platform"
	"statebench/internal/sim"
)

func TestCloudAssembly(t *testing.T) {
	k := sim.NewKernel(1)
	c := New(k, platform.DefaultAWS())
	if c.Lambda == nil || c.SFN == nil || c.S3 == nil {
		t.Fatal("cloud incomplete")
	}
	c.Lambda.MustRegister(lambda.Config{Name: "f", MemoryMB: 128, Handler: func(ctx *lambda.Context, p []byte) ([]byte, error) {
		ctx.Busy(time.Second)
		return p, nil
	}})
	k.Spawn("t", func(p *sim.Proc) {
		if _, err := c.Lambda.Invoke(p, "f", []byte("x")); err != nil {
			t.Errorf("invoke: %v", err)
		}
		c.S3.Put(p, "k", []byte("v"))
	})
	k.Run()
	if c.Lambda.TotalMeter().Invocations != 1 || c.S3.Stats().Puts != 1 {
		t.Fatal("meters not recording")
	}
	c.ResetMeters()
	if c.Lambda.TotalMeter().Invocations != 0 || c.S3.Stats().Puts != 0 {
		t.Fatal("reset incomplete")
	}
}
