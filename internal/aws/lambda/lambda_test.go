package lambda

import (
	"errors"
	"testing"
	"time"

	"statebench/internal/platform"
	"statebench/internal/sim"
)

// fixedParams makes every latency deterministic for exact assertions.
func fixedParams() platform.AWSParams {
	p := platform.DefaultAWS()
	p.InvokeRTT = sim.Fixed{D: 10 * time.Millisecond}
	p.ColdStartBase = sim.Fixed{D: 300 * time.Millisecond}
	p.CodeFetchBW = 50e6 // 50 MB/s
	p.WarmStart = sim.Fixed{D: 5 * time.Millisecond}
	p.KeepAlive = time.Minute
	p.BurstConcurrency = 2
	return p
}

func echo(ctx *Context, payload []byte) ([]byte, error) {
	ctx.Busy(100 * time.Millisecond)
	return payload, nil
}

func TestRegisterValidation(t *testing.T) {
	k := sim.NewKernel(1)
	s := New(k, fixedParams())
	if _, err := s.Register(Config{Name: "f", MemoryMB: 100, Handler: echo}); err == nil {
		t.Fatal("non-multiple memory accepted")
	}
	if _, err := s.Register(Config{Name: "", MemoryMB: 128, Handler: echo}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := s.Register(Config{Name: "f", MemoryMB: 128}); err == nil {
		t.Fatal("nil handler accepted")
	}
	if _, err := s.Register(Config{Name: "f", MemoryMB: 128, Handler: echo}); err != nil {
		t.Fatalf("valid register failed: %v", err)
	}
	if _, err := s.Register(Config{Name: "f", MemoryMB: 128, Handler: echo}); err == nil {
		t.Fatal("duplicate register accepted")
	}
}

func TestColdThenWarm(t *testing.T) {
	k := sim.NewKernel(1)
	s := New(k, fixedParams())
	s.MustRegister(Config{Name: "f", MemoryMB: 128, CodeSizeMB: 50, Handler: echo})
	var first, second *Invocation
	k.Spawn("client", func(p *sim.Proc) {
		first, _ = s.Invoke(p, "f", []byte("a"))
		second, _ = s.Invoke(p, "f", []byte("b"))
	})
	k.Run()
	if !first.Cold {
		t.Fatal("first invoke should be cold")
	}
	// 300 ms base + 50 MB / 50 MBps = 1 s fetch => 1.3 s cold start.
	if first.ColdStartDelay != 1300*time.Millisecond {
		t.Fatalf("cold start = %v, want 1.3s", first.ColdStartDelay)
	}
	if second.Cold {
		t.Fatal("second invoke should reuse the warm container")
	}
	// Warm total: 10ms RTT + 5ms warm start + 100ms exec.
	if second.Total != 115*time.Millisecond {
		t.Fatalf("warm total = %v, want 115ms", second.Total)
	}
}

func TestKeepAliveExpiry(t *testing.T) {
	k := sim.NewKernel(1)
	s := New(k, fixedParams()) // 1 min keep-alive
	f := s.MustRegister(Config{Name: "f", MemoryMB: 128, Handler: echo})
	var again *Invocation
	k.Spawn("client", func(p *sim.Proc) {
		if _, err := s.Invoke(p, "f", nil); err != nil {
			t.Errorf("invoke: %v", err)
		}
		if f.WarmContainers(p.Now()) != 1 {
			t.Errorf("warm containers = %d, want 1", f.WarmContainers(p.Now()))
		}
		p.Sleep(2 * time.Minute)
		again, _ = s.Invoke(p, "f", nil)
	})
	k.Run()
	if !again.Cold {
		t.Fatal("invoke after keep-alive expiry should be cold")
	}
}

func TestPayloadLimit(t *testing.T) {
	k := sim.NewKernel(1)
	s := New(k, fixedParams())
	s.MustRegister(Config{Name: "f", MemoryMB: 128, Handler: echo})
	var err error
	k.Spawn("client", func(p *sim.Proc) {
		_, err = s.Invoke(p, "f", make([]byte, 256*1024+1))
	})
	k.Run()
	var tooBig *PayloadTooLargeError
	if !errors.As(err, &tooBig) {
		t.Fatalf("err = %v, want PayloadTooLargeError", err)
	}
}

func TestBurstConcurrencyQueues(t *testing.T) {
	k := sim.NewKernel(1)
	s := New(k, fixedParams()) // burst = 2
	slow := func(ctx *Context, payload []byte) ([]byte, error) {
		ctx.Busy(time.Second)
		return nil, nil
	}
	s.MustRegister(Config{Name: "slow", MemoryMB: 128, Handler: slow})
	queued := 0
	for i := 0; i < 4; i++ {
		k.Spawn("client", func(p *sim.Proc) {
			inv, err := s.Invoke(p, "slow", nil)
			if err != nil {
				t.Errorf("invoke: %v", err)
				return
			}
			if inv.QueueDelay > 0 {
				queued++
			}
		})
	}
	k.Run()
	if queued != 2 {
		t.Fatalf("queued invokes = %d, want 2 (burst limit 2 of 4)", queued)
	}
}

func TestTimeout(t *testing.T) {
	k := sim.NewKernel(1)
	params := fixedParams()
	s := New(k, params)
	hang := func(ctx *Context, payload []byte) ([]byte, error) {
		ctx.Busy(10 * time.Second)
		return []byte("never"), nil
	}
	s.MustRegister(Config{Name: "h", MemoryMB: 128, Timeout: time.Second, Handler: hang})
	var inv *Invocation
	k.Spawn("client", func(p *sim.Proc) { inv, _ = s.Invoke(p, "h", nil) })
	k.Run()
	var te *TimeoutError
	if !errors.As(inv.Err, &te) {
		t.Fatalf("err = %v, want TimeoutError", inv.Err)
	}
	if inv.Output != nil {
		t.Fatal("timed-out invoke returned output")
	}
	if inv.ExecTime != time.Second {
		t.Fatalf("billed exec = %v, want capped at 1s", inv.ExecTime)
	}
}

func TestBillingRoundsTo100ms(t *testing.T) {
	k := sim.NewKernel(1)
	s := New(k, fixedParams())
	f := s.MustRegister(Config{Name: "f", MemoryMB: 1536, ConsumedMemMB: 400, Handler: func(ctx *Context, _ []byte) ([]byte, error) {
		ctx.Busy(110 * time.Millisecond)
		return nil, nil
	}})
	k.Spawn("client", func(p *sim.Proc) {
		if _, err := s.Invoke(p, "f", nil); err != nil {
			t.Errorf("invoke: %v", err)
		}
	})
	k.Run()
	want := 0.2 * 1536.0 / 1024 // 200 ms at 1.5 GB
	if d := f.Meter.BilledGBs - want; d > 1e-9 || d < -1e-9 {
		t.Fatalf("BilledGBs = %v, want %v", f.Meter.BilledGBs, want)
	}
}

func TestInvokeUnknownFunction(t *testing.T) {
	k := sim.NewKernel(1)
	s := New(k, fixedParams())
	var err error
	k.Spawn("client", func(p *sim.Proc) { _, err = s.Invoke(p, "ghost", nil) })
	k.Run()
	if err == nil {
		t.Fatal("invoke of unknown function succeeded")
	}
}

func TestHandlerErrorReported(t *testing.T) {
	k := sim.NewKernel(1)
	s := New(k, fixedParams())
	boom := errors.New("boom")
	s.MustRegister(Config{Name: "f", MemoryMB: 128, Handler: func(*Context, []byte) ([]byte, error) {
		return nil, boom
	}})
	var inv *Invocation
	k.Spawn("client", func(p *sim.Proc) { inv, _ = s.Invoke(p, "f", nil) })
	k.Run()
	if !errors.Is(inv.Err, boom) {
		t.Fatalf("err = %v", inv.Err)
	}
	f, _ := s.Function("f")
	if f.Stats().Errors != 1 {
		t.Fatal("error not counted")
	}
}

func TestStatsAndMeters(t *testing.T) {
	k := sim.NewKernel(1)
	s := New(k, fixedParams())
	s.MustRegister(Config{Name: "f", MemoryMB: 128, Handler: echo})
	k.Spawn("client", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			if _, err := s.Invoke(p, "f", nil); err != nil {
				t.Errorf("invoke: %v", err)
			}
		}
	})
	k.Run()
	f, _ := s.Function("f")
	st := f.Stats()
	if st.Invokes != 3 || st.ColdStarts != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if len(st.ColdDelays) != 1 {
		t.Fatalf("cold delays = %v", st.ColdDelays)
	}
	if s.TotalMeter().Invocations != 3 {
		t.Fatal("total meter wrong")
	}
	s.ResetMeters()
	if s.TotalMeter().Invocations != 0 || f.Stats().Invokes != 0 {
		t.Fatal("reset did not clear")
	}
}
