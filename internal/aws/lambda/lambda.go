// Package lambda simulates AWS Lambda: per-request container scaling
// with cold/warm starts, configurable memory in 128 MB steps, a 256 KB
// synchronous payload limit, the 15-minute execution cap, and billing
// on configured memory with 100 ms duration rounding.
package lambda

import (
	"fmt"
	"sort"
	"time"

	"statebench/internal/chaos"
	"statebench/internal/obs/span"
	"statebench/internal/obs/tseries"
	"statebench/internal/platform"
	"statebench/internal/sim"
	"statebench/internal/trace"
)

// Handler is the user function body. It runs on the invoking process's
// virtual-time context; compute is modeled by ctx.Busy and I/O by
// calling simulated services with ctx.Proc().
type Handler func(ctx *Context, payload []byte) ([]byte, error)

// Context is passed to handlers.
type Context struct {
	p  *sim.Proc
	fn *Function
}

// Proc returns the simulation process executing this invocation; pass
// it to simulated storage services.
func (c *Context) Proc() *sim.Proc { return c.p }

// Busy consumes d of virtual compute time.
func (c *Context) Busy(d time.Duration) { c.p.Sleep(d) }

// FunctionName returns the executing function's name.
func (c *Context) FunctionName() string { return c.fn.cfg.Name }

// MemoryMB returns the configured memory size.
func (c *Context) MemoryMB() int { return c.fn.cfg.MemoryMB }

// Config describes one Lambda function.
type Config struct {
	Name string
	// MemoryMB is the configured memory; must be a multiple of the
	// platform's memory step (128 MB). Billing uses this value.
	MemoryMB int
	// ConsumedMemMB models the memory the function actually uses
	// (reported, not billed, on AWS).
	ConsumedMemMB int
	// CodeSizeMB is the deployment-package size; it lengthens cold
	// starts (Table II packages are 63–271 MB).
	CodeSizeMB float64
	// Timeout overrides the platform execution cap if smaller.
	Timeout time.Duration
	Handler Handler
}

// Invocation reports one completed invoke.
type Invocation struct {
	Output         []byte
	Cold           bool
	ColdStartDelay time.Duration
	// QueueDelay is time spent waiting for burst-concurrency capacity.
	QueueDelay time.Duration
	// ExecTime is handler wall time (billed after rounding).
	ExecTime time.Duration
	// Total is RTT + start + queue + exec.
	Total time.Duration
	Err   error
}

// Stats aggregates per-function invoke outcomes.
type Stats struct {
	Invokes    int64
	ColdStarts int64
	Errors     int64
	// ColdDelays holds each cold start's delay (for Fig 10/13).
	ColdDelays []time.Duration
}

// Function is a registered Lambda function. Container lifecycle —
// warm reuse, keep-alive expiry, cold-start stats — lives in the
// shared platform.Pool; this package keeps the per-request scaling
// policy (every invocation acquires its own container).
type Function struct {
	cfg   Config
	svc   *Service
	pool  platform.Pool
	slots *sim.Resource
	Meter platform.Meter
	stats Stats
}

// Stats returns a snapshot of invoke outcomes, merging the function's
// invoke counters with the container pool's cold-start statistics.
func (f *Function) Stats() Stats {
	s := f.stats
	ps := f.pool.Stats()
	s.ColdStarts = ps.ColdStarts
	s.ColdDelays = ps.ColdDelays
	return s
}

// Config returns the function's configuration.
func (f *Function) Config() Config { return f.cfg }

// WarmContainers returns how many idle warm containers exist now.
func (f *Function) WarmContainers(now sim.Time) int { return f.pool.WarmCount(now) }

// Service is the simulated Lambda control plane.
type Service struct {
	k      *sim.Kernel
	rng    *sim.RNG
	params platform.AWSParams
	fns    map[string]*Function
	// Logs, when non-nil, receives a CloudWatch-style record per
	// invocation, cold start, and error.
	Logs *trace.Collector
	// Tracer, when non-nil, emits X-Ray-style spans per invocation:
	// an invoke span wrapping queue/coldstart/exec child spans.
	Tracer *span.Tracer
	// Chaos, when non-nil, can fail invocations with transient errors,
	// kill the executing container mid-invoke (the warm container is
	// lost), or stretch execution past the configured timeout.
	Chaos *chaos.Injector
	// timeline, when non-nil, receives warm-pool occupancy gauges from
	// every function's container pool (pure observation).
	timeline *tseries.Series
}

// New creates a Lambda service with the given calibration parameters.
func New(k *sim.Kernel, params platform.AWSParams) *Service {
	return &Service{k: k, rng: k.Stream("aws/lambda"), params: params, fns: make(map[string]*Function)}
}

// Params returns the service's calibration parameters.
func (s *Service) Params() platform.AWSParams { return s.params }

// SetTimeline enables per-window warm-pool occupancy gauges on every
// registered function's container pool, existing and future.
func (s *Service) SetTimeline(tl *tseries.Series) {
	s.timeline = tl
	for _, f := range s.fns {
		f.pool.Timeline = tl
	}
}

// Register adds a function. It validates the memory configuration.
func (s *Service) Register(cfg Config) (*Function, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("lambda: function name required")
	}
	if _, dup := s.fns[cfg.Name]; dup {
		return nil, fmt.Errorf("lambda: function %q already registered", cfg.Name)
	}
	if cfg.MemoryMB <= 0 || cfg.MemoryMB%s.params.MemoryStepMB != 0 {
		return nil, fmt.Errorf("lambda: memory %d MB must be a positive multiple of %d", cfg.MemoryMB, s.params.MemoryStepMB)
	}
	if cfg.Handler == nil {
		return nil, fmt.Errorf("lambda: function %q has no handler", cfg.Name)
	}
	if cfg.ConsumedMemMB <= 0 {
		cfg.ConsumedMemMB = cfg.MemoryMB
	}
	if cfg.Timeout <= 0 || cfg.Timeout > s.params.TimeLimit {
		cfg.Timeout = s.params.TimeLimit
	}
	f := &Function{cfg: cfg, svc: s, slots: sim.NewResource(s.k, s.params.BurstConcurrency)}
	f.pool.KeepAlive = s.params.KeepAlive
	f.pool.Timeline = s.timeline
	s.fns[cfg.Name] = f
	return f, nil
}

// MustRegister is Register that panics on error, for tests and fixed
// deployment code.
func (s *Service) MustRegister(cfg Config) *Function {
	f, err := s.Register(cfg)
	if err != nil {
		panic(err)
	}
	return f
}

// Function returns a registered function by name.
func (s *Service) Function(name string) (*Function, bool) {
	f, ok := s.fns[name]
	return f, ok
}

// TimeoutError reports an execution that exceeded its time limit.
type TimeoutError struct {
	Function string
	Limit    time.Duration
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("lambda: %s timed out after %v", e.Function, e.Limit)
}

// PayloadTooLargeError reports an oversized synchronous payload.
type PayloadTooLargeError struct {
	Function string
	Size     int
	Limit    int
}

func (e *PayloadTooLargeError) Error() string {
	return fmt.Sprintf("lambda: payload for %s is %d bytes, limit %d", e.Function, e.Size, e.Limit)
}

// Invoke synchronously invokes a function from process p, blocking until
// the handler returns. Handler errors are reported in Invocation.Err
// (the Invocation still carries timing); infrastructure errors (unknown
// function, oversized payload) are returned as err.
func (s *Service) Invoke(p *sim.Proc, name string, payload []byte) (*Invocation, error) {
	f, ok := s.fns[name]
	if !ok {
		return nil, fmt.Errorf("lambda: no such function %q", name)
	}
	if s.params.PayloadLimit > 0 && len(payload) > s.params.PayloadLimit {
		return nil, &PayloadTooLargeError{Function: name, Size: len(payload), Limit: s.params.PayloadLimit}
	}
	start := p.Now()
	caller := p.TraceCtx
	invSpan := s.Tracer.Start(start, span.KindInvoke, "lambda/"+name, caller)
	invCtx := invSpan.Context()
	p.Sleep(s.params.InvokeRTT.Sample(s.rng))

	// Burst-concurrency admission.
	qStart := p.Now()
	f.slots.Acquire(p)
	queueDelay := p.Now() - qStart
	if queueDelay > 0 {
		s.Tracer.Emit(span.KindQueue, "lambda/admission/"+name, qStart, p.Now(), invCtx)
	}

	inv := &Invocation{QueueDelay: queueDelay}
	f.stats.Invokes++

	// Container acquisition: reuse a warm container or cold start.
	if _, ok := f.pool.TakeWarm(p.Now()); ok {
		p.Sleep(s.params.WarmStart.Sample(s.rng))
	} else {
		inv.Cold = true
		delay := s.params.ColdStartBase.Sample(s.rng)
		if s.params.CodeFetchBW > 0 {
			delay += time.Duration(f.cfg.CodeSizeMB * 1e6 / s.params.CodeFetchBW * float64(time.Second))
		}
		inv.ColdStartDelay = delay
		f.pool.RecordCold(delay)
		coldStart := p.Now()
		p.Sleep(delay)
		s.Tracer.Emit(span.KindCold, "lambda/cold/"+name, coldStart, p.Now(), invCtx)
	}

	var fault chaos.Fault
	faulted := false
	if s.Chaos != nil {
		fault, faulted = s.Chaos.Next(invCtx, "lambda", name)
	}

	execStart := p.Now()
	execSpan := s.Tracer.Start(execStart, span.KindExec, "lambda/exec/"+name, invCtx)
	crashed := false
	var out []byte
	var err error
	if faulted && (fault.Kind == chaos.TransientError || fault.Kind == chaos.Crash) {
		// The handler runs partially, then the error (or the container
		// death) cuts it short. Partial execution is still billed.
		p.Sleep(fault.Delay)
		err = &chaos.FaultError{Kind: fault.Kind, Component: "lambda", Name: name}
		crashed = fault.Kind == chaos.Crash
	} else {
		if faulted && fault.Kind == chaos.TimeoutSpike {
			// Runtime stall inside the execution window; may push the
			// invocation over its configured timeout below.
			p.Sleep(fault.Delay)
		}
		p.TraceCtx = execSpan.Context()
		out, err = f.cfg.Handler(&Context{p: p, fn: f}, payload)
		p.TraceCtx = caller
	}
	exec := p.Now() - execStart
	if exec > f.cfg.Timeout {
		exec = f.cfg.Timeout
		err = &TimeoutError{Function: name, Limit: f.cfg.Timeout}
		out = nil
	}
	// The exec span ends at the *billed* duration so span-derived
	// breakdowns agree with the meter (timeouts clamp both the same way).
	execSpan.End(execStart + exec)
	f.Meter.RecordAWS(exec, f.cfg.MemoryMB, f.cfg.ConsumedMemMB)

	// Return the container to the warm pool — unless it crashed, in
	// which case the next invocation pays a fresh cold start.
	if !crashed {
		f.pool.Release(p.Now())
	}
	f.slots.Release()

	inv.Output = out
	inv.Err = err
	if err != nil {
		f.stats.Errors++
	}
	inv.ExecTime = exec
	inv.Total = p.Now() - start
	if invSpan.Live() {
		attrs := []span.Attr{span.A("cold", boolStr(inv.Cold))}
		if err != nil {
			attrs = append(attrs, span.A("error", err.Error()))
		}
		invSpan.End(p.Now(), attrs...)
	}
	if s.Logs != nil {
		s.Logs.Invocation(p.Now(), name, exec)
		if inv.Cold {
			s.Logs.ColdStart(p.Now(), name, inv.ColdStartDelay)
		}
		if err != nil {
			s.Logs.Error(p.Now(), name, err.Error())
		}
	}
	return inv, nil
}

func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

// TotalMeter sums billing meters across all functions.
func (s *Service) TotalMeter() platform.Meter {
	// Sum in sorted name order: float accumulation must not depend on
	// map iteration order, or two identical campaigns can disagree in
	// the last ULP of the billed GB-s.
	names := make([]string, 0, len(s.fns))
	for name := range s.fns {
		names = append(names, name)
	}
	sort.Strings(names)
	var m platform.Meter
	for _, name := range names {
		m.Add(s.fns[name].Meter)
	}
	return m
}

// ResetMeters zeroes all function meters and stats (warm pools are kept).
func (s *Service) ResetMeters() {
	for _, f := range s.fns {
		f.Meter.Reset()
		f.stats = Stats{}
		f.pool.ResetStats()
	}
}
