package traffic

import (
	"testing"
	"time"

	"statebench/internal/platform"
	"statebench/internal/pricing"
	"statebench/internal/sim"
)

func perRequestCfg(shards int) Config {
	return Config{
		Tenants:  5000,
		Duration: 2 * time.Minute,
		Process:  Poisson{Rate: 400},
		Profile:  platform.DefaultAWS().Traffic(),
		Book:     pricing.DefaultAWS(),
		ExecTime: sim.LogNormalDist{Median: 60 * time.Millisecond, Sigma: 0.4, Max: 5 * time.Second},

		CodeSizeMB:      64,
		HotTenantShare:  0.1,
		HotTrafficShare: 0.9,
		Shards:          shards,
		Seed:            7,
	}
}

func instancePoolCfg(shards int) Config {
	return Config{
		Tenants:  500,
		Duration: 2 * time.Minute,
		Process: &MMPP2{
			BaseRate: 100, BurstRate: 900,
			BaseDwell: 20 * time.Second, BurstDwell: 5 * time.Second,
		},
		Profile:  platform.DefaultAzure().Traffic(),
		Book:     pricing.DefaultAzure(),
		ExecTime: sim.LogNormalDist{Median: 150 * time.Millisecond, Sigma: 0.4, Max: 5 * time.Second},

		HotTenantShare:  0.1,
		HotTrafficShare: 0.9,
		Shards:          shards,
		Seed:            11,
	}
}

// results must be byte-identical at every shard count: same counters,
// same histograms bucket for bucket, same bill.
func assertIdentical(t *testing.T, ref, got *Result, label string) {
	t.Helper()
	if got.Arrivals != ref.Arrivals || got.Completions != ref.Completions ||
		got.ColdStarts != ref.ColdStarts || got.SimEnd != ref.SimEnd {
		t.Fatalf("%s: counters diverge: %+v vs %+v", label, got, ref)
	}
	if got.PeakBacklog != ref.PeakBacklog || got.MeanBacklog != ref.MeanBacklog ||
		got.PeakInFlight != ref.PeakInFlight {
		t.Fatalf("%s: backlog stats diverge", label)
	}
	if got.TotalBill != ref.TotalBill || got.BilledTenants != ref.BilledTenants {
		t.Fatalf("%s: bill diverges: %v vs %v", label, got.TotalBill, ref.TotalBill)
	}
	hists := []struct {
		name     string
		got, ref interface {
			Count() uint64
			Sum() time.Duration
			Quantile(float64) time.Duration
		}
	}{
		{"E2E", &got.E2E, &ref.E2E},
		{"ColdWait", &got.ColdWait, &ref.ColdWait},
		{"QueueWait", &got.QueueWait, &ref.QueueWait},
		{"TenantCost", &got.TenantCost, &ref.TenantCost},
	}
	for _, h := range hists {
		if h.got.Count() != h.ref.Count() || h.got.Sum() != h.ref.Sum() {
			t.Fatalf("%s: %s count/sum diverge", label, h.name)
		}
		for _, q := range []float64{0.5, 0.99, 0.999} {
			if h.got.Quantile(q) != h.ref.Quantile(q) {
				t.Fatalf("%s: %s q%v = %v, want %v", label, h.name, q, h.got.Quantile(q), h.ref.Quantile(q))
			}
		}
	}
}

// TestRunShardInvariance is the engine-level half of the determinism
// gate: the full open-loop result — both serving styles — is
// byte-identical at shard counts {1, 4, 16}.
func TestRunShardInvariance(t *testing.T) {
	for name, mk := range map[string]func(int) Config{
		"per-request":   perRequestCfg,
		"instance-pool": instancePoolCfg,
	} {
		ref := Run(mk(1))
		if ref.Arrivals == 0 || ref.Completions != ref.Arrivals {
			t.Fatalf("%s: bad reference run: %+v", name, ref)
		}
		for _, shards := range []int{4, 16} {
			got := Run(mk(shards))
			assertIdentical(t, ref, got, name)
		}
	}
}

// TestRunReproducible: same config, same seed, same result.
func TestRunReproducible(t *testing.T) {
	a, b := Run(perRequestCfg(4)), Run(perRequestCfg(4))
	assertIdentical(t, a, b, "rerun")
	c := Run(perRequestCfg(4))
	c2 := perRequestCfg(4)
	c2.Seed++
	d := Run(c2)
	if c.Arrivals == d.Arrivals && c.E2E.Sum() == d.E2E.Sum() {
		t.Fatal("different seeds produced identical runs")
	}
}

// TestPerRequestColdWarm checks the warm-entry model: a hot single
// tenant reuses containers (low cold rate), a cold sparse population
// pays cold starts nearly every time.
func TestPerRequestColdWarm(t *testing.T) {
	hot := perRequestCfg(1)
	hot.Tenants = 1
	hot.HotTenantShare = 0
	hot.Process = Poisson{Rate: 50}
	r := Run(hot)
	if r.Completions != r.Arrivals || r.Arrivals == 0 {
		t.Fatalf("conservation broken: %+v", r)
	}
	if rate := r.ColdRate(); rate > 0.05 {
		t.Fatalf("single hot tenant cold rate = %.3f, want near 0", rate)
	}
	// E2E must sit above exec alone (RTT + entry overhead).
	if r.E2E.Median() < 60*time.Millisecond {
		t.Fatalf("median E2E %v below exec median", r.E2E.Median())
	}

	sparse := perRequestCfg(1)
	sparse.Tenants = 200000
	sparse.Process = Poisson{Rate: 50}
	sparse.Duration = time.Minute
	sparse.HotTenantShare = 0 // uniform: each tenant sees ~one request
	r2 := Run(sparse)
	if rate := r2.ColdRate(); rate < 0.9 {
		t.Fatalf("sparse population cold rate = %.3f, want near 1", rate)
	}
	if r2.ColdWait.Count() != r2.ColdStarts {
		t.Fatalf("cold hist count %d != cold starts %d", r2.ColdWait.Count(), r2.ColdStarts)
	}
}

// TestInstancePoolBacklog checks the rate-limited scale controller:
// bursty load on a cold app queues (backlog, queue waits), instances
// come up over multiple evaluations, and everything drains.
func TestInstancePoolBacklog(t *testing.T) {
	r := Run(instancePoolCfg(1))
	if r.Completions != r.Arrivals || r.Arrivals == 0 {
		t.Fatalf("conservation broken: arrivals=%d completions=%d", r.Arrivals, r.Completions)
	}
	if r.PeakBacklog == 0 {
		t.Fatal("bursty load never built scale-controller backlog")
	}
	if r.QueueWait.Count() != r.Completions {
		t.Fatalf("queue-wait hist %d entries, want %d", r.QueueWait.Count(), r.Completions)
	}
	// Scheduling delay must show the controller's rate limit: p99 well
	// above the p50 (most requests dispatch immediately once scaled).
	if r.QueueWait.P99() < r.QueueWait.Median() {
		t.Fatal("queue wait distribution degenerate")
	}
	if r.ColdStarts == 0 {
		t.Fatal("no instance starts recorded")
	}
	if r.MeanBacklog <= 0 {
		t.Fatalf("mean backlog = %v, want > 0", r.MeanBacklog)
	}
}

// TestBilling checks per-tenant billing: only active tenants billed,
// totals positive, per-tenant cost distribution populated, and the
// hot set visible in the cost tail.
func TestBilling(t *testing.T) {
	r := Run(perRequestCfg(1))
	if r.BilledTenants == 0 || r.BilledTenants > 5000 {
		t.Fatalf("billed tenants = %d", r.BilledTenants)
	}
	if uint64(r.TenantCost.Count()) != uint64(r.BilledTenants) {
		t.Fatalf("cost hist %d entries, want %d", r.TenantCost.Count(), r.BilledTenants)
	}
	if r.TotalBill.Total() <= 0 {
		t.Fatalf("total bill = %v", r.TotalBill)
	}
	// Hot tenants carry ~90% of traffic across 10% of the population:
	// the p99 tenant must cost well above the median tenant.
	if r.TenantCost.P99() < 2*r.TenantCost.Median() {
		t.Fatalf("cost skew missing: p99 %v median %v", r.TenantCost.P99(), r.TenantCost.Median())
	}
	nb := perRequestCfg(1)
	nb.Book = nil
	r2 := Run(nb)
	if r2.BilledTenants != 0 || r2.TotalBill.Total() != 0 {
		t.Fatal("nil book still billed")
	}
}

// TestArenaBounded checks the perf contract behind the arenas: record
// storage is bounded by peak concurrency, not arrivals.
func TestArenaBounded(t *testing.T) {
	cfg := perRequestCfg(1)
	cfg.Duration = time.Minute
	r := Run(cfg)
	if r.PeakInFlight <= 0 {
		t.Fatal("no in-flight tracking")
	}
	if uint64(r.PeakInFlight) >= r.Arrivals {
		t.Fatalf("peak in-flight %d not bounded below arrivals %d", r.PeakInFlight, r.Arrivals)
	}
}
