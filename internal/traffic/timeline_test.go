package traffic

import (
	"bytes"
	"testing"
	"time"

	"statebench/internal/obs/tseries"
	"statebench/internal/sim"
)

func timelineCSV(t *testing.T, cfg Config) string {
	t.Helper()
	cfg.Timeline = tseries.New(0)
	Run(cfg)
	var buf bytes.Buffer
	if err := cfg.Timeline.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestTimelineShardInvariance is the engine-level half of the windowed
// determinism gate: the per-window CSV — counters, gauges, and every
// histogram quantile column — is byte-identical at kernel shard counts
// {1, 4, 16} for both serving styles.
func TestTimelineShardInvariance(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  func(shards int) Config
	}{
		{"per-request", perRequestCfg},
		{"instance-pool", instancePoolCfg},
	} {
		ref := timelineCSV(t, tc.cfg(1))
		if len(ref) < 100 {
			t.Fatalf("%s: suspiciously empty timeline:\n%s", tc.name, ref)
		}
		for _, shards := range []int{4, 16} {
			if got := timelineCSV(t, tc.cfg(shards)); got != ref {
				t.Fatalf("%s: timeline CSV diverged at %d shards", tc.name, shards)
			}
		}
	}
}

// The engine must book observable occupancy: a bursty instance-pool
// run shows backlog (queue depth) and warm-pool gauges, and totals
// that agree with the engine's own result counters.
func TestTimelineContents(t *testing.T) {
	cfg := instancePoolCfg(4)
	tl := tseries.New(0)
	cfg.Timeline = tl
	res := Run(cfg)
	arr, comp, colds, _ := tl.Totals()
	if arr != res.Arrivals || comp != res.Completions || colds != res.ColdStarts {
		t.Fatalf("timeline totals %d/%d/%d disagree with result %d/%d/%d",
			arr, comp, colds, res.Arrivals, res.Completions, res.ColdStarts)
	}
	var peakQ, peakW int64
	for _, idx := range tl.Indices() {
		w := tl.At(idx)
		if w.QueueDepth > peakQ {
			peakQ = w.QueueDepth
		}
		if w.WarmPool > peakW {
			peakW = w.WarmPool
		}
	}
	if peakQ == 0 || peakW == 0 {
		t.Fatalf("gauges never observed: peak queue %d, peak warm %d", peakQ, peakW)
	}
	// The timeline gauge is the total backlog across tenants; the
	// engine's PeakBacklog is the worst single tenant's — total can
	// never be below it.
	if peakQ < int64(res.PeakBacklog) {
		t.Fatalf("windowed total backlog peak %d below per-tenant peak %d", peakQ, res.PeakBacklog)
	}
}

// OnWindow fires at window boundaries in virtual-time order and — being
// a passive tick listener — must not change the run's results.
func TestTimelineOnWindowPassive(t *testing.T) {
	base := Run(instancePoolCfg(4))

	cfg := instancePoolCfg(4)
	cfg.Timeline = tseries.New(0)
	var boundaries []sim.Time
	cfg.OnWindow = func(b sim.Time) { boundaries = append(boundaries, b) }
	got := Run(cfg)

	assertIdentical(t, base, got, "with OnWindow")
	if len(boundaries) == 0 {
		t.Fatal("OnWindow never fired")
	}
	for i := 1; i < len(boundaries); i++ {
		if boundaries[i] <= boundaries[i-1] {
			t.Fatalf("boundaries not increasing: %v", boundaries)
		}
		if boundaries[i]%cfg.Timeline.Interval() != 0 {
			t.Fatalf("boundary %v not a window multiple", boundaries[i])
		}
	}
}

// A disabled (nil) timeline leaves results identical to an enabled one
// — telemetry observes, never steers.
func TestTimelineObservationOnly(t *testing.T) {
	plain := Run(perRequestCfg(4))
	cfg := perRequestCfg(4)
	cfg.Timeline = tseries.New(time.Second)
	instrumented := Run(cfg)
	assertIdentical(t, plain, instrumented, "timeline on vs off")
}
