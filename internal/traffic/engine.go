package traffic

import (
	"fmt"
	"time"

	"statebench/internal/obs"
	"statebench/internal/obs/tseries"
	"statebench/internal/platform"
	"statebench/internal/pricing"
	"statebench/internal/sim"
)

// Config parameterizes one open-loop run against one provider.
type Config struct {
	// Tenants is the simulated tenant population. Each tenant is an
	// isolated function app: its own warm-container pool or instance
	// pool, its own bill.
	Tenants int
	// Duration is the arrival window; the run then drains in-flight
	// work to completion.
	Duration sim.Time
	// Process generates the aggregate arrival stream. Per-tenant
	// streams are not simulated individually: the superposition of the
	// population's independent Poisson streams is itself Poisson (and
	// analogously for the modulated variants), so arrivals are drawn
	// from one aggregate process and attributed to tenants by sampling
	// the population mix at each arrival.
	Process ArrivalProcess
	// HotTenantShare/HotTrafficShare skew the attribution: the first
	// HotTenantShare of the population receives HotTrafficShare of the
	// traffic (defaults 0.1/0.9 — the usual "10% of tenants are 90% of
	// load"). Zero values mean uniform attribution.
	HotTenantShare  float64
	HotTrafficShare float64
	// Profile is the provider's serving-model calibration, from the
	// registry's ProviderSpec.Traffic.
	Profile platform.TrafficProfile
	// Book prices each tenant's usage; nil skips billing.
	Book pricing.Book
	// ExecTime is the handler execution-time distribution.
	ExecTime sim.Dist
	// CodeSizeMB adds deployment-package fetch time to per-request
	// cold starts (profile.CodeFetchBW).
	CodeSizeMB float64
	// Shards is the kernel's event-partition count (0 = 1). Any value
	// produces byte-identical results; more shards keep the per-heap
	// working set cache-sized under millions of pending events.
	Shards int
	// Seed drives every RNG stream of the run.
	Seed uint64

	// Timeline, when non-nil, receives per-window telemetry: arrivals,
	// completions, cold starts (attributed at the provisioning
	// decision), scheduling delays at dispatch, and population-wide
	// backlog / warm-capacity max-gauges maintained incrementally (O(1)
	// per event, never an O(Tenants) scan). Recording is pure
	// observation — no events, no RNG draws — so results are
	// byte-identical with it on or off, and the series itself is
	// byte-identical at any shard count.
	Timeline *tseries.Series
	// OnWindow, when non-nil (requires Timeline), is invoked by the run
	// loop each time the virtual clock crosses a Timeline window
	// boundary, with the boundary just crossed. It runs outside the
	// event order (no sequence numbers are drawn) and must not mutate
	// simulation state; it exists for wall-clock side effects like
	// publishing a snapshot to a live endpoint.
	OnWindow func(boundary sim.Time)
}

// Result is the outcome of one open-loop run. All latency aggregates
// are streaming histograms (constant memory at any arrival count) and
// are byte-identical for every shard count and worker layout.
type Result struct {
	Cloud   string
	Style   platform.ServeStyle
	Process string

	Arrivals    uint64
	Completions uint64
	Events      uint64 // kernel events executed
	SimEnd      sim.Time

	// E2E is arrival-to-completion latency (including invoke RTT).
	E2E obs.Hist
	// ColdWait is the provisioning delay paid by cold invocations
	// (per-request style) or instance starts (instance-pool style).
	ColdWait   obs.Hist
	ColdStarts uint64
	// QueueWait is the scheduling delay between arrival and dispatch
	// onto an instance (instance-pool style; zero for immediate
	// dispatch).
	QueueWait obs.Hist

	// PeakBacklog is the scale controller's worst queue depth across
	// the run; MeanBacklog averages the depth seen at controller
	// evaluations. Both are zero for per-request providers.
	PeakBacklog  int
	MeanBacklog  float64
	PeakInFlight int

	// TotalBill is the summed bill across tenants; TenantCost is the
	// per-tenant cost distribution in nano-USD (1e9 units = $1),
	// recorded only for tenants that sent traffic.
	TotalBill     pricing.Bill
	TenantCost    obs.Hist
	BilledTenants int
}

// EventsPerSecond is unavailable from the Result itself (virtual runs
// have no wall time); callers time Run and divide by Events.

// rec is one in-flight invocation, pooled in a sim.Arena. fire is the
// completion-event closure, allocated once per arena slot and reused
// across every invocation that recycles the slot — steady-state, the
// engine schedules hundreds of millions of completions without
// allocating per event.
type rec struct {
	tenant int32
	next   int32 // backlog chain link (instance-pool style)
	start  sim.Time
	rtt    sim.Time
	exec   sim.Time
	cold   bool
	fire   func()
}

// tev is a per-tenant control event (scale evaluation, instance
// start completion, idle reap), pooled like rec. Control events are
// demand-driven: a tenant has controller events in flight only while
// it has work, so a million mostly-idle tenants cost no standing
// timer load.
type tev struct {
	tenant int32
	kind   uint8
	fire   func()
}

const (
	tevScaleEval = iota
	tevInstanceUp
	tevReap
)

// tenant state flag bits (ctrl array).
const (
	ctrlArmed = 1 << iota
	reapArmed
)

const noRec = int32(-1)

// engine is one run's state. Per-tenant state is structure-of-arrays:
// a few dozen bytes per tenant, no per-tenant heap objects, so a
// million tenants fit in tens of MB and the records that do churn
// (in-flight invocations, control events) live in arenas bounded by
// peak concurrency, not throughput.
type engine struct {
	cfg Config
	k   *sim.Kernel
	res *Result

	arrRNG *sim.RNG // arrival process + tenant attribution
	svcRNG *sim.RNG // service-side draws (RTT, cold, exec)

	hot int // tenants in the hot set

	// Per-request (warm-entry) style, mirroring platform.Pool's
	// warm-lease semantics in compact form: warmCnt idle containers,
	// all conservatively sharing the newest lease expiry. Per-tenant
	// arrival gaps at population scale are long relative to lease
	// spread, so collapsing the expiry ladder to its newest rung is a
	// sub-percent approximation (see DESIGN.md §11).
	warmCnt []uint16
	warmExp []sim.Time

	// Instance-pool style.
	ready    []uint16
	starting []uint16
	busy     []uint16
	backlogN []uint32
	blHead   []int32
	blTail   []int32
	ctrl     []uint8
	lastIdle []sim.Time

	// Billing accumulators.
	execNano []int64
	reqCnt   []uint32

	recs sim.Arena[rec]
	tevs sim.Arena[tev]

	inFlight     int
	backlogEvals uint64
	backlogSum   uint64

	coldFetch sim.Time // per-request code-fetch addend

	// Windowed-telemetry state. tl aliases cfg.Timeline (nil when
	// disabled; every record method is nil-safe). totBacklog/totWarm are
	// population-wide running totals — queued records and live warm
	// containers (per-request) or ready instances (instance-pool) —
	// maintained incrementally at the places the per-tenant counters
	// change, so gauge observation is O(1) per event. totWarm counts
	// not-known-expired warm leases: lazily-expired containers are
	// subtracted only when their tenant's next cold start discovers
	// them, the same approximation the serving model itself makes.
	tl         *tseries.Series
	totBacklog int64
	totWarm    int64
}

// Run executes one open-loop run to completion and returns its result.
func Run(cfg Config) *Result {
	if cfg.Tenants < 1 {
		cfg.Tenants = 1
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Process == nil {
		cfg.Process = Poisson{Rate: 100}
	}
	if cfg.ExecTime == nil {
		cfg.ExecTime = sim.LogNormalDist{Median: 80 * time.Millisecond, Sigma: 0.5, Max: 10 * time.Second}
	}
	if cfg.HotTenantShare <= 0 || cfg.HotTenantShare >= 1 || cfg.HotTrafficShare <= 0 {
		cfg.HotTenantShare, cfg.HotTrafficShare = 1, 1
	}

	k := sim.NewKernelSharded(cfg.Seed, cfg.Shards)
	e := &engine{
		cfg: cfg,
		k:   k,
		res: &Result{Style: cfg.Profile.Style, Process: cfg.Process.String()},

		arrRNG: k.Stream("traffic.arrivals"),
		svcRNG: k.Stream("traffic.service"),

		execNano: make([]int64, cfg.Tenants),
		reqCnt:   make([]uint32, cfg.Tenants),

		tl: cfg.Timeline,
	}
	if cfg.Timeline.Enabled() && cfg.OnWindow != nil {
		k.SetTickListener(cfg.Timeline.Interval(), cfg.OnWindow)
	}
	e.hot = int(cfg.HotTenantShare * float64(cfg.Tenants))
	if e.hot < 1 {
		e.hot = 1
	}
	if cfg.Profile.CodeFetchBW > 0 {
		e.coldFetch = sim.Time(cfg.CodeSizeMB * 1e6 / cfg.Profile.CodeFetchBW * 1e9)
	}
	switch cfg.Profile.Style {
	case platform.ServePerRequest:
		e.warmCnt = make([]uint16, cfg.Tenants)
		e.warmExp = make([]sim.Time, cfg.Tenants)
	case platform.ServeInstancePool:
		e.ready = make([]uint16, cfg.Tenants)
		e.starting = make([]uint16, cfg.Tenants)
		e.busy = make([]uint16, cfg.Tenants)
		e.backlogN = make([]uint32, cfg.Tenants)
		e.blHead = make([]int32, cfg.Tenants)
		e.blTail = make([]int32, cfg.Tenants)
		e.ctrl = make([]uint8, cfg.Tenants)
		e.lastIdle = make([]sim.Time, cfg.Tenants)
		for i := range e.blHead {
			e.blHead[i] = noRec
		}
	}

	// The arrival chain: one self-rescheduling event generates the
	// whole stream; no arrivals are scheduled past Duration, so the
	// run drains naturally.
	var arrive func()
	arrive = func() {
		e.arrival()
		if next := cfg.Process.Next(e.arrRNG, k.Now()); next < cfg.Duration {
			k.AtKeyed(^uint64(0), next, arrive)
		}
	}
	if first := cfg.Process.Next(e.arrRNG, 0); first < cfg.Duration {
		k.AtKeyed(^uint64(0), first, arrive)
	}

	e.res.SimEnd = k.Run()
	e.res.Events = k.Executed()
	if e.backlogEvals > 0 {
		e.res.MeanBacklog = float64(e.backlogSum) / float64(e.backlogEvals)
	}
	e.bill()
	return e.res
}

// sampleTenant attributes an arrival: hot-set tenants get
// HotTrafficShare of the stream.
func (e *engine) sampleTenant() int32 {
	n := e.cfg.Tenants
	if e.hot >= n {
		return int32(e.arrRNG.Intn(n))
	}
	if e.arrRNG.Float64() < e.cfg.HotTrafficShare {
		return int32(e.arrRNG.Intn(e.hot))
	}
	return int32(e.hot + e.arrRNG.Intn(n-e.hot))
}

// alloc takes an invocation record, installing the slot's completion
// closure on first use.
func (e *engine) alloc() (int32, *rec) {
	h, r := e.recs.Alloc()
	if r.fire == nil {
		hh := h
		r.fire = func() { e.complete(hh) }
	}
	r.next = noRec
	return h, r
}

// arrival admits one invocation at the current instant.
func (e *engine) arrival() {
	t := e.sampleTenant()
	e.reqCnt[t]++
	e.res.Arrivals++
	now := e.k.Now()
	e.tl.AddArrival(now)

	h, r := e.alloc()
	r.tenant = t
	r.start = now
	r.rtt = e.cfg.Profile.InvokeRTT.Sample(e.svcRNG)
	r.exec = e.cfg.ExecTime.Sample(e.svcRNG)
	r.cold = false
	e.inFlight++
	if e.inFlight > e.res.PeakInFlight {
		e.res.PeakInFlight = e.inFlight
	}

	if e.cfg.Profile.Style == platform.ServePerRequest {
		var entry sim.Time
		if e.warmCnt[t] > 0 && e.warmExp[t] > now {
			e.warmCnt[t]--
			e.totWarm--
			entry = e.cfg.Profile.WarmStart.Sample(e.svcRNG)
		} else {
			r.cold = true
			e.totWarm -= int64(e.warmCnt[t]) // lazily-expired leases surface here
			e.warmCnt[t] = 0
			e.res.ColdStarts++
			entry = e.cfg.Profile.ColdStart.Sample(e.svcRNG) + e.coldFetch
			e.res.ColdWait.Record(entry)
			e.tl.AddCold(now, entry)
		}
		e.k.AtKeyed(uint64(t), now+r.rtt+entry+r.exec, r.fire)
		return
	}

	// Instance-pool: dispatch onto a ready instance or queue for the
	// scale controller.
	if int(e.busy[t]) < int(e.ready[t])*e.cfg.Profile.ConcurrencyPerInstance {
		e.dispatch(r)
		return
	}
	if e.blHead[t] == noRec {
		e.blHead[t] = h
	} else {
		e.recs.At(e.blTail[t]).next = h
	}
	e.blTail[t] = h
	e.backlogN[t]++
	if int(e.backlogN[t]) > e.res.PeakBacklog {
		e.res.PeakBacklog = int(e.backlogN[t])
	}
	e.totBacklog++
	e.tl.ObserveQueueDepth(now, e.totBacklog)
	if e.ctrl[t]&ctrlArmed == 0 {
		e.ctrl[t] |= ctrlArmed
		e.armTev(t, tevScaleEval, e.cfg.Profile.ScaleEvalInterval)
	}
}

// dispatch starts an execution on the tenant's instance pool: the
// completion carries the queueing delay accrued so far.
func (e *engine) dispatch(r *rec) {
	t := r.tenant
	now := e.k.Now()
	e.busy[t]++
	e.res.QueueWait.Record(now - r.start)
	e.tl.AddSched(now, now-r.start)
	disp := e.cfg.Profile.WarmStart.Sample(e.svcRNG)
	e.k.AtKeyed(uint64(t), now+disp+r.exec, r.fire)
}

// complete finishes an invocation: streaming aggregation, billing
// accumulators, and container-lifecycle bookkeeping.
func (e *engine) complete(h int32) {
	r := e.recs.At(h)
	t := r.tenant
	now := e.k.Now()
	e.res.Completions++
	e.res.E2E.Record(now - r.start + r.rtt)
	e.tl.AddCompletion(now, now-r.start+r.rtt)
	e.execNano[t] += int64(r.exec)
	e.inFlight--

	switch e.cfg.Profile.Style {
	case platform.ServePerRequest:
		if e.warmCnt[t] < ^uint16(0) {
			e.warmCnt[t]++
			e.totWarm++
			e.tl.ObserveWarmPool(now, e.totWarm)
		}
		e.warmExp[t] = now + e.cfg.Profile.KeepAlive
		e.recs.Free(h)
	case platform.ServeInstancePool:
		e.busy[t]--
		e.recs.Free(h)
		if qh := e.blHead[t]; qh != noRec {
			qr := e.recs.At(qh)
			e.blHead[t] = qr.next
			if e.blHead[t] == noRec {
				e.blTail[t] = noRec
			}
			e.backlogN[t]--
			e.totBacklog--
			e.dispatch(qr)
		} else if e.busy[t] == 0 {
			e.lastIdle[t] = now
			if e.ready[t] > 0 && e.ctrl[t]&reapArmed == 0 {
				e.ctrl[t] |= reapArmed
				e.armTev(t, tevReap, e.cfg.Profile.IdleInstanceTimeout)
			}
		}
	}
}

// armTev schedules a per-tenant control event after d.
func (e *engine) armTev(t int32, kind uint8, d sim.Time) {
	h, ev := e.tevs.Alloc()
	if ev.fire == nil {
		hh := h
		ev.fire = func() { e.control(hh) }
	}
	ev.tenant = t
	ev.kind = kind
	e.k.AtKeyed(uint64(t), e.k.Now()+d, ev.fire)
}

// control runs one per-tenant control event.
func (e *engine) control(h int32) {
	ev := e.tevs.At(h)
	t, kind := ev.tenant, ev.kind
	e.tevs.Free(h)
	p := &e.cfg.Profile
	switch kind {
	case tevScaleEval:
		// The consumption-plan controller: every ScaleEvalInterval,
		// add at most ScaleOutStep instances while work is queued —
		// the rate limit behind the paper's Fig 14 scheduling delays.
		e.backlogEvals++
		e.backlogSum += uint64(e.backlogN[t])
		if e.backlogN[t] > 0 && int(e.ready[t])+int(e.starting[t]) < p.MaxInstances {
			add := p.ScaleOutStep
			if room := p.MaxInstances - int(e.ready[t]) - int(e.starting[t]); add > room {
				add = room
			}
			for i := 0; i < add; i++ {
				e.starting[t]++
				e.res.ColdStarts++
				up := p.ColdStart.Sample(e.svcRNG)
				e.res.ColdWait.Record(up)
				e.tl.AddCold(e.k.Now(), up)
				e.armTev(t, tevInstanceUp, up)
			}
		}
		if e.backlogN[t] > 0 || e.starting[t] > 0 {
			e.armTev(t, tevScaleEval, p.ScaleEvalInterval)
		} else {
			e.ctrl[t] &^= ctrlArmed
		}
	case tevInstanceUp:
		e.starting[t]--
		e.ready[t]++
		e.totWarm++
		e.tl.ObserveWarmPool(e.k.Now(), e.totWarm)
		for int(e.busy[t]) < int(e.ready[t])*p.ConcurrencyPerInstance && e.blHead[t] != noRec {
			qh := e.blHead[t]
			qr := e.recs.At(qh)
			e.blHead[t] = qr.next
			if e.blHead[t] == noRec {
				e.blTail[t] = noRec
			}
			e.backlogN[t]--
			e.totBacklog--
			e.dispatch(qr)
		}
		if e.busy[t] == 0 && e.blHead[t] == noRec {
			e.lastIdle[t] = e.k.Now()
			if e.ctrl[t]&reapArmed == 0 {
				e.ctrl[t] |= reapArmed
				e.armTev(t, tevReap, p.IdleInstanceTimeout)
			}
		}
	case tevReap:
		// Idle eviction: if the tenant has stayed idle the full
		// timeout, the platform reclaims its instances; otherwise
		// re-check when the current idle stretch would mature.
		if e.busy[t] == 0 && e.backlogN[t] == 0 && e.starting[t] == 0 {
			idleFor := e.k.Now() - e.lastIdle[t]
			if idleFor >= p.IdleInstanceTimeout {
				e.totWarm -= int64(e.ready[t])
				e.ready[t] = 0
				e.ctrl[t] &^= reapArmed
				return
			}
			e.armTev(t, tevReap, p.IdleInstanceTimeout-idleFor)
			return
		}
		e.ctrl[t] &^= reapArmed
	}
}

// bill prices every active tenant's accumulated usage and fills the
// cost aggregates. Iteration is in tenant order, so the float sums are
// deterministic.
func (e *engine) bill() {
	if e.cfg.Book == nil {
		return
	}
	memGB := float64(e.cfg.Profile.MemoryMB) / 1024
	for t := 0; t < e.cfg.Tenants; t++ {
		if e.reqCnt[t] == 0 {
			continue
		}
		execSec := float64(e.execNano[t]) / 1e9
		b := e.cfg.Book.Bill(pricing.Usage{
			GBs:      execSec * memGB,
			Requests: int64(e.reqCnt[t]),
			Exec:     time.Duration(e.execNano[t]),
		})
		e.res.TotalBill = e.res.TotalBill.Add(b)
		e.res.BilledTenants++
		e.res.TenantCost.Record(time.Duration(b.Total() * 1e9))
	}
}

// ColdRate returns cold starts as a fraction of arrivals.
func (r *Result) ColdRate() float64 {
	if r.Arrivals == 0 {
		return 0
	}
	return float64(r.ColdStarts) / float64(r.Arrivals)
}

// String summarizes the run for debugging.
func (r *Result) String() string {
	return fmt.Sprintf("traffic{%s %s arrivals=%d events=%d p99=%v cold=%.2f%%}",
		r.Cloud, r.Process, r.Arrivals, r.Events, r.E2E.P99(), 100*r.ColdRate())
}
