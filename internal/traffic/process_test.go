package traffic

import (
	"math"
	"testing"
	"time"

	"statebench/internal/sim"
)

// drawN collects n arrivals from a process starting at t=0.
func drawN(p ArrivalProcess, seed uint64, n int) []sim.Time {
	rng := sim.NewRNG(seed)
	out := make([]sim.Time, n)
	t := sim.Time(0)
	for i := range out {
		t = p.Next(rng, t)
		out[i] = t
	}
	return out
}

// observedRate returns arrivals/sec over the drawn horizon.
func observedRate(ts []sim.Time) float64 {
	if len(ts) == 0 || ts[len(ts)-1] == 0 {
		return 0
	}
	return float64(len(ts)) / ts[len(ts)-1].Seconds()
}

func TestPoissonRate(t *testing.T) {
	p := Poisson{Rate: 250}
	got := observedRate(drawN(p, 3, 100000))
	if math.Abs(got-250)/250 > 0.02 {
		t.Fatalf("observed rate %.1f/s, want ~250/s", got)
	}
	if p.MeanRate() != 250 {
		t.Fatalf("MeanRate = %v", p.MeanRate())
	}
	// Arrivals are strictly ordered.
	ts := drawN(p, 4, 1000)
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			t.Fatalf("arrival %d not after predecessor", i)
		}
	}
}

func TestMMPPRateAndBursts(t *testing.T) {
	// Short dwells so the horizon spans thousands of modulation cycles
	// — the rate estimate converges per-cycle, not per-arrival.
	m := &MMPP2{BaseRate: 50, BurstRate: 500, BaseDwell: 3 * time.Second, BurstDwell: time.Second}
	want := m.MeanRate()
	if math.Abs(want-162.5) > 1e-9 {
		t.Fatalf("MeanRate = %v, want 162.5", want)
	}
	ts := drawN(m, 5, 500000)
	got := observedRate(ts)
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("observed rate %.1f/s, want ~%.1f/s", got, want)
	}
	// Burstiness: the interarrival distribution must be overdispersed
	// relative to Poisson (cv² > 1).
	var sum, sq float64
	for i := 1; i < len(ts); i++ {
		g := float64(ts[i] - ts[i-1])
		sum += g
		sq += g * g
	}
	n := float64(len(ts) - 1)
	mean := sum / n
	cv2 := (sq/n - mean*mean) / (mean * mean)
	if cv2 < 1.2 {
		t.Fatalf("cv² = %.2f, want overdispersed (> 1.2)", cv2)
	}
}

func TestDiurnalModulation(t *testing.T) {
	period := 10 * time.Minute
	d := Diurnal{Base: 200, Amp: 0.8, Period: period}
	ts := drawN(d, 6, 400000)
	// The mean only holds over whole periods: measure across the first
	// two full cycles.
	horizon := sim.Time(2 * period)
	inHorizon := 0
	for _, at := range ts {
		if at >= horizon {
			break
		}
		inHorizon++
	}
	if got := float64(inHorizon) / horizon.Seconds(); math.Abs(got-200)/200 > 0.05 {
		t.Fatalf("mean rate %.1f/s over full periods, want ~200/s", got)
	}
	// Quarter-cycle around the sinusoid peak (t = period/4) vs the
	// trough (t = 3·period/4) of the first cycle: with Amp 0.8 the
	// expected ratio is ~6×.
	p := sim.Time(period)
	var peak, trough int
	for _, at := range ts {
		if at >= p {
			break
		}
		switch {
		case at >= p/8 && at < 3*p/8:
			peak++
		case at >= 5*p/8 && at < 7*p/8:
			trough++
		}
	}
	if peak < 3*trough || trough == 0 {
		t.Fatalf("diurnal peak/trough = %d/%d, want strong modulation", peak, trough)
	}
}

// TestProcessDeterminism: the same seed replays the same stream.
func TestProcessDeterminism(t *testing.T) {
	procs := []func() ArrivalProcess{
		func() ArrivalProcess { return Poisson{Rate: 100} },
		func() ArrivalProcess {
			return &MMPP2{BaseRate: 50, BurstRate: 400, BaseDwell: 10 * time.Second, BurstDwell: 2 * time.Second}
		},
		func() ArrivalProcess { return Diurnal{Base: 100, Amp: 0.5, Period: 10 * time.Minute} },
	}
	for _, mk := range procs {
		a := drawN(mk(), 9, 5000)
		b := drawN(mk(), 9, 5000)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: stream diverges at %d", mk().String(), i)
			}
		}
	}
}
