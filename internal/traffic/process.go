// Package traffic is the open-loop load layer of the study: arrival
// processes over millions of simulated tenants driving the registered
// providers' serving models through the sim kernel. Closed-loop
// campaigns (core.Measure) fire an invocation and wait for it;
// open-loop traffic keeps arriving whether or not the platform keeps
// up, which is the regime where the paper's scheduling-delay anomalies
// (Fig 10/14) actually emerge.
//
// The package splits into the arrival side (this file: Poisson, bursty
// MMPP and diurnal processes, all driven by a single deterministic RNG
// stream) and the serving side (engine.go: per-request and
// instance-pool models calibrated by each provider's
// platform.TrafficProfile).
package traffic

import (
	"fmt"
	"math"
	"time"

	"statebench/internal/sim"
)

// ArrivalProcess generates the aggregate arrival stream: Next returns
// the absolute virtual time of the arrival after now, advancing any
// internal process state. Implementations draw only from the supplied
// RNG, so a process is replayed identically for the same seed.
type ArrivalProcess interface {
	Next(rng *sim.RNG, now sim.Time) sim.Time
	// MeanRate returns the long-run average arrival rate (1/sec), used
	// for sizing and reporting.
	MeanRate() float64
	fmt.Stringer
}

// expGap draws an exponential interarrival gap for rate (1/sec).
func expGap(rng *sim.RNG, rate float64) sim.Time {
	return sim.Time(rng.Exp(1e9 / rate))
}

// Poisson is a homogeneous Poisson process: independent exponential
// interarrival gaps at a constant rate. The superposition of a million
// independent per-tenant Poisson streams is itself Poisson, which is
// what lets one aggregate stream stand in for per-tenant generators
// without a million timer events.
type Poisson struct {
	Rate float64 // arrivals per second
}

// Next implements ArrivalProcess.
func (p Poisson) Next(rng *sim.RNG, now sim.Time) sim.Time {
	return now + expGap(rng, p.Rate)
}

// MeanRate implements ArrivalProcess.
func (p Poisson) MeanRate() float64 { return p.Rate }

// String implements fmt.Stringer.
func (p Poisson) String() string { return fmt.Sprintf("poisson(%.0f/s)", p.Rate) }

// MMPP2 is a two-state Markov-modulated Poisson process — the standard
// bursty-arrival model: the stream alternates between a baseline state
// and a burst state, each with exponentially distributed dwell times,
// emitting Poisson arrivals at the state's rate. Bursts are what push
// an instance-pool provider's rate-limited scale controller into
// visible backlog.
type MMPP2 struct {
	BaseRate   float64       // arrivals/sec in the baseline state
	BurstRate  float64       // arrivals/sec in the burst state
	BaseDwell  time.Duration // mean time spent in baseline
	BurstDwell time.Duration // mean time spent in burst

	// state: false = baseline, true = burst; stateUntil is when the
	// current dwell ends. Zero value starts in baseline with the first
	// dwell drawn on first use.
	burst      bool
	stateUntil sim.Time
	started    bool
}

// Next implements ArrivalProcess: arrivals are drawn at the current
// state's rate; candidates beyond the dwell boundary are discarded and
// redrawn in the next state (the memoryless property makes restarting
// the exponential at the boundary exact).
func (m *MMPP2) Next(rng *sim.RNG, now sim.Time) sim.Time {
	if !m.started {
		m.started = true
		m.stateUntil = now + sim.Time(rng.Exp(float64(m.BaseDwell)))
	}
	t := now
	for {
		rate := m.BaseRate
		if m.burst {
			rate = m.BurstRate
		}
		cand := t + expGap(rng, rate)
		if cand <= m.stateUntil {
			return cand
		}
		// Dwell expired before the candidate: switch state at the
		// boundary and continue from there.
		t = m.stateUntil
		m.burst = !m.burst
		dwell := m.BaseDwell
		if m.burst {
			dwell = m.BurstDwell
		}
		m.stateUntil = t + sim.Time(rng.Exp(float64(dwell)))
	}
}

// MeanRate implements ArrivalProcess: dwell-weighted average rate.
func (m *MMPP2) MeanRate() float64 {
	total := float64(m.BaseDwell + m.BurstDwell)
	return (m.BaseRate*float64(m.BaseDwell) + m.BurstRate*float64(m.BurstDwell)) / total
}

// String implements fmt.Stringer.
func (m *MMPP2) String() string {
	return fmt.Sprintf("mmpp(%.0f/s↔%.0f/s)", m.BaseRate, m.BurstRate)
}

// Diurnal is a nonhomogeneous Poisson process with a sinusoidal rate —
// the day/night cycle of aggregate tenant traffic:
//
//	rate(t) = Base · (1 + Amp·sin(2πt/Period))
//
// sampled by Lewis–Shedler thinning: candidates are drawn at the peak
// rate and accepted with probability rate(t)/peak, which is exact for
// any bounded rate function.
type Diurnal struct {
	Base   float64       // mean arrivals/sec
	Amp    float64       // relative swing, 0 ≤ Amp ≤ 1
	Period time.Duration // cycle length (a "day")
}

// rate returns the instantaneous arrival rate at t.
func (d Diurnal) rate(t sim.Time) float64 {
	return d.Base * (1 + d.Amp*math.Sin(2*math.Pi*float64(t)/float64(d.Period)))
}

// Next implements ArrivalProcess via thinning.
func (d Diurnal) Next(rng *sim.RNG, now sim.Time) sim.Time {
	peak := d.Base * (1 + d.Amp)
	t := now
	for {
		t += expGap(rng, peak)
		if rng.Float64()*peak <= d.rate(t) {
			return t
		}
	}
}

// MeanRate implements ArrivalProcess: the sinusoid averages out.
func (d Diurnal) MeanRate() float64 { return d.Base }

// String implements fmt.Stringer.
func (d Diurnal) String() string {
	return fmt.Sprintf("diurnal(%.0f/s±%.0f%%)", d.Base, d.Amp*100)
}
