package pricing

import (
	"testing"
	"time"
)

// sampleUsage is one run's consumption, billed by every book below so
// the per-provider line-item mapping is visible side by side.
var sampleUsage = Usage{
	GBs:          100,
	Requests:     1_000_000,
	StatefulTxns: 10_000,
	AllTxns:      50_000,
	BlobTxns:     100_000,
	Exec:         90 * time.Second,
}

func TestBooksPriceLineItems(t *testing.T) {
	cases := []struct {
		name string
		book Book
		want Bill
	}{
		{
			name: "aws",
			book: DefaultAWS(),
			want: Bill{
				Compute:  100 * 0.0000166667,
				Requests: 1e6 * 0.20 / 1e6,
				Stateful: 10_000 * 0.025 / 1e3,
				Blob:     100_000 * 0.0000054,
			},
		},
		{
			name: "azure",
			book: DefaultAzure(),
			want: Bill{
				Compute:  100 * 0.000016,
				Requests: 1e6 * 0.20 / 1e6,
				Stateful: 10_000 * 0.00036 / 1e4,
				Blob:     100_000 * 0.0000044,
			},
		},
		{
			// GCP couples a GHz-s CPU charge to every billed GB-s via
			// the fixed tier ratio; everything else maps one line each.
			name: "gcp",
			book: DefaultGCP(),
			want: Bill{
				Compute:  100 * (0.0000025 + 1.4*0.0000100),
				Requests: 1e6 * 0.40 / 1e6,
				Stateful: 10_000 * 0.01 / 1e3,
				Blob:     100_000 * 0.0000027,
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := c.book.Bill(sampleUsage)
			check := func(field string, got, want float64) {
				if !close(got, want) {
					t.Errorf("%s = %v, want %v", field, got, want)
				}
			}
			check("compute", got.Compute, c.want.Compute)
			check("requests", got.Requests, c.want.Requests)
			check("stateful", got.Stateful, c.want.Stateful)
			check("blob", got.Blob, c.want.Blob)
			if got.Total() <= 0 {
				t.Error("zero total for non-zero usage")
			}
		})
	}
}

// TestStatefulUnitPriceOrdering pins the cross-provider relationship
// the paper's cost analysis (and the crosscloud experiment) rests on:
// per stateful operation, AWS transitions cost the most, GCP steps sit
// in between, and Azure storage transactions are by far the cheapest.
func TestStatefulUnitPriceOrdering(t *testing.T) {
	aws := DefaultAWS().StepTransition
	gcp := DefaultGCP().WorkflowStep
	az := DefaultAzure().StorageTransaction
	if !(aws > gcp && gcp > az) {
		t.Fatalf("unit prices: aws=%v gcp=%v azure=%v, want aws > gcp > azure", aws, gcp, az)
	}
}

func TestFreeTierEdges(t *testing.T) {
	tier := FreeTier{Book: DefaultGCP(), GBs: 400_000, Requests: 2_000_000, StatefulTxns: 5_000}
	cases := []struct {
		name  string
		usage Usage
		want  Bill
	}{
		{
			name:  "under allowance bills nothing on covered items",
			usage: Usage{GBs: 100, Requests: 1000, StatefulTxns: 10, BlobTxns: 7},
			// Blob has no allowance, so it still bills.
			want: Bill{Blob: 7 * 0.0000027},
		},
		{
			name:  "exactly at allowance bills zero",
			usage: Usage{GBs: 400_000, Requests: 2_000_000, StatefulTxns: 5_000},
			want:  Bill{},
		},
		{
			name:  "only the excess is billed",
			usage: Usage{GBs: 400_001, Requests: 2_000_010, StatefulTxns: 5_100},
			want: Bill{
				Compute:  1 * (0.0000025 + 1.4*0.0000100),
				Requests: 10 * 0.40 / 1e6,
				Stateful: 100 * 0.01 / 1e3,
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := tier.Bill(c.usage)
			if !close(got.Compute, c.want.Compute) || !close(got.Requests, c.want.Requests) ||
				!close(got.Stateful, c.want.Stateful) || !close(got.Blob, c.want.Blob) {
				t.Fatalf("bill = %+v, want %+v", got, c.want)
			}
		})
	}
}

func TestFreeTierWrapsAnyBook(t *testing.T) {
	// The wrapper is provider-neutral: the same allowances apply over
	// the AWS book, pricing only the excess transition.
	tier := FreeTier{Book: DefaultAWS(), StatefulTxns: 4000}
	b := tier.Bill(Usage{StatefulTxns: 4001})
	if !close(b.Stateful, 0.025/1e3) {
		t.Fatalf("stateful = %v, want one transition", b.Stateful)
	}
}

func TestUsageSub(t *testing.T) {
	after := Usage{GBs: 10, Requests: 20, StatefulTxns: 30, AllTxns: 40, BlobTxns: 50, Exec: time.Minute}
	before := Usage{GBs: 4, Requests: 5, StatefulTxns: 6, AllTxns: 7, BlobTxns: 8, Exec: time.Second}
	d := after.Sub(before)
	want := Usage{GBs: 6, Requests: 15, StatefulTxns: 24, AllTxns: 33, BlobTxns: 42, Exec: 59 * time.Second}
	if d != want {
		t.Fatalf("delta = %+v, want %+v", d, want)
	}
}
