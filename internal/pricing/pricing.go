// Package pricing holds the 2021 public price books for both clouds and
// computes the two cost components the paper compares: computation cost
// (GB-s) and stateful transaction/transition cost.
package pricing

import "fmt"

// AWSPrices is the AWS price book (us-west-2, 2021, USD).
type AWSPrices struct {
	// LambdaGBs is per GB-second of configured memory.
	LambdaGBs float64
	// LambdaRequest is per invocation.
	LambdaRequest float64
	// StepTransition is per state transition (Standard Workflows:
	// $0.025 per 1,000).
	StepTransition float64
	// S3Request is per GET/PUT-class request (blended).
	S3Request float64
}

// AzurePrices is the Azure price book (consumption plan, 2021, USD).
type AzurePrices struct {
	// FunctionsGBs is per GB-second of observed memory.
	FunctionsGBs float64
	// FunctionsExecution is per execution.
	FunctionsExecution float64
	// StorageTransaction is per queue/table transaction (blended
	// $0.00036 per 10,000).
	StorageTransaction float64
	// BlobRequest is per blob operation.
	BlobRequest float64
}

// DefaultAWS returns the 2021 list prices used in the paper's period.
func DefaultAWS() AWSPrices {
	return AWSPrices{
		LambdaGBs:      0.0000166667,
		LambdaRequest:  0.20 / 1e6,
		StepTransition: 0.025 / 1e3,
		S3Request:      0.0000054, // blended GET($0.4/M)/PUT($5/M)
	}
}

// DefaultAzure returns the 2021 list prices.
func DefaultAzure() AzurePrices {
	return AzurePrices{
		FunctionsGBs:       0.000016,
		FunctionsExecution: 0.20 / 1e6,
		StorageTransaction: 0.00036 / 1e4,
		BlobRequest:        0.0000044,
	}
}

// Bill is a cost breakdown in USD, split the way the paper splits it:
// Compute (GB-s based) vs Stateful (transitions/transactions) vs
// per-request charges and blob traffic.
type Bill struct {
	Compute  float64
	Requests float64
	Stateful float64
	Blob     float64
}

// Total returns the summed cost.
func (b Bill) Total() float64 { return b.Compute + b.Requests + b.Stateful + b.Blob }

// StatefulShare returns the stateful fraction of the total (0 when the
// total is zero).
func (b Bill) StatefulShare() float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return b.Stateful / t
}

// Add returns the element-wise sum of two bills.
func (b Bill) Add(o Bill) Bill {
	return Bill{
		Compute:  b.Compute + o.Compute,
		Requests: b.Requests + o.Requests,
		Stateful: b.Stateful + o.Stateful,
		Blob:     b.Blob + o.Blob,
	}
}

// Scale returns the bill multiplied by f (e.g. runs per month).
func (b Bill) Scale(f float64) Bill {
	return Bill{Compute: b.Compute * f, Requests: b.Requests * f, Stateful: b.Stateful * f, Blob: b.Blob * f}
}

// String implements fmt.Stringer with a compact breakdown.
func (b Bill) String() string {
	return fmt.Sprintf("$%.6f (compute $%.6f, requests $%.6f, stateful $%.6f, blob $%.6f)",
		b.Total(), b.Compute, b.Requests, b.Stateful, b.Blob)
}

// AWSBill prices an AWS run.
func (p AWSPrices) AWSBill(billedGBs float64, invocations, transitions, s3Requests int64) Bill {
	return Bill{
		Compute:  billedGBs * p.LambdaGBs,
		Requests: float64(invocations) * p.LambdaRequest,
		Stateful: float64(transitions) * p.StepTransition,
		Blob:     float64(s3Requests) * p.S3Request,
	}
}

// AzureBill prices an Azure run.
func (p AzurePrices) AzureBill(billedGBs float64, executions, storageTxns, blobRequests int64) Bill {
	return Bill{
		Compute:  billedGBs * p.FunctionsGBs,
		Requests: float64(executions) * p.FunctionsExecution,
		Stateful: float64(storageTxns) * p.StorageTransaction,
		Blob:     float64(blobRequests) * p.BlobRequest,
	}
}
