package pricing

import "time"

// Usage is a provider-neutral resource consumption record — the
// quantities a price book turns into a Bill. core.Backend implementations
// produce cumulative Usage snapshots; campaigns bill the delta between
// two snapshots.
type Usage struct {
	// GBs is billed gigabyte-seconds of compute.
	GBs float64
	// Requests counts function invocations/executions.
	Requests int64
	// StatefulTxns counts the operations billed under the provider's
	// stateful line item: Step Functions state transitions, Azure
	// storage transactions (all of them for durable styles, manual
	// queues only otherwise), GCP Workflows internal steps.
	StatefulTxns int64
	// AllTxns counts every storage transaction the run performed,
	// regardless of how it is billed — the paper's transactions-per-run
	// metric (Fig 15 reports it independently of the bill).
	AllTxns int64
	// BlobTxns counts object-store requests (S3/Blob/GCS).
	BlobTxns int64
	// Exec is summed raw execution time across all invocations.
	Exec time.Duration
}

// Sub returns the element-wise difference u - o (the usage between two
// cumulative snapshots).
func (u Usage) Sub(o Usage) Usage {
	return Usage{
		GBs:          u.GBs - o.GBs,
		Requests:     u.Requests - o.Requests,
		StatefulTxns: u.StatefulTxns - o.StatefulTxns,
		AllTxns:      u.AllTxns - o.AllTxns,
		BlobTxns:     u.BlobTxns - o.BlobTxns,
		Exec:         u.Exec - o.Exec,
	}
}

// Book prices a Usage into a Bill. Each registered provider supplies
// one; campaigns never branch on the provider to compute cost.
type Book interface {
	Bill(u Usage) Bill
}

// Bill implements Book over the AWS price book.
func (p AWSPrices) Bill(u Usage) Bill {
	return p.AWSBill(u.GBs, u.Requests, u.StatefulTxns, u.BlobTxns)
}

// Bill implements Book over the Azure price book.
func (p AzurePrices) Bill(u Usage) Bill {
	return p.AzureBill(u.GBs, u.Requests, u.StatefulTxns, u.BlobTxns)
}

// GCPPrices is the GCP price book (Cloud Functions gen-1 + Workflows +
// Cloud Storage, 2021, USD). Cloud Functions bills memory (GB-s) and
// CPU (GHz-s) separately; the configured tiers pair them at a fixed
// ratio, so the book carries both rates plus the tier ratio.
type GCPPrices struct {
	// FunctionsGBs is per GB-second of configured memory ($0.0000025).
	FunctionsGBs float64
	// FunctionsGHzs is per GHz-second of configured CPU ($0.0000100).
	FunctionsGHzs float64
	// GHzPerGB converts billed GB-s to GHz-s: the gen-1 tier table
	// allocates ~1.4 GHz per GB (1024 MB -> 1.4 GHz).
	GHzPerGB float64
	// Invocation is per function invocation ($0.40 per million).
	Invocation float64
	// WorkflowStep is per Workflows internal step ($0.01 per 1,000).
	WorkflowStep float64
	// StorageRequest is per Cloud Storage operation (blended class
	// A($0.05/10k)/class B($0.004/10k)).
	StorageRequest float64
}

// DefaultGCP returns the 2021 list prices.
func DefaultGCP() GCPPrices {
	return GCPPrices{
		FunctionsGBs:   0.0000025,
		FunctionsGHzs:  0.0000100,
		GHzPerGB:       1.4,
		Invocation:     0.40 / 1e6,
		WorkflowStep:   0.01 / 1e3,
		StorageRequest: 0.0000027, // blended class A/B
	}
}

// Bill implements Book over the GCP price book: compute combines the
// memory and the tier-coupled CPU charge; Workflows steps are the
// stateful line item.
func (p GCPPrices) Bill(u Usage) Bill {
	return Bill{
		Compute:  u.GBs * (p.FunctionsGBs + p.GHzPerGB*p.FunctionsGHzs),
		Requests: float64(u.Requests) * p.Invocation,
		Stateful: float64(u.StatefulTxns) * p.WorkflowStep,
		Blob:     float64(u.BlobTxns) * p.StorageRequest,
	}
}

// FreeTier wraps a Book with monthly free allowances: the wrapped book
// prices only the usage beyond each allowance (clamped at zero). The
// paper bills marginal cost — defaults leave allowances out — but cost
// explorers can wrap any provider's book to model a light workload.
type FreeTier struct {
	Book Book
	// GBs, Requests, and StatefulTxns are the free allowances deducted
	// from the usage before pricing.
	GBs          float64
	Requests     int64
	StatefulTxns int64
}

// Bill implements Book: usage net of the allowances, never negative.
func (f FreeTier) Bill(u Usage) Bill {
	u.GBs = max(0, u.GBs-f.GBs)
	u.Requests = max(0, u.Requests-f.Requests)
	u.StatefulTxns = max(0, u.StatefulTxns-f.StatefulTxns)
	return f.Book.Bill(u)
}
