package pricing

import (
	"math"
	"testing"
)

func close(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestAWSBill(t *testing.T) {
	p := DefaultAWS()
	b := p.AWSBill(100, 10, 1000, 50)
	if !close(b.Compute, 100*0.0000166667) {
		t.Fatalf("compute = %v", b.Compute)
	}
	if !close(b.Stateful, 1000*0.025/1000) {
		t.Fatalf("stateful = %v", b.Stateful)
	}
	if !close(b.Requests, 10*0.2/1e6) {
		t.Fatalf("requests = %v", b.Requests)
	}
	if b.Total() <= b.Compute {
		t.Fatal("total not summing")
	}
}

func TestAzureBill(t *testing.T) {
	p := DefaultAzure()
	b := p.AzureBill(100, 10, 20000, 5)
	if !close(b.Compute, 100*0.000016) {
		t.Fatalf("compute = %v", b.Compute)
	}
	if !close(b.Stateful, 20000*0.00036/1e4) {
		t.Fatalf("stateful = %v", b.Stateful)
	}
}

func TestStatefulShare(t *testing.T) {
	b := Bill{Compute: 0.9, Stateful: 0.1}
	if !close(b.StatefulShare(), 0.1) {
		t.Fatalf("share = %v", b.StatefulShare())
	}
	var zero Bill
	if zero.StatefulShare() != 0 {
		t.Fatal("zero bill share should be 0")
	}
}

func TestAddScale(t *testing.T) {
	a := Bill{Compute: 1, Requests: 2, Stateful: 3, Blob: 4}
	b := a.Add(a)
	if b.Total() != 20 {
		t.Fatalf("add total = %v", b.Total())
	}
	c := a.Scale(3)
	if !close(c.Stateful, 9) {
		t.Fatalf("scale = %v", c)
	}
}

func TestPerTransitionVsPerTransactionGap(t *testing.T) {
	// A Step transition is ~700x more expensive than a storage
	// transaction — but Azure issues orders of magnitude more
	// transactions (polling), which is the paper's cost story.
	aws, az := DefaultAWS(), DefaultAzure()
	if aws.StepTransition < 100*az.StorageTransaction {
		t.Fatal("price book relationship broken")
	}
}
