// Package payload is a concurrency-safe, content-addressed
// memoization engine for workload compute. The benchmark suite runs
// the same real payload computations — training the ML pipeline on a
// given dataset, detecting faces in a video chunk — once per
// implementation style, provider, and repetition; the engine lets a
// result be computed exactly once per distinct input and reused
// everywhere else, so the harness stays cheap relative to the systems
// under measurement.
//
// Results are keyed by (workload, stage, input digest, params digest):
// two lookups share a result only when every byte of input and every
// parameter that feeds the computation agree. Lookups from concurrent
// campaign workers are single-flight: the first lookup computes, later
// ones (counted as hits) wait for it. Because a distinct key set and a
// lookup count are properties of the workload mix alone, the engine's
// hit/miss/byte statistics are deterministic at any worker count.
//
// Caching is observable only through those statistics (and optional
// zero-cost span annotations): a cached result is byte-identical to a
// fresh recompute — the determinism property tests pin this — so
// report output never depends on cache state.
package payload

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"

	"statebench/internal/obs/metrics"
	"statebench/internal/obs/span"
)

// Digest is a 32-byte SHA-256 content digest.
type Digest [32]byte

// DigestBytes digests raw content.
func DigestBytes(data []byte) Digest { return sha256.Sum256(data) }

// DigestString digests a string (parameter tuples are typically
// rendered with fmt and digested with this).
func DigestString(s string) Digest { return sha256.Sum256([]byte(s)) }

// DigestOf renders args with fmt (%v, space-separated) and digests the
// result — the convenience path for parameter digests. Values must
// render deterministically (no maps).
func DigestOf(args ...any) Digest {
	return DigestString(fmt.Sprintln(args...))
}

// DigestChunks digests a sequence of byte slices with length framing,
// so ("ab","c") and ("a","bc") produce distinct digests.
func DigestChunks(chunks ...[]byte) Digest {
	h := sha256.New()
	var buf [8]byte
	for _, c := range chunks {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(c)))
		h.Write(buf[:])
		h.Write(c)
	}
	var d Digest
	h.Sum(d[:0])
	return d
}

// DigestInts digests a sequence of integers (chunk indices, sizes,
// seeds) without going through fmt.
func DigestInts(vs ...int64) Digest {
	h := sha256.New()
	var buf [8]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	var d Digest
	h.Sum(d[:0])
	return d
}

// Key identifies one memoized compute unit.
type Key struct {
	// Workload names the owning workload ("mlpipe", "video").
	Workload string
	// Stage names the compute stage within it ("train", "fit/lasso",
	// "detect/chunk").
	Stage string
	// Input digests every byte of input the stage consumes.
	Input Digest
	// Params digests every parameter that shapes the computation
	// (hyper-parameters, seeds, sizes).
	Params Digest
}

// Stats is a snapshot of the engine's counters.
type Stats struct {
	// Hits counts lookups served from (or coalesced onto) a cached
	// computation; Misses counts lookups that computed.
	Hits, Misses int64
	// Bytes is the total serialized size of all cached results.
	Bytes int64
}

// Merge returns the counter-wise sum of s and o. Addition is
// commutative and associative, so folding per-campaign snapshots in
// any order yields the same sweep-level totals — the property the
// optimizer's -parallel invariance gate relies on.
func (s Stats) Merge(o Stats) Stats {
	return Stats{Hits: s.Hits + o.Hits, Misses: s.Misses + o.Misses, Bytes: s.Bytes + o.Bytes}
}

// Lookups is the total number of cache lookups behind the snapshot.
func (s Stats) Lookups() int64 { return s.Hits + s.Misses }

// HitRate is Hits over Lookups, 0 when no lookups were made.
func (s Stats) HitRate() float64 {
	if n := s.Lookups(); n > 0 {
		return float64(s.Hits) / float64(n)
	}
	return 0
}

// entry is one cached (or in-flight) computation. ready is closed when
// val/size/err are final; waiters block on it outside the engine lock,
// which is what makes concurrent lookups single-flight.
type entry struct {
	ready chan struct{}
	val   any
	size  int64
	err   error
}

// Engine memoizes payload computations. The zero value is not usable;
// create engines with NewEngine (or Disabled). A nil *Engine is valid
// everywhere and behaves like Disabled: every lookup computes afresh.
type Engine struct {
	disabled bool

	// root is non-nil on scope views (see Scope): storage and the
	// root counters live on the root engine, while this view keeps
	// its own first-touch attribution in seen/hits/misses/bytes.
	root *Engine

	mu      sync.Mutex
	entries map[Key]*entry
	seen    map[Key]struct{}
	hits    int64
	misses  int64
	bytes   int64
}

// NewEngine returns an empty enabled engine.
func NewEngine() *Engine {
	return &Engine{entries: make(map[Key]*entry)}
}

// Disabled returns an engine that never caches: every lookup runs its
// compute function and records no statistics. The -payload-cache=off
// escape hatch.
func Disabled() *Engine { return &Engine{disabled: true} }

// shared is the process-global engine behind Shared.
var shared = NewEngine()

// Shared returns the process-global engine — the default for code
// paths that are not part of a suite run with its own engine (tests,
// examples, direct Measure calls).
func Shared() *Engine { return shared }

// Enabled reports whether lookups can be served from cache.
func (e *Engine) Enabled() bool { return e != nil && !e.disabled }

// Scope returns a view of e that shares its entry store and
// single-flight machinery but keeps independent statistics with
// first-touch attribution: within a scope, the first lookup of a key
// counts as a miss and every repeat as a hit, regardless of whether
// another scope (or an earlier run on the same root) computed the
// entry first. Root counters advance exactly as if the lookup had hit
// the root directly, so scoping is invisible to suite-level totals.
//
// First-touch attribution is what keeps per-scope stats deterministic
// when scopes race: which scope's lookup actually computes a shared
// entry depends on goroutine interleaving, but the distinct-key set a
// scope touches is a property of its workload alone. Scoping a nil or
// disabled engine returns the engine unchanged (no stats either way).
func (e *Engine) Scope() *Engine {
	if !e.Enabled() {
		return e
	}
	r := e
	if r.root != nil {
		r = r.root
	}
	return &Engine{root: r, seen: make(map[Key]struct{})}
}

// Stats returns a snapshot of the counters.
func (e *Engine) Stats() Stats {
	if e == nil {
		return Stats{}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return Stats{Hits: e.hits, Misses: e.misses, Bytes: e.bytes}
}

// Len returns the number of cached entries (on a scope view, the
// number of distinct keys the scope has touched).
func (e *Engine) Len() int {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.root != nil {
		return len(e.seen)
	}
	return len(e.entries)
}

// do is the untyped memoization core. compute returns the value, its
// serialized size in bytes (for the bytes counter), and an error;
// errors are cached too, since a deterministic computation fails
// deterministically.
func (e *Engine) do(key Key, compute func() (any, int, error)) (any, bool, error) {
	if !e.Enabled() {
		v, _, err := compute()
		return v, false, err
	}
	if e.root != nil {
		e.mu.Lock()
		_, repeat := e.seen[key]
		if repeat {
			e.hits++
		} else {
			e.seen[key] = struct{}{}
			e.misses++
		}
		e.mu.Unlock()
		v, hit, err := e.root.do(key, compute)
		if !repeat && err == nil {
			size := e.root.sizeOf(key)
			e.mu.Lock()
			e.bytes += size
			e.mu.Unlock()
		}
		return v, hit, err
	}
	e.mu.Lock()
	if ent, ok := e.entries[key]; ok {
		e.hits++
		e.mu.Unlock()
		<-ent.ready
		return ent.val, true, ent.err
	}
	ent := &entry{ready: make(chan struct{})}
	e.entries[key] = ent
	e.misses++
	e.mu.Unlock()

	v, size, err := compute()
	ent.val, ent.err = v, err
	if err == nil {
		ent.size = int64(size)
		e.mu.Lock()
		e.bytes += ent.size
		e.mu.Unlock()
	}
	close(ent.ready)
	return ent.val, false, ent.err
}

// sizeOf returns the cached size of key's entry (0 when absent or
// still computing an error). Callers hold no lock; the entry is
// guaranteed settled because sizeOf runs only after do returned.
func (e *Engine) sizeOf(key Key) int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if ent, ok := e.entries[key]; ok {
		return ent.size
	}
	return 0
}

// Get memoizes compute under key in e, returning the (possibly cached)
// value and whether it was served from cache. Cached values are shared
// by reference: compute's result must be immutable once returned.
func Get[T any](e *Engine, key Key, compute func() (T, int, error)) (T, bool, error) {
	v, hit, err := e.do(key, func() (any, int, error) {
		t, size, err := compute()
		return t, size, err
	})
	if err != nil {
		var zero T
		return zero, hit, err
	}
	return v.(T), hit, nil
}

// Metric names of the engine's Prometheus series.
const (
	MetricHits   = "statebench_payload_cache_hits"
	MetricMisses = "statebench_payload_cache_misses"
	MetricBytes  = "statebench_payload_cache_bytes"
)

// EmitTo adds the engine's counters to a metrics registry. Call once
// per suite run, after the campaigns finish: with a fresh engine per
// run and single-flight lookups, misses equal the distinct key count
// and hits equal lookups minus misses — both independent of worker
// count, keeping the exposition byte-identical at any -parallel.
func (e *Engine) EmitTo(r *metrics.Registry) {
	if e == nil || e.disabled || r == nil {
		return
	}
	s := e.Stats()
	r.Inc(MetricHits, float64(s.Hits))
	r.Inc(MetricMisses, float64(s.Misses))
	r.Inc(MetricBytes, float64(s.Bytes))
}

// Annotate records a lookup's cache outcome on an active span — pure
// bookkeeping, consuming no virtual time, so traced output changes
// only where a live span already exists. No-op on a disabled handle.
func Annotate(sp *span.Active, hit bool) {
	if !sp.Live() {
		return
	}
	outcome := "miss"
	if hit {
		outcome = "hit"
	}
	sp.Annotate(span.A("payload_cache", outcome))
}

// zeroArena backs Zeros: one shared all-zero allocation, grown to the
// largest size ever requested.
var (
	zeroMu    sync.Mutex
	zeroArena []byte
)

// Zeros returns a read-only all-zero byte slice of length n, aliasing
// a shared arena. The simulated workloads move many placeholder
// payloads whose only meaningful property is their length (a 100 MB
// video stand-in, a serialized intermediate dataframe); handing out
// arena views instead of fresh allocations removes gigabytes of
// allocate-and-clear per suite run. The capacity is clamped to n so an
// append cannot write into the arena; callers must not modify the
// returned bytes.
func Zeros(n int) []byte {
	if n <= 0 {
		return nil
	}
	zeroMu.Lock()
	if len(zeroArena) < n {
		zeroArena = make([]byte, n)
	}
	a := zeroArena
	zeroMu.Unlock()
	return a[:n:n]
}
