package payload_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"statebench/internal/obs/metrics"
	"statebench/internal/obs/span"
	"statebench/internal/payload"
	"statebench/internal/video"
)

func TestDigestHelpers(t *testing.T) {
	if payload.DigestBytes([]byte("a")) == payload.DigestBytes([]byte("b")) {
		t.Fatal("distinct bytes collided")
	}
	if payload.DigestString("x") != payload.DigestBytes([]byte("x")) {
		t.Fatal("DigestString disagrees with DigestBytes")
	}
	if payload.DigestOf("a", 1) != payload.DigestOf("a", 1) {
		t.Fatal("DigestOf not deterministic")
	}
	if payload.DigestOf("a", 1) == payload.DigestOf("a", 2) {
		t.Fatal("DigestOf ignored an argument")
	}
	if payload.DigestInts(1, 2) == payload.DigestInts(2, 1) {
		t.Fatal("DigestInts is order-insensitive")
	}
}

func TestGetMemoizesPerKey(t *testing.T) {
	eng := payload.NewEngine()
	key := payload.Key{Workload: "w", Stage: "s", Input: payload.DigestString("in")}
	calls := 0
	compute := func() ([]byte, int, error) {
		calls++
		return []byte("result"), 6, nil
	}
	v1, hit1, err := payload.Get(eng, key, compute)
	if err != nil || hit1 {
		t.Fatalf("first lookup: hit=%v err=%v", hit1, err)
	}
	v2, hit2, err := payload.Get(eng, key, compute)
	if err != nil || !hit2 {
		t.Fatalf("second lookup: hit=%v err=%v", hit2, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times", calls)
	}
	if !bytes.Equal(v1, v2) {
		t.Fatal("cached result differs from computed result")
	}
	other := key
	other.Params = payload.DigestString("p")
	if _, hit, _ := payload.Get(eng, other, compute); hit {
		t.Fatal("different params digest served from cache")
	}
	s := eng.Stats()
	if s.Hits != 1 || s.Misses != 2 || s.Bytes != 12 {
		t.Fatalf("stats = %+v", s)
	}
	if eng.Len() != 2 {
		t.Fatalf("Len = %d", eng.Len())
	}
}

func TestErrorsAreCached(t *testing.T) {
	eng := payload.NewEngine()
	key := payload.Key{Workload: "w", Stage: "fail"}
	calls := 0
	compute := func() (int, int, error) {
		calls++
		return 0, 0, fmt.Errorf("deterministic failure")
	}
	if _, _, err := payload.Get(eng, key, compute); err == nil {
		t.Fatal("error swallowed")
	}
	if _, hit, err := payload.Get(eng, key, compute); err == nil || !hit {
		t.Fatalf("cached error lookup: hit=%v err=%v", hit, err)
	}
	if calls != 1 {
		t.Fatalf("failed compute ran %d times", calls)
	}
	if s := eng.Stats(); s.Bytes != 0 {
		t.Fatalf("failed compute accounted bytes: %+v", s)
	}
}

func TestDisabledAndNilEngines(t *testing.T) {
	key := payload.Key{Workload: "w", Stage: "s"}
	for name, eng := range map[string]*payload.Engine{"disabled": payload.Disabled(), "nil": nil} {
		calls := 0
		compute := func() (string, int, error) {
			calls++
			return "v", 1, nil
		}
		for i := 0; i < 3; i++ {
			v, hit, err := payload.Get(eng, key, compute)
			if err != nil || hit || v != "v" {
				t.Fatalf("%s engine: v=%q hit=%v err=%v", name, v, hit, err)
			}
		}
		if calls != 3 {
			t.Fatalf("%s engine memoized: %d calls", name, calls)
		}
		if eng.Enabled() {
			t.Fatalf("%s engine reports enabled", name)
		}
		if s := eng.Stats(); s != (payload.Stats{}) {
			t.Fatalf("%s engine recorded stats: %+v", name, s)
		}
	}
}

// TestConcurrentLookupsSingleFlight is the concurrency half of the
// determinism property: 8 workers race on one key (run under -race in
// tier1.5); the compute must run exactly once and every worker must see
// the same bytes.
func TestConcurrentLookupsSingleFlight(t *testing.T) {
	const workers = 8
	eng := payload.NewEngine()
	key := payload.Key{Workload: "w", Stage: "s", Input: payload.DigestString("shared")}
	var calls atomic.Int64
	results := make([][]byte, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := payload.Get(eng, key, func() ([]byte, int, error) {
				calls.Add(1)
				return []byte("concurrent-result"), 17, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = v
		}(i)
	}
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("compute ran %d times for one key", got)
	}
	for i := 1; i < workers; i++ {
		if !bytes.Equal(results[i], results[0]) {
			t.Fatalf("worker %d saw different bytes", i)
		}
	}
	s := eng.Stats()
	if s.Misses != 1 || s.Hits != workers-1 || s.Bytes != 17 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestVideoDetectStageDeterminism pins the byte-equality property on
// the real face-detection stage: a result served from cache must be
// byte-identical to a fresh recompute of the same chunk.
func TestVideoDetectStageDeterminism(t *testing.T) {
	opt := video.DefaultGenerateOptions()
	opt.NumFrames = 8
	clip, _ := video.Generate(opt)
	chunkBytes := video.Encode(clip)
	model := video.DefaultModel(0)

	detect := func() ([]byte, int, error) {
		chunk, err := video.Decode(chunkBytes)
		if err != nil {
			return nil, 0, err
		}
		out, err := json.Marshal(model.DetectVideo(chunk))
		if err != nil {
			return nil, 0, err
		}
		chunk.Release()
		return out, len(out), nil
	}

	eng := payload.NewEngine()
	key := payload.Key{
		Workload: "video",
		Stage:    "detect/chunk",
		Input:    payload.DigestBytes(chunkBytes),
		Params:   payload.DigestOf(model.WindowSizes, model.Contrast, model.MinBrightness, model.Stride, model.NMSIoU),
	}
	cached, _, err := payload.Get(eng, key, detect)
	if err != nil {
		t.Fatal(err)
	}
	again, hit, err := payload.Get(eng, key, detect)
	if err != nil || !hit {
		t.Fatalf("second lookup: hit=%v err=%v", hit, err)
	}
	fresh, _, err := detect()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cached, fresh) || !bytes.Equal(again, fresh) {
		t.Fatal("cached detection result differs from fresh recompute")
	}
}

func TestEmitTo(t *testing.T) {
	eng := payload.NewEngine()
	key := payload.Key{Workload: "w", Stage: "s"}
	compute := func() (int, int, error) { return 1, 5, nil }
	payload.Get(eng, key, compute)
	payload.Get(eng, key, compute)

	reg := metrics.NewRegistry()
	eng.EmitTo(reg)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		payload.MetricHits + " 1",
		payload.MetricMisses + " 1",
		payload.MetricBytes + " 5",
	} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	// Disabled and nil engines must leave the registry untouched.
	before := buf.Len()
	payload.Disabled().EmitTo(reg)
	(*payload.Engine)(nil).EmitTo(reg)
	buf.Reset()
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != before {
		t.Fatal("disabled engine changed the exposition")
	}
}

func TestAnnotate(t *testing.T) {
	tr := span.New()
	sp := tr.StartTrace(0, span.KindStage, "run")
	payload.Annotate(&sp, true)
	payload.Annotate(&sp, false)
	sp.End(0)
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("%d spans", len(spans))
	}
	attrs := spans[0].Attrs
	if len(attrs) != 2 || attrs[0].Value != "hit" || attrs[1].Value != "miss" {
		t.Fatalf("attrs = %+v", attrs)
	}
	for _, a := range attrs {
		if a.Key != "payload_cache" {
			t.Fatalf("attr key = %q", a.Key)
		}
	}
	// Disabled handle: no panic, no recording.
	var dead span.Active
	payload.Annotate(&dead, true)
}

func TestZeros(t *testing.T) {
	if payload.Zeros(0) != nil || payload.Zeros(-1) != nil {
		t.Fatal("non-positive length returned bytes")
	}
	a := payload.Zeros(64)
	b := payload.Zeros(16)
	if len(a) != 64 || len(b) != 16 {
		t.Fatalf("lengths %d/%d", len(a), len(b))
	}
	if cap(b) != 16 {
		t.Fatalf("cap leaks arena: %d", cap(b))
	}
	for i, v := range a {
		if v != 0 {
			t.Fatalf("non-zero byte at %d", i)
		}
	}
	// Growing must keep earlier views valid (all zero, same contract).
	c := payload.Zeros(128)
	if len(c) != 128 {
		t.Fatalf("grown length %d", len(c))
	}
}
