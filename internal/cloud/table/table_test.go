package table

import (
	"fmt"
	"testing"
	"time"

	"statebench/internal/sim"
)

func fixedParams() Params {
	return Params{OpLatency: sim.Fixed{D: 8 * time.Millisecond}, MaxBatch: 3}
}

func TestWriteReadDelete(t *testing.T) {
	k := sim.NewKernel(1)
	tb := New(k, "history", fixedParams())
	k.Spawn("c", func(p *sim.Proc) {
		tb.Write(p, "inst1", "0001", []byte("started"))
		v, ok := tb.Read(p, "inst1", "0001")
		if !ok || string(v) != "started" {
			t.Errorf("read = %q %v", v, ok)
		}
		if _, ok := tb.Read(p, "inst1", "9999"); ok {
			t.Error("read of missing row succeeded")
		}
		tb.Delete(p, "inst1", "0001")
		if _, ok := tb.Read(p, "inst1", "0001"); ok {
			t.Error("read after delete succeeded")
		}
	})
	k.Run()
	st := tb.Stats()
	if st.Writes != 1 || st.Reads != 3 || st.Deletes != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestQueryOrderedByRowKey(t *testing.T) {
	k := sim.NewKernel(1)
	tb := New(k, "history", fixedParams())
	var got []Entity
	k.Spawn("c", func(p *sim.Proc) {
		tb.Write(p, "inst1", "0003", []byte("c"))
		tb.Write(p, "inst1", "0001", []byte("a"))
		tb.Write(p, "inst1", "0002", []byte("b"))
		tb.Write(p, "other", "0001", []byte("x"))
		got = tb.Query(p, "inst1")
	})
	k.Run()
	if len(got) != 3 {
		t.Fatalf("query returned %d rows", len(got))
	}
	for i, want := range []string{"a", "b", "c"} {
		if string(got[i].Data) != want {
			t.Fatalf("row %d = %q, want %q", i, got[i].Data, want)
		}
	}
}

func TestWriteBatchGroupsTransactions(t *testing.T) {
	k := sim.NewKernel(1)
	tb := New(k, "history", fixedParams())
	k.Spawn("c", func(p *sim.Proc) {
		var ents []Entity
		for i := 0; i < 7; i++ {
			ents = append(ents, Entity{PK: "p", RK: fmt.Sprintf("%04d", i), Data: []byte{byte(i)}})
		}
		tb.WriteBatch(p, "p", ents)
	})
	k.Run()
	// 7 entities at MaxBatch=3 => 3 entity-group transactions.
	if tb.Stats().Batches != 3 {
		t.Fatalf("batches = %d, want 3", tb.Stats().Batches)
	}
	if tb.Len() != 7 {
		t.Fatalf("rows = %d", tb.Len())
	}
}

func TestWriteBatchRejectsMixedPartitions(t *testing.T) {
	k := sim.NewKernel(1)
	tb := New(k, "history", fixedParams())
	panicked := false
	k.Spawn("c", func(p *sim.Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		tb.WriteBatch(p, "p", []Entity{{PK: "other", RK: "1"}})
	})
	k.Run()
	if !panicked {
		t.Fatal("mixed-partition batch did not panic")
	}
}

func TestDeletePartition(t *testing.T) {
	k := sim.NewKernel(1)
	tb := New(k, "history", fixedParams())
	var removed int
	k.Spawn("c", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			tb.Write(p, "purge", fmt.Sprintf("%04d", i), []byte("x"))
		}
		tb.Write(p, "keep", "0001", []byte("y"))
		removed = tb.DeletePartition(p, "purge")
	})
	k.Run()
	if removed != 5 {
		t.Fatalf("removed = %d", removed)
	}
	if tb.Len() != 1 {
		t.Fatalf("rows left = %d, want 1", tb.Len())
	}
	// 5 rows at MaxBatch=3 => 2 batch transactions.
	if tb.Stats().Batches != 2 {
		t.Fatalf("batches = %d, want 2", tb.Stats().Batches)
	}
}

func TestReadReturnsCopy(t *testing.T) {
	k := sim.NewKernel(1)
	tb := New(k, "history", fixedParams())
	k.Spawn("c", func(p *sim.Proc) {
		tb.Write(p, "p", "r", []byte("abc"))
		v, _ := tb.Read(p, "p", "r")
		v[0] = 'X'
		v2, _ := tb.Read(p, "p", "r")
		if string(v2) != "abc" {
			t.Errorf("store mutated through returned slice: %q", v2)
		}
	})
	k.Run()
}

func TestTransactionsTotal(t *testing.T) {
	k := sim.NewKernel(1)
	tb := New(k, "history", fixedParams())
	k.Spawn("c", func(p *sim.Proc) {
		tb.Write(p, "p", "1", nil)                          // 1 write
		tb.Read(p, "p", "1")                                // 1 read
		tb.Query(p, "p")                                    // 1 query
		tb.Delete(p, "p", "1")                              // 1 delete
		tb.WriteBatch(p, "p", []Entity{{PK: "p", RK: "2"}}) // 1 batch
	})
	k.Run()
	if got := tb.Stats().Transactions(); got != 5 {
		t.Fatalf("transactions = %d, want 5", got)
	}
}
