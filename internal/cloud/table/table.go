// Package table models a cloud NoSQL table (Azure Table Storage /
// DynamoDB analogue) keyed by (partition key, row key). The Durable
// Task Framework stores orchestration event-sourcing history here, so
// table transactions are a metered component of Azure's stateful cost.
package table

import (
	"slices"
	"strings"
	"time"

	"statebench/internal/sim"
)

// Params describes table latency and batching limits.
type Params struct {
	// OpLatency is the per-operation service latency.
	OpLatency sim.Dist
	// MaxBatch is the maximum entities per batch write (Azure: 100,
	// single partition). 0 disables batching limits.
	MaxBatch int
}

// DefaultParams matches Azure Table Storage: ~8 ms operations and
// 100-entity entity-group transactions.
func DefaultParams() Params {
	return Params{
		OpLatency: sim.LogNormalDist{Median: 8 * time.Millisecond, Sigma: 0.4, Max: time.Second},
		MaxBatch:  100,
	}
}

// Entity is one stored row.
type Entity struct {
	PK   string
	RK   string
	Data []byte
}

// Stats counts table operations.
type Stats struct {
	Reads   int64
	Writes  int64
	Queries int64
	Batches int64
	Deletes int64
}

// Transactions returns the billable transaction count. A batch counts
// as one transaction (entity-group transaction), a query as one per
// returned page (pages modeled as one here).
func (s Stats) Transactions() int64 { return s.Reads + s.Writes + s.Queries + s.Batches + s.Deletes }

type rowKey struct{ pk, rk string }

// Table is a simulated NoSQL table.
type Table struct {
	k      *sim.Kernel
	rng    *sim.RNG
	name   string
	params Params
	rows   map[rowKey][]byte
	stats  Stats
}

// New creates an empty table named name.
func New(k *sim.Kernel, name string, params Params) *Table {
	return &Table{k: k, rng: k.Stream("table/" + name), name: name, params: params, rows: make(map[rowKey][]byte)}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Stats returns a snapshot of the operation counters.
func (t *Table) Stats() Stats { return t.stats }

// ResetStats zeroes the operation counters.
func (t *Table) ResetStats() { t.stats = Stats{} }

// Len returns the number of rows (control-plane; free).
func (t *Table) Len() int { return len(t.rows) }

// Write upserts one row, consuming one operation latency.
func (t *Table) Write(p *sim.Proc, pk, rk string, data []byte) {
	t.stats.Writes++
	p.Sleep(t.params.OpLatency.Sample(t.rng))
	cp := make([]byte, len(data))
	copy(cp, data)
	t.rows[rowKey{pk, rk}] = cp
}

// Read fetches one row. A miss still costs one operation.
func (t *Table) Read(p *sim.Proc, pk, rk string) ([]byte, bool) {
	t.stats.Reads++
	p.Sleep(t.params.OpLatency.Sample(t.rng))
	data, ok := t.rows[rowKey{pk, rk}]
	if !ok {
		return nil, false
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, true
}

// Preload upserts one row without consuming virtual time or metering a
// transaction — for staging state that exists before the measured
// window (e.g. entities trained in an earlier campaign).
func (t *Table) Preload(pk, rk string, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	t.rows[rowKey{pk, rk}] = cp
}

// Peek reads one row without consuming virtual time or metering a
// transaction (control-plane helper for tests and reports).
func (t *Table) Peek(pk, rk string) ([]byte, bool) {
	data, ok := t.rows[rowKey{pk, rk}]
	return data, ok
}

// Delete removes one row (idempotent), consuming one operation latency.
func (t *Table) Delete(p *sim.Proc, pk, rk string) {
	t.stats.Deletes++
	p.Sleep(t.params.OpLatency.Sample(t.rng))
	delete(t.rows, rowKey{pk, rk})
}

// WriteBatch upserts entities as entity-group transactions of up to
// MaxBatch rows each; every group is one metered transaction. All
// entities must share pk (enforced, matching Azure).
func (t *Table) WriteBatch(p *sim.Proc, pk string, entities []Entity) {
	if len(entities) == 0 {
		return
	}
	max := t.params.MaxBatch
	if max <= 0 {
		max = len(entities)
	}
	for start := 0; start < len(entities); start += max {
		end := start + max
		if end > len(entities) {
			end = len(entities)
		}
		t.stats.Batches++
		p.Sleep(t.params.OpLatency.Sample(t.rng))
		for _, e := range entities[start:end] {
			if e.PK != pk {
				panic("table: WriteBatch entities must share a partition key")
			}
			cp := make([]byte, len(e.Data))
			copy(cp, e.Data)
			t.rows[rowKey{e.PK, e.RK}] = cp
		}
	}
}

// Query returns all rows in partition pk in row-key order, consuming
// one operation latency. It is how an orchestration's history is loaded.
func (t *Table) Query(p *sim.Proc, pk string) []Entity {
	t.stats.Queries++
	p.Sleep(t.params.OpLatency.Sample(t.rng))
	var out []Entity
	for k, v := range t.rows {
		if k.pk == pk {
			cp := make([]byte, len(v))
			copy(cp, v)
			out = append(out, Entity{PK: k.pk, RK: k.rk, Data: cp})
		}
	}
	slices.SortFunc(out, func(a, b Entity) int { return strings.Compare(a.RK, b.RK) })
	return out
}

// DeletePartition removes every row in pk as batched deletes (one
// transaction per MaxBatch rows), used when purging orchestration
// history.
func (t *Table) DeletePartition(p *sim.Proc, pk string) int {
	var keys []rowKey
	for k := range t.rows {
		if k.pk == pk {
			keys = append(keys, k)
		}
	}
	max := t.params.MaxBatch
	if max <= 0 {
		max = len(keys)
	}
	for start := 0; start < len(keys); start += max {
		t.stats.Batches++
		p.Sleep(t.params.OpLatency.Sample(t.rng))
	}
	for _, k := range keys {
		delete(t.rows, k)
	}
	return len(keys)
}
