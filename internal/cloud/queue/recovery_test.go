package queue

import (
	"testing"
	"time"

	"statebench/internal/chaos"
	"statebench/internal/sim"
)

// drainFor dequeues until want messages were delivered or virtual time
// passes deadline, sleeping between empty polls so ghost copies have
// time to reappear.
func drainFor(p *sim.Proc, q *Queue, want int, deadline sim.Time) int {
	got := 0
	for got < want && p.Now() < deadline {
		if _, ok := q.TryDequeue(p); ok {
			got++
			continue
		}
		p.Sleep(500 * time.Millisecond)
	}
	return got
}

// TestDeliveredDuplicateBooksNoRecoveryDelay is the regression test for
// the RecoveryDelay accounting fix: a duplicated delivery SUCCEEDS — the
// consumer got the message and only the delete was lost — so its ghost
// copy is surplus traffic, not time anyone spent waiting for recovery.
// Before the fix, settleInvisible booked one full visibility timeout of
// RecoveryDelay per delivered duplicate, inflating the recovery metric
// by 30s per ghost that delayed nothing.
func TestDeliveredDuplicateBooksNoRecoveryDelay(t *testing.T) {
	k := sim.NewKernel(1)
	inj := chaos.NewInjector(k, &chaos.Plan{Rules: []chaos.Rule{
		{Component: "queue", Kind: chaos.Duplicate, Rate: 1, MaxFaults: 3},
	}})
	q := New(k, "dup", chaosParams(10))
	q.Chaos = inj
	var got int
	k.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			if err := q.Enqueue(p, []byte{byte(i)}); err != nil {
				t.Errorf("Enqueue: %v", err)
				return
			}
		}
		// 3 originals + 3 ghost copies after the 2s visibility timeout.
		got = drainFor(p, q, 6, sim.Time(30*time.Second))
	})
	k.Run()
	if got != 6 {
		t.Fatalf("delivered %d messages, want 6 (3 originals + 3 ghosts)", got)
	}
	st := inj.Stats()
	if st.Duplicates != 3 {
		t.Fatalf("duplicates = %d, want 3", st.Duplicates)
	}
	if st.RecoveryDelay != 0 {
		t.Fatalf("RecoveryDelay = %v, want 0: delivered duplicates delayed nobody", st.RecoveryDelay)
	}
}

// TestRecoveryDelayBookedForFailedDeliveries pins the other side of the
// accounting: a genuine redelivery (the consumer crashed before
// acknowledging) makes the message wait out the full visibility timeout,
// and that wait IS recovery delay — exactly one visibility timeout per
// failed attempt.
func TestRecoveryDelayBookedForFailedDeliveries(t *testing.T) {
	k := sim.NewKernel(1)
	inj := chaos.NewInjector(k, &chaos.Plan{Rules: []chaos.Rule{
		{Component: "queue", Kind: chaos.Redeliver, Rate: 1, MaxFaults: 2},
	}})
	q := New(k, "redeliver", chaosParams(10))
	q.Chaos = inj
	var got int
	k.Spawn("driver", func(p *sim.Proc) {
		if err := q.Enqueue(p, []byte("m")); err != nil {
			t.Errorf("Enqueue: %v", err)
			return
		}
		got = drainFor(p, q, 1, sim.Time(30*time.Second))
	})
	k.Run()
	if got != 1 {
		t.Fatalf("delivered %d messages, want 1", got)
	}
	st := inj.Stats()
	if st.Redeliveries != 2 {
		t.Fatalf("redeliveries = %d, want 2", st.Redeliveries)
	}
	// chaosParams sets a 2s visibility timeout; two failed attempts each
	// book exactly one timeout.
	if want := 4 * time.Second; st.RecoveryDelay != want {
		t.Fatalf("RecoveryDelay = %v, want %v (one visibility timeout per failed attempt)", st.RecoveryDelay, want)
	}
}
