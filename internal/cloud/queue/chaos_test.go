package queue

import (
	"fmt"
	"testing"
	"time"

	"statebench/internal/chaos"
	"statebench/internal/sim"
)

func chaosParams(maxDequeue int) Params {
	p := fixedParams()
	p.MaxPayload = 0
	p.VisibilityTimeout = 2 * time.Second
	p.MaxDequeueCount = maxDequeue
	return p
}

// TestAtLeastOnceProperty is the satellite property test: under any
// seeded fault schedule mixing redelivery and duplicates, with
// dead-lettering enabled, every enqueued message is eventually either
// delivered at least once or dead-lettered — none are lost — and
// virtual time never moves backward.
func TestAtLeastOnceProperty(t *testing.T) {
	const msgs = 40
	for seed := uint64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			k := sim.NewKernel(seed)
			inj := chaos.NewInjector(k, &chaos.Plan{Rules: []chaos.Rule{
				{Component: "queue", Kind: chaos.Redeliver, Rate: 0.3},
				{Component: "queue", Kind: chaos.Duplicate, Rate: 0.2},
			}})
			q := New(k, "prop", chaosParams(4))
			q.Chaos = inj

			seen := map[int64]int{}
			lastNow := sim.Time(0)
			coveredCount := func() int {
				// A message counts once whether it was delivered,
				// dead-lettered, or (duplicate ghost gone poison) both.
				covered := map[int64]bool{}
				for id := range seen {
					covered[id] = true
				}
				for _, m := range q.DeadLetters() {
					covered[m.ID] = true
				}
				return len(covered)
			}
			k.Spawn("driver", func(p *sim.Proc) {
				for i := 0; i < msgs; i++ {
					if err := q.Enqueue(p, []byte{byte(i)}); err != nil {
						t.Errorf("Enqueue: %v", err)
						return
					}
				}
				for coveredCount() < msgs {
					if p.Now() < lastNow {
						t.Error("virtual time went backward")
						return
					}
					lastNow = p.Now()
					m, ok := q.TryDequeue(p)
					if !ok {
						p.Sleep(500 * time.Millisecond)
						continue
					}
					seen[m.ID]++
				}
			})
			k.Run()

			if got := coveredCount(); got != msgs {
				t.Fatalf("%d of %d messages accounted for (delivered or dead-lettered)", got, msgs)
			}
			for _, m := range q.DeadLetters() {
				if seen[m.ID] == 0 && m.Dequeues < 4 {
					t.Errorf("message %d dead-lettered after only %d attempts", m.ID, m.Dequeues)
				}
			}
			st := q.Stats()
			if st.Redeliveries > 0 && inj.Stats().Redeliveries == 0 {
				t.Fatal("queue booked redeliveries the injector never injected")
			}
		})
	}
}

// TestPoisonMessageDeadLetters forces every delivery attempt to fail:
// the message must dead-letter after exactly MaxDequeueCount attempts
// and never be delivered.
func TestPoisonMessageDeadLetters(t *testing.T) {
	k := sim.NewKernel(1)
	inj := chaos.NewInjector(k, &chaos.Plan{Rules: []chaos.Rule{
		{Component: "queue", Kind: chaos.Redeliver, Rate: 1},
	}})
	q := New(k, "poison", chaosParams(3))
	q.Chaos = inj
	delivered := 0
	k.Spawn("driver", func(p *sim.Proc) {
		if err := q.Enqueue(p, []byte("bad")); err != nil {
			t.Errorf("Enqueue: %v", err)
			return
		}
		for i := 0; i < 20 && len(q.DeadLetters()) == 0; i++ {
			if _, ok := q.TryDequeue(p); ok {
				delivered++
			}
			p.Sleep(3 * time.Second)
		}
	})
	k.Run()
	if delivered != 0 {
		t.Fatalf("poison message was delivered %d times", delivered)
	}
	dl := q.DeadLetters()
	if len(dl) != 1 {
		t.Fatalf("dead-letter queue has %d messages, want 1", len(dl))
	}
	if dl[0].Dequeues != 3 {
		t.Fatalf("poison message dead-lettered after %d attempts, want MaxDequeueCount=3", dl[0].Dequeues)
	}
	st := q.Stats()
	if st.DeadLettered != 1 || st.Redeliveries != 3 || st.Dequeues != 0 {
		t.Fatalf("stats = %+v, want 3 redeliveries, 1 dead-letter, 0 dequeues", st)
	}
	if inj.Stats().DeadLetters != 1 {
		t.Fatalf("injector booked %d dead letters, want 1", inj.Stats().DeadLetters)
	}
}

// TestUnlimitedRedeliveryNeverPoisons covers MaxDequeueCount = 0 (the
// Durable control-queue setting): a failing message keeps reappearing
// and is eventually delivered once the fault rule's budget runs out.
func TestUnlimitedRedeliveryNeverPoisons(t *testing.T) {
	k := sim.NewKernel(1)
	inj := chaos.NewInjector(k, &chaos.Plan{Rules: []chaos.Rule{
		{Component: "queue", Kind: chaos.Redeliver, Rate: 1, MaxFaults: 7},
	}})
	q := New(k, "ctrl", chaosParams(0))
	q.Chaos = inj
	delivered := 0
	k.Spawn("driver", func(p *sim.Proc) {
		if err := q.Enqueue(p, []byte("msg")); err != nil {
			t.Errorf("Enqueue: %v", err)
			return
		}
		for i := 0; i < 40 && delivered == 0; i++ {
			if _, ok := q.TryDequeue(p); ok {
				delivered++
			}
			p.Sleep(3 * time.Second)
		}
	})
	k.Run()
	if delivered != 1 {
		t.Fatalf("message delivered %d times, want 1 after redelivery budget drained", delivered)
	}
	if len(q.DeadLetters()) != 0 {
		t.Fatal("MaxDequeueCount=0 queue dead-lettered a message")
	}
	if q.Stats().Redeliveries != 7 {
		t.Fatalf("redeliveries = %d, want 7", q.Stats().Redeliveries)
	}
}

// TestTransactionsCountsChaosOps is the satellite regression test for
// Stats.Transactions: redelivered attempts bill their get and
// dead-letter moves bill put+delete, on top of the classic
// enqueue + 2*dequeue + empty-poll formula.
func TestTransactionsCountsChaosOps(t *testing.T) {
	k := sim.NewKernel(1)
	inj := chaos.NewInjector(k, &chaos.Plan{Rules: []chaos.Rule{
		{Component: "queue", Kind: chaos.Redeliver, Rate: 1, MaxFaults: 2},
	}})
	q := New(k, "bill", chaosParams(2))
	q.Chaos = inj
	k.Spawn("driver", func(p *sim.Proc) {
		// Message 1 fails twice and dead-letters (MaxDequeueCount=2);
		// message 2 is enqueued after the fault budget is drained and
		// delivers cleanly.
		if err := q.Enqueue(p, []byte("poison")); err != nil {
			t.Errorf("Enqueue: %v", err)
			return
		}
		for i := 0; i < 10 && len(q.DeadLetters()) == 0; i++ {
			if _, ok := q.TryDequeue(p); ok {
				t.Error("poison message was delivered")
			}
			p.Sleep(3 * time.Second)
		}
		if err := q.Enqueue(p, []byte("clean")); err != nil {
			t.Errorf("Enqueue: %v", err)
			return
		}
		if _, ok := q.TryDequeue(p); !ok {
			t.Error("clean message not delivered")
		}
		// One final empty poll for the formula's EmptyPolls term.
		if _, ok := q.TryDequeue(p); ok {
			t.Error("queue should be empty")
		}
	})
	k.Run()
	st := q.Stats()
	if st.Enqueues != 2 || st.Dequeues != 1 || st.Redeliveries != 2 || st.DeadLettered != 1 || st.EmptyPolls != 1 {
		t.Fatalf("stats = %+v, want 2 enqueues, 1 dequeue, 1 empty poll, 2 redeliveries, 1 dead-letter", st)
	}
	want := st.Enqueues + 2*st.Dequeues + st.EmptyPolls + st.Redeliveries + 2*st.DeadLettered
	if got := st.Transactions(); got != want {
		t.Fatalf("Transactions() = %d, want %d", got, want)
	}
	// The chaos terms must actually contribute: recompute without them.
	withoutChaos := st.Enqueues + 2*st.Dequeues + st.EmptyPolls
	if st.Transactions() == withoutChaos {
		t.Fatal("Transactions() ignores redeliveries and dead-letter moves")
	}
}

// TestDuplicateDeliveryGhost verifies a Duplicate fault delivers the
// message normally and redelivers the same message later.
func TestDuplicateDeliveryGhost(t *testing.T) {
	k := sim.NewKernel(1)
	inj := chaos.NewInjector(k, &chaos.Plan{Rules: []chaos.Rule{
		{Component: "queue", Kind: chaos.Duplicate, Rate: 1, MaxFaults: 1},
	}})
	q := New(k, "dup", chaosParams(5))
	q.Chaos = inj
	var ids []int64
	k.Spawn("driver", func(p *sim.Proc) {
		if err := q.Enqueue(p, []byte("m")); err != nil {
			t.Errorf("Enqueue: %v", err)
			return
		}
		for i := 0; i < 10 && len(ids) < 2; i++ {
			if m, ok := q.TryDequeue(p); ok {
				ids = append(ids, m.ID)
			}
			p.Sleep(3 * time.Second)
		}
	})
	k.Run()
	if len(ids) != 2 || ids[0] != ids[1] {
		t.Fatalf("deliveries = %v, want the same message twice", ids)
	}
	if st := q.Stats(); st.Dequeues != 2 {
		t.Fatalf("dequeues = %d, want 2 (original + ghost)", st.Dequeues)
	}
	if inj.Stats().Duplicates != 1 {
		t.Fatalf("injector duplicates = %d, want 1", inj.Stats().Duplicates)
	}
}
