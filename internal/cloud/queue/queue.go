// Package queue models a cloud storage queue (Azure Storage Queue /
// SQS analogue). Its defining property for this study is the billing
// model: every enqueue, dequeue, *and empty poll* is a metered storage
// transaction, which is the mechanism behind Azure Durable Functions'
// idle-time charges (paper §II-B, §V-A).
package queue

import (
	"fmt"
	"time"

	"statebench/internal/chaos"
	"statebench/internal/obs/span"
	"statebench/internal/sim"
)

// Params describes a queue's latency, payload, and polling behavior.
type Params struct {
	// OpLatency is the per-operation service latency.
	OpLatency sim.Dist
	// MaxPayload is the maximum message size in bytes (0 = unlimited).
	// Azure Storage Queues and SQS both cap at 256 KB.
	MaxPayload int
	// MinPoll and MaxPoll bound the poller's adaptive back-off interval.
	MinPoll time.Duration
	MaxPoll time.Duration
	// PollBackoff is the multiplicative back-off factor applied to the
	// poll interval after each empty poll (>= 1).
	PollBackoff float64
	// VisibilityTimeout is how long a message stays invisible after a
	// failed (chaos-redelivered) or duplicated delivery before it
	// reappears at the tail of the queue.
	VisibilityTimeout time.Duration
	// MaxDequeueCount dead-letters a message once its dequeue attempts
	// reach this count (poison-message handling). 0 disables
	// dead-lettering (unlimited redelivery, the Durable Task Framework
	// control-queue behavior).
	MaxDequeueCount int
}

// DefaultParams matches Azure Storage Queue behavior: ~5 ms operations,
// 256 KB payloads, and the Durable Task Framework's default adaptive
// polling from 100 ms up to 30 s with 2x back-off.
func DefaultParams() Params {
	return Params{
		OpLatency:         sim.LogNormalDist{Median: 5 * time.Millisecond, Sigma: 0.4, Max: 500 * time.Millisecond},
		MaxPayload:        256 * 1024,
		MinPoll:           100 * time.Millisecond,
		MaxPoll:           30 * time.Second,
		PollBackoff:       2,
		VisibilityTimeout: 30 * time.Second,
		MaxDequeueCount:   5,
	}
}

// PayloadTooLargeError reports an Enqueue whose body exceeds MaxPayload.
type PayloadTooLargeError struct {
	Queue string
	Size  int
	Limit int
}

func (e *PayloadTooLargeError) Error() string {
	return fmt.Sprintf("queue %s: payload %d bytes exceeds limit %d", e.Queue, e.Size, e.Limit)
}

// Message is a queued message. Ctx carries the sender's trace context
// across the hop (the in-memory analogue of an SQS/Storage Queue trace
// header); it is never serialized, so enabling tracing cannot change
// payload sizes or billing.
type Message struct {
	ID         int64
	Body       []byte
	EnqueuedAt sim.Time
	Dequeues   int
	Ctx        sim.TraceContext
}

// Stats counts queue operations. EmptyPolls are polls that found no
// message; they are billable transactions on Azure.
type Stats struct {
	Enqueues   int64
	Dequeues   int64
	EmptyPolls int64
	Bytes      int64
	// Redeliveries counts failed delivery attempts (the consumer
	// crashed before acknowledging): the get happened, the delete
	// never did, and the message reappeared after the visibility
	// timeout. Only chaos injection produces these.
	Redeliveries int64
	// DeadLettered counts poison messages moved to the dead-letter
	// queue after MaxDequeueCount attempts.
	DeadLettered int64
}

// Transactions returns the billable transaction count. A successful
// dequeue costs two operations (get + delete), matching Azure Storage
// Queue semantics. A redelivered attempt bills only its get (the
// delete never happened), and a dead-letter move bills two more
// operations (put on the poison queue + delete from the source).
func (s Stats) Transactions() int64 {
	return s.Enqueues + 2*s.Dequeues + s.EmptyPolls + s.Redeliveries + 2*s.DeadLettered
}

// Queue is a simulated storage queue. Receivers use polling (TryDequeue
// or Poll), never push delivery — that is exactly the storage-queue
// model whose transaction costs the paper characterizes.
type Queue struct {
	k      *sim.Kernel
	rng    *sim.RNG
	name   string
	params Params
	msgs   []*Message
	dead   []*Message
	nextID int64
	stats  Stats

	// Tracer, when non-nil, receives one KindHop span per delivered
	// message (enqueue→dequeue), parented to the sender's context.
	Tracer *span.Tracer
	// Chaos, when non-nil, can turn a delivery into a redelivery (the
	// message reappears after VisibilityTimeout, or dead-letters) or a
	// duplicate (delivered now and again later) — the at-least-once
	// semantics real storage queues exhibit under consumer failure.
	Chaos *chaos.Injector
}

// New creates an empty queue named name.
func New(k *sim.Kernel, name string, params Params) *Queue {
	if params.PollBackoff < 1 {
		params.PollBackoff = 1
	}
	return &Queue{k: k, rng: k.Stream("queue/" + name), name: name, params: params}
}

// Name returns the queue name.
func (q *Queue) Name() string { return q.name }

// Len returns the number of queued messages (control-plane; free).
func (q *Queue) Len() int { return len(q.msgs) }

// Stats returns a snapshot of the operation counters.
func (q *Queue) Stats() Stats { return q.stats }

// ResetStats zeroes the operation counters.
func (q *Queue) ResetStats() { q.stats = Stats{} }

// Enqueue appends body, consuming one operation latency. It fails if
// body exceeds the payload limit.
func (q *Queue) Enqueue(p *sim.Proc, body []byte) error {
	if q.params.MaxPayload > 0 && len(body) > q.params.MaxPayload {
		return &PayloadTooLargeError{Queue: q.name, Size: len(body), Limit: q.params.MaxPayload}
	}
	q.stats.Enqueues++
	q.stats.Bytes += int64(len(body))
	p.Sleep(q.params.OpLatency.Sample(q.rng))
	q.nextID++
	q.msgs = append(q.msgs, &Message{ID: q.nextID, Body: body, EnqueuedAt: p.Now(), Ctx: p.TraceCtx})
	return nil
}

// EnqueueFromKernel appends body from event-loop context (no process to
// sleep); the message becomes visible after one mean op latency.
func (q *Queue) EnqueueFromKernel(body []byte) error {
	return q.EnqueueFromKernelCtx(body, sim.TraceContext{})
}

// EnqueueFromKernelCtx is EnqueueFromKernel with an explicit trace
// context for the hop span, for senders that have no process (e.g. the
// Durable hub completing a task from event-loop context).
func (q *Queue) EnqueueFromKernelCtx(body []byte, ctx sim.TraceContext) error {
	if q.params.MaxPayload > 0 && len(body) > q.params.MaxPayload {
		return &PayloadTooLargeError{Queue: q.name, Size: len(body), Limit: q.params.MaxPayload}
	}
	q.stats.Enqueues++
	q.stats.Bytes += int64(len(body))
	d := q.params.OpLatency.Sample(q.rng)
	q.k.After(d, func() {
		q.nextID++
		q.msgs = append(q.msgs, &Message{ID: q.nextID, Body: body, EnqueuedAt: q.k.Now(), Ctx: ctx})
	})
	return nil
}

// TryDequeue polls the queue once, consuming one operation latency.
// An empty result is metered as an EmptyPoll (billable).
func (q *Queue) TryDequeue(p *sim.Proc) (*Message, bool) {
	p.Sleep(q.params.OpLatency.Sample(q.rng))
	if len(q.msgs) == 0 {
		q.stats.EmptyPolls++
		return nil, false
	}
	m := q.msgs[0]
	dup := false
	if q.Chaos != nil {
		if flt, ok := q.Chaos.Next(m.Ctx, "queue", q.name); ok {
			if flt.Kind != chaos.Duplicate {
				// Redelivery: the get happened but the consumer died
				// before acknowledging. The caller sees an empty poll;
				// the message reappears after the visibility timeout
				// unless its dequeue count is exhausted.
				q.msgs = q.msgs[1:]
				m.Dequeues++
				q.stats.Redeliveries++
				q.settleInvisible(m, false)
				return nil, false
			}
			dup = true
		}
	}
	q.stats.Dequeues++
	q.msgs = q.msgs[1:]
	m.Dequeues++
	// The hop span is emitted retroactively at delivery: only now is the
	// in-flight window (enqueue → dequeue) known.
	q.Tracer.Emit(span.KindHop, "queue/"+q.name, m.EnqueuedAt, p.Now(), m.Ctx)
	if dup {
		// Duplicate: the delivery succeeded but the delete was lost, so
		// the visibility timeout lapses and the same message reappears
		// later as a ghost copy — classic at-least-once delivery.
		q.settleInvisible(m, true)
	}
	return m, true
}

// settleInvisible decides the fate of a message whose delete was never
// applied: reappear after the visibility timeout, or — if the attempt
// failed and MaxDequeueCount is exhausted — move to the dead-letter
// queue. A successfully delivered duplicate whose attempts are
// exhausted simply stops ghosting (it is never poisoned).
func (q *Queue) settleInvisible(m *Message, delivered bool) {
	if q.params.MaxDequeueCount > 0 && m.Dequeues >= q.params.MaxDequeueCount {
		if !delivered {
			q.stats.DeadLettered++
			q.dead = append(q.dead, m)
			q.Chaos.NoteDeadLetter(m.Ctx, q.name)
		}
		return
	}
	vt := q.params.VisibilityTimeout
	if vt <= 0 {
		vt = 30 * time.Second
	}
	if !delivered {
		// Only a failed attempt makes the consumer wait out the
		// visibility timeout. A delivered duplicate's ghost copy is
		// surplus traffic, not recovery time — booking it would inflate
		// RecoveryDelay by 30s per duplicate that delayed nothing.
		q.Chaos.NoteRecovery(vt)
	}
	q.k.After(vt, func() {
		q.msgs = append(q.msgs, m)
	})
}

// DeadLetters returns the poison messages moved off the queue, in
// move order. The slice is owned by the queue.
func (q *Queue) DeadLetters() []*Message { return q.dead }

// Poll blocks the calling process until a message is available, using
// the queue's adaptive polling policy: poll, back off on empty, reset on
// success. Every poll (empty or not) is metered. stop, if non-nil, is
// checked between polls and aborts the wait when completed.
func (q *Queue) Poll(p *sim.Proc, stop *sim.Future[struct{}]) (*Message, bool) {
	interval := q.params.MinPoll
	for {
		if stop != nil && stop.Done() {
			return nil, false
		}
		if m, ok := q.TryDequeue(p); ok {
			return m, true
		}
		p.Sleep(interval)
		interval = time.Duration(float64(interval) * q.params.PollBackoff)
		if interval > q.params.MaxPoll {
			interval = q.params.MaxPoll
		}
	}
}

// PeekAge returns the age of the oldest message, or 0 if empty.
// Control-plane only (used by autoscalers, which in the real systems
// read queue-length metrics out of band).
func (q *Queue) PeekAge(now sim.Time) time.Duration {
	if len(q.msgs) == 0 {
		return 0
	}
	return now - q.msgs[0].EnqueuedAt
}
