package queue

import (
	"errors"
	"testing"
	"time"

	"statebench/internal/sim"
)

func fixedParams() Params {
	return Params{
		OpLatency:   sim.Fixed{D: 5 * time.Millisecond},
		MaxPayload:  100,
		MinPoll:     100 * time.Millisecond,
		MaxPoll:     time.Second,
		PollBackoff: 2,
	}
}

func TestEnqueueDequeueFIFO(t *testing.T) {
	k := sim.NewKernel(1)
	q := New(k, "q", fixedParams())
	var got []string
	k.Spawn("c", func(p *sim.Proc) {
		for _, s := range []string{"a", "b", "c"} {
			if err := q.Enqueue(p, []byte(s)); err != nil {
				t.Errorf("Enqueue: %v", err)
			}
		}
		for i := 0; i < 3; i++ {
			m, ok := q.TryDequeue(p)
			if !ok {
				t.Error("TryDequeue empty")
				return
			}
			got = append(got, string(m.Body))
		}
	})
	k.Run()
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("got %v", got)
	}
}

func TestPayloadLimit(t *testing.T) {
	k := sim.NewKernel(1)
	q := New(k, "q", fixedParams())
	var err error
	k.Spawn("c", func(p *sim.Proc) { err = q.Enqueue(p, make([]byte, 101)) })
	k.Run()
	var tooBig *PayloadTooLargeError
	if !errors.As(err, &tooBig) {
		t.Fatalf("err = %v, want PayloadTooLargeError", err)
	}
	if tooBig.Size != 101 || tooBig.Limit != 100 {
		t.Fatalf("error detail = %+v", tooBig)
	}
	if q.Len() != 0 {
		t.Fatal("oversized message was enqueued")
	}
}

func TestEmptyPollsAreMetered(t *testing.T) {
	k := sim.NewKernel(1)
	q := New(k, "q", fixedParams())
	k.Spawn("c", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			if _, ok := q.TryDequeue(p); ok {
				t.Error("dequeued from empty queue")
			}
		}
	})
	k.Run()
	st := q.Stats()
	if st.EmptyPolls != 5 {
		t.Fatalf("empty polls = %d, want 5", st.EmptyPolls)
	}
	if st.Transactions() != 5 {
		t.Fatalf("transactions = %d, want 5 (idle polling is billable)", st.Transactions())
	}
}

func TestTransactionAccounting(t *testing.T) {
	k := sim.NewKernel(1)
	q := New(k, "q", fixedParams())
	k.Spawn("c", func(p *sim.Proc) {
		if err := q.Enqueue(p, []byte("x")); err != nil {
			t.Errorf("Enqueue: %v", err)
		}
		if _, ok := q.TryDequeue(p); !ok {
			t.Error("dequeue failed")
		}
	})
	k.Run()
	st := q.Stats()
	// 1 enqueue + 2 (get+delete) for the dequeue.
	if st.Transactions() != 3 {
		t.Fatalf("transactions = %d, want 3", st.Transactions())
	}
}

func TestPollBacksOffExponentially(t *testing.T) {
	k := sim.NewKernel(1)
	q := New(k, "q", fixedParams())
	var got *Message
	var doneAt time.Duration
	k.Spawn("poller", func(p *sim.Proc) {
		m, ok := q.Poll(p, nil)
		if !ok {
			t.Error("poll aborted")
		}
		got = m
		doneAt = p.Now()
	})
	// Message appears at t=10s; by then poll interval is capped at 1s.
	k.At(10*time.Second, func() {
		if err := q.EnqueueFromKernel([]byte("late")); err != nil {
			t.Errorf("EnqueueFromKernel: %v", err)
		}
	})
	k.Run()
	if got == nil || string(got.Body) != "late" {
		t.Fatalf("got %v", got)
	}
	// Polls at 0, then sleeps 100ms, 200, 400, 800, 1000, 1000, ...
	// Must find the message within MaxPoll+opLatency of its arrival.
	if doneAt > 10*time.Second+time.Second+100*time.Millisecond {
		t.Fatalf("found at %v, exceeds max poll window", doneAt)
	}
	if q.Stats().EmptyPolls < 5 {
		t.Fatalf("empty polls = %d, expected several while idle", q.Stats().EmptyPolls)
	}
}

func TestPollStop(t *testing.T) {
	k := sim.NewKernel(1)
	q := New(k, "q", fixedParams())
	stop := sim.NewFuture[struct{}](k)
	var ok bool
	ran := false
	k.Spawn("poller", func(p *sim.Proc) {
		_, ok = q.Poll(p, stop)
		ran = true
	})
	k.At(3*time.Second, func() { stop.Complete(struct{}{}, nil) })
	k.Run()
	if !ran {
		t.Fatal("poller never returned")
	}
	if ok {
		t.Fatal("poll returned a message after stop")
	}
}

func TestMessageMetadata(t *testing.T) {
	k := sim.NewKernel(1)
	q := New(k, "q", fixedParams())
	k.Spawn("c", func(p *sim.Proc) {
		if err := q.Enqueue(p, []byte("x")); err != nil {
			t.Errorf("enqueue: %v", err)
		}
		enqueuedAt := p.Now()
		p.Sleep(2 * time.Second)
		if q.PeekAge(p.Now()) != 2*time.Second {
			t.Errorf("PeekAge = %v", q.PeekAge(p.Now()))
		}
		m, _ := q.TryDequeue(p)
		if m.EnqueuedAt != enqueuedAt {
			t.Errorf("EnqueuedAt = %v, want %v", m.EnqueuedAt, enqueuedAt)
		}
		if m.Dequeues != 1 {
			t.Errorf("Dequeues = %d", m.Dequeues)
		}
	})
	k.Run()
}
