// Package blob models a cloud object store (AWS S3 / Azure Blob
// analogue) inside the simulation: latency is a per-operation round-trip
// plus a size-dependent transfer term, and every operation is metered so
// storage traffic can be priced and reported.
package blob

import (
	"fmt"
	"time"

	"statebench/internal/sim"
)

// Params describes the latency model of a blob store.
type Params struct {
	// GetRTT and PutRTT are the per-operation base latencies (request
	// round-trip excluding payload transfer).
	GetRTT sim.Dist
	PutRTT sim.Dist
	// ReadBW and WriteBW are payload transfer bandwidths in bytes/sec.
	ReadBW  float64
	WriteBW float64
}

// DefaultParams is a same-region object store: ~15–30 ms first byte and
// ~90 MB/s effective single-stream throughput, consistent with the
// S3/Azure-Blob behavior the paper's storage-bound steps exhibit.
func DefaultParams() Params {
	return Params{
		GetRTT:  sim.LogNormalDist{Median: 18 * time.Millisecond, Sigma: 0.45, Max: 2 * time.Second},
		PutRTT:  sim.LogNormalDist{Median: 25 * time.Millisecond, Sigma: 0.45, Max: 2 * time.Second},
		ReadBW:  90e6,
		WriteBW: 70e6,
	}
}

// Stats counts blob operations and bytes moved.
type Stats struct {
	Gets         int64
	Puts         int64
	Deletes      int64
	Misses       int64
	BytesRead    int64
	BytesWritten int64
}

// Transactions returns the number of billable storage operations.
func (s Stats) Transactions() int64 { return s.Gets + s.Puts + s.Deletes + s.Misses }

// NotFoundError reports a Get or Delete of a missing key.
type NotFoundError struct{ Key string }

func (e *NotFoundError) Error() string { return fmt.Sprintf("blob: key %q not found", e.Key) }

// object is one stored blob. Shared objects alias caller-owned
// immutable bytes (placeholder payloads, preloaded datasets) instead
// of a private copy, and Get hands the alias back out — both sides of
// the copy that dominated the suite's memory traffic disappear while
// timing and metering stay byte-for-byte identical.
type object struct {
	data   []byte
	shared bool
}

// Store is a simulated object store. All methods that take a *sim.Proc
// consume virtual time on that process.
type Store struct {
	k       *sim.Kernel
	rng     *sim.RNG
	name    string
	params  Params
	objects map[string]object
	stats   Stats
}

// New creates an empty store. name scopes the RNG stream so multiple
// stores in one simulation stay independent.
func New(k *sim.Kernel, name string, params Params) *Store {
	return &Store{
		k:       k,
		rng:     k.Stream("blob/" + name),
		name:    name,
		params:  params,
		objects: make(map[string]object),
	}
}

// Name returns the store's name.
func (s *Store) Name() string { return s.name }

// Stats returns a snapshot of the operation counters.
func (s *Store) Stats() Stats { return s.stats }

// ResetStats zeroes the operation counters (objects are kept).
func (s *Store) ResetStats() { s.stats = Stats{} }

// transfer returns the time to move n bytes at bw bytes/sec.
func transfer(n int, bw float64) time.Duration {
	if bw <= 0 || n <= 0 {
		return 0
	}
	return time.Duration(float64(n) / bw * float64(time.Second))
}

// Put stores data under key, taking RTT + size/bandwidth of virtual time.
func (s *Store) Put(p *sim.Proc, key string, data []byte) {
	s.stats.Puts++
	s.stats.BytesWritten += int64(len(data))
	p.Sleep(s.params.PutRTT.Sample(s.rng) + transfer(len(data), s.params.WriteBW))
	cp := make([]byte, len(data))
	copy(cp, data)
	s.objects[key] = object{data: cp}
}

// PutShared is Put for caller-owned immutable bytes: identical timing
// and metering, but the store keeps an alias instead of a copy, and
// Get returns the alias instead of a copy. Neither the caller nor any
// Get consumer may modify the bytes afterwards. Use it for payloads
// whose content never changes (payload.Zeros placeholders, memoized
// artifacts).
func (s *Store) PutShared(p *sim.Proc, key string, data []byte) {
	s.stats.Puts++
	s.stats.BytesWritten += int64(len(data))
	p.Sleep(s.params.PutRTT.Sample(s.rng) + transfer(len(data), s.params.WriteBW))
	s.objects[key] = object{data: data[:len(data):len(data)], shared: true}
}

// Get retrieves the object under key. A missing key still costs one
// round-trip (and is metered as a miss).
func (s *Store) Get(p *sim.Proc, key string) ([]byte, error) {
	obj, ok := s.objects[key]
	if !ok {
		s.stats.Misses++
		p.Sleep(s.params.GetRTT.Sample(s.rng))
		return nil, &NotFoundError{Key: key}
	}
	s.stats.Gets++
	s.stats.BytesRead += int64(len(obj.data))
	p.Sleep(s.params.GetRTT.Sample(s.rng) + transfer(len(obj.data), s.params.ReadBW))
	if obj.shared {
		return obj.data, nil
	}
	cp := make([]byte, len(obj.data))
	copy(cp, obj.data)
	return cp, nil
}

// Delete removes key. Deleting a missing key is not an error (matching
// S3 semantics) but still costs a round-trip.
func (s *Store) Delete(p *sim.Proc, key string) {
	s.stats.Deletes++
	p.Sleep(s.params.PutRTT.Sample(s.rng))
	delete(s.objects, key)
}

// Preload stores data under key without consuming virtual time or
// metering transactions — for staging inputs that exist before the
// measured window (e.g. the paper's datasets already resident in S3).
func (s *Store) Preload(key string, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	s.objects[key] = object{data: cp}
}

// PreloadShared is Preload without the copy: the store aliases the
// caller's immutable bytes (see PutShared for the contract).
func (s *Store) PreloadShared(key string, data []byte) {
	s.objects[key] = object{data: data[:len(data):len(data)], shared: true}
}

// Exists reports whether key is stored, without consuming virtual time
// (a zero-cost control-plane check used by tests and tooling).
func (s *Store) Exists(key string) bool {
	_, ok := s.objects[key]
	return ok
}

// Size returns the stored size of key, or -1 if absent. Control-plane
// only; consumes no virtual time.
func (s *Store) Size(key string) int {
	obj, ok := s.objects[key]
	if !ok {
		return -1
	}
	return len(obj.data)
}

// Len returns the number of stored objects.
func (s *Store) Len() int { return len(s.objects) }
