package blob

import (
	"errors"
	"testing"
	"time"

	"statebench/internal/sim"
)

// fixedParams gives deterministic latencies for exact-time assertions.
func fixedParams() Params {
	return Params{
		GetRTT:  sim.Fixed{D: 10 * time.Millisecond},
		PutRTT:  sim.Fixed{D: 20 * time.Millisecond},
		ReadBW:  1e6, // 1 MB/s
		WriteBW: 1e6,
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	k := sim.NewKernel(1)
	s := New(k, "s3", fixedParams())
	var got []byte
	k.Spawn("client", func(p *sim.Proc) {
		s.Put(p, "a", []byte("hello"))
		v, err := s.Get(p, "a")
		if err != nil {
			t.Errorf("Get: %v", err)
		}
		got = v
	})
	k.Run()
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
}

func TestLatencyModel(t *testing.T) {
	k := sim.NewKernel(1)
	s := New(k, "s3", fixedParams())
	data := make([]byte, 1_000_000) // 1 MB at 1 MB/s = 1 s transfer
	var putDone, getDone time.Duration
	k.Spawn("client", func(p *sim.Proc) {
		s.Put(p, "big", data)
		putDone = p.Now()
		if _, err := s.Get(p, "big"); err != nil {
			t.Errorf("Get: %v", err)
		}
		getDone = p.Now()
	})
	k.Run()
	if putDone != 1020*time.Millisecond {
		t.Fatalf("put finished at %v, want 1.02s (20ms RTT + 1s transfer)", putDone)
	}
	if getDone-putDone != 1010*time.Millisecond {
		t.Fatalf("get took %v, want 1.01s", getDone-putDone)
	}
}

func TestGetMissing(t *testing.T) {
	k := sim.NewKernel(1)
	s := New(k, "s3", fixedParams())
	var err error
	k.Spawn("client", func(p *sim.Proc) { _, err = s.Get(p, "nope") })
	k.Run()
	var nf *NotFoundError
	if !errors.As(err, &nf) || nf.Key != "nope" {
		t.Fatalf("err = %v, want NotFoundError{nope}", err)
	}
	if s.Stats().Misses != 1 {
		t.Fatalf("misses = %d", s.Stats().Misses)
	}
}

func TestStatsAccounting(t *testing.T) {
	k := sim.NewKernel(1)
	s := New(k, "s3", fixedParams())
	k.Spawn("client", func(p *sim.Proc) {
		s.Put(p, "a", make([]byte, 100))
		s.Put(p, "b", make([]byte, 50))
		if _, err := s.Get(p, "a"); err != nil {
			t.Errorf("Get: %v", err)
		}
		s.Delete(p, "a")
		_, _ = s.Get(p, "a") // now a miss
	})
	k.Run()
	st := s.Stats()
	if st.Puts != 2 || st.Gets != 1 || st.Deletes != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesWritten != 150 || st.BytesRead != 100 {
		t.Fatalf("bytes = %+v", st)
	}
	if st.Transactions() != 5 {
		t.Fatalf("transactions = %d, want 5", st.Transactions())
	}
}

func TestGetReturnsCopy(t *testing.T) {
	k := sim.NewKernel(1)
	s := New(k, "s3", fixedParams())
	k.Spawn("client", func(p *sim.Proc) {
		orig := []byte("abc")
		s.Put(p, "k", orig)
		orig[0] = 'X' // caller mutates after Put; store must be unaffected
		v, err := s.Get(p, "k")
		if err != nil {
			t.Errorf("Get: %v", err)
		}
		if string(v) != "abc" {
			t.Errorf("store affected by caller mutation: %q", v)
		}
		v[0] = 'Y' // mutate returned copy; store must be unaffected
		v2, _ := s.Get(p, "k")
		if string(v2) != "abc" {
			t.Errorf("store affected by reader mutation: %q", v2)
		}
	})
	k.Run()
}

func TestControlPlaneHelpers(t *testing.T) {
	k := sim.NewKernel(1)
	s := New(k, "s3", fixedParams())
	k.Spawn("client", func(p *sim.Proc) { s.Put(p, "k", make([]byte, 7)) })
	k.Run()
	if !s.Exists("k") || s.Exists("nope") {
		t.Fatal("Exists wrong")
	}
	if s.Size("k") != 7 || s.Size("nope") != -1 {
		t.Fatal("Size wrong")
	}
	if s.Len() != 1 {
		t.Fatal("Len wrong")
	}
	s.ResetStats()
	if s.Stats().Transactions() != 0 {
		t.Fatal("ResetStats did not zero counters")
	}
}
