package video

import (
	"encoding/binary"
	"fmt"
)

// This file implements a simple lossless run-length codec for videos,
// giving the workflows realistic byte payloads to move through queues
// and blob storage (the paper's 100 MB input video and per-chunk
// transfers).

// codecMagic identifies encoded streams.
const codecMagic = 0x53564944 // "SVID"

// Encode serializes the video: header, then per-frame RLE of (count,
// value) byte pairs.
func Encode(v *Video) []byte {
	return AppendEncode(make([]byte, 0, len(v.Frames)*v.W*v.H/4+64), v)
}

// AppendEncode appends the encoded stream to dst — which may be a
// recycled buffer with spare capacity — and returns the extended slice.
func AppendEncode(dst []byte, v *Video) []byte {
	buf := dst
	var hdr [20]byte
	binary.LittleEndian.PutUint32(hdr[0:], codecMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(v.W))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(v.H))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(v.FPS))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(len(v.Frames)))
	buf = append(buf, hdr[:]...)

	for _, f := range v.Frames {
		// Frame payload length placeholder.
		lenPos := len(buf)
		buf = append(buf, 0, 0, 0, 0)
		start := len(buf)
		i := 0
		for i < len(f.Pix) {
			v0 := f.Pix[i]
			run := 1
			for i+run < len(f.Pix) && f.Pix[i+run] == v0 && run < 255 {
				run++
			}
			buf = append(buf, byte(run), v0)
			i += run
		}
		binary.LittleEndian.PutUint32(buf[lenPos:], uint32(len(buf)-start))
	}
	return buf
}

// Decode parses an Encode stream.
func Decode(data []byte) (*Video, error) {
	if len(data) < 20 {
		return nil, fmt.Errorf("video: truncated header")
	}
	if binary.LittleEndian.Uint32(data[0:]) != codecMagic {
		return nil, fmt.Errorf("video: bad magic")
	}
	w := int(binary.LittleEndian.Uint32(data[4:]))
	h := int(binary.LittleEndian.Uint32(data[8:]))
	fps := int(binary.LittleEndian.Uint32(data[12:]))
	n := int(binary.LittleEndian.Uint32(data[16:]))
	if w <= 0 || h <= 0 || n < 0 || w*h > 1<<28 {
		return nil, fmt.Errorf("video: implausible dimensions %dx%d x%d", w, h, n)
	}
	v := &Video{W: w, H: h, FPS: fps}
	pos := 20
	for fi := 0; fi < n; fi++ {
		if pos+4 > len(data) {
			return nil, fmt.Errorf("video: truncated at frame %d", fi)
		}
		flen := int(binary.LittleEndian.Uint32(data[pos:]))
		pos += 4
		if pos+flen > len(data) {
			return nil, fmt.Errorf("video: frame %d overruns buffer", fi)
		}
		// Pooled frame: the RLE fill below writes every pixel (enforced
		// by the out != len check), so stale pool contents never leak.
		fr := getFrame(w, h)
		out := 0
		for p := pos; p < pos+flen; p += 2 {
			if p+1 >= len(data) {
				return nil, fmt.Errorf("video: frame %d ragged RLE", fi)
			}
			run := int(data[p])
			val := data[p+1]
			if out+run > len(fr.Pix) {
				return nil, fmt.Errorf("video: frame %d RLE overflow", fi)
			}
			for k := 0; k < run; k++ {
				fr.Pix[out+k] = val
			}
			out += run
		}
		if out != len(fr.Pix) {
			return nil, fmt.Errorf("video: frame %d decoded %d of %d pixels", fi, out, len(fr.Pix))
		}
		pos += flen
		v.Frames = append(v.Frames, fr)
	}
	return v, nil
}

// EncodedSize returns the byte size Encode would produce without
// building the buffer (used for payload planning).
func EncodedSize(v *Video) int {
	size := 20
	for _, f := range v.Frames {
		size += 4
		i := 0
		for i < len(f.Pix) {
			v0 := f.Pix[i]
			run := 1
			for i+run < len(f.Pix) && f.Pix[i+run] == v0 && run < 255 {
				run++
			}
			size += 2
			i += run
		}
	}
	return size
}
