package video

import (
	"bytes"
	"cmp"
	"encoding/gob"
	"fmt"
	"slices"
	"sync"
)

// DetectorModel is the "pretrained model" of the paper's workload: the
// detector's parameters plus a weight blob that pads the serialized
// size to ~1 MB so fetching it from blob storage costs what the paper's
// model fetch cost.
type DetectorModel struct {
	// WindowSizes are the face diameters scanned.
	WindowSizes []int
	// Contrast is the minimum center-minus-surround brightness gap.
	Contrast float64
	// MinBrightness gates the window's mean intensity.
	MinBrightness float64
	// Stride is the scan step in pixels.
	Stride int
	// NMSIoU suppresses overlapping detections above this overlap.
	NMSIoU float64
	// Weights pads the model to a realistic size (unused by the
	// classic pipeline, standing in for CNN weights).
	Weights []byte
}

// DefaultModel returns a detector tuned for Generate's faces, padded to
// about targetBytes serialized size (0 keeps it minimal).
func DefaultModel(targetBytes int) *DetectorModel {
	m := &DetectorModel{
		WindowSizes:   []int{14, 18, 22, 26},
		Contrast:      50,
		MinBrightness: 150,
		Stride:        2,
		NMSIoU:        0.12,
	}
	if targetBytes > 0 {
		m.Weights = make([]byte, targetBytes)
		for i := range m.Weights {
			m.Weights[i] = byte(i * 131)
		}
	}
	return m
}

// EncodeModel serializes the model (gob).
func EncodeModel(m *DetectorModel) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeModel deserializes EncodeModel output.
func DecodeModel(data []byte) (*DetectorModel, error) {
	var m DetectorModel
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}

// integralImage computes the summed-area table of a frame with an extra
// zero row/column, so rectangle sums are O(1).
type integralImage struct {
	w, h int
	sum  []int64
}

// reset recomputes the table for f in place, reusing the sum buffer.
// Only the border row/column needs explicit zeroing on reuse — the
// interior is fully overwritten.
func (ii *integralImage) reset(f *Frame) {
	ii.w, ii.h = f.W+1, f.H+1
	n := ii.w * ii.h
	if cap(ii.sum) < n {
		ii.sum = make([]int64, n)
	} else {
		ii.sum = ii.sum[:n]
		for x := 0; x < ii.w; x++ {
			ii.sum[x] = 0
		}
		for y := 1; y < ii.h; y++ {
			ii.sum[y*ii.w] = 0
		}
	}
	for y := 1; y <= f.H; y++ {
		var rowSum int64
		for x := 1; x <= f.W; x++ {
			rowSum += int64(f.Pix[(y-1)*f.W+(x-1)])
			ii.sum[y*ii.w+x] = ii.sum[(y-1)*ii.w+x] + rowSum
		}
	}
}

// detectScratch holds one frame's transient detection buffers: the
// summed-area table and the pre-NMS candidate list. Pooled because the
// detector runs per frame per chunk per worker — the dominant transient
// allocation of the real video payload.
type detectScratch struct {
	ii    integralImage
	cands []Detection
}

var detectPool = sync.Pool{New: func() any { return new(detectScratch) }}

// rectSum returns the pixel sum over [x, x+w) x [y, y+h).
func (ii *integralImage) rectSum(x, y, w, h int) int64 {
	x2, y2 := x+w, y+h
	return ii.sum[y2*ii.w+x2] - ii.sum[y*ii.w+x2] - ii.sum[y2*ii.w+x] + ii.sum[y*ii.w+x]
}

// Detection is one scored face candidate.
type Detection struct {
	Box   Rect
	Score float64
}

// DetectFrame scans one frame at every window size, scoring windows by
// center brightness minus surround brightness, then applies greedy
// non-maximum suppression.
func (m *DetectorModel) DetectFrame(f *Frame) []Detection {
	scratch := detectPool.Get().(*detectScratch)
	defer detectPool.Put(scratch)
	ii := &scratch.ii
	ii.reset(f)
	stride := m.Stride
	if stride < 1 {
		stride = 1
	}
	cands := scratch.cands[:0]
	defer func() { scratch.cands = cands[:0] }()
	for _, win := range m.WindowSizes {
		if win >= f.W || win >= f.H {
			continue
		}
		border := win / 4
		if border < 1 {
			border = 1
		}
		outer := win + 2*border
		for y := 0; y+outer < f.H; y += stride {
			for x := 0; x+outer < f.W; x += stride {
				inner := ii.rectSum(x+border, y+border, win, win)
				total := ii.rectSum(x, y, outer, outer)
				innerArea := float64(win * win)
				outerArea := float64(outer*outer) - innerArea
				innerMean := float64(inner) / innerArea
				surroundMean := float64(total-inner) / outerArea
				if innerMean < m.MinBrightness {
					continue
				}
				gap := innerMean - surroundMean
				if gap < m.Contrast {
					continue
				}
				cands = append(cands, Detection{
					Box:   Rect{X: x + border, Y: y + border, W: win, H: win},
					Score: gap,
				})
			}
		}
	}
	return nms(cands, m.NMSIoU)
}

// nms applies greedy non-maximum suppression by descending score.
func nms(cands []Detection, iou float64) []Detection {
	slices.SortFunc(cands, func(a, b Detection) int { return cmp.Compare(b.Score, a.Score) })
	var kept []Detection
	for _, c := range cands {
		ok := true
		for _, k := range kept {
			if c.Box.IoU(k.Box) > iou {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, c)
		}
	}
	return kept
}

// DetectVideo runs DetectFrame over every frame.
func (m *DetectorModel) DetectVideo(v *Video) [][]Detection {
	out := make([][]Detection, len(v.Frames))
	for i, f := range v.Frames {
		out[i] = m.DetectFrame(f)
	}
	return out
}

// Annotate draws detection boxes into a copy of the video (the merge
// step's output in the paper returns processed chunks).
func Annotate(v *Video, dets [][]Detection) (*Video, error) {
	if len(dets) != len(v.Frames) {
		return nil, fmt.Errorf("video: %d detection sets for %d frames", len(dets), len(v.Frames))
	}
	out := &Video{W: v.W, H: v.H, FPS: v.FPS}
	for i, f := range v.Frames {
		cp := f.Clone()
		for _, d := range dets[i] {
			drawBox(cp, d.Box)
		}
		out.Frames = append(out.Frames, cp)
	}
	return out, nil
}

func drawBox(f *Frame, r Rect) {
	x2, y2 := r.X+r.W-1, r.Y+r.H-1
	for x := max(r.X, 0); x <= min(x2, f.W-1); x++ {
		if r.Y >= 0 && r.Y < f.H {
			f.Set(x, r.Y, 255)
		}
		if y2 >= 0 && y2 < f.H {
			f.Set(x, y2, 255)
		}
	}
	for y := max(r.Y, 0); y <= min(y2, f.H-1); y++ {
		if r.X >= 0 && r.X < f.W {
			f.Set(r.X, y, 255)
		}
		if x2 >= 0 && x2 < f.W {
			f.Set(x2, y, 255)
		}
	}
}

// Evaluate scores detections against ground truth: a detection matches
// a truth box when IoU exceeds matchIoU; each truth box matches at most
// one detection. Returns precision and recall over the whole video.
func Evaluate(dets [][]Detection, truth [][]Rect, matchIoU float64) (precision, recall float64) {
	var tp, fp, fn int
	for i := range truth {
		var frameDets []Detection
		if i < len(dets) {
			frameDets = dets[i]
		}
		used := make([]bool, len(frameDets))
		for _, tr := range truth[i] {
			matched := false
			for j, d := range frameDets {
				if !used[j] && d.Box.IoU(tr) >= matchIoU {
					used[j] = true
					matched = true
					break
				}
			}
			if matched {
				tp++
			} else {
				fn++
			}
		}
		for j := range frameDets {
			if !used[j] {
				fp++
			}
		}
	}
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		recall = float64(tp) / float64(tp+fn)
	}
	return precision, recall
}
