// Package video implements the video-processing workload's substrate
// from scratch: synthetic grayscale video with planted "faces" (bright
// elliptical blobs on textured background), a run-length frame codec,
// chunking/merging for the paper's split → parallel-detect → merge
// pipeline, and an integral-image sliding-window face detector standing
// in for the paper's OpenCV deep-learning model.
package video

import (
	"fmt"
	"sync"

	"statebench/internal/sim"
)

// Frame is one grayscale frame in row-major order.
type Frame struct {
	W, H int
	Pix  []uint8
}

// NewFrame allocates a zeroed frame.
func NewFrame(w, h int) *Frame {
	return &Frame{W: w, H: h, Pix: make([]uint8, w*h)}
}

// framePool recycles frame headers and pixel planes between decode or
// clone and Release: the chunked pipeline decodes, scans, and discards
// thousands of frames per campaign.
var framePool = sync.Pool{New: func() any { return new(Frame) }}

// getFrame returns a pooled frame whose pixel contents are undefined;
// every caller must overwrite the full plane before the frame is read.
func getFrame(w, h int) *Frame {
	f := framePool.Get().(*Frame)
	f.W, f.H = w, h
	if cap(f.Pix) < w*h {
		f.Pix = make([]uint8, w*h)
	} else {
		f.Pix = f.Pix[:w*h]
	}
	return f
}

// Release returns the video's frames to the frame pool and empties the
// video. Call it only when no alias of the frames (or their Pix slices)
// survives — typically on a decoded chunk after detection finishes.
func (v *Video) Release() {
	for i, f := range v.Frames {
		v.Frames[i] = nil
		framePool.Put(f)
	}
	v.Frames = v.Frames[:0]
}

// At returns the pixel at (x, y).
func (f *Frame) At(x, y int) uint8 { return f.Pix[y*f.W+x] }

// Set writes the pixel at (x, y).
func (f *Frame) Set(x, y int, v uint8) { f.Pix[y*f.W+x] = v }

// Clone returns a deep copy. The copy draws from the frame pool, so a
// later Release of the owning video recycles it.
func (f *Frame) Clone() *Frame {
	cp := getFrame(f.W, f.H)
	copy(cp.Pix, f.Pix)
	return cp
}

// Video is a frame sequence with a nominal frame rate.
type Video struct {
	W, H   int
	FPS    int
	Frames []*Frame
}

// Rect is an axis-aligned box (face ground truth / detection).
type Rect struct {
	X, Y, W, H int
}

// Center returns the box center.
func (r Rect) Center() (int, int) { return r.X + r.W/2, r.Y + r.H/2 }

// Contains reports whether (x, y) is inside the rect.
func (r Rect) Contains(x, y int) bool {
	return x >= r.X && x < r.X+r.W && y >= r.Y && y < r.Y+r.H
}

// IoU returns intersection-over-union of two rects.
func (r Rect) IoU(o Rect) float64 {
	x1 := max(r.X, o.X)
	y1 := max(r.Y, o.Y)
	x2 := min(r.X+r.W, o.X+o.W)
	y2 := min(r.Y+r.H, o.Y+o.H)
	if x2 <= x1 || y2 <= y1 {
		return 0
	}
	inter := float64((x2 - x1) * (y2 - y1))
	union := float64(r.W*r.H+o.W*o.H) - inter
	return inter / union
}

// GenerateOptions configures synthetic video generation.
type GenerateOptions struct {
	W, H      int
	FPS       int
	NumFrames int
	// FacesPerFrame plants this many moving faces.
	FacesPerFrame int
	Seed          uint64
}

// DefaultGenerateOptions is a small clip suitable for tests and the
// benchmark chunks.
func DefaultGenerateOptions() GenerateOptions {
	return GenerateOptions{W: 160, H: 120, FPS: 24, NumFrames: 48, FacesPerFrame: 3, Seed: 1}
}

// Generate builds a synthetic video and its ground-truth face boxes
// (one slice per frame). Faces are bright filled ellipses with darker
// eye spots, drifting over a textured noisy background — enough
// structure for a brightness-contrast detector to find them and for
// false positives to be plausible.
func Generate(opt GenerateOptions) (*Video, [][]Rect) {
	if opt.W <= 0 || opt.H <= 0 || opt.NumFrames <= 0 {
		panic(fmt.Sprintf("video: invalid options %+v", opt))
	}
	r := sim.NewRNG(opt.Seed)
	v := &Video{W: opt.W, H: opt.H, FPS: opt.FPS}
	truth := make([][]Rect, opt.NumFrames)

	type face struct {
		x, y   float64
		vx, vy float64
		radius int
	}
	faces := make([]face, opt.FacesPerFrame)
	for i := range faces {
		faces[i] = face{
			x:      r.Uniform(20, float64(opt.W-20)),
			y:      r.Uniform(20, float64(opt.H-20)),
			vx:     r.Uniform(-1.5, 1.5),
			vy:     r.Uniform(-1.5, 1.5),
			radius: 7 + r.Intn(6),
		}
	}

	for fi := 0; fi < opt.NumFrames; fi++ {
		fr := NewFrame(opt.W, opt.H)
		// Textured background: low-intensity noise with a soft gradient.
		for y := 0; y < opt.H; y++ {
			for x := 0; x < opt.W; x++ {
				base := 30 + (x+y)%17 + int(r.Uint64()%25)
				fr.Set(x, y, uint8(base))
			}
		}
		for i := range faces {
			f := &faces[i]
			f.x += f.vx
			f.y += f.vy
			if f.x < float64(f.radius) || f.x > float64(opt.W-f.radius) {
				f.vx = -f.vx
				f.x += 2 * f.vx
			}
			if f.y < float64(f.radius) || f.y > float64(opt.H-f.radius) {
				f.vy = -f.vy
				f.y += 2 * f.vy
			}
			drawFace(fr, int(f.x), int(f.y), f.radius)
			truth[fi] = append(truth[fi], Rect{
				X: int(f.x) - f.radius, Y: int(f.y) - f.radius,
				W: 2 * f.radius, H: 2 * f.radius,
			})
		}
		v.Frames = append(v.Frames, fr)
	}
	return v, truth
}

// drawFace renders a bright ellipse with two dark eye spots.
func drawFace(fr *Frame, cx, cy, radius int) {
	r2 := radius * radius
	for dy := -radius; dy <= radius; dy++ {
		for dx := -radius; dx <= radius; dx++ {
			if dx*dx+dy*dy > r2 {
				continue
			}
			x, y := cx+dx, cy+dy
			if x < 0 || x >= fr.W || y < 0 || y >= fr.H {
				continue
			}
			fr.Set(x, y, 220)
		}
	}
	eye := radius / 3
	for _, ex := range []int{cx - radius/2, cx + radius/2} {
		for dy := -eye / 2; dy <= eye/2; dy++ {
			for dx := -eye / 2; dx <= eye/2; dx++ {
				x, y := ex+dx, cy-radius/3+dy
				if x < 0 || x >= fr.W || y < 0 || y >= fr.H {
					continue
				}
				fr.Set(x, y, 70)
			}
		}
	}
}

// Split cuts the video into n contiguous chunks (the paper's first
// pipeline stage). Chunks cover all frames; the last chunk absorbs the
// remainder. n must be in [1, NumFrames].
func (v *Video) Split(n int) ([]*Video, error) {
	if n < 1 || n > len(v.Frames) {
		return nil, fmt.Errorf("video: cannot split %d frames into %d chunks", len(v.Frames), n)
	}
	chunks := make([]*Video, n)
	per := len(v.Frames) / n
	extra := len(v.Frames) % n
	pos := 0
	for i := 0; i < n; i++ {
		cnt := per
		if i < extra {
			cnt++
		}
		c := &Video{W: v.W, H: v.H, FPS: v.FPS}
		for j := 0; j < cnt; j++ {
			c.Frames = append(c.Frames, v.Frames[pos].Clone())
			pos++
		}
		chunks[i] = c
	}
	return chunks, nil
}

// Merge concatenates chunks back into one video (the paper's final
// pipeline stage). All chunks must share dimensions.
func Merge(chunks []*Video) (*Video, error) {
	if len(chunks) == 0 {
		return nil, fmt.Errorf("video: nothing to merge")
	}
	out := &Video{W: chunks[0].W, H: chunks[0].H, FPS: chunks[0].FPS}
	for i, c := range chunks {
		if c.W != out.W || c.H != out.H {
			return nil, fmt.Errorf("video: chunk %d is %dx%d, expected %dx%d", i, c.W, c.H, out.W, out.H)
		}
		for _, f := range c.Frames {
			out.Frames = append(out.Frames, f.Clone())
		}
	}
	return out, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
