package video

import "testing"

func benchClip(frames int) (*Video, [][]Rect) {
	opt := DefaultGenerateOptions()
	opt.NumFrames = frames
	return Generate(opt)
}

func BenchmarkDetectFrame(b *testing.B) {
	v, _ := benchClip(1)
	m := DefaultModel(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.DetectFrame(v.Frames[0])
	}
}

func BenchmarkEncode(b *testing.B) {
	v, _ := benchClip(24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Encode(v)
	}
}

func BenchmarkDecode(b *testing.B) {
	v, _ := benchClip(24)
	data := Encode(v)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPayloadFaceDetect measures one cache-cold decode + detect of
// a benchmark chunk — the detect stage's real compute — pinning the
// frame-pool and detector-scratch work.
func BenchmarkPayloadFaceDetect(b *testing.B) {
	v, _ := benchClip(12)
	data := Encode(v)
	m := DefaultModel(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chunk, err := Decode(data)
		if err != nil {
			b.Fatal(err)
		}
		m.DetectVideo(chunk)
		chunk.Release()
	}
}

func BenchmarkSplitMerge(b *testing.B) {
	v, _ := benchClip(48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chunks, err := v.Split(8)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Merge(chunks); err != nil {
			b.Fatal(err)
		}
	}
}
