package video

import (
	"testing"
	"testing/quick"
)

func smallOpts() GenerateOptions {
	o := DefaultGenerateOptions()
	o.NumFrames = 12
	return o
}

func TestGenerateShape(t *testing.T) {
	v, truth := Generate(smallOpts())
	if len(v.Frames) != 12 || v.W != 160 || v.H != 120 {
		t.Fatalf("shape %dx%d x%d", v.W, v.H, len(v.Frames))
	}
	if len(truth) != 12 {
		t.Fatalf("truth frames = %d", len(truth))
	}
	for i, boxes := range truth {
		if len(boxes) != 3 {
			t.Fatalf("frame %d has %d faces", i, len(boxes))
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(smallOpts())
	b, _ := Generate(smallOpts())
	for i := range a.Frames {
		for j := range a.Frames[i].Pix {
			if a.Frames[i].Pix[j] != b.Frames[i].Pix[j] {
				t.Fatal("same seed produced different video")
			}
		}
	}
}

func TestSplitMergeRoundTrip(t *testing.T) {
	v, _ := Generate(smallOpts())
	chunks, err := v.Split(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 5 {
		t.Fatalf("chunks = %d", len(chunks))
	}
	total := 0
	for _, c := range chunks {
		total += len(c.Frames)
	}
	if total != 12 {
		t.Fatalf("chunk frames = %d", total)
	}
	back, err := Merge(chunks)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Frames) != 12 {
		t.Fatalf("merged frames = %d", len(back.Frames))
	}
	for i := range back.Frames {
		for j := range back.Frames[i].Pix {
			if back.Frames[i].Pix[j] != v.Frames[i].Pix[j] {
				t.Fatalf("merge lost pixels at frame %d", i)
			}
		}
	}
}

func TestSplitErrors(t *testing.T) {
	v, _ := Generate(smallOpts())
	if _, err := v.Split(0); err == nil {
		t.Fatal("split 0 accepted")
	}
	if _, err := v.Split(13); err == nil {
		t.Fatal("split beyond frames accepted")
	}
	if _, err := Merge(nil); err == nil {
		t.Fatal("empty merge accepted")
	}
	other, _ := Generate(GenerateOptions{W: 80, H: 60, FPS: 24, NumFrames: 2, FacesPerFrame: 1, Seed: 2})
	if _, err := Merge([]*Video{v, other}); err == nil {
		t.Fatal("mismatched merge accepted")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	v, _ := Generate(smallOpts())
	data := Encode(v)
	if len(data) == 0 {
		t.Fatal("empty encoding")
	}
	if EncodedSize(v) != len(data) {
		t.Fatalf("EncodedSize = %d, actual %d", EncodedSize(v), len(data))
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.W != v.W || back.H != v.H || back.FPS != v.FPS || len(back.Frames) != len(v.Frames) {
		t.Fatal("header mismatch")
	}
	for i := range v.Frames {
		for j := range v.Frames[i].Pix {
			if back.Frames[i].Pix[j] != v.Frames[i].Pix[j] {
				t.Fatalf("pixel mismatch frame %d", i)
			}
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		make([]byte, 20), // zero magic
	}
	for i, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("case %d decoded", i)
		}
	}
	// Truncated valid stream.
	v, _ := Generate(smallOpts())
	data := Encode(v)
	if _, err := Decode(data[:len(data)/2]); err == nil {
		t.Fatal("truncated stream decoded")
	}
}

func TestDetectorFindsPlantedFaces(t *testing.T) {
	opt := smallOpts()
	opt.NumFrames = 8
	v, truth := Generate(opt)
	m := DefaultModel(0)
	dets := m.DetectVideo(v)
	precision, recall := Evaluate(dets, truth, 0.3)
	if recall < 0.7 {
		t.Fatalf("recall = %.2f, want >= 0.7", recall)
	}
	if precision < 0.5 {
		t.Fatalf("precision = %.2f, want >= 0.5", precision)
	}
}

func TestDetectionEquivalenceSplitVsWhole(t *testing.T) {
	// Chunked detection must equal whole-video detection (frames are
	// independent) — the correctness invariant of the parallel pipeline.
	opt := smallOpts()
	v, _ := Generate(opt)
	m := DefaultModel(0)
	whole := m.DetectVideo(v)
	chunks, err := v.Split(4)
	if err != nil {
		t.Fatal(err)
	}
	var stitched [][]Detection
	for _, c := range chunks {
		stitched = append(stitched, m.DetectVideo(c)...)
	}
	if len(stitched) != len(whole) {
		t.Fatalf("lengths %d vs %d", len(stitched), len(whole))
	}
	for i := range whole {
		if len(whole[i]) != len(stitched[i]) {
			t.Fatalf("frame %d: %d vs %d detections", i, len(whole[i]), len(stitched[i]))
		}
		for j := range whole[i] {
			if whole[i][j] != stitched[i][j] {
				t.Fatalf("frame %d det %d differs", i, j)
			}
		}
	}
}

func TestModelSerializationAndSize(t *testing.T) {
	m := DefaultModel(1 << 20)
	data, err := EncodeModel(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 1<<20 {
		t.Fatalf("model size %d, want >= 1 MiB", len(data))
	}
	back, err := DecodeModel(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Contrast != m.Contrast || len(back.WindowSizes) != len(m.WindowSizes) {
		t.Fatal("model round trip lost parameters")
	}
	if _, err := DecodeModel([]byte("junk")); err == nil {
		t.Fatal("junk model decoded")
	}
}

func TestAnnotate(t *testing.T) {
	opt := smallOpts()
	opt.NumFrames = 2
	v, _ := Generate(opt)
	m := DefaultModel(0)
	dets := m.DetectVideo(v)
	out, err := Annotate(v, dets)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Frames) != 2 {
		t.Fatal("annotate dropped frames")
	}
	if _, err := Annotate(v, dets[:1]); err == nil {
		t.Fatal("mismatched annotate accepted")
	}
}

func TestIoU(t *testing.T) {
	a := Rect{X: 0, Y: 0, W: 10, H: 10}
	if a.IoU(a) != 1 {
		t.Fatal("self IoU != 1")
	}
	b := Rect{X: 10, Y: 10, W: 10, H: 10}
	if a.IoU(b) != 0 {
		t.Fatal("disjoint IoU != 0")
	}
	c := Rect{X: 5, Y: 0, W: 10, H: 10} // overlap 50, union 150
	if got := a.IoU(c); got < 0.33 || got > 0.34 {
		t.Fatalf("IoU = %v", got)
	}
}

func TestIntegralImage(t *testing.T) {
	f := NewFrame(4, 3)
	for i := range f.Pix {
		f.Pix[i] = uint8(i + 1) // 1..12
	}
	var ii integralImage
	ii.reset(f)
	if got := ii.rectSum(0, 0, 4, 3); got != 78 {
		t.Fatalf("full sum = %d, want 78", got)
	}
	if got := ii.rectSum(1, 1, 2, 2); got != 6+7+10+11 {
		t.Fatalf("inner sum = %d", got)
	}
	if got := ii.rectSum(0, 0, 1, 1); got != 1 {
		t.Fatalf("corner = %d", got)
	}
	// Reuse with a smaller frame must re-zero the border row/column
	// left over from the larger layout.
	small := NewFrame(2, 2)
	for i := range small.Pix {
		small.Pix[i] = 10
	}
	ii.reset(small)
	if got := ii.rectSum(0, 0, 2, 2); got != 40 {
		t.Fatalf("reused full sum = %d, want 40", got)
	}
	if got := ii.rectSum(1, 0, 1, 2); got != 20 {
		t.Fatalf("reused column sum = %d, want 20", got)
	}
}

// Property: codec round-trips arbitrary tiny frames losslessly.
func TestPropertyCodecRoundTrip(t *testing.T) {
	f := func(pix []byte, wRaw uint8) bool {
		w := int(wRaw%16) + 1
		if len(pix) < w {
			return true
		}
		h := len(pix) / w
		if h == 0 || h > 64 {
			return true
		}
		fr := NewFrame(w, h)
		copy(fr.Pix, pix[:w*h])
		v := &Video{W: w, H: h, FPS: 1, Frames: []*Frame{fr}}
		back, err := Decode(Encode(v))
		if err != nil {
			return false
		}
		for i := range fr.Pix {
			if back.Frames[0].Pix[i] != fr.Pix[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
