package platform

import (
	"testing"
	"time"

	"statebench/internal/sim"
)

func TestPoolWarmEntryLifecycle(t *testing.T) {
	p := &Pool{KeepAlive: 8 * time.Minute}
	if _, ok := p.TakeWarm(0); ok {
		t.Fatal("empty pool yielded a warm container")
	}
	p.Release(100) // expires at 100+KeepAlive
	p.Release(200)
	if got := p.WarmCount(150); got != 2 {
		t.Fatalf("WarmCount = %d, want 2", got)
	}
	// LIFO reuse: the most recently released container comes back first.
	exp, ok := p.TakeWarm(150)
	if !ok || exp != 200+sim.Time(p.KeepAlive) {
		t.Fatalf("TakeWarm = (%v, %v), want newest release", exp, ok)
	}
	// Expired entries are discarded on the way.
	if _, ok := p.TakeWarm(sim.Time(time.Hour)); ok {
		t.Fatal("expired warm container was reused")
	}
	if got := p.WarmCount(sim.Time(time.Hour)); got != 0 {
		t.Fatalf("WarmCount after expiry = %d, want 0", got)
	}

	p.RecordCold(3 * time.Second)
	p.RecordCold(1 * time.Second)
	st := p.Stats()
	if st.ColdStarts != 2 || len(st.ColdDelays) != 2 || st.ColdDelays[0] != 3*time.Second {
		t.Fatalf("cold stats = %+v", st)
	}
	p.ResetStats()
	if st := p.Stats(); st.ColdStarts != 0 || st.ColdDelays != nil || st.MaxReady != 0 {
		t.Fatalf("stats after reset = %+v", st)
	}
}

func TestPoolInstanceLifecycle(t *testing.T) {
	p := &Pool{}
	p.BeginStart()
	if p.Starting() != 1 || p.Provisioning() != 1 || p.Ready() != 0 {
		t.Fatalf("after BeginStart: starting=%d ready=%d", p.Starting(), p.Ready())
	}
	a := p.FinishStart(10)
	if p.Ready() != 1 || p.Starting() != 0 || a.ID != 1 || a.IdleSince != 10 {
		t.Fatalf("after FinishStart: ready=%d container=%+v", p.Ready(), a)
	}
	p.BeginStart()
	b := p.FinishStart(20)
	if b.ID != 2 || p.Stats().MaxReady != 2 || p.Stats().ColdStarts != 2 {
		t.Fatalf("second instance: %+v stats=%+v", b, p.Stats())
	}

	p.PushIdle(a, 30)
	p.PushIdle(b, 40)
	if p.IdleCount() != 2 {
		t.Fatalf("IdleCount = %d, want 2", p.IdleCount())
	}
	// FIFO: the longest-idle instance is dispatched first.
	got, ok := p.PopIdle()
	if !ok || got != a {
		t.Fatalf("PopIdle = %v, want instance a", got)
	}
	p.PushIdle(a, 50)

	// Reap with a cutoff past only b's idle start: b is retired, a
	// (idle since 50) survives.
	if n := p.ReapIdle(45); n != 1 {
		t.Fatalf("ReapIdle reaped %d, want 1", n)
	}
	if p.Ready() != 1 || p.IdleCount() != 1 || !b.Stopped {
		t.Fatalf("after reap: ready=%d idle=%d bStopped=%v", p.Ready(), p.IdleCount(), b.Stopped)
	}

	// Retire the survivor (chaos host recycle).
	surv, _ := p.PopIdle()
	p.Retire(surv)
	if p.Ready() != 0 || !surv.Stopped {
		t.Fatalf("after retire: ready=%d stopped=%v", p.Ready(), surv.Stopped)
	}

	p.ResetStats()
	if st := p.Stats(); st.MaxReady != 0 || st.ColdStarts != 0 {
		t.Fatalf("stats after reset = %+v", st)
	}
}

// TestPoolWarmRingAtScale exercises the amortized-O(1) warm path the
// traffic engine leans on: a large churn of releases and takes with
// interleaved expiry, including the prefix-slide compaction and the
// out-of-order-release fallback.
func TestPoolWarmRingAtScale(t *testing.T) {
	p := &Pool{KeepAlive: time.Minute}
	// Phase 1: release 10k containers at 1ms spacing, then let the
	// first half expire and verify count and LIFO take.
	for i := 0; i < 10000; i++ {
		p.Release(sim.Time(i) * sim.Time(time.Millisecond))
	}
	now := sim.Time(5000*time.Millisecond + time.Minute) // first 5001 expired
	if got := p.WarmCount(now); got != 4999 {
		t.Fatalf("WarmCount = %d, want 4999", got)
	}
	exp, ok := p.TakeWarm(now)
	if !ok || exp != sim.Time(9999*time.Millisecond)+sim.Time(p.KeepAlive) {
		t.Fatalf("TakeWarm = (%v, %v), want newest lease", exp, ok)
	}
	// Drain the rest; every take must return a strictly older lease.
	prev := exp
	n := 1
	for {
		e, ok := p.TakeWarm(now)
		if !ok {
			break
		}
		if e >= prev {
			t.Fatalf("take %d: lease %v not older than %v (LIFO broken)", n, e, prev)
		}
		prev = e
		n++
	}
	if n != 4999 {
		t.Fatalf("drained %d warm containers, want 4999", n)
	}
	// Phase 2: out-of-order release (backdated lease) must keep the
	// expiry ordering intact.
	p.Release(sim.Time(time.Hour))
	p.Release(sim.Time(time.Hour) - sim.Time(30*time.Second)) // backdated
	if got := p.WarmCount(sim.Time(time.Hour)); got != 2 {
		t.Fatalf("WarmCount after backdated release = %d, want 2", got)
	}
	first, _ := p.TakeWarm(sim.Time(time.Hour))
	second, _ := p.TakeWarm(sim.Time(time.Hour))
	if first < second {
		t.Fatalf("takes out of order after backdated release: %v then %v", first, second)
	}
}
