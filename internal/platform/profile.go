package platform

import (
	"time"

	"statebench/internal/sim"
)

// ServeStyle names the container-lifecycle discipline a provider's
// compute plane uses to absorb open-loop load — the same split the
// Pool documents for the closed-loop services.
type ServeStyle int

const (
	// ServePerRequest scales per invocation: each arrival takes a warm
	// container or pays its own cold start (AWS Lambda, GCP Cloud
	// Functions).
	ServePerRequest ServeStyle = iota
	// ServeInstancePool runs work on long-lived instances provisioned
	// by a rate-limited scale controller; arrivals beyond capacity
	// queue (Azure Functions consumption plan).
	ServeInstancePool
)

// String returns the style's report label.
func (s ServeStyle) String() string {
	if s == ServeInstancePool {
		return "instance-pool"
	}
	return "per-request"
}

// TrafficProfile is a provider's calibration for the open-loop traffic
// engine (internal/traffic): the same distributions and limits the
// closed-loop services draw from (see params.go), flattened into the
// declarative subset the engine's event-driven serving models need.
// Providers register one through core.ProviderSpec.Traffic, exactly as
// they register backends — adding a cloud to the traffic experiment is
// one profile, no engine changes.
type TrafficProfile struct {
	Style ServeStyle

	// InvokeRTT is the front-end round trip paid by every invocation.
	InvokeRTT sim.Dist

	// ColdStart is the container/instance provisioning delay. For
	// per-request styles CodeFetchBW (bytes/s, 0 = none) adds the
	// deployment-package fetch for the engine's configured code size.
	ColdStart   sim.Dist
	CodeFetchBW float64

	// WarmStart is the per-invocation overhead when no cold start is
	// paid (warm-entry reuse, or dispatch onto a ready instance).
	WarmStart sim.Dist

	// KeepAlive is the warm-container lease (per-request style).
	KeepAlive time.Duration

	// BurstConcurrency caps a tenant's simultaneous containers
	// (per-request style; 0 = unlimited).
	BurstConcurrency int

	// Instance-pool style: the scale controller's rate limit and
	// capacity model, per tenant (one function app per tenant).
	ScaleEvalInterval      time.Duration
	ScaleOutStep           int
	MaxInstances           int
	ConcurrencyPerInstance int
	IdleInstanceTimeout    time.Duration

	// MemoryMB is the billed memory size per execution, feeding GB-s
	// into the provider's pricing book.
	MemoryMB int
}

// Traffic returns the AWS traffic profile, derived from the same
// calibration the closed-loop Lambda service uses.
func (p AWSParams) Traffic() TrafficProfile {
	return TrafficProfile{
		Style:            ServePerRequest,
		InvokeRTT:        p.InvokeRTT,
		ColdStart:        p.ColdStartBase,
		CodeFetchBW:      p.CodeFetchBW,
		WarmStart:        p.WarmStart,
		KeepAlive:        p.KeepAlive,
		BurstConcurrency: p.BurstConcurrency,
		MemoryMB:         1024,
	}
}

// Traffic returns the Azure traffic profile: the consumption plan's
// rate-limited instance pool.
func (p AzureParams) Traffic() TrafficProfile {
	return TrafficProfile{
		Style:                  ServeInstancePool,
		InvokeRTT:              p.HTTPTriggerRTT,
		ColdStart:              p.InstanceColdStart,
		WarmStart:              p.Dispatch,
		ScaleEvalInterval:      p.ScaleEvalInterval,
		ScaleOutStep:           p.ScaleOutStep,
		MaxInstances:           p.MaxInstances,
		ConcurrencyPerInstance: p.ConcurrencyPerInstance,
		IdleInstanceTimeout:    p.IdleInstanceTimeout,
		MemoryMB:               1024,
	}
}

// Traffic returns the GCP traffic profile (per-request, slower cold
// starts, longer keep-alive — see GCPParams).
func (p GCPParams) Traffic() TrafficProfile {
	return TrafficProfile{
		Style:            ServePerRequest,
		InvokeRTT:        p.InvokeRTT,
		ColdStart:        p.ColdStartBase,
		CodeFetchBW:      p.CodeFetchBW,
		WarmStart:        p.WarmStart,
		KeepAlive:        p.KeepAlive,
		BurstConcurrency: p.BurstConcurrency,
		MemoryMB:         1024,
	}
}
