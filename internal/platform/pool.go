package platform

import (
	"sort"
	"time"

	"statebench/internal/obs/tseries"
	"statebench/internal/sim"
)

// Pool is the shared container-lifecycle substrate both simulated
// compute planes (and any registered third provider) are built on. It
// owns the bookkeeping every FaaS runtime needs — warm-container
// reuse with keep-alive expiry, instance provisioning counters, idle
// tracking, reaping, and cold-start statistics — while the *policy*
// (when to start containers, how fast to scale, which RNG stream to
// sample cold-start delays from) stays with the provider:
//
//   - AWS Lambda and GCP Cloud Functions scale per-request: every
//     invocation either takes a warm entry (TakeWarm) or pays a cold
//     start (RecordCold), then returns the container with a fresh
//     keep-alive lease (Release).
//   - The Azure Functions host provisions long-lived worker instances
//     through a rate-limited scale controller: BeginStart/FinishStart
//     track the provisioning pipeline, PopIdle/PushIdle pair work with
//     idle instances, and ReapIdle implements the controller's idle
//     eviction policy.
//
// A Pool is pure bookkeeping: it never samples randomness, schedules
// events, or touches the kernel, so relocating this state out of the
// provider packages cannot change any simulated timing or RNG draw
// order. Like the services that embed it, a Pool belongs to one
// kernel goroutine and needs no locking.
type Pool struct {
	// KeepAlive is how long a released warm container stays reusable
	// (the per-request-scaling keep-alive policy). Providers using the
	// instance-pool style leave it zero.
	KeepAlive time.Duration

	// Timeline, when non-nil, receives warm-pool occupancy gauge
	// observations (live warm containers per Release, ready instances
	// per FinishStart) into their virtual-time windows. Observation
	// only: the pool never reads the series, so enabling it cannot
	// change any lifecycle decision.
	Timeline *tseries.Series

	// warm holds expiry times of idle warm containers. Because Release
	// stamps now+KeepAlive and virtual time is monotone, the slice is
	// sorted: expired entries form a prefix consumed by advancing
	// warmHead (amortized O(1)) instead of compacting the whole slice
	// per take — the difference between O(n) and O(1) acquisition when
	// the open-loop traffic engine keeps millions of containers warm.
	warm     []sim.Time
	warmHead int
	idle     []*Container
	ready    int
	starting int
	nextID   int
	stats    PoolStats
}

// Container is one provisioned worker instance in the instance-pool
// style. Providers hold the pointer across an execution and either
// push it back idle or retire it.
type Container struct {
	ID        int
	IdleSince sim.Time
	Stopped   bool
}

// PoolStats aggregates container-lifecycle outcomes.
type PoolStats struct {
	// ColdStarts counts cold container acquisitions (per-request style)
	// or instance starts (instance-pool style).
	ColdStarts int64
	// ColdDelays holds each cold start's delay, when the provider
	// reports one (per-request style; feeds Fig 10/13).
	ColdDelays []time.Duration
	// MaxReady is the peak simultaneous ready instances
	// (instance-pool style).
	MaxReady int
}

// Stats returns a snapshot of the pool's lifecycle statistics.
func (p *Pool) Stats() PoolStats { return p.stats }

// ResetStats zeroes the cold-start statistics. Ready instances remain
// provisioned, so MaxReady restarts from the current ready count.
func (p *Pool) ResetStats() { p.stats = PoolStats{MaxReady: p.ready} }

// --- Per-request (warm-entry) style -------------------------------

// expireWarm drops entries expired at now. Expiries are sorted (see
// the warm field), so expired entries are a prefix: advance the head
// index over them — each entry is skipped at most once in the pool's
// lifetime — and slide the backing array down only when the dead
// prefix dominates it.
func (p *Pool) expireWarm(now sim.Time) {
	h := p.warmHead
	for h < len(p.warm) && p.warm[h] <= now {
		h++
	}
	p.warmHead = h
	switch {
	case h == len(p.warm):
		p.warm = p.warm[:0]
		p.warmHead = 0
	case h >= 64 && h > len(p.warm)/2:
		n := copy(p.warm, p.warm[h:])
		p.warm = p.warm[:n]
		p.warmHead = 0
	}
}

// TakeWarm pops one unexpired warm container, discarding expired
// entries. The most recently released container is reused first,
// matching Lambda's observed LIFO reuse. Amortized O(1).
func (p *Pool) TakeWarm(now sim.Time) (sim.Time, bool) {
	p.expireWarm(now)
	if p.warmHead == len(p.warm) {
		return 0, false
	}
	exp := p.warm[len(p.warm)-1]
	p.warm = p.warm[:len(p.warm)-1]
	return exp, true
}

// Release returns a container to the warm pool with a fresh
// keep-alive lease starting at now. Crashed containers must not be
// released — the next invocation then pays a cold start.
//
// Virtual time is monotone within a run, so the lease expiries arrive
// in order; the rare out-of-order release (a provider re-leasing with
// a backdated timestamp) falls back to a sorted insert to preserve
// the expiry invariant.
func (p *Pool) Release(now sim.Time) {
	exp := now + p.KeepAlive
	if n := len(p.warm); n > 0 && p.warm[n-1] > exp {
		i := sort.Search(n-p.warmHead, func(i int) bool { return p.warm[p.warmHead+i] > exp }) + p.warmHead
		p.warm = append(p.warm, 0)
		copy(p.warm[i+1:], p.warm[i:])
		p.warm[i] = exp
	} else {
		p.warm = append(p.warm, exp)
	}
	if p.Timeline.Enabled() {
		p.expireWarm(now)
		p.Timeline.ObserveWarmPool(now, int64(len(p.warm)-p.warmHead))
	}
}

// WarmCount reports how many unexpired warm containers exist at now.
// Amortized O(1).
func (p *Pool) WarmCount(now sim.Time) int {
	p.expireWarm(now)
	return len(p.warm) - p.warmHead
}

// RecordCold books one cold start of the given delay (per-request
// style: the provider samples the delay from its own stream).
func (p *Pool) RecordCold(delay time.Duration) {
	p.stats.ColdStarts++
	p.stats.ColdDelays = append(p.stats.ColdDelays, delay)
}

// --- Instance-pool style ------------------------------------------

// Ready returns the number of started instances.
func (p *Pool) Ready() int { return p.ready }

// Starting returns the number of instances still provisioning.
func (p *Pool) Starting() int { return p.starting }

// Provisioning returns ready + starting instances — the scale
// controller's view of committed capacity.
func (p *Pool) Provisioning() int { return p.ready + p.starting }

// IdleCount returns the number of parked idle instances.
func (p *Pool) IdleCount() int { return len(p.idle) }

// BeginStart books the launch of a new instance: it enters the
// provisioning pipeline and counts as a cold start.
func (p *Pool) BeginStart() {
	p.starting++
	p.stats.ColdStarts++
}

// FinishStart completes one instance launch begun with BeginStart and
// returns the fresh instance, idle as of now.
func (p *Pool) FinishStart(now sim.Time) *Container {
	p.starting--
	p.ready++
	if p.ready > p.stats.MaxReady {
		p.stats.MaxReady = p.ready
	}
	p.Timeline.ObserveWarmPool(now, int64(p.ready))
	p.nextID++
	return &Container{ID: p.nextID, IdleSince: now}
}

// PopIdle takes the longest-idle instance, if any.
func (p *Pool) PopIdle() (*Container, bool) {
	if len(p.idle) == 0 {
		return nil, false
	}
	c := p.idle[0]
	p.idle = p.idle[1:]
	return c, true
}

// PushIdle parks an instance as idle since now.
func (p *Pool) PushIdle(c *Container, now sim.Time) {
	c.IdleSince = now
	p.idle = append(p.idle, c)
}

// Retire removes a live instance from capacity (idle reap or chaos
// host recycle). The instance's Stopped flag tells any process still
// holding the pointer not to reuse it.
func (p *Pool) Retire(c *Container) {
	c.Stopped = true
	p.ready--
}

// ReapIdle retires instances idle since before cutoff, never dropping
// below one ready instance per reap pass — the consumption-plan idle
// eviction policy. It returns the number reaped.
func (p *Pool) ReapIdle(cutoff sim.Time) int {
	reaped := 0
	keep := p.idle[:0]
	for _, c := range p.idle {
		if c.IdleSince < cutoff && p.ready > 0 {
			p.Retire(c)
			reaped++
		} else {
			keep = append(keep, c)
		}
	}
	p.idle = keep
	return reaped
}
