// Package platform holds the pieces shared by both simulated clouds:
// compute billing meters and the calibration parameters (params.go) that
// define each platform's latency and scaling behavior.
package platform

import "time"

// Meter accumulates compute billing for one function app or function.
//
// The two clouds meter differently (paper §IV):
//   - AWS bills the *configured* memory for the execution duration
//     rounded up to 100 ms.
//   - Azure (consumption plan) bills the *observed* memory, rounded up
//     to 128 MB, for the execution duration with a 100 ms minimum.
//
// Record captures both the billed and the raw numbers so cost reports
// can show the gap.
type Meter struct {
	// Invocations counts executions (billed per-request on both clouds).
	Invocations int64
	// ExecTime is the summed raw execution time.
	ExecTime time.Duration
	// BilledGBs is the summed billed gigabyte-seconds.
	BilledGBs float64
	// ConsumedGBs is the summed actually-consumed gigabyte-seconds.
	ConsumedGBs float64
}

// RoundUp rounds d up to a multiple of step (step <= 0 returns d).
func RoundUp(d, step time.Duration) time.Duration {
	if step <= 0 {
		return d
	}
	if r := d % step; r != 0 {
		d += step - r
	}
	return d
}

// RecordAWS meters one Lambda execution: billed on configured memory,
// duration rounded up to 100 ms.
func (m *Meter) RecordAWS(exec time.Duration, configuredMemMB, consumedMemMB int) {
	m.Invocations++
	m.ExecTime += exec
	billed := RoundUp(exec, 100*time.Millisecond)
	m.BilledGBs += billed.Seconds() * float64(configuredMemMB) / 1024
	m.ConsumedGBs += exec.Seconds() * float64(consumedMemMB) / 1024
}

// RecordAzure meters one Azure Functions execution: billed on observed
// memory rounded up to 128 MB, with a 100 ms minimum duration.
func (m *Meter) RecordAzure(exec time.Duration, consumedMemMB int) {
	m.Invocations++
	m.ExecTime += exec
	billedMem := roundUpMem(consumedMemMB, 128)
	d := exec
	if d < 100*time.Millisecond {
		d = 100 * time.Millisecond
	}
	m.BilledGBs += d.Seconds() * float64(billedMem) / 1024
	m.ConsumedGBs += exec.Seconds() * float64(consumedMemMB) / 1024
}

// RecordGCP meters one Cloud Functions (gen-1) execution: like AWS,
// billed on configured memory with 100 ms duration round-up; the
// tier-coupled GHz-s charge is applied by the price book, not here.
func (m *Meter) RecordGCP(exec time.Duration, configuredMemMB, consumedMemMB int) {
	m.RecordAWS(exec, configuredMemMB, consumedMemMB)
}

// Add merges another meter into m.
func (m *Meter) Add(o Meter) {
	m.Invocations += o.Invocations
	m.ExecTime += o.ExecTime
	m.BilledGBs += o.BilledGBs
	m.ConsumedGBs += o.ConsumedGBs
}

// Reset zeroes the meter.
func (m *Meter) Reset() { *m = Meter{} }

func roundUpMem(mb, step int) int {
	if mb < step {
		return step
	}
	if r := mb % step; r != 0 {
		mb += step - r
	}
	return mb
}
