package platform

import (
	"math"
	"testing"
	"time"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestRoundUp(t *testing.T) {
	cases := []struct{ d, step, want time.Duration }{
		{0, 100 * time.Millisecond, 0},
		{1 * time.Millisecond, 100 * time.Millisecond, 100 * time.Millisecond},
		{100 * time.Millisecond, 100 * time.Millisecond, 100 * time.Millisecond},
		{101 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond},
		{250 * time.Millisecond, 0, 250 * time.Millisecond},
	}
	for _, c := range cases {
		if got := RoundUp(c.d, c.step); got != c.want {
			t.Errorf("RoundUp(%v,%v) = %v, want %v", c.d, c.step, got, c.want)
		}
	}
}

func TestRecordAWSBillsConfiguredMemoryRounded(t *testing.T) {
	var m Meter
	// 150 ms at 1536 MB configured, 400 MB consumed.
	m.RecordAWS(150*time.Millisecond, 1536, 400)
	// Billed: 200 ms * 1.5 GB = 0.3 GB-s.
	if !almost(m.BilledGBs, 0.3) {
		t.Fatalf("BilledGBs = %v, want 0.3", m.BilledGBs)
	}
	// Consumed: 0.15 s * 400/1024 GB.
	if !almost(m.ConsumedGBs, 0.15*400.0/1024) {
		t.Fatalf("ConsumedGBs = %v", m.ConsumedGBs)
	}
	if m.Invocations != 1 || m.ExecTime != 150*time.Millisecond {
		t.Fatalf("meter = %+v", m)
	}
}

func TestRecordAzureBillsObservedMemory(t *testing.T) {
	var m Meter
	// 2 s at 300 MB observed -> billed at 384 MB (next 128 multiple).
	m.RecordAzure(2*time.Second, 300)
	if !almost(m.BilledGBs, 2*384.0/1024) {
		t.Fatalf("BilledGBs = %v, want %v", m.BilledGBs, 2*384.0/1024)
	}
}

func TestRecordAzureMinimumDuration(t *testing.T) {
	var m Meter
	// 10 ms execution bills at the 100 ms minimum.
	m.RecordAzure(10*time.Millisecond, 128)
	if !almost(m.BilledGBs, 0.1*128.0/1024) {
		t.Fatalf("BilledGBs = %v", m.BilledGBs)
	}
	// ...but raw exec time is kept as-is.
	if m.ExecTime != 10*time.Millisecond {
		t.Fatalf("ExecTime = %v", m.ExecTime)
	}
}

func TestRecordAzureTinyMemoryRoundsTo128(t *testing.T) {
	var m Meter
	m.RecordAzure(time.Second, 1)
	if !almost(m.BilledGBs, 128.0/1024) {
		t.Fatalf("BilledGBs = %v", m.BilledGBs)
	}
}

func TestAWSBillingGapVsAzure(t *testing.T) {
	// The paper's key cost mechanism: same execution, AWS bills
	// configured 1536 MB while Azure bills observed ~500 MB, so the AWS
	// compute cost is ~3x for this execution.
	var aws, az Meter
	aws.RecordAWS(10*time.Second, 1536, 500)
	az.RecordAzure(10*time.Second, 500)
	if aws.BilledGBs <= 2.5*az.BilledGBs {
		t.Fatalf("aws %.3f vs azure %.3f GB-s: configured-memory billing gap missing", aws.BilledGBs, az.BilledGBs)
	}
}

func TestMeterAddAndReset(t *testing.T) {
	var a, b Meter
	a.RecordAWS(time.Second, 1024, 512)
	b.RecordAWS(2*time.Second, 1024, 512)
	a.Add(b)
	if a.Invocations != 2 || a.ExecTime != 3*time.Second {
		t.Fatalf("after Add: %+v", a)
	}
	a.Reset()
	if a.Invocations != 0 || a.BilledGBs != 0 {
		t.Fatalf("after Reset: %+v", a)
	}
}
