package platform

import (
	"time"

	"statebench/internal/sim"
)

// This file is the single calibration surface of the reproduction: every
// latency distribution, scaling rate and limit of both simulated clouds
// lives here. The defaults are tuned so that the *shape* of each paper
// result holds (see EXPERIMENTS.md for paper-vs-measured numbers);
// experiments may copy and perturb them for ablations.

// AWSParams calibrates the simulated AWS platform (Lambda + Step
// Functions), Table I row "AWS".
type AWSParams struct {
	// Region-ish invoke round trip from the client/state machine to the
	// Lambda front end.
	InvokeRTT sim.Dist
	// ColdStartBase is the sandbox provisioning time excluding code
	// fetch; CodeFetchBW (bytes/s) converts deployment-package size to
	// extra cold-start time (the paper's packages are 63–271 MB).
	ColdStartBase sim.Dist
	CodeFetchBW   float64
	// WarmStart is the per-invocation overhead on a warm container.
	WarmStart sim.Dist
	// KeepAlive is how long an idle container stays warm.
	KeepAlive time.Duration
	// BurstConcurrency caps simultaneous containers per function; AWS
	// offers ~3000 burst in large regions, effectively unlimited for
	// the paper's workloads.
	BurstConcurrency int
	// MemoryStepMB is the configurable memory granularity (128 MB).
	MemoryStepMB int
	// TimeLimit aborts executions (15 min).
	TimeLimit time.Duration
	// PayloadLimit is the synchronous invoke / Step data cap (256 KB).
	PayloadLimit int
	// StepTransition is the state-machine overhead per state transition.
	StepTransition sim.Dist
	// StepTaskDispatch is the extra latency for a Task state to invoke
	// its Lambda (scheduler hop).
	StepTaskDispatch sim.Dist
}

// DefaultAWS returns the calibrated AWS parameters.
func DefaultAWS() AWSParams {
	return AWSParams{
		InvokeRTT:        sim.LogNormalDist{Median: 20 * time.Millisecond, Sigma: 0.3, Max: time.Second},
		ColdStartBase:    sim.LogNormalDist{Median: 250 * time.Millisecond, Sigma: 0.35, Max: 5 * time.Second},
		CodeFetchBW:      24e6, // ~24 MB/s package fetch+unpack
		WarmStart:        sim.LogNormalDist{Median: 6 * time.Millisecond, Sigma: 0.3, Max: 200 * time.Millisecond},
		KeepAlive:        8 * time.Minute,
		BurstConcurrency: 3000,
		MemoryStepMB:     128,
		TimeLimit:        15 * time.Minute,
		PayloadLimit:     256 * 1024,
		StepTransition:   sim.LogNormalDist{Median: 25 * time.Millisecond, Sigma: 0.4, Max: 2 * time.Second},
		StepTaskDispatch: sim.LogNormalDist{Median: 60 * time.Millisecond, Sigma: 0.5, Max: 5 * time.Second},
	}
}

// AzureParams calibrates the simulated Azure platform (Functions
// consumption plan + Durable extension), Table I row "Azure".
type AzureParams struct {
	// HTTPTriggerRTT is the front-end latency for HTTP-triggered starts.
	HTTPTriggerRTT sim.Dist
	// InstanceColdStart is the time to bring up a new worker instance
	// (container) on scale-out.
	InstanceColdStart sim.Dist
	// Dispatch is the in-instance dispatch overhead per execution.
	Dispatch sim.Dist
	// MemoryLimitMB is the consumption-plan cap (1536 MB, Table I);
	// Azure bills observed usage, so this only bounds it.
	MemoryLimitMB int
	// TimeLimit aborts executions (30 min on the paper's plan).
	TimeLimit time.Duration
	// ConcurrencyPerInstance is how many Python executions one instance
	// runs at once (1 for the paper's Python runtime).
	ConcurrencyPerInstance int
	// MaxInstances caps scale-out (consumption plan: 200).
	MaxInstances int
	// ScaleEvalInterval is the scale controller's decision period; each
	// decision adds at most ScaleOutStep instances while work is queued
	// — this rate limit is the mechanism behind Fig 14's scheduling
	// delays.
	ScaleEvalInterval time.Duration
	ScaleOutStep      int
	// IdleInstanceTimeout reclaims instances with no work.
	IdleInstanceTimeout time.Duration
	// ColdPollPhase is the extra delay before an idle app notices a
	// queue-triggered request (listener poll phase); it dominates the
	// Az-Queue cold starts in Fig 10 (10–20 s).
	ColdPollPhase sim.Dist
	// TriggerMaxPoll caps queue-trigger listeners' poll back-off while
	// the app is running (it grows during long upstream executions and
	// resets on app activity) — the Az-Queue hop-latency mechanism of
	// Fig 8.
	TriggerMaxPoll time.Duration
	// DurablePayloadLimit caps cross-function durable messages (64 KB).
	DurablePayloadLimit int
	// QueuePayloadLimit caps manual storage-queue messages (256 KB).
	QueuePayloadLimit int
	// ControlQueuePartitions is the task hub's control-queue count (4).
	ControlQueuePartitions int
	// DurableMaxPoll caps the task hub listeners' poll back-off. The
	// paper-era Durable Task Framework polled aggressively (~1 s),
	// which is what makes its idle transaction cost dominate Fig 15.
	DurableMaxPoll time.Duration
	// HistoryReplayPerEvent is the orchestrator-side CPU time consumed
	// per history event during a replay pass; replays inflate Azure
	// GB-s (Fig 11a).
	HistoryReplayPerEvent time.Duration
	// EntityOpOverhead is the extra execution time of running an
	// operation inside a durable entity vs. a stateless activity
	// (state rehydration + serialization; paper §V-A: ~8%).
	EntityOpOverhead sim.Dist
	// EntityStateRTT is the latency of loading/persisting entity state.
	EntityStateRTT sim.Dist
}

// DefaultAzure returns the calibrated Azure parameters.
func DefaultAzure() AzureParams {
	return AzureParams{
		HTTPTriggerRTT: sim.LogNormalDist{Median: 30 * time.Millisecond, Sigma: 0.4, Max: 2 * time.Second},
		// Instance starts are usually ~1 s, but a few percent take
		// minutes (container image pulls, placement retries) — the
		// tail behind Fig 13/14 and Table III.
		InstanceColdStart: sim.Mixture{
			Weights: []float64{0.93, 0.07},
			Parts: []sim.Dist{
				sim.LogNormalDist{Median: 1100 * time.Millisecond, Sigma: 0.5, Max: 20 * time.Second},
				sim.UniformDist{Lo: 80 * time.Second, Hi: 400 * time.Second},
			},
		},
		Dispatch:               sim.LogNormalDist{Median: 15 * time.Millisecond, Sigma: 0.5, Max: 2 * time.Second},
		MemoryLimitMB:          1536,
		TimeLimit:              30 * time.Minute,
		ConcurrencyPerInstance: 1,
		MaxInstances:           200,
		ScaleEvalInterval:      6 * time.Second,
		ScaleOutStep:           1,
		IdleInstanceTimeout:    5 * time.Minute,
		ColdPollPhase:          sim.UniformDist{Lo: 8 * time.Second, Hi: 22 * time.Second},
		TriggerMaxPoll:         10 * time.Second,
		DurablePayloadLimit:    64 * 1024,
		QueuePayloadLimit:      256 * 1024,
		ControlQueuePartitions: 4,
		DurableMaxPoll:         time.Second,
		HistoryReplayPerEvent:  9 * time.Millisecond,
		EntityOpOverhead:       sim.LogNormalDist{Median: 40 * time.Millisecond, Sigma: 0.4, Max: 2 * time.Second},
		EntityStateRTT:         sim.LogNormalDist{Median: 35 * time.Millisecond, Sigma: 0.6, Max: 5 * time.Second},
	}
}

// GCPParams calibrates the simulated GCP platform (Cloud Functions
// gen 1 + Workflows). GCP is not part of the paper's measurement; the
// defaults follow the same public-documentation-plus-folk-benchmark
// methodology as Table I so the third provider exercises the
// provider-registry seam with plausible numbers.
type GCPParams struct {
	// InvokeRTT is the front-end round trip for an HTTPS function call.
	InvokeRTT sim.Dist
	// ColdStartBase is instance provisioning excluding code fetch;
	// gen-1 Cloud Functions cold starts are markedly slower than
	// Lambda's. CodeFetchBW (bytes/s) converts source size to extra
	// cold-start time.
	ColdStartBase sim.Dist
	CodeFetchBW   float64
	// WarmStart is the per-invocation overhead on a warm instance.
	WarmStart sim.Dist
	// KeepAlive is how long an idle instance stays warm.
	KeepAlive time.Duration
	// BurstConcurrency caps simultaneous instances per function.
	BurstConcurrency int
	// MemoryTiersMB lists the configurable memory sizes (gen 1 offers
	// fixed tiers, not a step); billing uses the configured tier.
	MemoryTiersMB []int
	// TimeLimit aborts executions (540 s for gen-1 HTTP functions).
	TimeLimit time.Duration
	// PayloadLimit caps request/response bodies (10 MB).
	PayloadLimit int
	// StepOverhead is the Workflows engine's per-step scheduling time.
	StepOverhead sim.Dist
	// CallDispatch is the extra latency for a workflow call step to
	// reach its Cloud Function (connector hop).
	CallDispatch sim.Dist
}

// DefaultGCP returns the calibrated GCP parameters.
func DefaultGCP() GCPParams {
	return GCPParams{
		InvokeRTT:        sim.LogNormalDist{Median: 25 * time.Millisecond, Sigma: 0.35, Max: time.Second},
		ColdStartBase:    sim.LogNormalDist{Median: 1400 * time.Millisecond, Sigma: 0.45, Max: 20 * time.Second},
		CodeFetchBW:      20e6, // ~20 MB/s source fetch+build cache restore
		WarmStart:        sim.LogNormalDist{Median: 7 * time.Millisecond, Sigma: 0.3, Max: 200 * time.Millisecond},
		KeepAlive:        15 * time.Minute,
		BurstConcurrency: 1000,
		MemoryTiersMB:    []int{128, 256, 512, 1024, 2048, 4096, 8192},
		TimeLimit:        540 * time.Second,
		PayloadLimit:     10 << 20,
		StepOverhead:     sim.LogNormalDist{Median: 35 * time.Millisecond, Sigma: 0.4, Max: 2 * time.Second},
		CallDispatch:     sim.LogNormalDist{Median: 80 * time.Millisecond, Sigma: 0.5, Max: 5 * time.Second},
	}
}
