package chaos

import (
	"testing"
	"time"

	"statebench/internal/sim"
)

// drive pulls n decisions for (component, name) out of in and returns
// the fault sequence as a compact signature.
func drive(in *Injector, component, name string, n int) []Kind {
	out := make([]Kind, n)
	for i := 0; i < n; i++ {
		if f, ok := in.Next(sim.TraceContext{}, component, name); ok {
			out[i] = f.Kind
		}
	}
	return out
}

func kindsEqual(a, b []Kind) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSameSeedSameSchedule(t *testing.T) {
	plan := DefaultPlan(0.2)
	a := NewInjector(sim.NewKernel(7), plan)
	b := NewInjector(sim.NewKernel(7), plan)
	if !kindsEqual(drive(a, "lambda", "fn", 200), drive(b, "lambda", "fn", 200)) {
		t.Fatal("same seed and plan produced different fault schedules")
	}
	c := NewInjector(sim.NewKernel(8), plan)
	if kindsEqual(drive(a, "lambda", "fn", 200), drive(c, "lambda", "fn", 200)) {
		t.Fatal("different seeds produced identical 200-decision schedules")
	}
}

func TestSaltPerturbsSchedule(t *testing.T) {
	p1 := DefaultPlan(0.2)
	p2 := DefaultPlan(0.2)
	p2.Salt = 99
	a := NewInjector(sim.NewKernel(7), p1)
	b := NewInjector(sim.NewKernel(7), p2)
	if kindsEqual(drive(a, "lambda", "fn", 200), drive(b, "lambda", "fn", 200)) {
		t.Fatal("different salts produced identical schedules")
	}
}

// TestCrossComponentIndependence is the core determinism property: the
// fault schedule of one site must not shift when decisions for another
// site are interleaved (decisions are stateless hashes, not draws from
// a shared sequence).
func TestCrossComponentIndependence(t *testing.T) {
	plan := DefaultPlan(0.2)
	solo := NewInjector(sim.NewKernel(7), plan)
	want := drive(solo, "lambda", "fn", 100)

	mixed := NewInjector(sim.NewKernel(7), plan)
	got := make([]Kind, 0, 100)
	for i := 0; i < 100; i++ {
		// Interleave decisions for other sites between every lambda draw.
		mixed.Next(sim.TraceContext{}, "queue", "q1")
		mixed.Next(sim.TraceContext{}, "durable", "orch")
		if f, ok := mixed.Next(sim.TraceContext{}, "lambda", "fn"); ok {
			got = append(got, f.Kind)
		} else {
			got = append(got, "")
		}
		mixed.Next(sim.TraceContext{}, "azfunc", "fn2")
	}
	if !kindsEqual(want, got) {
		t.Fatal("interleaved decisions for other components shifted the lambda schedule")
	}
}

func TestRuleMatching(t *testing.T) {
	k := sim.NewKernel(1)
	in := NewInjector(k, &Plan{Rules: []Rule{
		{Component: "lambda", Name: "victim", Kind: TransientError, Rate: 1},
	}})
	if _, ok := in.Next(sim.TraceContext{}, "lambda", "other"); ok {
		t.Fatal("rule fired for non-matching name")
	}
	if _, ok := in.Next(sim.TraceContext{}, "queue", "victim"); ok {
		t.Fatal("rule fired for non-matching component")
	}
	f, ok := in.Next(sim.TraceContext{}, "lambda", "victim")
	if !ok || f.Kind != TransientError {
		t.Fatalf("rule did not fire for matching site: %v %v", f, ok)
	}
	if f.Delay != 10*time.Millisecond {
		t.Fatalf("default TransientError delay = %v, want 10ms", f.Delay)
	}
}

func TestMaxFaultsAndAfter(t *testing.T) {
	k := sim.NewKernel(1)
	in := NewInjector(k, &Plan{Rules: []Rule{
		{Component: "lambda", Kind: Crash, Rate: 1, MaxFaults: 2, After: 3},
	}})
	fired := 0
	firstIdx := -1
	for i := 0; i < 10; i++ {
		if _, ok := in.Next(sim.TraceContext{}, "lambda", "fn"); ok {
			fired++
			if firstIdx < 0 {
				firstIdx = i
			}
		}
	}
	if fired != 2 {
		t.Fatalf("rule fired %d times, want MaxFaults=2", fired)
	}
	if firstIdx != 3 {
		t.Fatalf("rule first fired at invocation %d, want After=3", firstIdx)
	}
	st := in.Stats()
	if st.Injected != 2 || st.Crashes != 2 {
		t.Fatalf("stats = %+v, want 2 injected crashes", st)
	}
	if len(in.Events()) != 2 {
		t.Fatalf("event log has %d entries, want 2", len(in.Events()))
	}
}

func TestFirstMatchingRuleWins(t *testing.T) {
	k := sim.NewKernel(1)
	in := NewInjector(k, &Plan{Rules: []Rule{
		{Component: "queue", Kind: Redeliver, Rate: 1},
		{Component: "queue", Kind: Duplicate, Rate: 1},
	}})
	f, ok := in.Next(sim.TraceContext{}, "queue", "q")
	if !ok || f.Kind != Redeliver {
		t.Fatalf("got %v %v, want first rule (Redeliver) to win", f, ok)
	}
}

func TestNilInjectorIsSafe(t *testing.T) {
	var in *Injector
	if in.Enabled() {
		t.Fatal("nil injector reports Enabled")
	}
	if _, ok := in.Next(sim.TraceContext{}, "lambda", "fn"); ok {
		t.Fatal("nil injector injected a fault")
	}
	in.NoteRetry(time.Second)
	in.NoteRedispatch()
	in.NoteDeadLetter(sim.TraceContext{}, "q")
	in.NoteRecovery(time.Second)
	if in.RedeliveryDelay() != 0 {
		t.Fatal("nil injector has a redelivery delay")
	}
	if st := in.Stats(); st != (Stats{}) {
		t.Fatalf("nil injector stats = %+v, want zero", st)
	}
	if in.Events() != nil {
		t.Fatal("nil injector has events")
	}
	if NewInjector(sim.NewKernel(1), nil) != nil {
		t.Fatal("NewInjector(nil plan) != nil")
	}
}

func TestZeroRateNeverFires(t *testing.T) {
	in := NewInjector(sim.NewKernel(1), &Plan{Rules: []Rule{{Kind: Crash, Rate: 0}}})
	for i := 0; i < 1000; i++ {
		if _, ok := in.Next(sim.TraceContext{}, "lambda", "fn"); ok {
			t.Fatal("rate-0 rule fired")
		}
	}
}

// TestRateConvergence sanity-checks the hash's uniformity: a rate-0.3
// rule should fire on roughly 30% of decisions.
func TestRateConvergence(t *testing.T) {
	in := NewInjector(sim.NewKernel(123), &Plan{Rules: []Rule{{Kind: TransientError, Rate: 0.3}}})
	n, fired := 5000, 0
	for i := 0; i < n; i++ {
		if _, ok := in.Next(sim.TraceContext{}, "lambda", "fn"); ok {
			fired++
		}
	}
	frac := float64(fired) / float64(n)
	if frac < 0.25 || frac > 0.35 {
		t.Fatalf("rate-0.3 rule fired at %.3f over %d decisions", frac, n)
	}
}
