// Package chaos is a deterministic, seed-driven fault injector for the
// simulated platforms. A Plan declares fault rules keyed by component,
// resource name, and invocation index; an Injector evaluates them at
// instrumented points inside the Lambda service, the SFN interpreter,
// the storage queue, the Azure Functions host, and the Durable task
// hub. Faults model the failure classes the real platforms are built
// to survive — transient function errors, container crashes, timeout
// spikes, at-least-once queue delivery (visibility-timeout redelivery,
// duplicates, poison-message dead-lettering), and orchestrator host
// crashes before and after history persistence.
//
// Determinism contract:
//
//   - Fault decisions are stateless hashes, not RNG draws. Each
//     (component, name) pair keeps an invocation counter; the decision
//     for invocation i under rule r is a splitmix64-style hash of
//     (kernel seed ^ plan salt, component/name, r, i). Two runs with
//     the same seed and plan therefore inject byte-identical fault
//     schedules, and faults on one component never perturb another
//     component's schedule (there is no shared random sequence).
//   - The injector draws nothing from the kernel's named RNG streams
//     except a single seed derivation at construction, so enabling
//     chaos does not shift any existing component's variates.
//   - An Injector belongs to one Env/Kernel and is only used from that
//     kernel's goroutine; it needs no locking.
//
// Disabled fast path: services hold a `*Injector` that stays nil unless
// core.Env.EnableChaos was called. Every method is nil-safe, so the
// disabled path costs one predictable branch and zero allocations.
package chaos

import (
	"fmt"
	"time"

	"statebench/internal/obs/metrics"
	"statebench/internal/obs/span"
	"statebench/internal/obs/tseries"
	"statebench/internal/sim"
)

// Kind classifies an injected fault.
type Kind string

const (
	// TransientError fails the invocation after partial execution; the
	// platform surface is an ordinary handler error (retriable).
	TransientError Kind = "transient-error"
	// Crash kills the executing container/host mid-invocation: partial
	// execution is billed, the warm container is lost, and on queue-fed
	// platforms the in-flight work item is redelivered.
	Crash Kind = "crash"
	// CrashAfterPersist crashes a Durable orchestrator episode after its
	// new history events are persisted and actions dispatched, but
	// before the triggering queue messages are acknowledged — the
	// crash window that forces replay to deduplicate.
	CrashAfterPersist Kind = "crash-after-persist"
	// TimeoutSpike stretches an invocation by Delay, which may push it
	// over the function's configured timeout.
	TimeoutSpike Kind = "timeout-spike"
	// Redeliver drops a queue delivery (consumer crashed before
	// acknowledging); the message reappears after the visibility
	// timeout, or dead-letters once MaxDequeueCount is exhausted.
	Redeliver Kind = "redeliver"
	// Duplicate delivers a queue message normally and redelivers a
	// ghost copy after the visibility timeout — at-least-once
	// semantics as consumers actually observe them.
	Duplicate Kind = "duplicate"
)

// Rule is one fault clause in a Plan. Empty Component or Name matches
// any component or resource.
type Rule struct {
	// Component selects an injection site: "lambda", "sfn", "queue",
	// "azfunc", "durable", "netherite" (commit-batch loss), or
	// "netherite-transport" (duplicate ghost deliveries). "" matches all.
	Component string
	// Name selects a resource (function, queue, state, orchestrator)
	// within the component. "" matches all.
	Name string
	// Kind is the fault to inject when the rule fires.
	Kind Kind
	// Rate is the per-invocation firing probability in [0, 1].
	Rate float64
	// Delay is the fault magnitude: partial execution before a
	// TransientError/Crash, or the added latency of a TimeoutSpike.
	// Zero selects a per-kind default.
	Delay time.Duration
	// MaxFaults caps how many times the rule may fire; 0 = unlimited.
	MaxFaults int
	// After skips the first After invocations of each matching
	// (component, name) pair before the rule becomes eligible.
	After int64
}

// Plan is a complete fault schedule. The zero value injects nothing.
type Plan struct {
	// Salt perturbs every decision hash, so two plans with identical
	// rules but different salts produce independent fault schedules
	// under the same kernel seed.
	Salt uint64
	// RedeliveryDelay is how long a crashed Durable episode's messages
	// stay invisible before redelivery (the control-queue visibility
	// timeout). Zero defaults to 30s.
	RedeliveryDelay time.Duration
	// Rules are evaluated in order; the first rule that fires wins.
	Rules []Rule
}

// DefaultPlan is the schedule used by the reliability and crosscloud
// experiments and the `statebench chaos` subcommand: rate-R transient
// errors on every Lambda function and SFN task, host recycles on Azure
// Functions, duplicate deliveries on every storage queue, Durable
// episode crashes on both sides of history persistence, and transient
// errors on GCP Cloud Functions and Workflows call steps. All kinds
// chosen here are liveness-safe: every fault is recoverable by the
// platform's own retry/replay/redelivery machinery, so workflows
// always terminate.
//
// New providers' sites are appended after the existing rules, never
// inserted: decisions hash (component, name, rule index), so appending
// leaves the schedules of earlier components bit-identical.
func DefaultPlan(rate float64) *Plan {
	return &Plan{
		RedeliveryDelay: 30 * time.Second,
		Rules: []Rule{
			{Component: "lambda", Kind: TransientError, Rate: rate},
			{Component: "sfn", Kind: TransientError, Rate: rate},
			{Component: "azfunc", Kind: Crash, Rate: rate},
			{Component: "queue", Kind: Duplicate, Rate: rate},
			{Component: "durable", Kind: Crash, Rate: rate / 2},
			{Component: "durable", Kind: CrashAfterPersist, Rate: rate / 2},
			{Component: "gcf", Kind: TransientError, Rate: rate},
			{Component: "gwf", Kind: TransientError, Rate: rate},
			{Component: "netherite", Kind: Crash, Rate: rate / 2},
			{Component: "netherite", Kind: CrashAfterPersist, Rate: rate / 2},
			{Component: "netherite-transport", Kind: Duplicate, Rate: rate},
		},
	}
}

// Fault is one injected fault decision returned by Next.
type Fault struct {
	Kind  Kind
	Delay time.Duration
}

// Event records one injected fault for reliability reporting.
type Event struct {
	At        sim.Time
	Component string
	Name      string
	Index     int64
	Kind      Kind
}

// Stats aggregates injector activity over a campaign.
type Stats struct {
	// Injected is the total number of faults injected (all kinds).
	Injected int64
	// Per-kind injection counts. CrashAfterPersist counts into Crashes.
	TransientErrors int64
	Crashes         int64
	TimeoutSpikes   int64
	Redeliveries    int64
	Duplicates      int64
	// DeadLetters counts poison messages moved to a dead-letter queue.
	DeadLetters int64
	// Retries counts platform-level retries observed in response to
	// faults (SFN Retry policy firings).
	Retries int64
	// Redispatches counts work items re-queued after a host crash.
	Redispatches int64
	// RecoveryDelay is total added virtual time spent waiting on
	// recovery: retry backoff, visibility timeouts, redelivery delays.
	RecoveryDelay time.Duration
	// WastedWork counts speculative history records discarded because a
	// crash lost their uncommitted batch (Netherite-style speculation:
	// the episode's work was real, billed, and thrown away).
	WastedWork int64
}

// FaultError is the error surfaced by an injected invocation fault.
// The SFN interpreter maps it — like any non-ASL error — to
// "States.TaskFailed", so injected faults drive the Retry/Catch
// machinery exactly as real task failures do.
type FaultError struct {
	Kind      Kind
	Component string
	Name      string
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("chaos: injected %s in %s/%s", e.Kind, e.Component, e.Name)
}

// Injector evaluates a Plan at instrumented points. Construct with
// NewInjector; a nil *Injector is valid and injects nothing.
type Injector struct {
	k      *sim.Kernel
	plan   Plan
	seed   uint64
	counts map[string]int64 // per component/name invocation index
	fired  []int64          // per-rule firing count (MaxFaults)
	stats  Stats
	events []Event

	// Tracer, when non-nil, receives a zero-length span.KindFault span
	// per injected fault, annotated onto the victim's trace.
	Tracer *span.Tracer
	// Metrics, when non-nil, counts faults per component and kind.
	Metrics *metrics.Registry
	// Timeline, when non-nil, books each injected fault into its
	// virtual-time window. Fed here rather than via the fault span so
	// windowed fault counts work with tracing off and are never doubled.
	Timeline *tseries.Series
}

// NewInjector builds an injector for plan on kernel k. Returns nil for
// a nil plan, which is the disabled fast path everywhere downstream.
func NewInjector(k *sim.Kernel, plan *Plan) *Injector {
	if plan == nil {
		return nil
	}
	p := *plan
	if p.RedeliveryDelay <= 0 {
		p.RedeliveryDelay = 30 * time.Second
	}
	// One named-stream draw derives the decision seed; no further
	// randomness is consumed, so other components' streams are
	// untouched whether or not chaos is enabled.
	return &Injector{
		k:      k,
		plan:   p,
		seed:   k.Stream("chaos/injector").Uint64() ^ p.Salt,
		counts: make(map[string]int64),
		fired:  make([]int64, len(p.Rules)),
	}
}

// Enabled reports whether the injector can inject faults.
func (in *Injector) Enabled() bool { return in != nil && len(in.plan.Rules) > 0 }

// RedeliveryDelay is the plan's crash-redelivery visibility timeout.
func (in *Injector) RedeliveryDelay() time.Duration {
	if in == nil {
		return 0
	}
	return in.plan.RedeliveryDelay
}

// fnv64 hashes a string with FNV-1a, matching sim.Kernel.Stream's
// name-derivation so component/name keys mix with the same quality.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix64 is the splitmix64 finalizer (same mixer as internal/sim).
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// decide returns a uniform [0,1) value that depends only on the
// injector seed, the (component, name) key hash, the rule index, and
// the invocation index — a stateless draw, so decisions for one site
// never shift another site's schedule.
func (in *Injector) decide(nameKey uint64, rule int, idx int64) float64 {
	z := mix64(in.seed ^ nameKey)
	z = mix64(z ^ uint64(rule)*0x9e3779b97f4a7c15)
	z = mix64(z ^ uint64(idx))
	return float64(z>>11) / (1 << 53)
}

// defaultDelay is the per-kind fault magnitude when Rule.Delay is 0.
func defaultDelay(k Kind) time.Duration {
	switch k {
	case TransientError:
		return 10 * time.Millisecond
	case Crash:
		return 25 * time.Millisecond
	case TimeoutSpike:
		return 1 * time.Second
	default:
		return 0
	}
}

// Next advances the invocation counter for (component, name) and
// returns the fault to inject, if any rule fires. ctx is the victim's
// trace context, used to annotate the fault onto its trace.
func (in *Injector) Next(ctx sim.TraceContext, component, name string) (Fault, bool) {
	if in == nil {
		return Fault{}, false
	}
	key := component + "/" + name
	idx := in.counts[key]
	in.counts[key] = idx + 1
	for ri := range in.plan.Rules {
		r := &in.plan.Rules[ri]
		if r.Component != "" && r.Component != component {
			continue
		}
		if r.Name != "" && r.Name != name {
			continue
		}
		if idx < r.After {
			continue
		}
		if r.MaxFaults > 0 && in.fired[ri] >= int64(r.MaxFaults) {
			continue
		}
		if in.decide(fnv64(key), ri, idx) >= r.Rate {
			continue
		}
		in.fired[ri]++
		d := r.Delay
		if d == 0 {
			d = defaultDelay(r.Kind)
		}
		in.record(ctx, component, name, idx, r.Kind)
		return Fault{Kind: r.Kind, Delay: d}, true
	}
	return Fault{}, false
}

// record books an injected fault: stats, event log, trace annotation,
// and the metrics counter.
func (in *Injector) record(ctx sim.TraceContext, component, name string, idx int64, k Kind) {
	in.stats.Injected++
	switch k {
	case TransientError:
		in.stats.TransientErrors++
	case Crash, CrashAfterPersist:
		in.stats.Crashes++
	case TimeoutSpike:
		in.stats.TimeoutSpikes++
	case Redeliver:
		in.stats.Redeliveries++
	case Duplicate:
		in.stats.Duplicates++
	}
	now := in.k.Now()
	in.events = append(in.events, Event{At: now, Component: component, Name: name, Index: idx, Kind: k})
	in.Timeline.AddFault(now)
	if in.Tracer.Enabled() {
		in.Tracer.Emit(span.KindFault, "chaos/"+component+"/"+name, now, now, ctx,
			span.A("fault", string(k)))
	}
	in.Metrics.Inc("statebench_chaos_faults_total", 1,
		metrics.L("component", component), metrics.L("kind", string(k)))
}

// NoteRetry books one platform retry triggered downstream of a fault,
// plus the backoff delay it added.
func (in *Injector) NoteRetry(backoff time.Duration) {
	if in == nil {
		return
	}
	in.stats.Retries++
	in.stats.RecoveryDelay += backoff
	in.Metrics.Inc("statebench_chaos_retries_total", 1)
}

// NoteRedispatch books one work item re-queued after a host crash.
func (in *Injector) NoteRedispatch() {
	if in == nil {
		return
	}
	in.stats.Redispatches++
}

// NoteDeadLetter books one poison message moved to a dead-letter
// queue, annotated onto the message's trace.
func (in *Injector) NoteDeadLetter(ctx sim.TraceContext, name string) {
	if in == nil {
		return
	}
	in.stats.DeadLetters++
	now := in.k.Now()
	if in.Tracer.Enabled() {
		in.Tracer.Emit(span.KindFault, "deadletter/"+name, now, now, ctx)
	}
	in.Metrics.Inc("statebench_chaos_deadletters_total", 1, metrics.L("queue", name))
}

// NoteWastedWork books n speculative history records discarded because
// a crash lost their uncommitted batch.
func (in *Injector) NoteWastedWork(n int) {
	if in == nil {
		return
	}
	in.stats.WastedWork += int64(n)
	in.Metrics.Inc("statebench_chaos_wasted_speculation_total", float64(n))
}

// NoteRecovery books added virtual time spent waiting on recovery
// (visibility timeout, redelivery delay).
func (in *Injector) NoteRecovery(d time.Duration) {
	if in == nil {
		return
	}
	in.stats.RecoveryDelay += d
}

// Stats returns the accumulated injector statistics.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	return in.stats
}

// Events returns the injected-fault log in injection order. The slice
// is owned by the injector; callers must not mutate it.
func (in *Injector) Events() []Event {
	if in == nil {
		return nil
	}
	return in.events
}
