package linmodel

import (
	"math"
	"testing"

	"statebench/internal/mlkit/metrics"
	"statebench/internal/sim"
)

// linearData generates y = 3x0 - 2x1 + 5 + noise.
func linearData(n int, noise float64, seed uint64) ([][]float64, []float64) {
	r := sim.NewRNG(seed)
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{r.Uniform(-5, 5), r.Uniform(-5, 5)}
		y[i] = 3*X[i][0] - 2*X[i][1] + 5 + r.Normal(0, noise)
	}
	return X, y
}

func TestLinearRegressionExactFit(t *testing.T) {
	X, y := linearData(200, 0, 1)
	var m LinearRegression
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coef[0]-3) > 1e-6 || math.Abs(m.Coef[1]+2) > 1e-6 {
		t.Fatalf("coef = %v", m.Coef)
	}
	if math.Abs(m.Intercept-5) > 1e-6 {
		t.Fatalf("intercept = %v", m.Intercept)
	}
}

func TestLinearRegressionNoisyR2(t *testing.T) {
	X, y := linearData(500, 1, 2)
	var m LinearRegression
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	pred, err := m.Predict(X)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := metrics.R2(y, pred)
	if r2 < 0.95 {
		t.Fatalf("R2 = %v", r2)
	}
}

func TestLinearRegressionValidation(t *testing.T) {
	var m LinearRegression
	if err := m.Fit(nil, nil); err == nil {
		t.Fatal("empty fit accepted")
	}
	if err := m.Fit([][]float64{{1}, {2}}, []float64{1}); err == nil {
		t.Fatal("mismatched fit accepted")
	}
	if err := m.Fit([][]float64{{1}, {2, 3}}, []float64{1, 2}); err == nil {
		t.Fatal("ragged fit accepted")
	}
	if _, err := m.Predict([][]float64{{1}}); err == nil {
		t.Fatal("unfitted predict accepted")
	}
}

func TestPredictShapeMismatch(t *testing.T) {
	X, y := linearData(50, 0, 3)
	var m LinearRegression
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict([][]float64{{1}}); err == nil {
		t.Fatal("narrow predict accepted")
	}
}

func TestRidgeShrinksCoefficients(t *testing.T) {
	X, y := linearData(100, 0.5, 4)
	var ols LinearRegression
	if err := ols.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	r := Ridge{Alpha: 1000}
	if err := r.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Coef[0]) >= math.Abs(ols.Coef[0]) {
		t.Fatalf("ridge |%v| not < ols |%v|", r.Coef[0], ols.Coef[0])
	}
}

func TestLassoSparsifies(t *testing.T) {
	// y depends only on x0; x1..x4 are noise features. Lasso should
	// zero most irrelevant coefficients.
	r := sim.NewRNG(5)
	n := 300
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{r.Normal(0, 1), r.Normal(0, 1), r.Normal(0, 1), r.Normal(0, 1), r.Normal(0, 1)}
		y[i] = 4*X[i][0] + r.Normal(0, 0.1)
	}
	m := Lasso{Alpha: 0.5}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coef[0]-4) > 0.5 {
		t.Fatalf("signal coef = %v", m.Coef[0])
	}
	zeros := 0
	for _, w := range m.Coef[1:] {
		if w == 0 {
			zeros++
		}
	}
	if zeros < 3 {
		t.Fatalf("lasso kept noise features: %v", m.Coef)
	}
	if m.NonZero() != 5-zeros {
		t.Fatalf("NonZero = %d", m.NonZero())
	}
	if m.Iterations <= 0 {
		t.Fatal("iterations not recorded")
	}
}

func TestLassoZeroAlphaMatchesOLS(t *testing.T) {
	X, y := linearData(200, 0, 6)
	m := Lasso{Alpha: 0, MaxIter: 5000, Tol: 1e-10}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coef[0]-3) > 1e-3 || math.Abs(m.Coef[1]+2) > 1e-3 {
		t.Fatalf("alpha=0 coef = %v", m.Coef)
	}
}

func TestLassoConstantFeature(t *testing.T) {
	X := [][]float64{{1, 7}, {2, 7}, {3, 7}, {4, 7}}
	y := []float64{2, 4, 6, 8}
	m := Lasso{Alpha: 0.01}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if m.Coef[1] != 0 {
		t.Fatalf("constant feature got weight %v", m.Coef[1])
	}
	pred, err := m.Predict(X)
	if err != nil {
		t.Fatal(err)
	}
	mse, _ := metrics.MSE(y, pred)
	if mse > 0.1 {
		t.Fatalf("mse = %v", mse)
	}
}

func TestSoftThreshold(t *testing.T) {
	cases := []struct{ x, lam, want float64 }{
		{5, 2, 3}, {-5, 2, -3}, {1, 2, 0}, {-1, 2, 0}, {2, 2, 0},
	}
	for _, c := range cases {
		if got := softThreshold(c.x, c.lam); got != c.want {
			t.Errorf("softThreshold(%v,%v) = %v, want %v", c.x, c.lam, got, c.want)
		}
	}
}

func TestSolveGaussianSingular(t *testing.T) {
	// Two identical rows -> singular.
	a := [][]float64{{1, 1, 2}, {1, 1, 2}}
	if _, err := solveGaussian(a, 2); err == nil {
		t.Fatal("singular system solved")
	}
}
