// Package linmodel implements linear regression models from scratch:
// ordinary least squares via Gaussian elimination on the normal
// equations, ridge regression, and Lasso via cyclic coordinate descent
// — the paper's model-selection search includes Lasso.
package linmodel

import (
	"fmt"
	"math"
)

// Regressor is the common contract of mlkit models (also implemented by
// neighbors and ensemble).
type Regressor interface {
	Fit(X [][]float64, y []float64) error
	Predict(X [][]float64) ([]float64, error)
}

func validate(X [][]float64, y []float64) (features int, err error) {
	if len(X) == 0 || len(y) == 0 {
		return 0, fmt.Errorf("linmodel: empty training data")
	}
	if len(X) != len(y) {
		return 0, fmt.Errorf("linmodel: %d rows vs %d targets", len(X), len(y))
	}
	d := len(X[0])
	for i := range X {
		if len(X[i]) != d {
			return 0, fmt.Errorf("linmodel: ragged matrix at row %d", i)
		}
	}
	if d == 0 {
		return 0, fmt.Errorf("linmodel: zero features")
	}
	return d, nil
}

// LinearRegression is ordinary least squares with an intercept.
type LinearRegression struct {
	Coef      []float64
	Intercept float64
}

// Fit solves the normal equations (XᵀX)w = Xᵀy with a small ridge
// jitter for numerical stability on collinear one-hot features.
func (m *LinearRegression) Fit(X [][]float64, y []float64) error {
	return fitLeastSquares(m, X, y, 1e-8)
}

// Predict returns Xw + b.
func (m *LinearRegression) Predict(X [][]float64) ([]float64, error) {
	return predictLinear(m.Coef, m.Intercept, X)
}

// Ridge is L2-regularized least squares.
type Ridge struct {
	Alpha     float64
	Coef      []float64
	Intercept float64
}

// Fit solves (XᵀX + αI)w = Xᵀy.
func (m *Ridge) Fit(X [][]float64, y []float64) error {
	lr := &LinearRegression{}
	if err := fitLeastSquares(lr, X, y, math.Max(m.Alpha, 1e-8)); err != nil {
		return err
	}
	m.Coef, m.Intercept = lr.Coef, lr.Intercept
	return nil
}

// Predict returns Xw + b.
func (m *Ridge) Predict(X [][]float64) ([]float64, error) {
	return predictLinear(m.Coef, m.Intercept, X)
}

// fitLeastSquares centers the data, builds the normal equations with an
// L2 term, and solves by Gaussian elimination with partial pivoting.
func fitLeastSquares(m *LinearRegression, X [][]float64, y []float64, l2 float64) error {
	d, err := validate(X, y)
	if err != nil {
		return err
	}
	n := len(X)
	xMean := make([]float64, d)
	for i := range X {
		for j, v := range X[i] {
			xMean[j] += v
		}
	}
	for j := range xMean {
		xMean[j] /= float64(n)
	}
	var yMean float64
	for _, v := range y {
		yMean += v
	}
	yMean /= float64(n)

	// A = XcᵀXc + l2*I, b = Xcᵀyc.
	a := make([][]float64, d)
	for i := range a {
		a[i] = make([]float64, d+1)
	}
	for r := 0; r < n; r++ {
		yc := y[r] - yMean
		for i := 0; i < d; i++ {
			xi := X[r][i] - xMean[i]
			for j := i; j < d; j++ {
				a[i][j] += xi * (X[r][j] - xMean[j])
			}
			a[i][d] += xi * yc
		}
	}
	for i := 0; i < d; i++ {
		a[i][i] += l2
		for j := 0; j < i; j++ {
			a[i][j] = a[j][i]
		}
	}

	w, err := solveGaussian(a, d)
	if err != nil {
		return err
	}
	m.Coef = w
	m.Intercept = yMean
	for j := 0; j < d; j++ {
		m.Intercept -= w[j] * xMean[j]
	}
	return nil
}

// solveGaussian solves the augmented system a (d x d+1) in place.
func solveGaussian(a [][]float64, d int) ([]float64, error) {
	for col := 0; col < d; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < d; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, fmt.Errorf("linmodel: singular system at column %d", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		inv := 1 / a[col][col]
		for r := 0; r < d; r++ {
			if r == col {
				continue
			}
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c <= d; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	w := make([]float64, d)
	for i := 0; i < d; i++ {
		w[i] = a[i][d] / a[i][i]
	}
	return w, nil
}

func predictLinear(coef []float64, intercept float64, X [][]float64) ([]float64, error) {
	if coef == nil {
		return nil, fmt.Errorf("linmodel: model not fitted")
	}
	out := make([]float64, len(X))
	for i, row := range X {
		if len(row) != len(coef) {
			return nil, fmt.Errorf("linmodel: row has %d features, model has %d", len(row), len(coef))
		}
		s := intercept
		for j, v := range row {
			s += coef[j] * v
		}
		out[i] = s
	}
	return out, nil
}

// Lasso is L1-regularized least squares fitted by cyclic coordinate
// descent with soft thresholding.
type Lasso struct {
	// Alpha is the L1 penalty weight.
	Alpha float64
	// MaxIter bounds coordinate-descent sweeps (default 1000).
	MaxIter int
	// Tol is the convergence threshold on max coefficient change
	// (default 1e-6).
	Tol float64

	Coef      []float64
	Intercept float64
	// Iterations actually used (for cost modeling).
	Iterations int
}

// Fit runs coordinate descent on centered data.
func (m *Lasso) Fit(X [][]float64, y []float64) error {
	d, err := validate(X, y)
	if err != nil {
		return err
	}
	if m.MaxIter <= 0 {
		m.MaxIter = 1000
	}
	if m.Tol <= 0 {
		m.Tol = 1e-6
	}
	n := len(X)

	xMean := make([]float64, d)
	for i := range X {
		for j, v := range X[i] {
			xMean[j] += v
		}
	}
	for j := range xMean {
		xMean[j] /= float64(n)
	}
	var yMean float64
	for _, v := range y {
		yMean += v
	}
	yMean /= float64(n)

	xc := make([][]float64, n)
	yc := make([]float64, n)
	colSq := make([]float64, d)
	for i := range X {
		xc[i] = make([]float64, d)
		for j := range X[i] {
			v := X[i][j] - xMean[j]
			xc[i][j] = v
			colSq[j] += v * v
		}
		yc[i] = y[i] - yMean
	}

	w := make([]float64, d)
	resid := append([]float64(nil), yc...)
	lam := m.Alpha * float64(n)

	var iter int
	for iter = 0; iter < m.MaxIter; iter++ {
		maxDelta := 0.0
		for j := 0; j < d; j++ {
			if colSq[j] == 0 {
				continue
			}
			// rho = x_j · (resid + w_j x_j)
			rho := 0.0
			for i := 0; i < n; i++ {
				rho += xc[i][j] * resid[i]
			}
			rho += w[j] * colSq[j]
			newW := softThreshold(rho, lam) / colSq[j]
			delta := newW - w[j]
			if delta != 0 {
				for i := 0; i < n; i++ {
					resid[i] -= delta * xc[i][j]
				}
				w[j] = newW
			}
			if math.Abs(delta) > maxDelta {
				maxDelta = math.Abs(delta)
			}
		}
		if maxDelta < m.Tol {
			break
		}
	}
	m.Iterations = iter + 1
	m.Coef = w
	m.Intercept = yMean
	for j := 0; j < d; j++ {
		m.Intercept -= w[j] * xMean[j]
	}
	return nil
}

// Predict returns Xw + b.
func (m *Lasso) Predict(X [][]float64) ([]float64, error) {
	return predictLinear(m.Coef, m.Intercept, X)
}

// NonZero returns the count of active (non-zero) coefficients.
func (m *Lasso) NonZero() int {
	n := 0
	for _, w := range m.Coef {
		if w != 0 {
			n++
		}
	}
	return n
}

func softThreshold(x, lam float64) float64 {
	switch {
	case x > lam:
		return x - lam
	case x < -lam:
		return x + lam
	default:
		return 0
	}
}
