// Package modelsel implements the model-selection machinery of the
// paper's training workflow: train/test splitting, K-fold cross
// validation, and grid search over candidate regressors, selecting the
// best fit by validation MSE (the role of the paper's "ModelSelection"
// collector entity).
package modelsel

import (
	"cmp"
	"fmt"
	"slices"

	"statebench/internal/mlkit/linmodel"
	"statebench/internal/mlkit/metrics"
	"statebench/internal/sim"
)

// Split divides (X, y) into train/test with the given test fraction,
// shuffled deterministically by seed.
func Split(X [][]float64, y []float64, testFrac float64, seed uint64) (trainX [][]float64, trainY []float64, testX [][]float64, testY []float64, err error) {
	if len(X) != len(y) || len(X) == 0 {
		return nil, nil, nil, nil, fmt.Errorf("modelsel: bad shapes %d/%d", len(X), len(y))
	}
	if testFrac <= 0 || testFrac >= 1 {
		return nil, nil, nil, nil, fmt.Errorf("modelsel: testFrac %v out of (0,1)", testFrac)
	}
	perm := sim.NewRNG(seed).Perm(len(X))
	nTest := int(float64(len(X)) * testFrac)
	if nTest == 0 {
		nTest = 1
	}
	for i, p := range perm {
		if i < nTest {
			testX = append(testX, X[p])
			testY = append(testY, y[p])
		} else {
			trainX = append(trainX, X[p])
			trainY = append(trainY, y[p])
		}
	}
	return trainX, trainY, testX, testY, nil
}

// KFold yields k (train, validation) index partitions.
type KFold struct {
	K    int
	Seed uint64
}

// Folds returns the index sets for n rows.
func (kf KFold) Folds(n int) ([][]int, [][]int, error) {
	if kf.K < 2 || kf.K > n {
		return nil, nil, fmt.Errorf("modelsel: K=%d invalid for %d rows", kf.K, n)
	}
	perm := sim.NewRNG(kf.Seed).Perm(n)
	trains := make([][]int, kf.K)
	vals := make([][]int, kf.K)
	for f := 0; f < kf.K; f++ {
		lo := f * n / kf.K
		hi := (f + 1) * n / kf.K
		vals[f] = append(vals[f], perm[lo:hi]...)
		trains[f] = append(trains[f], perm[:lo]...)
		trains[f] = append(trains[f], perm[hi:]...)
	}
	return trains, vals, nil
}

// Candidate is one (name, constructor) grid-search entry; the
// constructor returns a fresh unfitted model so folds don't share
// state.
type Candidate struct {
	Name string
	New  func() linmodel.Regressor
}

// Result is a scored candidate.
type Result struct {
	Name string
	MSE  float64
	R2   float64
}

// CrossValidate scores one candidate by K-fold mean validation MSE.
func CrossValidate(c Candidate, X [][]float64, y []float64, k int, seed uint64) (Result, error) {
	trains, vals, err := KFold{K: k, Seed: seed}.Folds(len(X))
	if err != nil {
		return Result{}, err
	}
	var mseSum, r2Sum float64
	for f := range trains {
		tx, ty := take(X, y, trains[f])
		vx, vy := take(X, y, vals[f])
		model := c.New()
		if err := model.Fit(tx, ty); err != nil {
			return Result{}, fmt.Errorf("modelsel: %s fold %d: %w", c.Name, f, err)
		}
		pred, err := model.Predict(vx)
		if err != nil {
			return Result{}, err
		}
		mse, err := metrics.MSE(vy, pred)
		if err != nil {
			return Result{}, err
		}
		r2, err := metrics.R2(vy, pred)
		if err != nil {
			return Result{}, err
		}
		mseSum += mse
		r2Sum += r2
	}
	kf := float64(len(trains))
	return Result{Name: c.Name, MSE: mseSum / kf, R2: r2Sum / kf}, nil
}

// GridSearch cross-validates every candidate and returns results sorted
// by ascending MSE (best first).
func GridSearch(cands []Candidate, X [][]float64, y []float64, k int, seed uint64) ([]Result, error) {
	if len(cands) == 0 {
		return nil, fmt.Errorf("modelsel: no candidates")
	}
	var out []Result
	for _, c := range cands {
		r, err := CrossValidate(c, X, y, k, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	slices.SortFunc(out, func(a, b Result) int { return cmp.Compare(a.MSE, b.MSE) })
	return out, nil
}

// BestFit is the accumulator the paper implements as the
// "ModelSelection" entity: it keeps the lowest-error model reported so
// far.
type BestFit struct {
	Name  string
	MSE   float64
	Model []byte // serialized winning model
	set   bool
}

// Report offers a candidate; it is kept only if it beats the current
// best. Returns true if it became the new best.
func (b *BestFit) Report(name string, mse float64, model []byte) bool {
	if !b.set || mse < b.MSE {
		b.Name = name
		b.MSE = mse
		b.Model = model
		b.set = true
		return true
	}
	return false
}

// HasModel reports whether any candidate has been accepted.
func (b *BestFit) HasModel() bool { return b.set }

func take(X [][]float64, y []float64, idx []int) ([][]float64, []float64) {
	tx := make([][]float64, len(idx))
	ty := make([]float64, len(idx))
	for i, r := range idx {
		tx[i] = X[r]
		ty[i] = y[r]
	}
	return tx, ty
}
