package modelsel

import (
	"testing"

	"statebench/internal/mlkit/linmodel"
	"statebench/internal/mlkit/neighbors"
	"statebench/internal/sim"
)

func linData(n int, seed uint64) ([][]float64, []float64) {
	r := sim.NewRNG(seed)
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{r.Uniform(-3, 3), r.Uniform(-3, 3)}
		y[i] = 2*X[i][0] - X[i][1] + r.Normal(0, 0.2)
	}
	return X, y
}

func TestSplitShapesAndDisjoint(t *testing.T) {
	X, y := linData(100, 1)
	trX, trY, teX, teY, err := Split(X, y, 0.25, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(trX) != 75 || len(teX) != 25 || len(trY) != 75 || len(teY) != 25 {
		t.Fatalf("split sizes %d/%d", len(trX), len(teX))
	}
	if _, _, _, _, err := Split(X, y, 0, 7); err == nil {
		t.Fatal("testFrac=0 accepted")
	}
	if _, _, _, _, err := Split(nil, nil, 0.5, 7); err == nil {
		t.Fatal("empty split accepted")
	}
}

func TestSplitDeterministic(t *testing.T) {
	X, y := linData(50, 2)
	_, aY, _, _, err := Split(X, y, 0.2, 9)
	if err != nil {
		t.Fatal(err)
	}
	_, bY, _, _, err := Split(X, y, 0.2, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range aY {
		if aY[i] != bY[i] {
			t.Fatal("same-seed split differs")
		}
	}
}

func TestKFoldPartitions(t *testing.T) {
	kf := KFold{K: 4, Seed: 3}
	trains, vals, err := kf.Folds(20)
	if err != nil {
		t.Fatal(err)
	}
	if len(trains) != 4 || len(vals) != 4 {
		t.Fatal("fold count")
	}
	seen := map[int]int{}
	for f := range vals {
		if len(vals[f]) != 5 || len(trains[f]) != 15 {
			t.Fatalf("fold %d sizes %d/%d", f, len(vals[f]), len(trains[f]))
		}
		for _, i := range vals[f] {
			seen[i]++
		}
		// train ∩ val = ∅
		inVal := map[int]bool{}
		for _, i := range vals[f] {
			inVal[i] = true
		}
		for _, i := range trains[f] {
			if inVal[i] {
				t.Fatalf("fold %d overlaps", f)
			}
		}
	}
	// Every row appears in exactly one validation fold.
	for i := 0; i < 20; i++ {
		if seen[i] != 1 {
			t.Fatalf("row %d in %d validation folds", i, seen[i])
		}
	}
	if _, _, err := (KFold{K: 1}).Folds(10); err == nil {
		t.Fatal("K=1 accepted")
	}
}

func TestGridSearchPicksRightModel(t *testing.T) {
	// Linear data: linear regression must beat 1-NN.
	X, y := linData(200, 4)
	cands := []Candidate{
		{Name: "knn1", New: func() linmodel.Regressor { return &neighbors.KNeighborsRegressor{K: 1} }},
		{Name: "linear", New: func() linmodel.Regressor { return &linmodel.LinearRegression{} }},
	}
	results, err := GridSearch(cands, X, y, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Name != "linear" {
		t.Fatalf("grid search picked %s (mse %v) over linear", results[0].Name, results[0].MSE)
	}
	if results[0].MSE >= results[1].MSE {
		t.Fatal("results not sorted by MSE")
	}
	if results[0].R2 < 0.9 {
		t.Fatalf("winner R2 = %v", results[0].R2)
	}
	if _, err := GridSearch(nil, X, y, 5, 1); err == nil {
		t.Fatal("empty grid accepted")
	}
}

func TestBestFitKeepsMinimum(t *testing.T) {
	var b BestFit
	if b.HasModel() {
		t.Fatal("empty best fit has model")
	}
	if !b.Report("a", 10, []byte("ma")) {
		t.Fatal("first report rejected")
	}
	if b.Report("b", 20, []byte("mb")) {
		t.Fatal("worse report accepted")
	}
	if !b.Report("c", 5, []byte("mc")) {
		t.Fatal("better report rejected")
	}
	if b.Name != "c" || b.MSE != 5 || string(b.Model) != "mc" {
		t.Fatalf("best = %+v", b)
	}
}
