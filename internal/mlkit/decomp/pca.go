// Package decomp implements principal component analysis — the
// dimension-reduction step of the paper's ML pipeline — from scratch:
// covariance computation plus a cyclic Jacobi eigendecomposition of the
// symmetric covariance matrix.
package decomp

import (
	"cmp"
	"fmt"
	"math"
	"slices"
)

// PCA is a fitted principal-component projection.
type PCA struct {
	// Components is the projection matrix, one row per component
	// (each of length = input features).
	Components [][]float64
	// Mean is the per-feature training mean subtracted before
	// projection.
	Mean []float64
	// ExplainedVariance holds the eigenvalue of each kept component.
	ExplainedVariance []float64
	// TotalVariance is the sum of all eigenvalues (for ratios).
	TotalVariance float64
}

// FitPCA learns nComponents principal axes of X. nComponents must be in
// [1, features].
func FitPCA(X [][]float64, nComponents int) (*PCA, error) {
	if len(X) == 0 {
		return nil, fmt.Errorf("decomp: empty matrix")
	}
	d := len(X[0])
	if nComponents < 1 || nComponents > d {
		return nil, fmt.Errorf("decomp: nComponents %d out of range [1,%d]", nComponents, d)
	}
	mean := make([]float64, d)
	for i := range X {
		if len(X[i]) != d {
			return nil, fmt.Errorf("decomp: ragged matrix at row %d", i)
		}
		for j, v := range X[i] {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(len(X))
	}

	// Covariance (d x d), symmetric.
	cov := make([][]float64, d)
	for i := range cov {
		cov[i] = make([]float64, d)
	}
	for _, row := range X {
		for a := 0; a < d; a++ {
			da := row[a] - mean[a]
			for b := a; b < d; b++ {
				cov[a][b] += da * (row[b] - mean[b])
			}
		}
	}
	norm := float64(len(X) - 1)
	if norm <= 0 {
		norm = 1
	}
	for a := 0; a < d; a++ {
		for b := a; b < d; b++ {
			cov[a][b] /= norm
			cov[b][a] = cov[a][b]
		}
	}

	vals, vecs := jacobiEigen(cov)

	// Order by descending eigenvalue.
	idx := make([]int, d)
	for i := range idx {
		idx[i] = i
	}
	slices.SortFunc(idx, func(a, b int) int { return cmp.Compare(vals[b], vals[a]) })

	p := &PCA{Mean: mean}
	for _, v := range vals {
		p.TotalVariance += math.Max(v, 0)
	}
	for c := 0; c < nComponents; c++ {
		col := idx[c]
		comp := make([]float64, d)
		for r := 0; r < d; r++ {
			comp[r] = vecs[r][col]
		}
		p.Components = append(p.Components, comp)
		p.ExplainedVariance = append(p.ExplainedVariance, math.Max(vals[col], 0))
	}
	return p, nil
}

// Transform projects X onto the fitted components.
func (p *PCA) Transform(X [][]float64) ([][]float64, error) {
	d := len(p.Mean)
	out := make([][]float64, len(X))
	// One flat backing array for every projected row: identical values,
	// two allocations instead of one per row.
	k := len(p.Components)
	backing := make([]float64, len(X)*k)
	for i, row := range X {
		if len(row) != d {
			return nil, fmt.Errorf("decomp: row has %d features, PCA fitted on %d", len(row), d)
		}
		proj := backing[i*k : (i+1)*k : (i+1)*k]
		for c, comp := range p.Components {
			var s float64
			for j := 0; j < d; j++ {
				s += (row[j] - p.Mean[j]) * comp[j]
			}
			proj[c] = s
		}
		out[i] = proj
	}
	return out, nil
}

// ExplainedVarianceRatio returns each kept component's share of the
// total variance.
func (p *PCA) ExplainedVarianceRatio() []float64 {
	out := make([]float64, len(p.ExplainedVariance))
	if p.TotalVariance == 0 {
		return out
	}
	for i, v := range p.ExplainedVariance {
		out[i] = v / p.TotalVariance
	}
	return out
}

// jacobiEigen diagonalizes a symmetric matrix with cyclic Jacobi
// rotations, returning eigenvalues and the eigenvector matrix (columns
// are eigenvectors). The input is copied, not mutated.
func jacobiEigen(m [][]float64) ([]float64, [][]float64) {
	n := len(m)
	a := make([][]float64, n)
	for i := range a {
		a[i] = append([]float64(nil), m[i]...)
	}
	v := identity(n)

	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += a[i][j] * a[i][j]
			}
		}
		if off < 1e-18 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				if math.Abs(a[p][q]) < 1e-30 {
					continue
				}
				theta := (a[q][q] - a[p][p]) / (2 * a[p][q])
				t := sign(theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c

				rotate(a, p, q, c, s)
				// Accumulate eigenvectors.
				for i := 0; i < n; i++ {
					vip, viq := v[i][p], v[i][q]
					v[i][p] = c*vip - s*viq
					v[i][q] = s*vip + c*viq
				}
			}
		}
	}
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = a[i][i]
	}
	return vals, v
}

// rotate applies the Jacobi rotation on rows/cols p and q of a.
func rotate(a [][]float64, p, q int, c, s float64) {
	n := len(a)
	app, aqq, apq := a[p][p], a[q][q], a[p][q]
	a[p][p] = c*c*app - 2*s*c*apq + s*s*aqq
	a[q][q] = s*s*app + 2*s*c*apq + c*c*aqq
	a[p][q] = 0
	a[q][p] = 0
	for i := 0; i < n; i++ {
		if i == p || i == q {
			continue
		}
		aip, aiq := a[i][p], a[i][q]
		a[i][p] = c*aip - s*aiq
		a[p][i] = a[i][p]
		a[i][q] = s*aip + c*aiq
		a[q][i] = a[i][q]
	}
}

func identity(n int) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		m[i][i] = 1
	}
	return m
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}
