package decomp

import (
	"math"
	"testing"

	"statebench/internal/sim"
)

// corrData builds points stretched along a known direction.
func corrData(n int, seed uint64) [][]float64 {
	r := sim.NewRNG(seed)
	X := make([][]float64, n)
	for i := range X {
		t := r.Normal(0, 10)
		noise := r.Normal(0, 0.5)
		// Principal axis (1,2,0)/sqrt(5); minor noise on (2,-1,0).
		X[i] = []float64{
			t*1/math.Sqrt(5) + noise*2/math.Sqrt(5),
			t*2/math.Sqrt(5) - noise*1/math.Sqrt(5),
			r.Normal(0, 0.1),
		}
	}
	return X
}

func TestPCARecoversPrincipalAxis(t *testing.T) {
	X := corrData(2000, 1)
	p, err := FitPCA(X, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := p.Components[0]
	// Component should align with (1,2,0)/sqrt(5) up to sign.
	dot := math.Abs(c[0]*1/math.Sqrt(5) + c[1]*2/math.Sqrt(5))
	if dot < 0.99 {
		t.Fatalf("component %v misaligned (|dot| = %.3f)", c, dot)
	}
	ratios := p.ExplainedVarianceRatio()
	if ratios[0] < 0.95 {
		t.Fatalf("explained ratio = %v, want > 0.95", ratios[0])
	}
}

func TestPCAComponentsOrthonormal(t *testing.T) {
	X := corrData(500, 2)
	p, err := FitPCA(X, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Components {
		for j := range p.Components {
			var dot float64
			for k := range p.Components[i] {
				dot += p.Components[i][k] * p.Components[j][k]
			}
			want := 0.0
			if i == j {
				want = 1.0
			}
			if math.Abs(dot-want) > 1e-6 {
				t.Fatalf("components %d·%d = %v, want %v", i, j, dot, want)
			}
		}
	}
	// Eigenvalues must be sorted descending.
	for i := 1; i < len(p.ExplainedVariance); i++ {
		if p.ExplainedVariance[i] > p.ExplainedVariance[i-1]+1e-9 {
			t.Fatal("eigenvalues not descending")
		}
	}
}

func TestPCATransformShapeAndCentering(t *testing.T) {
	X := corrData(300, 3)
	p, err := FitPCA(X, 2)
	if err != nil {
		t.Fatal(err)
	}
	Z, err := p.Transform(X)
	if err != nil {
		t.Fatal(err)
	}
	if len(Z) != 300 || len(Z[0]) != 2 {
		t.Fatalf("shape = %dx%d", len(Z), len(Z[0]))
	}
	// Projection of training data must be (near) zero-mean.
	for j := 0; j < 2; j++ {
		var mean float64
		for i := range Z {
			mean += Z[i][j]
		}
		mean /= float64(len(Z))
		if math.Abs(mean) > 1e-6 {
			t.Fatalf("projected mean[%d] = %v", j, mean)
		}
	}
}

func TestPCATransformPreservesVariance(t *testing.T) {
	X := corrData(1000, 4)
	p, err := FitPCA(X, 1)
	if err != nil {
		t.Fatal(err)
	}
	Z, err := p.Transform(X)
	if err != nil {
		t.Fatal(err)
	}
	var v float64
	for i := range Z {
		v += Z[i][0] * Z[i][0]
	}
	v /= float64(len(Z) - 1)
	if math.Abs(v-p.ExplainedVariance[0])/p.ExplainedVariance[0] > 0.01 {
		t.Fatalf("projected variance %v vs eigenvalue %v", v, p.ExplainedVariance[0])
	}
}

func TestPCAErrors(t *testing.T) {
	if _, err := FitPCA(nil, 1); err == nil {
		t.Fatal("empty matrix accepted")
	}
	X := corrData(10, 5)
	if _, err := FitPCA(X, 0); err == nil {
		t.Fatal("0 components accepted")
	}
	if _, err := FitPCA(X, 4); err == nil {
		t.Fatal("too many components accepted")
	}
	p, err := FitPCA(X, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Transform([][]float64{{1, 2}}); err == nil {
		t.Fatal("wrong-width transform accepted")
	}
}

func TestJacobiOnKnownMatrix(t *testing.T) {
	// Eigenvalues of [[2,1],[1,2]] are 3 and 1.
	vals, vecs := jacobiEigen([][]float64{{2, 1}, {1, 2}})
	got := []float64{vals[0], vals[1]}
	if got[0] > got[1] {
		got[0], got[1] = got[1], got[0]
	}
	if math.Abs(got[0]-1) > 1e-9 || math.Abs(got[1]-3) > 1e-9 {
		t.Fatalf("eigenvalues = %v", vals)
	}
	// Eigenvector columns must be unit length.
	for c := 0; c < 2; c++ {
		n := vecs[0][c]*vecs[0][c] + vecs[1][c]*vecs[1][c]
		if math.Abs(n-1) > 1e-9 {
			t.Fatalf("eigenvector %d norm² = %v", c, n)
		}
	}
}
