// Package ensemble implements CART regression trees and a random
// forest regressor — the heavyweight model in the paper's selection
// search (sklearn's RandomForestRegressor analogue), trained via
// bootstrap bagging with per-split feature subsampling.
package ensemble

import (
	"fmt"
	"math"
	"slices"
)

// treeNode is one node of a regression tree, stored in a flat slice so
// trees gob-encode compactly (model sizes matter to the workloads).
type treeNode struct {
	// Feature < 0 marks a leaf.
	Feature   int
	Threshold float64
	Left      int
	Right     int
	Value     float64
}

// RegressionTree is a CART tree minimizing squared error.
type RegressionTree struct {
	// MaxDepth bounds tree depth (0 = unlimited).
	MaxDepth int
	// MinSamplesLeaf is the minimum rows per leaf (default 1).
	MinSamplesLeaf int
	// MaxFeatures limits features considered per split (0 = all);
	// the forest sets this for decorrelation.
	MaxFeatures int

	Nodes []treeNode
	// NumFeatures is the training feature count, checked at predict.
	NumFeatures int

	// rng returns pseudo-random ints for feature subsampling; injected
	// by the forest for determinism. Nil means deterministic order.
	rng func(n int) int

	// Per-Fit scratch buffers, sized once in Fit and reused across every
	// node's split search and partition. Unexported, so fitted trees
	// gob-encode exactly as before.
	scratchFeats []int
	scratchVals  []splitPair
	scratchIdx   []int
}

// splitPair is one (feature value, target) sample in a split scan.
type splitPair struct{ x, y float64 }

// Fit grows the tree on X, y.
func (t *RegressionTree) Fit(X [][]float64, y []float64) error {
	if len(X) == 0 || len(X) != len(y) {
		return fmt.Errorf("ensemble: bad training shapes %d/%d", len(X), len(y))
	}
	if t.MinSamplesLeaf <= 0 {
		t.MinSamplesLeaf = 1
	}
	t.NumFeatures = len(X[0])
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	if cap(t.scratchFeats) < t.NumFeatures {
		t.scratchFeats = make([]int, t.NumFeatures)
	}
	if cap(t.scratchVals) < len(X) {
		t.scratchVals = make([]splitPair, len(X))
	}
	if cap(t.scratchIdx) < len(X) {
		t.scratchIdx = make([]int, len(X))
	}
	t.Nodes = t.Nodes[:0]
	t.grow(X, y, idx, 0)
	return nil
}

// grow recursively builds the subtree over rows idx, returning its
// node index.
func (t *RegressionTree) grow(X [][]float64, y []float64, idx []int, depth int) int {
	mean := meanOf(y, idx)
	node := treeNode{Feature: -1, Value: mean}
	self := len(t.Nodes)
	t.Nodes = append(t.Nodes, node)

	if len(idx) < 2*t.MinSamplesLeaf || (t.MaxDepth > 0 && depth >= t.MaxDepth) || pure(y, idx) {
		return self
	}

	feat, thr, ok := t.bestSplit(X, y, idx)
	if !ok {
		return self
	}
	// Stable in-place partition of idx into [left | right] via the shared
	// scratch: rows going right park in scratchIdx while left rows
	// compact into the prefix, preserving relative order on both sides —
	// the same order the old append-based split produced. The scratch is
	// done before either recursive call, so one buffer serves all nodes.
	right := t.scratchIdx[:0]
	nl := 0
	for _, i := range idx {
		if X[i][feat] <= thr {
			idx[nl] = i
			nl++
		} else {
			right = append(right, i)
		}
	}
	if nl < t.MinSamplesLeaf || len(right) < t.MinSamplesLeaf {
		// The split is void; idx's prefix was already compacted, but no
		// caller reads idx after grow returns, so no restore is needed.
		return self
	}
	copy(idx[nl:], right)
	l := t.grow(X, y, idx[:nl], depth+1)
	r := t.grow(X, y, idx[nl:], depth+1)
	t.Nodes[self].Feature = feat
	t.Nodes[self].Threshold = thr
	t.Nodes[self].Left = l
	t.Nodes[self].Right = r
	return self
}

// bestSplit finds the (feature, threshold) minimizing weighted child
// variance over a feature subsample.
func (t *RegressionTree) bestSplit(X [][]float64, y []float64, idx []int) (int, float64, bool) {
	d := len(X[0])
	feats := t.scratchFeats[:d]
	for i := range feats {
		feats[i] = i
	}
	if t.MaxFeatures > 0 && t.MaxFeatures < d {
		if t.rng != nil {
			for i := d - 1; i > 0; i-- {
				j := t.rng(i + 1)
				feats[i], feats[j] = feats[j], feats[i]
			}
		}
		feats = feats[:t.MaxFeatures]
	}

	bestScore := math.Inf(1)
	bestFeat, bestThr := -1, 0.0

	vals := t.scratchVals[:len(idx)]
	for _, f := range feats {
		for i, row := range idx {
			vals[i] = splitPair{x: X[row][f], y: y[row]}
		}
		// Manual comparator: feature values are never NaN, so this orders
		// identically to cmp.Compare without its NaN branches.
		slices.SortFunc(vals, func(a, b splitPair) int {
			switch {
			case a.x < b.x:
				return -1
			case a.x > b.x:
				return 1
			default:
				return 0
			}
		})

		// Prefix sums for O(n) split scan.
		n := len(vals)
		var totSum, totSq float64
		for _, v := range vals {
			totSum += v.y
			totSq += v.y * v.y
		}
		var lSum, lSq float64
		for i := 0; i < n-1; i++ {
			lSum += vals[i].y
			lSq += vals[i].y * vals[i].y
			if vals[i].x == vals[i+1].x {
				continue
			}
			nl, nr := float64(i+1), float64(n-i-1)
			if int(nl) < t.MinSamplesLeaf || int(nr) < t.MinSamplesLeaf {
				continue
			}
			rSum, rSq := totSum-lSum, totSq-lSq
			score := (lSq - lSum*lSum/nl) + (rSq - rSum*rSum/nr)
			if score < bestScore {
				bestScore = score
				bestFeat = f
				bestThr = (vals[i].x + vals[i+1].x) / 2
			}
		}
	}
	return bestFeat, bestThr, bestFeat >= 0
}

// Predict evaluates the tree for each row.
func (t *RegressionTree) Predict(X [][]float64) ([]float64, error) {
	out := make([]float64, len(X))
	if err := t.predictInto(X, out); err != nil {
		return nil, err
	}
	return out, nil
}

// predictInto evaluates the tree into a caller-provided slice, letting
// the forest reuse one buffer across its trees.
func (t *RegressionTree) predictInto(X [][]float64, out []float64) error {
	if len(t.Nodes) == 0 {
		return fmt.Errorf("ensemble: tree not fitted")
	}
	for i, row := range X {
		if len(row) != t.NumFeatures {
			return fmt.Errorf("ensemble: row has %d features, tree fitted on %d", len(row), t.NumFeatures)
		}
		n := 0
		for t.Nodes[n].Feature >= 0 {
			f := t.Nodes[n].Feature
			if row[f] <= t.Nodes[n].Threshold {
				n = t.Nodes[n].Left
			} else {
				n = t.Nodes[n].Right
			}
		}
		out[i] = t.Nodes[n].Value
	}
	return nil
}

// Depth returns the tree's maximum depth.
func (t *RegressionTree) Depth() int {
	var walk func(n, d int) int
	walk = func(n, d int) int {
		if t.Nodes[n].Feature < 0 {
			return d
		}
		l := walk(t.Nodes[n].Left, d+1)
		r := walk(t.Nodes[n].Right, d+1)
		if l > r {
			return l
		}
		return r
	}
	if len(t.Nodes) == 0 {
		return 0
	}
	return walk(0, 0)
}

func meanOf(y []float64, idx []int) float64 {
	var s float64
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}

func pure(y []float64, idx []int) bool {
	first := y[idx[0]]
	for _, i := range idx[1:] {
		if y[i] != first {
			return false
		}
	}
	return true
}
