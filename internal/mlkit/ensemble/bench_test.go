package ensemble

import (
	"testing"

	"statebench/internal/sim"
)

func benchData(n int) ([][]float64, []float64) {
	r := sim.NewRNG(1)
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{r.Uniform(0, 10), r.Uniform(0, 10), r.Uniform(0, 10), r.Uniform(0, 10)}
		y[i] = X[i][0]*2 + X[i][1]*X[i][2]
	}
	return X, y
}

func BenchmarkForestFit(b *testing.B) {
	X, y := benchData(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := &RandomForestRegressor{NumTrees: 10, MaxDepth: 8, Seed: 7}
		if err := f.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForestPredict(b *testing.B) {
	X, y := benchData(1000)
	f := &RandomForestRegressor{NumTrees: 10, MaxDepth: 8, Seed: 7}
	if err := f.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Predict(X[:100]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTreeFit(b *testing.B) {
	X, y := benchData(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := &RegressionTree{MaxDepth: 10}
		if err := tr.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}
