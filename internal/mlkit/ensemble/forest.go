package ensemble

import (
	"fmt"

	"statebench/internal/sim"
)

// RandomForestRegressor averages bootstrap-bagged regression trees with
// per-split feature subsampling.
type RandomForestRegressor struct {
	// NumTrees is the ensemble size (default 10, sklearn's old default).
	NumTrees int
	// MaxDepth bounds each tree (0 = unlimited).
	MaxDepth int
	// MinSamplesLeaf is per-tree (default 1).
	MinSamplesLeaf int
	// MaxFeatures per split; 0 means all features (sklearn's
	// regression default — pure bagging).
	MaxFeatures int
	// Seed makes training deterministic.
	Seed uint64

	Trees []*RegressionTree
}

// Fit trains the ensemble.
func (m *RandomForestRegressor) Fit(X [][]float64, y []float64) error {
	if len(X) == 0 || len(X) != len(y) {
		return fmt.Errorf("ensemble: bad training shapes %d/%d", len(X), len(y))
	}
	if m.NumTrees <= 0 {
		m.NumTrees = 10
	}
	d := len(X[0])
	maxFeat := m.MaxFeatures
	if maxFeat <= 0 || maxFeat > d {
		maxFeat = d
	}
	rng := sim.NewRNG(m.Seed ^ 0x9e3779b97f4a7c15)
	n := len(X)
	m.Trees = m.Trees[:0]
	// One bootstrap buffer and one rng closure serve every tree: Fit
	// never retains bx/by (nodes store thresholds, not rows), so the
	// next tree can overwrite them.
	bx := make([][]float64, n)
	by := make([]float64, n)
	pick := func(k int) int { return rng.Intn(k) }
	var prev *RegressionTree
	for t := 0; t < m.NumTrees; t++ {
		for i := 0; i < n; i++ {
			j := rng.Intn(n)
			bx[i] = X[j]
			by[i] = y[j]
		}
		tree := &RegressionTree{
			MaxDepth:       m.MaxDepth,
			MinSamplesLeaf: m.MinSamplesLeaf,
			MaxFeatures:    maxFeat,
			rng:            pick,
		}
		if prev != nil {
			// Hand the previous tree's split scratch forward; Fit grows
			// it on demand, so the whole ensemble allocates it once.
			tree.scratchFeats, tree.scratchVals, tree.scratchIdx = prev.scratchFeats, prev.scratchVals, prev.scratchIdx
		}
		if err := tree.Fit(bx, by); err != nil {
			return fmt.Errorf("ensemble: tree %d: %w", t, err)
		}
		m.Trees = append(m.Trees, tree)
		prev = tree
	}
	for _, tree := range m.Trees {
		tree.scratchFeats, tree.scratchVals, tree.scratchIdx = nil, nil, nil
	}
	return nil
}

// Predict averages the trees' predictions.
func (m *RandomForestRegressor) Predict(X [][]float64) ([]float64, error) {
	if len(m.Trees) == 0 {
		return nil, fmt.Errorf("ensemble: forest not fitted")
	}
	out := make([]float64, len(X))
	p := make([]float64, len(X))
	for _, tree := range m.Trees {
		if err := tree.predictInto(X, p); err != nil {
			return nil, err
		}
		for i, v := range p {
			out[i] += v
		}
	}
	inv := 1 / float64(len(m.Trees))
	for i := range out {
		out[i] *= inv
	}
	return out, nil
}

// NodeCount sums nodes across trees (model size proxy).
func (m *RandomForestRegressor) NodeCount() int {
	n := 0
	for _, t := range m.Trees {
		n += len(t.Nodes)
	}
	return n
}
