package ensemble

import (
	"math"
	"testing"

	"statebench/internal/mlkit/metrics"
	"statebench/internal/sim"
)

// stepData is a piecewise-constant target trees should nail.
func stepData(n int, seed uint64) ([][]float64, []float64) {
	r := sim.NewRNG(seed)
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x0 := r.Uniform(0, 10)
		x1 := r.Uniform(0, 10)
		X[i] = []float64{x0, x1}
		switch {
		case x0 < 3:
			y[i] = 1
		case x0 < 7 && x1 < 5:
			y[i] = 5
		default:
			y[i] = 9
		}
	}
	return X, y
}

func TestTreeFitsPiecewiseConstant(t *testing.T) {
	X, y := stepData(500, 1)
	tree := &RegressionTree{MaxDepth: 8, MinSamplesLeaf: 2}
	if err := tree.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	pred, err := tree.Predict(X)
	if err != nil {
		t.Fatal(err)
	}
	mse, _ := metrics.MSE(y, pred)
	if mse > 0.05 {
		t.Fatalf("tree mse = %v", mse)
	}
	if tree.Depth() < 2 || tree.Depth() > 8 {
		t.Fatalf("depth = %d", tree.Depth())
	}
}

func TestTreeDepthLimit(t *testing.T) {
	X, y := stepData(500, 2)
	tree := &RegressionTree{MaxDepth: 1}
	if err := tree.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if tree.Depth() > 1 {
		t.Fatalf("depth = %d, want <= 1", tree.Depth())
	}
}

func TestTreeMinSamplesLeaf(t *testing.T) {
	X, y := stepData(100, 3)
	tree := &RegressionTree{MinSamplesLeaf: 40}
	if err := tree.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	// With >= 40 rows per leaf and 100 rows, at most 2 leaves: depth <= 1.
	if tree.Depth() > 1 {
		t.Fatalf("depth = %d with large MinSamplesLeaf", tree.Depth())
	}
}

func TestTreePureLeafStops(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{7, 7, 7, 7}
	tree := &RegressionTree{}
	if err := tree.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if len(tree.Nodes) != 1 {
		t.Fatalf("pure target grew %d nodes", len(tree.Nodes))
	}
	pred, _ := tree.Predict([][]float64{{99}})
	if pred[0] != 7 {
		t.Fatalf("pred = %v", pred[0])
	}
}

func TestTreeErrors(t *testing.T) {
	tree := &RegressionTree{}
	if err := tree.Fit(nil, nil); err == nil {
		t.Fatal("empty fit accepted")
	}
	if _, err := tree.Predict([][]float64{{1}}); err == nil {
		t.Fatal("unfitted predict accepted")
	}
	X, y := stepData(50, 4)
	if err := tree.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Predict([][]float64{{1}}); err == nil {
		t.Fatal("narrow predict accepted")
	}
}

func TestForestBeatsSingleTreeOnNoisy(t *testing.T) {
	r := sim.NewRNG(5)
	n := 600
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{r.Uniform(0, 10), r.Uniform(0, 10), r.Uniform(0, 10)}
		y[i] = math.Sin(X[i][0]) * 5 * X[i][1] / (1 + X[i][2]) // smooth nonlinear
	}
	trainX, trainY := X[:400], y[:400]
	testX, testY := X[400:], y[400:]

	tree := &RegressionTree{MaxDepth: 12}
	if err := tree.Fit(trainX, trainY); err != nil {
		t.Fatal(err)
	}
	tp, _ := tree.Predict(testX)
	treeMSE, _ := metrics.MSE(testY, tp)

	forest := &RandomForestRegressor{NumTrees: 30, MaxDepth: 12, Seed: 7}
	if err := forest.Fit(trainX, trainY); err != nil {
		t.Fatal(err)
	}
	fp, _ := forest.Predict(testX)
	forestMSE, _ := metrics.MSE(testY, fp)

	if forestMSE >= treeMSE {
		t.Fatalf("forest mse %v not better than single tree %v", forestMSE, treeMSE)
	}
}

func TestForestDeterministicBySeed(t *testing.T) {
	X, y := stepData(200, 6)
	a := &RandomForestRegressor{NumTrees: 5, Seed: 9}
	b := &RandomForestRegressor{NumTrees: 5, Seed: 9}
	if err := a.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	pa, _ := a.Predict(X[:10])
	pb, _ := b.Predict(X[:10])
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("same seed, different predictions")
		}
	}
	if a.NodeCount() != b.NodeCount() {
		t.Fatal("same seed, different structure")
	}
}

func TestForestDefaultsAndErrors(t *testing.T) {
	f := &RandomForestRegressor{}
	if _, err := f.Predict([][]float64{{1}}); err == nil {
		t.Fatal("unfitted forest predicted")
	}
	if err := f.Fit(nil, nil); err == nil {
		t.Fatal("empty fit accepted")
	}
	X, y := stepData(60, 7)
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if f.NumTrees != 10 || len(f.Trees) != 10 {
		t.Fatalf("default trees = %d/%d", f.NumTrees, len(f.Trees))
	}
	if f.NodeCount() == 0 {
		t.Fatal("no nodes grown")
	}
}
