package neighbors

import (
	"math"
	"testing"

	"statebench/internal/mlkit/metrics"
	"statebench/internal/sim"
)

func TestKNNBasic(t *testing.T) {
	X := [][]float64{{0}, {1}, {2}, {10}, {11}, {12}}
	y := []float64{1, 1, 1, 9, 9, 9}
	m := &KNeighborsRegressor{K: 3}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	pred, err := m.Predict([][]float64{{1}, {11}})
	if err != nil {
		t.Fatal(err)
	}
	if pred[0] != 1 || pred[1] != 9 {
		t.Fatalf("pred = %v", pred)
	}
}

func TestKNNUniformAveraging(t *testing.T) {
	X := [][]float64{{0}, {1}, {2}}
	y := []float64{0, 3, 9}
	m := &KNeighborsRegressor{K: 3}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	pred, _ := m.Predict([][]float64{{1}})
	if pred[0] != 4 {
		t.Fatalf("mean of all = %v, want 4", pred[0])
	}
}

func TestKNNDistanceWeighting(t *testing.T) {
	X := [][]float64{{0}, {10}}
	y := []float64{0, 10}
	m := &KNeighborsRegressor{K: 2, Weights: Distance}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	// Query at 1: weights 1/1 and 1/9 -> (0*1 + 10/9) / (1+1/9) = 1.
	pred, _ := m.Predict([][]float64{{1}})
	if math.Abs(pred[0]-1) > 1e-9 {
		t.Fatalf("weighted pred = %v, want 1", pred[0])
	}
}

func TestKNNExactMatchDominates(t *testing.T) {
	X := [][]float64{{0}, {5}}
	y := []float64{2, 8}
	m := &KNeighborsRegressor{K: 2, Weights: Distance}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	pred, _ := m.Predict([][]float64{{5}})
	if pred[0] != 8 {
		t.Fatalf("exact match pred = %v", pred[0])
	}
}

func TestKNNValidation(t *testing.T) {
	m := &KNeighborsRegressor{K: 0}
	if err := m.Fit([][]float64{{1}}, []float64{1}); err == nil {
		t.Fatal("K=0 accepted")
	}
	m = &KNeighborsRegressor{K: 5}
	if err := m.Fit([][]float64{{1}}, []float64{1}); err == nil {
		t.Fatal("K > n accepted")
	}
	m = &KNeighborsRegressor{K: 1}
	if _, err := m.Predict([][]float64{{1}}); err == nil {
		t.Fatal("unfitted predict accepted")
	}
	if err := m.Fit([][]float64{{1}, {2}}, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict([][]float64{{1, 2}}); err == nil {
		t.Fatal("wide query accepted")
	}
	if m.TrainingSize() != 2 {
		t.Fatalf("training size = %d", m.TrainingSize())
	}
}

func TestKNNSmoothFunction(t *testing.T) {
	r := sim.NewRNG(1)
	n := 500
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x := r.Uniform(0, 10)
		X[i] = []float64{x}
		y[i] = math.Sin(x)
	}
	m := &KNeighborsRegressor{K: 7}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	var qx [][]float64
	var qy []float64
	for x := 0.5; x < 9.5; x += 0.1 {
		qx = append(qx, []float64{x})
		qy = append(qy, math.Sin(x))
	}
	pred, _ := m.Predict(qx)
	mse, _ := metrics.MSE(qy, pred)
	if mse > 0.01 {
		t.Fatalf("knn mse on smooth fn = %v", mse)
	}
}
