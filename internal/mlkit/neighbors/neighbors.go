// Package neighbors implements the k-nearest-neighbors regressor the
// paper's model-selection step searches over (sklearn's
// KNeighborsRegressor analogue), with uniform and inverse-distance
// weighting.
package neighbors

import (
	"fmt"
	"math"
	"slices"
)

// Weighting selects how neighbor targets are combined.
type Weighting int

// Weightings.
const (
	Uniform Weighting = iota
	Distance
)

// KNeighborsRegressor predicts the (weighted) mean target of the K
// nearest training rows by Euclidean distance.
type KNeighborsRegressor struct {
	K       int
	Weights Weighting

	// XTrain and YTrain are the memorized training set (exported so
	// fitted models gob-serialize with their real size).
	XTrain [][]float64
	YTrain []float64
}

// Fit memorizes the training set.
func (m *KNeighborsRegressor) Fit(X [][]float64, y []float64) error {
	if m.K <= 0 {
		return fmt.Errorf("neighbors: K must be positive, got %d", m.K)
	}
	if len(X) == 0 || len(X) != len(y) {
		return fmt.Errorf("neighbors: bad training shapes %d/%d", len(X), len(y))
	}
	if m.K > len(X) {
		return fmt.Errorf("neighbors: K=%d exceeds %d training rows", m.K, len(X))
	}
	d := len(X[0])
	m.XTrain = make([][]float64, len(X))
	// One flat backing array for the memorized rows: same values (and
	// the same gob encoding), two allocations instead of len(X)+1.
	backing := make([]float64, len(X)*d)
	for i := range X {
		if len(X[i]) != d {
			return fmt.Errorf("neighbors: ragged matrix at row %d", i)
		}
		row := backing[i*d : (i+1)*d : (i+1)*d]
		copy(row, X[i])
		m.XTrain[i] = row
	}
	m.YTrain = append([]float64(nil), y...)
	return nil
}

// Predict returns the KNN estimate for each query row.
func (m *KNeighborsRegressor) Predict(X [][]float64) ([]float64, error) {
	if m.XTrain == nil {
		return nil, fmt.Errorf("neighbors: model not fitted")
	}
	out := make([]float64, len(X))
	type cand struct {
		dist float64
		y    float64
	}
	// One candidate buffer serves every query row: the sort consumes it
	// before the next row refills it.
	cands := make([]cand, len(m.XTrain))
	for qi, q := range X {
		if len(q) != len(m.XTrain[0]) {
			return nil, fmt.Errorf("neighbors: query has %d features, model has %d", len(q), len(m.XTrain[0]))
		}
		for i, row := range m.XTrain {
			var s float64
			for j := range row {
				d := row[j] - q[j]
				s += d * d
			}
			cands[i] = cand{dist: math.Sqrt(s), y: m.YTrain[i]}
		}
		// Manual comparator: distances are never NaN, so this orders
		// identically to cmp.Compare without its NaN branches.
		slices.SortFunc(cands, func(a, b cand) int {
			switch {
			case a.dist < b.dist:
				return -1
			case a.dist > b.dist:
				return 1
			default:
				return 0
			}
		})
		top := cands[:m.K]
		switch m.Weights {
		case Distance:
			var num, den float64
			exact := false
			for _, c := range top {
				if c.dist == 0 {
					// Exact match dominates (sklearn semantics).
					out[qi] = c.y
					exact = true
					break
				}
				w := 1 / c.dist
				num += w * c.y
				den += w
			}
			if !exact {
				out[qi] = num / den
			}
		default:
			var s float64
			for _, c := range top {
				s += c.y
			}
			out[qi] = s / float64(m.K)
		}
	}
	return out, nil
}

// TrainingSize returns the memorized row count (model size proxy).
func (m *KNeighborsRegressor) TrainingSize() int { return len(m.XTrain) }
