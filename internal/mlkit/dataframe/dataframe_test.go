package dataframe

import (
	"bytes"
	"testing"
	"testing/quick"
)

func sample() *DataFrame {
	df := New()
	if err := df.AddCategorical("color", []string{"red", "blue", "red"}); err != nil {
		panic(err)
	}
	if err := df.AddNumeric("size", []float64{1, 2, 3}); err != nil {
		panic(err)
	}
	return df
}

func TestAddAndShape(t *testing.T) {
	df := sample()
	if df.NumRows() != 3 || df.NumCols() != 2 {
		t.Fatalf("shape = %dx%d", df.NumRows(), df.NumCols())
	}
	if err := df.AddNumeric("bad", []float64{1}); err == nil {
		t.Fatal("length-mismatched column accepted")
	}
	if err := df.AddNumeric("size", []float64{1, 2, 3}); err == nil {
		t.Fatal("duplicate column accepted")
	}
}

func TestColumnAccessAndNames(t *testing.T) {
	df := sample()
	c, ok := df.Column("color")
	if !ok || c.Type != Categorical || c.Cats[1] != "blue" {
		t.Fatalf("column access: %+v", c)
	}
	if _, ok := df.Column("ghost"); ok {
		t.Fatal("ghost column found")
	}
	if got := df.CategoricalNames(); len(got) != 1 || got[0] != "color" {
		t.Fatalf("categorical names = %v", got)
	}
	if got := df.NumericNames(); len(got) != 1 || got[0] != "size" {
		t.Fatalf("numeric names = %v", got)
	}
}

func TestDrop(t *testing.T) {
	df := sample()
	out, err := df.Drop("color")
	if err != nil {
		t.Fatal(err)
	}
	if out.NumCols() != 1 || df.NumCols() != 2 {
		t.Fatal("drop wrong or mutated original")
	}
	if _, err := df.Drop("ghost"); err == nil {
		t.Fatal("drop of missing column succeeded")
	}
}

func TestSliceAndTakeRows(t *testing.T) {
	df := sample()
	s, err := df.Slice(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := s.Column("size")
	if s.NumRows() != 2 || c.Nums[0] != 2 {
		t.Fatalf("slice = %+v", c.Nums)
	}
	if _, err := df.Slice(2, 1); err == nil {
		t.Fatal("invalid slice accepted")
	}
	tk, err := df.TakeRows([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	cc, _ := tk.Column("color")
	if cc.Cats[0] != "red" || cc.Cats[1] != "red" {
		t.Fatalf("take rows = %v", cc.Cats)
	}
	if _, err := df.TakeRows([]int{9}); err == nil {
		t.Fatal("out-of-range take accepted")
	}
}

func TestNumericMatrix(t *testing.T) {
	df := sample()
	m := df.NumericMatrix()
	if len(m) != 3 || len(m[0]) != 1 || m[2][0] != 3 {
		t.Fatalf("matrix = %v", m)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	df := sample()
	var buf bytes.Buffer
	if err := df.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 3 || back.NumCols() != 2 {
		t.Fatalf("round trip shape %dx%d", back.NumRows(), back.NumCols())
	}
	c, _ := back.Column("color")
	if c.Type != Categorical || c.Cats[0] != "red" {
		t.Fatalf("round trip column: %+v", c)
	}
	n, _ := back.Column("size")
	if n.Nums[2] != 3 {
		t.Fatalf("round trip numeric: %v", n.Nums)
	}
}

func TestCSVBytesRoundTrip(t *testing.T) {
	df := GenerateCars(50, 7)
	data, err := df.CSVBytes()
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromCSVBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 50 || back.NumCols() != df.NumCols() {
		t.Fatal("cars round trip shape")
	}
}

func TestGenerateCarsShape(t *testing.T) {
	df := GenerateCars(200, 1)
	if df.NumRows() != 200 {
		t.Fatalf("rows = %d", df.NumRows())
	}
	// 26 features + price target.
	if df.NumCols() != 27 {
		t.Fatalf("cols = %d, want 27", df.NumCols())
	}
	if got := len(df.CategoricalNames()); got != 12 {
		t.Fatalf("categoricals = %d, want 12", got)
	}
	price, ok := df.Column("price")
	if !ok {
		t.Fatal("no price column")
	}
	for _, p := range price.Nums {
		if p < 1000 || p > 200000 {
			t.Fatalf("implausible price %v", p)
		}
	}
}

func TestGenerateCarsDeterministic(t *testing.T) {
	a := GenerateCars(100, 42)
	b := GenerateCars(100, 42)
	ca, _ := a.Column("price")
	cb, _ := b.Column("price")
	for i := range ca.Nums {
		if ca.Nums[i] != cb.Nums[i] {
			t.Fatal("same seed produced different data")
		}
	}
	c := GenerateCars(100, 43)
	cc, _ := c.Column("price")
	if ca.Nums[0] == cc.Nums[0] && ca.Nums[1] == cc.Nums[1] {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGenerateCarsPriceSignal(t *testing.T) {
	// Luxury cars must be pricier on average than economy — the signal
	// the models learn.
	df := GenerateCars(2000, 5)
	market, _ := df.Column("market")
	price, _ := df.Column("price")
	var lux, eco, nLux, nEco float64
	for i := range market.Cats {
		switch market.Cats[i] {
		case "luxury":
			lux += price.Nums[i]
			nLux++
		case "economy":
			eco += price.Nums[i]
			nEco++
		}
	}
	if lux/nLux < 1.2*(eco/nEco) {
		t.Fatalf("luxury mean %.0f vs economy %.0f: signal too weak", lux/nLux, eco/nEco)
	}
}

// Property: Slice then NumRows is consistent for any valid bounds.
func TestPropertySliceBounds(t *testing.T) {
	df := GenerateCars(64, 3)
	f := func(a, b uint8) bool {
		lo := int(a) % 65
		hi := int(b) % 65
		if lo > hi {
			lo, hi = hi, lo
		}
		s, err := df.Slice(lo, hi)
		if err != nil {
			return false
		}
		return s.NumRows() == hi-lo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
