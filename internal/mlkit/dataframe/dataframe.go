// Package dataframe provides a small column-typed table — the pandas
// analogue the paper's ML workloads manipulate — with CSV round-trips,
// row slicing, and conversion to numeric matrices for modeling.
package dataframe

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ColumnType distinguishes numeric from categorical columns.
type ColumnType int

// Column types.
const (
	Numeric ColumnType = iota
	Categorical
)

// Column is one named, typed column.
type Column struct {
	Name string
	Type ColumnType
	Nums []float64 // valid when Type == Numeric
	Cats []string  // valid when Type == Categorical
}

// Len returns the column's row count.
func (c *Column) Len() int {
	if c.Type == Numeric {
		return len(c.Nums)
	}
	return len(c.Cats)
}

// DataFrame is an ordered collection of equal-length columns.
type DataFrame struct {
	cols  []*Column
	index map[string]int
}

// New creates an empty frame.
func New() *DataFrame {
	return &DataFrame{index: make(map[string]int)}
}

// AddNumeric appends a numeric column.
func (df *DataFrame) AddNumeric(name string, vals []float64) error {
	return df.add(&Column{Name: name, Type: Numeric, Nums: vals})
}

// AddCategorical appends a categorical column.
func (df *DataFrame) AddCategorical(name string, vals []string) error {
	return df.add(&Column{Name: name, Type: Categorical, Cats: vals})
}

func (df *DataFrame) add(c *Column) error {
	if _, dup := df.index[c.Name]; dup {
		return fmt.Errorf("dataframe: duplicate column %q", c.Name)
	}
	if len(df.cols) > 0 && c.Len() != df.NumRows() {
		return fmt.Errorf("dataframe: column %q has %d rows, frame has %d", c.Name, c.Len(), df.NumRows())
	}
	df.index[c.Name] = len(df.cols)
	df.cols = append(df.cols, c)
	return nil
}

// NumRows returns the row count.
func (df *DataFrame) NumRows() int {
	if len(df.cols) == 0 {
		return 0
	}
	return df.cols[0].Len()
}

// NumCols returns the column count.
func (df *DataFrame) NumCols() int { return len(df.cols) }

// Names returns the column names in order.
func (df *DataFrame) Names() []string {
	out := make([]string, len(df.cols))
	for i, c := range df.cols {
		out[i] = c.Name
	}
	return out
}

// Column returns a column by name.
func (df *DataFrame) Column(name string) (*Column, bool) {
	i, ok := df.index[name]
	if !ok {
		return nil, false
	}
	return df.cols[i], true
}

// CategoricalNames returns the names of categorical columns in order.
func (df *DataFrame) CategoricalNames() []string {
	var out []string
	for _, c := range df.cols {
		if c.Type == Categorical {
			out = append(out, c.Name)
		}
	}
	return out
}

// NumericNames returns the names of numeric columns in order.
func (df *DataFrame) NumericNames() []string {
	var out []string
	for _, c := range df.cols {
		if c.Type == Numeric {
			out = append(out, c.Name)
		}
	}
	return out
}

// Drop returns a copy of the frame without the named column.
func (df *DataFrame) Drop(name string) (*DataFrame, error) {
	if _, ok := df.index[name]; !ok {
		return nil, fmt.Errorf("dataframe: no column %q", name)
	}
	out := New()
	for _, c := range df.cols {
		if c.Name == name {
			continue
		}
		if err := out.add(cloneColumn(c)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Slice returns rows [lo, hi) as a new frame.
func (df *DataFrame) Slice(lo, hi int) (*DataFrame, error) {
	if lo < 0 || hi > df.NumRows() || lo > hi {
		return nil, fmt.Errorf("dataframe: slice [%d,%d) out of range (rows=%d)", lo, hi, df.NumRows())
	}
	out := New()
	for _, c := range df.cols {
		nc := &Column{Name: c.Name, Type: c.Type}
		if c.Type == Numeric {
			nc.Nums = append([]float64(nil), c.Nums[lo:hi]...)
		} else {
			nc.Cats = append([]string(nil), c.Cats[lo:hi]...)
		}
		if err := out.add(nc); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// TakeRows returns a new frame with the given row indices, in order.
func (df *DataFrame) TakeRows(rows []int) (*DataFrame, error) {
	n := df.NumRows()
	for _, r := range rows {
		if r < 0 || r >= n {
			return nil, fmt.Errorf("dataframe: row %d out of range", r)
		}
	}
	out := New()
	for _, c := range df.cols {
		nc := &Column{Name: c.Name, Type: c.Type}
		if c.Type == Numeric {
			nc.Nums = make([]float64, len(rows))
			for i, r := range rows {
				nc.Nums[i] = c.Nums[r]
			}
		} else {
			nc.Cats = make([]string, len(rows))
			for i, r := range rows {
				nc.Cats[i] = c.Cats[r]
			}
		}
		if err := out.add(nc); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// NumericMatrix returns the numeric columns as a row-major matrix.
func (df *DataFrame) NumericMatrix() [][]float64 {
	rows := df.NumRows()
	var numCols []*Column
	for _, c := range df.cols {
		if c.Type == Numeric {
			numCols = append(numCols, c)
		}
	}
	// One flat backing array for the whole matrix: identical values, two
	// allocations instead of one per row.
	d := len(numCols)
	backing := make([]float64, rows*d)
	m := make([][]float64, rows)
	for i := range m {
		m[i] = backing[i*d : (i+1)*d : (i+1)*d]
		for j, c := range numCols {
			m[i][j] = c.Nums[i]
		}
	}
	return m
}

func cloneColumn(c *Column) *Column {
	nc := &Column{Name: c.Name, Type: c.Type}
	nc.Nums = append([]float64(nil), c.Nums...)
	nc.Cats = append([]string(nil), c.Cats...)
	return nc
}

// WriteCSV encodes the frame as CSV with a header row.
func (df *DataFrame) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(df.cols))
	for i, c := range df.cols {
		prefix := "n:"
		if c.Type == Categorical {
			prefix = "c:"
		}
		header[i] = prefix + c.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rows := df.NumRows()
	rec := make([]string, len(df.cols))
	for r := 0; r < rows; r++ {
		for i, c := range df.cols {
			if c.Type == Numeric {
				rec[i] = strconv.FormatFloat(c.Nums[r], 'g', -1, 64)
			} else {
				rec[i] = c.Cats[r]
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV decodes a frame written by WriteCSV (typed header prefixes).
func ReadCSV(r io.Reader) (*DataFrame, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataframe: read header: %w", err)
	}
	type colSpec struct {
		name string
		typ  ColumnType
	}
	specs := make([]colSpec, len(header))
	for i, h := range header {
		switch {
		case strings.HasPrefix(h, "n:"):
			specs[i] = colSpec{name: h[2:], typ: Numeric}
		case strings.HasPrefix(h, "c:"):
			specs[i] = colSpec{name: h[2:], typ: Categorical}
		default:
			return nil, fmt.Errorf("dataframe: header %q missing type prefix", h)
		}
	}
	nums := make([][]float64, len(header))
	cats := make([][]string, len(header))
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		for i, v := range rec {
			if specs[i].typ == Numeric {
				f, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return nil, fmt.Errorf("dataframe: column %q: %w", specs[i].name, err)
				}
				nums[i] = append(nums[i], f)
			} else {
				cats[i] = append(cats[i], v)
			}
		}
	}
	df := New()
	for i, s := range specs {
		var err error
		if s.typ == Numeric {
			err = df.AddNumeric(s.name, nums[i])
		} else {
			err = df.AddCategorical(s.name, cats[i])
		}
		if err != nil {
			return nil, err
		}
	}
	return df, nil
}

// CSVBytes serializes the frame to CSV in memory (used to measure the
// payload sizes flowing through the workflows).
func (df *DataFrame) CSVBytes() ([]byte, error) {
	var sb strings.Builder
	if err := df.WriteCSV(&sb); err != nil {
		return nil, err
	}
	return []byte(sb.String()), nil
}

// FromCSVBytes parses a frame from CSVBytes output.
func FromCSVBytes(data []byte) (*DataFrame, error) {
	return ReadCSV(strings.NewReader(string(data)))
}
