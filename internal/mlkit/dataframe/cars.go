package dataframe

import (
	"math"

	"statebench/internal/sim"
)

// This file generates the synthetic car-pricing dataset matching the
// shape the paper describes: 26 features of which 12 are categorical,
// in "small" (200-row) and "large" (10k-row) variants, with a price
// target that is a noisy nonlinear function of the features so the
// model-selection step has real signal to find.

// Car dataset categorical vocabularies.
var carCategoricals = map[string][]string{
	"make":         {"alfa", "audi", "bmw", "chevy", "dodge", "honda", "jaguar", "mazda", "mercedes", "nissan", "toyota", "vw"},
	"fuel_type":    {"gas", "diesel"},
	"aspiration":   {"std", "turbo"},
	"num_doors":    {"two", "four"},
	"body_style":   {"sedan", "hatchback", "wagon", "convertible", "hardtop"},
	"drive_wheels": {"fwd", "rwd", "4wd"},
	"engine_loc":   {"front", "rear"},
	"engine_type":  {"ohc", "dohc", "ohcv", "rotor"},
	"num_cyl":      {"four", "six", "five", "eight", "two", "three"},
	"fuel_system":  {"mpfi", "2bbl", "idi", "1bbl", "spdi"},
	"market":       {"economy", "mid", "luxury"},
	"region":       {"na", "eu", "jp"},
}

// carCategoricalOrder fixes generation order for determinism.
var carCategoricalOrder = []string{
	"make", "fuel_type", "aspiration", "num_doors", "body_style", "drive_wheels",
	"engine_loc", "engine_type", "num_cyl", "fuel_system", "market", "region",
}

// carNumerics are the 14 numeric feature names (26 total with the 12
// categoricals).
var carNumerics = []string{
	"wheel_base", "length", "width", "height", "curb_weight", "engine_size",
	"bore", "stroke", "compression", "horsepower", "peak_rpm", "city_mpg",
	"highway_mpg", "age",
}

// GenerateCars builds the synthetic car dataset with n rows, a "price"
// numeric target column, and the 26-feature shape from the paper. The
// same seed always yields the same dataset.
func GenerateCars(n int, seed uint64) *DataFrame {
	r := sim.NewRNG(seed)
	df := New()

	cats := make(map[string][]string, len(carCategoricalOrder))
	for _, name := range carCategoricalOrder {
		vocab := carCategoricals[name]
		col := make([]string, n)
		for i := range col {
			col[i] = vocab[r.Intn(len(vocab))]
		}
		cats[name] = col
	}

	nums := make(map[string][]float64, len(carNumerics))
	for _, name := range carNumerics {
		nums[name] = make([]float64, n)
	}
	price := make([]float64, n)

	for i := 0; i < n; i++ {
		hp := 60 + r.Float64()*240
		size := 70 + r.Float64()*250
		weight := 1500 + size*6 + hp*4 + r.Normal(0, 120)
		wheelBase := 86 + r.Float64()*35
		length := 140 + wheelBase*0.6 + r.Normal(0, 6)
		nums["wheel_base"][i] = wheelBase
		nums["length"][i] = length
		nums["width"][i] = 60 + r.Float64()*12
		nums["height"][i] = 47 + r.Float64()*12
		nums["curb_weight"][i] = weight
		nums["engine_size"][i] = size
		nums["bore"][i] = 2.5 + r.Float64()*1.5
		nums["stroke"][i] = 2.0 + r.Float64()*2.1
		nums["compression"][i] = 7 + r.Float64()*16
		nums["horsepower"][i] = hp
		nums["peak_rpm"][i] = 4100 + r.Float64()*2600
		nums["city_mpg"][i] = math.Max(10, 52-hp*0.12+r.Normal(0, 2.5))
		nums["highway_mpg"][i] = nums["city_mpg"][i] + 4 + r.Float64()*4
		nums["age"][i] = float64(r.Intn(12))

		// Price: nonlinear in power and size, with brand/market/fuel
		// multipliers and noise — enough structure that trees beat a
		// plain linear fit but linear models stay competitive.
		base := 3500 + 85*hp + 22*size + 1.8*weight - 240*nums["age"][i]
		base += 0.9 * hp * hp / 10
		base += 0.004 * hp * size // power/displacement interaction
		switch cats["market"][i] {
		case "luxury":
			base *= 1.95
		case "mid":
			base *= 1.25
		}
		switch cats["make"][i] {
		case "bmw", "mercedes", "jaguar":
			base *= 1.45
		case "chevy", "dodge":
			base *= 0.82
		}
		if hp > 220 {
			base *= 1.35 // sports premium: a threshold effect
		}
		if cats["fuel_type"][i] == "diesel" {
			base += 900
		}
		if cats["aspiration"][i] == "turbo" {
			base += 1400
		}
		if cats["drive_wheels"][i] == "rwd" {
			base += 600
		}
		price[i] = base + r.Normal(0, base*0.04)
	}

	for _, name := range carCategoricalOrder {
		if err := df.AddCategorical(name, cats[name]); err != nil {
			panic(err)
		}
	}
	for _, name := range carNumerics {
		if err := df.AddNumeric(name, nums[name]); err != nil {
			panic(err)
		}
	}
	if err := df.AddNumeric("price", price); err != nil {
		panic(err)
	}
	return df
}

// SmallCars returns the paper's 200-row dataset.
func SmallCars(seed uint64) *DataFrame { return GenerateCars(200, seed) }

// LargeCars returns the paper's 10,000-row dataset.
func LargeCars(seed uint64) *DataFrame { return GenerateCars(10000, seed) }
