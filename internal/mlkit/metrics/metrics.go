// Package metrics provides the regression quality measures used by the
// model-selection step: MSE, RMSE, MAE, and R².
package metrics

import (
	"fmt"
	"math"
)

func check(yTrue, yPred []float64) error {
	if len(yTrue) != len(yPred) {
		return fmt.Errorf("metrics: length mismatch %d vs %d", len(yTrue), len(yPred))
	}
	if len(yTrue) == 0 {
		return fmt.Errorf("metrics: empty inputs")
	}
	return nil
}

// MSE returns the mean squared error.
func MSE(yTrue, yPred []float64) (float64, error) {
	if err := check(yTrue, yPred); err != nil {
		return 0, err
	}
	var s float64
	for i := range yTrue {
		d := yTrue[i] - yPred[i]
		s += d * d
	}
	return s / float64(len(yTrue)), nil
}

// RMSE returns the root mean squared error.
func RMSE(yTrue, yPred []float64) (float64, error) {
	m, err := MSE(yTrue, yPred)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(m), nil
}

// MAE returns the mean absolute error.
func MAE(yTrue, yPred []float64) (float64, error) {
	if err := check(yTrue, yPred); err != nil {
		return 0, err
	}
	var s float64
	for i := range yTrue {
		s += math.Abs(yTrue[i] - yPred[i])
	}
	return s / float64(len(yTrue)), nil
}

// R2 returns the coefficient of determination (1 = perfect; can be
// negative for models worse than predicting the mean).
func R2(yTrue, yPred []float64) (float64, error) {
	if err := check(yTrue, yPred); err != nil {
		return 0, err
	}
	var mean float64
	for _, v := range yTrue {
		mean += v
	}
	mean /= float64(len(yTrue))
	var ssRes, ssTot float64
	for i := range yTrue {
		d := yTrue[i] - yPred[i]
		ssRes += d * d
		t := yTrue[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1, nil
		}
		return 0, nil
	}
	return 1 - ssRes/ssTot, nil
}
