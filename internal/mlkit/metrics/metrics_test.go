package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMSEAndRMSE(t *testing.T) {
	yt := []float64{1, 2, 3}
	yp := []float64{1, 2, 5} // errors 0,0,2 -> mse 4/3
	mse, err := MSE(yt, yp)
	if err != nil || math.Abs(mse-4.0/3) > 1e-12 {
		t.Fatalf("mse = %v, %v", mse, err)
	}
	rmse, err := RMSE(yt, yp)
	if err != nil || math.Abs(rmse-math.Sqrt(4.0/3)) > 1e-12 {
		t.Fatalf("rmse = %v", rmse)
	}
}

func TestMAE(t *testing.T) {
	mae, err := MAE([]float64{1, -1}, []float64{2, 1})
	if err != nil || mae != 1.5 {
		t.Fatalf("mae = %v, %v", mae, err)
	}
}

func TestR2(t *testing.T) {
	yt := []float64{1, 2, 3, 4}
	perfect, _ := R2(yt, yt)
	if perfect != 1 {
		t.Fatalf("perfect R2 = %v", perfect)
	}
	meanPred := []float64{2.5, 2.5, 2.5, 2.5}
	zero, _ := R2(yt, meanPred)
	if math.Abs(zero) > 1e-12 {
		t.Fatalf("mean-predictor R2 = %v", zero)
	}
	worse, _ := R2(yt, []float64{4, 3, 2, 1})
	if worse >= 0 {
		t.Fatalf("reversed R2 = %v, want negative", worse)
	}
}

func TestR2ConstantTarget(t *testing.T) {
	r, err := R2([]float64{5, 5}, []float64{5, 5})
	if err != nil || r != 1 {
		t.Fatalf("constant exact R2 = %v", r)
	}
	r, err = R2([]float64{5, 5}, []float64{4, 6})
	if err != nil || r != 0 {
		t.Fatalf("constant inexact R2 = %v", r)
	}
}

func TestErrorCases(t *testing.T) {
	if _, err := MSE(nil, nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := MAE([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("mismatch accepted")
	}
	if _, err := R2([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("mismatch accepted")
	}
}

// Property: MSE >= 0, zero iff identical; RMSE² == MSE.
func TestPropertyMSE(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n == 0 {
			return true
		}
		yt, yp := a[:n], b[:n]
		for _, v := range append(yt, yp...) {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		mse, err := MSE(yt, yp)
		if err != nil || mse < 0 {
			return false
		}
		rmse, _ := RMSE(yt, yp)
		return math.Abs(rmse*rmse-mse) <= 1e-9*(1+mse)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
