// Package preprocess implements the feature-engineering stages of the
// paper's ML pipeline: one-hot encoding of categorical columns and
// numeric scaling (standard and min-max), with gob-serializable fitted
// state so the fitted transformers can live in durable entities or blob
// storage like the paper's "Encoding" and "Scalar" entities.
package preprocess

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"sort"

	"statebench/internal/mlkit/dataframe"
)

// OneHotEncoder maps categorical columns to 0/1 indicator features.
type OneHotEncoder struct {
	// Vocab maps column name -> sorted category list seen at fit time.
	Vocab map[string][]string
	// Cols preserves the categorical column order.
	Cols []string
}

// FitOneHot learns the categorical vocabulary of df.
func FitOneHot(df *dataframe.DataFrame) *OneHotEncoder {
	enc := &OneHotEncoder{Vocab: make(map[string][]string)}
	for _, name := range df.CategoricalNames() {
		col, _ := df.Column(name)
		set := make(map[string]bool)
		for _, v := range col.Cats {
			set[v] = true
		}
		vocab := make([]string, 0, len(set))
		for v := range set {
			vocab = append(vocab, v)
		}
		sort.Strings(vocab)
		enc.Vocab[name] = vocab
		enc.Cols = append(enc.Cols, name)
	}
	return enc
}

// Transform replaces each categorical column with indicator columns
// (unknown categories encode to all zeros) and keeps numeric columns.
func (e *OneHotEncoder) Transform(df *dataframe.DataFrame) (*dataframe.DataFrame, error) {
	out := dataframe.New()
	rows := df.NumRows()
	// All indicator columns share one flat backing array: identical
	// values, one allocation for the whole encoded block.
	total := 0
	for _, name := range e.Cols {
		total += len(e.Vocab[name])
	}
	backing := make([]float64, rows*total)
	next := 0
	for _, name := range e.Cols {
		col, ok := df.Column(name)
		if !ok || col.Type != dataframe.Categorical {
			return nil, fmt.Errorf("preprocess: frame missing categorical column %q", name)
		}
		for _, cat := range e.Vocab[name] {
			ind := backing[next*rows : (next+1)*rows : (next+1)*rows]
			next++
			for i, v := range col.Cats {
				if v == cat {
					ind[i] = 1
				}
			}
			if err := out.AddNumeric(name+"="+cat, ind); err != nil {
				return nil, err
			}
		}
	}
	for _, name := range df.NumericNames() {
		col, _ := df.Column(name)
		if err := out.AddNumeric(name, append([]float64(nil), col.Nums...)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// FeatureCount returns the encoded feature count (indicators + numerics
// of a frame with the given numeric column count).
func (e *OneHotEncoder) FeatureCount(numericCols int) int {
	n := numericCols
	for _, v := range e.Vocab {
		n += len(v)
	}
	return n
}

// StandardScaler standardizes each column to zero mean, unit variance.
type StandardScaler struct {
	Mean []float64
	Std  []float64
}

// FitStandard learns per-column mean/std of a numeric matrix.
func FitStandard(X [][]float64) *StandardScaler {
	if len(X) == 0 {
		return &StandardScaler{}
	}
	cols := len(X[0])
	s := &StandardScaler{Mean: make([]float64, cols), Std: make([]float64, cols)}
	for j := 0; j < cols; j++ {
		var sum float64
		for i := range X {
			sum += X[i][j]
		}
		mean := sum / float64(len(X))
		var sq float64
		for i := range X {
			d := X[i][j] - mean
			sq += d * d
		}
		std := sq / float64(len(X))
		s.Mean[j] = mean
		s.Std[j] = sqrt(std)
		if s.Std[j] == 0 {
			s.Std[j] = 1
		}
	}
	return s
}

// Transform returns the standardized copy of X.
func (s *StandardScaler) Transform(X [][]float64) ([][]float64, error) {
	out := make([][]float64, len(X))
	cols := len(s.Mean)
	// Flat backing array: identical values, two allocations total.
	backing := make([]float64, len(X)*cols)
	for i := range X {
		if len(X[i]) != cols {
			return nil, fmt.Errorf("preprocess: row has %d features, scaler fitted on %d", len(X[i]), cols)
		}
		out[i] = backing[i*cols : (i+1)*cols : (i+1)*cols]
		for j := range X[i] {
			out[i][j] = (X[i][j] - s.Mean[j]) / s.Std[j]
		}
	}
	return out, nil
}

// MinMaxScaler rescales each column into [0, 1].
type MinMaxScaler struct {
	Min []float64
	Max []float64
}

// FitMinMax learns per-column min/max.
func FitMinMax(X [][]float64) *MinMaxScaler {
	if len(X) == 0 {
		return &MinMaxScaler{}
	}
	cols := len(X[0])
	s := &MinMaxScaler{Min: make([]float64, cols), Max: make([]float64, cols)}
	for j := 0; j < cols; j++ {
		lo, hi := X[0][j], X[0][j]
		for i := range X {
			if X[i][j] < lo {
				lo = X[i][j]
			}
			if X[i][j] > hi {
				hi = X[i][j]
			}
		}
		s.Min[j], s.Max[j] = lo, hi
	}
	return s
}

// Transform returns the rescaled copy of X (constant columns map to 0).
func (s *MinMaxScaler) Transform(X [][]float64) ([][]float64, error) {
	out := make([][]float64, len(X))
	cols := len(s.Min)
	// Flat backing array: identical values, two allocations total.
	backing := make([]float64, len(X)*cols)
	for i := range X {
		if len(X[i]) != cols {
			return nil, fmt.Errorf("preprocess: row has %d features, scaler fitted on %d", len(X[i]), cols)
		}
		out[i] = backing[i*cols : (i+1)*cols : (i+1)*cols]
		for j := range X[i] {
			span := s.Max[j] - s.Min[j]
			if span == 0 {
				out[i][j] = 0
				continue
			}
			out[i][j] = (X[i][j] - s.Min[j]) / span
		}
	}
	return out, nil
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}

// Encode serializes any gob-able fitted transformer so its size can be
// measured against payload limits (the paper ships these objects
// between functions).
func Encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode deserializes into out (a pointer).
func Decode(data []byte, out any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(out)
}
