package preprocess

import (
	"math"
	"testing"

	"statebench/internal/mlkit/dataframe"
)

func frame() *dataframe.DataFrame {
	df := dataframe.New()
	if err := df.AddCategorical("color", []string{"red", "blue", "red", "green"}); err != nil {
		panic(err)
	}
	if err := df.AddNumeric("size", []float64{1, 2, 3, 4}); err != nil {
		panic(err)
	}
	return df
}

func TestOneHotTransform(t *testing.T) {
	df := frame()
	enc := FitOneHot(df)
	out, err := enc.Transform(df)
	if err != nil {
		t.Fatal(err)
	}
	// 3 indicator columns + 1 numeric.
	if out.NumCols() != 4 {
		t.Fatalf("cols = %d, want 4", out.NumCols())
	}
	red, ok := out.Column("color=red")
	if !ok {
		t.Fatal("missing indicator column")
	}
	want := []float64{1, 0, 1, 0}
	for i := range want {
		if red.Nums[i] != want[i] {
			t.Fatalf("red indicator = %v", red.Nums)
		}
	}
	if enc.FeatureCount(1) != 4 {
		t.Fatalf("FeatureCount = %d", enc.FeatureCount(1))
	}
}

func TestOneHotUnknownCategoryAllZeros(t *testing.T) {
	enc := FitOneHot(frame())
	test := dataframe.New()
	if err := test.AddCategorical("color", []string{"purple"}); err != nil {
		t.Fatal(err)
	}
	if err := test.AddNumeric("size", []float64{9}); err != nil {
		t.Fatal(err)
	}
	out, err := enc.Transform(test)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"color=red", "color=blue", "color=green"} {
		c, _ := out.Column(name)
		if c.Nums[0] != 0 {
			t.Fatalf("unknown category set indicator %s", name)
		}
	}
}

func TestOneHotMissingColumnErrors(t *testing.T) {
	enc := FitOneHot(frame())
	bad := dataframe.New()
	if err := bad.AddNumeric("size", []float64{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := enc.Transform(bad); err == nil {
		t.Fatal("transform without categorical column succeeded")
	}
}

func TestStandardScaler(t *testing.T) {
	X := [][]float64{{1, 10}, {2, 20}, {3, 30}}
	s := FitStandard(X)
	out, err := s.Transform(X)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 2; j++ {
		var mean, sq float64
		for i := range out {
			mean += out[i][j]
		}
		mean /= 3
		for i := range out {
			d := out[i][j] - mean
			sq += d * d
		}
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("col %d mean = %v", j, mean)
		}
		if math.Abs(sq/3-1) > 1e-9 {
			t.Fatalf("col %d var = %v", j, sq/3)
		}
	}
}

func TestStandardScalerConstantColumn(t *testing.T) {
	X := [][]float64{{5}, {5}, {5}}
	s := FitStandard(X)
	out, err := s.Transform(X)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i][0] != 0 {
			t.Fatalf("constant column scaled to %v", out[i][0])
		}
	}
}

func TestScalerShapeMismatch(t *testing.T) {
	s := FitStandard([][]float64{{1, 2}})
	if _, err := s.Transform([][]float64{{1}}); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	mm := FitMinMax([][]float64{{1, 2}})
	if _, err := mm.Transform([][]float64{{1, 2, 3}}); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestMinMaxScaler(t *testing.T) {
	X := [][]float64{{0, 100}, {5, 200}, {10, 300}}
	s := FitMinMax(X)
	out, err := s.Transform(X)
	if err != nil {
		t.Fatal(err)
	}
	if out[0][0] != 0 || out[2][0] != 1 || out[1][0] != 0.5 {
		t.Fatalf("minmax col0 = %v", [][]float64{out[0], out[1], out[2]})
	}
	if out[1][1] != 0.5 {
		t.Fatalf("minmax col1 mid = %v", out[1][1])
	}
}

func TestEncodeDecodeTransformers(t *testing.T) {
	enc := FitOneHot(frame())
	data, err := Encode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty encoding")
	}
	var back OneHotEncoder
	if err := Decode(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Vocab["color"]) != 3 {
		t.Fatalf("decoded vocab = %v", back.Vocab)
	}
	// Decoded encoder must transform identically.
	out, err := back.Transform(frame())
	if err != nil || out.NumCols() != 4 {
		t.Fatalf("decoded transform: %v cols=%d", err, out.NumCols())
	}
}
