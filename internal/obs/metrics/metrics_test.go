package metrics

import (
	"bytes"
	"strings"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	r.Inc("runs_total", 1, L("impl", "AWS-Step"))
	r.Inc("runs_total", 2, L("impl", "AWS-Step"))
	r.Inc("runs_total", 5, L("impl", "Az-Dorch"))
	if got := r.CounterValue("runs_total", L("impl", "AWS-Step")); got != 3 {
		t.Fatalf("counter = %v", got)
	}
	r.SetMax("peak_workers", 7)
	r.SetMax("peak_workers", 3) // max-merge keeps 7
	r.Observe("latency_seconds", 0.5)
	r.Observe("latency_seconds", 90)
	if r.Len() != 4 {
		t.Fatalf("series = %d", r.Len())
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Inc("x", 1)
	r.SetMax("y", 2)
	r.Observe("z", 3)
	r.SpanFinished("exec", "f", 0.1)
	if r.Len() != 0 {
		t.Fatal("nil registry not empty")
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil write: err=%v len=%d", err, buf.Len())
	}
}

// TestMergeCommutative is the determinism property the shared registry
// relies on: interleaving order of writes never changes the export.
func TestMergeCommutative(t *testing.T) {
	build := func(order []int) string {
		shards := [3]*Registry{NewRegistry(), NewRegistry(), NewRegistry()}
		shards[0].Inc("spans_total", 2, L("kind", "exec"))
		shards[0].Observe("dur_seconds", 0.4, L("kind", "exec"))
		shards[1].Inc("spans_total", 1, L("kind", "exec"))
		shards[1].SetMax("peak", 5)
		shards[2].Observe("dur_seconds", 12, L("kind", "exec"))
		shards[2].SetMax("peak", 9)
		total := NewRegistry()
		for _, i := range order {
			total.Merge(shards[i])
		}
		var buf bytes.Buffer
		if err := total.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a := build([]int{0, 1, 2})
	b := build([]int{2, 0, 1})
	c := build([]int{1, 2, 0})
	if a != b || b != c {
		t.Fatalf("merge order changed export:\n%s\nvs\n%s", a, b)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Inc("statebench_spans_total", 4, L("kind", "exec"))
	r.Observe("statebench_span_duration_seconds", 0.25, L("kind", "exec"), L("name", "lambda/exec/f"))
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE statebench_spans_total counter",
		`statebench_spans_total{kind="exec"} 4`,
		"# TYPE statebench_span_duration_seconds histogram",
		`le="+Inf"`,
		"statebench_span_duration_seconds_sum",
		"statebench_span_duration_seconds_count",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Deterministic: two renders are identical.
	var buf2 bytes.Buffer
	_ = r.WritePrometheus(&buf2)
	if out != buf2.String() {
		t.Fatal("render not deterministic")
	}
}

func TestSpanFinishedFeedsSeries(t *testing.T) {
	r := NewRegistry()
	r.SpanFinished("exec", "lambda/exec/f", 1.5)
	r.SpanFinished("exec", "lambda/exec/f", 0.5)
	if got := r.CounterValue("statebench_spans_total", L("kind", "exec")); got != 2 {
		t.Fatalf("spans_total = %v", got)
	}
	var buf bytes.Buffer
	_ = r.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), "statebench_span_duration_seconds_sum") {
		t.Fatalf("histogram missing:\n%s", buf.String())
	}
}
