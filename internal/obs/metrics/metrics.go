// Package metrics is a lightweight metrics registry for the simulator:
// counters, gauges, and histograms keyed by name + labels, with
// deterministic (sorted) iteration order and a Prometheus text-format
// exporter.
//
// The registry is the simulated analogue of the CloudWatch / Application
// Insights metric stores the paper read its results from. It is fed by
// the span tracer (internal/obs/span) at span end, and can additionally
// be fed directly from instrumentation points.
//
// Determinism contract: a Registry may be shared by several concurrently
// running campaigns (guarded by an internal mutex), so every write
// operation is commutative — counters and histogram buckets add, gauges
// merge by max. The final exported state therefore does not depend on
// the interleaving of campaign goroutines, which keeps `-metrics` output
// byte-identical at any `-parallel` worker count.
package metrics

import (
	"fmt"
	"io"
	"math"
	"slices"
	"sort"
	"strings"
	"sync"
)

// Label is one name=value metric dimension.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// kind discriminates the series types for TYPE lines and rendering.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

// defBuckets are the histogram upper bounds, in seconds. They span the
// range the simulation produces: sub-millisecond queue ops up to
// multi-minute workflow runs.
var defBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60, 120, 300, 600, 1800,
}

// series is one (name, labels) time series.
//
// Counter values and histogram sums accumulate in integer micro-units
// rather than float64: integer addition is associative, so the totals
// (and their rendered form) cannot depend on which campaign goroutine's
// writes landed first. Float accumulation would drift in the last ULP
// under different interleavings and break byte-identical exports.
type series struct {
	name   string
	labels string // rendered `k="v",...` with keys sorted; "" if none
	kind   kind
	val    float64 // gauge max
	cntU   int64   // counter total in micro-units (1e-6)

	// histogram state (kind == kindHistogram)
	buckets []uint64 // cumulative-at-export; stored per-bucket counts
	count   uint64
	sumU    int64 // observation total in micro-units (1e-6)
}

// toMicro converts a float value to integer micro-units, rounding to
// nearest. Integral inputs below ~9e12 convert exactly.
func toMicro(v float64) int64 { return int64(math.Round(v * 1e6)) }

func fromMicro(u int64) float64 { return float64(u) / 1e6 }

// Registry holds metric series. The zero value is not usable; call
// NewRegistry. A nil *Registry is safe to call: every method is a no-op,
// which gives instrumentation sites a zero-cost disabled path.
type Registry struct {
	mu     sync.Mutex
	series map[string]*series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]*series)}
}

// Inc adds v to the counter name{labels...}.
func (r *Registry) Inc(name string, v float64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	s := r.get(name, kindCounter, labels)
	s.cntU += toMicro(v)
	r.mu.Unlock()
}

// SetMax raises the gauge name{labels...} to v if v exceeds its current
// value. Max-merge (rather than last-write) keeps concurrent campaign
// writers commutative.
func (r *Registry) SetMax(name string, v float64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	s := r.get(name, kindGauge, labels)
	if v > s.val {
		s.val = v
	}
	r.mu.Unlock()
}

// Observe records v (in seconds, by convention) into the histogram
// name{labels...}.
func (r *Registry) Observe(name string, v float64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	s := r.get(name, kindHistogram, labels)
	if s.buckets == nil {
		s.buckets = make([]uint64, len(defBuckets))
	}
	i := sort.SearchFloat64s(defBuckets, v)
	if i < len(s.buckets) {
		s.buckets[i]++
	}
	s.count++
	s.sumU += toMicro(v)
	r.mu.Unlock()
}

// get finds or creates the series for (name, labels). Caller holds mu.
func (r *Registry) get(name string, k kind, labels []Label) *series {
	lab := renderLabels(labels)
	key := name + "\x00" + lab
	s, ok := r.series[key]
	if !ok {
		s = &series{name: name, labels: lab, kind: k}
		r.series[key] = s
	}
	return s
}

// SpanFinished implements span.MetricsSink: every finished span
// increments a per-kind counter and feeds a per-(kind, name) duration
// histogram. Names at instrumentation points are bounded (function and
// stage names, not per-run identifiers), keeping cardinality small.
func (r *Registry) SpanFinished(kind, name string, seconds float64) {
	if r == nil {
		return
	}
	r.Inc("statebench_spans_total", 1, L("kind", kind))
	r.Observe("statebench_span_duration_seconds", seconds, L("kind", kind), L("name", name))
}

// Merge folds o's series into r. Counters and histograms add, gauges
// merge by max, so merge order does not matter.
func (r *Registry) Merge(o *Registry) {
	if r == nil || o == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	for key, os := range o.series {
		s, ok := r.series[key]
		if !ok {
			s = &series{name: os.name, labels: os.labels, kind: os.kind}
			r.series[key] = s
		}
		switch os.kind {
		case kindCounter:
			s.cntU += os.cntU
		case kindGauge:
			if os.val > s.val {
				s.val = os.val
			}
		case kindHistogram:
			if s.buckets == nil && os.buckets != nil {
				s.buckets = make([]uint64, len(defBuckets))
			}
			for i, c := range os.buckets {
				s.buckets[i] += c
			}
			s.count += os.count
			s.sumU += os.sumU
		}
	}
}

// Len returns the number of series.
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.series)
}

// CounterValue returns the value of the counter name{labels...}, or 0
// if it does not exist. Intended for tests.
func (r *Registry) CounterValue(name string, labels ...Label) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.series[name+"\x00"+renderLabels(labels)]; ok {
		return fromMicro(s.cntU)
	}
	return 0
}

// WritePrometheus renders every series in Prometheus text exposition
// format, sorted by metric name then label set, so output is
// byte-stable for a given set of recorded values.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	all := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		all = append(all, s)
	}
	r.mu.Unlock()
	slices.SortFunc(all, func(a, b *series) int {
		if a.name != b.name {
			return strings.Compare(a.name, b.name)
		}
		return strings.Compare(a.labels, b.labels)
	})

	var sb strings.Builder
	lastName := ""
	for _, s := range all {
		if s.name != lastName {
			fmt.Fprintf(&sb, "# TYPE %s %s\n", s.name, typeName(s.kind))
			lastName = s.name
		}
		switch s.kind {
		case kindCounter:
			fmt.Fprintf(&sb, "%s%s %s\n", s.name, wrapLabels(s.labels, ""), formatFloat(fromMicro(s.cntU)))
		case kindGauge:
			fmt.Fprintf(&sb, "%s%s %s\n", s.name, wrapLabels(s.labels, ""), formatFloat(s.val))
		case kindHistogram:
			cum := uint64(0)
			for i, c := range s.buckets {
				cum += c
				fmt.Fprintf(&sb, "%s_bucket%s %d\n",
					s.name, wrapLabels(s.labels, fmt.Sprintf(`le="%s"`, formatFloat(defBuckets[i]))), cum)
			}
			fmt.Fprintf(&sb, "%s_bucket%s %d\n", s.name, wrapLabels(s.labels, `le="+Inf"`), s.count)
			fmt.Fprintf(&sb, "%s_sum%s %s\n", s.name, wrapLabels(s.labels, ""), formatFloat(fromMicro(s.sumU)))
			fmt.Fprintf(&sb, "%s_count%s %d\n", s.name, wrapLabels(s.labels, ""), s.count)
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func typeName(k kind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// renderLabels renders labels as `k="v",...` with keys sorted.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := slices.Clone(labels)
	slices.SortFunc(ls, func(a, b Label) int { return strings.Compare(a.Key, b.Key) })
	var sb strings.Builder
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `%s=%q`, l.Key, l.Value)
	}
	return sb.String()
}

// wrapLabels combines a pre-rendered label string with an extra label
// (for histogram le) into a `{...}` block, or "" if both are empty.
func wrapLabels(labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return ""
	case labels == "":
		return "{" + extra + "}"
	case extra == "":
		return "{" + labels + "}"
	default:
		return "{" + labels + "," + extra + "}"
	}
}

// formatFloat renders a float the way Prometheus clients do: integers
// without a decimal point, everything else in shortest form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
