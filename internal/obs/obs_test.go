package obs

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestQuantilesAndStats(t *testing.T) {
	var s Samples
	for i := 1; i <= 100; i++ {
		s.Add(time.Duration(i) * time.Millisecond)
	}
	if s.Min() != time.Millisecond || s.Max() != 100*time.Millisecond {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	med := s.Median()
	if med < 50*time.Millisecond || med > 51*time.Millisecond {
		t.Fatalf("median = %v", med)
	}
	p99 := s.P99()
	if p99 < 99*time.Millisecond || p99 > 100*time.Millisecond {
		t.Fatalf("p99 = %v", p99)
	}
	if s.Mean() != 50500*time.Microsecond {
		t.Fatalf("mean = %v", s.Mean())
	}
}

func TestAddInterleavedWithQueries(t *testing.T) {
	var s Samples
	s.Add(5 * time.Second)
	if s.Median() != 5*time.Second {
		t.Fatal("single-sample median")
	}
	s.Add(time.Second) // after a query; must re-sort
	if s.Min() != time.Second {
		t.Fatalf("min after re-add = %v", s.Min())
	}
}

func TestCDFMonotonic(t *testing.T) {
	var s Samples
	for i := 0; i < 57; i++ {
		s.Add(time.Duration((i*37)%100) * time.Millisecond)
	}
	pts := s.CDF(20)
	if len(pts) != 20 {
		t.Fatalf("cdf len = %d", len(pts))
	}
	if pts[0].Frac != 0 || pts[len(pts)-1].Frac != 1 {
		t.Fatal("cdf fraction endpoints")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Value < pts[i-1].Value || pts[i].Frac < pts[i-1].Frac {
			t.Fatalf("cdf not monotonic at %d", i)
		}
	}
}

func TestFracBelow(t *testing.T) {
	var s Samples
	for i := 1; i <= 10; i++ {
		s.Add(time.Duration(i) * time.Second)
	}
	if got := s.FracBelow(5 * time.Second); got != 0.5 {
		t.Fatalf("FracBelow(5s) = %v", got)
	}
	if got := s.FracBelow(time.Hour); got != 1 {
		t.Fatalf("FracBelow(max) = %v", got)
	}
	if got := s.FracBelow(0); got != 0 {
		t.Fatalf("FracBelow(0) = %v", got)
	}
}

func TestBreakdownAtQuantile(t *testing.T) {
	var bs BreakdownSet
	for i := 1; i <= 10; i++ {
		bs.Add(Breakdown{QueueTime: time.Duration(i) * time.Second, ExecTime: time.Second})
	}
	worst := bs.AtQuantile(1)
	if worst.QueueTime != 10*time.Second {
		t.Fatalf("worst queue time = %v", worst.QueueTime)
	}
	median := bs.AtQuantile(0.5)
	if median.QueueTime < 4*time.Second || median.QueueTime > 6*time.Second {
		t.Fatalf("median queue time = %v", median.QueueTime)
	}
	if worst.Total() != 11*time.Second {
		t.Fatalf("total = %v", worst.Total())
	}
}

func TestBreakdownAdd(t *testing.T) {
	a := Breakdown{ColdStart: 1, QueueTime: 2, ExecTime: 3, Other: 4}
	b := a.Add(a)
	if b.Total() != 20 {
		t.Fatalf("add = %+v", b)
	}
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{90 * time.Second, "1.5m"},
		{1500 * time.Millisecond, "1.50s"},
		{5 * time.Millisecond, "5ms"},
		{100 * time.Microsecond, "100µs"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.d); got != c.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tbl := Table{Header: []string{"impl", "latency"}}
	tbl.AddRow("AWS-Step", "1.2s")
	tbl.AddRow("Az-Dorch", "900ms")
	out := tbl.String()
	if !strings.Contains(out, "AWS-Step") || !strings.Contains(out, "impl") {
		t.Fatalf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d", len(lines))
	}
}

// Property: Quantile is monotonic in q and bounded by min/max.
func TestPropertyQuantileMonotonic(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var s Samples
		for _, r := range raw {
			s.Add(time.Duration(r % 1e6))
		}
		prev := time.Duration(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := s.Quantile(q)
			if v < prev || v < s.Min() || v > s.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddAllKeepsSortedFastPath(t *testing.T) {
	var s Samples
	s.AddAll([]time.Duration{1, 2, 3})
	if !s.sorted {
		t.Fatal("sorted bulk load must keep the sorted flag")
	}
	s.AddAll([]time.Duration{3, 5, 9})
	if !s.sorted {
		t.Fatal("non-decreasing extension must keep the sorted flag")
	}
	s.AddAll([]time.Duration{4})
	if s.sorted {
		t.Fatal("out-of-order extension must clear the sorted flag")
	}
	if s.Min() != 1 || s.Max() != 9 || s.Len() != 7 {
		t.Fatalf("min/max/len = %v/%v/%d", s.Min(), s.Max(), s.Len())
	}
}

func TestMergeMatchesAddAll(t *testing.T) {
	a := []time.Duration{5, 1, 9, 3, 3, 7}
	b := []time.Duration{2, 8, 1, 6}

	var merged, appended Samples
	var shard Samples
	merged.AddAll(a)
	shard.AddAll(b)
	merged.Merge(&shard)

	appended.AddAll(a)
	appended.AddAll(b)

	if merged.Len() != appended.Len() {
		t.Fatalf("len %d != %d", merged.Len(), appended.Len())
	}
	for q := 0.0; q <= 1.0; q += 0.05 {
		if merged.Quantile(q) != appended.Quantile(q) {
			t.Fatalf("quantile %.2f: merge %v, append %v", q, merged.Quantile(q), appended.Quantile(q))
		}
	}
	if !merged.sorted {
		t.Fatal("merge must leave the union sorted")
	}
	// The merged-in shard must be intact (sorted, same observations).
	if shard.Len() != len(b) || shard.Min() != 1 || shard.Max() != 8 {
		t.Fatalf("shard mutated: len %d min %v max %v", shard.Len(), shard.Min(), shard.Max())
	}
}

func TestMergeIntoEmptyAndFromEmpty(t *testing.T) {
	var empty, full Samples
	full.AddAll([]time.Duration{4, 2, 6})
	empty.Merge(&full)
	if empty.Len() != 3 || empty.Median() != 4 {
		t.Fatalf("merge into empty: len %d median %v", empty.Len(), empty.Median())
	}
	var none Samples
	full.Merge(&none)
	full.Merge(nil)
	if full.Len() != 3 {
		t.Fatalf("merging empty/nil changed len to %d", full.Len())
	}
}

func TestSortMakesQuantilesPureReads(t *testing.T) {
	var s Samples
	s.AddAll([]time.Duration{9, 1, 5})
	s.Sort()
	if !s.sorted {
		t.Fatal("Sort must leave the collection sorted")
	}
	if s.Median() != 5 {
		t.Fatalf("median = %v", s.Median())
	}
}
