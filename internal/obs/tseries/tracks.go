package tseries

import (
	"statebench/internal/obs/span"
)

// CounterTracks renders the series as Chrome trace counter tracks, one
// point per non-empty window at the window's start time: a "rates"
// track (arrivals/completions/colds/faults per window), a "backlog"
// track (peak queue depth and warm-pool occupancy), and a "latency_ms"
// track (E2E and scheduling p99, milliseconds). Loaded next to the span
// lanes, the viewer graphs the run's time-varying behavior — the
// backlog ramp and cold-start storm render as the paper's figures do.
func (s *Series) CounterTracks() []span.CounterTrack {
	if s == nil || s.Len() == 0 {
		return nil
	}
	rates := span.CounterTrack{Name: "rates"}
	backlog := span.CounterTrack{Name: "backlog"}
	latency := span.CounterTrack{Name: "latency_ms"}
	for _, idx := range s.Indices() {
		w := s.windows[idx]
		if w.empty() {
			continue
		}
		ts := s.Start(idx)
		rates.Points = append(rates.Points, span.CounterPoint{Ts: ts, Values: map[string]float64{
			"arrivals":    float64(w.Arrivals),
			"completions": float64(w.Completions),
			"colds":       float64(w.Colds),
			"faults":      float64(w.Faults),
		}})
		backlog.Points = append(backlog.Points, span.CounterPoint{Ts: ts, Values: map[string]float64{
			"queue_depth": float64(w.QueueDepth),
			"warm_pool":   float64(w.WarmPool),
		}})
		latency.Points = append(latency.Points, span.CounterPoint{Ts: ts, Values: map[string]float64{
			"e2e_p99":   float64(w.E2E.P99().Microseconds()) / 1e3,
			"sched_p99": float64(w.Sched.P99().Microseconds()) / 1e3,
		}})
	}
	return []span.CounterTrack{rates, backlog, latency}
}
