// Package tseries is a deterministic, mergeable virtual-time windowed
// telemetry engine — the layer that turns the repository's whole-run
// aggregates (span metrics, obs.Hist campaign histograms) into
// time-resolved series. The paper's headline findings are transient:
// cold-start storms at fan-out, scheduling-delay spikes while the
// Azure scale controller lags, backlog collapse under bursty load. A
// single end-of-run histogram compresses a ten-second anomaly over a
// two-minute run into an invisible blip; fixed-interval windows keep
// the anomaly visible, and the detector in detect.go re-finds it
// mechanically.
//
// # Model
//
// A Series splits virtual time into fixed-width windows (DefaultInterval
// = 1s virtual). Every window holds
//
//   - integer counters: arrivals, completions, cold starts, injected
//     faults — attributed to the window containing the observation's
//     timestamp;
//   - max-gauges: queue depth (scheduler backlog) and warm-pool /
//     ready-instance occupancy, holding the largest value observed in
//     the window;
//   - three obs.Hist streaming histograms: end-to-end latency (E2E),
//     scheduling delay (Sched), and cold-start provisioning delay
//     (Cold), each attributed to the window in which the measured
//     operation *completed*.
//
// # Determinism contract
//
// Recording mutates integer counters and histogram buckets only, in
// kernel execution order; Merge adds counters, max-merges gauges, and
// merges histograms — all commutative and associative. A series
// assembled from per-worker or per-campaign partials is therefore
// bit-identical for every partitioning, and every export (CSV, JSON,
// Prometheus, Chrome counter tracks) renders windows in sorted index
// order — byte-identical at any -parallel worker count and any kernel
// shard count. The tier-2 determinism gates pin this.
//
// Like obs.Hist, a Series is single-goroutine: it belongs to one
// Env/Kernel (or one traffic run) and is recorded into only from that
// kernel's goroutine. Cross-goroutine aggregation goes through
// Collector, which guards a merged Series with a mutex the same way
// metrics.Registry guards its series map.
//
// Disabled fast path: instrumentation sites hold a *Series that stays
// nil unless telemetry was requested; every method is nil-safe and
// short-circuits before any allocation or map access.
package tseries

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"statebench/internal/obs"
)

// DefaultInterval is the window width used when none is configured:
// one second of virtual time, fine enough to resolve the paper's
// cold-start storms and controller-lag spikes, coarse enough that a
// two-minute million-tenant run stays at ~120 windows.
const DefaultInterval = time.Second

// Window is one fixed-interval slice of virtual time. All fields are
// exported so exporters and the anomaly detector read them directly;
// mutate only through the Series record methods.
type Window struct {
	// Arrivals counts work admitted in the window (request arrivals,
	// run starts).
	Arrivals uint64
	// Completions counts work finished in the window.
	Completions uint64
	// Colds counts cold starts (container provisions, instance starts)
	// that began or were observed in the window.
	Colds uint64
	// Faults counts injected chaos faults.
	Faults uint64
	// QueueDepth is the largest scheduler backlog observed in the
	// window (requests queued for dispatch; 0 if never observed).
	QueueDepth int64
	// WarmPool is the largest warm-container / ready-instance
	// occupancy observed in the window.
	WarmPool int64
	// E2E holds end-to-end latencies of work completing in the window.
	E2E obs.Hist
	// Sched holds scheduling delays (arrival→dispatch queueing) of
	// dispatches in the window.
	Sched obs.Hist
	// Cold holds cold-start provisioning delays booked in the window.
	Cold obs.Hist
}

// empty reports whether the window holds no observations at all.
func (w *Window) empty() bool {
	return w.Arrivals == 0 && w.Completions == 0 && w.Colds == 0 && w.Faults == 0 &&
		w.QueueDepth == 0 && w.WarmPool == 0 &&
		w.E2E.Count() == 0 && w.Sched.Count() == 0 && w.Cold.Count() == 0
}

// merge folds o into w (commutative: counters add, gauges max,
// histograms merge).
func (w *Window) merge(o *Window) {
	w.Arrivals += o.Arrivals
	w.Completions += o.Completions
	w.Colds += o.Colds
	w.Faults += o.Faults
	if o.QueueDepth > w.QueueDepth {
		w.QueueDepth = o.QueueDepth
	}
	if o.WarmPool > w.WarmPool {
		w.WarmPool = o.WarmPool
	}
	w.E2E.Merge(&o.E2E)
	w.Sched.Merge(&o.Sched)
	w.Cold.Merge(&o.Cold)
}

// Series is a windowed telemetry stream for one kernel/run. Create
// with New; the zero value is not usable. A nil *Series is valid and
// makes every recording method a no-op (the disabled fast path).
type Series struct {
	interval time.Duration
	windows  map[int64]*Window

	// One-entry cursor cache: consecutive observations overwhelmingly
	// land in the current window, so the common case is two compares
	// instead of a map lookup.
	curIdx int64
	cur    *Window
}

// New returns an empty series with the given window width (0 or
// negative selects DefaultInterval).
func New(interval time.Duration) *Series {
	if interval <= 0 {
		interval = DefaultInterval
	}
	return &Series{interval: interval, windows: make(map[int64]*Window), curIdx: -1}
}

// Interval returns the window width.
func (s *Series) Interval() time.Duration {
	if s == nil {
		return DefaultInterval
	}
	return s.interval
}

// Enabled reports whether the series records observations.
func (s *Series) Enabled() bool { return s != nil }

// Window returns the window containing virtual time t, creating it on
// first touch. Negative times clamp to window 0.
func (s *Series) Window(t time.Duration) *Window {
	idx := int64(0)
	if t > 0 {
		idx = int64(t / s.interval)
	}
	if idx == s.curIdx {
		return s.cur
	}
	w, ok := s.windows[idx]
	if !ok {
		w = &Window{}
		s.windows[idx] = w
	}
	s.curIdx, s.cur = idx, w
	return w
}

// AddArrival books one admitted request/run at t.
func (s *Series) AddArrival(t time.Duration) {
	if s == nil {
		return
	}
	s.Window(t).Arrivals++
}

// AddCompletion books one completion at t with its end-to-end latency.
func (s *Series) AddCompletion(t time.Duration, e2e time.Duration) {
	if s == nil {
		return
	}
	w := s.Window(t)
	w.Completions++
	w.E2E.Record(e2e)
}

// AddCold books one cold start observed at t with its provisioning
// delay.
func (s *Series) AddCold(t time.Duration, delay time.Duration) {
	if s == nil {
		return
	}
	w := s.Window(t)
	w.Colds++
	w.Cold.Record(delay)
}

// AddSched books one dispatch at t with the scheduling delay the work
// item accrued between arrival and dispatch.
func (s *Series) AddSched(t time.Duration, delay time.Duration) {
	if s == nil {
		return
	}
	s.Window(t).Sched.Record(delay)
}

// AddFault books one injected fault at t.
func (s *Series) AddFault(t time.Duration) {
	if s == nil {
		return
	}
	s.Window(t).Faults++
}

// ObserveQueueDepth raises the queue-depth max-gauge of t's window to
// depth.
func (s *Series) ObserveQueueDepth(t time.Duration, depth int64) {
	if s == nil || depth <= 0 {
		return
	}
	w := s.Window(t)
	if depth > w.QueueDepth {
		w.QueueDepth = depth
	}
}

// ObserveWarmPool raises the warm-pool/ready-instance max-gauge of t's
// window to n.
func (s *Series) ObserveWarmPool(t time.Duration, n int64) {
	if s == nil || n <= 0 {
		return
	}
	w := s.Window(t)
	if n > w.WarmPool {
		w.WarmPool = n
	}
}

// Len returns the number of materialized windows.
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	return len(s.windows)
}

// Indices returns the materialized window indices in ascending order.
func (s *Series) Indices() []int64 {
	if s == nil {
		return nil
	}
	idx := make([]int64, 0, len(s.windows))
	for i := range s.windows {
		idx = append(idx, i)
	}
	sort.Slice(idx, func(a, b int) bool { return idx[a] < idx[b] })
	return idx
}

// At returns the window with the given index, or nil if it was never
// touched.
func (s *Series) At(idx int64) *Window {
	if s == nil {
		return nil
	}
	return s.windows[idx]
}

// Start returns the virtual start time of window idx.
func (s *Series) Start(idx int64) time.Duration { return time.Duration(idx) * s.Interval() }

// Totals sums the integer counters across all windows.
func (s *Series) Totals() (arrivals, completions, colds, faults uint64) {
	if s == nil {
		return
	}
	for _, w := range s.windows {
		arrivals += w.Arrivals
		completions += w.Completions
		colds += w.Colds
		faults += w.Faults
	}
	return
}

// Merge folds o's windows into s. o is unchanged. Merging is
// commutative and associative; s and o must share an interval (merging
// differently-sized windows would silently misattribute time, so it
// panics — intervals are configuration, not data).
func (s *Series) Merge(o *Series) {
	if s == nil || o == nil || len(o.windows) == 0 {
		return
	}
	if s.interval != o.interval {
		panic(fmt.Sprintf("tseries: merging %v-interval series into %v", o.interval, s.interval))
	}
	for idx, ow := range o.windows {
		w, ok := s.windows[idx]
		if !ok {
			w = &Window{}
			s.windows[idx] = w
		}
		w.merge(ow)
	}
	// The cursor may now alias a window also reachable through the map;
	// that is fine (same pointer), but a merge can add the cursor's
	// index to the map via a different path only if Window() created it
	// there first, so the cache stays coherent.
}

// Clone returns a deep copy (fresh histograms, fresh windows).
func (s *Series) Clone() *Series {
	if s == nil {
		return nil
	}
	c := New(s.interval)
	c.Merge(s)
	return c
}

// SpanWindowed implements the span tracer's window sink
// (span.WindowSink): every finished span is mapped onto windowed
// telemetry by kind. Run spans book an arrival at span start and a
// completion (with E2E latency) at span end; queue spans book
// scheduling delay at dispatch; coldstart spans book a cold start.
// Fault spans are deliberately NOT mapped — faults are booked by the
// chaos injector itself (which runs with or without a tracer), so
// counting its KindFault annotations here would double them. Other
// kinds carry no windowed meaning and are ignored.
func (s *Series) SpanWindowed(kind, name string, start, end time.Duration) {
	if s == nil {
		return
	}
	switch kind {
	case "run":
		s.AddArrival(start)
		s.AddCompletion(end, end-start)
	case "queue":
		s.AddSched(end, end-start)
	case "coldstart":
		s.AddCold(end, end-start)
	}
}

// csvHeader is the exported per-window schema. Quantiles are integer
// nanoseconds: exact, locale-free, byte-stable.
const csvHeader = "window,start_s,arrivals,completions,colds,faults,queue_depth,warm_pool," +
	"e2e_p50_ns,e2e_p99_ns,e2e_max_ns,sched_p50_ns,sched_p99_ns,sched_max_ns,cold_p50_ns,cold_max_ns"

// WriteCSV renders every non-empty window as one CSV row in ascending
// window order. Output is byte-identical for any partitioning of the
// same observations.
func (s *Series) WriteCSV(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString(csvHeader)
	sb.WriteByte('\n')
	if s != nil {
		iv := s.interval.Seconds()
		for _, idx := range s.Indices() {
			win := s.windows[idx]
			if win.empty() {
				continue
			}
			fmt.Fprintf(&sb, "%d,%g,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
				idx, float64(idx)*iv,
				win.Arrivals, win.Completions, win.Colds, win.Faults,
				win.QueueDepth, win.WarmPool,
				int64(win.E2E.Median()), int64(win.E2E.P99()), int64(win.E2E.Max()),
				int64(win.Sched.Median()), int64(win.Sched.P99()), int64(win.Sched.Max()),
				int64(win.Cold.Median()), int64(win.Cold.Max()))
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// jsonWindow is the JSON export shape of one window.
type jsonWindow struct {
	Window      int64   `json:"window"`
	StartS      float64 `json:"start_s"`
	Arrivals    uint64  `json:"arrivals"`
	Completions uint64  `json:"completions"`
	Colds       uint64  `json:"colds"`
	Faults      uint64  `json:"faults"`
	QueueDepth  int64   `json:"queue_depth"`
	WarmPool    int64   `json:"warm_pool"`
	E2EP50Ns    int64   `json:"e2e_p50_ns"`
	E2EP99Ns    int64   `json:"e2e_p99_ns"`
	SchedP99Ns  int64   `json:"sched_p99_ns"`
	ColdP50Ns   int64   `json:"cold_p50_ns"`
}

// WriteJSON renders the non-empty windows as a JSON array in ascending
// window order.
func (s *Series) WriteJSON(w io.Writer) error {
	out := []jsonWindow{}
	if s != nil {
		iv := s.interval.Seconds()
		for _, idx := range s.Indices() {
			win := s.windows[idx]
			if win.empty() {
				continue
			}
			out = append(out, jsonWindow{
				Window: idx, StartS: float64(idx) * iv,
				Arrivals: win.Arrivals, Completions: win.Completions,
				Colds: win.Colds, Faults: win.Faults,
				QueueDepth: win.QueueDepth, WarmPool: win.WarmPool,
				E2EP50Ns: int64(win.E2E.Median()), E2EP99Ns: int64(win.E2E.P99()),
				SchedP99Ns: int64(win.Sched.P99()), ColdP50Ns: int64(win.Cold.Median()),
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}
