package tseries

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"
)

// This file is the live export surface: a tiny HTTP server that lets a
// human (or a Prometheus scraper) watch a long run in wall-clock time
// while the simulation advances in virtual time. The server only ever
// *reads* — it pulls an immutable snapshot from the source function on
// each request — so it cannot perturb the simulation, and shutting it
// down (or never starting it) leaves results byte-identical.
//
// Endpoints:
//
//	/               index with links
//	/metrics        Prometheus text: run totals, latest-window stats,
//	                and progress gauges, refreshed per window
//	/timeseries.csv the full per-window CSV (same schema as -timeline)
//	/timeseries.json the per-window JSON array
//	/progress       run progress as JSON

// SnapshotFunc supplies the server with a consistent (series, progress)
// pair; typically Collector.Snapshot.
type SnapshotFunc func() (*Series, Progress)

// LiveServer is a running live-telemetry HTTP server.
type LiveServer struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound address (useful with ":0" test listeners).
func (s *LiveServer) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down immediately.
func (s *LiveServer) Close() error { return s.srv.Close() }

// ServeLive binds addr (e.g. ":9090" or "127.0.0.1:0") and serves the
// live-telemetry endpoints from src in a background goroutine. The
// returned server should be Closed when the run finishes (after a final
// scrape window, if a scraper is attached).
func ServeLive(addr string, src SnapshotFunc) (*LiveServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("live endpoint: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, `<html><body><h1>statebench live telemetry</h1><ul>`+
			`<li><a href="/metrics">/metrics</a> (Prometheus)</li>`+
			`<li><a href="/timeseries.csv">/timeseries.csv</a></li>`+
			`<li><a href="/timeseries.json">/timeseries.json</a></li>`+
			`<li><a href="/progress">/progress</a></li>`+
			`</ul></body></html>`)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		s, p := src()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, PrometheusText(s, p))
	})
	mux.HandleFunc("/timeseries.csv", func(w http.ResponseWriter, r *http.Request) {
		s, _ := src()
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		s.WriteCSV(w)
	})
	mux.HandleFunc("/timeseries.json", func(w http.ResponseWriter, r *http.Request) {
		s, _ := src()
		w.Header().Set("Content-Type", "application/json")
		s.WriteJSON(w)
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		_, p := src()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		enc.Encode(p)
	})
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	ls := &LiveServer{ln: ln, srv: srv}
	go srv.Serve(ln)
	return ls, nil
}

// PrometheusText renders the series and progress in Prometheus text
// exposition format: cumulative run totals, the latest non-empty
// window's stats (labelled with its index, so a scraper sees a fresh
// sample per window), and progress gauges. Output for a fixed snapshot
// is deterministic: families and labels are emitted in a fixed order.
func PrometheusText(s *Series, p Progress) string {
	var b strings.Builder
	arr, comp, colds, faults := s.Totals()
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("statebench_timeline_arrivals_total", "Arrivals across the run.", arr)
	counter("statebench_timeline_completions_total", "Completions across the run.", comp)
	counter("statebench_timeline_cold_starts_total", "Cold starts across the run.", colds)
	counter("statebench_timeline_faults_total", "Injected faults across the run.", faults)

	if s.Len() > 0 {
		idxs := s.Indices()
		var last int64 = -1
		for i := len(idxs) - 1; i >= 0; i-- {
			if !s.At(idxs[i]).empty() {
				last = idxs[i]
				break
			}
		}
		if last >= 0 {
			w := s.At(last)
			lbl := fmt.Sprintf(`{window="%d"}`, last)
			gauge := func(name, help string, format string, v interface{}) {
				fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s%s "+format+"\n",
					name, help, name, name, lbl, v)
			}
			gauge("statebench_window_arrivals", "Arrivals in the latest window.", "%d", w.Arrivals)
			gauge("statebench_window_completions", "Completions in the latest window.", "%d", w.Completions)
			gauge("statebench_window_cold_starts", "Cold starts in the latest window.", "%d", w.Colds)
			gauge("statebench_window_faults", "Injected faults in the latest window.", "%d", w.Faults)
			gauge("statebench_window_queue_depth", "Peak queue depth in the latest window.", "%d", w.QueueDepth)
			gauge("statebench_window_warm_pool", "Peak warm-pool occupancy in the latest window.", "%d", w.WarmPool)
			gauge("statebench_window_e2e_p99_seconds", "End-to-end p99 of the latest window.", "%g", w.E2E.P99().Seconds())
			gauge("statebench_window_sched_p99_seconds", "Scheduling-delay p99 of the latest window.", "%g", w.Sched.P99().Seconds())
			gauge("statebench_window_cold_p50_seconds", "Cold-start p50 of the latest window.", "%g", w.Cold.Median().Seconds())
		}
	}

	fmt.Fprintf(&b, "# HELP statebench_progress_virtual_seconds Virtual time reached by the producer.\n"+
		"# TYPE statebench_progress_virtual_seconds gauge\nstatebench_progress_virtual_seconds %g\n",
		p.VirtualTime.Seconds())
	fmt.Fprintf(&b, "# HELP statebench_progress_done Completed work units.\n"+
		"# TYPE statebench_progress_done gauge\nstatebench_progress_done %d\n", p.Done)
	fmt.Fprintf(&b, "# HELP statebench_progress_total Total work units.\n"+
		"# TYPE statebench_progress_total gauge\nstatebench_progress_total %d\n", p.Total)
	return b.String()
}

// WriteAnomalyLog renders anomalies as a fixed-width text log, one line
// per incident, sorted as Detect returned them. Used by the timeline
// report.
func WriteAnomalyLog(b *strings.Builder, anoms []Anomaly) {
	if len(anoms) == 0 {
		fmt.Fprintf(b, "  (no anomalies)\n")
		return
	}
	for _, a := range anoms {
		span := fmt.Sprintf("[%v,%v)", a.Start, a.End)
		fmt.Fprintf(b, "  %-14s w%-4d %-16s %s", a.Rule, a.Window, span, a.Detail)
		if len(a.TraceIDs) > 0 {
			ids := make([]string, len(a.TraceIDs))
			for i, id := range a.TraceIDs {
				ids[i] = fmt.Sprintf("%d", id)
			}
			fmt.Fprintf(b, " [traces %s]", strings.Join(ids, ","))
		}
		b.WriteByte('\n')
	}
}
