package tseries

import (
	"strings"
	"testing"
	"time"

	"statebench/internal/obs/span"
)

// quietBaseline fills windows [0, n) with steady traffic: 100 arrivals,
// 100 completions at 100ms, a handful of warm dispatches, no colds.
func quietBaseline(s *Series, n int) {
	for i := 0; i < n; i++ {
		ts := time.Duration(i) * time.Second
		for j := 0; j < 100; j++ {
			s.AddArrival(ts)
			s.AddCompletion(ts, 100*time.Millisecond)
		}
		s.AddSched(ts, 10*time.Millisecond)
	}
}

func anomaliesByRule(anoms []Anomaly) map[string][]Anomaly {
	m := map[string][]Anomaly{}
	for _, a := range anoms {
		m[a.Rule] = append(m[a.Rule], a)
	}
	return m
}

func TestDetectColdSurge(t *testing.T) {
	s := New(time.Second)
	quietBaseline(s, 30)
	// Window 30: a storm — 80 colds over 100 arrivals.
	ts := 30 * time.Second
	for j := 0; j < 100; j++ {
		s.AddArrival(ts)
	}
	for j := 0; j < 80; j++ {
		s.AddCold(ts, 900*time.Millisecond)
	}
	got := anomaliesByRule(Detect(s, DetectorConfig{}))[RuleColdSurge]
	if len(got) != 1 {
		t.Fatalf("cold-surge anomalies = %d, want 1: %+v", len(got), got)
	}
	a := got[0]
	if a.Window != 30 || a.Windows != 1 || a.Value != 0.8 {
		t.Fatalf("anomaly = %+v", a)
	}
	if a.Start != 30*time.Second || a.End != 31*time.Second {
		t.Fatalf("bounds = [%v,%v)", a.Start, a.End)
	}
	if !strings.Contains(a.Detail, "80 cold starts / 100 arrivals") {
		t.Fatalf("detail = %q", a.Detail)
	}
}

func TestDetectColdSurgeSteadyStateSuppressed(t *testing.T) {
	// A uniformly cold run (per-request model): once the trailing
	// median catches up with the constant rate, nothing is a surge.
	// The first windows DO flag — their baseline is the zero history,
	// exactly the "storm after a quiet period" the rule documents.
	s := New(time.Second)
	for i := 0; i < 60; i++ {
		ts := time.Duration(i) * time.Second
		for j := 0; j < 20; j++ {
			s.AddArrival(ts)
			s.AddCold(ts, 500*time.Millisecond)
		}
	}
	for _, a := range anomaliesByRule(Detect(s, DetectorConfig{}))[RuleColdSurge] {
		if a.Window >= 15 {
			t.Fatalf("steady-state cold window flagged as surge: %+v", a)
		}
	}
}

func TestDetectSchedSpike(t *testing.T) {
	s := New(time.Second)
	quietBaseline(s, 30)
	s.AddSched(30*time.Second, 8*time.Second)
	got := anomaliesByRule(Detect(s, DetectorConfig{}))[RuleSchedSpike]
	if len(got) != 1 || got[0].Window != 30 {
		t.Fatalf("sched-spike = %+v", got)
	}
	// Below the absolute floor: never a spike, whatever the baseline.
	s2 := New(time.Second)
	quietBaseline(s2, 30)
	s2.AddSched(30*time.Second, 800*time.Millisecond)
	if got := anomaliesByRule(Detect(s2, DetectorConfig{}))[RuleSchedSpike]; len(got) != 0 {
		t.Fatalf("sub-floor spike flagged: %+v", got)
	}
}

func TestDetectBacklogGrowth(t *testing.T) {
	s := New(time.Second)
	for i, d := range []int64{5, 20, 80, 300, 900, 900, 100} {
		s.ObserveQueueDepth(time.Duration(i)*time.Second, d)
	}
	got := anomaliesByRule(Detect(s, DetectorConfig{}))[RuleBacklogGrowth]
	if len(got) != 1 {
		t.Fatalf("backlog-growth = %+v", got)
	}
	a := got[0]
	if a.Window != 0 || a.Windows != 5 || a.Value != 900 {
		t.Fatalf("anomaly = %+v", a)
	}
	if !strings.Contains(a.Detail, "5 -> 900") {
		t.Fatalf("detail = %q", a.Detail)
	}
}

func TestDetectBacklogGrowthNeedsConsecutiveWindows(t *testing.T) {
	s := New(time.Second)
	// Growth interrupted by a gap: windows 0,1 then 3,4 — no run of 3.
	s.ObserveQueueDepth(0, 10)
	s.ObserveQueueDepth(1*time.Second, 100)
	s.ObserveQueueDepth(3*time.Second, 200)
	s.ObserveQueueDepth(4*time.Second, 400)
	if got := anomaliesByRule(Detect(s, DetectorConfig{}))[RuleBacklogGrowth]; len(got) != 0 {
		t.Fatalf("gapped growth flagged: %+v", got)
	}
}

func TestDetectSLOBurn(t *testing.T) {
	s := New(time.Second)
	ts := 5 * time.Second
	for j := 0; j < 80; j++ {
		s.AddCompletion(ts, 100*time.Millisecond)
	}
	for j := 0; j < 20; j++ {
		s.AddCompletion(ts, 10*time.Second)
	}
	// Off by default: no SLOTarget, no rule.
	if got := anomaliesByRule(Detect(s, DetectorConfig{}))[RuleSLOBurn]; len(got) != 0 {
		t.Fatalf("slo-burn fired without a target: %+v", got)
	}
	got := anomaliesByRule(Detect(s, DetectorConfig{SLOTarget: 2 * time.Second}))[RuleSLOBurn]
	if len(got) != 1 {
		t.Fatalf("slo-burn = %+v", got)
	}
	if got[0].Value != 0.2 || got[0].Baseline != 0.01 {
		t.Fatalf("anomaly = %+v", got[0])
	}
	if !strings.Contains(got[0].Detail, "20/100 completions") {
		t.Fatalf("detail = %q", got[0].Detail)
	}
}

func TestDetectEmptyAndNil(t *testing.T) {
	if Detect(nil, DetectorConfig{}) != nil {
		t.Fatal("nil series yielded anomalies")
	}
	if Detect(New(time.Second), DetectorConfig{}) != nil {
		t.Fatal("empty series yielded anomalies")
	}
}

// Detect output must be stable: sorted by window then rule, identical
// across repeated evaluations (map iteration must not leak through).
func TestDetectDeterministicOrder(t *testing.T) {
	build := func() *Series {
		s := New(time.Second)
		quietBaseline(s, 30)
		ts := 30 * time.Second
		for j := 0; j < 100; j++ {
			s.AddArrival(ts)
		}
		for j := 0; j < 80; j++ {
			s.AddCold(ts, 900*time.Millisecond)
		}
		s.AddSched(ts, 8*time.Second)
		for i, d := range []int64{5, 50, 500} {
			s.ObserveQueueDepth(ts+time.Duration(i)*time.Second, d)
		}
		return s
	}
	render := func() string {
		var b strings.Builder
		WriteAnomalyLog(&b, Detect(build(), DetectorConfig{}))
		return b.String()
	}
	first := render()
	if !strings.Contains(first, RuleColdSurge) || !strings.Contains(first, RuleSchedSpike) ||
		!strings.Contains(first, RuleBacklogGrowth) {
		t.Fatalf("missing rules in:\n%s", first)
	}
	for i := 0; i < 10; i++ {
		if got := render(); got != first {
			t.Fatalf("anomaly log unstable:\n%s\nvs\n%s", first, got)
		}
	}
	// cold-surge sorts before sched-spike within the same window.
	ci := strings.Index(first, RuleColdSurge)
	si := strings.Index(first, RuleSchedSpike)
	if ci > si {
		t.Fatal("rules not sorted by name within a window")
	}
}

func TestLinkSpans(t *testing.T) {
	anoms := []Anomaly{{
		Rule: RuleColdSurge, Window: 10, Windows: 1,
		Start: 10 * time.Second, End: 11 * time.Second,
	}}
	spans := []span.Span{
		// Wrong kind, overlapping: ignored.
		{TraceID: 1, Kind: "run", Start: 10 * time.Second, End: 10500 * time.Millisecond},
		// Right kind, outside the window: ignored (end == anomaly start).
		{TraceID: 2, Kind: "coldstart", Start: 9 * time.Second, End: 10 * time.Second},
		// Right kind, overlapping: linked.
		{TraceID: 3, Kind: "coldstart", Start: 10200 * time.Millisecond, End: 12 * time.Second},
		// Same trace again: deduplicated.
		{TraceID: 3, Kind: "coldstart", Start: 10300 * time.Millisecond, End: 11 * time.Second},
		// Orphan span (TraceID 0): never linked.
		{TraceID: 0, Kind: "coldstart", Start: 10 * time.Second, End: 11 * time.Second},
		{TraceID: 4, Kind: "coldstart", Start: 10 * time.Second, End: 10400 * time.Millisecond},
		{TraceID: 5, Kind: "coldstart", Start: 10 * time.Second, End: 10400 * time.Millisecond},
	}
	LinkSpans(anoms, spans, 2)
	if len(anoms[0].TraceIDs) != 2 || anoms[0].TraceIDs[0] != 3 || anoms[0].TraceIDs[1] != 4 {
		t.Fatalf("TraceIDs = %v, want [3 4] (emit order, capped at 2)", anoms[0].TraceIDs)
	}
}

func TestWriteAnomalyLogEmpty(t *testing.T) {
	var b strings.Builder
	WriteAnomalyLog(&b, nil)
	if !strings.Contains(b.String(), "no anomalies") {
		t.Fatalf("empty log = %q", b.String())
	}
	b.Reset()
	WriteAnomalyLog(&b, []Anomaly{{
		Rule: RuleSLOBurn, Window: 3, Windows: 1,
		Start: 3 * time.Second, End: 4 * time.Second,
		Detail: "x", TraceIDs: []uint64{7, 9},
	}})
	if !strings.Contains(b.String(), "[traces 7,9]") {
		t.Fatalf("log = %q", b.String())
	}
}
