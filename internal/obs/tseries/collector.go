package tseries

import (
	"sync"
	"time"
)

// Progress describes how far a run has advanced, for the live
// endpoint. All fields are optional; producers fill what they know.
type Progress struct {
	// Phase names what is running ("campaigns", "traffic", "drain").
	Phase string `json:"phase"`
	// Done/Total count completed work units (experiments, campaigns).
	Done  int `json:"done"`
	Total int `json:"total"`
	// VirtualTime is the producer kernel's clock; VirtualEnd the
	// configured horizon (0 when open-ended).
	VirtualTime time.Duration `json:"virtual_time_ns"`
	VirtualEnd  time.Duration `json:"virtual_end_ns"`
	// Arrivals/Completions mirror the producer's running totals.
	Arrivals    uint64 `json:"arrivals"`
	Completions uint64 `json:"completions"`
}

// Collector aggregates per-campaign (or per-publish) Series across
// goroutines — the cross-worker seam that keeps the Series type itself
// lock-free. Campaign workers record into private Series and Merge
// them in on completion; long single-kernel runs (the traffic engine)
// Replace the collector's snapshot at window boundaries instead. All
// merge operations are commutative, so the collected contents are
// deterministic at any worker count; only Progress (pure status, never
// exported into result files) is last-write-wins.
//
// A nil *Collector is valid: every method is a no-op and Snapshot
// returns nil, giving callers the usual disabled fast path.
type Collector struct {
	mu       sync.Mutex
	interval time.Duration
	s        *Series
	prog     Progress
}

// NewCollector returns an empty collector whose merged series uses the
// given window width (0 selects DefaultInterval).
func NewCollector(interval time.Duration) *Collector {
	if interval <= 0 {
		interval = DefaultInterval
	}
	return &Collector{interval: interval, s: New(interval)}
}

// Interval returns the window width campaigns should record at.
func (c *Collector) Interval() time.Duration {
	if c == nil {
		return DefaultInterval
	}
	return c.interval
}

// Merge folds a finished campaign's local series into the collector.
func (c *Collector) Merge(local *Series) {
	if c == nil || local == nil {
		return
	}
	c.mu.Lock()
	c.s.Merge(local)
	c.mu.Unlock()
}

// Replace swaps the collector's series for s, which the collector
// takes ownership of (pass a Clone if the producer keeps recording).
// Used by single-kernel producers publishing rolling snapshots.
func (c *Collector) Replace(s *Series) {
	if c == nil || s == nil {
		return
	}
	c.mu.Lock()
	c.s = s
	c.mu.Unlock()
}

// SetProgress publishes run status for the live endpoint.
func (c *Collector) SetProgress(p Progress) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.prog = p
	c.mu.Unlock()
}

// AddDone increments the completed-work counter for campaign-suite
// progress, installing total as the denominator when positive (pass 0
// to leave a previously published total untouched).
func (c *Collector) AddDone(total int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if total > 0 {
		c.prog.Total = total
	}
	c.prog.Done++
	c.mu.Unlock()
}

// Snapshot returns a deep copy of the merged series plus the current
// progress, safe to read while producers keep recording.
func (c *Collector) Snapshot() (*Series, Progress) {
	if c == nil {
		return nil, Progress{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Clone(), c.prog
}
