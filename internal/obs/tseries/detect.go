package tseries

import (
	"fmt"
	"sort"
	"time"

	"statebench/internal/obs/span"
)

// This file is the deterministic anomaly detector: rules evaluated
// over a finalized Series that mechanically re-find the transient
// pathologies the paper reads off its figures by eye — cold-start
// storms (Fig 10/13), scheduling-delay spikes while the Azure scale
// controller lags (Fig 13/14), sustained backlog growth under bursty
// open-loop load, and SLO burn. Every rule is arithmetic over window
// counters and histogram quantiles — no randomness, no wall clock —
// so the anomaly log is byte-identical across runs, worker counts,
// and kernel shard counts, and is pinned by the timeline golden.

// Rule names, in evaluation (and report) order.
const (
	RuleColdSurge     = "cold-surge"
	RuleSchedSpike    = "sched-spike"
	RuleBacklogGrowth = "backlog-growth"
	RuleSLOBurn       = "slo-burn"
)

// Anomaly is one detected incident: a rule firing over one window or a
// run of consecutive windows.
type Anomaly struct {
	// Rule identifies the detector rule that fired.
	Rule string
	// Window is the first affected window index; Windows the number of
	// consecutive windows covered (>= 1).
	Window  int64
	Windows int
	// Start/End are the affected virtual-time range (window bounds).
	Start, End time.Duration
	// Value is the observed magnitude (cold rate, p99 seconds, backlog
	// depth, violation rate) and Baseline the trailing-median reference
	// it was compared against (0 when the rule has no baseline).
	Value    float64
	Baseline float64
	// Detail is a human-readable one-liner for the anomaly log.
	Detail string
	// TraceIDs cross-links the incident to affected span trees (filled
	// by LinkSpans when a tracer ran alongside the telemetry).
	TraceIDs []uint64
}

// DetectorConfig tunes the rules. The zero value is usable: every
// threshold falls back to the documented default, and the SLO rule
// stays off until SLOTarget is set.
type DetectorConfig struct {
	// Trailing is how many preceding windows form the baseline median
	// (default 30). Windows never materialized count as zero — an idle
	// gap lowers the baseline, so a storm after a quiet period is a
	// surge even if the previous storm looked the same.
	Trailing int

	// ColdSurgeFactor is the cold-rate multiple over the trailing
	// median that constitutes a surge (default 3). ColdSurgeMinRate
	// (default 0.25 colds per arrival) and ColdSurgeMinCount (default
	// 3 colds) suppress noise in near-idle windows.
	ColdSurgeFactor   float64
	ColdSurgeMinRate  float64
	ColdSurgeMinCount uint64

	// SchedSpikeFactor is the scheduling-delay p99 multiple over the
	// trailing median that constitutes a spike (default 3);
	// SchedSpikeMin (default 1s) is the absolute floor below which
	// spikes are ignored.
	SchedSpikeFactor float64
	SchedSpikeMin    time.Duration

	// BacklogGrowthWindows is how many consecutive windows of strictly
	// increasing queue depth constitute sustained growth (default 3);
	// BacklogMinDepth (default 10) is the depth the run must reach.
	BacklogGrowthWindows int
	BacklogMinDepth      int64

	// SLOTarget enables the burn-rate rule: completions slower than
	// the target count as violations. SLOBudget is the tolerated
	// violation fraction (default 0.01); SLOBurnFactor the multiple of
	// the budget the windowed violation rate must exceed to flag
	// (default 10 — a window burning >=10x budget exhausts a month of
	// error budget in under three days).
	SLOTarget     time.Duration
	SLOBudget     float64
	SLOBurnFactor float64
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.Trailing <= 0 {
		c.Trailing = 30
	}
	if c.ColdSurgeFactor <= 0 {
		c.ColdSurgeFactor = 3
	}
	if c.ColdSurgeMinRate <= 0 {
		c.ColdSurgeMinRate = 0.25
	}
	if c.ColdSurgeMinCount == 0 {
		c.ColdSurgeMinCount = 3
	}
	if c.SchedSpikeFactor <= 0 {
		c.SchedSpikeFactor = 3
	}
	if c.SchedSpikeMin <= 0 {
		c.SchedSpikeMin = time.Second
	}
	if c.BacklogGrowthWindows <= 0 {
		c.BacklogGrowthWindows = 3
	}
	if c.BacklogMinDepth <= 0 {
		c.BacklogMinDepth = 10
	}
	if c.SLOBudget <= 0 {
		c.SLOBudget = 0.01
	}
	if c.SLOBurnFactor <= 0 {
		c.SLOBurnFactor = 10
	}
	return c
}

// trailingMedian returns the median of vals over the half-open index
// range [from, to) of per-window values where missing windows
// contribute zero. vals maps window index -> value.
func trailingMedian(vals map[int64]float64, from, to int64) float64 {
	if to <= from {
		return 0
	}
	n := int(to - from)
	xs := make([]float64, 0, n)
	for i := from; i < to; i++ {
		xs = append(xs, vals[i]) // missing -> 0
	}
	sort.Float64s(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// Detect evaluates the configured rules over s and returns the
// anomalies sorted by first window, then rule name. A nil or empty
// series yields nil.
func Detect(s *Series, cfg DetectorConfig) []Anomaly {
	if s == nil || len(s.windows) == 0 {
		return nil
	}
	cfg = cfg.withDefaults()
	idxs := s.Indices()
	iv := s.interval

	// Pre-extract the per-window inputs the baselines need.
	coldRate := make(map[int64]float64, len(idxs))
	schedP99 := make(map[int64]float64, len(idxs))
	for _, i := range idxs {
		w := s.windows[i]
		if w.Arrivals > 0 {
			coldRate[i] = float64(w.Colds) / float64(w.Arrivals)
		} else if w.Colds > 0 {
			coldRate[i] = float64(w.Colds)
		}
		if w.Sched.Count() > 0 {
			schedP99[i] = w.Sched.P99().Seconds()
		}
	}

	var out []Anomaly
	bounds := func(i int64, n int) (time.Duration, time.Duration) {
		return time.Duration(i) * iv, time.Duration(i+int64(n)) * iv
	}

	// Rule 1: cold-rate surge vs trailing median.
	for _, i := range idxs {
		w := s.windows[i]
		rate := coldRate[i]
		if w.Colds < cfg.ColdSurgeMinCount || rate < cfg.ColdSurgeMinRate {
			continue
		}
		base := trailingMedian(coldRate, i-int64(cfg.Trailing), i)
		if rate < cfg.ColdSurgeFactor*base {
			continue
		}
		st, en := bounds(i, 1)
		out = append(out, Anomaly{
			Rule: RuleColdSurge, Window: i, Windows: 1, Start: st, End: en,
			Value: rate, Baseline: base,
			Detail: fmt.Sprintf("%d cold starts / %d arrivals (rate %.2f, trailing median %.2f, cold p50 %v)",
				w.Colds, w.Arrivals, rate, base, w.Cold.Median().Round(time.Millisecond)),
		})
	}

	// Rule 2: scheduling-delay p99 spike vs trailing median.
	for _, i := range idxs {
		w := s.windows[i]
		if w.Sched.Count() == 0 {
			continue
		}
		p99 := w.Sched.P99()
		if p99 < cfg.SchedSpikeMin {
			continue
		}
		base := trailingMedian(schedP99, i-int64(cfg.Trailing), i)
		if p99.Seconds() < cfg.SchedSpikeFactor*base {
			continue
		}
		st, en := bounds(i, 1)
		out = append(out, Anomaly{
			Rule: RuleSchedSpike, Window: i, Windows: 1, Start: st, End: en,
			Value: p99.Seconds(), Baseline: base,
			Detail: fmt.Sprintf("sched p99 %v over %d dispatches (trailing median %.2fs)",
				p99.Round(time.Millisecond), w.Sched.Count(), base),
		})
	}

	// Rule 3: sustained backlog growth — a maximal run of consecutive
	// windows with strictly increasing queue depth. Missing windows
	// break the run (no observations means no evidence of growth).
	for k := 0; k < len(idxs); {
		j := k
		for j+1 < len(idxs) &&
			idxs[j+1] == idxs[j]+1 &&
			s.windows[idxs[j+1]].QueueDepth > s.windows[idxs[j]].QueueDepth {
			j++
		}
		runLen := j - k + 1
		peak := s.windows[idxs[j]].QueueDepth
		if runLen >= cfg.BacklogGrowthWindows && peak >= cfg.BacklogMinDepth {
			st, en := bounds(idxs[k], runLen)
			out = append(out, Anomaly{
				Rule: RuleBacklogGrowth, Window: idxs[k], Windows: runLen, Start: st, End: en,
				Value: float64(peak), Baseline: float64(s.windows[idxs[k]].QueueDepth),
				Detail: fmt.Sprintf("queue depth grew %d windows, %d -> %d",
					runLen, s.windows[idxs[k]].QueueDepth, peak),
			})
		}
		if j == k {
			k++
		} else {
			k = j
		}
	}

	// Rule 4: SLO burn rate (off unless a target is configured).
	if cfg.SLOTarget > 0 {
		for _, i := range idxs {
			w := s.windows[i]
			if w.Completions == 0 {
				continue
			}
			viol := w.E2E.CountAbove(cfg.SLOTarget)
			rate := float64(viol) / float64(w.Completions)
			if rate < cfg.SLOBurnFactor*cfg.SLOBudget {
				continue
			}
			st, en := bounds(i, 1)
			out = append(out, Anomaly{
				Rule: RuleSLOBurn, Window: i, Windows: 1, Start: st, End: en,
				Value: rate, Baseline: cfg.SLOBudget,
				Detail: fmt.Sprintf("%d/%d completions over the %v SLO (burn %.0fx budget)",
					viol, w.Completions, cfg.SLOTarget, rate/cfg.SLOBudget),
			})
		}
	}

	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Window != out[b].Window {
			return out[a].Window < out[b].Window
		}
		return out[a].Rule < out[b].Rule
	})
	return out
}

// linkKinds maps each rule to the span kinds that evidence it.
var linkKinds = map[string][]string{
	RuleColdSurge:     {"coldstart"},
	RuleSchedSpike:    {"queue"},
	RuleBacklogGrowth: {"hop", "queue"},
	RuleSLOBurn:       {"run"},
}

// LinkSpans cross-links anomalies to the span trees that overlap them:
// for each anomaly, up to max distinct trace IDs of spans whose kind
// evidences the rule and whose interval overlaps the anomaly's window
// range. Spans are scanned in emit order, so the linked IDs are
// deterministic.
func LinkSpans(anoms []Anomaly, spans []span.Span, max int) {
	if len(anoms) == 0 || len(spans) == 0 || max <= 0 {
		return
	}
	for ai := range anoms {
		a := &anoms[ai]
		kinds := linkKinds[a.Rule]
		seen := map[uint64]bool{}
		for _, sp := range spans {
			if sp.TraceID == 0 || seen[sp.TraceID] {
				continue
			}
			if sp.End <= a.Start || sp.Start >= a.End {
				continue
			}
			match := false
			for _, k := range kinds {
				if string(sp.Kind) == k {
					match = true
					break
				}
			}
			if !match {
				continue
			}
			seen[sp.TraceID] = true
			a.TraceIDs = append(a.TraceIDs, sp.TraceID)
			if len(a.TraceIDs) >= max {
				break
			}
		}
	}
}
