package tseries

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// record is one observation, replayable into any Series in any order —
// the currency of the merge-commutativity property tests.
type record struct {
	kind  int // 0 arrival, 1 completion, 2 cold, 3 sched, 4 fault, 5 queue, 6 warm
	t     time.Duration
	value time.Duration
	depth int64
}

func (r record) apply(s *Series) {
	switch r.kind {
	case 0:
		s.AddArrival(r.t)
	case 1:
		s.AddCompletion(r.t, r.value)
	case 2:
		s.AddCold(r.t, r.value)
	case 3:
		s.AddSched(r.t, r.value)
	case 4:
		s.AddFault(r.t)
	case 5:
		s.ObserveQueueDepth(r.t, r.depth)
	case 6:
		s.ObserveWarmPool(r.t, r.depth)
	}
}

func randomRecords(seed int64, n int) []record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]record, n)
	for i := range recs {
		recs[i] = record{
			kind:  rng.Intn(7),
			t:     time.Duration(rng.Int63n(int64(90 * time.Second))),
			value: time.Duration(rng.Int63n(int64(5 * time.Second))),
			depth: rng.Int63n(500) + 1,
		}
	}
	return recs
}

func csvOf(t *testing.T, s *Series) string {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestWindowAttribution(t *testing.T) {
	s := New(time.Second)
	s.AddArrival(0)
	s.AddArrival(999 * time.Millisecond)
	s.AddArrival(time.Second) // next window
	s.AddArrival(-time.Second)
	if got := s.At(0).Arrivals; got != 3 {
		t.Fatalf("window 0 arrivals = %d, want 3 (incl. negative-time clamp)", got)
	}
	if got := s.At(1).Arrivals; got != 1 {
		t.Fatalf("window 1 arrivals = %d, want 1", got)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.Start(5); got != 5*time.Second {
		t.Fatalf("Start(5) = %v", got)
	}
}

// The cursor cache must survive out-of-order timestamps: going back to
// an earlier window and forward again may not lose or duplicate counts.
func TestWindowCursorOutOfOrder(t *testing.T) {
	s := New(time.Second)
	for _, sec := range []int{5, 5, 2, 5, 2, 9, 2} {
		s.AddArrival(time.Duration(sec) * time.Second)
	}
	want := map[int64]uint64{2: 3, 5: 3, 9: 1}
	for idx, n := range want {
		if got := s.At(idx).Arrivals; got != n {
			t.Fatalf("window %d arrivals = %d, want %d", idx, got, n)
		}
	}
}

func TestIntervalDefaultsAndTotals(t *testing.T) {
	if got := New(0).Interval(); got != DefaultInterval {
		t.Fatalf("New(0) interval = %v", got)
	}
	var nilS *Series
	if nilS.Interval() != DefaultInterval || nilS.Enabled() {
		t.Fatal("nil series: want default interval and Enabled()=false")
	}
	s := New(time.Second)
	s.AddArrival(0)
	s.AddCompletion(time.Second, 100*time.Millisecond)
	s.AddCold(2*time.Second, time.Second)
	s.AddFault(3 * time.Second)
	s.AddFault(3 * time.Second)
	arr, comp, colds, faults := s.Totals()
	if arr != 1 || comp != 1 || colds != 1 || faults != 2 {
		t.Fatalf("Totals = %d,%d,%d,%d", arr, comp, colds, faults)
	}
}

// Every exported method must be a no-op on a nil receiver — the
// disabled fast path used at every instrumentation site.
func TestNilSeriesSafe(t *testing.T) {
	var s *Series
	s.AddArrival(0)
	s.AddCompletion(0, time.Second)
	s.AddCold(0, time.Second)
	s.AddSched(0, time.Second)
	s.AddFault(0)
	s.ObserveQueueDepth(0, 5)
	s.ObserveWarmPool(0, 5)
	s.Merge(New(time.Second))
	s.SpanWindowed("run", "x", 0, time.Second)
	if s.Len() != 0 || s.Indices() != nil || s.At(0) != nil || s.Clone() != nil {
		t.Fatal("nil series leaked state")
	}
	if got := csvOf(t, s); got != csvHeader+"\n" {
		t.Fatalf("nil CSV = %q", got)
	}
	if s.CounterTracks() != nil {
		t.Fatal("nil CounterTracks != nil")
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil || strings.TrimSpace(buf.String()) != "[]" {
		t.Fatalf("nil JSON = %q, err %v", buf.String(), err)
	}
	arr, comp, colds, faults := s.Totals()
	if arr+comp+colds+faults != 0 {
		t.Fatal("nil Totals nonzero")
	}
}

func TestGaugesMaxSemantics(t *testing.T) {
	s := New(time.Second)
	s.ObserveQueueDepth(0, 3)
	s.ObserveQueueDepth(0, 7)
	s.ObserveQueueDepth(0, 5)
	s.ObserveQueueDepth(0, 0)  // ignored
	s.ObserveQueueDepth(0, -1) // ignored
	s.ObserveWarmPool(0, 2)
	s.ObserveWarmPool(0, 1)
	w := s.At(0)
	if w.QueueDepth != 7 || w.WarmPool != 2 {
		t.Fatalf("gauges = %d/%d, want 7/2", w.QueueDepth, w.WarmPool)
	}
}

// TestMergeCommutative is the core determinism property: replaying one
// observation stream as N partitions merged in any order must produce
// byte-identical CSV, for many random streams and partitionings. This
// is what makes per-window output invariant under -parallel and kernel
// shard count.
func TestMergeCommutative(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		recs := randomRecords(seed, 2000)
		whole := New(time.Second)
		for _, r := range recs {
			r.apply(whole)
		}
		want := csvOf(t, whole)

		rng := rand.New(rand.NewSource(seed + 1000))
		for trial := 0; trial < 3; trial++ {
			nParts := 1 + rng.Intn(8)
			parts := make([]*Series, nParts)
			for i := range parts {
				parts[i] = New(time.Second)
			}
			for _, r := range recs {
				r.apply(parts[rng.Intn(nParts)])
			}
			merged := New(time.Second)
			for _, i := range rng.Perm(nParts) {
				merged.Merge(parts[i])
			}
			if got := csvOf(t, merged); got != want {
				t.Fatalf("seed %d trial %d: merged CSV diverged from sequential replay\nwant:\n%s\ngot:\n%s",
					seed, trial, want, got)
			}
		}
	}
}

func TestMergeAssociative(t *testing.T) {
	recs := randomRecords(7, 900)
	third := len(recs) / 3
	build := func(lo, hi int) *Series {
		s := New(time.Second)
		for _, r := range recs[lo:hi] {
			r.apply(s)
		}
		return s
	}
	// (a+b)+c
	left := build(0, third)
	left.Merge(build(third, 2*third))
	left.Merge(build(2*third, len(recs)))
	// a+(b+c)
	bc := build(third, 2*third)
	bc.Merge(build(2*third, len(recs)))
	right := build(0, third)
	right.Merge(bc)
	if csvOf(t, left) != csvOf(t, right) {
		t.Fatal("merge is not associative")
	}
}

func TestMergeIntervalMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging mismatched intervals did not panic")
		}
	}()
	a := New(time.Second)
	b := New(2 * time.Second)
	b.AddArrival(0)
	a.Merge(b)
}

func TestCloneIsDeep(t *testing.T) {
	s := New(time.Second)
	s.AddCompletion(time.Second, 50*time.Millisecond)
	c := s.Clone()
	c.AddCompletion(time.Second, time.Hour)
	c.AddArrival(30 * time.Second)
	if s.At(1).Completions != 1 || s.At(1).E2E.Max() != 50*time.Millisecond {
		t.Fatal("mutating the clone reached the original's windows")
	}
	if s.Len() != 1 {
		t.Fatal("clone shares the window map")
	}
}

func TestSpanWindowedMapping(t *testing.T) {
	s := New(time.Second)
	s.SpanWindowed("run", "wf", 500*time.Millisecond, 2500*time.Millisecond)
	s.SpanWindowed("queue", "q", 0, 1200*time.Millisecond)
	s.SpanWindowed("coldstart", "c", time.Second, 3*time.Second)
	s.SpanWindowed("fault", "f", 0, time.Second)  // chaos injector books these
	s.SpanWindowed("deploy", "d", 0, time.Second) // no windowed meaning
	if got := s.At(0).Arrivals; got != 1 {
		t.Fatalf("run start arrival in window 0 = %d", got)
	}
	w2 := s.At(2)
	if w2.Completions != 1 || w2.E2E.Max() != 2*time.Second {
		t.Fatalf("run end completion misbooked: %+v", w2)
	}
	if got := s.At(1).Sched.Count(); got != 1 {
		t.Fatalf("queue span sched count = %d", got)
	}
	if s.At(3).Colds != 1 || s.At(3).Cold.Max() != 2*time.Second {
		t.Fatal("coldstart span misbooked")
	}
	_, _, _, faults := s.Totals()
	if faults != 0 {
		t.Fatal("fault spans must not be double-counted by the span sink")
	}
}

// CSV/JSON skip windows that were materialized but never filled (e.g.
// a Window() touch by the cursor), and order rows by index.
func TestExportSkipsEmptyAndSorts(t *testing.T) {
	s := New(time.Second)
	s.AddArrival(40 * time.Second)
	s.AddArrival(3 * time.Second)
	s.Window(10 * time.Second) // touched, stays empty
	got := csvOf(t, s)
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d, want header + 2 rows:\n%s", len(lines), got)
	}
	if !strings.HasPrefix(lines[1], "3,3,") || !strings.HasPrefix(lines[2], "40,40,") {
		t.Fatalf("rows out of order or empty window leaked:\n%s", got)
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	js := buf.String()
	if strings.Contains(js, `"window": 10`) || !strings.Contains(js, `"window": 3`) {
		t.Fatalf("JSON export wrong windows:\n%s", js)
	}
}

func TestCounterTracks(t *testing.T) {
	s := New(time.Second)
	s.AddArrival(0)
	s.AddCompletion(time.Second, 200*time.Millisecond)
	s.ObserveQueueDepth(time.Second, 12)
	tracks := s.CounterTracks()
	if len(tracks) != 3 {
		t.Fatalf("tracks = %d", len(tracks))
	}
	names := []string{"rates", "backlog", "latency_ms"}
	for i, tr := range tracks {
		if tr.Name != names[i] {
			t.Fatalf("track %d = %q, want %q", i, tr.Name, names[i])
		}
		if len(tr.Points) != 2 {
			t.Fatalf("track %q points = %d, want 2", tr.Name, len(tr.Points))
		}
	}
	if tracks[0].Points[0].Values["arrivals"] != 1 {
		t.Fatal("rates track missing arrival")
	}
	if tracks[1].Points[1].Values["queue_depth"] != 12 {
		t.Fatal("backlog track missing queue depth")
	}
	if tracks[2].Points[1].Values["e2e_p99"] == 0 {
		t.Fatal("latency track missing e2e p99")
	}
}
