package tseries

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// Workers merging private series into a shared collector in racing
// order must yield the same snapshot as a sequential replay — the
// cross-goroutine half of the determinism contract.
func TestCollectorMergeAcrossGoroutines(t *testing.T) {
	recs := randomRecords(3, 4000)
	whole := New(time.Second)
	for _, r := range recs {
		r.apply(whole)
	}
	want := csvOf(t, whole)

	c := NewCollector(0)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := New(c.Interval())
			for i := w; i < len(recs); i += workers {
				recs[i].apply(local)
			}
			c.Merge(local)
			c.AddDone(workers)
		}(w)
	}
	wg.Wait()
	s, p := c.Snapshot()
	if got := csvOf(t, s); got != want {
		t.Fatal("collector snapshot diverged from sequential replay")
	}
	if p.Done != workers || p.Total != workers {
		t.Fatalf("progress = %+v", p)
	}
}

func TestCollectorReplaceAndSnapshotIsolation(t *testing.T) {
	c := NewCollector(0)
	s1 := New(c.Interval())
	s1.AddArrival(0)
	c.Replace(s1)
	snap, _ := c.Snapshot()
	snap.AddArrival(0) // mutating a snapshot must not touch the collector
	s2, _ := c.Snapshot()
	if got := s2.At(0).Arrivals; got != 1 {
		t.Fatalf("arrivals = %d, want 1 (snapshot leaked back)", got)
	}
}

func TestCollectorProgress(t *testing.T) {
	c := NewCollector(0)
	c.SetProgress(Progress{Phase: "campaigns", Total: 10, VirtualTime: 5 * time.Second})
	c.AddDone(0) // 0 leaves the published total alone
	_, p := c.Snapshot()
	if p.Phase != "campaigns" || p.Done != 1 || p.Total != 10 {
		t.Fatalf("progress = %+v", p)
	}
}

func TestNilCollectorSafe(t *testing.T) {
	var c *Collector
	c.Merge(New(time.Second))
	c.Replace(New(time.Second))
	c.SetProgress(Progress{})
	c.AddDone(1)
	if c.Interval() != DefaultInterval {
		t.Fatal("nil Interval")
	}
	s, p := c.Snapshot()
	if s != nil || p != (Progress{}) {
		t.Fatal("nil Snapshot leaked state")
	}
}

func TestPrometheusText(t *testing.T) {
	s := New(time.Second)
	s.AddArrival(0)
	s.AddArrival(5 * time.Second)
	s.AddCompletion(5*time.Second, 300*time.Millisecond)
	s.AddCold(5*time.Second, time.Second)
	s.Window(9 * time.Second) // empty trailing window: not "latest"
	out := PrometheusText(s, Progress{Done: 2, Total: 4, VirtualTime: 9 * time.Second})
	for _, want := range []string{
		"statebench_timeline_arrivals_total 2",
		"statebench_timeline_completions_total 1",
		"statebench_timeline_cold_starts_total 1",
		`statebench_window_arrivals{window="5"} 1`,
		`statebench_window_cold_starts{window="5"} 1`,
		"statebench_progress_virtual_seconds 9",
		"statebench_progress_done 2",
		"statebench_progress_total 4",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Deterministic for a fixed snapshot.
	if out != PrometheusText(s, Progress{Done: 2, Total: 4, VirtualTime: 9 * time.Second}) {
		t.Fatal("PrometheusText unstable")
	}
	// Nil series: totals render as zero, no window family.
	nilOut := PrometheusText(nil, Progress{})
	if !strings.Contains(nilOut, "statebench_timeline_arrivals_total 0") ||
		strings.Contains(nilOut, "statebench_window_arrivals") {
		t.Fatalf("nil-series exposition:\n%s", nilOut)
	}
}

// TestServeLive is the -live smoke test: bind an ephemeral port, hit
// every endpoint, and check each serves the snapshot it should.
func TestServeLive(t *testing.T) {
	c := NewCollector(0)
	s := New(c.Interval())
	s.AddArrival(0)
	s.AddCompletion(0, 100*time.Millisecond)
	c.Replace(s)
	c.SetProgress(Progress{Phase: "traffic", Done: 1, Total: 3})

	srv, err := ServeLive("127.0.0.1:0", c.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	if out := get("/metrics"); !strings.Contains(out, "statebench_timeline_arrivals_total 1") {
		t.Fatalf("/metrics:\n%s", out)
	}
	if out := get("/timeseries.csv"); !strings.HasPrefix(out, csvHeader+"\n") || !strings.Contains(out, "\n0,0,1,1,") {
		t.Fatalf("/timeseries.csv:\n%s", out)
	}
	if out := get("/timeseries.json"); !strings.Contains(out, `"arrivals": 1`) {
		t.Fatalf("/timeseries.json:\n%s", out)
	}
	if out := get("/progress"); !strings.Contains(out, `"phase": "traffic"`) {
		t.Fatalf("/progress:\n%s", out)
	}
	if out := get("/"); !strings.Contains(out, "/timeseries.csv") {
		t.Fatalf("index:\n%s", out)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path status = %s", resp.Status)
	}

	// The CSV endpoint must match WriteCSV byte for byte.
	var buf bytes.Buffer
	snap, _ := c.Snapshot()
	if err := snap.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := get("/timeseries.csv"); got != buf.String() {
		t.Fatal("/timeseries.csv diverged from WriteCSV")
	}
}
