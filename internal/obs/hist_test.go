package obs

import (
	"math"
	"testing"
	"time"
)

// histRNG is a tiny splitmix64 so the tests need no import of
// internal/sim.
type histRNG struct{ s uint64 }

func (r *histRNG) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *histRNG) f64() float64 { return float64(r.next()>>11) / (1 << 53) }

// lognormalish draws a deterministic heavy-tailed latency in ns.
func (r *histRNG) latency() time.Duration {
	u1, u2 := r.f64(), r.f64()
	for u1 == 0 {
		u1 = r.f64()
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return time.Duration(math.Exp(17 + 1.2*z)) // median ~24ms, long tail
}

func TestHistSmallValuesExact(t *testing.T) {
	var h Hist
	for v := time.Duration(0); v < 64; v++ {
		h.Record(v)
	}
	if h.Min() != 0 || h.Max() != 63 || h.Count() != 64 {
		t.Fatalf("min/max/count = %v/%v/%d", h.Min(), h.Max(), h.Count())
	}
	// Sub-64ns values occupy exact buckets: the median must be a value
	// actually recorded (the rank-32 observation), not a midpoint
	// approximation.
	if m := h.Median(); m != 31 {
		t.Fatalf("median = %v, want 31", m)
	}
	if h.Sum() != 63*64/2 {
		t.Fatalf("sum = %v", h.Sum())
	}
}

func TestHistBucketRoundTrip(t *testing.T) {
	rng := histRNG{s: 7}
	check := func(v int64) {
		idx := histIdx(v)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("histIdx(%d) = %d out of range", v, idx)
		}
		lo, hi := histBucketBounds(idx)
		if v < lo || v > hi {
			t.Fatalf("value %d outside its bucket [%d, %d]", v, lo, hi)
		}
		// Documented resolution: width ≤ 1/64 of the smallest member.
		if lo >= 64 && (hi-lo+1) > lo/64 {
			t.Fatalf("bucket [%d, %d] wider than lo/64", lo, hi)
		}
	}
	for _, v := range []int64{0, 1, 63, 64, 65, 127, 128, 1 << 20, math.MaxInt64} {
		check(v)
	}
	prev := -1
	for v := int64(0); v < 100000; v++ {
		idx := histIdx(v)
		if idx < prev {
			t.Fatalf("histIdx not monotone at %d", v)
		}
		prev = idx
	}
	for i := 0; i < 100000; i++ {
		check(int64(rng.next() >> 1))
	}
}

// TestHistQuantileAgreesWithSamples is the streaming-vs-exact
// cross-check: on a large heavy-tailed stream, every reported quantile
// must agree with the exact Samples reference within the documented
// 1/128 relative bucket error (plus one order-statistic step, which is
// negligible at this n).
func TestHistQuantileAgreesWithSamples(t *testing.T) {
	rng := histRNG{s: 1}
	var h Hist
	var s Samples
	const n = 200000
	for i := 0; i < n; i++ {
		v := rng.latency()
		h.Record(v)
		s.Add(v)
	}
	if h.Count() != n || s.Len() != n {
		t.Fatalf("count mismatch: %d vs %d", h.Count(), s.Len())
	}
	if h.Min() != s.Min() || h.Max() != s.Max() {
		t.Fatalf("min/max not exact: %v/%v vs %v/%v", h.Min(), h.Max(), s.Min(), s.Max())
	}
	if got, want := float64(h.Mean()), float64(s.Mean()); math.Abs(got-want) > 1 {
		t.Fatalf("mean not exact: %v vs %v", h.Mean(), s.Mean())
	}
	for _, q := range []float64{0.01, 0.1, 0.5, 0.9, 0.99, 0.999} {
		got, want := float64(h.Quantile(q)), float64(s.Quantile(q))
		if rel := math.Abs(got-want) / want; rel > 1.0/128+0.002 {
			t.Errorf("q=%v: hist %v vs exact %v (rel err %.4f > bound)", q, time.Duration(got), time.Duration(want), rel)
		}
	}
}

// TestHistMergeDeterministic proves merge order and partitioning do
// not change a single bit: the same observations split across 1, 4 and
// 16 partials — merged forward and backward — yield byte-identical
// histograms, the property behind shard- and worker-count-independent
// traffic reports.
func TestHistMergeDeterministic(t *testing.T) {
	const n = 50000
	draw := func() []time.Duration {
		rng := histRNG{s: 99}
		vs := make([]time.Duration, n)
		for i := range vs {
			vs[i] = rng.latency()
		}
		return vs
	}
	vals := draw()
	build := func(parts int, reverse bool) *Hist {
		shards := make([]Hist, parts)
		for i, v := range vals {
			shards[i%parts].Record(v)
		}
		var out Hist
		if reverse {
			for i := parts - 1; i >= 0; i-- {
				out.Merge(&shards[i])
			}
		} else {
			for i := 0; i < parts; i++ {
				out.Merge(&shards[i])
			}
		}
		return &out
	}
	ref := build(1, false)
	for _, parts := range []int{4, 16} {
		for _, rev := range []bool{false, true} {
			got := build(parts, rev)
			if got.Count() != ref.Count() || got.Sum() != ref.Sum() ||
				got.Min() != ref.Min() || got.Max() != ref.Max() {
				t.Fatalf("parts=%d rev=%v: summary stats differ", parts, rev)
			}
			for i := range ref.counts {
				if got.counts[i] != ref.counts[i] {
					t.Fatalf("parts=%d rev=%v: bucket %d = %d, want %d", parts, rev, i, got.counts[i], ref.counts[i])
				}
			}
		}
	}
}

func TestHistZeroAndEdgeCases(t *testing.T) {
	var h Hist
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("zero-value histogram must read as zeroes")
	}
	h.Merge(nil)
	var empty Hist
	h.Merge(&empty)
	if h.Count() != 0 {
		t.Fatal("merging empty/nil changed count")
	}
	h.Record(-5 * time.Second) // clamps to 0
	h.Record(time.Hour)
	if h.Min() != 0 || h.Max() != time.Hour || h.Count() != 2 {
		t.Fatalf("min/max/count = %v/%v/%d", h.Min(), h.Max(), h.Count())
	}
	if q := h.Quantile(math.NaN()); q != h.Min() {
		t.Fatalf("NaN quantile = %v, want min", q)
	}
	if q := h.Quantile(2); q != time.Hour {
		t.Fatalf("q>1 = %v, want max", q)
	}
	// Merge into a zero-value (nil-bucket) histogram.
	var dst Hist
	dst.Merge(&h)
	if dst.Count() != 2 || dst.Max() != time.Hour {
		t.Fatalf("merge into zero value: count=%d max=%v", dst.Count(), dst.Max())
	}
}

// TestHistOctaveBoundaryQuantiles pins quantile behavior at the exact
// values where the bucket geometry changes: 63→64 is the exact-to-
// approximate crossover, and every power of two afterwards starts a new
// octave with doubled bucket width. A quantile landing in a boundary
// bucket must stay inside that bucket's [lo, hi] and inside the
// histogram's exact [Min, Max].
func TestHistOctaveBoundaryQuantiles(t *testing.T) {
	boundaries := []int64{63, 64, 65, 127, 128, 129, 255, 256, 1 << 16, 1<<16 + 1, 1 << 40}
	for _, v := range boundaries {
		var h Hist
		h.Record(time.Duration(v))
		// A single observation: every quantile is clamped to it exactly,
		// whatever bucket midpoint the geometry would suggest.
		for _, q := range []float64{0.01, 0.5, 0.99, 1} {
			if got := h.Quantile(q); got != time.Duration(v) {
				t.Fatalf("single obs %d: Quantile(%v) = %d", v, q, got)
			}
		}
	}
	// Adjacent boundary values in one histogram: the median must fall in
	// the right bucket and respect the 1/128 relative error bound.
	var h Hist
	for _, v := range boundaries {
		h.Record(time.Duration(v))
	}
	for i, q := range []float64{0.05, 0.15, 0.25, 0.35, 0.45, 0.55, 0.65, 0.75, 0.85, 0.95} {
		got := float64(h.Quantile(q))
		want := float64(boundaries[i])
		if rel := math.Abs(got-want) / want; rel > 1.0/128 {
			t.Fatalf("q=%v: %v vs boundary %d (rel err %.5f)", q, time.Duration(got), boundaries[i], rel)
		}
	}
	// Exactly at an octave edge the bucket is [edge, edge+width-1]; its
	// midpoint must never be reported below the edge itself.
	var e Hist
	e.Record(128)
	e.Record(1 << 20)
	if m := e.Median(); m < 128 {
		t.Fatalf("median %d below the octave edge it was recorded at", m)
	}
}

// TestHistMergeMinMaxEdges covers the merge paths the deterministic
// cross-check cannot reach: min/max adoption into empty receivers,
// one-sided updates, and the zero-min corner where "empty" and "min
// really is 0" must not be confused.
func TestHistMergeMinMaxEdges(t *testing.T) {
	mk := func(vals ...time.Duration) *Hist {
		var h Hist
		for _, v := range vals {
			h.Record(v)
		}
		return &h
	}
	// Empty receiver adopts o's min even when it is larger than the
	// receiver's zero-valued min field.
	var h Hist
	h.Merge(mk(5*time.Second, 9*time.Second))
	if h.Min() != 5*time.Second || h.Max() != 9*time.Second {
		t.Fatalf("adopting merge: min/max = %v/%v", h.Min(), h.Max())
	}
	// One-sided: o extends only the max.
	h.Merge(mk(7*time.Second, 20*time.Second))
	if h.Min() != 5*time.Second || h.Max() != 20*time.Second {
		t.Fatalf("max-extending merge: min/max = %v/%v", h.Min(), h.Max())
	}
	// One-sided: o extends only the min — including min 0, which must
	// beat the receiver's positive min despite being the zero value.
	h.Merge(mk(0, 6*time.Second))
	if h.Min() != 0 || h.Max() != 20*time.Second {
		t.Fatalf("zero-min merge: min/max = %v/%v", h.Min(), h.Max())
	}
	// o strictly inside [min, max]: nothing moves.
	h.Merge(mk(time.Second, 2*time.Second))
	if h.Min() != 0 || h.Max() != 20*time.Second || h.Count() != 8 {
		t.Fatalf("interior merge: min/max/count = %v/%v/%d", h.Min(), h.Max(), h.Count())
	}
	// Self-merge doubles counts and leaves min/max alone.
	s := mk(time.Millisecond, time.Minute)
	s.Merge(s)
	if s.Count() != 4 || s.Min() != time.Millisecond || s.Max() != time.Minute {
		t.Fatalf("self-merge: count/min/max = %d/%v/%v", s.Count(), s.Min(), s.Max())
	}
}

// TestHistCountAbove pins the SLO-violation counter: exact at and
// beyond the extremes, bucket-resolution in between (observations in
// d's own bucket count as not-above).
func TestHistCountAbove(t *testing.T) {
	var h Hist
	if h.CountAbove(0) != 0 {
		t.Fatal("empty CountAbove != 0")
	}
	for _, v := range []time.Duration{10, 20, 30, time.Second, time.Minute} {
		h.Record(v)
	}
	cases := []struct {
		d    time.Duration
		want uint64
	}{
		{-time.Second, 5}, // below min (after clamp): everything above
		{5, 5},
		{10, 4}, // exact small values: own bucket not counted
		{25, 3},
		{30, 2},
		{time.Second, 1},
		{time.Minute, 0}, // d >= max: exactly 0
		{2 * time.Minute, 0},
	}
	for _, c := range cases {
		if got := h.CountAbove(c.d); got != c.want {
			t.Fatalf("CountAbove(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	// Bucket resolution: two values sharing one octave bucket are
	// indistinguishable — CountAbove(lower) may not count the higher
	// one's bucket-mates, but values in strictly higher buckets always
	// count.
	var o Hist
	o.Record(1 << 20)
	o.Record(1<<20 + 1) // same bucket (width 2^14 at this octave)
	o.Record(1 << 21)   // strictly higher bucket
	if got := o.CountAbove(1 << 20); got != 1 {
		t.Fatalf("bucket-mates counted as above: got %d, want 1", got)
	}
}

// TestSamplesP999SmallN is the satellite regression test: extreme
// quantiles on small collections must interpolate within the last gap
// (Hyndman–Fan type 7), never snap to the maximum, and never index
// out of bounds. The pinned values are the exact reference used by
// the streaming-histogram cross-checks.
func TestSamplesP999SmallN(t *testing.T) {
	var s Samples
	for i := 1; i <= 10; i++ {
		s.Add(time.Duration(i) * time.Millisecond)
	}
	// idx = 0.999*9 = 8.991 → 9ms + 0.991*(10ms-9ms), truncated to
	// integer ns by the duration conversion.
	if got, want := s.P999(), 9990999*time.Nanosecond; got != want {
		t.Fatalf("P999 over 1..10ms = %v, want %v", got, want)
	}
	if s.P999() >= s.Max() {
		t.Fatal("P999 clamped to max on small n")
	}
	// Two samples: idx = 0.999 → interpolate almost all the way.
	var two Samples
	two.AddAll([]time.Duration{1000, 2000})
	if got := two.P999(); got != 1999 {
		t.Fatalf("P999 over {1000, 2000} = %v, want 1999", got)
	}
	// Single sample: every quantile is that sample.
	var one Samples
	one.Add(7)
	for _, q := range []float64{0, 0.5, 0.999, 1, 2, -1, math.NaN()} {
		if got := one.Quantile(q); got != 7 {
			t.Fatalf("Quantile(%v) over one sample = %v, want 7", q, got)
		}
	}
	// NaN and out-of-range q must clamp, not panic or index out of
	// bounds.
	if got := s.Quantile(math.NaN()); got != time.Millisecond {
		t.Fatalf("Quantile(NaN) = %v, want min", got)
	}
	if got := s.Quantile(math.Nextafter(1, 0)); got > s.Max() || got < 9*time.Millisecond {
		t.Fatalf("Quantile(1-ulp) = %v out of range", got)
	}
	if got := s.Quantile(-0.5); got != s.Min() {
		t.Fatalf("Quantile(-0.5) = %v, want min", got)
	}
}
