package span

import (
	"encoding/json"
	"io"
	"strconv"
	"time"
)

// chromeEvent is one entry in the Chrome trace-event JSON array format
// (the "X" complete-event flavor plus "C" counters), loadable in
// chrome://tracing and https://ui.perfetto.dev. Timestamps and
// durations are microseconds. Args values are strings for span events
// and float64 for counter events (the viewer graphs numeric args);
// string values render byte-identically to the former map[string]string
// encoding.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  uint64         `json:"pid"`
	Tid  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeDoc is the object form of the trace file, which lets viewers
// show a display unit and tolerates trailing metadata.
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// CounterPoint is one sample on a counter track: the counter's values
// at virtual time Ts.
type CounterPoint struct {
	Ts     time.Duration
	Values map[string]float64
}

// CounterTrack is a named Chrome trace counter series ("ph":"C"): the
// viewer renders each point's values as a stacked area graph over time.
// Used to draw per-window rates and backlogs beside the span lanes.
type CounterTrack struct {
	Name   string
	Points []CounterPoint
}

// WriteChromeTrace renders spans as Chrome trace-event JSON. Each trace
// ID becomes one pid lane, so every run of a campaign gets its own
// group; within a lane, tid 0 carries the span tree in emit order.
// Span IDs, parents, kinds, and attrs are preserved in args. Output is
// deterministic: spans render in the order given and args keys are
// sorted by the JSON encoder.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	return WriteChromeTraceWith(w, spans, nil)
}

// WriteChromeTraceWith is WriteChromeTrace plus counter tracks: each
// track renders as a "ph":"C" series on pid 0 (above the per-trace
// lanes), one event per point. Counter values are emitted through
// chromeEvent's numeric-args variant so the viewer graphs them.
func WriteChromeTraceWith(w io.Writer, spans []Span, tracks []CounterTrack) error {
	n := len(spans)
	for _, t := range tracks {
		n += len(t.Points)
	}
	doc := chromeDoc{TraceEvents: make([]chromeEvent, 0, n), DisplayTimeUnit: "ms"}
	for _, t := range tracks {
		for _, p := range t.Points {
			args := make(map[string]any, len(p.Values))
			for k, v := range p.Values {
				args[k] = v
			}
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: t.Name,
				Cat:  "counter",
				Ph:   "C",
				Ts:   float64(p.Ts.Microseconds()),
				Pid:  0,
				Tid:  0,
				Args: args,
			})
		}
	}
	for _, s := range spans {
		args := map[string]any{
			"span":   strconv.FormatUint(s.SpanID, 10),
			"parent": strconv.FormatUint(s.Parent, 10),
		}
		for _, a := range s.Attrs {
			args["attr."+a.Key] = a.Value
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: s.Name,
			Cat:  string(s.Kind),
			Ph:   "X",
			Ts:   float64(s.Start.Microseconds()),
			Dur:  float64(s.Duration().Microseconds()),
			Pid:  s.TraceID,
			Tid:  0,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}
