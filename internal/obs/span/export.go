package span

import (
	"encoding/json"
	"io"
	"strconv"
)

// chromeEvent is one entry in the Chrome trace-event JSON array format
// (the "X" complete-event flavor), loadable in chrome://tracing and
// https://ui.perfetto.dev. Timestamps and durations are microseconds.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  uint64            `json:"pid"`
	Tid  uint64            `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeDoc is the object form of the trace file, which lets viewers
// show a display unit and tolerates trailing metadata.
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders spans as Chrome trace-event JSON. Each trace
// ID becomes one pid lane, so every run of a campaign gets its own
// group; within a lane, tid 0 carries the span tree in emit order.
// Span IDs, parents, kinds, and attrs are preserved in args. Output is
// deterministic: spans render in the order given and args keys are
// sorted by the JSON encoder.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	doc := chromeDoc{TraceEvents: make([]chromeEvent, 0, len(spans)), DisplayTimeUnit: "ms"}
	for _, s := range spans {
		args := map[string]string{
			"span":   strconv.FormatUint(s.SpanID, 10),
			"parent": strconv.FormatUint(s.Parent, 10),
		}
		for _, a := range s.Attrs {
			args["attr."+a.Key] = a.Value
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: s.Name,
			Cat:  string(s.Kind),
			Ph:   "X",
			Ts:   float64(s.Start.Microseconds()),
			Dur:  float64(s.Duration().Microseconds()),
			Pid:  s.TraceID,
			Tid:  0,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}
