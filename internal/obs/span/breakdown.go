package span

import (
	"time"

	"statebench/internal/obs"
)

// BreakdownOf derives a latency breakdown for one trace by summing its
// leaf spans per kind:
//
//	ColdStart  = Σ KindCold
//	QueueTime  = Σ KindQueue + Σ KindHop
//	ExecTime   = Σ KindExec
//	Other      = Σ KindTransition
//
// Container spans (run, invoke, orchestration, episode, entityop,
// stage) are not summed — they overlap the leaves. Like the
// snapshot-delta path in core (RunStats.Breakdown with execDelta), the
// sums count parallel branches cumulatively, so for fan-out workflows
// ExecTime can exceed wall-clock E2E; the two paths stay comparable
// because they over-count identically.
func BreakdownOf(spans []Span, traceID uint64) obs.Breakdown {
	var b obs.Breakdown
	for _, s := range spans {
		if s.TraceID != traceID {
			continue
		}
		d := s.Duration()
		switch s.Kind {
		case KindCold:
			b.ColdStart += d
		case KindQueue, KindHop:
			b.QueueTime += d
		case KindExec:
			b.ExecTime += d
		case KindTransition:
			b.Other += d
		}
	}
	return b
}

// CriticalPath returns the straggler chain of a trace: starting at the
// root span, repeatedly descend into the child whose End is latest.
// For fan-out workflows this follows the slowest branch — the chain
// that determines end-to-end latency.
func CriticalPath(spans []Span, traceID uint64) []Span {
	var root Span
	found := false
	children := make(map[uint64][]Span)
	for _, s := range spans {
		if s.TraceID != traceID {
			continue
		}
		if s.Parent == 0 && s.SpanID == s.TraceID {
			root = s
			found = true
		} else {
			children[s.Parent] = append(children[s.Parent], s)
		}
	}
	if !found {
		return nil
	}
	path := []Span{root}
	cur := root
	for {
		kids := children[cur.SpanID]
		if len(kids) == 0 {
			return path
		}
		// Ties keep the earlier-emitted child; emit order is itself
		// deterministic, so the path is too.
		last := kids[0]
		for _, k := range kids[1:] {
			if k.End > last.End {
				last = k
			}
		}
		path = append(path, last)
		cur = last
	}
}

// TotalByKind sums span durations per kind over one trace — the raw
// material for summaries and tests. traceID 0 sums across all traces.
func TotalByKind(spans []Span, traceID uint64) map[Kind]time.Duration {
	out := make(map[Kind]time.Duration)
	for _, s := range spans {
		if traceID != 0 && s.TraceID != traceID {
			continue
		}
		out[s.Kind] += s.Duration()
	}
	return out
}
