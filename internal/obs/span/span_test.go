package span

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"statebench/internal/sim"
)

// buildTrace emits a small two-level tree:
//
//	run [0,100ms]
//	├── cold  [0,20ms]
//	├── exec  [20ms,60ms]
//	│   └── stage [25ms,55ms]
//	└── hop   [60ms,90ms]
func buildTrace(tr *Tracer) uint64 {
	run := tr.StartTrace(0, KindRun, "wf/impl")
	ctx := run.Context()
	tr.Emit(KindCold, "cold/f", 0, 20*time.Millisecond, ctx)
	exec := tr.Start(20*time.Millisecond, KindExec, "exec/f", ctx)
	tr.Emit(KindStage, "stage/s", 25*time.Millisecond, 55*time.Millisecond, exec.Context())
	exec.End(60 * time.Millisecond)
	tr.Emit(KindHop, "queue/q", 60*time.Millisecond, 90*time.Millisecond, ctx)
	run.End(100 * time.Millisecond)
	return ctx.TraceID
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() || tr.Len() != 0 {
		t.Fatal("nil tracer should be disabled and empty")
	}
	a := tr.StartTrace(0, KindRun, "x")
	if a.Live() {
		t.Fatal("nil tracer handle must not be live")
	}
	if ctx := a.Context(); ctx != (sim.TraceContext{}) {
		t.Fatalf("nil handle context = %+v", ctx)
	}
	a.End(time.Second) // must not panic
	tr.Emit(KindCold, "c", 0, 1, sim.TraceContext{})
	if tr.Spans() != nil {
		t.Fatal("nil tracer returned spans")
	}
}

func TestTreeStructureAndIDs(t *testing.T) {
	tr := New()
	id := buildTrace(tr)
	spans := tr.Spans()
	if len(spans) != 5 {
		t.Fatalf("span count = %d, want 5", len(spans))
	}
	// Root: SpanID == TraceID, no parent. Spans are recorded when they
	// finish, so the root is the last entry, not the first.
	root := spans[len(spans)-1]
	if root.Kind != KindRun || root.SpanID != id || root.Parent != 0 {
		t.Fatalf("root = %+v", root)
	}
	for _, s := range spans {
		if s.TraceID != id {
			t.Fatalf("span %s has trace %d, want %d", s.Name, s.TraceID, id)
		}
	}
	// A second trace gets a fresh, larger trace ID.
	id2 := buildTrace(tr)
	if id2 <= id {
		t.Fatalf("second trace id %d not after %d", id2, id)
	}
	if got := len(tr.Trace(id)); got != 5 {
		t.Fatalf("Trace(first) = %d spans", got)
	}
	if got := len(tr.Since(5)); got != 5 {
		t.Fatalf("Since(5) = %d spans", got)
	}
}

func TestBreakdownOf(t *testing.T) {
	tr := New()
	id := buildTrace(tr)
	b := BreakdownOf(tr.Spans(), id)
	if b.ColdStart != 20*time.Millisecond {
		t.Fatalf("cold = %v", b.ColdStart)
	}
	if b.QueueTime != 30*time.Millisecond {
		t.Fatalf("queue = %v", b.QueueTime)
	}
	if b.ExecTime != 40*time.Millisecond {
		t.Fatalf("exec = %v", b.ExecTime)
	}
	if b.Other != 0 {
		t.Fatalf("other = %v", b.Other)
	}
}

func TestCriticalPath(t *testing.T) {
	tr := New()
	run := tr.StartTrace(0, KindRun, "wf")
	ctx := run.Context()
	// Two branches; the second ends later and has a nested child.
	tr.Emit(KindExec, "fast", 0, 10*time.Millisecond, ctx)
	slow := tr.Start(0, KindExec, "slow", ctx)
	tr.Emit(KindStage, "inner", 5*time.Millisecond, 38*time.Millisecond, slow.Context())
	slow.End(40 * time.Millisecond)
	run.End(40 * time.Millisecond)

	path := CriticalPath(tr.Spans(), ctx.TraceID)
	if len(path) != 3 {
		t.Fatalf("path len = %d: %+v", len(path), path)
	}
	if path[0].Kind != KindRun || path[1].Name != "slow" || path[2].Name != "inner" {
		t.Fatalf("path = %s -> %s -> %s", path[0].Name, path[1].Name, path[2].Name)
	}
}

func TestTotalByKindAllTraces(t *testing.T) {
	tr := New()
	buildTrace(tr)
	buildTrace(tr)
	all := TotalByKind(tr.Spans(), 0)
	if all[KindExec] != 80*time.Millisecond {
		t.Fatalf("exec across traces = %v", all[KindExec])
	}
	if all[KindRun] != 200*time.Millisecond {
		t.Fatalf("run across traces = %v", all[KindRun])
	}
}

func TestChromeExportDeterministic(t *testing.T) {
	render := func() string {
		tr := New()
		buildTrace(tr)
		var buf bytes.Buffer
		if err := WriteChromeTrace(&buf, tr.Spans()); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatal("chrome export not deterministic")
	}
	for _, want := range []string{`"ph": "X"`, `"name": "wf/impl"`, `"cat": "run"`, `"dur": 100000`} {
		if !strings.Contains(a, want) {
			t.Fatalf("export missing %s:\n%s", want, a)
		}
	}
}

func TestResetAndWatermark(t *testing.T) {
	tr := New()
	buildTrace(tr)
	mark := tr.Len()
	buildTrace(tr)
	if got := len(tr.Since(mark)); got != 5 {
		t.Fatalf("Since(mark) = %d", got)
	}
	tr.Reset()
	if tr.Len() != 0 {
		t.Fatalf("len after reset = %d", tr.Len())
	}
	// IDs keep increasing after Reset so old and new spans never collide.
	run := tr.StartTrace(0, KindRun, "again")
	if run.Context().TraceID == 0 {
		t.Fatal("trace id reset to zero")
	}
	run.End(time.Millisecond)
}
