// Package span is a deterministic, virtual-time span tracer for the
// simulated platforms — the simulation's analogue of AWS X-Ray and
// Azure Application Insights, which the paper relied on to attribute
// workflow latency to queueing, cold starts, and execution.
//
// Spans carry parent/child causality across every layer: Lambda invokes
// and cold starts, Step Functions state transitions, the Azure Functions
// host, storage-queue hops, Durable orchestrator episodes, entity
// operations, and workload stages. core.Measure opens a root span per
// run and derives queue/exec/cold breakdowns from the span tree
// (Breakdown, breakdown.go), cross-checked against the snapshot-delta
// numbers it already computes.
//
// Determinism contract:
//
//   - All timestamps are virtual (kernel) time; span IDs are allocated
//     sequentially in kernel execution order. For a fixed seed the
//     emitted span stream is identical run-to-run.
//   - Instrumentation never sleeps, never samples an RNG stream, and
//     never alters control flow, so simulation results are byte-identical
//     with tracing on or off (enforced by determinism_test.go).
//   - A Tracer belongs to one Env/Kernel and is used only from that
//     kernel's goroutines (one at a time), so it needs no locking.
//
// Disabled fast path: every method is nil-safe. Services hold a
// `*Tracer` that stays nil unless core.Env.EnableTracing was called;
// the nil receiver short-circuits before any allocation, so hot paths
// pay one predictable branch and zero allocations per would-be span.
package span

import (
	"time"

	"statebench/internal/sim"
)

// Kind classifies a span for breakdown derivation and display.
type Kind string

const (
	// KindRun is the per-iteration root opened by core.Measure.
	KindRun Kind = "run"
	// KindInvoke wraps one full Lambda invocation (RTT to return).
	KindInvoke Kind = "invoke"
	// KindQueue is time spent waiting to be scheduled: Lambda burst
	// admission, Azure host scheduling delay, SFN task dispatch.
	KindQueue Kind = "queue"
	// KindHop is a storage-queue message in flight, enqueue→dequeue.
	KindHop Kind = "hop"
	// KindCold is container/app cold-start provisioning time.
	KindCold Kind = "coldstart"
	// KindExec is billed handler execution time.
	KindExec Kind = "exec"
	// KindTransition is a Step Functions state-machine transition or
	// task dispatch.
	KindTransition Kind = "transition"
	// KindOrchestration spans a whole SFN execution or Durable
	// orchestration, start to completion.
	KindOrchestration Kind = "orchestration"
	// KindEpisode is one Durable orchestrator episode (history replay +
	// user code until it blocks).
	KindEpisode Kind = "episode"
	// KindEntityOp is one Durable entity operation (signal or call).
	KindEntityOp Kind = "entityop"
	// KindStage is an application-level workload stage (ML pipeline
	// step, video split/detect/merge) inside a handler.
	KindStage Kind = "stage"
	// KindFault is a zero-length annotation marking an injected chaos
	// fault (internal/chaos) on the victim's trace.
	KindFault Kind = "fault"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value string
}

// A is shorthand for constructing an Attr.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// Span is one completed operation in virtual time. Parent is the
// SpanID of the enclosing span (0 for roots); TraceID groups all spans
// of one end-to-end run.
type Span struct {
	TraceID uint64
	SpanID  uint64
	Parent  uint64
	Name    string
	Kind    Kind
	Start   time.Duration
	End     time.Duration
	Attrs   []Attr
}

// Duration returns the span's elapsed virtual time.
func (s Span) Duration() time.Duration { return s.End - s.Start }

// MetricsSink receives one notification per finished span. Implemented
// by internal/obs/metrics (wired up in core.Env) without this package
// depending on it.
type MetricsSink interface {
	// SpanFinished is called once per emitted span with its kind, name
	// and duration in seconds.
	SpanFinished(kind, name string, seconds float64)
}

// WindowSink receives one notification per finished span, with virtual
// start/end times, for windowed (time-series) telemetry. Implemented by
// internal/obs/tseries (wired up in core.Env) without this package
// depending on it.
type WindowSink interface {
	// SpanWindowed is called once per emitted span with its kind, name,
	// and virtual start/end times.
	SpanWindowed(kind, name string, start, end time.Duration)
}

// Tracer collects spans for one Env. A nil *Tracer is valid and makes
// every operation a no-op — the disabled fast path.
type Tracer struct {
	nextID uint64
	spans  []Span

	// Metrics, when non-nil, is fed one observation per finished span.
	Metrics MetricsSink

	// Windows, when non-nil, is fed each finished span's virtual time
	// range for per-window telemetry.
	Windows WindowSink
}

// New returns an empty tracer.
func New() *Tracer { return &Tracer{} }

// Enabled reports whether the tracer records spans.
func (t *Tracer) Enabled() bool { return t != nil }

// Len returns the number of spans emitted so far. It doubles as a
// watermark for Since.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.spans)
}

// Spans returns all emitted spans in emit order. The slice is owned by
// the tracer; callers must not mutate it.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.spans
}

// Since returns the spans emitted after the watermark mark (a prior
// Len() result).
func (t *Tracer) Since(mark int) []Span {
	if t == nil || mark >= len(t.spans) {
		return nil
	}
	return t.spans[mark:]
}

// Trace returns the spans belonging to traceID, in emit order.
func (t *Tracer) Trace(traceID uint64) []Span {
	if t == nil {
		return nil
	}
	var out []Span
	for _, s := range t.spans {
		if s.TraceID == traceID {
			out = append(out, s)
		}
	}
	return out
}

// Reset drops all recorded spans (ID allocation continues, so span IDs
// stay unique across a reset).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.spans = t.spans[:0]
}

// StartTrace opens a new root span under a fresh trace ID and returns
// its handle. Used by core.Measure for the per-run root.
func (t *Tracer) StartTrace(now time.Duration, kind Kind, name string) Active {
	if t == nil {
		return Active{}
	}
	t.nextID++
	id := t.nextID
	return Active{t: t, s: Span{TraceID: id, SpanID: id, Name: name, Kind: kind, Start: now}}
}

// Start opens a child span of parent. A zero parent context yields an
// orphan span with TraceID 0 (e.g. idle queue polls outside any run),
// which exporters group under trace 0.
func (t *Tracer) Start(now time.Duration, kind Kind, name string, parent sim.TraceContext) Active {
	if t == nil {
		return Active{}
	}
	t.nextID++
	return Active{t: t, s: Span{
		TraceID: parent.TraceID,
		SpanID:  t.nextID,
		Parent:  parent.SpanID,
		Name:    name,
		Kind:    kind,
		Start:   now,
	}}
}

// Emit records a span retroactively, for operations whose start time is
// only known in hindsight — e.g. a queue hop is emitted at dequeue with
// start = the message's enqueue time.
func (t *Tracer) Emit(kind Kind, name string, start, end time.Duration, parent sim.TraceContext, attrs ...Attr) {
	if t == nil {
		return
	}
	t.nextID++
	t.emit(Span{
		TraceID: parent.TraceID,
		SpanID:  t.nextID,
		Parent:  parent.SpanID,
		Name:    name,
		Kind:    kind,
		Start:   start,
		End:     end,
		Attrs:   attrs,
	})
}

func (t *Tracer) emit(s Span) {
	t.spans = append(t.spans, s)
	if t.Metrics != nil {
		t.Metrics.SpanFinished(string(s.Kind), s.Name, s.Duration().Seconds())
	}
	if t.Windows != nil {
		t.Windows.SpanWindowed(string(s.Kind), s.Name, s.Start, s.End)
	}
}

// Active is a started, not-yet-finished span. It is a value type so the
// disabled path (zero Active from a nil tracer) allocates nothing.
type Active struct {
	t *Tracer
	s Span
}

// Live reports whether the handle belongs to an enabled tracer.
func (a Active) Live() bool { return a.t != nil }

// Context returns the trace context to propagate to child operations
// (zero when tracing is disabled).
func (a Active) Context() sim.TraceContext {
	return sim.TraceContext{TraceID: a.s.TraceID, SpanID: a.s.SpanID}
}

// Annotate attaches attributes to the span before it ends — a
// zero-cost bookkeeping write, consuming no virtual time. No-op on a
// disabled handle; callers should guard attr construction on Live()
// to keep the disabled path allocation-free.
func (a *Active) Annotate(attrs ...Attr) {
	if a.t == nil {
		return
	}
	a.s.Attrs = append(a.s.Attrs, attrs...)
}

// End finishes the span at now and records it, with optional
// annotations. No-op on a disabled handle. Callers that build attrs
// should guard on Live() to keep the disabled path allocation-free.
func (a Active) End(now time.Duration, attrs ...Attr) {
	if a.t == nil {
		return
	}
	a.s.End = now
	if len(attrs) > 0 {
		a.s.Attrs = append(a.s.Attrs, attrs...)
	}
	a.t.emit(a.s)
}
