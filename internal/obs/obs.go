// Package obs provides the measurement-side tooling of the study:
// latency sample collections with percentiles and CDFs, and latency
// breakdowns (queue time vs execution time), mirroring what the paper
// extracted from CloudWatch and Application Insights.
package obs

import (
	"cmp"
	"fmt"
	"math"
	"slices"
	"sort"
	"strings"
	"time"
)

// Samples is a collection of duration observations. The zero value is
// an empty, ready-to-use collection. Samples are not safe for
// concurrent mutation; parallel campaigns collect into per-worker
// shards and combine them with Merge.
type Samples struct {
	vals   []time.Duration
	sorted bool
}

// Add appends one observation.
func (s *Samples) Add(d time.Duration) {
	s.vals = append(s.vals, d)
	s.sorted = false
}

// AddAll appends many observations. Fast path: when the collection is
// already in sorted order and ds extends it non-decreasingly, the
// sorted state is kept, so quantile reads after bulk loads of
// pre-sorted shards skip the re-sort entirely.
func (s *Samples) AddAll(ds []time.Duration) {
	if len(ds) == 0 {
		return
	}
	stillSorted := s.sorted || len(s.vals) == 0
	if stillSorted {
		prev := ds[0]
		if len(s.vals) > 0 && s.vals[len(s.vals)-1] > prev {
			stillSorted = false
		}
		for _, d := range ds[1:] {
			if d < prev {
				stillSorted = false
				break
			}
			prev = d
		}
	}
	s.vals = append(s.vals, ds...)
	s.sorted = stillSorted
}

// Merge unions o's observations into s. Both sides are sorted once and
// then combined in a single linear pass — cheaper than append plus a
// full re-sort, which is what makes combining per-worker sample shards
// cheap. o is left intact (sorted, same observations).
func (s *Samples) Merge(o *Samples) {
	if o == nil || len(o.vals) == 0 {
		return
	}
	if len(s.vals) == 0 {
		o.ensureSorted()
		s.vals = append(s.vals, o.vals...)
		s.sorted = true
		return
	}
	s.ensureSorted()
	o.ensureSorted()
	merged := make([]time.Duration, 0, len(s.vals)+len(o.vals))
	i, j := 0, 0
	for i < len(s.vals) && j < len(o.vals) {
		if s.vals[i] <= o.vals[j] {
			merged = append(merged, s.vals[i])
			i++
		} else {
			merged = append(merged, o.vals[j])
			j++
		}
	}
	merged = append(merged, s.vals[i:]...)
	merged = append(merged, o.vals[j:]...)
	s.vals = merged
	s.sorted = true
}

// Len returns the number of observations.
func (s *Samples) Len() int { return len(s.vals) }

// Values returns a copy of the raw observations.
func (s *Samples) Values() []time.Duration {
	cp := make([]time.Duration, len(s.vals))
	copy(cp, s.vals)
	return cp
}

func (s *Samples) ensureSorted() {
	if !s.sorted {
		slices.Sort(s.vals)
		s.sorted = true
	}
}

// Sort orders the observations now. Afterwards quantile reads are pure
// (no lazy re-sort), which makes a Samples safe to share across
// concurrent report builders that only read.
func (s *Samples) Sort() { s.ensureSorted() }

// Quantile returns the q-quantile (0..1) with linear interpolation
// (Hyndman–Fan type 7, the numpy/R default). Out-of-range and NaN q
// clamp to the nearest order statistic rather than indexing out of
// bounds: extreme quantiles like p99.9 on small collections
// interpolate within the last gap instead of snapping to the maximum,
// and remain the exact reference the streaming histograms are
// cross-checked against.
func (s *Samples) Quantile(q float64) time.Duration {
	if len(s.vals) == 0 {
		return 0
	}
	s.ensureSorted()
	if math.IsNaN(q) || q <= 0 {
		return s.vals[0]
	}
	if q >= 1 {
		return s.vals[len(s.vals)-1]
	}
	idx := q * float64(len(s.vals)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	// Guard the float edge: q just below 1 can land idx within one ulp
	// of len-1, where Ceil would step past the last element.
	if hi > len(s.vals)-1 {
		hi = len(s.vals) - 1
	}
	if lo < 0 {
		lo = 0
	}
	if lo >= hi {
		return s.vals[hi]
	}
	frac := idx - float64(lo)
	return s.vals[lo] + time.Duration(frac*float64(s.vals[hi]-s.vals[lo]))
}

// Median returns the 50th percentile.
func (s *Samples) Median() time.Duration { return s.Quantile(0.5) }

// P99 returns the 99th percentile.
func (s *Samples) P99() time.Duration { return s.Quantile(0.99) }

// P999 returns the 99.9th percentile, the deep-tail statistic the
// open-loop traffic reports lead with.
func (s *Samples) P999() time.Duration { return s.Quantile(0.999) }

// Mean returns the arithmetic mean.
func (s *Samples) Mean() time.Duration {
	if len(s.vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.vals {
		sum += float64(v)
	}
	return time.Duration(sum / float64(len(s.vals)))
}

// Min returns the smallest observation.
func (s *Samples) Min() time.Duration {
	if len(s.vals) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.vals[0]
}

// Max returns the largest observation.
func (s *Samples) Max() time.Duration {
	if len(s.vals) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.vals[len(s.vals)-1]
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value time.Duration
	Frac  float64
}

// CDF returns the empirical CDF sampled at n evenly spaced fractions
// (n >= 2), suitable for plotting Fig 7 / Fig 14 style curves.
func (s *Samples) CDF(n int) []CDFPoint {
	if len(s.vals) == 0 || n < 2 {
		return nil
	}
	s.ensureSorted()
	pts := make([]CDFPoint, n)
	for i := 0; i < n; i++ {
		f := float64(i) / float64(n-1)
		pts[i] = CDFPoint{Value: s.Quantile(f), Frac: f}
	}
	return pts
}

// FracBelow returns the fraction of observations <= d.
func (s *Samples) FracBelow(d time.Duration) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	s.ensureSorted()
	i := sort.Search(len(s.vals), func(i int) bool { return s.vals[i] > d })
	return float64(i) / float64(len(s.vals))
}

// Breakdown separates an end-to-end latency into the paper's Fig 8 /
// Fig 13 components.
type Breakdown struct {
	ColdStart time.Duration
	QueueTime time.Duration
	ExecTime  time.Duration
	Other     time.Duration
}

// Total returns the summed components.
func (b Breakdown) Total() time.Duration {
	return b.ColdStart + b.QueueTime + b.ExecTime + b.Other
}

// Add returns the component-wise sum.
func (b Breakdown) Add(o Breakdown) Breakdown {
	return Breakdown{
		ColdStart: b.ColdStart + o.ColdStart,
		QueueTime: b.QueueTime + o.QueueTime,
		ExecTime:  b.ExecTime + o.ExecTime,
		Other:     b.Other + o.Other,
	}
}

// BreakdownSet aggregates per-run breakdowns and reports the breakdown
// of the run at a given end-to-end quantile (the paper reports the
// 99%ile run's composition).
type BreakdownSet struct {
	runs []Breakdown
}

// Add appends one run's breakdown.
func (bs *BreakdownSet) Add(b Breakdown) { bs.runs = append(bs.runs, b) }

// Len returns the number of runs.
func (bs *BreakdownSet) Len() int { return len(bs.runs) }

// Mean returns the component-wise mean across runs.
func (bs *BreakdownSet) Mean() Breakdown {
	if len(bs.runs) == 0 {
		return Breakdown{}
	}
	var sum Breakdown
	for _, b := range bs.runs {
		sum = sum.Add(b)
	}
	n := time.Duration(len(bs.runs))
	return Breakdown{
		ColdStart: sum.ColdStart / n,
		QueueTime: sum.QueueTime / n,
		ExecTime:  sum.ExecTime / n,
		Other:     sum.Other / n,
	}
}

// AtQuantile returns the breakdown of the run whose total latency sits
// at quantile q.
func (bs *BreakdownSet) AtQuantile(q float64) Breakdown {
	if len(bs.runs) == 0 {
		return Breakdown{}
	}
	sorted := make([]Breakdown, len(bs.runs))
	copy(sorted, bs.runs)
	slices.SortFunc(sorted, func(a, b Breakdown) int { return cmp.Compare(a.Total(), b.Total()) })
	idx := int(q * float64(len(sorted)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// FormatDuration renders a duration compactly for report tables.
func FormatDuration(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return fmt.Sprintf("%.1fm", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.0fms", float64(d)/float64(time.Millisecond))
	default:
		return d.String()
	}
}

// Table renders rows of labelled cells as a fixed-width text table.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) {
				for pad := len(c); pad < widths[i]; pad++ {
					sb.WriteByte(' ')
				}
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}
