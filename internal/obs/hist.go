package obs

import (
	"math/bits"
	"time"
)

// Hist is a streaming, mergeable latency histogram with fixed
// log-scaled resolution, the constant-memory replacement for Samples
// in open-loop campaigns where retaining one duration per invocation
// would grow memory with load (hundreds of millions of observations).
//
// # Bucket scheme
//
// Durations are counted in nanoseconds. Values below 64ns get their
// own exact bucket; above that, each power-of-two octave is split into
// 64 sub-buckets (HDR-histogram style):
//
//	idx(v) = v                        v < 64
//	idx(v) = 64*e + (v >> e)          e = bits.Len64(v) - 7
//
// which needs 64*57 + 64 = 3712 buckets to cover every non-negative
// time.Duration — a flat ~29KB regardless of observation count.
//
// # Error bound
//
// A bucket at scale e spans 2^e ns starting at or above 64*2^e ns, so
// a bucket's width is at most 1/64 of the values in it. Quantile
// reads return the bucket midpoint (clamped to the exact observed
// [Min, Max]), giving a relative error of at most 1/128 (~0.8%) for
// any quantile; Count, Sum, Mean, Min and Max are exact. The
// streaming-vs-exact cross-check tests pin this bound.
//
// # Determinism
//
// Record increments integer counters and Merge adds them, both
// commutative and associative, so a histogram merged from per-worker
// or per-shard partials is bit-identical for every partitioning, and
// every statistic read from it is byte-stable at any -parallel or
// shard count — the property the traffic reports rely on.
//
// The zero value is an empty, ready-to-use histogram; bucket storage
// is allocated on first Record.
type Hist struct {
	counts []uint64 // histBuckets entries, lazily allocated
	count  uint64
	sum    int64
	min    time.Duration
	max    time.Duration
}

const (
	histSubBits = 6                // 64 sub-buckets per octave
	histSub     = 1 << histSubBits // first histSub values are exact
	histBuckets = histSub * 58     // covers bits.Len64 up to 63
)

// histIdx maps a non-negative duration to its bucket.
func histIdx(v int64) int {
	if v < histSub {
		return int(v)
	}
	e := uint(bits.Len64(uint64(v))) - (histSubBits + 1)
	return int(uint(histSub)*e) + int(uint64(v)>>e)
}

// histBucketBounds returns the [lo, hi] value range of bucket idx.
func histBucketBounds(idx int) (lo, hi int64) {
	if idx < histSub {
		return int64(idx), int64(idx)
	}
	e := uint(idx>>histSubBits) - 1
	lo = int64(uint64(idx-int(e)*histSub) << e)
	return lo, lo + int64(uint64(1)<<e) - 1
}

// Record adds one observation. Negative durations clamp to zero.
func (h *Hist) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	if h.counts == nil {
		h.counts = make([]uint64, histBuckets)
	}
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += int64(d)
	h.counts[histIdx(int64(d))]++
}

// Merge adds o's observations into h. o is unchanged. Merging is
// commutative and associative: any grouping of the same observations
// produces an identical histogram.
func (h *Hist) Merge(o *Hist) {
	if o == nil || o.count == 0 {
		return
	}
	if h.counts == nil {
		h.counts = make([]uint64, histBuckets)
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
	for i, c := range o.counts {
		if c != 0 {
			h.counts[i] += c
		}
	}
}

// Count returns the number of observations (exact).
func (h *Hist) Count() uint64 { return h.count }

// Sum returns the summed observations (exact).
func (h *Hist) Sum() time.Duration { return time.Duration(h.sum) }

// Mean returns the arithmetic mean (exact up to integer division).
func (h *Hist) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / int64(h.count))
}

// Min returns the smallest observation (exact).
func (h *Hist) Min() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation (exact).
func (h *Hist) Max() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile returns the q-quantile (0..1) to within the documented
// 1/128 relative error: the midpoint of the bucket holding the
// rank-⌈q·count⌉ observation, clamped to the exact [Min, Max].
func (h *Hist) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if !(q > 0) { // also catches NaN
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(q*float64(h.count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		if cum >= rank {
			lo, hi := histBucketBounds(i)
			v := time.Duration(lo + (hi-lo)/2)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// CountAbove returns the number of observations strictly greater than
// d, to bucket resolution: observations sharing d's bucket count as
// not-above (so the result can undercount by at most the one bucket's
// population, within the documented 1/128 relative error). Exact when
// d >= Max (0) or d < Min (Count). Used for SLO-violation accounting.
func (h *Hist) CountAbove(d time.Duration) uint64 {
	if h.count == 0 || d >= h.max {
		return 0
	}
	if d < h.min {
		return h.count
	}
	if d < 0 {
		d = 0
	}
	idx := histIdx(int64(d))
	var above uint64
	for i := idx + 1; i < len(h.counts); i++ {
		above += h.counts[i]
	}
	return above
}

// Median returns the 50th percentile.
func (h *Hist) Median() time.Duration { return h.Quantile(0.5) }

// P99 returns the 99th percentile.
func (h *Hist) P99() time.Duration { return h.Quantile(0.99) }

// P999 returns the 99.9th percentile.
func (h *Hist) P999() time.Duration { return h.Quantile(0.999) }
