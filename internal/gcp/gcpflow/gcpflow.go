// Package gcpflow lowers provider-neutral flow definitions to GCP: the
// Mono class becomes a single Cloud Function and the Machine class
// becomes per-step Cloud Functions driven by a GCP Workflows program
// interpreting the graph. Where awsflow compiles the Machine graph to
// an ASL document, the Workflows backend takes an executable
// definition, so the compiled artifact here is a deterministic
// interpreter closed over the graph.
package gcpflow

import (
	"encoding/json"
	"fmt"
	"time"

	"statebench/internal/core"
	"statebench/internal/flow"
	"statebench/internal/gcp"
	"statebench/internal/sim"
)

// providerName is the registered GCP provider display name.
const providerName = "GCP"

// defaultMemoryMB is the provisioned tier used when a node does not pin
// one — the paper's Cloud Functions configurations default to 2048 MB.
const defaultMemoryMB = 2048

// Cloud Functions (1st gen) caps executions at 540 s; Workflows
// arguments are capped at 512 KB.
const (
	payloadCapBytes = 512 * 1024
	maxTaskSeconds  = 540
)

func init() {
	flow.RegisterLowerer(monoLowerer{})
	flow.RegisterLowerer(wflowLowerer{})
}

// memoryMB resolves a node's provisioned memory tier.
func memoryMB(n *flow.Node) int {
	if n.MemMB > 0 {
		return n.MemMB
	}
	return defaultMemoryMB
}

// registerTask installs one task node as a Cloud Function wrapping its
// bound stage.
func registerTask(gc *gcp.Cloud, st *flow.Stages, n *flow.Node) error {
	stage, err := st.Task(n.Stage)
	if err != nil {
		return err
	}
	_, err = gc.Functions.Register(gcp.Config{
		Name:          n.Fn,
		MemoryMB:      memoryMB(n),
		ConsumedMemMB: n.ConsumedMemMB,
		CodeSizeMB:    n.CodeSizeMB,
		Handler: func(ctx *gcp.Context, input []byte) ([]byte, error) {
			return stage(ctx, input)
		},
	})
	return err
}

// --- Mono: single Cloud Function (GCP-Func) ---

type monoLowerer struct{}

func (monoLowerer) Impl() core.Impl   { return gcp.Func }
func (monoLowerer) Class() flow.Class { return flow.Mono }
func (monoLowerer) Variant() string   { return "" }
func (monoLowerer) Caps() flow.Caps   { return flow.Caps{MaxTaskSeconds: maxTaskSeconds} }

func (monoLowerer) Lower(env *core.Env, def *flow.Definition) (*core.Deployment, error) {
	gc := gcp.FromEnv(env)
	g := def.Graphs[flow.Mono]
	flow.ApplyPreloads(gc.GCS, g)
	st, err := def.Bind(flow.Binding{
		Env: env, Blob: gc.GCS, Impl: gcp.Func, Provider: providerName, Class: flow.Mono,
	})
	if err != nil {
		return nil, err
	}
	n := g.Node(g.Start)
	if err := registerTask(gc, st, n); err != nil {
		return nil, err
	}
	return &core.Deployment{
		Runner:     &gcfRunner{gc: gc, fn: n.Fn},
		FuncCount:  g.FuncCount,
		CodeSizeMB: g.DeployCodeSizeMB(providerName),
	}, nil
}

func (monoLowerer) Program(def *flow.Definition) (string, error) {
	g := def.Graphs[flow.Mono]
	n := g.Node(g.Start)
	return fmt.Sprintf("function %s memory=%dMB consumed=%dMB code=%.1fMB stage=%s\n",
		n.Fn, memoryMB(n), n.ConsumedMemMB, n.CodeSizeMB, n.Stage), nil
}

// gcfRunner invokes a single Cloud Function synchronously.
type gcfRunner struct {
	gc *gcp.Cloud
	fn string
}

// Invoke implements core.Runner.
func (r *gcfRunner) Invoke(p *sim.Proc, _ []byte) (core.RunStats, error) {
	inv, err := r.gc.Functions.Invoke(p, r.fn, nil)
	if err != nil {
		return core.RunStats{}, err
	}
	return core.RunStats{
		E2E:       inv.Total,
		ColdStart: inv.ColdStartDelay,
		ExecTime:  inv.ExecTime,
		Output:    inv.Output,
		Err:       inv.Err,
	}, nil
}

// --- Machine: GCP Workflows program (GCP-Wflow) ---

type wflowLowerer struct{}

func (wflowLowerer) Impl() core.Impl   { return gcp.Wflow }
func (wflowLowerer) Class() flow.Class { return flow.Machine }
func (wflowLowerer) Variant() string   { return "" }
func (wflowLowerer) Caps() flow.Caps {
	return flow.Caps{PayloadBytes: payloadCapBytes, MaxTaskSeconds: maxTaskSeconds}
}

func (wflowLowerer) Lower(env *core.Env, def *flow.Definition) (*core.Deployment, error) {
	gc := gcp.FromEnv(env)
	g := def.Graphs[flow.Machine]
	flow.ApplyPreloads(gc.GCS, g)
	st, err := def.Bind(flow.Binding{
		Env: env, Blob: gc.GCS, Impl: gcp.Wflow, Provider: providerName, Class: flow.Machine,
	})
	if err != nil {
		return nil, err
	}
	for _, n := range g.Nodes {
		if err := registerNodes(gc, st, n); err != nil {
			return nil, err
		}
	}
	name := def.MachineNameFor(g, providerName)
	if err := gc.Workflows.Create(name, wfDefinition(def, g, st)); err != nil {
		return nil, err
	}
	return &core.Deployment{
		Runner:     &gwfRunner{gc: gc, wf: name, entry: def.EntryMap},
		FuncCount:  g.FuncCount,
		CodeSizeMB: g.DeployCodeSizeMB(providerName),
	}, nil
}

// Program renders the deterministic step plan of the Workflows program.
func (wflowLowerer) Program(def *flow.Definition) (string, error) {
	g := def.Graphs[flow.Machine]
	out := fmt.Sprintf("workflow %s\n", def.MachineNameFor(g, providerName))
	for _, n := range g.Nodes {
		out += programStep(n, "  ")
	}
	return out, nil
}

func programStep(n *flow.Node, indent string) string {
	switch n.Kind {
	case flow.KindTask:
		return fmt.Sprintf("%sstep %s: call %s memory=%dMB\n", indent, n.Name, n.Fn, memoryMB(n))
	case flow.KindMap:
		return fmt.Sprintf("%sstep %s: parallel map\n", indent, n.Name) + programStep(n.Iter, indent+"  ")
	case flow.KindParallel:
		out := fmt.Sprintf("%sstep %s: parallel\n", indent, n.Name)
		for _, b := range n.Branches {
			out += programStep(b, indent+"  ")
		}
		return out
	case flow.KindChoice:
		return fmt.Sprintf("%sstep %s: switch (%d cases)\n", indent, n.Name, len(n.Cases))
	case flow.KindWait:
		return fmt.Sprintf("%sstep %s: sleep %gs\n", indent, n.Name, n.WaitSeconds)
	}
	return fmt.Sprintf("%sstep %s: %s\n", indent, n.Name, n.Kind)
}

// registerNodes installs the Cloud Functions a node needs, in node
// order.
func registerNodes(gc *gcp.Cloud, st *flow.Stages, n *flow.Node) error {
	switch n.Kind {
	case flow.KindTask:
		if n.Pure {
			return nil
		}
		return registerTask(gc, st, n)
	case flow.KindMap:
		return registerNodes(gc, st, n.Iter)
	case flow.KindParallel:
		for _, b := range n.Branches {
			if err := registerNodes(gc, st, b); err != nil {
				return err
			}
		}
	}
	return nil
}

// wfDefinition builds the Workflows program: a deterministic
// interpretation of the machine graph against the Workflows Ctx.
func wfDefinition(def *flow.Definition, g *flow.Graph, st *flow.Stages) gcp.Definition {
	return func(ctx *gcp.Ctx, input map[string]any) (map[string]any, error) {
		run, _ := input["run"].(float64)
		entry := def.Entry(flow.Machine, int64(run))
		cur := entry
		for name := g.Start; name != ""; {
			n := g.Node(name)
			in := flow.InputFor(n, cur, entry)
			switch n.Kind {
			case flow.KindTask:
				if n.Pure {
					stage, err := st.Task(n.Stage)
					if err != nil {
						return nil, err
					}
					out, err := stage(nil, in)
					if err != nil {
						return nil, err
					}
					cur = out
					break
				}
				out, err := ctx.Call(n.Fn, in)
				if err != nil {
					return nil, err
				}
				cur = out
			case flow.KindMap:
				items, err := flow.Items(n, st, in)
				if err != nil {
					return nil, err
				}
				if len(items) > flow.MaxFanOut {
					return nil, fmt.Errorf("flow: %s: fan-out %d exceeds limit %d", n.Name, len(items), flow.MaxFanOut)
				}
				outs := make([][]byte, len(items))
				if n.Serial {
					for i, it := range items {
						out, err := ctx.Call(n.Iter.Fn, it)
						if err != nil {
							return nil, err
						}
						outs[i] = out
					}
				} else {
					branches := make([]func(bc *gcp.Ctx) error, len(items))
					for i, it := range items {
						i, it := i, it
						branches[i] = func(bc *gcp.Ctx) error {
							bout, berr := bc.Call(n.Iter.Fn, it)
							if berr != nil {
								return berr
							}
							outs[i] = bout
							return nil
						}
					}
					if err := ctx.Parallel(branches...); err != nil {
						return nil, err
					}
				}
				cur, err = flow.JoinOutputs(n, outs, cur)
				if err != nil {
					return nil, err
				}
			case flow.KindParallel:
				outs := make([][]byte, len(n.Branches))
				branches := make([]func(bc *gcp.Ctx) error, len(n.Branches))
				for i, b := range n.Branches {
					i, b := i, b
					bin := flow.InputFor(b, cur, entry)
					branches[i] = func(bc *gcp.Ctx) error {
						bout, berr := bc.Call(b.Fn, bin)
						if berr != nil {
							return berr
						}
						outs[i] = bout
						return nil
					}
				}
				if err := ctx.Parallel(branches...); err != nil {
					return nil, err
				}
				var err error
				cur, err = flow.JoinOutputs(n, outs, cur)
				if err != nil {
					return nil, err
				}
			case flow.KindChoice:
				next, err := flow.EvalChoice(n, in)
				if err != nil {
					return nil, err
				}
				name = next
				continue
			case flow.KindWait:
				ctx.Proc().Sleep(time.Duration(n.WaitSeconds * float64(time.Second)))
			default:
				return nil, fmt.Errorf("gcpflow: node %q: kind %s has no Workflows lowering", n.Name, n.Kind)
			}
			name = n.Next
		}
		if def.Finish != nil {
			return def.Finish(cur)
		}
		var res map[string]any
		if err := json.Unmarshal(cur, &res); err != nil {
			return nil, err
		}
		return res, nil
	}
}

// gwfRunner executes a Workflows program per run.
type gwfRunner struct {
	gc      *gcp.Cloud
	wf      string
	entry   func(run int64) map[string]any
	nextRun int64
}

// Invoke implements core.Runner.
func (r *gwfRunner) Invoke(p *sim.Proc, _ []byte) (core.RunStats, error) {
	r.nextRun++
	exec, err := r.gc.Workflows.Execute(p, r.wf, r.entry(r.nextRun))
	if err != nil {
		return core.RunStats{}, err
	}
	var out []byte
	if exec.Err == nil {
		out, _ = json.Marshal(exec.Output)
	}
	cold := exec.FirstCallDelay
	if cold < 0 {
		cold = 0
	}
	return core.RunStats{
		E2E:       exec.Duration(),
		ColdStart: cold,
		Output:    out,
		Err:       exec.Err,
	}, nil
}
