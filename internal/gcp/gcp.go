package gcp

import (
	"statebench/internal/chaos"
	"statebench/internal/cloud/blob"
	"statebench/internal/core"
	"statebench/internal/obs/span"
	"statebench/internal/obs/tseries"
	"statebench/internal/platform"
	"statebench/internal/pricing"
	"statebench/internal/sim"
)

// Kind identifies the GCP provider in the core registry. The constant
// lives here, not in core: registering a provider must not require
// editing any core source, and this allocation is the proof.
const Kind core.CloudKind = 2

// The GCP implementation styles. They ride on ExtendedWorkflow's
// ExtraImpls, never on core.AllImpls, so paper output is unaffected.
const (
	// Func is the monolithic stateless Cloud Function style.
	Func core.Impl = "GCP-Func"
	// Wflow is the GCP Workflows orchestration style.
	Wflow core.Impl = "GCP-Wflow"
)

// Cloud is one simulated GCP project/region.
type Cloud struct {
	Params    platform.GCPParams
	Functions *Functions
	Workflows *Workflows
	GCS       *blob.Store
}

// New builds a Cloud with the given calibration parameters.
func New(k *sim.Kernel, params platform.GCPParams) *Cloud {
	fsvc := NewFunctions(k, params)
	return &Cloud{
		Params:    params,
		Functions: fsvc,
		Workflows: NewWorkflows(k, params, fsvc),
		GCS:       blob.New(k, "gcs", blob.DefaultParams()),
	}
}

// FromEnv returns the Env's GCP backend, constructing it on first use.
// Deployment code uses this the way it uses env.AWS / env.Azure.
func FromEnv(env *core.Env) *Cloud { return env.Backend(Kind).(*Cloud) }

// SetTracer enables span emission on Functions and Workflows.
func (c *Cloud) SetTracer(tr *span.Tracer) {
	c.Functions.Tracer = tr
	c.Workflows.Tracer = tr
}

// SetChaos enables fault injection on Functions and Workflows.
func (c *Cloud) SetChaos(inj *chaos.Injector) {
	c.Functions.Chaos = inj
	c.Workflows.Chaos = inj
}

// SetTimeline enables per-window warm-pool occupancy gauges on the
// Cloud Functions instance pools (Workflows holds no instances).
func (c *Cloud) SetTimeline(s *tseries.Series) {
	c.Functions.SetTimeline(s)
}

// ResetMeters zeroes billing meters and storage stats across services,
// keeping deployed functions and warm instances.
func (c *Cloud) ResetMeters() {
	c.Functions.ResetMeters()
	c.Workflows.ResetMeters()
	c.GCS.ResetStats()
}

// Usage reports cumulative billable consumption (the core.Backend
// seam). Like AWS, GCP bills workflow steps whether or not the style
// is stateful — a functions-only deployment simply produces none.
func (c *Cloud) Usage(stateful bool) pricing.Usage {
	m := c.Functions.TotalMeter()
	return pricing.Usage{
		GBs:          m.BilledGBs,
		Requests:     m.Invocations,
		StatefulTxns: c.Workflows.TotalSteps,
		AllTxns:      c.Workflows.TotalSteps,
		BlobTxns:     c.GCS.Stats().Transactions(),
		Exec:         m.ExecTime,
	}
}

// Stop implements core.Backend; the GCP services run no background
// listeners, so there is nothing to halt.
func (c *Cloud) Stop() {}

func init() {
	core.RegisterProvider(core.ProviderSpec{
		Kind: Kind,
		Name: "GCP",
		Styles: []core.StyleInfo{
			{Impl: Func, Description: "One stateless Cloud Function."},
			{Impl: Wflow, Stateful: true, Description: "Workflow implemented using GCP Workflows, calling Cloud Functions on each step."},
		},
		NewBackend:         func(e *core.Env) core.Backend { return New(e.K, platform.DefaultGCP()) },
		DefaultBook:        func() pricing.Book { return pricing.DefaultGCP() },
		Traffic:            func() platform.TrafficProfile { return platform.DefaultGCP().Traffic() },
		BillsConfiguredMem: true,
	})
}
