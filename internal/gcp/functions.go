// Package gcp assembles the third simulated provider: Cloud Functions
// (gen 1) with per-request instance scaling, a Workflows-style
// code-first orchestrator on top of them, and a GCS-like object store.
// GCP is not part of the paper's measurement — it exists to prove the
// provider-registry seam: the package registers itself with core from
// init and is never imported by core, pricing, or the experiment
// drivers' paper figures.
package gcp

import (
	"fmt"
	"sort"
	"time"

	"statebench/internal/chaos"
	"statebench/internal/obs/span"
	"statebench/internal/obs/tseries"
	"statebench/internal/platform"
	"statebench/internal/sim"
)

// Handler is the user function body, mirroring the Lambda contract:
// compute is modeled by ctx.Busy and I/O by calling simulated services
// with ctx.Proc().
type Handler func(ctx *Context, payload []byte) ([]byte, error)

// Context is passed to handlers.
type Context struct {
	p  *sim.Proc
	fn *Function
}

// Proc returns the simulation process executing this invocation.
func (c *Context) Proc() *sim.Proc { return c.p }

// Busy consumes d of virtual compute time.
func (c *Context) Busy(d time.Duration) { c.p.Sleep(d) }

// FunctionName returns the executing function's name.
func (c *Context) FunctionName() string { return c.fn.cfg.Name }

// MemoryMB returns the configured memory tier.
func (c *Context) MemoryMB() int { return c.fn.cfg.MemoryMB }

// Config describes one Cloud Function.
type Config struct {
	Name string
	// MemoryMB is the configured memory; must be one of the platform's
	// fixed tiers. Billing uses this value (GB-s plus the tier's
	// proportional GHz-s, applied by the price book).
	MemoryMB int
	// ConsumedMemMB models actually-used memory (reported, not billed).
	ConsumedMemMB int
	// CodeSizeMB is the source/deployment size; it lengthens cold starts.
	CodeSizeMB float64
	// Timeout overrides the platform execution cap if smaller.
	Timeout time.Duration
	Handler Handler
}

// Invocation reports one completed invoke.
type Invocation struct {
	Output         []byte
	Cold           bool
	ColdStartDelay time.Duration
	// QueueDelay is time spent waiting for burst-concurrency capacity.
	QueueDelay time.Duration
	// ExecTime is handler wall time (billed after rounding).
	ExecTime time.Duration
	// Total is RTT + start + queue + exec.
	Total time.Duration
	Err   error
}

// Stats aggregates per-function invoke outcomes.
type Stats struct {
	Invokes    int64
	ColdStarts int64
	Errors     int64
	ColdDelays []time.Duration
}

// Function is a registered Cloud Function. Like Lambda, instance
// lifecycle (warm reuse, keep-alive expiry, cold-start stats) lives in
// the shared platform.Pool; this package keeps the per-request scaling
// policy.
type Function struct {
	cfg   Config
	svc   *Functions
	pool  platform.Pool
	slots *sim.Resource
	Meter platform.Meter
	stats Stats
}

// Stats returns a snapshot of invoke outcomes, merging the function's
// invoke counters with the instance pool's cold-start statistics.
func (f *Function) Stats() Stats {
	s := f.stats
	ps := f.pool.Stats()
	s.ColdStarts = ps.ColdStarts
	s.ColdDelays = ps.ColdDelays
	return s
}

// Config returns the function's configuration.
func (f *Function) Config() Config { return f.cfg }

// WarmInstances returns how many idle warm instances exist now.
func (f *Function) WarmInstances(now sim.Time) int { return f.pool.WarmCount(now) }

// Functions is the simulated Cloud Functions control plane.
type Functions struct {
	k      *sim.Kernel
	rng    *sim.RNG
	params platform.GCPParams
	fns    map[string]*Function
	// Tracer, when non-nil, emits spans per invocation.
	Tracer *span.Tracer
	// Chaos, when non-nil, can fail invocations with transient errors or
	// kill the executing instance mid-invoke (component "gcf").
	Chaos *chaos.Injector
	// timeline, when non-nil, receives warm-pool occupancy gauges from
	// every function's instance pool (pure observation).
	timeline *tseries.Series
}

// NewFunctions creates a Cloud Functions service.
func NewFunctions(k *sim.Kernel, params platform.GCPParams) *Functions {
	return &Functions{k: k, rng: k.Stream("gcp/functions"), params: params, fns: make(map[string]*Function)}
}

// Params returns the service's calibration parameters.
func (s *Functions) Params() platform.GCPParams { return s.params }

// SetTimeline enables per-window warm-pool occupancy gauges on every
// registered function's instance pool, existing and future.
func (s *Functions) SetTimeline(tl *tseries.Series) {
	s.timeline = tl
	for _, f := range s.fns {
		f.pool.Timeline = tl
	}
}

// Register adds a function, validating the memory tier.
func (s *Functions) Register(cfg Config) (*Function, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("gcf: function name required")
	}
	if _, dup := s.fns[cfg.Name]; dup {
		return nil, fmt.Errorf("gcf: function %q already registered", cfg.Name)
	}
	if !validTier(s.params.MemoryTiersMB, cfg.MemoryMB) {
		return nil, fmt.Errorf("gcf: memory %d MB is not a configurable tier %v", cfg.MemoryMB, s.params.MemoryTiersMB)
	}
	if cfg.Handler == nil {
		return nil, fmt.Errorf("gcf: function %q has no handler", cfg.Name)
	}
	if cfg.ConsumedMemMB <= 0 {
		cfg.ConsumedMemMB = cfg.MemoryMB
	}
	if cfg.Timeout <= 0 || cfg.Timeout > s.params.TimeLimit {
		cfg.Timeout = s.params.TimeLimit
	}
	f := &Function{cfg: cfg, svc: s, slots: sim.NewResource(s.k, s.params.BurstConcurrency)}
	f.pool.KeepAlive = s.params.KeepAlive
	f.pool.Timeline = s.timeline
	s.fns[cfg.Name] = f
	return f, nil
}

// validTier reports whether memMB is one of the configurable tiers.
func validTier(tiers []int, memMB int) bool {
	for _, t := range tiers {
		if t == memMB {
			return true
		}
	}
	return false
}

// Function returns a registered function by name.
func (s *Functions) Function(name string) (*Function, bool) {
	f, ok := s.fns[name]
	return f, ok
}

// TimeoutError reports an execution that exceeded its time limit.
type TimeoutError struct {
	Function string
	Limit    time.Duration
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("gcf: %s timed out after %v", e.Function, e.Limit)
}

// PayloadTooLargeError reports an oversized request body.
type PayloadTooLargeError struct {
	Function string
	Size     int
	Limit    int
}

func (e *PayloadTooLargeError) Error() string {
	return fmt.Sprintf("gcf: payload for %s is %d bytes, limit %d", e.Function, e.Size, e.Limit)
}

// Invoke synchronously invokes a function from process p. Handler
// errors are reported in Invocation.Err (timing still carried);
// infrastructure errors are returned as err.
func (s *Functions) Invoke(p *sim.Proc, name string, payload []byte) (*Invocation, error) {
	f, ok := s.fns[name]
	if !ok {
		return nil, fmt.Errorf("gcf: no such function %q", name)
	}
	if s.params.PayloadLimit > 0 && len(payload) > s.params.PayloadLimit {
		return nil, &PayloadTooLargeError{Function: name, Size: len(payload), Limit: s.params.PayloadLimit}
	}
	start := p.Now()
	caller := p.TraceCtx
	invSpan := s.Tracer.Start(start, span.KindInvoke, "gcf/"+name, caller)
	invCtx := invSpan.Context()
	p.Sleep(s.params.InvokeRTT.Sample(s.rng))

	qStart := p.Now()
	f.slots.Acquire(p)
	queueDelay := p.Now() - qStart
	if queueDelay > 0 {
		s.Tracer.Emit(span.KindQueue, "gcf/admission/"+name, qStart, p.Now(), invCtx)
	}

	inv := &Invocation{QueueDelay: queueDelay}
	f.stats.Invokes++

	if _, ok := f.pool.TakeWarm(p.Now()); ok {
		p.Sleep(s.params.WarmStart.Sample(s.rng))
	} else {
		inv.Cold = true
		delay := s.params.ColdStartBase.Sample(s.rng)
		if s.params.CodeFetchBW > 0 {
			delay += time.Duration(f.cfg.CodeSizeMB * 1e6 / s.params.CodeFetchBW * float64(time.Second))
		}
		inv.ColdStartDelay = delay
		f.pool.RecordCold(delay)
		coldStart := p.Now()
		p.Sleep(delay)
		s.Tracer.Emit(span.KindCold, "gcf/cold/"+name, coldStart, p.Now(), invCtx)
	}

	var fault chaos.Fault
	faulted := false
	if s.Chaos != nil {
		fault, faulted = s.Chaos.Next(invCtx, "gcf", name)
	}

	execStart := p.Now()
	execSpan := s.Tracer.Start(execStart, span.KindExec, "gcf/exec/"+name, invCtx)
	crashed := false
	var out []byte
	var err error
	if faulted && (fault.Kind == chaos.TransientError || fault.Kind == chaos.Crash) {
		// Partial execution is still billed; a crash loses the warm
		// instance so the next invocation pays a fresh cold start.
		p.Sleep(fault.Delay)
		err = &chaos.FaultError{Kind: fault.Kind, Component: "gcf", Name: name}
		crashed = fault.Kind == chaos.Crash
	} else {
		if faulted && fault.Kind == chaos.TimeoutSpike {
			p.Sleep(fault.Delay)
		}
		p.TraceCtx = execSpan.Context()
		out, err = f.cfg.Handler(&Context{p: p, fn: f}, payload)
		p.TraceCtx = caller
	}
	exec := p.Now() - execStart
	if exec > f.cfg.Timeout {
		exec = f.cfg.Timeout
		err = &TimeoutError{Function: name, Limit: f.cfg.Timeout}
		out = nil
	}
	execSpan.End(execStart + exec)
	f.Meter.RecordGCP(exec, f.cfg.MemoryMB, f.cfg.ConsumedMemMB)

	if !crashed {
		f.pool.Release(p.Now())
	}
	f.slots.Release()

	inv.Output = out
	inv.Err = err
	if err != nil {
		f.stats.Errors++
	}
	inv.ExecTime = exec
	inv.Total = p.Now() - start
	if invSpan.Live() {
		attrs := []span.Attr{span.A("cold", boolStr(inv.Cold))}
		if err != nil {
			attrs = append(attrs, span.A("error", err.Error()))
		}
		invSpan.End(p.Now(), attrs...)
	}
	return inv, nil
}

func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

// TotalMeter sums billing meters across all functions in sorted name
// order (float accumulation must not depend on map iteration order).
func (s *Functions) TotalMeter() platform.Meter {
	names := make([]string, 0, len(s.fns))
	for name := range s.fns {
		names = append(names, name)
	}
	sort.Strings(names)
	var m platform.Meter
	for _, name := range names {
		m.Add(s.fns[name].Meter)
	}
	return m
}

// ResetMeters zeroes all function meters and stats (warm pools kept).
func (s *Functions) ResetMeters() {
	for _, f := range s.fns {
		f.Meter.Reset()
		f.stats = Stats{}
		f.pool.ResetStats()
	}
}
